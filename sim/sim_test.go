package sim

import (
	"strings"
	"testing"
	"time"
)

func tinyScenario() Scenario {
	return Scenario{
		Duration:      60 * time.Second,
		AttackStart:   15 * time.Second,
		AttackStop:    45 * time.Second,
		NumClients:    3,
		ClientRate:    8,
		ClientsSolve:  true,
		Backlog:       128,
		AcceptBacklog: 128,
		Workers:       32,
		BotCount:      3,
		PerBotRate:    80,
		BotsSolve:     true,
		Seed:          5,
	}
}

func TestRunPuzzlesScenario(t *testing.T) {
	res, err := Run(tinyScenario())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ClientMbpsBefore <= 0 {
		t.Errorf("ClientMbpsBefore = %v", res.ClientMbpsBefore)
	}
	if len(res.ClientMbps) == 0 || len(res.ServerMbps) == 0 {
		t.Error("empty series")
	}
	if len(res.ListenQueue) == 0 || len(res.AcceptQueue) == 0 {
		t.Error("empty queue series")
	}
	if len(res.AttackerSentPerSec) == 0 {
		t.Error("empty attacker series")
	}
}

func TestRunDefenseComparison(t *testing.T) {
	sc := tinyScenario()
	sc.Defense = DefenseNone
	noDef, err := Run(sc)
	if err != nil {
		t.Fatalf("Run(none): %v", err)
	}
	sc.Defense = DefensePuzzles
	puzzles, err := Run(sc)
	if err != nil {
		t.Fatalf("Run(puzzles): %v", err)
	}
	if puzzles.ClientMbpsDuring <= noDef.ClientMbpsDuring {
		t.Errorf("puzzles during %v not above none %v",
			puzzles.ClientMbpsDuring, noDef.ClientMbpsDuring)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinyScenario())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(tinyScenario())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.ClientMbpsDuring != b.ClientMbpsDuring ||
		a.EffectiveAttackRate != b.EffectiveAttackRate {
		t.Error("equal seeds produced different results")
	}
	c := tinyScenario()
	c.Seed = 6
	other, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if other.ClientMbpsBefore == a.ClientMbpsBefore &&
		other.EffectiveAttackRate == a.EffectiveAttackRate {
		t.Log("different seeds produced identical summary (possible but unlikely)")
	}
}

func TestRunAllMatchesSequentialRun(t *testing.T) {
	scs := []Scenario{tinyScenario(), tinyScenario(), tinyScenario(), tinyScenario()}
	for i := range scs {
		scs[i].Seed = int64(10 + i)
	}
	parallel, err := RunAll(4, scs)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, sc := range scs {
		serial, err := Run(sc)
		if err != nil {
			t.Fatalf("Run(%d): %v", i, err)
		}
		if len(parallel[i].ClientMbps) != len(serial.ClientMbps) {
			t.Fatalf("scenario %d: series length mismatch", i)
		}
		for j := range serial.ClientMbps {
			if parallel[i].ClientMbps[j] != serial.ClientMbps[j] {
				t.Fatalf("scenario %d bucket %d: parallel %v != serial %v",
					i, j, parallel[i].ClientMbps[j], serial.ClientMbps[j])
			}
		}
		if parallel[i].EffectiveAttackRate != serial.EffectiveAttackRate {
			t.Errorf("scenario %d: attack rate differs", i)
		}
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	scs := []Scenario{tinyScenario(), tinyScenario()}
	scs[1].Attack = "tsunami"
	if _, err := RunAll(2, scs); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestRunExperimentWithWorkers(t *testing.T) {
	// The option must not change results, only execution width. fig9
	// consumes Scale.Parallelism through the flood-scenario runner.
	a, err := RunExperiment("fig9", ScaleQuick, WithWorkers(1))
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	b, err := RunExperiment("fig9", ScaleQuick, WithWorkers(4))
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if a[0].String() != b[0].String() {
		t.Error("worker count changed experiment output")
	}
}

func TestRunRejectsUnknownConfig(t *testing.T) {
	sc := tinyScenario()
	sc.Defense = "voodoo"
	if _, err := Run(sc); err == nil {
		t.Error("unknown defense accepted")
	}
	sc = tinyScenario()
	sc.Attack = "tsunami"
	if _, err := Run(sc); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	// IDs come from the registry in display order; every listed id must
	// run and every runnable id must be listed (both derive from the one
	// registry, so this is a change-detector for the display order only).
	ids := ExperimentIDs()
	want := []string{
		"fig3a", "fig3b", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "tab1", "nash",
		"ablation-opportunistic", "ablation-solutionflood",
		"ablation-membound", "ablation-adaptive", "armsrace",
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestRunExperimentQuick(t *testing.T) {
	// Smoke-run the cheap experiments end to end through the public API.
	for _, id := range []string{"fig3a", "fig3b", "tab1", "nash"} {
		tables, err := RunExperiment(id, ScaleQuick)
		if err != nil {
			t.Fatalf("RunExperiment(%s): %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("RunExperiment(%s): no tables", id)
		}
		out := tables[0].String()
		if !strings.Contains(out, "==") {
			t.Errorf("RunExperiment(%s) output missing title: %q", id, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", ScaleQuick); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := RunExperiment("fig8", "mega"); err == nil {
		t.Error("unknown scale accepted")
	}
}
