package sim

import (
	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/defense"
)

// DefenseInfo identifies a registered server-protection plugin.
type DefenseInfo = defense.Info

// AttackInfo identifies a registered flood-strategy plugin.
type AttackInfo = attack.Info

// DefenseInfos lists every registered defense plugin, sorted by name —
// the registry behind Scenario.Defense, the sweep Defenses axis, and
// `tcpz-exp -list-defenses`. Register new defenses with defense.Register;
// they become sweepable scenario coordinates with their own result-cache
// identity (Info.Fingerprint) without any change to the simulator core.
func DefenseInfos() []DefenseInfo { return defense.Infos() }

// AttackInfos lists every registered attack plugin, sorted by name — the
// registry behind Scenario.Attack, the sweep Attacks axis, and
// `tcpz-exp -list-attacks`.
func AttackInfos() []AttackInfo { return attack.Infos() }
