// Package runner is the experiment execution subsystem: a work-stealing
// goroutine pool that fans independent jobs out across the machine's cores.
//
// Every figure and table driver in this repository declares its scenarios
// as data (a sweep.Grid) and submits the expanded cells here, so a
// difficulty grid, a defense comparison, or a botnet sweep runs as wide
// as the hardware allows. Results are always returned in submission
// order, and a job's outcome depends only on its own inputs (each
// simulated scenario carries its own seed and builds its own RNG), so
// output is bit-for-bit identical at any worker count — parallelism
// changes wall-clock time, never results. The streaming sinks one layer
// up (sweep.Stream) preserve that guarantee on the serialization path by
// re-ordering completions back to submission order.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats describes how one Map/ForEach call executed — the pool's
// backpressure signals for tuning worker counts on big machines. All
// numbers are observational: they vary run to run with goroutine
// scheduling and never feed back into results.
type Stats struct {
	// Workers is the effective pool width (after clamping to the job
	// count).
	Workers int
	// Jobs is the number of jobs claimed (equals n unless a failure
	// stopped the pool early).
	Jobs int64
	// LocalClaims counts jobs a worker popped from its own shard;
	// Steals counts jobs claimed from another worker's shard. A high
	// steal share means the static split mismatched per-job cost.
	LocalClaims int64
	Steals      int64
	// FailedStealScans counts scans of the victim table that claimed
	// nothing (the pool draining, or races lost) — idle pressure.
	FailedStealScans int64
	// MeanQueueDepth is the mean number of unclaimed jobs observed at
	// each claim: how much runway the pool had, on average, when a
	// worker came back for work.
	MeanQueueDepth float64
}

// Map runs fn(i) for every i in [0, n) on a work-stealing pool of the
// given width and returns the results ordered by index. workers <= 0
// selects runtime.GOMAXPROCS(0). fn must be safe for concurrent use and
// should depend only on i.
//
// If any job fails, workers stop claiming new jobs (in-flight jobs
// finish) and Map returns the lowest-indexed error among the jobs that
// ran; all results are discarded. Whether Map fails never depends on the
// worker count — job validity is a function of the inputs alone — but
// when several jobs are invalid, which one is reported may.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results, _, err := MapStats(workers, n, fn)
	return results, err
}

// MapStats is Map plus the pool's execution statistics.
func MapStats[T any](workers, n int, fn func(i int) (T, error)) ([]T, Stats, error) {
	if n <= 0 {
		return nil, Stats{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		// Fast path: no goroutines, no synchronisation.
		stats := Stats{Workers: 1}
		var depthSum int64
		for i := 0; i < n; i++ {
			stats.Jobs++
			stats.LocalClaims++
			depthSum += int64(n - i - 1)
			results[i], errs[i] = fn(i)
			if errs[i] != nil {
				break
			}
		}
		if stats.Jobs > 0 {
			stats.MeanQueueDepth = float64(depthSum) / float64(stats.Jobs)
		}
		res, err := finish(results, errs)
		return res, stats, err
	}

	queues := newDeques(workers, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := queues.next(self)
				if !ok {
					return
				}
				results[i], errs[i] = fn(i)
				if errs[i] != nil {
					queues.failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	res, err := finish(results, errs)
	return res, queues.stats(workers), err
}

// ForEach is Map for jobs with no result value.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachStats is ForEach plus the pool's execution statistics.
func ForEachStats(workers, n int, fn func(i int) error) (Stats, error) {
	_, stats, err := MapStats(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return stats, err
}

// finish returns the results, or the error of the lowest failing index.
func finish[T any](results []T, errs []error) ([]T, error) {
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return results, nil
}

// deques is the work-stealing state: each worker owns a contiguous index
// range and pops from its bottom; an idle worker steals from the top of
// the fullest victim. Stealing from the opposite end keeps owner and
// thief contention to a single mutex acquisition per index.
type deques struct {
	shards []shard
	// remaining counts unclaimed indices across all shards, letting idle
	// workers stop scanning for victims as soon as the pool drains.
	remaining atomic.Int64
	// failed halts further claims once any job errors, so an invalid
	// grid cell doesn't cost the rest of the grid's simulation time.
	failed atomic.Bool

	// Backpressure accounting (see Stats).
	localClaims atomic.Int64
	steals      atomic.Int64
	failedScans atomic.Int64
	depthSum    atomic.Int64
}

// stats snapshots the pool's execution counters after the workers drain.
func (d *deques) stats(workers int) Stats {
	s := Stats{
		Workers:          workers,
		LocalClaims:      d.localClaims.Load(),
		Steals:           d.steals.Load(),
		FailedStealScans: d.failedScans.Load(),
	}
	s.Jobs = s.LocalClaims + s.Steals
	if s.Jobs > 0 {
		s.MeanQueueDepth = float64(d.depthSum.Load()) / float64(s.Jobs)
	}
	return s
}

type shard struct {
	mu sync.Mutex
	// lo..hi is the unclaimed slice of this shard's index range.
	lo, hi int
	_      [40]byte // pad to a cache line so shards don't false-share
}

// newDeques splits [0, n) into one contiguous range per worker. Contiguous
// ranges (rather than striding) keep each worker's jobs adjacent, which
// preserves locality when neighbouring scenarios share warm state.
func newDeques(workers, n int) *deques {
	d := &deques{shards: make([]shard, workers)}
	for w := 0; w < workers; w++ {
		d.shards[w].lo = w * n / workers
		d.shards[w].hi = (w + 1) * n / workers
	}
	d.remaining.Store(int64(n))
	return d
}

// next claims an index for worker self: from its own shard's bottom if
// any remain, otherwise stolen from the top of the fullest other shard.
// Claims stop once any job has failed.
func (d *deques) next(self int) (int, bool) {
	if d.failed.Load() {
		return 0, false
	}
	if i, ok := d.shards[self].popBottom(); ok {
		d.depthSum.Add(d.remaining.Add(-1))
		d.localClaims.Add(1)
		return i, true
	}
	for d.remaining.Load() > 0 {
		victim, width := -1, 0
		for w := range d.shards {
			if w == self {
				continue
			}
			if n := d.shards[w].width(); n > width {
				victim, width = w, n
			}
		}
		if victim < 0 {
			d.failedScans.Add(1)
			return 0, false
		}
		if i, ok := d.shards[victim].popTop(); ok {
			d.depthSum.Add(d.remaining.Add(-1))
			d.steals.Add(1)
			return i, true
		}
		// Lost the race for that victim; rescan while work remains.
		d.failedScans.Add(1)
	}
	return 0, false
}

func (s *shard) popBottom() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	s.lo++
	return s.lo - 1, true
}

func (s *shard) popTop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	s.hi--
	return s.hi, true
}

func (s *shard) width() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}
