package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(_, 0) = %v, %v", got, err)
	}
	// workers <= 0 selects GOMAXPROCS; workers > n is clamped.
	got, err = Map(0, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Errorf("Map(0, 3) = %v, %v", got, err)
	}
	got, err = Map(64, 2, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 2 {
		t.Errorf("Map(64, 2) = %v, %v", got, err)
	}
}

func TestMapReturnsFailingJobError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		// A single invalid job: the reported error must name it at any
		// worker count.
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("job-%d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if want := "runner: job 7:"; err.Error()[:len(want)] != want {
			t.Errorf("workers=%d: err = %q, want prefix %q", workers, err, want)
		}
		// Several invalid jobs: Map must still fail cleanly (which index
		// is reported may vary once claims stop early).
		_, err = Map(workers, 50, func(i int) (int, error) {
			if i%11 == 7 {
				return 0, fmt.Errorf("job-%d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d multi: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var executed atomic.Int32
	_, err := Map(4, 64, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(5 * time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// In-flight jobs finish but no new claims happen after the failure;
	// without cancellation all 64 would run.
	if n := executed.Load(); n > 32 {
		t.Errorf("%d of 64 jobs ran after an immediate failure", n)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var counts [257]atomic.Int32
	err := ForEach(8, len(counts), func(i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("job %d ran %d times", i, n)
		}
	}
}

func TestMapStealsSkewedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// All the expensive jobs land in the first worker's shard; with
	// stealing, total wall-clock must be far below the serial sum.
	const n = 8
	start := time.Now()
	err := ForEach(4, n, func(i int) error {
		if i < n/2 {
			time.Sleep(40 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Serial time for the skewed half is 160 ms; stolen across 4 workers
	// it is ~40-80 ms. Allow generous slack for CI machines.
	if elapsed > 140*time.Millisecond {
		t.Errorf("skewed jobs took %v; stealing appears broken", elapsed)
	}
}

func TestMapParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	work := func(int) (int, error) {
		time.Sleep(25 * time.Millisecond)
		return 0, nil
	}
	t0 := time.Now()
	if _, err := Map(1, 8, work); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(t0)
	t0 = time.Now()
	if _, err := Map(4, 8, work); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(t0)
	if parallel > serial*2/3 {
		t.Errorf("workers=4 took %v vs workers=1 %v; want clear speedup", parallel, serial)
	}
}

func TestMapStatsAccountsEveryClaim(t *testing.T) {
	const n = 64
	_, stats, err := MapStats(4, n, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Errorf("Workers = %d, want 4", stats.Workers)
	}
	if stats.Jobs != n {
		t.Errorf("Jobs = %d, want %d", stats.Jobs, n)
	}
	if stats.LocalClaims+stats.Steals != stats.Jobs {
		t.Errorf("LocalClaims(%d) + Steals(%d) != Jobs(%d)",
			stats.LocalClaims, stats.Steals, stats.Jobs)
	}
	// Each claim samples the remaining queue; the mean over a full drain
	// of n jobs is (n-1)/2 regardless of claim interleaving.
	if want := float64(n-1) / 2; stats.MeanQueueDepth != want {
		t.Errorf("MeanQueueDepth = %v, want %v", stats.MeanQueueDepth, want)
	}
}

func TestMapStatsSerialFastPath(t *testing.T) {
	_, stats, err := MapStats(1, 10, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 || stats.Jobs != 10 || stats.LocalClaims != 10 || stats.Steals != 0 {
		t.Errorf("serial stats = %+v", stats)
	}
	if stats.MeanQueueDepth != 4.5 {
		t.Errorf("MeanQueueDepth = %v, want 4.5", stats.MeanQueueDepth)
	}
}

func TestMapStatsCountsSteals(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Skew all the cost into worker 0's shard: the others must steal.
	_, stats, err := MapStats(4, 16, func(i int) (int, error) {
		if i < 4 {
			time.Sleep(30 * time.Millisecond)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steals == 0 {
		t.Errorf("no steals recorded under skewed load: %+v", stats)
	}
}
