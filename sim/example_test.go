package sim_test

import (
	"log"
	"os"
	"time"

	"github.com/tcppuzzles/tcppuzzles/sim"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// ExampleRunSweep declares a two-cell factorial design — SYN cookies vs
// puzzles under the same tiny connection flood — and streams each cell's
// structured Result to a CSV sink as the runs land. The output is
// deterministic: every run derives its randomness from its scenario seed,
// and the stream delivers results in grid order at any worker count.
func ExampleRunSweep() {
	grid := sweep.Grid{
		Base: sim.Scenario{
			Duration: 30 * time.Second, AttackStart: 8 * time.Second, AttackStop: 22 * time.Second,
			NumClients: 2, ClientRate: 6, BotCount: 2, PerBotRate: 50,
			Backlog: 64, AcceptBacklog: 64, Workers: 16,
			ClientsSolve: true, BotsSolve: true, Seed: 7,
		},
		Axes: []sweep.Axis{sweep.Defenses(sim.DefenseCookies, sim.DefensePuzzles)},
	}
	csv := sweep.NewCSV(os.Stdout)
	if _, err := sim.RunSweep(grid, sim.WithSinks(csv), sim.WithWorkers(1)); err != nil {
		log.Fatal(err)
	}
	if err := csv.Flush(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// experiment,label,defense,attack,k,m,clients,bot_count,per_bot_rate,seed,metric,value
	// sweep,defense=cookies,cookies,connflood,2,17,2,2,50,7,client_mbps_before,4.85216
	// sweep,defense=cookies,cookies,connflood,2,17,2,2,50,7,client_mbps_during,0.5654
	// sweep,defense=cookies,cookies,connflood,2,17,2,2,50,7,client_mbps_after,0.4112
	// sweep,defense=cookies,cookies,connflood,2,17,2,2,50,7,attacker_established_cps,12.285714285714286
	// sweep,defense=puzzles,puzzles,connflood,2,17,2,2,50,7,client_mbps_before,4.85216
	// sweep,defense=puzzles,puzzles,connflood,2,17,2,2,50,7,client_mbps_during,1.2850000000000001
	// sweep,defense=puzzles,puzzles,connflood,2,17,2,2,50,7,client_mbps_after,1.5077333333333334
	// sweep,defense=puzzles,puzzles,connflood,2,17,2,2,50,7,attacker_established_cps,3.7857142857142856
}
