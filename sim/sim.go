// Package sim is the public façade over the simulated testbed: it builds
// and runs attack scenarios (SYN floods, connection floods, solution
// floods) against a server protected by client puzzles, SYN cookies, a SYN
// cache, or nothing, and returns materialised measurement series.
//
// Scenario is the one canonical configuration type (defined in the sweep
// package) shared with the internal experiment drivers, and grids of
// scenarios fan out across the work-stealing pool in sim/runner (see
// RunAll). The paper's evaluation is exposed as named experiments (see
// ExperimentIDs and RunExperiment) so a downstream user can regenerate
// every figure and table from §6 with one call, and RunSweep executes
// arbitrary factorial designs declared as sweep.Grid literals — with
// streaming CSV/NDJSON sinks (WithSinks) and scenario-hash result
// caching (WithCache).
package sim

import (
	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
)

// Defense selects the server protection. The empty string selects the
// default (puzzles); DefenseNone is always honoured.
type Defense = experiments.Defense

// Supported defenses. DefenseInfos lists everything in the registry,
// including plugins registered outside this package.
const (
	DefenseNone      = experiments.DefenseNone
	DefenseCookies   = experiments.DefenseCookies
	DefenseSYNCache  = experiments.DefenseSYNCache
	DefensePuzzles   = experiments.DefensePuzzles
	DefenseHybrid    = experiments.DefenseHybrid
	DefenseRateLimit = experiments.DefenseRateLimit
)

// Attack selects the botnet behaviour. The empty string selects the
// default (a connection flood).
type Attack = experiments.Attack

// Supported attacks. AttackInfos lists everything in the registry.
const (
	AttackSYNFlood      = experiments.AttackSYNFlood
	AttackConnFlood     = experiments.AttackConnFlood
	AttackSolutionFlood = experiments.AttackSolutionFlood
	AttackReplayFlood   = experiments.AttackReplayFlood
	AttackPulseFlood    = experiments.AttackPulseFlood
)

// NoBotnet as a Scenario.BotCount disables the botnet entirely.
const NoBotnet = experiments.NoBotnet

// Scenario describes one deployment under attack. It is the canonical
// config type — the same struct drives the public API, every internal
// figure/table driver, and the benchmarks. The zero value of every field
// selects the paper's §6 defaults; fields where zero is meaningful use
// explicit sentinels (NoBotnet, Workers: -1).
type Scenario = experiments.Scenario

// Result holds materialised measurements from a completed scenario. All
// series are per-second.
type Result struct {
	// ClientMbps is the mean per-client goodput.
	ClientMbps []float64
	// ServerMbps is the server's outgoing throughput.
	ServerMbps []float64
	// ServerCPUPct, ClientCPUPct, AttackerCPUPct are utilisation series.
	ServerCPUPct   []float64
	ClientCPUPct   []float64
	AttackerCPUPct []float64
	// ListenQueue and AcceptQueue are occupancy series.
	ListenQueue []float64
	AcceptQueue []float64
	// AttackerEstablishedPerSec is the effective attack rate.
	AttackerEstablishedPerSec []float64
	// AttackerSentPerSec is the measured (post-CPU-limit) attack rate.
	AttackerSentPerSec []float64
	// Summary numbers over the attack phases.
	ClientMbpsBefore, ClientMbpsDuring, ClientMbpsAfter float64
	EffectiveAttackRate                                 float64
}

// Run executes a scenario to completion.
func Run(sc Scenario) (*Result, error) {
	run, err := experiments.RunFlood(sc)
	if err != nil {
		return nil, err
	}
	return materialise(run), nil
}

// RunAll executes a grid of independent scenarios on the work-stealing
// runner and returns the results in grid order. workers <= 0 selects
// GOMAXPROCS. Results are bit-for-bit identical at every worker count;
// parallelism divides wall-clock time only.
func RunAll(workers int, scs []Scenario) ([]*Result, error) {
	runs, err := experiments.RunScenarios(workers, scs)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(runs))
	for i, run := range runs {
		results[i] = materialise(run)
	}
	return results, nil
}

func materialise(run *experiments.FloodRun) *Result {
	res := &Result{
		ClientMbps:                run.ClientThroughputMbps(),
		ServerMbps:                run.ServerThroughputMbps(),
		ServerCPUPct:              run.ServerCPU(),
		ClientCPUPct:              run.ClientCPU(),
		AttackerCPUPct:            run.AttackerCPU(),
		AttackerEstablishedPerSec: run.AttackerEstablishedRate(),
		AttackerSentPerSec:        run.MeasuredAttackRate(),
	}
	res.ListenQueue, res.AcceptQueue = run.QueueSizes()
	res.ClientMbpsBefore = run.PhaseMean(res.ClientMbps, experiments.PhaseBefore)
	res.ClientMbpsDuring = run.PhaseMean(res.ClientMbps, experiments.PhaseDuring)
	res.ClientMbpsAfter = run.PhaseMean(res.ClientMbps, experiments.PhaseAfter)
	res.EffectiveAttackRate = run.AttackWindowMean(res.AttackerEstablishedPerSec)
	return res
}
