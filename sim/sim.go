// Package sim is the public façade over the simulated testbed: it builds
// and runs attack scenarios (SYN floods, connection floods, solution
// floods) against a server protected by client puzzles, SYN cookies, a SYN
// cache, or nothing, and returns materialised measurement series.
//
// It also exposes the paper's evaluation as named experiments (see
// Experiments and RunExperiment) so a downstream user can regenerate every
// figure and table from §6 with one call.
package sim

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/attacksim"
	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Defense selects the server protection.
type Defense string

// Supported defenses.
const (
	DefenseNone     Defense = "none"
	DefenseCookies  Defense = "cookies"
	DefenseSYNCache Defense = "syncache"
	DefensePuzzles  Defense = "puzzles"
)

// Attack selects the botnet behaviour.
type Attack string

// Supported attacks.
const (
	AttackSYNFlood      Attack = "synflood"
	AttackConnFlood     Attack = "connflood"
	AttackSolutionFlood Attack = "solutionflood"
)

// Scenario describes one deployment under attack. The zero value of every
// field selects the paper's §6 defaults.
type Scenario struct {
	// Duration is the run length; the attack spans [AttackStart, AttackStop).
	Duration    time.Duration
	AttackStart time.Duration
	AttackStop  time.Duration

	// NumClients clients issue ClientRate requests/second for RequestBytes
	// of text; ClientsSolve selects patched kernels.
	NumClients   int
	ClientRate   float64
	RequestBytes int
	ClientsSolve bool

	// Defense and Params configure the server; Backlog/AcceptBacklog size
	// its queues and Workers its application pool (-1 disables the pool).
	Defense       Defense
	Params        puzzle.Params
	Backlog       int
	AcceptBacklog int
	Workers       int

	// Attack, BotCount, PerBotRate and BotsSolve configure the botnet.
	Attack     Attack
	BotCount   int
	PerBotRate float64
	BotsSolve  bool

	// Seed drives all randomness; equal seeds reproduce runs bit-for-bit.
	Seed int64
}

// Result holds materialised measurements from a completed scenario. All
// series are per-second.
type Result struct {
	// ClientMbps is the mean per-client goodput.
	ClientMbps []float64
	// ServerMbps is the server's outgoing throughput.
	ServerMbps []float64
	// ServerCPUPct, ClientCPUPct, AttackerCPUPct are utilisation series.
	ServerCPUPct   []float64
	ClientCPUPct   []float64
	AttackerCPUPct []float64
	// ListenQueue and AcceptQueue are occupancy series.
	ListenQueue []float64
	AcceptQueue []float64
	// AttackerEstablishedPerSec is the effective attack rate.
	AttackerEstablishedPerSec []float64
	// AttackerSentPerSec is the measured (post-CPU-limit) attack rate.
	AttackerSentPerSec []float64
	// Summary numbers over the attack phases.
	ClientMbpsBefore, ClientMbpsDuring, ClientMbpsAfter float64
	EffectiveAttackRate                                 float64
}

// Run executes a scenario to completion.
func Run(sc Scenario) (*Result, error) {
	cfg, err := sc.toConfig()
	if err != nil {
		return nil, err
	}
	run, err := experiments.RunFlood(cfg)
	if err != nil {
		return nil, err
	}
	return materialise(run), nil
}

func (sc Scenario) toConfig() (experiments.FloodConfig, error) {
	cfg := experiments.FloodConfig{
		Duration:      sc.Duration,
		AttackStart:   sc.AttackStart,
		AttackStop:    sc.AttackStop,
		NumClients:    sc.NumClients,
		ClientRate:    sc.ClientRate,
		RequestBytes:  sc.RequestBytes,
		ClientsSolve:  sc.ClientsSolve,
		Params:        sc.Params,
		Backlog:       sc.Backlog,
		AcceptBacklog: sc.AcceptBacklog,
		Workers:       sc.Workers,
		BotCount:      sc.BotCount,
		PerBotRate:    sc.PerBotRate,
		BotsSolve:     sc.BotsSolve,
		Seed:          sc.Seed,
	}
	switch sc.Defense {
	case "", DefensePuzzles:
		cfg.Protection = serversim.ProtectionPuzzles
	case DefenseNone:
		cfg.Protection = serversim.ProtectionNone
	case DefenseCookies:
		cfg.Protection = serversim.ProtectionCookies
	case DefenseSYNCache:
		cfg.Protection = serversim.ProtectionSYNCache
	default:
		return cfg, fmt.Errorf("sim: unknown defense %q", sc.Defense)
	}
	switch sc.Attack {
	case "", AttackConnFlood:
		cfg.AttackKind = attacksim.ConnFlood
	case AttackSYNFlood:
		cfg.AttackKind = attacksim.SYNFlood
	case AttackSolutionFlood:
		cfg.AttackKind = attacksim.SolutionFlood
	default:
		return cfg, fmt.Errorf("sim: unknown attack %q", sc.Attack)
	}
	return cfg, nil
}

func materialise(run *experiments.FloodRun) *Result {
	res := &Result{
		ClientMbps:                run.ClientThroughputMbps(),
		ServerMbps:                run.ServerThroughputMbps(),
		ServerCPUPct:              run.ServerCPU(),
		ClientCPUPct:              run.ClientCPU(),
		AttackerCPUPct:            run.AttackerCPU(),
		AttackerEstablishedPerSec: run.AttackerEstablishedRate(),
		AttackerSentPerSec:        run.MeasuredAttackRate(),
	}
	res.ListenQueue, res.AcceptQueue = run.QueueSizes()
	res.ClientMbpsBefore = run.PhaseMean(res.ClientMbps, experiments.PhaseBefore)
	res.ClientMbpsDuring = run.PhaseMean(res.ClientMbps, experiments.PhaseDuring)
	res.ClientMbpsAfter = run.PhaseMean(res.ClientMbps, experiments.PhaseAfter)
	res.EffectiveAttackRate = run.AttackWindowMean(res.AttackerEstablishedPerSec)
	return res
}
