package sim

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	inner := experiments.Table{Title: t.Title, Header: t.Header, Rows: t.Rows}
	return inner.String()
}

func fromInternal(t experiments.Table) Table {
	return Table{Title: t.Title, Header: t.Header, Rows: t.Rows}
}

// Scale selects the experiment size.
type Scale string

// Experiment scales.
const (
	// ScalePaper is the full §6 deployment (600 s, 15 clients, 10 bots at
	// 500 pps). Minutes of wall time per experiment.
	ScalePaper Scale = "paper"
	// ScaleQuick is a reduced deployment with the same structure (120 s).
	ScaleQuick Scale = "quick"
	// ScaleTiny is the smallest deployment that preserves the attack
	// structure (60 s); it backs fast demos and the CI cache round-trip.
	ScaleTiny Scale = "tiny"
)

func (s Scale) flood() (experiments.Scale, error) {
	switch s {
	case "", ScaleQuick:
		return experiments.QuickScale(), nil
	case ScalePaper:
		return experiments.PaperScale(), nil
	case ScaleTiny:
		return experiments.TinyScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("sim: unknown scale %q", s)
	}
}

// RunOption tunes how an experiment executes (never what it computes).
type RunOption func(*experiments.Scale)

// WithWorkers sets the runner pool width used to fan the experiment's
// scenario grid out (0 = GOMAXPROCS, 1 = serial). Results are identical
// at every width.
func WithWorkers(n int) RunOption {
	return func(s *experiments.Scale) { s.Parallelism = n }
}

// WithShards partitions every simulated scenario's nodes across n
// event-engine shards executing concurrently in lock-step time windows
// (0 or 1 = the classic single heap, AutoShards = one per core). Like
// WithWorkers this is an execution knob only: metrics and sink output are
// byte-identical at every shard count. Workers parallelise *across* grid
// cells; shards parallelise *inside* one cell, which is what speeds up a
// single very large flood.
func WithShards(n int) RunOption {
	return func(s *experiments.Scale) { s.Shards = n }
}

// AutoShards selects one event-engine shard per core.
const AutoShards = sweep.AutoShards

// WithSpeculative switches sharded execution from conservative lock-step
// windows to optimistic speculate/rollback execution: shards run past
// their lookahead bound and roll back when a straggler cross-shard packet
// invalidates the speculation. Like WithShards this is an execution knob
// only — output is byte-identical to the conservative run (the
// conservative path is the oracle in the differential test harness), and
// the flag never enters the result-cache hash. No-op without WithShards.
func WithSpeculative() RunOption {
	return func(s *experiments.Scale) { s.Speculative = true }
}

// WithSinks streams every completed grid cell's sweep.Result to the given
// sinks, in grid order, as runs land (see sweep.NewCSV, sweep.NewNDJSON,
// sweep.NewTable). The caller owns the sinks and flushes them after the
// last run.
func WithSinks(sinks ...sweep.Sink) RunOption {
	return func(s *experiments.Scale) { s.Sinks = append(s.Sinks, sinks...) }
}

// WithCache short-circuits grid cells whose canonical scenario hash is
// already stored in the cache: cache hits perform zero simulation work
// and report identical results (see sweep.OpenCache; the cache's
// Hits/Misses counters make the skips observable).
func WithCache(c *sweep.Cache) RunOption {
	return func(s *experiments.Scale) { s.Cache = c }
}

// WithDebug streams execution observability to w as cells complete:
// per-cell shard load balance (per-shard event counts, window count,
// barrier waits) and per-grid runner-pool backpressure (local claims,
// steals, failed steal scans, mean queue depth). Purely observational —
// results, sinks, and the cache never see it.
func WithDebug(w io.Writer) RunOption {
	return func(s *experiments.Scale) { s.Debug = w }
}

// registry is the single source of truth for the available experiments:
// both ExperimentIDs (display order) and RunExperiment (dispatch) derive
// from it, so a driver cannot be listed but unrunnable or vice versa.
type registryEntry struct {
	id  string
	run func(scale experiments.Scale) ([]Table, error)
}

var registry = []registryEntry{
	{"fig3a", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig3a(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig3b", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig3b(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig6", func(scale experiments.Scale) ([]Table, error) {
		cfg := experiments.Fig6Config{Scale: scale}
		if scale.Duration < 600*time.Second {
			cfg.Ks = []uint8{1, 2, 4}
			cfg.Ms = []uint8{4, 10, 16}
			cfg.Connections = 100
		}
		r, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig7", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig7(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig8", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig8(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig9", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig9(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig10", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig10(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig11", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig11(scale)
		if err != nil {
			return nil, err
		}
		t := fromInternal(r.Table())
		t.Rows = append(t.Rows, []string{"reduction", fmt.Sprintf("%.1fx", r.ReductionFactor()), ""})
		return []Table{t}, nil
	}},
	{"fig12", func(scale experiments.Scale) ([]Table, error) {
		cfg := experiments.Fig12Config{Scale: scale}
		if scale.Duration < 600*time.Second {
			cfg.Ks = []uint8{1, 2}
			cfg.Ms = []uint8{12, 16, 17, 20}
		}
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig13", func(scale experiments.Scale) ([]Table, error) {
		rates := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
		if scale.Duration < 600*time.Second {
			rates = []float64{100, 400, 700, 1000}
		}
		r, err := experiments.Fig13(scale, rates)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig14", func(scale experiments.Scale) ([]Table, error) {
		sizes := []int{2, 4, 6, 8, 10, 12, 14}
		if scale.Duration < 600*time.Second {
			sizes = []int{2, 6, 10, 14}
		}
		r, err := experiments.Fig14(scale, sizes, 5000)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"fig15", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig15(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"tab1", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Table1(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"nash", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.NashExample(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"ablation-opportunistic", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.AblationOpportunistic(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"ablation-solutionflood", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.AblationSolutionFlood(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"ablation-membound", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.AblationMemoryBound(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"ablation-adaptive", func(scale experiments.Scale) ([]Table, error) {
		// The per-5s controller needs a longer attack than the default
		// reduced scale provides.
		if scale.Duration < 600*time.Second {
			scale.Duration = 160 * time.Second
			scale.AttackStart = 15 * time.Second
			scale.AttackStop = 105 * time.Second
		}
		r, err := experiments.AblationAdaptive(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
	{"armsrace", func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.ArmsRace(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	}},
}

// ExperimentIDs returns the available experiment identifiers in display
// order (the registry's order: figures, tables, then ablations).
func ExperimentIDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// RunExperiment executes a named experiment at the given scale and returns
// its result tables. The experiment's scenario grid fans out across the
// work-stealing runner; use WithWorkers to bound the pool width, WithSinks
// to stream each grid cell's structured Result as CSV/NDJSON/tables, and
// WithCache to skip cells already present in a result cache.
func RunExperiment(id string, scale Scale, opts ...RunOption) ([]Table, error) {
	fs, err := scale.flood()
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(&fs)
	}
	want := strings.ToLower(id)
	for _, e := range registry {
		if e.id == want {
			return e.run(fs)
		}
	}
	return nil, fmt.Errorf("sim: unknown experiment %q (known: %s)",
		id, strings.Join(ExperimentIDs(), ", "))
}

// RunSweep executes a user-declared factorial design: the grid expands to
// its deduplicated scenario cells, the cells fan out across the
// work-stealing runner, and each completed cell is measured with the
// standard flood metric set (client goodput per attack phase, effective
// attack rate, and the headline series). Results stream to WithSinks
// sinks in grid order as runs land and are cached under WithCache, so
// re-running a sweep re-simulates only new cells.
func RunSweep(grid sweep.Grid, opts ...RunOption) ([]sweep.Result, error) {
	var scale experiments.Scale // zero deployment: only execution options apply
	for _, opt := range opts {
		opt(&scale)
	}
	return experiments.RunSweep(scale, grid)
}
