package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	inner := experiments.Table{Title: t.Title, Header: t.Header, Rows: t.Rows}
	return inner.String()
}

func fromInternal(t experiments.Table) Table {
	return Table{Title: t.Title, Header: t.Header, Rows: t.Rows}
}

// Scale selects the experiment size.
type Scale string

// Experiment scales.
const (
	// ScalePaper is the full §6 deployment (600 s, 15 clients, 10 bots at
	// 500 pps). Minutes of wall time per experiment.
	ScalePaper Scale = "paper"
	// ScaleQuick is a reduced deployment with the same structure (120 s).
	ScaleQuick Scale = "quick"
)

func (s Scale) flood() (experiments.Scale, error) {
	switch s {
	case "", ScaleQuick:
		return experiments.QuickScale(), nil
	case ScalePaper:
		return experiments.PaperScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("sim: unknown scale %q", s)
	}
}

// RunOption tunes how an experiment executes (never what it computes).
type RunOption func(*experiments.Scale)

// WithWorkers sets the runner pool width used to fan the experiment's
// scenario grid out (0 = GOMAXPROCS, 1 = serial). Results are identical
// at every width.
func WithWorkers(n int) RunOption {
	return func(s *experiments.Scale) { s.Parallelism = n }
}

// ExperimentIDs returns the available experiment identifiers in display
// order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

type expRunner func(scale experiments.Scale) ([]Table, error)

var experimentRunners = map[string]expRunner{
	"fig3a": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig3a(scale.Parallelism)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig3b": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig3b(scale.Parallelism)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig6": func(scale experiments.Scale) ([]Table, error) {
		cfg := experiments.Fig6Config{Parallelism: scale.Parallelism}
		if scale.Duration < 600*time.Second {
			cfg.Ks = []uint8{1, 2, 4}
			cfg.Ms = []uint8{4, 10, 16}
			cfg.Connections = 100
		}
		r, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig7": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig7(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig8": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig8(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig9": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig9(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig10": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig10(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig11": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig11(scale)
		if err != nil {
			return nil, err
		}
		t := fromInternal(r.Table())
		t.Rows = append(t.Rows, []string{"reduction", fmt.Sprintf("%.1fx", r.ReductionFactor()), ""})
		return []Table{t}, nil
	},
	"fig12": func(scale experiments.Scale) ([]Table, error) {
		cfg := experiments.Fig12Config{Scale: scale}
		if scale.Duration < 600*time.Second {
			cfg.Ks = []uint8{1, 2}
			cfg.Ms = []uint8{12, 16, 17, 20}
		}
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig13": func(scale experiments.Scale) ([]Table, error) {
		rates := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
		if scale.Duration < 600*time.Second {
			rates = []float64{100, 400, 700, 1000}
		}
		r, err := experiments.Fig13(scale, rates)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig14": func(scale experiments.Scale) ([]Table, error) {
		sizes := []int{2, 4, 6, 8, 10, 12, 14}
		if scale.Duration < 600*time.Second {
			sizes = []int{2, 6, 10, 14}
		}
		r, err := experiments.Fig14(scale, sizes, 5000)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"fig15": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Fig15(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"tab1": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.Table1(scale.Parallelism)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"nash": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.NashExample(scale.Parallelism)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"ablation-opportunistic": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.AblationOpportunistic(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"ablation-solutionflood": func(scale experiments.Scale) ([]Table, error) {
		r, err := experiments.AblationSolutionFlood(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
	"ablation-membound": func(experiments.Scale) ([]Table, error) {
		return []Table{fromInternal(experiments.AblationMemoryBound().Table())}, nil
	},
	"ablation-adaptive": func(scale experiments.Scale) ([]Table, error) {
		// The per-5s controller needs a longer attack than the default
		// reduced scale provides.
		if scale.Duration < 600*time.Second {
			scale.Duration = 160 * time.Second
			scale.AttackStart = 15 * time.Second
			scale.AttackStop = 105 * time.Second
		}
		r, err := experiments.AblationAdaptive(scale)
		if err != nil {
			return nil, err
		}
		return []Table{fromInternal(r.Table())}, nil
	},
}

// RunExperiment executes a named experiment at the given scale and returns
// its result tables. The experiment's scenario grid fans out across the
// work-stealing runner; use WithWorkers to bound the pool width.
func RunExperiment(id string, scale Scale, opts ...RunOption) ([]Table, error) {
	fs, err := scale.flood()
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(&fs)
	}
	run, ok := experimentRunners[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("sim: unknown experiment %q (known: %s)",
			id, strings.Join(ExperimentIDs(), ", "))
	}
	return run(fs)
}
