package game

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

func TestLStar(t *testing.T) {
	tests := []struct {
		wav, alpha, want float64
	}{
		{140630, 1.1, 140630 / 2.1},
		{1000, 1, 500},
		{1000, 3, 250},
	}
	for _, tt := range tests {
		got, err := LStar(tt.wav, tt.alpha)
		if err != nil {
			t.Fatalf("LStar(%v, %v): %v", tt.wav, tt.alpha, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("LStar(%v, %v) = %v, want %v", tt.wav, tt.alpha, got, tt.want)
		}
	}
}

func TestLStarRejectsBadInputs(t *testing.T) {
	for _, in := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if _, err := LStar(in[0], in[1]); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("LStar(%v, %v) error = %v, want ErrInvalidModel", in[0], in[1], err)
		}
	}
}

// The paper's worked example (§4.4): w_av = 140630, α = 1.1 ⇒ (k, m) = (2, 17).
func TestPaperExampleReproducesKM(t *testing.T) {
	in := PaperExample()
	p, err := SelectParams(in.Wav, in.Alpha, SelectionConfig{})
	if err != nil {
		t.Fatalf("SelectParams: %v", err)
	}
	if p.K != 2 || p.M != 17 {
		t.Errorf("SelectParams = %v, want (k=2,m=17)", p)
	}
}

func TestParamsFor(t *testing.T) {
	tests := []struct {
		lstar   float64
		k       uint8
		wantM   uint8
		wantErr bool
	}{
		{140630 / 2.1, 2, 17, false},
		{140630 / 2.1, 1, 18, false},
		{128, 1, 8, false}, // 2^7 → m = 7+1
		{1, 1, 1, false},
		{math.Exp2(80), 1, 0, true}, // unattainable
		{0, 1, 0, true},
		{100, 0, 0, true},
	}
	for _, tt := range tests {
		p, err := ParamsFor(tt.lstar, tt.k, 64)
		if (err != nil) != tt.wantErr {
			t.Fatalf("ParamsFor(%v, %d) error = %v, wantErr %v", tt.lstar, tt.k, err, tt.wantErr)
		}
		if err == nil && p.M != tt.wantM {
			t.Errorf("ParamsFor(%v, %d) = %v, want m=%d", tt.lstar, tt.k, p, tt.wantM)
		}
	}
}

// TestParamsForRoundTripProperty pins the bit-rounding envelope the
// adaptive defender leans on: for any attainable target ℓ* ≥ k, the
// deployed difficulty k·2^(m−1) is never easier than ℓ* and never more
// than a factor of 2 harder (m rounds up to whole bits, so a controller
// chasing ℓ* lands in [ℓ*, 2ℓ*)).
func TestParamsForRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		// Deterministic spread over ℓ* ∈ [k, 2^30) and k ∈ {1..4}.
		u := uint64(seed)
		u ^= u >> 33
		u *= 0xff51afd7ed558ccd
		u ^= u >> 33
		k := uint8(1 + u%4)
		exp := float64(u%3000) / 100.0 // 0..30 bits
		lstar := float64(k) * math.Exp2(exp)
		p, err := ParamsFor(lstar, k, puzzle.MaxPreimageBits)
		if err != nil {
			t.Logf("ParamsFor(%v, %d): %v", lstar, k, err)
			return false
		}
		work := p.ExpectedSolveHashes()
		if work < lstar || work >= 2*lstar {
			t.Logf("ParamsFor(%v, %d) deploys %v hashes, outside [ℓ*, 2ℓ*)", lstar, k, work)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParamsForRespectsPreimage(t *testing.T) {
	// m may not exceed l.
	if _, err := ParamsFor(math.Exp2(40), 1, 32); !errors.Is(err, ErrUnattainable) {
		t.Errorf("ParamsFor beyond l error = %v, want ErrUnattainable", err)
	}
}

func TestSelectParamsGuessBound(t *testing.T) {
	// A very loose guess bound admits k=1; the default bound forces k=2
	// for the paper example.
	in := PaperExample()
	p, err := SelectParams(in.Wav, in.Alpha, SelectionConfig{MaxGuessProbability: 1})
	if err != nil {
		t.Fatalf("SelectParams: %v", err)
	}
	if p.K != 1 {
		t.Errorf("loose bound K = %d, want 1", p.K)
	}
}

func TestSelectParamsWellProvisionedIsEasier(t *testing.T) {
	weak, err := SelectParams(140630, 0.5, SelectionConfig{})
	if err != nil {
		t.Fatalf("SelectParams(α=0.5): %v", err)
	}
	strong, err := SelectParams(140630, 8, SelectionConfig{})
	if err != nil {
		t.Fatalf("SelectParams(α=8): %v", err)
	}
	if strong.ExpectedSolveHashes() >= weak.ExpectedSolveHashes() {
		t.Errorf("better provisioning yielded harder puzzles: α=8 %v vs α=0.5 %v", strong, weak)
	}
}

func TestRHat(t *testing.T) {
	got, err := RHat(1000, 10, 100)
	if err != nil {
		t.Fatalf("RHat: %v", err)
	}
	want := 100.0 - 1.0/10000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("RHat = %v, want %v", got, want)
	}
	if _, err := RHat(0, 10, 100); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("RHat(0,...) error = %v", err)
	}
}

// Property: ℓ* is increasing in w_av and decreasing in α — the central
// design tradeoff of §4.2.
func TestLStarMonotonicityProperty(t *testing.T) {
	f := func(w, a uint16) bool {
		wav := float64(w%10000) + 1
		alpha := float64(a%100)/10 + 0.1
		l1, err1 := LStar(wav, alpha)
		l2, err2 := LStar(wav*2, alpha)
		l3, err3 := LStar(wav, alpha*2)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return l2 > l1 && l3 < l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestWavProfiles(t *testing.T) {
	// A device hashing at 351575 h/s affords 140630 hashes in 400 ms.
	got := WavFromHashRate(351575, 400*time.Millisecond)
	if math.Abs(got-140630) > 0.5 {
		t.Errorf("WavFromHashRate = %v, want 140630", got)
	}
	avg, err := WavAverage([]float64{100, 200, 300}, time.Second)
	if err != nil || avg != 200 {
		t.Errorf("WavAverage = %v, %v; want 200", avg, err)
	}
	if _, err := WavAverage(nil, time.Second); err == nil {
		t.Error("WavAverage(nil) succeeded")
	}
	if _, err := WavAverage([]float64{-1}, time.Second); err == nil {
		t.Error("WavAverage(-1) succeeded")
	}
}

func TestAlphaFromStress(t *testing.T) {
	points := []StressPoint{
		{Concurrent: 1000, ServiceRate: 1100},
		{Concurrent: 10, ServiceRate: 250},
		{Concurrent: 100, ServiceRate: 1050},
	}
	got, err := AlphaFromStress(points)
	if err != nil {
		t.Fatalf("AlphaFromStress: %v", err)
	}
	if math.Abs(got-1.1) > 1e-9 {
		t.Errorf("AlphaFromStress = %v, want 1.1", got)
	}
	if _, err := AlphaFromStress(nil); err == nil {
		t.Error("AlphaFromStress(nil) succeeded")
	}
	if _, err := Alpha(StressPoint{Concurrent: 0, ServiceRate: 1}); err == nil {
		t.Error("Alpha with zero concurrency succeeded")
	}
}

func TestProviderPayoff(t *testing.T) {
	p := puzzle.Params{K: 2, M: 4, L: 64}
	// ℓ = 16, g = 1, d = 2 ⇒ payoff at x=3 is (16−3)·3.
	if got := ProviderPayoff(p, 3); math.Abs(got-39) > 1e-9 {
		t.Errorf("ProviderPayoff = %v, want 39", got)
	}
}
