package game_test

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
)

// The worked example of the paper's §4.4: measured model parameters yield
// the Nash-equilibrium difficulty (k, m) = (2, 17).
func ExampleSelectParams() {
	const (
		wav   = 140630 // hashes a client affords in the 400 ms budget
		alpha = 1.1    // server service parameter from the stress test
	)
	params, err := game.SelectParams(wav, alpha, game.SelectionConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lstar, _ := game.LStar(wav, alpha)
	fmt.Printf("ℓ* = %.0f hashes\n", lstar)
	fmt.Printf("difficulty = (k=%d, m=%d)\n", params.K, params.M)
	// Output:
	// ℓ* = 66967 hashes
	// difficulty = (k=2, m=17)
}

// Profiling a device into a client valuation (§4.3).
func ExampleWavFromHashRate() {
	// A machine hashing at 351,575 SHA-256/s affords this much work within
	// the 400 ms handshake budget.
	w := game.WavFromHashRate(351575, 400*time.Millisecond)
	fmt.Printf("w = %.0f hashes\n", w)
	// Output:
	// w = 140630 hashes
}

// Solving the finite-N followers' game numerically.
func ExampleFiniteGame_EquilibriumRates() {
	g := game.FiniteGame{
		Weights: []float64{1000, 2000, 4000}, // heterogeneous valuations
		Mu:      50,                          // server service rate
	}
	rates, err := g.EquilibriumRates(10) // difficulty ℓ = 10 hashes
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, r := range rates {
		fmt.Printf("client %d: x* = %.1f req/s\n", i, r)
	}
	// Output:
	// client 0: x* = 6.6 req/s
	// client 1: x* = 14.1 req/s
	// client 2: x* = 29.2 req/s
}
