package game

import "fmt"

// ReplicatorStep advances one discrete round of replicator dynamics: each
// strategy's share grows in proportion to its payoff relative to the
// population-average payoff,
//
//	xᵢ' = xᵢ · sᵢ / Σⱼ xⱼ sⱼ
//
// where sᵢ is payoffs[i] shifted so the worst strategy scores zero plus a
// 10% baseline of the payoff spread (the affine shift leaves the dynamics'
// fixed points unchanged but keeps the discrete map well defined for
// negative or zero payoffs). A floor ∈ [0, 1/n) then mixes the result with
// the uniform distribution, xᵢ'' = floor + (1 − n·floor)·xᵢ', guaranteeing
// every strategy keeps at least the floor share — the exploration mass an
// online learner needs so a temporarily useless arm can recover.
//
// The step is a pure function of its arguments: equal inputs produce equal
// outputs bit for bit, which is what lets adaptive strategies built on it
// stay deterministic under sharded and macro-aggregated execution.
//
// Shares must be a probability vector (non-negative, summing to 1 within
// 1e-6); equal payoffs leave shares unchanged apart from the floor mix.
func ReplicatorStep(shares, payoffs []float64, floor float64) ([]float64, error) {
	n := len(shares)
	if n == 0 || len(payoffs) != n {
		return nil, fmt.Errorf("game: %d shares, %d payoffs: %w", n, len(payoffs), ErrInvalidModel)
	}
	if floor < 0 || floor >= 1/float64(n) {
		return nil, fmt.Errorf("game: floor %v with %d strategies: %w", floor, n, ErrInvalidModel)
	}
	var total float64
	for _, x := range shares {
		if x < 0 {
			return nil, fmt.Errorf("game: negative share %v: %w", x, ErrInvalidModel)
		}
		total += x
	}
	if total < 1-1e-6 || total > 1+1e-6 {
		return nil, fmt.Errorf("game: shares sum to %v: %w", total, ErrInvalidModel)
	}

	min, max := payoffs[0], payoffs[0]
	for _, f := range payoffs[1:] {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	// Baseline keeps the denominator positive when every strategy ties at
	// the minimum; proportional to the spread so the selection pressure is
	// scale invariant, and 1 when there is no spread at all (pure floor mix).
	baseline := 0.1 * (max - min)
	if baseline == 0 {
		baseline = 1
	}
	next := make([]float64, n)
	var mean float64
	for i, x := range shares {
		next[i] = x * (payoffs[i] - min + baseline)
		mean += next[i]
	}
	for i := range next {
		next[i] = floor + (1-float64(n)*floor)*(next[i]/mean)
	}
	return next, nil
}

// UniformShares returns the uniform probability vector over n strategies —
// the canonical replicator starting point.
func UniformShares(n int) []float64 {
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = 1 / float64(n)
	}
	return shares
}
