package game

import (
	"errors"
	"math"
	"testing"
)

func TestEquilibriumExistsBelowRHat(t *testing.T) {
	g := UniformGame(10, 1000, 100)
	rhat, err := g.RHat()
	if err != nil {
		t.Fatalf("RHat: %v", err)
	}
	if _, err := g.EquilibriumYBar(rhat * 0.5); err != nil {
		t.Errorf("EquilibriumYBar below r̂: %v", err)
	}
	if _, err := g.EquilibriumYBar(rhat * 1.01); !errors.Is(err, ErrNoEquilibrium) {
		t.Errorf("EquilibriumYBar above r̂ error = %v, want ErrNoEquilibrium", err)
	}
}

func TestEquilibriumSolvesFixedPoint(t *testing.T) {
	g := UniformGame(20, 5000, 200)
	l := 100.0
	ybar, err := g.EquilibriumYBar(l)
	if err != nil {
		t.Fatalf("EquilibriumYBar: %v", err)
	}
	if res := g.lTilde(ybar, l); math.Abs(res) > 1e-6 {
		t.Errorf("L̃(ȳ*) = %v, want ≈ 0", res)
	}
	n := float64(g.N())
	if ybar <= n || ybar >= n+g.Mu {
		t.Errorf("ȳ* = %v outside (N, N+µ)", ybar)
	}
}

func TestHarderPuzzlesLowerRates(t *testing.T) {
	g := UniformGame(10, 10000, 100)
	lo, err := g.TotalRate(10)
	if err != nil {
		t.Fatalf("TotalRate(10): %v", err)
	}
	hi, err := g.TotalRate(500)
	if err != nil {
		t.Fatalf("TotalRate(500): %v", err)
	}
	if hi >= lo {
		t.Errorf("rate at ℓ=500 (%v) not below rate at ℓ=10 (%v)", hi, lo)
	}
}

func TestEquilibriumRatesProportionalToValuations(t *testing.T) {
	g := FiniteGame{Weights: []float64{1000, 2000, 4000}, Mu: 50}
	rates, err := g.EquilibriumRates(10)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	if len(rates) != 3 {
		t.Fatalf("len(rates) = %d", len(rates))
	}
	// y_i = w_i·ȳ/w̄ ⇒ (1+x_i) proportional to w_i.
	r01 := (1 + rates[1]) / (1 + rates[0])
	r12 := (1 + rates[2]) / (1 + rates[1])
	if math.Abs(r01-2) > 1e-6 || math.Abs(r12-2) > 1e-6 {
		t.Errorf("rate ratios = %v, %v; want 2, 2", r01, r12)
	}
}

func TestLowValuationClientsDropOut(t *testing.T) {
	// One client values the service a thousand times less; at a difficulty
	// priced for the big spender it must be clamped to zero.
	g := FiniteGame{Weights: []float64{10, 10000}, Mu: 50}
	rates, err := g.EquilibriumRates(1000)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	if rates[0] != 0 {
		t.Errorf("poor client rate = %v, want 0", rates[0])
	}
	if rates[1] <= 0 {
		t.Errorf("rich client rate = %v, want > 0", rates[1])
	}
}

func TestOptimalDifficultyIsInterior(t *testing.T) {
	g := UniformGame(50, 5000, 500)
	l, err := g.OptimalDifficulty()
	if err != nil {
		t.Fatalf("OptimalDifficulty: %v", err)
	}
	rhat, err := g.RHat()
	if err != nil {
		t.Fatalf("RHat: %v", err)
	}
	if l <= 0 || l >= rhat {
		t.Errorf("ℓ* = %v outside (0, r̂=%v)", l, rhat)
	}
	// The optimum must beat its neighbours on the provider objective
	// ℓ·x̄(ℓ).
	payoff := func(l float64) float64 {
		x, err := g.TotalRate(l)
		if err != nil {
			return math.Inf(-1)
		}
		return l * x
	}
	p := payoff(l)
	if payoff(l*0.9) > p+1e-6 || payoff(l*1.1) > p+1e-6 {
		t.Errorf("ℓ* = %v not a local maximum: %v vs %v / %v",
			l, p, payoff(l*0.9), payoff(l*1.1))
	}
}

// The asymptotic result (Eq. 18): as N grows with µ = α·N, the finite-N
// optimal difficulty converges to w_av/(α+1).
func TestFiniteGameConvergesToAsymptotic(t *testing.T) {
	const (
		wav   = 140630.0
		alpha = 1.1
	)
	want, err := LStar(wav, alpha)
	if err != nil {
		t.Fatalf("LStar: %v", err)
	}
	prevErr := math.Inf(1)
	for _, n := range []int{10, 100, 1000, 10000} {
		g := UniformGame(n, wav, alpha*float64(n))
		got, err := g.OptimalDifficulty()
		if err != nil {
			t.Fatalf("OptimalDifficulty(N=%d): %v", n, err)
		}
		relErr := math.Abs(got-want) / want
		if relErr > prevErr*1.01 {
			t.Errorf("N=%d relative error %v did not shrink from %v", n, relErr, prevErr)
		}
		prevErr = relErr
	}
	if prevErr > 0.01 {
		t.Errorf("N=10000 relative error %v, want < 1%%", prevErr)
	}
}

func TestBestResponseConsistentWithEquilibrium(t *testing.T) {
	// At the Nash point, each client's best response to the others'
	// equilibrium rates is (approximately) its own equilibrium rate.
	g := UniformGame(5, 2000, 100)
	l := 40.0
	rates, err := g.EquilibriumRates(l)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	var total float64
	for _, r := range rates {
		total += r
	}
	for i, r := range rates {
		br := BestResponse(g.Weights[i], total-r, l, g.Mu)
		if math.Abs(br-r) > 0.02*(1+r) {
			t.Errorf("client %d best response %v vs equilibrium %v", i, br, r)
		}
	}
}

func TestServiceTime(t *testing.T) {
	if got := ServiceTime(10, 5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("ServiceTime(10, 5) = %v, want 0.2", got)
	}
	if got := ServiceTime(10, 10); !math.IsInf(got, 1) {
		t.Errorf("ServiceTime at saturation = %v, want +Inf", got)
	}
	if got := ServiceTime(10, 12); !math.IsInf(got, 1) {
		t.Errorf("ServiceTime beyond saturation = %v, want +Inf", got)
	}
}

func TestValidateRejectsBadGames(t *testing.T) {
	bad := []FiniteGame{
		{Weights: nil, Mu: 10},
		{Weights: []float64{1, -1}, Mu: 10},
		{Weights: []float64{1}, Mu: 0},
		{Weights: []float64{math.NaN()}, Mu: 10},
	}
	for i, g := range bad {
		if err := g.Validate(); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("game %d Validate error = %v, want ErrInvalidModel", i, err)
		}
	}
}
