package game

import (
	"fmt"
	"math"
)

// FiniteGame is the N-player followers' game of §3.2 with heterogeneous
// valuations, solved numerically (Appendix A).
type FiniteGame struct {
	// Weights are the per-client valuations w_i (hashes a client is willing
	// to pay per request).
	Weights []float64
	// Mu is the server's M/M/1 service rate in requests per second.
	Mu float64
}

// Validate reports whether the game is well formed.
func (g FiniteGame) Validate() error {
	if len(g.Weights) == 0 {
		return fmt.Errorf("game: no clients: %w", ErrInvalidModel)
	}
	for i, w := range g.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("game: weight %d = %v: %w", i, w, ErrInvalidModel)
		}
	}
	if g.Mu <= 0 || math.IsNaN(g.Mu) || math.IsInf(g.Mu, 0) {
		return fmt.Errorf("game: mu = %v: %w", g.Mu, ErrInvalidModel)
	}
	return nil
}

// N returns the number of clients.
func (g FiniteGame) N() int { return len(g.Weights) }

// WBar returns the total valuation w̄ = Σ w_i.
func (g FiniteGame) WBar() float64 {
	var sum float64
	for _, w := range g.Weights {
		sum += w
	}
	return sum
}

// Wav returns the average valuation w̄/N.
func (g FiniteGame) Wav() float64 { return g.WBar() / float64(g.N()) }

// RHat returns the existence bound of Eq. 10 for this game.
func (g FiniteGame) RHat() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	return RHat(g.WBar(), g.N(), g.Mu)
}

// lTilde evaluates L̃(ȳ) = w̄/ȳ − ℓ − 1/(µ+N−ȳ)² (Eq. 9), which is strictly
// decreasing on [N, N+µ).
func (g FiniteGame) lTilde(ybar, l float64) float64 {
	n := float64(g.N())
	d := g.Mu + n - ybar
	return g.WBar()/ybar - l - 1/(d*d)
}

// EquilibriumYBar solves L̃(ȳ) = 0 for a fixed difficulty ℓ by bisection on
// [N, N+µ). It fails with ErrNoEquilibrium when ℓ ≥ r̂.
func (g FiniteGame) EquilibriumYBar(l float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if l < 0 {
		return 0, fmt.Errorf("game: difficulty %v: %w", l, ErrInvalidModel)
	}
	n := float64(g.N())
	lo, hi := n, n+g.Mu
	if g.lTilde(lo, l) <= 0 {
		return 0, fmt.Errorf("game: L̃(N) = %v ≤ 0 at ℓ=%v: %w", g.lTilde(lo, l), l, ErrNoEquilibrium)
	}
	// L̃ → −∞ as ȳ → N+µ: shrink hi until the sign flips, then bisect.
	for g.lTilde(hi-1e-12*(hi-lo), l) > 0 {
		hi += g.Mu // cannot happen mathematically; guard against FP edge
		if hi > n+2*g.Mu {
			return 0, fmt.Errorf("game: bisection bracket failed: %w", ErrNoEquilibrium)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g.lTilde(mid, l) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// EquilibriumRates returns the per-client Nash rates x_i* for a fixed
// difficulty ℓ: y_i = w_i·ȳ/w̄ and x_i = y_i − 1 (Appendix A). Rates are
// clamped at zero for clients priced out of the game.
func (g FiniteGame) EquilibriumRates(l float64) ([]float64, error) {
	ybar, err := g.EquilibriumYBar(l)
	if err != nil {
		return nil, err
	}
	wbar := g.WBar()
	rates := make([]float64, g.N())
	for i, w := range g.Weights {
		x := w*ybar/wbar - 1
		if x < 0 {
			x = 0
		}
		rates[i] = x
	}
	return rates, nil
}

// TotalRate returns the aggregate equilibrium rate x̄ = ȳ − N for a fixed
// difficulty.
func (g FiniteGame) TotalRate(l float64) (float64, error) {
	ybar, err := g.EquilibriumYBar(l)
	if err != nil {
		return 0, err
	}
	return ybar - float64(g.N()), nil
}

// providerObjective evaluates G(ȳ) = (w̄/ȳ − 1/(µ+N−ȳ)²)(ȳ−N) (Eq. 14).
func (g FiniteGame) providerObjective(ybar float64) float64 {
	n := float64(g.N())
	d := g.Mu + n - ybar
	return (g.WBar()/ybar - 1/(d*d)) * (ybar - n)
}

// OptimalYBar maximises the strictly concave G on (N, N+µ) by
// golden-section search.
func (g FiniteGame) OptimalYBar() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	const phi = 1.618033988749894848
	n := float64(g.N())
	eps := 1e-9 * g.Mu
	a, b := n+eps, n+g.Mu-eps
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	for i := 0; i < 300 && b-a > 1e-12*(n+g.Mu); i++ {
		if g.providerObjective(c) > g.providerObjective(d) {
			b = d
		} else {
			a = c
		}
		c = b - (b-a)/phi
		d = a + (b-a)/phi
	}
	return (a + b) / 2, nil
}

// OptimalDifficulty returns the provider's Stackelberg-optimal work level
// ℓ* for the finite game: the difficulty that induces the revenue-optimal
// aggregate rate, ℓ* = w̄/ȳ* − 1/(µ+N−ȳ*)² (Eq. 9 inverted at ȳ*).
func (g FiniteGame) OptimalDifficulty() (float64, error) {
	ystar, err := g.OptimalYBar()
	if err != nil {
		return 0, err
	}
	l := g.lTilde(ystar, 0)
	if l <= 0 {
		return 0, fmt.Errorf("game: degenerate optimum ℓ=%v: %w", l, ErrNoEquilibrium)
	}
	return l, nil
}

// UniformGame builds a FiniteGame with N identical clients of valuation w.
func UniformGame(n int, w, mu float64) FiniteGame {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = w
	}
	return FiniteGame{Weights: weights, Mu: mu}
}
