package game

import (
	"math"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// ServiceTime returns the expected M/M/1 sojourn time S(x̄) = 1/(µ − x̄)
// (paper §4.1). It returns +Inf when the server is saturated (x̄ ≥ µ).
func ServiceTime(mu, xbar float64) float64 {
	if xbar >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - xbar)
}

// Utility evaluates a client's utility (Eq. 4):
//
//	u = w·log(1 + x) − ℓ·x − 1/(µ − x̄)
//
// where x is the client's own rate and xbar the total system rate
// (including x).
func Utility(w, x, xbar, l, mu float64) float64 {
	return w*math.Log(1+x) - l*x - ServiceTime(mu, xbar)
}

// ProviderPayoff evaluates the provider's objective term for one client at
// rate x (Eq. 5): (ℓ(p) − g(p) − d(p))·x.
func ProviderPayoff(p puzzle.Params, x float64) float64 {
	return (p.ExpectedSolveHashes() - p.GenerateHashes() - p.ExpectedVerifyHashes()) * x
}

// BestResponse returns a client's best-response rate to the other clients'
// total rate xOthers under difficulty ℓ, found by maximising the strictly
// concave utility over x ∈ [0, µ − xOthers) with golden-section search.
// It returns 0 when participation is not profitable.
func BestResponse(w, xOthers, l, mu float64) float64 {
	if xOthers >= mu {
		return 0
	}
	const phi = 1.618033988749894848
	a, b := 0.0, mu-xOthers-1e-12*mu
	if b <= a {
		return 0
	}
	u := func(x float64) float64 { return Utility(w, x, xOthers+x, l, mu) }
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	for i := 0; i < 200 && b-a > 1e-12*mu; i++ {
		if u(c) > u(d) {
			b = d
		} else {
			a = c
		}
		c = b - (b-a)/phi
		d = a + (b-a)/phi
	}
	x := (a + b) / 2
	if u(x) < u(0) {
		return 0
	}
	return x
}
