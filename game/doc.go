// Package game implements the Stackelberg difficulty-selection model of the
// paper (§3–§4 and Appendix A).
//
// The server (leader) picks a puzzle difficulty; N selfish clients
// (followers) pick request rates x_i maximising
//
//	u_i = w_i·log(1 + x_i) − ℓ(p)·x_i − 1/(µ − x̄)          (Eq. 4)
//
// where ℓ(p) = k·2^(m−1) is the expected solve cost, µ the server's M/M/1
// service rate, and x̄ the total load. The provider maximises
// Σ(ℓ(p) − g(p) − d(p))·x_i*(p) over difficulties (Eq. 5).
//
// Two solvers are provided:
//
//   - The asymptotic closed form of Theorem 1 / Eq. 18:
//     ℓ* = w_av / (α + 1), where w_av is the limiting average client
//     valuation (hashes per request a client will pay) and α = lim µ/N the
//     asymptotic per-user service parameter. Higher α (better provisioning)
//     ⇒ easier puzzles, as §4.2 discusses.
//
//   - A finite-N numeric solver: the followers' equilibrium ȳ solves
//     L̃(ȳ) = w̄/ȳ − ℓ − 1/(µ+N−ȳ)² = 0 on [N, N+µ) (Eq. 9, strictly
//     decreasing ⇒ bisection), and the provider's optimum maximises
//     G(ȳ) = (w̄/ȳ − 1/(µ+N−ȳ)²)(ȳ−N) (Eq. 14, strictly concave ⇒
//     golden-section search).
//
// ParamsFor converts a target work level ℓ* into wire parameters (k, m):
// m = ⌈log₂(ℓ*/k)⌉ + 1. With the paper's worked example (w_av = 140630,
// α = 1.1, k = 2) this yields m = 17, matching §4.4.
//
// The profiling helpers implement §4.3: w_av from a device's hash rate and
// the 400 ms usability budget (Nielsen 1993), and α from a stress test as
// the ratio of sustained service rate to concurrent load (Fig. 3b).
package game
