package game

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// WavFromHashRate converts a device's hash rate (hashes/second) into a
// client valuation w: the hashes the device can spend within the handshake
// usability budget (paper §4.3; 400 ms by default).
func WavFromHashRate(hashesPerSecond float64, budget time.Duration) float64 {
	return hashesPerSecond * budget.Seconds()
}

// WavAverage returns the average valuation over a fleet of device hash
// rates — the paper's w_av over cpu1..cpu3 (Fig. 3a).
func WavAverage(hashesPerSecond []float64, budget time.Duration) (float64, error) {
	if len(hashesPerSecond) == 0 {
		return 0, fmt.Errorf("game: no devices: %w", ErrInvalidModel)
	}
	var sum float64
	for _, r := range hashesPerSecond {
		if r <= 0 || math.IsNaN(r) {
			return 0, fmt.Errorf("game: hash rate %v: %w", r, ErrInvalidModel)
		}
		sum += WavFromHashRate(r, budget)
	}
	return sum / float64(len(hashesPerSecond)), nil
}

// StressPoint is one sample from a server stress test (Fig. 3b): the
// sustained service rate observed at a given concurrency.
type StressPoint struct {
	// Concurrent is the number of concurrent requests offered.
	Concurrent int
	// ServiceRate is the sustained service rate µ in requests/second.
	ServiceRate float64
}

// Alpha returns the service parameter for one stress point, α = µ/n: the
// asymptotic per-user service capacity.
func Alpha(p StressPoint) (float64, error) {
	if p.Concurrent <= 0 || p.ServiceRate <= 0 {
		return 0, fmt.Errorf("game: stress point %+v: %w", p, ErrInvalidModel)
	}
	return p.ServiceRate / float64(p.Concurrent), nil
}

// AlphaFromStress estimates the asymptotic α from a stress-test sweep: the
// α of the highest-concurrency point, which is where µ/n has converged
// (paper §4.3 takes the limit as load increases).
func AlphaFromStress(points []StressPoint) (float64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("game: no stress points: %w", ErrInvalidModel)
	}
	sorted := make([]StressPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Concurrent < sorted[j].Concurrent })
	return Alpha(sorted[len(sorted)-1])
}

// ModelInputs bundles the measured parameters of §4.3/§4.4.
type ModelInputs struct {
	// Wav is the average client valuation in hashes per connection.
	Wav float64
	// Alpha is the server's asymptotic service parameter.
	Alpha float64
	// Mu is the sustained service rate (used only by finite-N analysis).
	Mu float64
}

// PaperExample returns the measured inputs of the paper's worked example
// (§4.4): w_av = 140630 hashes, α = 1.1, µ ≈ 1100 requests/second, which
// yield the Nash difficulty (k, m) = (2, 17).
func PaperExample() ModelInputs {
	return ModelInputs{Wav: 140630, Alpha: 1.1, Mu: 1100}
}
