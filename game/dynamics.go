package game

import (
	"fmt"
	"math"
)

// DynamicsResult reports a best-response dynamics run.
type DynamicsResult struct {
	// Rates are the final per-client request rates.
	Rates []float64
	// Rounds is the number of full sweeps performed.
	Rounds int
	// Converged reports whether the largest per-client rate change in the
	// final round fell below the tolerance.
	Converged bool
	// MaxDelta is the largest rate change in the final round.
	MaxDelta float64
}

// BestResponseDynamics simulates the followers' game as iterated play:
// starting from the given rates (zeros when nil), each client in turn
// replaces its rate with its best response to the others. For the strictly
// concave utilities of Eq. 4 this converges to the Nash equilibrium, which
// validates that the equilibrium the solver computes is the one selfish
// clients actually reach — the behavioural assumption behind §3.2.
func (g FiniteGame) BestResponseDynamics(l float64, start []float64, maxRounds int, tol float64) (DynamicsResult, error) {
	if err := g.Validate(); err != nil {
		return DynamicsResult{}, err
	}
	if l < 0 {
		return DynamicsResult{}, fmt.Errorf("game: difficulty %v: %w", l, ErrInvalidModel)
	}
	if maxRounds <= 0 {
		maxRounds = 200
	}
	if tol <= 0 {
		tol = 1e-6
	}
	n := g.N()
	rates := make([]float64, n)
	if start != nil {
		if len(start) != n {
			return DynamicsResult{}, fmt.Errorf("game: %d starting rates for %d clients: %w",
				len(start), n, ErrInvalidModel)
		}
		copy(rates, start)
	}
	res := DynamicsResult{Rates: rates}
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		res.MaxDelta = 0
		var total float64
		for _, r := range rates {
			total += r
		}
		for i := range rates {
			others := total - rates[i]
			br := BestResponse(g.Weights[i], others, l, g.Mu)
			// Damped update: undamped play oscillates because the shared
			// congestion term 1/(µ−x̄) couples every move; averaging with
			// the previous rate (a standard stabilisation for fictitious
			// play) restores convergence to the same fixed point.
			next := 0.5*rates[i] + 0.5*br
			delta := math.Abs(br - rates[i])
			if delta > res.MaxDelta {
				res.MaxDelta = delta
			}
			total = others + next
			rates[i] = next
		}
		if res.MaxDelta < tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}
