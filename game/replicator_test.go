package game

import (
	"errors"
	"math"
	"testing"
)

func TestReplicatorStepConvergesToDominantArm(t *testing.T) {
	// A strictly dominant arm absorbs essentially all non-floor mass. The
	// ideal fixed point under an exploration floor f is 1 − (n−1)·f for the
	// winner and f for everyone else; the exploration baseline (10% of the
	// payoff spread) keeps the losers' fitness marginally positive, so the
	// real fixed point sits within 0.01 of that ideal, not exactly on it.
	const floor = 0.02
	shares := UniformShares(3)
	payoffs := []float64{1.0, 0.2, 0.1}
	var prev []float64
	for i := 0; i < 200; i++ {
		next, err := ReplicatorStep(shares, payoffs, floor)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		prev, shares = shares, next
	}
	// The dynamics must actually have settled by step 200.
	for i := range shares {
		if math.Abs(shares[i]-prev[i]) > 1e-9 {
			t.Errorf("share %d still moving at step 200: %v -> %v", i, prev[i], shares[i])
		}
	}
	want := 1 - 2*floor
	if math.Abs(shares[0]-want) > 0.01 {
		t.Errorf("dominant share = %v, want %v within 0.01", shares[0], want)
	}
	for i := 1; i < 3; i++ {
		if shares[i] < floor-1e-9 || shares[i] > floor+0.01 {
			t.Errorf("losing share %d = %v, want within [floor, floor+0.01] = [%v, %v]",
				i, shares[i], floor, floor+0.01)
		}
	}
}

func TestReplicatorStepEqualPayoffsHoldShares(t *testing.T) {
	shares := []float64{0.5, 0.3, 0.2}
	next, err := ReplicatorStep(shares, []float64{2, 2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shares {
		if math.Abs(next[i]-shares[i]) > 1e-12 {
			t.Errorf("share %d moved under equal payoffs: %v -> %v", i, shares[i], next[i])
		}
	}
}

func TestReplicatorStepSumsToOne(t *testing.T) {
	shares := []float64{0.7, 0.2, 0.1}
	for i := 0; i < 50; i++ {
		next, err := ReplicatorStep(shares, []float64{float64(i % 3), 1, -2}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range next {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: shares sum to %v", i, sum)
		}
		shares = next
	}
}

func TestReplicatorStepValidation(t *testing.T) {
	cases := []struct {
		name    string
		shares  []float64
		payoffs []float64
		floor   float64
	}{
		{"empty", nil, nil, 0},
		{"length mismatch", []float64{1}, []float64{1, 2}, 0},
		{"negative share", []float64{1.5, -0.5}, []float64{1, 1}, 0},
		{"not a distribution", []float64{0.4, 0.4}, []float64{1, 1}, 0},
		{"negative floor", []float64{0.5, 0.5}, []float64{1, 1}, -0.1},
		{"floor too large", []float64{0.5, 0.5}, []float64{1, 1}, 0.5},
	}
	for _, tc := range cases {
		if _, err := ReplicatorStep(tc.shares, tc.payoffs, tc.floor); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", tc.name, err)
		}
	}
}

func TestUniformShares(t *testing.T) {
	shares := UniformShares(4)
	for i, v := range shares {
		if v != 0.25 {
			t.Errorf("shares[%d] = %v, want 0.25", i, v)
		}
	}
}
