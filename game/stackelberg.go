package game

import (
	"errors"
	"fmt"
	"math"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

var (
	// ErrInvalidModel reports nonsensical model parameters.
	ErrInvalidModel = errors.New("game: invalid model parameters")
	// ErrNoEquilibrium reports that no client equilibrium exists for the
	// requested difficulty (Eq. 10 violated).
	ErrNoEquilibrium = errors.New("game: no equilibrium for difficulty")
	// ErrUnattainable reports a target work level no (k, m) pair can meet.
	ErrUnattainable = errors.New("game: target difficulty unattainable")
)

// DefaultHandshakeBudget is the usability budget for completing a handshake
// under attack: 400 ms does not interrupt a user's flow of thought
// (paper §4.3, citing Nielsen).
const DefaultHandshakeBudget = 0.400 // seconds

// LStar returns the asymptotic Nash-equilibrium work level
// ℓ* = w_av / (α + 1) in expected hash operations per connection (Eq. 18).
func LStar(wav, alpha float64) (float64, error) {
	if wav <= 0 || math.IsNaN(wav) || math.IsInf(wav, 0) {
		return 0, fmt.Errorf("game: wav = %v: %w", wav, ErrInvalidModel)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return 0, fmt.Errorf("game: alpha = %v: %w", alpha, ErrInvalidModel)
	}
	return wav / (alpha + 1), nil
}

// ParamsFor converts a target work level ℓ* into difficulty parameters for
// a fixed solution count k and preimage length l: the per-solution
// difficulty is rounded up to whole bits, m = ⌈log₂(ℓ*/k)⌉ + 1, so the
// deployed puzzle is never easier than the equilibrium demands.
func ParamsFor(lstar float64, k uint8, l uint8) (puzzle.Params, error) {
	if lstar <= 0 {
		return puzzle.Params{}, fmt.Errorf("game: lstar = %v: %w", lstar, ErrInvalidModel)
	}
	if k == 0 {
		return puzzle.Params{}, fmt.Errorf("game: k = 0: %w", ErrInvalidModel)
	}
	perSolution := lstar / float64(k)
	m := int(math.Ceil(math.Log2(perSolution))) + 1
	if m < puzzle.MinDifficultyBits {
		m = puzzle.MinDifficultyBits
	}
	if m > puzzle.MaxDifficultyBits || m > int(l) {
		return puzzle.Params{}, fmt.Errorf("game: need m=%d with k=%d, l=%d: %w",
			m, k, l, ErrUnattainable)
	}
	p := puzzle.Params{K: k, M: uint8(m), L: l}
	if err := p.Validate(); err != nil {
		return puzzle.Params{}, err
	}
	return p, nil
}

// SelectionConfig tunes SelectParams.
type SelectionConfig struct {
	// KCandidates are the solution counts to consider; defaults to 1..4.
	KCandidates []uint8
	// PreimageBits is the l to use; defaults to puzzle.DefaultPreimageBits.
	PreimageBits uint8
	// MaxGuessProbability bounds the chance an adversary blindly guesses a
	// full solution set, 2^(-k·m); defaults to 2^-30. Small k trades
	// verification cost against guessability (paper §4.3).
	MaxGuessProbability float64
}

func (c *SelectionConfig) fill() {
	if len(c.KCandidates) == 0 {
		c.KCandidates = []uint8{1, 2, 3, 4}
	}
	if c.PreimageBits == 0 {
		c.PreimageBits = puzzle.DefaultPreimageBits
	}
	if c.MaxGuessProbability == 0 {
		c.MaxGuessProbability = math.Exp2(-30)
	}
}

// SelectParams implements the practical method of §4.3/§4.4: given the
// measured w_av and α it computes ℓ* and picks the smallest k whose guess
// probability meets the bound (minimising the server's 1 + k/2 verify
// cost), with m rounded up via ParamsFor.
//
// With the paper's measurements (w_av = 140630, α = 1.1) it returns
// (k, m) = (2, 17).
func SelectParams(wav, alpha float64, cfg SelectionConfig) (puzzle.Params, error) {
	cfg.fill()
	lstar, err := LStar(wav, alpha)
	if err != nil {
		return puzzle.Params{}, err
	}
	var lastErr error
	for _, k := range cfg.KCandidates {
		p, err := ParamsFor(lstar, k, cfg.PreimageBits)
		if err != nil {
			lastErr = err
			continue
		}
		if p.GuessProbability() > cfg.MaxGuessProbability {
			lastErr = fmt.Errorf("game: k=%d m=%d guessable at %.3g: %w",
				p.K, p.M, p.GuessProbability(), ErrUnattainable)
			continue
		}
		return p, nil
	}
	if lastErr == nil {
		lastErr = ErrUnattainable
	}
	return puzzle.Params{}, lastErr
}

// RHat returns the maximum difficulty for which the clients' game still
// admits an equilibrium, r̂ = w̄/N − 1/µ² (Eq. 10). Difficulties at or above
// r̂ drive every client out of the system.
func RHat(wbar float64, n int, mu float64) (float64, error) {
	if n <= 0 || wbar <= 0 || mu <= 0 {
		return 0, fmt.Errorf("game: wbar=%v n=%d mu=%v: %w", wbar, n, mu, ErrInvalidModel)
	}
	return wbar/float64(n) - 1/(mu*mu), nil
}
