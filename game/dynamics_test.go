package game

import (
	"math"
	"testing"
)

func TestBestResponseDynamicsConvergesToNash(t *testing.T) {
	g := UniformGame(8, 3000, 120)
	l := 500.0
	// Tolerance sits above the golden-section solver's ~1e-7 noise floor.
	dyn, err := g.BestResponseDynamics(l, nil, 500, 1e-6)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatalf("did not converge in %d rounds (maxDelta=%v)", dyn.Rounds, dyn.MaxDelta)
	}
	want, err := g.EquilibriumRates(l)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	for i := range want {
		if math.Abs(dyn.Rates[i]-want[i]) > 0.01*(1+want[i]) {
			t.Errorf("client %d dynamics rate %v vs equilibrium %v", i, dyn.Rates[i], want[i])
		}
	}
}

func TestBestResponseDynamicsHeterogeneous(t *testing.T) {
	g := FiniteGame{Weights: []float64{500, 2000, 8000}, Mu: 60}
	dyn, err := g.BestResponseDynamics(300, nil, 500, 1e-8)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatal("did not converge")
	}
	// Higher valuations end up with higher rates.
	if !(dyn.Rates[0] < dyn.Rates[1] && dyn.Rates[1] < dyn.Rates[2]) {
		t.Errorf("rates not ordered by valuation: %v", dyn.Rates)
	}
	// Cross-check against the analytic equilibrium.
	want, err := g.EquilibriumRates(300)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	for i := range want {
		if math.Abs(dyn.Rates[i]-want[i]) > 0.02*(1+want[i]) {
			t.Errorf("client %d: dynamics %v vs analytic %v", i, dyn.Rates[i], want[i])
		}
	}
}

func TestBestResponseDynamicsFromArbitraryStart(t *testing.T) {
	g := UniformGame(4, 1000, 40)
	l := 80.0
	fromZero, err := g.BestResponseDynamics(l, nil, 500, 1e-8)
	if err != nil {
		t.Fatalf("from zero: %v", err)
	}
	fromHigh, err := g.BestResponseDynamics(l, []float64{9, 9, 9, 9}, 500, 1e-8)
	if err != nil {
		t.Fatalf("from high: %v", err)
	}
	for i := range fromZero.Rates {
		if math.Abs(fromZero.Rates[i]-fromHigh.Rates[i]) > 1e-4 {
			t.Errorf("client %d: different fixed points %v vs %v",
				i, fromZero.Rates[i], fromHigh.Rates[i])
		}
	}
}

func TestBestResponseDynamicsHardPuzzlesShutOutClients(t *testing.T) {
	g := UniformGame(3, 100, 50)
	// Difficulty far above every client's valuation: all rates go to zero.
	dyn, err := g.BestResponseDynamics(10_000, nil, 100, 1e-8)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	for i, r := range dyn.Rates {
		if r != 0 {
			t.Errorf("client %d rate %v, want 0 at unaffordable difficulty", i, r)
		}
	}
}

func TestBestResponseDynamicsValidation(t *testing.T) {
	g := UniformGame(3, 100, 50)
	if _, err := g.BestResponseDynamics(-1, nil, 10, 1e-6); err == nil {
		t.Error("negative difficulty accepted")
	}
	if _, err := g.BestResponseDynamics(1, []float64{1}, 10, 1e-6); err == nil {
		t.Error("wrong start length accepted")
	}
	bad := FiniteGame{}
	if _, err := bad.BestResponseDynamics(1, nil, 10, 1e-6); err == nil {
		t.Error("invalid game accepted")
	}
}
