package game

import (
	"math"
	"testing"
)

func TestBestResponseDynamicsConvergesToNash(t *testing.T) {
	g := UniformGame(8, 3000, 120)
	l := 500.0
	// Tolerance sits above the golden-section solver's ~1e-7 noise floor.
	dyn, err := g.BestResponseDynamics(l, nil, 500, 1e-6)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatalf("did not converge in %d rounds (maxDelta=%v)", dyn.Rounds, dyn.MaxDelta)
	}
	want, err := g.EquilibriumRates(l)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	for i := range want {
		if math.Abs(dyn.Rates[i]-want[i]) > 0.01*(1+want[i]) {
			t.Errorf("client %d dynamics rate %v vs equilibrium %v", i, dyn.Rates[i], want[i])
		}
	}
}

func TestBestResponseDynamicsHeterogeneous(t *testing.T) {
	g := FiniteGame{Weights: []float64{500, 2000, 8000}, Mu: 60}
	dyn, err := g.BestResponseDynamics(300, nil, 500, 1e-8)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatal("did not converge")
	}
	// Higher valuations end up with higher rates.
	if !(dyn.Rates[0] < dyn.Rates[1] && dyn.Rates[1] < dyn.Rates[2]) {
		t.Errorf("rates not ordered by valuation: %v", dyn.Rates)
	}
	// Cross-check against the analytic equilibrium.
	want, err := g.EquilibriumRates(300)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	for i := range want {
		if math.Abs(dyn.Rates[i]-want[i]) > 0.02*(1+want[i]) {
			t.Errorf("client %d: dynamics %v vs analytic %v", i, dyn.Rates[i], want[i])
		}
	}
}

func TestBestResponseDynamicsFromArbitraryStart(t *testing.T) {
	g := UniformGame(4, 1000, 40)
	l := 80.0
	fromZero, err := g.BestResponseDynamics(l, nil, 500, 1e-8)
	if err != nil {
		t.Fatalf("from zero: %v", err)
	}
	fromHigh, err := g.BestResponseDynamics(l, []float64{9, 9, 9, 9}, 500, 1e-8)
	if err != nil {
		t.Fatalf("from high: %v", err)
	}
	for i := range fromZero.Rates {
		if math.Abs(fromZero.Rates[i]-fromHigh.Rates[i]) > 1e-4 {
			t.Errorf("client %d: different fixed points %v vs %v",
				i, fromZero.Rates[i], fromHigh.Rates[i])
		}
	}
}

func TestBestResponseDynamicsHardPuzzlesShutOutClients(t *testing.T) {
	g := UniformGame(3, 100, 50)
	// Difficulty far above every client's valuation: all rates go to zero.
	dyn, err := g.BestResponseDynamics(10_000, nil, 100, 1e-8)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	for i, r := range dyn.Rates {
		if r != 0 {
			t.Errorf("client %d rate %v, want 0 at unaffordable difficulty", i, r)
		}
	}
}

func TestBestResponseDynamicsStartAtEquilibrium(t *testing.T) {
	// Starting exactly at the Nash point, the first sweep must change
	// nothing: every best response equals the current rate, so the run
	// converges immediately (one round, zero rounds of change).
	g := UniformGame(8, 3000, 120)
	l := 500.0
	start, err := g.EquilibriumRates(l)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	dyn, err := g.BestResponseDynamics(l, start, 500, 1e-6)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatalf("did not converge from the equilibrium (maxDelta=%v)", dyn.MaxDelta)
	}
	if dyn.Rounds != 1 {
		t.Errorf("Rounds = %d from the equilibrium, want 1", dyn.Rounds)
	}
	for i := range start {
		if math.Abs(dyn.Rates[i]-start[i]) > 1e-5 {
			t.Errorf("client %d drifted from equilibrium: %v -> %v", i, start[i], dyn.Rates[i])
		}
	}
}

func TestBestResponseDynamicsSingleClient(t *testing.T) {
	// Degenerate N=1: no opponents, so the "dynamics" are one damped
	// approach to the client's own best response — and the fixed point must
	// still match the analytic equilibrium.
	g := UniformGame(1, 1000, 40)
	l := 50.0
	dyn, err := g.BestResponseDynamics(l, nil, 500, 1e-8)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !dyn.Converged {
		t.Fatal("single-client dynamics did not converge")
	}
	want, err := g.EquilibriumRates(l)
	if err != nil {
		t.Fatalf("EquilibriumRates: %v", err)
	}
	if math.Abs(dyn.Rates[0]-want[0]) > 0.01*(1+want[0]) {
		t.Errorf("single client: dynamics %v vs analytic %v", dyn.Rates[0], want[0])
	}
}

func TestBestResponseDynamicsValidation(t *testing.T) {
	g := UniformGame(3, 100, 50)
	if _, err := g.BestResponseDynamics(-1, nil, 10, 1e-6); err == nil {
		t.Error("negative difficulty accepted")
	}
	if _, err := g.BestResponseDynamics(1, []float64{1}, 10, 1e-6); err == nil {
		t.Error("wrong start length accepted")
	}
	bad := FiniteGame{}
	if _, err := bad.BestResponseDynamics(1, nil, 10, 1e-6); err == nil {
		t.Error("invalid game accepted")
	}
}
