package sweep

// scenarioHashExclusions pins every Scenario field that is deliberately
// excluded from the canonical result-cache hash (json:"-"), with the
// argument for why a cached result is still valid without it. The
// hashfield analyzer (internal/lint, run by `make lint` and CI) keeps this
// map and the struct tags in lock-step: a field may leave the hash only by
// being pinned here with a reason, and a pinned entry must match a real
// excluded field — so no new knob can default into, or out of, sweep.Hash
// unreviewed. The bar for an entry is strict: the field must be a pure
// execution knob, proven results-neutral by a differential test named in
// its reason. See docs/DETERMINISM.md for the review checklist.
var scenarioHashExclusions = map[string]string{
	"Shards": "execution knob: metrics and sink bytes are byte-identical " +
		"at every shard count (TestShardDeterminismMatrix), so a cell " +
		"computed at any -shards value must hit for every other",
	"Speculative": "execution knob: optimistic execution replays to the " +
		"conservative order exactly (TestSpeculativeShardDeterminismMatrix, " +
		"FuzzSpeculativeEquivalence), so speculative reruns reuse " +
		"conservative cache entries",
}

// HashExcludedFields returns a copy of the pinned cache-hash exclusions:
// Scenario field name → the reason the field cannot affect results. Test
// and tooling surface for the determinism contract.
func HashExcludedFields() map[string]string {
	out := make(map[string]string, len(scenarioHashExclusions))
	for k, v := range scenarioHashExclusions {
		out[k] = v
	}
	return out
}
