// Package sweep is the design-of-experiments (DOE) layer of the
// repository: it owns the canonical Scenario configuration type and turns
// the paper's factorial evaluation — puzzle difficulty k, SYN-cache size
// m, botnet shape, and defense mode swept against each other — into plain
// data that can be expanded, executed, streamed, and cached.
//
// The pieces compose bottom-up:
//
//   - Scenario is the one canonical description of a deployment under
//     attack, shared by the public sim façade, every figure/table driver
//     in internal/experiments, and the benchmarks. Scale rescales a
//     scenario's deployment size without touching its semantics.
//
//   - Grid declares a factorial design as a literal: a base Scenario plus
//     product Axes (Ks, Ms, Defenses, BotCounts, PerBotRates, Seeds, or
//     free-form Variants). Expand produces the deduplicated cell list in a
//     deterministic row-major order.
//
//   - Result is the structured record of one completed cell: the
//     canonical Scenario plus named scalar Metrics and per-bucket Series.
//     It replaces pre-formatted strings as the primary representation;
//     Table remains as a pretty-printed view.
//
//   - Sink is where Results stream as cells complete: NewCSV (long-format
//     rows, one per scalar metric), NewNDJSON (one JSON object per cell,
//     including series), and NewTable (the aligned pretty-printer).
//     Stream re-orders concurrent completions so sink output is always in
//     grid order — byte-identical at every worker count.
//
//   - Cache is a content-addressed result store keyed by Hash — a stable
//     SHA-256 of the canonical (post-Defaults) Scenario plus the
//     experiment name — so regenerating a figure skips every
//     already-computed cell. Hits and Misses counters make the skip
//     observable.
//
// The executor lives one layer up (internal/experiments and sim.RunSweep):
// this package only describes designs and handles their results, so it
// stays free of simulation dependencies.
package sweep
