package sweep

import "testing"

// TestFingerprintChangesHash pins the fingerprint mechanics with synthetic
// strategy names (the real registrations live in packages defense/attack,
// which this package must not import): no fingerprint leaves the hash
// alone, registering one changes it, bumping it changes it again, and
// defense/attack fingerprints are independent dimensions.
func TestFingerprintChangesHash(t *testing.T) {
	scD := Scenario{Defense: "fp-test-defense", Seed: 3}
	base := Hash("exp", scD)
	if Hash("exp", scD) != base {
		t.Fatal("hash not stable")
	}
	RegisterDefenseFingerprint("fp-test-defense", "v1")
	v1 := Hash("exp", scD)
	if v1 == base {
		t.Error("registering a defense fingerprint did not change the hash")
	}
	RegisterDefenseFingerprint("fp-test-defense", "v2")
	if v2 := Hash("exp", scD); v2 == v1 || v2 == base {
		t.Error("bumping the defense fingerprint did not mint a new hash")
	}

	scA := Scenario{Attack: "fp-test-attack", Seed: 3}
	baseA := Hash("exp", scA)
	RegisterAttackFingerprint("fp-test-attack", "v1")
	if Hash("exp", scA) == baseA {
		t.Error("registering an attack fingerprint did not change the hash")
	}

	// Empty registrations are ignored: the legacy-identity escape hatch.
	RegisterDefenseFingerprint("fp-test-untouched", "")
	if DefenseFingerprint("fp-test-untouched") != "" {
		t.Error("empty fingerprint was stored")
	}

	// Unrelated scenarios (different defense name) are untouched by the
	// registrations above.
	other := Scenario{Defense: "fp-test-other", Seed: 3}
	before := Hash("exp", other)
	RegisterDefenseFingerprint("fp-test-defense", "v3")
	if Hash("exp", other) != before {
		t.Error("fingerprint registration leaked into an unrelated defense's hash")
	}
}
