package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// hashVersion feeds the cache key so a deliberate format break (changed
// metric semantics, changed Scenario canonicalisation) can invalidate
// every existing entry at once. v2: the engine's same-instant delivery
// order became canonical (time, source, sequence) when the sharded
// engine landed, which can shift tie-broken metrics relative to v1 runs.
const hashVersion = "tcppuzzles-sweep-v2"

// Hash returns the content address of one experiment cell: a SHA-256 over
// the hash format version, the experiment name, and the canonical
// (post-Defaults) Scenario serialised as JSON. Every Scenario field —
// including Label — feeds the hash, so two cells collide only when they
// would simulate identically and report identically. Adding a field to
// Scenario changes every hash, which safely turns old cache entries into
// misses (wipe the cache directory to reclaim the space).
//
// Exception: Shards is deliberately excluded (zeroed here, and json-
// skipped besides). The sharded engine produces byte-identical results at
// every shard count, so a cell computed at -shards 8 must hit for a rerun
// at -shards 1 — the same argument that keeps runner width out of the key.
//
// Registered strategy fingerprints extend the key: a defense or attack
// plugin with a non-empty fingerprint (see RegisterDefenseFingerprint)
// appends it after the canonical scenario, so new plugins mint new cache
// identities and invalidate themselves by bumping the fingerprint. The
// paper's four defenses and four floods register none, keeping their
// hashes byte-for-byte what they were before the plugin registry existed.
func Hash(experiment string, sc Scenario) string {
	canonicalScenario := sc.Defaults()
	canonicalScenario.Shards = 0
	canonical, err := json.Marshal(canonicalScenario)
	if err != nil {
		// Marshal fails only on non-finite floats (NaN/Inf rates). Fall
		// back to the fmt representation, which formats those fine and
		// still distinguishes scenarios, so no two cells share a key.
		canonical = []byte(fmt.Sprintf("%#v", canonicalScenario))
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", hashVersion, experiment)
	h.Write(canonical)
	if fp := DefenseFingerprint(canonicalScenario.Defense); fp != "" {
		fmt.Fprintf(h, "\ndefense-fingerprint: %s", fp)
	}
	if fp := AttackFingerprint(canonicalScenario.Attack); fp != "" {
		fmt.Fprintf(h, "\nattack-fingerprint: %s", fp)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a disk-backed, content-addressed store of completed cell
// results, keyed by Hash. Entries hold the metrics and series of one cell
// as JSON, one file per cell, so concurrent writers never contend and a
// cache directory can be shared between figure regenerations: any cell
// whose canonical scenario already ran is skipped entirely.
//
// With WithMaxBytes the cache maintains itself: it accounts entry sizes
// and evicts least-recently-used entries (hits refresh recency) whenever
// the total would exceed the budget. Accounting is per-process best
// effort — concurrent processes sharing a directory may transiently
// overshoot the budget until the next Put rescans.
type Cache struct {
	dir          string
	maxBytes     int64
	hits, misses atomic.Int64
	evictions    atomic.Int64

	// mu guards size accounting and eviction sweeps.
	mu   sync.Mutex
	size int64
}

// CacheOption tunes a Cache at open time.
type CacheOption func(*Cache)

// WithMaxBytes bounds the total size of stored entries; exceeding Puts
// trigger LRU eviction. Zero (the default) stores entries forever.
func WithMaxBytes(n int64) CacheOption {
	return func(c *Cache) { c.maxBytes = n }
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string, opts ...CacheOption) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	c := &Cache{dir: dir}
	for _, opt := range opts {
		opt(c)
	}
	if c.maxBytes > 0 {
		c.mu.Lock()
		c.rescanAndEvictLocked()
		c.mu.Unlock()
	}
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the stored payload of one cell.
type entry struct {
	Metrics []Metric `json:"metrics"`
	Series  []Series `json:"series,omitempty"`
}

func (c *Cache) path(experiment string, sc Scenario) string {
	return filepath.Join(c.dir, experiment+"-"+Hash(experiment, sc)+".json")
}

// Get returns the stored metrics and series for the cell, if present.
// Unreadable or corrupt entries count as misses. Hits refresh the entry's
// recency for LRU eviction.
func (c *Cache) Get(experiment string, sc Scenario) ([]Metric, []Series, bool) {
	path := c.path(experiment, sc)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	if c.maxBytes > 0 {
		// Touch for LRU; best effort (a raced eviction just re-misses).
		//tcpz:allow nodeterm — wall clock only refreshes the cache file's mtime for LRU eviction; cached results never depend on it
		now := time.Now()
		_ = os.Chtimes(path, now, now)
	}
	return e.Metrics, e.Series, true
}

// Put stores the cell's metrics and series. The write is atomic (temp
// file + rename) so concurrent readers never observe a partial entry; when
// a size budget is set, least-recently-used entries are evicted to fit.
func (c *Cache) Put(experiment string, sc Scenario, metrics []Metric, series []Series) error {
	data, err := json.Marshal(entry{Metrics: metrics, Series: series})
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	path := c.path(experiment, sc)
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if c.maxBytes > 0 {
		c.mu.Lock()
		// Rescan rather than accumulate: overwrites and concurrent
		// writers make incremental accounting drift.
		c.rescanAndEvictLocked()
		c.mu.Unlock()
	}
	return nil
}

// rescanAndEvictLocked lists the stored entries once, refreshes the size
// accounting from the listing, and evicts down to the budget.
func (c *Cache) rescanAndEvictLocked() {
	files := c.entriesLocked()
	c.size = 0
	for _, f := range files {
		c.size += f.size
	}
	c.evictLocked(files)
}

type cacheFile struct {
	name  string
	size  int64
	mtime time.Time
}

// entriesLocked lists stored entries (".json" files; in-flight ".put-*"
// temp files are excluded).
func (c *Cache) entriesLocked() []cacheFile {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var out []cacheFile
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, cacheFile{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
	}
	return out
}

// evictLocked removes least-recently-used entries from the given listing
// until the cache fits its budget. Ties on modification time break by
// name so eviction order is reproducible.
func (c *Cache) evictLocked(files []cacheFile) {
	if c.maxBytes <= 0 || c.size <= c.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		if c.size <= c.maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil {
			continue
		}
		c.size -= f.size
		c.evictions.Add(1)
	}
}

// Hits returns how many Gets found a stored entry.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Gets found nothing (or a corrupt entry).
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions returns how many entries the size budget has removed.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
