package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// hashVersion feeds the cache key so a deliberate format break (changed
// metric semantics, changed Scenario canonicalisation) can invalidate
// every existing entry at once.
const hashVersion = "tcppuzzles-sweep-v1"

// Hash returns the content address of one experiment cell: a SHA-256 over
// the hash format version, the experiment name, and the canonical
// (post-Defaults) Scenario serialised as JSON. Every Scenario field —
// including Label — feeds the hash, so two cells collide only when they
// would simulate identically and report identically. Adding a field to
// Scenario changes every hash, which safely turns old cache entries into
// misses (wipe the cache directory to reclaim the space).
func Hash(experiment string, sc Scenario) string {
	canonical, err := json.Marshal(sc.Defaults())
	if err != nil {
		// Marshal fails only on non-finite floats (NaN/Inf rates). Fall
		// back to the fmt representation, which formats those fine and
		// still distinguishes scenarios, so no two cells share a key.
		canonical = []byte(fmt.Sprintf("%#v", sc.Defaults()))
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", hashVersion, experiment)
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a disk-backed, content-addressed store of completed cell
// results, keyed by Hash. Entries hold the metrics and series of one cell
// as JSON, one file per cell, so concurrent writers never contend and a
// cache directory can be shared between figure regenerations: any cell
// whose canonical scenario already ran is skipped entirely.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the stored payload of one cell.
type entry struct {
	Metrics []Metric `json:"metrics"`
	Series  []Series `json:"series,omitempty"`
}

func (c *Cache) path(experiment string, sc Scenario) string {
	return filepath.Join(c.dir, experiment+"-"+Hash(experiment, sc)+".json")
}

// Get returns the stored metrics and series for the cell, if present.
// Unreadable or corrupt entries count as misses.
func (c *Cache) Get(experiment string, sc Scenario) ([]Metric, []Series, bool) {
	data, err := os.ReadFile(c.path(experiment, sc))
	if err != nil {
		c.misses.Add(1)
		return nil, nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	return e.Metrics, e.Series, true
}

// Put stores the cell's metrics and series. The write is atomic (temp
// file + rename) so concurrent readers never observe a partial entry.
func (c *Cache) Put(experiment string, sc Scenario, metrics []Metric, series []Series) error {
	data, err := json.Marshal(entry{Metrics: metrics, Series: series})
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	path := c.path(experiment, sc)
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	return nil
}

// Hits returns how many Gets found a stored entry.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Gets found nothing (or a corrupt entry).
func (c *Cache) Misses() int64 { return c.misses.Load() }
