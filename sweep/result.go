package sweep

import (
	"fmt"
	"strings"
)

// Metric is one named scalar measurement of a completed cell.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Series is one named per-bucket measurement series of a completed cell.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// ExecStats describes how the runner pool executed the grid a Result
// belongs to (worker-pool backpressure: claim/steal counts and mean queue
// depth). It is per-process observability only: excluded from
// serialisation, the result cache, and determinism comparisons, because
// goroutine scheduling makes it vary run to run while the Result's
// metrics and series never do.
type ExecStats struct {
	Workers          int
	Jobs             int64
	LocalClaims      int64
	Steals           int64
	FailedStealScans int64
	MeanQueueDepth   float64
	// PeakHeapAlloc and PeakHeapSys are the largest live-heap and
	// OS-reserved-heap sizes (bytes) sampled after any cell of the grid
	// completed — the memory headroom signal for scale runs. Sampled
	// process-wide, so concurrent cells share one peak.
	PeakHeapAlloc uint64
	PeakHeapSys   uint64
}

// Result is the structured record of one completed grid cell: the
// canonical scenario that ran plus its named metrics and series. It is
// the primary representation of experiment output — sinks serialise it,
// the cache stores its metrics and series, and the pretty-printed Table
// is derived from it.
type Result struct {
	// Experiment is the driver that produced the cell (e.g. "fig12"); it
	// also namespaces the cell in the result cache.
	Experiment string `json:"experiment"`
	// Scenario is the canonical (post-Defaults) cell configuration.
	Scenario Scenario `json:"scenario"`
	// Metrics are scalar summaries, in a driver-defined stable order.
	Metrics []Metric `json:"metrics"`
	// Series are per-bucket traces; CSV sinks skip them, NDJSON keeps them.
	Series []Series `json:"series,omitempty"`
	// Exec reports how the runner pool executed this cell's grid —
	// shared by every Result of the grid. Advisory only; json-skipped so
	// sink output stays byte-identical at every worker count.
	Exec *ExecStats `json:"-"`
}

// Metric returns the named scalar, or 0 when absent. Use Lookup to
// distinguish a missing metric from a zero one.
func (r Result) Metric(name string) float64 {
	v, _ := r.Lookup(name)
	return v
}

// Lookup returns the named scalar and whether it is present.
func (r Result) Lookup(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// SeriesValues returns the named series, or nil when absent.
func (r Result) SeriesValues(name string) []float64 {
	for _, s := range r.Series {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

// Table is a rendered tabular view of experiment results: every driver
// derives one from its Results so the CLI and benchmarks print uniform,
// human-readable output. It is a presentation type only — serialise
// Results, not Tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
