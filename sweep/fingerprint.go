package sweep

import "sync"

// Strategy fingerprints fold a registered defense/attack plugin's identity
// into the result-cache hash (see Hash). The four paper defenses and four
// paper floods register no fingerprint: their identity is fully captured by
// the canonical Scenario, which keeps every pre-existing cache hash stable
// across the plugin-registry refactor. New plugins register a non-empty
// fingerprint — typically "name/v1 <behaviour summary>" — giving their
// cells a distinct cache identity, and bumping the fingerprint when the
// plugin's behaviour changes safely turns that plugin's stale cache entries
// into misses without touching anyone else's.
//
// Invariant: a binary that computes hashes for strategy-plugin scenarios
// must link the registries that declare those fingerprints (importing
// sim, internal/experiments, or the defense/attack packages does this
// transitively — anything that can actually *run* a scenario qualifies).
// A hash computed without the registration linked falls back to the
// legacy, fingerprint-free form and will not match a registry-linked
// binary's key for the same cell.
var (
	fpMu       sync.RWMutex
	defenseFPs = map[Defense]string{}
	attackFPs  = map[Attack]string{}
)

// RegisterDefenseFingerprint records a defense plugin's cache fingerprint.
// Empty fingerprints are ignored (legacy identity). Called by the defense
// registry at plugin registration; the last registration wins.
func RegisterDefenseFingerprint(name Defense, fp string) {
	if fp == "" {
		return
	}
	fpMu.Lock()
	defer fpMu.Unlock()
	defenseFPs[name] = fp
}

// RegisterAttackFingerprint records an attack plugin's cache fingerprint.
// Empty fingerprints are ignored (legacy identity). Called by the attack
// registry at plugin registration; the last registration wins.
func RegisterAttackFingerprint(name Attack, fp string) {
	if fp == "" {
		return
	}
	fpMu.Lock()
	defer fpMu.Unlock()
	attackFPs[name] = fp
}

// DefenseFingerprint returns the registered fingerprint for a defense, or
// "" when the defense's identity is the Scenario alone.
func DefenseFingerprint(name Defense) string {
	fpMu.RLock()
	defer fpMu.RUnlock()
	return defenseFPs[name]
}

// AttackFingerprint returns the registered fingerprint for an attack, or
// "" when the attack's identity is the Scenario alone.
func AttackFingerprint(name Attack) string {
	fpMu.RLock()
	defer fpMu.RUnlock()
	return attackFPs[name]
}
