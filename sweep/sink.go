package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"sync"
)

// Sink receives completed cell Results as they stream off the runner.
// Implementations need not be safe for concurrent use: Stream serialises
// writes and guarantees grid order, so sink output is byte-identical at
// every worker count.
type Sink interface {
	Write(Result) error
	// Flush forces buffered output to the underlying writer. Owners of
	// the sink call it once after the last Write.
	Flush() error
}

// csvHeader is the long-format column set: one row per scalar metric,
// with the swept scenario coordinates alongside so output loads directly
// into plotting tools. Series are omitted — use NDJSON for full traces.
var csvHeader = []string{
	"experiment", "label", "defense", "attack", "k", "m",
	"clients", "bot_count", "per_bot_rate", "seed", "metric", "value",
}

// CSVSink streams Results as long-format CSV rows.
type CSVSink struct {
	w      *csv.Writer
	header bool
}

// NewCSV returns a sink writing long-format CSV to w. The header row is
// written before the first record.
func NewCSV(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write emits one row per scalar metric of the result and flushes, so
// rows are visible as cells complete.
func (s *CSVSink) Write(r Result) error {
	if !s.header {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.header = true
	}
	sc := r.Scenario
	prefix := []string{
		r.Experiment, sc.Label, string(sc.Defense), string(sc.Attack),
		strconv.Itoa(int(sc.Params.K)), strconv.Itoa(int(sc.Params.M)),
		strconv.Itoa(sc.NumClients), strconv.Itoa(sc.BotCount),
		formatFloat(sc.PerBotRate), strconv.FormatInt(sc.Seed, 10),
	}
	for _, m := range r.Metrics {
		row := append(append([]string{}, prefix...), m.Name, formatFloat(m.Value))
		if err := s.w.Write(row); err != nil {
			return err
		}
	}
	s.w.Flush()
	return s.w.Error()
}

// Flush flushes buffered rows.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NDJSONSink streams Results as newline-delimited JSON, one complete
// object — canonical scenario, metrics, and series — per cell.
type NDJSONSink struct {
	enc *json.Encoder
}

// NewNDJSON returns a sink writing one JSON object per Result to w.
func NewNDJSON(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w)}
}

// Write encodes the result followed by a newline.
func (s *NDJSONSink) Write(r Result) error { return s.enc.Encode(r) }

// Flush is a no-op: every Write reaches the underlying writer directly.
func (s *NDJSONSink) Flush() error { return nil }

// TableSink buffers Results and renders one aligned long-format table per
// experiment on Flush — the pretty-printer as a Sink. The figure drivers
// keep their richer bespoke tables; this view covers ad-hoc sweeps.
type TableSink struct {
	w      io.Writer
	order  []string
	groups map[string][][]string
}

// NewTable returns a sink rendering aligned tables to w on Flush.
func NewTable(w io.Writer) *TableSink {
	return &TableSink{w: w, groups: map[string][][]string{}}
}

// Write buffers the result's scalar metrics.
func (s *TableSink) Write(r Result) error {
	if _, ok := s.groups[r.Experiment]; !ok {
		s.order = append(s.order, r.Experiment)
	}
	for _, m := range r.Metrics {
		s.groups[r.Experiment] = append(s.groups[r.Experiment],
			[]string{r.Scenario.Label, m.Name, formatFloat(m.Value)})
	}
	return nil
}

// Flush renders the buffered tables and clears the buffer.
func (s *TableSink) Flush() error {
	for _, exp := range s.order {
		t := Table{
			Title:  exp,
			Header: []string{"label", "metric", "value"},
			Rows:   s.groups[exp],
		}
		if _, err := io.WriteString(s.w, t.String()+"\n"); err != nil {
			return err
		}
	}
	s.order = nil
	s.groups = map[string][][]string{}
	return nil
}

// Stream fans concurrently-completing Results into a set of sinks in grid
// order: Emit accepts results in any order and releases them to the sinks
// only once every earlier-indexed cell has been released. This is what
// lets sink output stream as runs land while staying byte-identical at
// every runner worker count.
type Stream struct {
	mu      sync.Mutex
	sinks   []Sink
	next    int
	pending map[int]Result
	err     error
}

// NewStream returns a Stream over the given sinks. A Stream with no sinks
// discards everything at near-zero cost.
func NewStream(sinks ...Sink) *Stream {
	return &Stream{sinks: sinks, pending: map[int]Result{}}
}

// Emit hands cell index's result to the stream. Safe for concurrent use.
// The first sink error is returned (and re-returned by later Emits), so a
// failing sink aborts the grid instead of silently truncating output.
func (s *Stream) Emit(index int, r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if len(s.sinks) == 0 {
		return nil
	}
	s.pending[index] = r
	for {
		ready, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		delete(s.pending, s.next)
		s.next++
		for _, sink := range s.sinks {
			if err := sink.Write(ready); err != nil {
				s.err = err
				return err
			}
		}
	}
}
