package sweep

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell", Seed: 9}
	metrics := []Metric{{Name: "mbps", Value: 1.5}}
	series := []Series{{Name: "trace", Values: []float64{1, 2, 3}}}

	if _, _, ok := cache.Get("fig9", sc); ok {
		t.Fatal("empty cache returned a hit")
	}
	if err := cache.Put("fig9", sc, metrics, series); err != nil {
		t.Fatal(err)
	}
	m, s, ok := cache.Get("fig9", sc)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if len(m) != 1 || m[0] != metrics[0] {
		t.Errorf("metrics = %+v, want %+v", m, metrics)
	}
	if len(s) != 1 || s[0].Name != "trace" || len(s[0].Values) != 3 {
		t.Errorf("series = %+v", s)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", cache.Hits(), cache.Misses())
	}
}

func TestCacheKeysDiscriminate(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell"}
	if err := cache.Put("fig9", sc, []Metric{{Name: "a", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	// Same scenario under a different experiment: distinct entry.
	if _, _, ok := cache.Get("fig10", sc); ok {
		t.Error("experiment name not part of the key")
	}
	// Different label: distinct entry (labels appear in output).
	other := sc
	other.Label = "other"
	if _, _, ok := cache.Get("fig9", other); ok {
		t.Error("label not part of the key")
	}
	// A semantically equal scenario spelled differently pre-Defaults
	// hashes the same: the canonical form feeds the key.
	spelled := Scenario{Label: "cell", Seed: 1}
	if _, _, ok := cache.Get("fig9", spelled); !ok {
		t.Error("canonicalisation not applied before hashing")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell"}
	if err := cache.Put("fig9", sc, []Metric{{Name: "a", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, err = %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cache.Get("fig9", sc); ok {
		t.Error("corrupt entry returned as hit")
	}
}

func TestHashStability(t *testing.T) {
	a := Hash("fig9", Scenario{Label: "x"})
	b := Hash("fig9", Scenario{Label: "x"})
	if a != b {
		t.Error("hash not deterministic")
	}
	if Hash("fig9", Scenario{Label: "x", Seed: 2}) == a {
		t.Error("seed does not feed the hash")
	}
	if len(a) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(a))
	}
}

// evictionCache opens a budgeted cache and stores n cells with explicit,
// strictly increasing modification times so the LRU order is unambiguous
// regardless of filesystem timestamp granularity.
func evictionCache(t *testing.T, dir string, maxBytes int64, n int) (*Cache, []Scenario) {
	t.Helper()
	cache, err := OpenCache(dir, WithMaxBytes(maxBytes))
	if err != nil {
		t.Fatal(err)
	}
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Scenario{Label: "cell", Seed: int64(i + 1)}
		if err := cache.Put("exp", scs[i], []Metric{{Name: "v", Value: float64(i)}}, nil); err != nil {
			t.Fatal(err)
		}
		at := time.Unix(1_700_000_000+int64(i)*10, 0)
		if err := os.Chtimes(cache.path("exp", scs[i]), at, at); err != nil {
			t.Fatal(err)
		}
	}
	return cache, scs
}

func TestCacheEvictsLRUOverBudget(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly two entries (~40 bytes each); storing four must
	// evict the two oldest.
	cache, scs := evictionCache(t, dir, 100, 4)
	// Re-trigger accounting/eviction with one more put after the mtimes
	// were pinned.
	extra := Scenario{Label: "extra", Seed: 99}
	if err := cache.Put("exp", extra, []Metric{{Name: "v", Value: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if cache.Evictions() == 0 {
		t.Fatal("no evictions despite exceeding the budget")
	}
	// Oldest entries gone, newest survive.
	if _, _, ok := cache.Get("exp", scs[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, _, ok := cache.Get("exp", extra); !ok {
		t.Error("newest entry was evicted")
	}
	if cache.Hits() == 0 || cache.Misses() == 0 {
		t.Errorf("counters hits=%d misses=%d, want both > 0", cache.Hits(), cache.Misses())
	}
	// The surviving files must fit the budget.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := os.Stat(e)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 100 {
		t.Errorf("stored %d bytes, budget 100", total)
	}
}

func TestCacheHitRefreshesLRU(t *testing.T) {
	dir := t.TempDir()
	cache, scs := evictionCache(t, dir, 100, 2)
	// Touch the older entry via a hit, making the newer one the LRU
	// victim when the budget forces an eviction.
	if _, _, ok := cache.Get("exp", scs[0]); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	extra := Scenario{Label: "extra", Seed: 42}
	if err := cache.Put("exp", extra, []Metric{{Name: "v", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cache.Get("exp", scs[0]); !ok {
		t.Error("recently hit entry was evicted")
	}
	if _, _, ok := cache.Get("exp", scs[1]); ok {
		t.Error("stale entry survived over the recently hit one")
	}
}

func TestCacheOpenScansExistingSize(t *testing.T) {
	dir := t.TempDir()
	evictionCache(t, dir, 1<<20, 3)
	// Re-open with a tiny budget: the pre-existing entries must be
	// accounted and evicted down to fit immediately.
	cache, err := OpenCache(dir, WithMaxBytes(45))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("entries after budgeted reopen = %d, want 1", len(entries))
	}
	if cache.Evictions() != 2 {
		t.Errorf("evictions = %d, want 2", cache.Evictions())
	}
}

func TestCacheUnlimitedNeverEvicts(t *testing.T) {
	cache, scs := evictionCache(t, t.TempDir(), 0, 5)
	if cache.Evictions() != 0 {
		t.Fatalf("evictions = %d with no budget", cache.Evictions())
	}
	for _, sc := range scs {
		if _, _, ok := cache.Get("exp", sc); !ok {
			t.Errorf("entry %v missing from unlimited cache", sc.Seed)
		}
	}
}
