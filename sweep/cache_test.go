package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell", Seed: 9}
	metrics := []Metric{{Name: "mbps", Value: 1.5}}
	series := []Series{{Name: "trace", Values: []float64{1, 2, 3}}}

	if _, _, ok := cache.Get("fig9", sc); ok {
		t.Fatal("empty cache returned a hit")
	}
	if err := cache.Put("fig9", sc, metrics, series); err != nil {
		t.Fatal(err)
	}
	m, s, ok := cache.Get("fig9", sc)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if len(m) != 1 || m[0] != metrics[0] {
		t.Errorf("metrics = %+v, want %+v", m, metrics)
	}
	if len(s) != 1 || s[0].Name != "trace" || len(s[0].Values) != 3 {
		t.Errorf("series = %+v", s)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", cache.Hits(), cache.Misses())
	}
}

func TestCacheKeysDiscriminate(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell"}
	if err := cache.Put("fig9", sc, []Metric{{Name: "a", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	// Same scenario under a different experiment: distinct entry.
	if _, _, ok := cache.Get("fig10", sc); ok {
		t.Error("experiment name not part of the key")
	}
	// Different label: distinct entry (labels appear in output).
	other := sc
	other.Label = "other"
	if _, _, ok := cache.Get("fig9", other); ok {
		t.Error("label not part of the key")
	}
	// A semantically equal scenario spelled differently pre-Defaults
	// hashes the same: the canonical form feeds the key.
	spelled := Scenario{Label: "cell", Seed: 1}
	if _, _, ok := cache.Get("fig9", spelled); !ok {
		t.Error("canonicalisation not applied before hashing")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Label: "cell"}
	if err := cache.Put("fig9", sc, []Metric{{Name: "a", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, err = %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cache.Get("fig9", sc); ok {
		t.Error("corrupt entry returned as hit")
	}
}

func TestHashStability(t *testing.T) {
	a := Hash("fig9", Scenario{Label: "x"})
	b := Hash("fig9", Scenario{Label: "x"})
	if a != b {
		t.Error("hash not deterministic")
	}
	if Hash("fig9", Scenario{Label: "x", Seed: 2}) == a {
		t.Error("seed does not feed the hash")
	}
	if len(a) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(a))
	}
}
