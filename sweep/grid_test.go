package sweep

import (
	"testing"
	"time"
)

func testScale() Scale {
	return Scale{
		Duration: 60 * time.Second, AttackStart: 15 * time.Second, AttackStop: 45 * time.Second,
		NumClients: 4, ClientRate: 8, BotCount: 4, PerBotRate: 80,
		Backlog: 128, AcceptBacklog: 128, Workers: 48, Seed: 42,
	}
}

func TestExpandProductOrderAndLabels(t *testing.T) {
	g := Grid{
		Base: Scenario{Label: "base"},
		Axes: []Axis{Ks(1, 2), Ms(12, 17)},
	}
	cells := g.Expand(nil)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	wantLabels := []string{"base/k=1/m=12", "base/k=1/m=17", "base/k=2/m=12", "base/k=2/m=17"}
	for i, want := range wantLabels {
		if cells[i].Label != want {
			t.Errorf("cell %d label = %q, want %q", i, cells[i].Label, want)
		}
	}
	// Row-major: the last axis varies fastest.
	if cells[0].Params.K != 1 || cells[0].Params.M != 12 ||
		cells[3].Params.K != 2 || cells[3].Params.M != 17 {
		t.Errorf("cells out of order: %+v", cells)
	}
	// Per-field Params defaulting must complete the tuple (l = 32).
	if cells[0].Defaults().Params.L != 32 {
		t.Errorf("axis-set Params missing default L: %+v", cells[0].Defaults().Params)
	}
}

func TestExpandDeduplicatesIdenticalCells(t *testing.T) {
	g := Grid{Axes: []Axis{Seeds(1, 2, 1)}}
	cells := g.Expand(nil)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2 after dedup", len(cells))
	}
	if cells[0].Seed != 1 || cells[1].Seed != 2 {
		t.Errorf("dedup changed order: %+v", cells)
	}
}

func TestExpandAxesOverrideScale(t *testing.T) {
	// The scale rescales the base deployment, but an axis coordinate —
	// here the botnet shape — always wins over the scale's value.
	scale := testScale()
	g := Grid{
		Base: Scenario{ClientsSolve: true},
		Axes: []Axis{BotCounts(9), PerBotRates(123)},
	}
	cells := g.Expand(&scale)
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	if cells[0].BotCount != 9 || cells[0].PerBotRate != 123 {
		t.Errorf("axis lost to scale: %+v", cells[0])
	}
	if cells[0].NumClients != scale.NumClients || cells[0].Duration != scale.Duration {
		t.Errorf("scale not applied to base: %+v", cells[0])
	}
}

func TestExpandPreservesSentinels(t *testing.T) {
	scale := testScale()
	g := Grid{Base: Scenario{BotCount: NoBotnet, Workers: -1}, Axes: []Axis{Seeds(7)}}
	cells := g.Expand(&scale)
	if cells[0].BotCount != NoBotnet || cells[0].Workers != -1 {
		t.Errorf("sentinels lost: %+v", cells[0])
	}
}

func TestExpandVariantsAndNilSet(t *testing.T) {
	g := Grid{
		Axes: []Axis{Variants("mix",
			Point{Label: "(NA,NC)"},
			Point{Label: "(SA,SC)", Set: func(sc *Scenario) { sc.ClientsSolve = true; sc.BotsSolve = true }},
		)},
	}
	cells := g.Expand(nil)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Label != "(NA,NC)" || cells[0].ClientsSolve {
		t.Errorf("nil-Set point mutated scenario: %+v", cells[0])
	}
	if !cells[1].ClientsSolve || !cells[1].BotsSolve {
		t.Errorf("variant Set not applied: %+v", cells[1])
	}
}

func TestDefaultsFillParamsPerField(t *testing.T) {
	sc := Scenario{}
	sc.Params.K = 1
	got := sc.Defaults().Params
	if got.K != 1 || got.M != 17 || got.L != 32 {
		t.Errorf("partial Params defaulted to %+v, want {1 17 32}", got)
	}
}
