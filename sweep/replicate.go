package sweep

import (
	"encoding/json"
	"math"
	"strings"
)

// FoldSeeds aggregates replicated designs: results whose canonical
// scenarios are identical up to the Seed (and any "seed=…" label part the
// Seeds axis appended) fold into one Result carrying, for every metric of
// the replicates, its mean, sample standard deviation, and the half-width
// of a two-sided Student-t 95% confidence interval on the mean
// (t · s/√n, n−1 degrees of freedom), plus a "replicates" count; series
// fold into their pointwise mean. Groups keep first-appearance order and
// unreplicated cells simply fold to themselves (stddev and ci95 0), so a
// grid without a Seeds axis passes through unchanged in shape. The folded
// Scenario carries Seed 0 — no single seed describes an aggregate — and
// the seed-stripped label. The true mean lies in mean ± ci95 at 95%
// coverage under the usual normality of replicate means; a ci95 that is
// wide relative to the effect being plotted is the signal to add seeds.
func FoldSeeds(results []Result) []Result {
	type group struct {
		out   Result
		n     float64
		sum   map[string]float64
		sumSq map[string]float64
		// seriesSum accumulates pointwise sums; seriesN counts per-point
		// contributions so replicates of different lengths average over
		// the replicates that actually reached each bucket.
		seriesSum map[string][]float64
		seriesN   map[string][]float64
	}
	var order []string
	groups := map[string]*group{}

	for _, r := range results {
		sc := r.Scenario
		sc.Seed = 0
		sc.Label = stripSeedLabel(sc.Label)
		keyBytes, err := json.Marshal(sc)
		if err != nil {
			// Scenario is a plain struct; Marshal cannot fail. Group by
			// label if it ever does rather than dropping the result.
			keyBytes = []byte(sc.Label)
		}
		key := r.Experiment + "\x00" + string(keyBytes)
		g, ok := groups[key]
		if !ok {
			g = &group{
				out:       Result{Experiment: r.Experiment, Scenario: sc},
				sum:       map[string]float64{},
				sumSq:     map[string]float64{},
				seriesSum: map[string][]float64{},
				seriesN:   map[string][]float64{},
			}
			// Pin metric and series order from the first replicate.
			for _, m := range r.Metrics {
				g.out.Metrics = append(g.out.Metrics, Metric{Name: m.Name})
			}
			for _, s := range r.Series {
				g.out.Series = append(g.out.Series, Series{Name: s.Name})
			}
			groups[key] = g
			order = append(order, key)
		}
		g.n++
		for _, m := range r.Metrics {
			g.sum[m.Name] += m.Value
			g.sumSq[m.Name] += m.Value * m.Value
		}
		for _, s := range r.Series {
			acc, cnt := g.seriesSum[s.Name], g.seriesN[s.Name]
			for i, v := range s.Values {
				if i >= len(acc) {
					acc = append(acc, 0)
					cnt = append(cnt, 0)
				}
				acc[i] += v
				cnt[i]++
			}
			g.seriesSum[s.Name], g.seriesN[s.Name] = acc, cnt
		}
	}

	out := make([]Result, 0, len(order))
	for _, key := range order {
		g := groups[key]
		metrics := []Metric{{Name: "replicates", Value: g.n}}
		for _, m := range g.out.Metrics {
			mean := g.sum[m.Name] / g.n
			var stddev, ci95 float64
			if g.n > 1 {
				// Sample variance; clamp the tiny negatives float
				// cancellation can leave behind.
				v := (g.sumSq[m.Name] - g.n*mean*mean) / (g.n - 1)
				if v > 0 {
					stddev = math.Sqrt(v)
				}
				ci95 = tCritical95(int(g.n)-1) * stddev / math.Sqrt(g.n)
			}
			metrics = append(metrics,
				Metric{Name: m.Name + "_mean", Value: mean},
				Metric{Name: m.Name + "_stddev", Value: stddev},
				Metric{Name: m.Name + "_ci95", Value: ci95})
		}
		g.out.Metrics = metrics
		for i := range g.out.Series {
			name := g.out.Series[i].Name
			acc, cnt := g.seriesSum[name], g.seriesN[name]
			mean := make([]float64, len(acc))
			for j, v := range acc {
				mean[j] = v / cnt[j]
			}
			g.out.Series[i] = Series{Name: name + "_mean", Values: mean}
		}
		out = append(out, g.out)
	}
	return out
}

// tTable95 holds two-sided 95% Student-t critical values for 1–30 degrees
// of freedom (the replicate counts experiments actually run).
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values through df=30, then the
// Cornish-Fisher-style tail correction t ≈ z + (z³+z)/(4·df) around the
// normal quantile — within ~3e-3 of the true value just past the table
// and under 1e-3 from df≈60 on, far tighter than any replicate count an
// experiment here would justify reading.
func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	const z = 1.959963984540054 // Φ⁻¹(0.975)
	return z + (z*z*z+z)/(4*float64(df))
}

// stripSeedLabel removes the "seed=…" parts a Seeds axis appends to cell
// labels, so replicates share the folded label.
func stripSeedLabel(label string) string {
	if label == "" {
		return ""
	}
	parts := strings.Split(label, "/")
	kept := parts[:0]
	for _, part := range parts {
		if strings.HasPrefix(part, "seed=") {
			continue
		}
		kept = append(kept, part)
	}
	return strings.Join(kept, "/")
}

// ReplicateSink folds the Seeds axis on the way out: it buffers every
// Result and, on Flush, writes the FoldSeeds aggregation to the inner
// sink. Wrap any CSV/NDJSON/table sink to get mean/stddev rows instead of
// one row per seed (tcpz-exp -fold-seeds).
type ReplicateSink struct {
	inner Sink
	buf   []Result
}

// NewReplicate wraps a sink with seed folding.
func NewReplicate(inner Sink) *ReplicateSink {
	return &ReplicateSink{inner: inner}
}

// Write buffers the result until Flush folds the replicates.
func (s *ReplicateSink) Write(r Result) error {
	s.buf = append(s.buf, r)
	return nil
}

// Flush folds the buffered results, writes the aggregates to the inner
// sink, and flushes it.
func (s *ReplicateSink) Flush() error {
	folded := FoldSeeds(s.buf)
	s.buf = nil
	for _, r := range folded {
		if err := s.inner.Write(r); err != nil {
			return err
		}
	}
	return s.inner.Flush()
}
