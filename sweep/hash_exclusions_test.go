package sweep

import (
	"reflect"
	"strings"
	"testing"
)

// TestHashExclusionsMatchScenarioTags is the runtime half of the hashfield
// contract (the static half lives in internal/lint): the pinned exclusion
// set and the json:"-" tags on Scenario must agree exactly, and every
// exclusion must say why it is sound.
func TestHashExclusionsMatchScenarioTags(t *testing.T) {
	excluded := map[string]bool{}
	rt := reflect.TypeOf(Scenario{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "-" {
			excluded[f.Name] = true
			if _, ok := scenarioHashExclusions[f.Name]; !ok {
				t.Errorf("Scenario.%s is json:\"-\" but not pinned in scenarioHashExclusions", f.Name)
			}
		}
	}
	for name, reason := range scenarioHashExclusions {
		if _, ok := rt.FieldByName(name); !ok {
			t.Errorf("exclusion %q names no Scenario field", name)
		}
		if !excluded[name] {
			t.Errorf("exclusion %q pinned but Scenario.%s is not json:\"-\"", name, name)
		}
		if strings.TrimSpace(reason) == "" {
			t.Errorf("exclusion %q has no reason", name)
		}
	}
}

// TestHashInsensitiveToExcludedFields proves the pinned exclusions hold at
// the hash level: toggling an excluded field never changes a cell's cache
// key, and touching any hashed field always does.
func TestHashInsensitiveToExcludedFields(t *testing.T) {
	base := Scenario{Label: "cell", Seed: 7}
	h0 := Hash("exp", base)

	sharded := base
	sharded.Shards = 8
	if got := Hash("exp", sharded); got != h0 {
		t.Errorf("Shards entered the cache hash: %s != %s", got, h0)
	}
	spec := base
	spec.Shards = 4
	spec.Speculative = true
	if got := Hash("exp", spec); got != h0 {
		t.Errorf("Speculative entered the cache hash: %s != %s", got, h0)
	}

	seeded := base
	seeded.Seed = 8
	if got := Hash("exp", seeded); got == h0 {
		t.Error("Seed is hashed; changing it must change the key")
	}
}

// TestHashExcludedFieldsCopies pins the accessor contract: mutating the
// returned map must not poison the pinned set.
func TestHashExcludedFieldsCopies(t *testing.T) {
	m := HashExcludedFields()
	if len(m) == 0 {
		t.Fatal("no pinned exclusions returned")
	}
	m["Shards"] = "mutated"
	if HashExcludedFields()["Shards"] == "mutated" {
		t.Error("HashExcludedFields returned the internal map, not a copy")
	}
}
