package sweep

import (
	"encoding/json"
	"fmt"
)

// Grid declares a factorial experiment design as a literal: a base
// Scenario plus product Axes. Expand crosses the axes in declaration
// order, so a Grid replaces the hand-rolled nested loops the figure
// drivers used to carry.
type Grid struct {
	// Base is the scenario every cell starts from. Its Label, if any,
	// prefixes every cell label.
	Base Scenario
	// Axes are the swept dimensions, applied left to right. A cell's
	// label is the base label joined with each axis point's label by "/".
	Axes []Axis
}

// Axis is one swept dimension of a Grid.
type Axis struct {
	// Name identifies the dimension (documentation and error messages).
	Name string
	// Points are the values the dimension takes.
	Points []Point
}

// Point is one value of an Axis: a label for result output plus a
// mutation applied to the cell's scenario. A nil Set labels the cell
// without changing it (useful when the driver interprets the coordinate
// itself).
type Point struct {
	Label string
	Set   func(*Scenario)
}

// Ks sweeps the puzzle difficulty k (solutions required).
func Ks(vals ...uint8) Axis {
	ax := Axis{Name: "k"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("k=%d", v),
			Set:   func(sc *Scenario) { sc.Params.K = v },
		})
	}
	return ax
}

// Ms sweeps the puzzle difficulty m (bits per solution).
func Ms(vals ...uint8) Axis {
	ax := Axis{Name: "m"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("m=%d", v),
			Set:   func(sc *Scenario) { sc.Params.M = v },
		})
	}
	return ax
}

// Defenses sweeps the server protection.
func Defenses(vals ...Defense) Axis {
	ax := Axis{Name: "defense"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("defense=%s", v),
			Set:   func(sc *Scenario) { sc.Defense = v },
		})
	}
	return ax
}

// Attacks sweeps the botnet behaviour.
func Attacks(vals ...Attack) Axis {
	ax := Axis{Name: "attack"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("attack=%s", v),
			Set:   func(sc *Scenario) { sc.Attack = v },
		})
	}
	return ax
}

// BotCounts sweeps the botnet size.
func BotCounts(vals ...int) Axis {
	ax := Axis{Name: "bots"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("bots=%d", v),
			Set:   func(sc *Scenario) { sc.BotCount = v },
		})
	}
	return ax
}

// PerBotRates sweeps the per-bot attack rate (packets/second).
func PerBotRates(vals ...float64) Axis {
	ax := Axis{Name: "rate"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("rate=%g", v),
			Set:   func(sc *Scenario) { sc.PerBotRate = v },
		})
	}
	return ax
}

// Seeds sweeps the scenario seed, for replicated designs.
func Seeds(vals ...int64) Axis {
	ax := Axis{Name: "seed"}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("seed=%d", v),
			Set:   func(sc *Scenario) { sc.Seed = v },
		})
	}
	return ax
}

// Variants is a free-form axis for dimensions that change several fields
// at once (a defense mode paired with its difficulty, an adoption mix).
func Variants(name string, points ...Point) Axis {
	return Axis{Name: name, Points: points}
}

// Expand produces the grid's deduplicated cell list in deterministic
// row-major order (the last declared axis varies fastest). When scale is
// non-nil it rescales the base deployment before the axes apply, so axis
// coordinates always win over the scale's load shape. Cells whose
// canonical (post-Defaults) scenarios — labels included — coincide are
// emitted once, keeping replicated axis points from re-running identical
// simulations.
func (g Grid) Expand(scale *Scale) []Scenario {
	base := g.Base
	if scale != nil {
		base = scale.Apply(base)
	}
	cells := []Scenario{base}
	for _, ax := range g.Axes {
		if len(ax.Points) == 0 {
			continue
		}
		next := make([]Scenario, 0, len(cells)*len(ax.Points))
		for _, cell := range cells {
			for _, pt := range ax.Points {
				c := cell
				if pt.Set != nil {
					pt.Set(&c)
				}
				c.Label = joinLabel(cell.Label, pt.Label)
				next = append(next, c)
			}
		}
		cells = next
	}
	seen := make(map[string]bool, len(cells))
	out := cells[:0]
	for _, c := range cells {
		key, err := json.Marshal(c.Defaults())
		if err != nil {
			// Scenario is a plain struct; Marshal cannot fail. Keep the
			// cell rather than silently dropping it if that ever changes.
			out = append(out, c)
			continue
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		out = append(out, c)
	}
	return out
}

func joinLabel(base, part string) string {
	switch {
	case part == "":
		return base
	case base == "":
		return part
	default:
		return base + "/" + part
	}
}
