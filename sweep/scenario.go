package sweep

import (
	"io"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Defense selects the server protection. The empty string selects the
// paper's default (puzzles); every named variant — including DefenseNone —
// is always honoured, so no configuration is unreachable by defaulting.
type Defense string

// Supported defenses. The first four are the paper's comparison set
// (§5, §6.2); the rest are registered plugins built purely on the
// defense-strategy API (see package defense).
const (
	DefenseNone     Defense = "none"
	DefenseCookies  Defense = "cookies"
	DefenseSYNCache Defense = "syncache"
	DefensePuzzles  Defense = "puzzles"
	// DefenseHybrid serves SYN cookies under listen-queue pressure and
	// escalates to client puzzles once the accept queue comes under
	// attack — the gap cookies cannot cover (§6.2).
	DefenseHybrid Defense = "hybrid"
	// DefenseRateLimit is a probabilistic RED-style SYN admission
	// baseline: above the high watermark each SYN is dropped with a
	// probability that rises linearly with listen-queue occupancy.
	DefenseRateLimit Defense = "ratelimit"
	// DefenseAdaptivePuzzles retunes puzzle difficulty during the run:
	// each tick it estimates the attack rate from SYN-arrival metrics,
	// solves the game-theoretic Stackelberg best response for the
	// estimated model, and deploys the resulting (K, M) live.
	DefenseAdaptivePuzzles Defense = "adaptive-puzzles"
)

// KnownDefenses lists every Defense value this module ships a plugin for,
// in canonical order. The registry-completeness test asserts each resolves
// to a registered plugin (and vice versa).
func KnownDefenses() []Defense {
	return []Defense{
		DefenseNone, DefenseCookies, DefenseSYNCache, DefensePuzzles,
		DefenseHybrid, DefenseRateLimit, DefenseAdaptivePuzzles,
	}
}

// Attack selects the botnet behaviour. The empty string selects the
// paper's default (a connection flood).
type Attack string

// Supported attacks. The first four are the paper's flood behaviours; the
// rest are registered plugins built purely on the attack-strategy API (see
// package attack).
const (
	AttackSYNFlood      Attack = "synflood"
	AttackConnFlood     Attack = "connflood"
	AttackSolutionFlood Attack = "solutionflood"
	AttackReplayFlood   Attack = "replayflood"
	// AttackPulseFlood is a spoofed SYN flood fired in on/off bursts,
	// probing the challenge controller's engage/release latch instead of
	// applying constant pressure.
	AttackPulseFlood Attack = "pulseflood"
	// AttackAdaptiveFlood reallocates each bot's budget across the basic
	// flood behaviours via per-tick replicator dynamics driven by the
	// bot's own handshake feedback.
	AttackAdaptiveFlood Attack = "adaptive-flood"
)

// KnownAttacks lists every Attack value this module ships a plugin for, in
// canonical order. The registry-completeness test asserts each resolves to
// a registered plugin (and vice versa).
func KnownAttacks() []Attack {
	return []Attack{
		AttackSYNFlood, AttackConnFlood, AttackSolutionFlood,
		AttackReplayFlood, AttackPulseFlood, AttackAdaptiveFlood,
	}
}

// NoBotnet as a Scenario.BotCount disables the botnet entirely. (Zero
// means "default", so opting out needs an explicit sentinel.)
const NoBotnet = -1

// AutoShards as a Scenario.Shards sizes the event-engine shard count to
// the machine (GOMAXPROCS) at run time. Safe as a default precisely
// because sharding never changes results, only wall-clock time.
const AutoShards = -1

// Scenario is the canonical description of one deployment under attack:
// one server, a set of clients requesting text, and a botnet. It is the
// single config type shared by the public sim façade, every figure/table
// driver, the benchmarks, and the runner.
//
// The zero value of every field selects the paper's §6 defaults (see
// Defaults). Fields where zero is meaningful use explicit sentinels:
// BotCount: NoBotnet runs without a botnet, Workers: -1 disables the
// application worker pool, and the Defense/Attack enums are strings so
// "unset" ("") is distinct from every real variant.
type Scenario struct {
	// Label names the run in result tables and sink output.
	Label string

	// Duration is the experiment length; the attack runs over
	// [AttackStart, AttackStop).
	Duration    time.Duration
	AttackStart time.Duration
	AttackStop  time.Duration
	// Bucket is the metric bucket width.
	Bucket time.Duration

	// NumClients client hosts each issue ClientRate requests/second for
	// RequestBytes of text.
	NumClients   int
	ClientRate   float64
	RequestBytes int
	// ClientsSolve selects patched client kernels.
	ClientsSolve bool

	// Defense and Params configure the server protection.
	Defense         Defense
	Params          puzzle.Params
	AlwaysChallenge bool
	// AdaptiveDifficulty enables the server's closed-loop controller.
	AdaptiveDifficulty bool
	// Workers sizes the application pool (-1 disables it); Backlog and
	// AcceptBacklog size the server queues.
	Workers       int
	Backlog       int
	AcceptBacklog int

	// Attack, BotCount, PerBotRate and BotsSolve configure the botnet.
	// BotCount: NoBotnet runs the deployment without attackers.
	Attack     Attack
	BotCount   int
	PerBotRate float64
	BotsSolve  bool
	// BotMaxSolveBacklog makes solving bots "smart": they discard stale
	// challenges instead of queueing greedily (zero = greedy default).
	BotMaxSolveBacklog time.Duration
	// MacroSources, when positive, replaces the per-bot botnet with a
	// macro-aggregated population of that many attack sources, each
	// attacking at PerBotRate through the same registered strategy —
	// flat per-source state and O(batches) events, so 10⁵–10⁶-source
	// floods run in bounded memory. Zero keeps the per-bot botnet (and,
	// via omitempty, every pre-existing cache hash).
	MacroSources int `json:",omitempty"`
	// CompactBotRNG draws per-bot randomness from the compact splitmix
	// source macro fleets use — the knob that makes a per-bot run
	// draw-for-draw comparable to its macro-aggregated equivalent.
	// Default (false) keeps the historic stdlib RNG stream and hashes.
	CompactBotRNG bool `json:",omitempty"`

	// Seed drives all randomness; equal seeds reproduce runs bit-for-bit.
	// Every scenario builds its own RNG from this seed, so grids of
	// scenarios are independent and safe to run in parallel.
	Seed int64

	// Shards partitions the simulation's nodes across that many
	// concurrently executing event-engine shards (conservative
	// time-window PDES; see internal/netsim). 0 or 1 runs the classic
	// single heap; AutoShards uses one shard per core. Sharding is an
	// execution knob, not a modelling one: metrics and sink output are
	// byte-identical at every shard count, which is why the field is
	// excluded from JSON serialisation and from the result-cache hash.
	Shards int `json:"-"`
	// Speculative switches sharded execution from the conservative
	// lock-step window protocol to optimistic (speculate/rollback)
	// execution (see internal/netsim's spec.go). Like Shards it is purely
	// an execution knob — results are byte-identical either way, enforced
	// by the conservative-oracle differential tests — so it is likewise
	// excluded from serialisation and the cache hash.
	Speculative bool `json:"-"`
}

// Defaults returns a copy with the paper's §6 defaults applied to every
// unset field: 15 clients at 20 req/s, a 10-bot botnet at 500 pps each,
// attack over [120 s, 480 s) of a 600 s run, puzzles at the Nash
// difficulty (k = 2, m = 17, l = 32; each Params field defaults
// independently so grid axes may set k and m separately). Explicit
// sentinels (NoBotnet, Workers: -1) pass through. The canonical form of a
// scenario — the one hashed by the result cache — is its Defaults().
func (sc Scenario) Defaults() Scenario {
	if sc.Duration == 0 {
		sc.Duration = 600 * time.Second
	}
	if sc.AttackStart == 0 {
		sc.AttackStart = 120 * time.Second
	}
	if sc.AttackStop == 0 {
		sc.AttackStop = 480 * time.Second
	}
	if sc.Bucket == 0 {
		sc.Bucket = time.Second
	}
	if sc.NumClients == 0 {
		sc.NumClients = 15
	}
	if sc.ClientRate == 0 {
		sc.ClientRate = 20
	}
	if sc.RequestBytes == 0 {
		sc.RequestBytes = 100_000
	}
	if sc.Defense == "" {
		sc.Defense = DefensePuzzles
	}
	if sc.Params.K == 0 {
		sc.Params.K = 2
	}
	if sc.Params.M == 0 {
		sc.Params.M = 17
	}
	if sc.Params.L == 0 {
		sc.Params.L = 32
	}
	if sc.Attack == "" {
		sc.Attack = AttackConnFlood
	}
	if sc.BotCount == 0 {
		sc.BotCount = 10
	}
	if sc.PerBotRate == 0 {
		sc.PerBotRate = 500
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// Scale overrides a Scenario's deployment size so the paper's full
// 600-second evaluation shrinks for tests and benchmarks while preserving
// structure, and carries the execution options shared by every driver:
// runner width, result sinks, and the result cache.
type Scale struct {
	// Duration, AttackStart, AttackStop override the timeline.
	Duration, AttackStart, AttackStop time.Duration
	// NumClients, ClientRate, BotCount, PerBotRate override the load.
	NumClients int
	ClientRate float64
	BotCount   int
	PerBotRate float64
	// Backlog and AcceptBacklog size the server queues; reduced runs must
	// shrink them with the attack rate so floods saturate them on the same
	// relative timescale as the paper's 5000 pps vs 4096 slots.
	Backlog       int
	AcceptBacklog int
	// Workers sizes the application pool; reduced runs shrink it so the
	// flood overwhelms the drain rate by the same factor as at full scale.
	Workers int
	// Seed overrides the seed when non-zero.
	Seed int64
	// Shards overrides the event-engine shard count when non-zero
	// (AutoShards = one per core). Execution-only: results are identical
	// at every value.
	Shards int
	// Speculative opts sharded runs into optimistic execution.
	// Execution-only, like Shards.
	Speculative bool

	// Parallelism is the runner worker count used when a driver fans a
	// grid of scenarios out (0 = GOMAXPROCS). It never affects results,
	// only wall-clock time.
	Parallelism int
	// Sinks receive every completed cell's Result, streamed in grid order
	// as runs land. Nil runs without emission.
	Sinks []Sink
	// Cache short-circuits cells whose canonical scenario hash is already
	// stored. Nil disables caching.
	Cache *Cache
	// Debug, when non-nil, receives execution observability lines as
	// cells complete: per-cell shard load balance (event counts, barrier
	// waits) and per-grid runner-pool backpressure (steal counts, queue
	// depth). Purely observational — never written to sinks or cache.
	Debug io.Writer
}

// Apply overrides the scenario's deployment-size knobs with the scale's.
// Explicit "off" sentinels survive rescaling: a Scenario that opted out
// of the botnet (BotCount: NoBotnet) or the worker pool (Workers: -1)
// keeps that choice at every scale.
func (s Scale) Apply(sc Scenario) Scenario {
	sc.Duration = s.Duration
	sc.AttackStart = s.AttackStart
	sc.AttackStop = s.AttackStop
	sc.NumClients = s.NumClients
	sc.ClientRate = s.ClientRate
	if sc.BotCount != NoBotnet {
		sc.BotCount = s.BotCount
		sc.PerBotRate = s.PerBotRate
	}
	sc.Backlog = s.Backlog
	sc.AcceptBacklog = s.AcceptBacklog
	if sc.Workers >= 0 {
		sc.Workers = s.Workers
	}
	if s.Seed != 0 {
		sc.Seed = s.Seed
	}
	if s.Shards != 0 {
		sc.Shards = s.Shards
	}
	if s.Speculative {
		sc.Speculative = true
	}
	return sc
}

// ApplyAll applies the scale to a whole scenario grid.
func (s Scale) ApplyAll(scs ...Scenario) []Scenario {
	out := make([]Scenario, len(scs))
	for i, sc := range scs {
		out[i] = s.Apply(sc)
	}
	return out
}
