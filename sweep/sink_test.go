package sweep

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenResults is a fixed result set covering both metric-only and
// series-carrying cells. Purely synthetic: golden files stay stable on
// every platform.
func goldenResults() []Result {
	grid := Grid{
		Base: Scenario{Label: "demo", Duration: 30 * time.Second, Seed: 7},
		Axes: []Axis{Defenses(DefenseCookies, DefensePuzzles), Ks(1, 2)},
	}
	cells := grid.Expand(nil)
	out := make([]Result, len(cells))
	for i, sc := range cells {
		out[i] = Result{
			Experiment: "golden",
			Scenario:   sc.Defaults(),
			Metrics: []Metric{
				{Name: "mbps_during", Value: float64(i) + 0.25},
				{Name: "attack_cps", Value: 100.5 * float64(i+1)},
			},
		}
		if i == 0 {
			out[i].Series = []Series{{Name: "mbps", Values: []float64{0, 1.5, 2.25}}}
		}
	}
	return out
}

// checkGolden compares got against testdata/name, rewriting the file when
// the GOLDEN_UPDATE environment variable is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output differs from golden file:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestCSVSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, r := range goldenResults() {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.csv", buf.Bytes())
}

func TestNDJSONSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSON(&buf)
	for _, r := range goldenResults() {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.ndjson", buf.Bytes())
}

func TestTableSinkRenders(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTable(&buf)
	for _, r := range goldenResults() {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== golden ==") {
		t.Errorf("missing experiment title:\n%s", out)
	}
	if !strings.Contains(out, "mbps_during") || !strings.Contains(out, "demo/defense=puzzles/k=2") {
		t.Errorf("missing rows:\n%s", out)
	}
	// Flush clears the buffer; a second Flush emits nothing.
	buf.Reset()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("second Flush re-emitted: %q", buf.String())
	}
}

// Stream must deliver results to sinks in index order no matter the
// completion order — the serialization half of the repo's determinism
// guarantee.
func TestStreamReordersToGridOrder(t *testing.T) {
	results := goldenResults()
	var want bytes.Buffer
	wantSink := NewCSV(&want)
	for _, r := range results {
		if err := wantSink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var got bytes.Buffer
		stream := NewStream(NewCSV(&got))
		for _, i := range rng.Perm(len(results)) {
			if err := stream.Emit(i, results[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: out-of-order emission changed output:\n%s", trial, got.String())
		}
	}
}

type failingSink struct{ n int }

func (f *failingSink) Write(Result) error {
	f.n++
	if f.n > 1 {
		return os.ErrClosed
	}
	return nil
}
func (f *failingSink) Flush() error { return nil }

func TestStreamPropagatesSinkError(t *testing.T) {
	results := goldenResults()
	stream := NewStream(&failingSink{})
	if err := stream.Emit(0, results[0]); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if err := stream.Emit(1, results[1]); err == nil {
		t.Fatal("sink error swallowed")
	}
	// The error is sticky.
	if err := stream.Emit(2, results[2]); err == nil {
		t.Fatal("stream forgot the sink error")
	}
}
