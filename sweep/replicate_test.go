package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func replicateFixture() []Result {
	mk := func(seed int64, label string, v, w float64, series ...float64) Result {
		return Result{
			Experiment: "exp",
			Scenario:   Scenario{Label: label, Seed: seed}.Defaults(),
			Metrics:    []Metric{{Name: "m1", Value: v}, {Name: "m2", Value: w}},
			Series:     []Series{{Name: "s", Values: series}},
		}
	}
	return []Result{
		mk(1, "cell-a/seed=1", 10, 4, 1, 2),
		mk(2, "cell-a/seed=2", 14, 4, 3, 4),
		mk(3, "cell-a/seed=3", 18, 4, 5, 6),
		mk(9, "cell-b/seed=9", 7, 0, 10),
	}
}

func TestFoldSeedsMeanAndStddev(t *testing.T) {
	folded := FoldSeeds(replicateFixture())
	if len(folded) != 2 {
		t.Fatalf("folded groups = %d, want 2", len(folded))
	}
	a := folded[0]
	if a.Scenario.Label != "cell-a" {
		t.Errorf("label = %q, want cell-a (seed part stripped)", a.Scenario.Label)
	}
	if a.Scenario.Seed != 0 {
		t.Errorf("folded seed = %d, want 0", a.Scenario.Seed)
	}
	if got := a.Metric("replicates"); got != 3 {
		t.Errorf("replicates = %v, want 3", got)
	}
	if got := a.Metric("m1_mean"); got != 14 {
		t.Errorf("m1_mean = %v, want 14", got)
	}
	if got := a.Metric("m1_stddev"); math.Abs(got-4) > 1e-9 {
		t.Errorf("m1_stddev = %v, want 4 (sample stddev of 10,14,18)", got)
	}
	if got := a.Metric("m2_stddev"); got != 0 {
		t.Errorf("m2_stddev = %v, want 0 for constant metric", got)
	}
	// ci95 = t(df=2) · s/√n = 4.303 · 4/√3.
	if got, want := a.Metric("m1_ci95"), 4.303*4/math.Sqrt(3); math.Abs(got-want) > 1e-9 {
		t.Errorf("m1_ci95 = %v, want %v", got, want)
	}
	if got := a.Metric("m2_ci95"); got != 0 {
		t.Errorf("m2_ci95 = %v, want 0 for constant metric", got)
	}
	s := a.SeriesValues("s_mean")
	if len(s) != 2 || s[0] != 3 || s[1] != 4 {
		t.Errorf("s_mean = %v, want [3 4]", s)
	}
	// A single replicate folds to itself with zero spread.
	b := folded[1]
	if got := b.Metric("replicates"); got != 1 {
		t.Errorf("cell-b replicates = %v, want 1", got)
	}
	if got := b.Metric("m1_stddev"); got != 0 {
		t.Errorf("single-replicate stddev = %v, want 0", got)
	}
	if got := b.Metric("m1_ci95"); got != 0 {
		t.Errorf("single-replicate ci95 = %v, want 0", got)
	}
}

// tCritical95 must agree with the published table at its edges and decay
// monotonically toward the normal quantile.
func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980}
	for df, want := range cases {
		if got := tCritical95(df); math.Abs(got-want) > 2e-3 {
			t.Errorf("tCritical95(%d) = %v, want ≈%v", df, got, want)
		}
	}
	for df := 1; df < 200; df++ {
		if tCritical95(df+1) >= tCritical95(df) {
			t.Errorf("tCritical95 not strictly decreasing at df=%d", df)
		}
	}
	if tCritical95(0) != 0 {
		t.Error("df<1 must yield 0, not a panic")
	}
}

// Replicates distinguished by anything other than the seed must not fold
// together.
func TestFoldSeedsKeepsDistinctCellsApart(t *testing.T) {
	rs := replicateFixture()
	other := rs[0]
	other.Scenario.PerBotRate = 999
	other.Scenario.Label = "cell-a/seed=4"
	other.Scenario.Seed = 4
	folded := FoldSeeds(append(rs, other))
	if len(folded) != 3 {
		t.Fatalf("folded groups = %d, want 3 (rate change is a new cell)", len(folded))
	}
}

func TestReplicateSinkFoldsOnFlush(t *testing.T) {
	var buf bytes.Buffer
	sink := NewReplicate(NewCSV(&buf))
	for _, r := range replicateFixture() {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if buf.Len() != 0 {
		t.Fatal("ReplicateSink wrote before Flush")
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "m1_mean") || !strings.Contains(out, "m1_stddev") || !strings.Contains(out, "m1_ci95") {
		t.Errorf("folded CSV missing mean/stddev/ci95 rows:\n%s", out)
	}
	if strings.Contains(out, "seed=1") {
		t.Errorf("folded CSV still carries per-seed labels:\n%s", out)
	}
	// 2 groups × (1 replicates + 2 metrics × 3 stats) rows + header.
	if lines := strings.Count(out, "\n"); lines != 15 {
		t.Errorf("folded CSV has %d rows, want 15:\n%s", lines, out)
	}
	// A second Flush is a no-op for the buffer (nothing re-folded).
	before := buf.Len()
	if err := sink.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
	if buf.Len() != before {
		t.Error("second Flush re-emitted rows")
	}
}
