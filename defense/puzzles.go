package defense

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// puzzlesDefense is the paper's TCP client-puzzle protection (§5): the
// opportunistic controller challenges every SYN while the overload latch
// is engaged — even when the accept queue overflows, so solving clients
// can claim slots the moment they open — and verifies solutions
// statelessly on the returning ACK.
type puzzlesDefense struct{}

var puzzlesInfo = Info{
	Name:    sweep.DefensePuzzles,
	Summary: "TCP client puzzles with the opportunistic challenge controller (§5)",
}

func init() {
	Register(puzzlesInfo, func(ctx ServerCtx) (Defense, error) {
		if err := ctx.PuzzleParams().Validate(); err != nil {
			return nil, fmt.Errorf("puzzle params: %w", err)
		}
		return puzzlesDefense{}, nil
	})
}

// Describe implements Defense.
func (puzzlesDefense) Describe() Info { return puzzlesInfo }

// OnSYN implements Defense: the opportunistic controller (§5). Challenges
// engage when a queue fills and latch until both queues drain below the
// low-water mark; per the paper's modification, challenges are sent even
// while the accept queue overflows rather than dropping SYNs.
// AlwaysChallenge is the ablation that drops the opportunism.
func (puzzlesDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.OverloadActive() {
		sendChallenge(ctx, syn)
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: every unmatched ACK runs the puzzle completion
// path (solution verify, deception when the accept queue is full).
func (puzzlesDefense) OnACK(ctx ServerCtx, ack tcpkit.Segment) bool {
	completePuzzle(ctx, ack)
	return true
}

// OnTick implements Defense.
func (puzzlesDefense) OnTick(ServerCtx) {}
