package defense

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// The defender's model of its own deployment, fixed at registration time:
// a uniform finite game (game.FiniteGame) whose effective service rate
// shrinks linearly with the estimated attack rate. The constants are
// exported so the differential tests (and the arms-race driver) can
// recompute the exact Stackelberg prediction the plugin chases for any
// attack-rate estimate.
const (
	// AdaptiveModelClients and AdaptiveModelWeight describe the benign
	// population the provider optimises for: N identical clients valuing a
	// connection at the paper's measured w_av hashes (§4.4).
	AdaptiveModelClients = 8
	AdaptiveModelWeight  = 140630
	// AdaptiveModelService is the nominal M/M/1 service rate µ₀ the server
	// believes it has with no attack in progress.
	AdaptiveModelService = 100.0
	// AdaptiveModelCost is the effective service-rate loss per attack
	// SYN/s: µ_eff = µ₀ − cost·attackRate, floored at
	// AdaptiveModelMinService so the game stays well formed under floods
	// that would nominally drive capacity negative.
	AdaptiveModelCost       = 0.25
	AdaptiveModelMinService = 5.0
)

// Estimator smoothing: the benign-rate baseline learns slowly and only
// outside overload (with a 2× flash-crowd guard so the pre-latch seconds
// of a flood cannot contaminate it); the attack estimate tracks the excess
// over baseline with a faster EWMA.
const (
	adaptiveBenignAlpha = 0.1
	adaptiveAttackAlpha = 0.25
)

// AdaptiveGame returns the defender's finite game for an estimated attack
// rate: AdaptiveModelClients uniform clients at AdaptiveModelWeight, with
// the service rate degraded by the attack.
func AdaptiveGame(attackRate float64) game.FiniteGame {
	mu := AdaptiveModelService - AdaptiveModelCost*attackRate
	if mu < AdaptiveModelMinService {
		mu = AdaptiveModelMinService
	}
	return game.UniformGame(AdaptiveModelClients, AdaptiveModelWeight, mu)
}

// AdaptiveTarget maps an attack-rate estimate to deployable puzzle
// parameters: the Stackelberg-optimal work level ℓ* for AdaptiveGame,
// pushed through game.ParamsFor at the deployment's solution count and
// preimage length. When ℓ* needs more bits than the preimage carries the
// difficulty clamps to the hardest attainable setting instead of erroring,
// so the controller always has a deployable answer.
func AdaptiveTarget(attackRate float64, base puzzle.Params) (puzzle.Params, error) {
	lstar, err := AdaptiveGame(attackRate).OptimalDifficulty()
	if err != nil {
		return puzzle.Params{}, err
	}
	p, err := game.ParamsFor(lstar, base.K, base.L)
	if err == nil {
		return p, nil
	}
	m := int(base.L)
	if m > puzzle.MaxDifficultyBits {
		m = puzzle.MaxDifficultyBits
	}
	p = puzzle.Params{K: base.K, M: uint8(m), L: base.L}
	if verr := p.Validate(); verr != nil {
		return puzzle.Params{}, verr
	}
	return p, nil
}

// AdaptiveSample is one OnTick observation of the adaptive controller.
type AdaptiveSample struct {
	// At is the tick time.
	At time.Duration
	// SYNRate is the raw observed SYN arrival rate over the last tick.
	SYNRate float64
	// AttackRate is the smoothed attack-rate estimate after this tick.
	AttackRate float64
	// Params is the difficulty deployed after this tick.
	Params puzzle.Params
}

// AdaptivePuzzles retunes puzzle difficulty during the run: each OnTick it
// estimates the attack rate from the SYN-arrival counter (excess over a
// benign baseline learned outside overload), solves the Stackelberg best
// response for the degraded-capacity game (AdaptiveTarget), and deploys
// the resulting (K, M) on the live puzzle engine. Handshake handling is
// the paper's opportunistic-challenge path, identical to the static
// puzzles plugin; only the difficulty moves. After the flood stops the
// estimate decays and the difficulty returns to the no-attack optimum.
//
// The controller draws nothing from the server RNG and reads only
// cumulative counters through ServerCtx, so runs stay byte-identical at
// every shard count. Scenarios selecting it should leave the legacy
// AdaptiveDifficulty flag off — both controllers retune the same engine.
type AdaptivePuzzles struct {
	base       puzzle.Params
	prevSYNs   uint64
	prevAt     time.Duration
	benign     float64
	haveBenign bool
	attack     float64
	trace      []AdaptiveSample
}

var adaptivePuzzlesInfo = Info{
	Name:    sweep.DefenseAdaptivePuzzles,
	Summary: "client puzzles with in-run Stackelberg best-response difficulty",
	Fingerprint: fmt.Sprintf("adaptive-puzzles/v1 stackelberg n=%d w=%d mu=%g cost=%g floor=%g ewma=%g/%g",
		AdaptiveModelClients, AdaptiveModelWeight, AdaptiveModelService,
		AdaptiveModelCost, AdaptiveModelMinService, adaptiveAttackAlpha, adaptiveBenignAlpha),
}

func init() {
	Register(adaptivePuzzlesInfo, func(ctx ServerCtx) (Defense, error) {
		base := ctx.PuzzleParams()
		if err := base.Validate(); err != nil {
			return nil, fmt.Errorf("puzzle params: %w", err)
		}
		return &AdaptivePuzzles{base: base}, nil
	})
}

// Describe implements Defense.
func (*AdaptivePuzzles) Describe() Info { return adaptivePuzzlesInfo }

// OnSYN implements Defense: the opportunistic challenge controller, as in
// the static puzzles plugin.
func (*AdaptivePuzzles) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.OverloadActive() {
		sendChallenge(ctx, syn)
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: the stateless puzzle completion path.
func (*AdaptivePuzzles) OnACK(ctx ServerCtx, ack tcpkit.Segment) bool {
	completePuzzle(ctx, ack)
	return true
}

// OnTick implements Defense: estimate, solve, retune.
func (d *AdaptivePuzzles) OnTick(ctx ServerCtx) {
	now := ctx.Now()
	elapsed := (now - d.prevAt).Seconds()
	if elapsed <= 0 {
		return
	}
	syns := ctx.Metrics().SYNsReceived
	rate := float64(syns-d.prevSYNs) / elapsed
	d.prevSYNs, d.prevAt = syns, now

	if !d.haveBenign {
		d.benign, d.haveBenign = rate, true
	} else if !ctx.OverloadActive() && rate < 2*d.benign {
		d.benign += adaptiveBenignAlpha * (rate - d.benign)
	}
	excess := rate - d.benign
	if excess < 0 {
		excess = 0
	}
	d.attack += adaptiveAttackAlpha * (excess - d.attack)

	if target, err := AdaptiveTarget(d.attack, d.base); err == nil &&
		target != ctx.Puzzles().Params() {
		if ctx.Puzzles().SetParams(target) == nil {
			ctx.Metrics().DifficultyM.Set(now, float64(target.M))
		}
	}
	d.trace = append(d.trace, AdaptiveSample{
		At: now, SYNRate: rate, AttackRate: d.attack, Params: ctx.Puzzles().Params(),
	})
}

// AttackRateEstimate returns the current smoothed attack-rate estimate.
func (d *AdaptivePuzzles) AttackRateEstimate() float64 { return d.attack }

// BenignRateEstimate returns the learned benign SYN-rate baseline.
func (d *AdaptivePuzzles) BenignRateEstimate() float64 { return d.benign }

// Trace returns every per-tick observation, oldest first.
func (d *AdaptivePuzzles) Trace() []AdaptiveSample {
	return append([]AdaptiveSample(nil), d.trace...)
}

// TraceAt returns the last observation at or before t, for reading the
// controller's converged state at a point inside the attack window after
// the run has ended (the estimate decays once the flood stops).
func (d *AdaptivePuzzles) TraceAt(t time.Duration) (AdaptiveSample, bool) {
	var out AdaptiveSample
	var ok bool
	for _, s := range d.trace {
		if s.At > t {
			break
		}
		out, ok = s, true
	}
	return out, ok
}
