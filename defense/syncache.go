package defense

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// syncacheDefense is the BSD-style SYN cache: listen-queue overflow spills
// compact half-open state into a bounded cache (4× backlog) instead of
// dropping, deferring exhaustion rather than preventing it.
type syncacheDefense struct{}

var syncacheInfo = Info{
	Name:    sweep.DefenseSYNCache,
	Summary: "SYN cache: bounded half-open overflow store (4x backlog)",
}

func init() {
	Register(syncacheInfo, func(ServerCtx) (Defense, error) { return syncacheDefense{}, nil })
}

// Describe implements Defense.
func (syncacheDefense) Describe() Info { return syncacheInfo }

// OnSYN implements Defense.
func (syncacheDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.ListenFull() {
		spillToSynCache(ctx, syn, mss)
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: completions for spilled half-opens come from
// the cache; anything else falls through to the server default.
func (syncacheDefense) OnACK(ctx ServerCtx, ack tcpkit.Segment) bool {
	return takeFromSynCache(ctx, ack)
}

// OnTick implements Defense. (Cache expiry runs on the server's sweep
// alongside listen-queue expiry, as it did before the registry.)
func (syncacheDefense) OnTick(ServerCtx) {}
