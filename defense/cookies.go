package defense

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// cookiesDefense is the kernel SYN-cookie configuration: stateless
// SYN-ACKs once the listen queue fills, but SYNs still dropped outright
// when the accept queue is full — the gap that makes cookies ineffective
// against connection floods (§6.2).
type cookiesDefense struct{}

var cookiesInfo = Info{
	Name:    sweep.DefenseCookies,
	Summary: "SYN cookies: stateless SYN-ACKs once the listen queue fills (§6.2)",
}

func init() {
	Register(cookiesInfo, func(ServerCtx) (Defense, error) { return cookiesDefense{}, nil })
}

// Describe implements Defense.
func (cookiesDefense) Describe() Info { return cookiesInfo }

// OnSYN implements Defense.
func (cookiesDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.AcceptFull() {
		// Linux drops SYNs outright when the accept queue is full —
		// the gap that makes cookies ineffective against connection
		// floods (§6.2).
		ctx.Metrics().SYNsDropped++
		return
	}
	if ctx.ListenFull() {
		sendCookieSynAck(ctx, syn, mss)
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: every unmatched ACK is tried as a cookie
// completion.
func (cookiesDefense) OnACK(ctx ServerCtx, ack tcpkit.Segment) bool {
	completeCookie(ctx, ack)
	return true
}

// OnTick implements Defense.
func (cookiesDefense) OnTick(ServerCtx) {}
