package defense

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// noneDefense is the unprotected control setting: stateful handshakes
// only, SYNs dropped outright whenever either queue is exhausted.
type noneDefense struct{}

var noneInfo = Info{
	Name:    sweep.DefenseNone,
	Summary: "unprotected control: stateful handshakes, drop on queue exhaustion",
}

func init() {
	Register(noneInfo, func(ServerCtx) (Defense, error) { return noneDefense{}, nil })
}

// Describe implements Defense.
func (noneDefense) Describe() Info { return noneInfo }

// OnSYN implements Defense.
func (noneDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.AcceptFull() {
		ctx.Metrics().SYNsDropped++
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: no stateless completion path exists.
func (noneDefense) OnACK(ServerCtx, tcpkit.Segment) bool { return false }

// OnTick implements Defense.
func (noneDefense) OnTick(ServerCtx) {}
