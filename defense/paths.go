package defense

import (
	"github.com/tcppuzzles/tcppuzzles/internal/syncache"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// This file holds the reusable handshake paths the built-in strategies
// compose: the stateless cookie exchange, the puzzle challenge/verify
// exchange, and the SYN-cache spill. Each is written purely against
// ServerCtx so third-party strategies (e.g. the hybrid escalation) can mix
// them the same way the paper defenses do.

// sendChallenge replies with a stateless SYN-ACK carrying a puzzle. It is
// sent even when the accept queue overflows (the paper's modified
// behaviour), so that solving clients can claim slots the moment they open.
func sendChallenge(ctx ServerCtx, syn tcpkit.Segment) {
	flow := syn.Flow()
	ch := ctx.Puzzles().Issue(flow)
	ctx.ChargeHashes(ch.Params.GenerateHashes())
	opt, err := tcpopt.EncodeChallenge(ch, true)
	if err != nil {
		// Difficulty misconfiguration; account and drop.
		ctx.Metrics().EncodeFailures++
		return
	}
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{opt})
	if err != nil {
		ctx.Metrics().EncodeFailures++
		return
	}
	ctx.Metrics().ChallengesSent.Add(ctx.Now(), 1)
	// The SYN-ACK is stateless: the ISN is reconstructed at ACK time from
	// the cookie jar so a bare ACK cannot collide with a real half-open.
	ctx.SynAck(syn, ctx.Jar().Encode(flow, 0), opts)
}

// sendCookieSynAck replies with a stateless SYN-cookie SYN-ACK.
func sendCookieSynAck(ctx ServerCtx, syn tcpkit.Segment, mss uint16) {
	ctx.ChargeHashes(1)
	cookie := ctx.Jar().Encode(syn.Flow(), mss)
	ctx.Metrics().CookieSynAcks.Add(ctx.Now(), 1)
	ctx.SynAck(syn, cookie, nil)
}

// completeCookie validates a stateless cookie handshake.
func completeCookie(ctx ServerCtx, ack tcpkit.Segment) {
	flow := ack.Flow()
	flow.ISN = ack.Seq - 1 // the client's SYN ISN preceded this ACK
	ctx.ChargeHashes(1)
	mss, err := ctx.Jar().Decode(flow, ack.Ack-1)
	if err != nil {
		ctx.Metrics().CookieFailures++
		if ack.PayloadLen > 0 {
			ctx.SendRST(ack)
		}
		return
	}
	if ctx.AcceptFull() {
		ctx.Metrics().AcceptOverflow++
		return
	}
	ctx.Establish(tcpkit.PeerOf(ack), mss, false)
	// A data-bearing ACK (cookie + piggybacked request) is processed as
	// data immediately after establishment.
	ctx.DeliverData(ack)
}

// completePuzzle verifies a puzzle solution carried on the ACK. The order of
// checks follows §5: when the accept queue is full the ACK is ignored
// *before* any verification work, deceiving non-compliant senders; a
// later data packet from such a peer draws an RST.
func completePuzzle(ctx ServerCtx, ack tcpkit.Segment) {
	opts, err := tcpopt.ParseOptions(ack.Options)
	if err != nil {
		ctx.Metrics().SolutionMalformed++
		return
	}
	solOpt, ok := tcpopt.FindOption(opts, tcpopt.KindSolution)
	if !ok {
		// Bare ACK without solution while protection is active: the peer
		// either ignored the challenge (unpatched) or this is stray; it is
		// silently ignored. Data probes draw an RST (deception reveal).
		ctx.Metrics().AcksWithoutSolution++
		if ack.PayloadLen > 0 {
			ctx.SendRST(ack)
		}
		return
	}
	completeSolution(ctx, ack, solOpt)
}

// completeSolution runs the verification tail of the puzzle path for an
// ACK whose solution option has already been located.
func completeSolution(ctx ServerCtx, ack tcpkit.Segment, solOpt tcpopt.Option) {
	if ctx.AcceptFull() {
		ctx.Metrics().DeceptionIgnored++
		return
	}
	blk, err := tcpopt.ParseSolution(solOpt, ctx.Puzzles().Params())
	if err != nil {
		ctx.Metrics().SolutionMalformed++
		return
	}
	flow := ack.Flow()
	flow.ISN = ack.Seq - 1
	info, err := ctx.Puzzles().Verify(flow, blk.Solution)
	ctx.ChargeHashes(float64(info.Hashes))
	if err != nil {
		ctx.Metrics().SolutionInvalid++
		return
	}
	peer := tcpkit.PeerOf(ack)
	if ctx.AcceptContains(peer) {
		// Replayed solution: at most one slot per flow (§7).
		ctx.Metrics().ReplaysBlocked++
		return
	}
	ctx.Metrics().SolutionsVerified++
	ctx.Establish(peer, blk.MSS, true)
}

// spillToSynCache stores a half-open in the bounded SYN cache instead of
// the full listen queue and replies with an ordinary stateful SYN-ACK,
// dropping the SYN when the cache is full too.
func spillToSynCache(ctx ServerCtx, syn tcpkit.Segment, mss uint16) {
	serverISN := ctx.NextISN()
	added := ctx.SynCache().Add(&syncache.Entry{
		Peer:      tcpkit.PeerOf(syn),
		ClientISN: syn.Seq,
		ServerISN: serverISN,
		MSS:       mss,
		CreatedAt: ctx.Now(),
		ExpiresAt: ctx.Now() + ctx.SynAckTimeout(),
	})
	if !added {
		ctx.Metrics().SYNsDropped++
		return
	}
	ctx.Metrics().PlainSynAcks.Add(ctx.Now(), 1)
	ctx.SynAck(syn, serverISN, nil)
}

// takeFromSynCache completes a handshake whose half-open state spilled to
// the SYN cache, reporting whether the ACK was consumed.
func takeFromSynCache(ctx ServerCtx, ack tcpkit.Segment) bool {
	entry, ok := ctx.SynCache().Take(tcpkit.PeerOf(ack))
	if !ok {
		return false
	}
	ctx.Establish(tcpkit.PeerOf(ack), entry.MSS, false)
	return true
}
