package defense

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// hybridDefense escalates through the paper's comparison surface instead
// of picking one point on it: while the overload latch is engaged it first
// serves stateless SYN cookies (one hash per SYN — the cheap answer to a
// listen-queue flood), and only once the *accept* queue climbs past its
// high watermark — the §6.2 connection-flood signature cookies cannot
// answer — does it escalate to client-puzzle challenges, pricing admission
// instead of merely avoiding state.
//
// On the completion side, solution-bearing ACKs run the puzzle verify path
// and everything else is tried as a cookie, so both currencies stay
// redeemable while their issue windows overlap.
//
// The strategy is built purely on the ServerCtx facade and the shared
// handshake paths — no simulator-core code knows it exists.
type hybridDefense struct{}

var hybridInfo = Info{
	Name:        sweep.DefenseHybrid,
	Summary:     "SYN cookies first, escalating to client puzzles under accept-queue pressure",
	Fingerprint: "hybrid/v1 cookies-then-puzzles@accept-high-water",
}

func init() {
	Register(hybridInfo, func(ctx ServerCtx) (Defense, error) {
		if err := ctx.PuzzleParams().Validate(); err != nil {
			return nil, fmt.Errorf("puzzle params: %w", err)
		}
		return hybridDefense{}, nil
	})
}

// Describe implements Defense.
func (hybridDefense) Describe() Info { return hybridInfo }

// OnSYN implements Defense.
func (hybridDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if !ctx.OverloadActive() {
		// Calm: the unprotected fast path.
		if ctx.AcceptFull() {
			ctx.Metrics().SYNsDropped++
			return
		}
		ctx.NormalSYN(syn, mss, wscale)
		return
	}
	if ctx.AcceptLen() >= ctx.AcceptHighWater() {
		// Accept-queue pressure: attackers are completing handshakes, so
		// cookies only launder the flood into established state. Escalate
		// to puzzles (sent even on overflow, per the §5 modification).
		sendChallenge(ctx, syn)
		return
	}
	if ctx.ListenFull() {
		// Pure SYN pressure: shed half-open state, keep admission free.
		sendCookieSynAck(ctx, syn, mss)
		return
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: solutions redeem via the puzzle path, all
// other unmatched ACKs (including unparsable options) via the cookie
// path. Options are parsed once; the located solution option feeds the
// verification tail directly.
func (hybridDefense) OnACK(ctx ServerCtx, ack tcpkit.Segment) bool {
	if opts, err := tcpopt.ParseOptions(ack.Options); err == nil {
		if solOpt, ok := tcpopt.FindOption(opts, tcpopt.KindSolution); ok {
			completeSolution(ctx, ack, solOpt)
			return true
		}
	}
	completeCookie(ctx, ack)
	return true
}

// OnTick implements Defense.
func (hybridDefense) OnTick(ServerCtx) {}
