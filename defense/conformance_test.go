package defense_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// conformanceScale is a deliberately small deployment: the conformance
// suite multiplies over every registered defense, so each run must cost
// tens of milliseconds, not seconds.
func conformanceScale() sweep.Scale {
	return sweep.Scale{
		Duration: 24 * time.Second, AttackStart: 6 * time.Second, AttackStop: 18 * time.Second,
		NumClients: 3, ClientRate: 8, BotCount: 3, PerBotRate: 80,
		Backlog: 64, AcceptBacklog: 64, Workers: 24, Seed: 11,
	}
}

// seriesKey compresses a run's headline series into one comparable value.
func seriesKey(run *experiments.FloodRun) string {
	listen, accept := run.QueueSizes()
	return fmt.Sprint(run.ClientThroughputMbps(), run.ServerThroughputMbps(),
		run.ServerCPU(), listen, accept, run.AttackerEstablishedRate())
}

// TestDefenseConformance is the contract every registered defense plugin
// must honour, whoever wrote it: the server still serves legitimate
// clients outside the attack window (the activation latch engages and
// releases rather than wedging), queue bounds hold under overflow
// pressure with the worker pool disabled, and results are byte-identical
// across event-engine shard counts. Iterating defense.Names() means a
// newly registered plugin is conformance-tested by existing CI with zero
// new test code.
func TestDefenseConformance(t *testing.T) {
	for _, name := range defense.Names() {
		t.Run(string(name), func(t *testing.T) {
			t.Run("describe", func(t *testing.T) {
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "describe", Defense: name, BotCount: sweep.NoBotnet, Duration: time.Second,
				})
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				info := run.Server.Defense().Describe()
				if info.Name != name {
					t.Errorf("instance describes itself as %q, registered as %q", info.Name, name)
				}
				reg, _ := defense.Lookup(name)
				if !reflect.DeepEqual(info, reg) {
					t.Errorf("Describe() = %+v, registration = %+v", info, reg)
				}
			})

			t.Run("activation-latch", func(t *testing.T) {
				// A solving-client deployment under a connection flood:
				// whatever the defense does mid-attack, service before the
				// attack starts and after it releases must exist.
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "latch", Defense: name, Attack: sweep.AttackConnFlood,
					ClientsSolve: true,
				})
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				m := run.Server.Metrics()
				if m.SYNsReceived == 0 {
					t.Fatal("server saw no SYNs — scenario is vacuous")
				}
				if before := m.Established.SumRange(0, sc.AttackStart); before == 0 {
					t.Error("no handshakes completed before the attack (defense active when idle)")
				}
				if after := m.Established.SumRange(sc.AttackStop, sc.Duration); after == 0 {
					t.Error("no handshakes completed after the attack (defense never released)")
				}
			})

			t.Run("queue-overflow", func(t *testing.T) {
				// Nothing drains the accept queue and the listen queue is
				// tiny: the defense must keep both inside their bounds and
				// keep accounting sane under sustained overflow.
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "overflow", Defense: name, Attack: sweep.AttackSYNFlood,
					Workers: -1,
				})
				// After Apply: the scale owns the queue shape, so shrink it
				// here to force sustained overflow.
				sc.Backlog, sc.AcceptBacklog = 16, 8
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				if got := run.Server.ListenLen(); got > 16 {
					t.Errorf("listen queue %d exceeds backlog 16", got)
				}
				if got := run.Server.AcceptLen(); got > 8 {
					t.Errorf("accept queue %d exceeds backlog 8", got)
				}
				if run.Server.Metrics().SYNsReceived == 0 {
					t.Error("server saw no SYNs under flood")
				}
			})

			t.Run("determinism-shards", func(t *testing.T) {
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "det", Defense: name, Attack: sweep.AttackConnFlood,
					ClientsSolve: true, BotsSolve: true,
				})
				single, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood(shards=1): %v", err)
				}
				sharded := sc
				sharded.Shards = 4
				multi, err := experiments.RunFlood(sharded)
				if err != nil {
					t.Fatalf("RunFlood(shards=4): %v", err)
				}
				if seriesKey(single) != seriesKey(multi) {
					t.Error("defense produces different results at shards 1 vs 4")
				}
			})
		})
	}
}
