package defense_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// conformanceScale is a deliberately small deployment: the conformance
// suite multiplies over every registered defense, so each run must cost
// tens of milliseconds, not seconds.
func conformanceScale() sweep.Scale {
	return sweep.Scale{
		Duration: 24 * time.Second, AttackStart: 6 * time.Second, AttackStop: 18 * time.Second,
		NumClients: 3, ClientRate: 8, BotCount: 3, PerBotRate: 80,
		Backlog: 64, AcceptBacklog: 64, Workers: 24, Seed: 11,
	}
}

// seriesKey compresses a run's headline series into one comparable value.
func seriesKey(run *experiments.FloodRun) string {
	listen, accept := run.QueueSizes()
	return fmt.Sprint(run.ClientThroughputMbps(), run.ServerThroughputMbps(),
		run.ServerCPU(), listen, accept, run.AttackerEstablishedRate())
}

// TestDefenseConformance is the contract every registered defense plugin
// must honour, whoever wrote it: the server still serves legitimate
// clients outside the attack window (the activation latch engages and
// releases rather than wedging), queue bounds hold under overflow
// pressure with the worker pool disabled, and results are byte-identical
// across event-engine shard counts. Iterating defense.Names() means a
// newly registered plugin is conformance-tested by existing CI with zero
// new test code.
func TestDefenseConformance(t *testing.T) {
	for _, name := range defense.Names() {
		t.Run(string(name), func(t *testing.T) {
			t.Run("describe", func(t *testing.T) {
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "describe", Defense: name, BotCount: sweep.NoBotnet, Duration: time.Second,
				})
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				info := run.Server.Defense().Describe()
				if info.Name != name {
					t.Errorf("instance describes itself as %q, registered as %q", info.Name, name)
				}
				reg, _ := defense.Lookup(name)
				if !reflect.DeepEqual(info, reg) {
					t.Errorf("Describe() = %+v, registration = %+v", info, reg)
				}
				// Cache-identity law: the paper's four baselines keep their
				// pre-registry hashes via empty fingerprints; every later
				// plugin must carry a non-empty versioned fingerprint so its
				// cells can never alias a legacy cache entry.
				legacy := map[sweep.Defense]bool{
					sweep.DefenseNone: true, sweep.DefenseCookies: true,
					sweep.DefenseSYNCache: true, sweep.DefensePuzzles: true,
				}
				if legacy[name] && info.Fingerprint != "" {
					t.Errorf("legacy defense %q grew fingerprint %q; legacy cache hashes would shift", name, info.Fingerprint)
				}
				if !legacy[name] && info.Fingerprint == "" {
					t.Errorf("non-paper defense %q has no fingerprint; its cache identity is ambiguous", name)
				}
			})

			t.Run("activation-latch", func(t *testing.T) {
				// A solving-client deployment under a connection flood:
				// whatever the defense does mid-attack, service before the
				// attack starts and after it releases must exist.
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "latch", Defense: name, Attack: sweep.AttackConnFlood,
					ClientsSolve: true,
				})
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				m := run.Server.Metrics()
				if m.SYNsReceived == 0 {
					t.Fatal("server saw no SYNs — scenario is vacuous")
				}
				if before := m.Established.SumRange(0, sc.AttackStart); before == 0 {
					t.Error("no handshakes completed before the attack (defense active when idle)")
				}
				if after := m.Established.SumRange(sc.AttackStop, sc.Duration); after == 0 {
					t.Error("no handshakes completed after the attack (defense never released)")
				}
			})

			t.Run("queue-overflow", func(t *testing.T) {
				// Nothing drains the accept queue and the listen queue is
				// tiny: the defense must keep both inside their bounds and
				// keep accounting sane under sustained overflow.
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "overflow", Defense: name, Attack: sweep.AttackSYNFlood,
					Workers: -1,
				})
				// After Apply: the scale owns the queue shape, so shrink it
				// here to force sustained overflow.
				sc.Backlog, sc.AcceptBacklog = 16, 8
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				if got := run.Server.ListenLen(); got > 16 {
					t.Errorf("listen queue %d exceeds backlog 16", got)
				}
				if got := run.Server.AcceptLen(); got > 8 {
					t.Errorf("accept queue %d exceeds backlog 8", got)
				}
				if run.Server.Metrics().SYNsReceived == 0 {
					t.Error("server saw no SYNs under flood")
				}
			})

			t.Run("params-wire-range", func(t *testing.T) {
				// Whatever a defense does to the puzzle engine at runtime
				// (the adaptive plugin retunes it every tick), the deployed
				// parameters must stay inside the wire format's valid range
				// for the whole run.
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "wire", Defense: name, Attack: sweep.AttackSYNFlood,
					ClientsSolve: true,
				})
				run, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood: %v", err)
				}
				if p := run.Server.Issuer().Params(); p.Validate() != nil {
					t.Errorf("final deployed params %v invalid: %v", p, p.Validate())
				}
				// The adaptive controller exposes its whole deployment
				// history — every tick's params must validate, not just the
				// final state the run happened to end on.
				if ap, ok := run.Server.Defense().(*defense.AdaptivePuzzles); ok {
					for _, s := range ap.Trace() {
						if err := s.Params.Validate(); err != nil {
							t.Errorf("tick %v deployed invalid params %v: %v", s.At, s.Params, err)
						}
					}
				}
			})

			t.Run("determinism-shards", func(t *testing.T) {
				sc := conformanceScale().Apply(sweep.Scenario{
					Label: "det", Defense: name, Attack: sweep.AttackConnFlood,
					ClientsSolve: true, BotsSolve: true,
				})
				single, err := experiments.RunFlood(sc)
				if err != nil {
					t.Fatalf("RunFlood(shards=1): %v", err)
				}
				sharded := sc
				sharded.Shards = 4
				multi, err := experiments.RunFlood(sharded)
				if err != nil {
					t.Fatalf("RunFlood(shards=4): %v", err)
				}
				if seriesKey(single) != seriesKey(multi) {
					t.Error("defense produces different results at shards 1 vs 4")
				}
			})
		})
	}
}

// TestAdaptiveCellsCacheRoundTrip proves the adaptive plugins are
// full cache citizens: a rerun of the arms-race grid against a warm cache
// does zero simulation work (100% hits, zero new misses) and reproduces
// every metric and trajectory series value-for-value from the stored JSON.
func TestAdaptiveCellsCacheRoundTrip(t *testing.T) {
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scale := conformanceScale()
	scale.Cache = cache
	first, err := experiments.ArmsRace(scale)
	if err != nil {
		t.Fatalf("cold ArmsRace: %v", err)
	}
	misses := cache.Misses()
	if misses == 0 || cache.Hits() != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0 hits and one miss per cell", cache.Hits(), misses)
	}
	second, err := experiments.ArmsRace(scale)
	if err != nil {
		t.Fatalf("warm ArmsRace: %v", err)
	}
	if cache.Misses() != misses {
		t.Errorf("warm run missed %d times, want 100%% hits", cache.Misses()-misses)
	}
	if cache.Hits() != misses {
		t.Errorf("warm run hits = %d, want %d (every cell)", cache.Hits(), misses)
	}
	if len(first.Results) != len(second.Results) {
		t.Fatalf("result count changed across cache: %d vs %d", len(first.Results), len(second.Results))
	}
	for i := range first.Results {
		a, b := first.Results[i], second.Results[i]
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("cell %q: metrics changed through the cache:\n%v\nvs\n%v", a.Scenario.Label, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Series, b.Series) {
			t.Errorf("cell %q: series changed through the cache", a.Scenario.Label)
		}
	}
}
