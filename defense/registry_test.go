package defense

import (
	"strings"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestRegisterRejectsBadRegistrations(t *testing.T) {
	dummy := func(ServerCtx) (Defense, error) { return noneDefense{}, nil }
	mustPanic(t, "duplicate name", func() {
		Register(Info{Name: sweep.DefenseNone, Summary: "dup"}, dummy)
	})
	mustPanic(t, "empty name", func() {
		Register(Info{Summary: "anonymous"}, dummy)
	})
	mustPanic(t, "nil factory", func() {
		Register(Info{Name: "test-nil-factory"}, nil)
	})
}

func TestNewUnknownDefenseErrors(t *testing.T) {
	_, err := New("voodoo", nil)
	if err == nil {
		t.Fatal("unknown defense instantiated")
	}
	if !strings.Contains(err.Error(), "voodoo") {
		t.Errorf("error does not name the unknown defense: %v", err)
	}
	// The error must teach the caller what exists.
	if !strings.Contains(err.Error(), string(sweep.DefensePuzzles)) {
		t.Errorf("error does not list registered defenses: %v", err)
	}
}

// TestRegistryCompleteness is the CI contract: every sweep.Defense enum
// value resolves to a registered plugin, and every registered plugin is a
// declared enum value — the grid vocabulary and the registry can never
// drift apart.
func TestRegistryCompleteness(t *testing.T) {
	known := map[sweep.Defense]bool{}
	for _, name := range sweep.KnownDefenses() {
		known[name] = true
		info, ok := Lookup(name)
		if !ok {
			t.Errorf("sweep defense %q has no registered plugin", name)
			continue
		}
		if info.Name != name {
			t.Errorf("plugin for %q registered as %q", name, info.Name)
		}
		if info.Summary == "" {
			t.Errorf("plugin %q has no summary", name)
		}
	}
	for _, info := range Infos() {
		if !known[info.Name] {
			t.Errorf("registered defense %q is not a sweep.KnownDefenses value", info.Name)
		}
	}
}

// TestFingerprintContract pins the cache-identity rule: the paper's four
// defenses carry no fingerprint (their hashes predate the registry), new
// plugins carry a versioned one, and the sweep layer sees exactly what
// the registry declared.
func TestFingerprintContract(t *testing.T) {
	legacy := []sweep.Defense{
		sweep.DefenseNone, sweep.DefenseCookies, sweep.DefenseSYNCache, sweep.DefensePuzzles,
	}
	for _, name := range legacy {
		info, _ := Lookup(name)
		if info.Fingerprint != "" {
			t.Errorf("legacy defense %q has fingerprint %q; must be empty to keep old cache hashes", name, info.Fingerprint)
		}
		if fp := sweep.DefenseFingerprint(name); fp != "" {
			t.Errorf("sweep sees fingerprint %q for legacy defense %q", fp, name)
		}
	}
	for _, name := range []sweep.Defense{sweep.DefenseHybrid, sweep.DefenseRateLimit} {
		info, _ := Lookup(name)
		if info.Fingerprint == "" {
			t.Errorf("new defense %q has no fingerprint; it needs its own cache identity", name)
		}
		if fp := sweep.DefenseFingerprint(name); fp != info.Fingerprint {
			t.Errorf("sweep fingerprint for %q = %q, registry says %q", name, fp, info.Fingerprint)
		}
	}
}
