// Package defense is the server-protection plugin API: the open registry
// behind the paper's comparison surface. A Defense is a strategy object
// with handshake lifecycle hooks — OnSYN for connection requests, OnACK
// for bare ACKs that matched no server state, OnTick for periodic work —
// driven by the protected-server simulator through a narrow ServerCtx
// facade over its internals (listen/accept queues, metrics, crypto-cost
// charging, segment send/RST, and the event-engine clock).
//
// The four defenses evaluated in the paper — no protection, SYN cookies,
// a SYN cache, and TCP client puzzles (§5, §6.2) — are ordinary plugins in
// this package, registered under the sweep.Defense names the DOE layer
// already sweeps, so `Defenses: [...]` grid axes, result-cache keys, and
// `tcpz-exp -list-defenses` all derive from one registry. New defenses
// register the same way (see hybrid.go and ratelimit.go for two built on
// nothing but this API) and become sweepable scenario coordinates without
// touching the simulator core. Because ServerCtx speaks the module's
// internal vocabulary (tcpkit segments, the srvmetrics struct), strategy
// implementations live inside this module — "open" means additive
// registration with zero simulator-core edits, not out-of-module
// compilation.
//
// Cache identity: a plugin's Info.Fingerprint feeds the sweep result-cache
// hash. The paper defenses register an empty fingerprint — their identity
// is the canonical Scenario, keeping every pre-registry cache hash stable —
// while new plugins register a versioned fingerprint and bump it when
// their behaviour changes.
package defense

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/srvmetrics"
	"github.com/tcppuzzles/tcppuzzles/internal/syncache"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/syncookie"
)

// ServerCtx is the narrow facade a Defense sees of the protected server.
// Everything a strategy may do — inspect queue pressure, mint ISNs, send
// SYN-ACKs and RSTs, charge hash work to the server CPU, establish
// connections, account metrics — goes through it; nothing else of the
// simulator is reachable, which is what keeps strategies portable across
// simulator refactors.
type ServerCtx interface {
	// Now is the event-engine clock.
	Now() time.Duration
	// Rand is the server's deterministic RNG. Strategies that draw from it
	// share the stream with the server's worker-pool jitter; the paper
	// defenses never draw, preserving their exact pre-registry behaviour.
	Rand() *rand.Rand

	// Deployment knobs.
	Backlog() int
	AcceptBacklog() int
	SynAckTimeout() time.Duration
	PuzzleParams() puzzle.Params

	// Listen-queue (half-open) state.
	ListenLen() int
	ListenFull() bool
	// ListenHighWater is the overload watermark for the listen queue
	// (1/16 of capacity, minimum 1).
	ListenHighWater() int

	// Accept-queue (established, unaccepted) state.
	AcceptLen() int
	AcceptFull() bool
	// AcceptHighWater is the overload watermark for the accept queue.
	AcceptHighWater() int
	AcceptContains(peer tcpkit.PeerKey) bool

	// OverloadActive reports the §5 opportunistic controller: it latches
	// once either queue passes its high watermark and releases only after
	// both stay below the low watermark for a full release window (or
	// always fires under the AlwaysChallenge ablation).
	OverloadActive() bool

	// NextISN mints the next server initial sequence number.
	NextISN() uint32
	// NormalSYN runs the unprotected handshake path: allocate half-open
	// state and reply SYN-ACK, dropping the SYN (SYNsDropped) when the
	// backlog is exhausted.
	NormalSYN(syn tcpkit.Segment, mss uint16, wscale uint8)
	// SynAck builds and transmits a SYN-ACK for the given SYN; nil opts
	// selects the default MSS/WScale advertisement.
	SynAck(syn tcpkit.Segment, serverISN uint32, opts []byte)
	// SendRST signals that no connection exists.
	SendRST(seg tcpkit.Segment)
	// Establish records a completed handshake on the accept queue and
	// dispatches application workers.
	Establish(peer tcpkit.PeerKey, mss uint16, solvedPuzzle bool)
	// DeliverData processes a data-bearing segment on the peer's
	// established connection, if one exists (piggybacked requests).
	DeliverData(seg tcpkit.Segment)

	// ChargeHashes runs hash work on the server CPU model.
	ChargeHashes(n float64)
	// Jar is the server's SYN-cookie jar (stateless ISN encode/decode).
	Jar() *syncookie.Jar
	// Puzzles is the server's puzzle engine (issue/verify, retunable).
	Puzzles() pzengine.Engine
	// SynCache is the server's bounded half-open overflow cache.
	SynCache() *syncache.Cache

	// Metrics is the shared measurement state.
	Metrics() *srvmetrics.Metrics
}

// Info identifies a registered defense.
type Info struct {
	// Name is the sweep.Defense key the plugin registers under — the same
	// string scenario grids sweep and sinks serialise.
	Name sweep.Defense
	// Summary is a one-line description for listings.
	Summary string
	// Fingerprint, when non-empty, feeds the result-cache hash of every
	// cell using this defense. Paper defenses leave it empty (their cache
	// identity predates the registry); new plugins set a versioned string
	// and bump it on behaviour changes to invalidate their own entries.
	Fingerprint string
}

// Defense is one server-protection strategy. Implementations must be
// deterministic: everything they do may derive only from the ServerCtx and
// their own state, so runs reproduce bit-for-bit at any shard or worker
// count.
type Defense interface {
	// Describe returns the plugin's registration identity.
	Describe() Info
	// OnSYN handles a connection request (after the server has counted it
	// and parsed its MSS/WScale options).
	OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8)
	// OnACK handles a bare ACK that matched no established connection and
	// no listen-queue entry. Returning true consumes the segment; false
	// falls through to the server's default (RST on data-bearing ACKs).
	OnACK(ctx ServerCtx, ack tcpkit.Segment) bool
	// OnTick fires from the server's once-per-second sweep timer, for
	// strategies with periodic state (expiries, decaying counters).
	OnTick(ctx ServerCtx)
}

// Factory builds a defense instance for one server. It runs during server
// construction and should validate configuration (e.g. puzzle difficulty)
// before the simulation starts.
type Factory func(ctx ServerCtx) (Defense, error)

var (
	regMu    sync.RWMutex
	registry = map[sweep.Defense]registration{}
)

type registration struct {
	info    Info
	factory Factory
}

// Register adds a defense plugin to the registry under info.Name and
// records its cache fingerprint with the sweep layer. It panics on an
// empty name, a nil factory, or a duplicate registration — all programmer
// errors at init time.
func Register(info Info, factory Factory) {
	if info.Name == "" {
		panic("defense: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("defense: Register(%q) with nil factory", info.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("defense: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = registration{info: info, factory: factory}
	sweep.RegisterDefenseFingerprint(info.Name, info.Fingerprint)
}

// New instantiates the named defense for a server. Unknown names error
// with the registered alternatives.
func New(name sweep.Defense, ctx ServerCtx) (Defense, error) {
	regMu.RLock()
	reg, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("defense: unknown defense %q (registered: %s)",
			name, strings.Join(nameStrings(), ", "))
	}
	d, err := reg.factory(ctx)
	if err != nil {
		return nil, fmt.Errorf("defense: %q: %w", name, err)
	}
	return d, nil
}

// Lookup returns the registration info for a name.
func Lookup(name sweep.Defense) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	reg, ok := registry[name]
	return reg.info, ok
}

// Infos lists every registered defense, sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists every registered defense name, sorted.
func Names() []sweep.Defense {
	infos := Infos()
	out := make([]sweep.Defense, len(infos))
	for i, info := range infos {
		out[i] = info.Name
	}
	return out
}

func nameStrings() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, string(name))
	}
	sort.Strings(out)
	return out
}
