package defense

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// rateLimitDefense is a probabilistic SYN rate-limiter baseline, in the
// spirit of RED queueing: below the listen queue's high watermark every
// SYN is admitted; above it each SYN survives a coin flip whose drop
// probability rises linearly with occupancy, reaching certainty at a full
// queue. It spends no crypto and keeps no extra state — the cheapest
// possible comparison point between "none" and the stateless defenses —
// and, like every early-drop scheme, cannot distinguish attacker SYNs
// from client SYNs, which is exactly the weakness the sweep grids expose.
type rateLimitDefense struct{}

var rateLimitInfo = Info{
	Name:        sweep.DefenseRateLimit,
	Summary:     "probabilistic RED-style SYN admission above the listen high watermark",
	Fingerprint: "ratelimit/v1 linear-early-drop",
}

func init() {
	Register(rateLimitInfo, func(ServerCtx) (Defense, error) { return rateLimitDefense{}, nil })
}

// Describe implements Defense.
func (rateLimitDefense) Describe() Info { return rateLimitInfo }

// OnSYN implements Defense.
func (rateLimitDefense) OnSYN(ctx ServerCtx, syn tcpkit.Segment, mss uint16, wscale uint8) {
	if ctx.AcceptFull() {
		ctx.Metrics().SYNsDropped++
		return
	}
	occupancy, capacity, hi := ctx.ListenLen(), ctx.Backlog(), ctx.ListenHighWater()
	switch {
	case occupancy >= capacity:
		// Certain drop: skip the coin flip (and the ISN draw a doomed
		// NormalSYN would burn) so the RNG stream stays occupancy-driven.
		ctx.Metrics().SYNsDropped++
		return
	case occupancy >= hi:
		drop := float64(occupancy-hi+1) / float64(capacity-hi+1)
		if ctx.Rand().Float64() < drop {
			ctx.Metrics().SYNsDropped++
			return
		}
	}
	ctx.NormalSYN(syn, mss, wscale)
}

// OnACK implements Defense: no stateless completion path exists.
func (rateLimitDefense) OnACK(ServerCtx, tcpkit.Segment) bool { return false }

// OnTick implements Defense.
func (rateLimitDefense) OnTick(ServerCtx) {}
