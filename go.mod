module github.com/tcppuzzles/tcppuzzles

go 1.24.0
