// Package tcppuzzles_test hosts the benchmark harness: one benchmark per
// table and figure in the paper's evaluation (§6), plus microbenchmarks of
// the puzzle primitives and ablation benches for the design choices called
// out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benches execute a scaled-down scenario per iteration and
// report the headline quantities as custom metrics (e.g. Mbps during the
// attack, effective attacker connections/second). The cmd/tcpz-exp binary
// runs the full-size versions.
package tcppuzzles_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/membound"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sim"
)

// benchScale is the reduced deployment used by the figure benches.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Duration: 60 * time.Second, AttackStart: 15 * time.Second, AttackStop: 45 * time.Second,
		NumClients: 4, ClientRate: 8, BotCount: 4, PerBotRate: 80,
		Backlog: 128, AcceptBacklog: 128, Workers: 48, Seed: 42,
	}
}

// runnerGrid is the scenario set behind BenchmarkRunnerParallel: six
// QuickScale deployments mixing defenses, attacks and seeds.
func runnerGrid() []sim.Scenario {
	quick := experiments.QuickScale()
	grid := quick.ApplyAll(
		sim.Scenario{Label: "puzzles-conn", Defense: sim.DefensePuzzles,
			Attack: sim.AttackConnFlood, ClientsSolve: true, BotsSolve: true},
		sim.Scenario{Label: "cookies-syn", Defense: sim.DefenseCookies,
			Attack: sim.AttackSYNFlood, ClientsSolve: true},
		sim.Scenario{Label: "none-conn", Defense: sim.DefenseNone,
			Attack: sim.AttackConnFlood, ClientsSolve: true},
		sim.Scenario{Label: "syncache-syn", Defense: sim.DefenseSYNCache,
			Attack: sim.AttackSYNFlood, ClientsSolve: true},
		sim.Scenario{Label: "puzzles-syn", Defense: sim.DefensePuzzles,
			Attack: sim.AttackSYNFlood, ClientsSolve: true},
		sim.Scenario{Label: "puzzles-solution", Defense: sim.DefensePuzzles,
			Attack: sim.AttackSolutionFlood, ClientsSolve: true},
	)
	for i := range grid {
		grid[i].Seed = int64(1 + i)
	}
	return grid
}

// BenchmarkRunnerParallel measures the work-stealing runner's wall-clock
// scaling over the QuickScale scenario grid. Expect workers=4 to complete
// in well under half the workers=1 time on a 4+-core machine, with
// byte-identical results (verified in TestRunAllMatchesSequentialRun and
// TestRunScenariosDeterministicAcrossWorkers). The simulation jobs are
// CPU-bound, so the observable speedup is capped by the cores the
// container actually grants (a single-core runner shows ~1x).
func BenchmarkRunnerParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			grid := runnerGrid()
			for i := 0; i < b.N; i++ {
				results, err := sim.RunAll(workers, grid)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(grid) {
					b.Fatalf("got %d results, want %d", len(results), len(grid))
				}
			}
		})
	}
}

// shardedFloodScenario is the large deployment behind
// BenchmarkShardedFlood: a response-heavy connection flood whose event
// count is dominated by per-client traffic, so node partitioning has real
// parallel work to win. Big enough that the lock-step window barriers
// (every ~4 ms of simulated time) amortise; small enough to iterate.
func shardedFloodScenario() sim.Scenario {
	return sim.Scenario{
		Label:    "sharded-flood",
		Duration: 30 * time.Second, AttackStart: 5 * time.Second, AttackStop: 25 * time.Second,
		NumClients: 24, ClientRate: 20, BotCount: 12, PerBotRate: 200,
		Backlog: 512, AcceptBacklog: 512, Workers: 64, Seed: 42,
		ClientsSolve: true, BotsSolve: true,
	}
}

// macroFloodScenario is the macro-aggregated population behind
// BenchmarkMacroFlood: the same fixed 20-second SYN-flood shape as the CI
// bounded-memory wall (TestMacroFloodBoundedMemory) and `tcpz-profile
// -sources`, so the three scale probes measure the same workload.
func macroFloodScenario(sources int) experiments.Scenario {
	return experiments.Scenario{
		Label:    fmt.Sprintf("macro-%d", sources),
		Duration: 20 * time.Second, AttackStart: 2 * time.Second, AttackStop: 18 * time.Second,
		NumClients: 2, ClientRate: 4,
		Defense: experiments.DefensePuzzles, Attack: experiments.AttackSYNFlood,
		BotCount: sim.NoBotnet, MacroSources: sources, PerBotRate: 0.05,
		Backlog: 512, AcceptBacklog: 128, Workers: 24,
		Seed: 11,
	}
}

// BenchmarkMacroFlood measures the macro-source execution path as the
// population grows 10k → 1M: one scheduled event drives a whole batch of
// sources per tick and per-source state is a few flat array slots, so
// runtime grows with packet count while retained heap stays tens of
// megabytes even at a million sources (a per-bot run of the same
// population would retain gigabytes). The measured sources-vs-RSS/runtime
// curve for the reference container is recorded in BENCH_scale.json.
func BenchmarkMacroFlood(b *testing.B) {
	for _, sources := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("sources=%d", sources), func(b *testing.B) {
			sc := macroFloodScenario(sources)
			for i := 0; i < b.N; i++ {
				run, err := experiments.RunFlood(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.Macro.TotalSent(0, sc.Duration), "packets")
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MiB")
				runtime.KeepAlive(run)
			}
		})
	}
}

// shardCounts sweeps 1 → GOMAXPROCS in powers of two (always including at
// least 1, 2 and 4 so the curve is comparable across machines).
func shardCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1, 2, 4}
	for n := 8; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkShardedFlood measures how the sharded event engine scales one
// large flood across cores (the complement of BenchmarkRunnerParallel,
// which scales *across* independent scenarios). Results are byte-identical
// at every shard count (TestShardDeterminismMatrix); shards only divide
// wall-clock time. As with the runner bench, the observable speedup is
// capped by the cores the container actually grants — a single-core
// machine shows ~1x minus barrier overhead. The measured curve for this
// repository's reference container is recorded in BENCH_shards.json.
func BenchmarkShardedFlood(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sc := shardedFloodScenario()
			sc.Shards = shards
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EffectiveAttackRate, "attacker-cps")
			}
		})
	}
}

// BenchmarkSpeculativeFlood runs the BenchmarkShardedFlood deployment
// under speculative execution: shards run a full quantum past their
// lookahead bound, snapshot their state, and roll back when a straggler
// cross-shard packet lands behind the speculative horizon. Results are
// byte-identical to the conservative run at every shard count
// (TestSpeculativeShardDeterminismMatrix); the interesting quantity is
// the wall-clock delta versus BenchmarkShardedFlood — speculation trades
// snapshot and rollback work for fewer barriers, so it wins only when
// lookahead is tight relative to event density and cores are real. The
// measured curve (and the single-core caveat) is recorded in
// BENCH_shards.json.
func BenchmarkSpeculativeFlood(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sc := shardedFloodScenario()
			sc.Shards = shards
			sc.Speculative = true
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EffectiveAttackRate, "attacker-cps")
			}
		})
	}
}

func BenchmarkFig3aClientProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3a(experiments.Scale{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Wav, "wav-hashes")
	}
}

func BenchmarkFig3bServerProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3b(experiments.Scale{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Alpha, "alpha")
	}
}

func BenchmarkFig6ConnTimeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Fig6Config{
			Ks: []uint8{1, 2}, Ms: []uint8{4, 10, 16}, Connections: 40, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if mean, ok := res.MeanFor(2, 16); ok {
			b.ReportMetric(mean, "µs-k2m16")
		}
	}
}

func BenchmarkFig7SYNFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if run, ok := res.RunFor("challenges-m17"); ok {
			b.ReportMetric(run.PhaseMean(run.ClientThroughputMbps(), experiments.PhaseDuring),
				"Mbps-puzzles-during")
		}
		if run, ok := res.RunFor("nodefense"); ok {
			b.ReportMetric(run.PhaseMean(run.ClientThroughputMbps(), experiments.PhaseDuring),
				"Mbps-nodefense-during")
		}
	}
}

func BenchmarkFig8ConnFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if run, ok := res.RunFor("challenges-m17"); ok {
			b.ReportMetric(run.PhaseMean(run.ClientThroughputMbps(), experiments.PhaseDuring),
				"Mbps-puzzles-during")
		}
		if run, ok := res.RunFor("cookies"); ok {
			b.ReportMetric(run.PhaseMean(run.ClientThroughputMbps(), experiments.PhaseDuring),
				"Mbps-cookies-during")
		}
	}
}

func BenchmarkFig9CPUUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Run.PhaseMean(res.Run.ServerCPU(), experiments.PhaseDuring), "srv-cpu-pct")
		b.ReportMetric(res.Run.PhaseMean(res.Run.AttackerCPU(), experiments.PhaseDuring), "att-cpu-pct")
	}
}

func BenchmarkFig10Queues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		_, pzAccept := res.Puzzles.QueueSizes()
		_, ckAccept := res.Cookies.QueueSizes()
		b.ReportMetric(res.Puzzles.PhaseMean(pzAccept, experiments.PhaseDuring), "acceptq-puzzles")
		b.ReportMetric(res.Cookies.PhaseMean(ckAccept, experiments.PhaseDuring), "acceptq-cookies")
	}
}

func BenchmarkFig11AttackRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionFactor(), "reduction-x")
	}
}

func BenchmarkFig12DifficultyGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Fig12Config{
			Ks: []uint8{2}, Ms: []uint8{12, 17}, Scale: benchScale(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if cell, ok := res.CellFor(2, 17); ok {
			b.ReportMetric(cell.Box.Mean, "Mbps-nash-mean")
			b.ReportMetric(cell.Box.Std, "Mbps-nash-std")
		}
	}
}

func BenchmarkFig13RateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchScale(), []float64{100, 400})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.CompletionRate, "cps-at-max-rate")
	}
}

func BenchmarkFig14BotnetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(benchScale(), []int{2, 8}, 400)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.CompletionRate, "cps-at-max-size")
	}
}

func BenchmarkFig15Adoption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if cell, ok := res.CellFor("(SA,SC)"); ok {
			b.ReportMetric(cell.PctEstablished, "pct-solving-client")
		}
		if cell, ok := res.CellFor("(NA,NC)"); ok {
			b.ReportMetric(cell.PctEstablished, "pct-nonsolving-client")
		}
	}
}

func BenchmarkTable1IoTProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.Scale{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MaxFloodRateCPS, "d1-max-flood-cps")
	}
}

func BenchmarkNashExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NashExample(experiments.Scale{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Params.M), "m-star")
	}
}

func BenchmarkAblationOpportunistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationOpportunistic(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		opp := res.Opportunistic.PhaseMean(
			res.Opportunistic.ClientThroughputMbps(), experiments.PhaseBefore)
		always := res.AlwaysOn.PhaseMean(
			res.AlwaysOn.ClientThroughputMbps(), experiments.PhaseBefore)
		b.ReportMetric(opp, "Mbps-opportunistic-peace")
		b.ReportMetric(always, "Mbps-alwayson-peace")
	}
}

func BenchmarkAblationSolutionFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSolutionFlood(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Run.PhaseMean(res.Run.ServerCPU(), experiments.PhaseDuring), "srv-cpu-pct")
	}
}

// --- Microbenchmarks of the puzzle primitives (§7's server-load claims). ---

func benchIssuer(b *testing.B, p puzzle.Params) (*puzzle.Issuer, puzzle.FlowID) {
	b.Helper()
	is, err := puzzle.NewIssuer(puzzle.WithParams(p))
	if err != nil {
		b.Fatal(err)
	}
	return is, puzzle.FlowID{SrcIP: [4]byte{10, 0, 0, 2}, SrcPort: 4000, DstPort: 80, ISN: 7}
}

func BenchmarkPuzzleIssue(b *testing.B) {
	is, flow := benchIssuer(b, puzzle.Params{K: 2, M: 17, L: 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = is.Issue(flow)
	}
}

func BenchmarkPuzzleVerify(b *testing.B) {
	p := puzzle.Params{K: 2, M: 8, L: 32}
	is, flow := benchIssuer(b, p)
	sol, _, err := puzzle.Solve(is.Issue(flow))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := is.Verify(flow, sol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPuzzleSolveM8(b *testing.B) {
	is, flow := benchIssuer(b, puzzle.Params{K: 1, M: 8, L: 32})
	b.ReportAllocs()
	var hashes uint64
	for i := 0; i < b.N; i++ {
		flow.ISN = uint32(i)
		_, stats, err := puzzle.Solve(is.Issue(flow))
		if err != nil {
			b.Fatal(err)
		}
		hashes += stats.Hashes
	}
	b.ReportMetric(float64(hashes)/float64(b.N), "hashes/solve")
}

func BenchmarkPuzzleSolveM12(b *testing.B) {
	is, flow := benchIssuer(b, puzzle.Params{K: 1, M: 12, L: 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		flow.ISN = uint32(i)
		if _, _, err := puzzle.Solve(is.Issue(flow)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMemoryBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMemoryBound(experiments.Scale{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HashCV, "hash-cv")
		b.ReportMetric(res.MemCV, "membound-cv")
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	scale := benchScale()
	scale.Duration = 160 * time.Second
	scale.AttackStop = 105 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAdaptive(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakM(), "peak-m")
	}
}

func BenchmarkMemboundSolve(b *testing.B) {
	tbl, err := membound.NewTable([]byte("bench"), membound.DefaultLogSize)
	if err != nil {
		b.Fatal(err)
	}
	params := membound.Params{M: 8, Walk: 64}
	b.ReportAllocs()
	b.ResetTimer()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		ch := membound.Challenge{Params: params, Preimage: []byte{byte(i), byte(i >> 8), byte(i >> 16)}}
		_, stats, err := tbl.Solve(ch, 0)
		if err != nil {
			b.Fatal(err)
		}
		accesses += stats.Accesses
	}
	b.ReportMetric(float64(accesses)/float64(b.N), "accesses/solve")
}

func BenchmarkMemboundVerify(b *testing.B) {
	tbl, err := membound.NewTable([]byte("bench"), membound.DefaultLogSize)
	if err != nil {
		b.Fatal(err)
	}
	ch := membound.Challenge{Params: membound.Params{M: 8, Walk: 64}, Preimage: []byte("v")}
	sol, _, err := tbl.Solve(ch, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Verify(ch, sol); err != nil {
			b.Fatal(err)
		}
	}
}
