// Command tcpz-exp runs the paper's experiments and emits their results.
// Each experiment's scenario grid fans out across the work-stealing
// runner; -workers bounds the pool (0 = all cores). Results are identical
// at every worker count.
//
// Besides the default pretty tables, -format csv|json streams every grid
// cell's structured result (long-format CSV rows, or NDJSON including the
// per-bucket series) to stdout or -out as runs land; -fold-seeds folds
// replicated cells (Seeds axes) into mean/stddev rows. -cache-dir enables
// the scenario-hash result cache: re-running any experiment skips every
// already-computed cell and reports the hit/miss counters on stderr.
//
// The defense and attack coordinates of every scenario resolve in the
// strategy plugin registries; -list-defenses and -list-attacks print what
// is registered. -verbose narrates execution on stderr: per-cell shard
// load balance (with -shards), per-cell heap usage, and runner-pool
// backpressure with the grid's peak heap — the memory headroom signal
// for macro-source scale runs.
//
// Usage:
//
//	tcpz-exp -exp fig8 -scale paper
//	tcpz-exp -exp all -scale quick -workers 4
//	tcpz-exp -exp fig12 -scale paper -format csv -out fig12.csv -cache-dir ~/.cache/tcpz
//	tcpz-exp -exp fig13 -scale quick -shards 4 -verbose
//	tcpz-exp -list -list-defenses -list-attacks
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/tcppuzzles/tcppuzzles/sim"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcpz-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tcpz-exp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := fs.String("scale", "quick", "experiment scale: tiny, quick or paper")
	workers := fs.Int("workers", 0, "runner pool width (0 = all cores, 1 = serial)")
	shards := fs.Int("shards", 0, "event-engine shards per scenario (0 or 1 = single shard, -1 = one per core); results are identical at every value")
	speculative := fs.Bool("speculative", false, "run shards optimistically (speculate/rollback) instead of in conservative lock-step windows; results are identical either way (needs -shards)")
	format := fs.String("format", "table", "output format: table, csv or json (NDJSON)")
	out := fs.String("out", "", "write experiment output to this file (default stdout)")
	foldSeeds := fs.Bool("fold-seeds", false, "fold replicated cells (Seeds axes) into mean/stddev rows (csv or json format)")
	cacheDir := fs.String("cache-dir", "", "cache completed cells here; repeated runs skip identical scenarios")
	cacheMax := fs.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this total size (0 = unlimited)")
	verbose := fs.Bool("verbose", false, "narrate execution on stderr: shard load balance, per-cell heap, and runner backpressure")
	list := fs.Bool("list", false, "list experiment ids and exit")
	listDefenses := fs.Bool("list-defenses", false, "list registered defense plugins and exit")
	listAttacks := fs.Bool("list-attacks", false, "list registered attack plugins and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list || *listDefenses || *listAttacks {
		if *list {
			fmt.Println(strings.Join(sim.ExperimentIDs(), "\n"))
		}
		if *listDefenses {
			fmt.Println("defenses:")
			for _, info := range sim.DefenseInfos() {
				fmt.Printf("  %-10s %s%s\n", info.Name, info.Summary, fingerprintNote(info.Fingerprint))
			}
		}
		if *listAttacks {
			fmt.Println("attacks:")
			for _, info := range sim.AttackInfos() {
				fmt.Printf("  %-14s %s%s\n", info.Name, info.Summary, fingerprintNote(info.Fingerprint))
			}
		}
		return nil
	}

	opts := []sim.RunOption{sim.WithWorkers(*workers), sim.WithShards(*shards)}
	if *speculative {
		opts = append(opts, sim.WithSpeculative())
	}
	if *verbose {
		opts = append(opts, sim.WithDebug(os.Stderr))
	}
	var cache *sweep.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = sweep.OpenCache(*cacheDir, sweep.WithMaxBytes(*cacheMax)); err != nil {
			return err
		}
		opts = append(opts, sim.WithCache(cache))
	}

	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv or json)", *format)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var sink sweep.Sink
	switch *format {
	case "csv":
		sink = sweep.NewCSV(w)
	case "json":
		sink = sweep.NewNDJSON(w)
	}
	if *foldSeeds {
		if sink == nil {
			return fmt.Errorf("-fold-seeds requires -format csv or json")
		}
		sink = sweep.NewReplicate(sink)
	}
	if sink != nil {
		opts = append(opts, sim.WithSinks(sink))
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = sim.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		ts, err := sim.RunExperiment(id, sim.Scale(*scale), opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if sink == nil {
			for _, t := range ts {
				fmt.Fprintln(w, t)
			}
			fmt.Fprintf(w, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			// Keep the sink stream clean; progress goes to stderr.
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return err
		}
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d evictions (dir %s)\n",
			cache.Hits(), cache.Misses(), cache.Evictions(), cache.Dir())
	}
	return nil
}

func fingerprintNote(fp string) string {
	if fp == "" {
		return ""
	}
	return fmt.Sprintf("  [cache fingerprint %q]", fp)
}
