// Command tcpz-exp runs the paper's experiments and prints their result
// tables. Each experiment's scenario grid fans out across the
// work-stealing runner; -workers bounds the pool (0 = all cores). Results
// are identical at every worker count.
//
// Usage:
//
//	tcpz-exp -exp fig8 -scale paper
//	tcpz-exp -exp all -scale quick -workers 4
//	tcpz-exp -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tcppuzzles/tcppuzzles/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcpz-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tcpz-exp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := fs.String("scale", "quick", "experiment scale: quick or paper")
	workers := fs.Int("workers", 0, "runner pool width (0 = all cores, 1 = serial)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(sim.ExperimentIDs(), "\n"))
		return nil
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = sim.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := sim.RunExperiment(id, sim.Scale(*scale), sim.WithWorkers(*workers))
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
