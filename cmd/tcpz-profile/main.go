// Command tcpz-profile measures the local machine's SHA-256 hash rate and
// derives the model parameters of §4.3: the client valuation w (hashes
// affordable within the 400 ms handshake budget) and — given a measured or
// assumed server α — the Nash-equilibrium puzzle difficulty.
//
// Usage:
//
//	tcpz-profile                 # profile one core of this machine
//	tcpz-profile -alpha 1.1      # also compute (k*, m*)
//	tcpz-profile -budget 400ms -duration 2s
//	tcpz-profile -cores 8        # aggregate rate across 8 cores
//	tcpz-profile -sources 1000000
//	                             # run a macro-aggregated SYN flood of
//	                             # that many sources instead (scale probe)
//
// The -cpuprofile, -memprofile and -trace flags wrap the whole run in the
// standard pprof/trace collectors, so the hash loop — or anything layered
// on top of it — can be inspected with `go tool pprof` / `go tool trace`
// without editing code.
//
// -sources N switches the workload from hash profiling to a fixed
// macro-source flood scenario (no scenario file needed): N spoofed
// sources SYN-flood the puzzle-defended server for 20 simulated seconds.
// It prints wall-clock time, event throughput and retained heap, and is
// the intended companion of -cpuprofile/-memprofile for profiling the
// 10k/100k/1M macro execution path.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/experiments"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcpz-profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tcpz-profile", flag.ContinueOnError)
	duration := fs.Duration("duration", 2*time.Second, "measurement length")
	budget := fs.Duration("budget", 400*time.Millisecond, "handshake usability budget")
	alpha := fs.Float64("alpha", 1.1, "server service parameter α (from a stress test)")
	cores := fs.Int("cores", 1, "measure this many cores in parallel (a solver uses one)")
	sources := fs.Int("sources", 0, "run a macro-aggregated SYN flood of this many sources instead of hash profiling")
	shards := fs.Int("shards", 0, "event-engine shards for the -sources flood (0 or 1 = single shard, -1 = one per core)")
	speculative := fs.Bool("speculative", false, "run the -sources flood's shards optimistically (speculate/rollback); results are identical either way")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	traceFile := fs.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cores < 1 {
		*cores = 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			// Capture live objects at exit; GC first so the numbers mean
			// retained, not garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tcpz-profile: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *sources > 0 {
		return runMacroFlood(*sources, *shards, *speculative)
	}
	if max := runtime.GOMAXPROCS(0); *cores > max {
		// More busy-loop goroutines than cores would time-share and
		// understate every per-core number.
		fmt.Fprintf(os.Stderr, "tcpz-profile: clamping -cores %d to the %d available\n", *cores, max)
		*cores = max
	}

	// The solver of a single connection is single-threaded, so w derives
	// from an undisturbed solo measurement.
	rate := measureHashRate(*duration)
	wav := game.WavFromHashRate(rate, *budget)
	fmt.Printf("SHA-256 rate        %.0f hashes/s (single core)\n", rate)
	if *cores > 1 {
		// The aggregate rate bounds what a multi-core flooder on this
		// machine could solve; one measurement job per core on the
		// work-stealing runner.
		rates, err := runner.Map(*cores, *cores, func(int) (float64, error) {
			return measureHashRate(*duration), nil
		})
		if err != nil {
			return err
		}
		var total float64
		for _, r := range rates {
			total += r
		}
		fmt.Printf("aggregate rate      %.0f hashes/s across %d cores\n", total, *cores)
	}
	fmt.Printf("w (hashes in %v)    %.0f\n", *budget, wav)

	params, err := game.SelectParams(wav, *alpha, game.SelectionConfig{})
	if err != nil {
		return fmt.Errorf("select difficulty: %w", err)
	}
	lstar, err := game.LStar(wav, *alpha)
	if err != nil {
		return err
	}
	fmt.Printf("α                   %.3f\n", *alpha)
	fmt.Printf("ℓ* = w/(α+1)        %.0f hashes\n", lstar)
	fmt.Printf("Nash difficulty     k=%d m=%d (expected solve %.0f hashes, verify %.1f)\n",
		params.K, params.M, params.ExpectedSolveHashes(), params.ExpectedVerifyHashes())
	fmt.Printf("solve time here     %v\n",
		time.Duration(params.ExpectedSolveHashes()/rate*float64(time.Second)).Round(time.Millisecond))
	return nil
}

// runMacroFlood executes the fixed macro-source scale scenario: sources
// spoofed SYN-flooders against the puzzle-defended server over 20
// simulated seconds — the same shape as the CI bounded-memory wall and
// BenchmarkMacroFlood, so profiles line up with both.
func runMacroFlood(sources, shards int, speculative bool) error {
	sc := experiments.Scenario{
		Label:    fmt.Sprintf("profile-%d", sources),
		Duration: 20 * time.Second, AttackStart: 2 * time.Second, AttackStop: 18 * time.Second,
		NumClients: 2, ClientRate: 4,
		Defense: experiments.DefensePuzzles, Attack: experiments.AttackSYNFlood,
		BotCount: sweep.NoBotnet, MacroSources: sources, PerBotRate: 0.05,
		Backlog: 512, AcceptBacklog: 128, Workers: 24,
		Seed:   11,
		Shards: shards, Speculative: speculative,
	}
	start := time.Now()
	run, err := experiments.RunFlood(sc)
	if err != nil {
		return fmt.Errorf("macro flood: %w", err)
	}
	wall := time.Since(start)
	sent := run.Macro.TotalSent(0, sc.Duration)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("sources             %d\n", sources)
	fmt.Printf("packets sent        %.0f\n", sent)
	fmt.Printf("wall time           %v\n", wall.Round(time.Millisecond))
	fmt.Printf("packets/s (wall)    %.0f\n", sent/wall.Seconds())
	fmt.Printf("retained heap       %d MiB (HeapSys %d MiB)\n", ms.HeapAlloc>>20, ms.HeapSys>>20)
	runtime.KeepAlive(run)
	return nil
}

// measureHashRate runs SHA-256 over a counter for the given duration — the
// profiling loop behind Fig. 3a and Table 1.
func measureHashRate(d time.Duration) float64 {
	var buf [40]byte
	deadline := time.Now().Add(d)
	var n uint64
	start := time.Now()
	for time.Now().Before(deadline) {
		// Batch to keep the clock out of the hot loop.
		for i := 0; i < 4096; i++ {
			binary.BigEndian.PutUint64(buf[:8], n)
			sum := sha256.Sum256(buf[:])
			buf[8] = sum[0] // data-dependence defeats dead-code elimination
			n++
		}
	}
	return float64(n) / time.Since(start).Seconds()
}
