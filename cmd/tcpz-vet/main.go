// Command tcpz-vet runs the repo's determinism-contract analyzer suite
// (internal/lint): nodeterm, maporder, hashfield, snapfields, plus
// validation of the //tcpz:allow suppression annotations.
//
// Two ways to drive it:
//
//	go build -o bin/tcpz-vet ./cmd/tcpz-vet
//	go vet -vettool=$PWD/bin/tcpz-vet ./...   # vet harness (make lint, CI)
//	bin/tcpz-vet ./...                        # standalone
//
// See docs/DETERMINISM.md for the rules the suite enforces and the
// suppression syntax.
package main

import (
	"os"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:]))
}
