// Command tcpz-load replays a scenario-shaped load mix against a puzzle
// proxy over real sockets and reports completed-handshake throughput,
// preamble latency percentiles, and shed/reject counts — the measurement
// companion to cmd/tcpz-proxy.
//
// Usage:
//
//	tcpz-load -self -duration 3s -clients 12 -attackers 6        # in-process proxy
//	tcpz-load -target 127.0.0.1:8080 -clients 20 -rate 5         # live proxy
//	tcpz-load -self -scenario nash.json                          # sweep.Scenario mix
//
// With -min-handshakes N the exit status is nonzero when fewer than N
// handshakes complete — the CI smoke gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/loadgen"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcpz-load:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tcpz-load", flag.ContinueOnError)
	target := fs.String("target", "", "proxy address to load (omit with -self)")
	self := fs.Bool("self", false, "spin up an in-process backend+listener+proxy on loopback")
	scenario := fs.String("scenario", "", "JSON file holding a sweep.Scenario to derive the mix from")
	duration := fs.Duration("duration", 5*time.Second, "run length")
	clients := fs.Int("clients", 10, "honest client workers")
	rate := fs.Float64("rate", 0, "per-client handshake attempts/sec (0 = closed loop)")
	attackers := fs.Int("attackers", 0, "attacker workers")
	attack := fs.String("attack", loadgen.AttackNoSolve, "attacker behaviour: nosolve|stall|garbage|solve")
	attackRate := fs.Float64("attack-rate", 0, "per-attacker connections/sec (0 = closed loop)")
	k := fs.Int("k", 1, "solutions per challenge (self mode)")
	m := fs.Int("m", 4, "difficulty bits per solution (self mode)")
	l := fs.Int("l", 32, "preimage/solution length in bits")
	timeout := fs.Duration("timeout", 5*time.Second, "per-handshake timeout")
	payload := fs.Int("payload", 16, "echo payload bytes per handshake")
	minHandshakes := fs.Uint64("min-handshakes", 0, "exit nonzero when fewer handshakes complete")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		Target:           *target,
		Duration:         *duration,
		Clients:          *clients,
		ClientRate:       *rate,
		Attackers:        *attackers,
		Attack:           *attack,
		AttackRate:       *attackRate,
		Params:           puzzle.Params{K: uint8(*k), M: uint8(*m), L: uint8(*l)},
		HandshakeTimeout: *timeout,
		Payload:          *payload,
	}
	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			return err
		}
		var sc sweep.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return fmt.Errorf("parse scenario %s: %w", *scenario, err)
		}
		derived := loadgen.FromScenario(sc)
		derived.Target = cfg.Target
		derived.Duration = *duration // scenario durations are simulator-scale
		derived.HandshakeTimeout = cfg.HandshakeTimeout
		derived.Payload = cfg.Payload
		cfg = derived
	}

	if *self {
		addr, l, p, shutdown, err := loadgen.SelfHost(cfg)
		if err != nil {
			return err
		}
		cfg.Target = addr
		fmt.Printf("tcpz-load: self-hosted proxy at %s, difficulty %v\n", addr, cfg.Params)
		report, runErr := loadgen.Run(context.Background(), cfg)
		if runErr == nil {
			ls, ps := l.Stats(), p.Stats()
			report.Listener, report.Proxy = &ls, &ps
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "tcpz-load: shutdown:", err)
		}
		if runErr != nil {
			return runErr
		}
		return report.Print(*minHandshakes)
	}

	if cfg.Target == "" {
		return fmt.Errorf("need -target or -self")
	}
	report, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	return report.Print(*minHandshakes)
}
