// Command tcpz-proxy runs a puzzle-verifying front-end proxy (§7): it
// accepts TCP connections, requires each client to solve a puzzle at the
// configured difficulty, and splices verified connections to a backend.
//
// Usage:
//
//	tcpz-proxy -listen :8080 -backend 127.0.0.1:80 -k 2 -m 17
//	tcpz-proxy -listen :8080 -backend 127.0.0.1:80 -pending 64   # opportunistic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/puzzlenet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcpz-proxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tcpz-proxy", flag.ContinueOnError)
	listen := fs.String("listen", ":8080", "address to listen on")
	backend := fs.String("backend", "127.0.0.1:80", "backend address")
	k := fs.Int("k", 2, "solutions per challenge")
	m := fs.Int("m", 17, "difficulty bits per solution")
	l := fs.Int("l", 32, "preimage/solution length in bits")
	maxAge := fs.Duration("maxage", 30*time.Second, "challenge replay window")
	pending := fs.Int("pending", 0, "challenge only above this many pending verifications (0 = always)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := puzzle.Params{K: uint8(*k), M: uint8(*m), L: uint8(*l)}
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(params), puzzle.WithMaxAge(*maxAge))
	if err != nil {
		return err
	}
	opts := []puzzlenet.ListenerOption{puzzlenet.WithHandshakeTimeout(*maxAge)}
	if *pending > 0 {
		opts = append(opts, puzzlenet.WithPolicy(puzzlenet.PolicyPending{Threshold: *pending}))
	}
	ln, err := puzzlenet.Listen(*listen, issuer, opts...)
	if err != nil {
		return err
	}
	proxy := puzzlenet.NewProxy(ln, *backend)
	fmt.Printf("tcpz-proxy: %s -> %s, difficulty %v (≈%.0f hashes/solve)\n",
		*listen, *backend, params, params.ExpectedSolveHashes())
	return proxy.Serve()
}
