package membound

import (
	"errors"
	"testing"
	"testing/quick"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable([]byte("test-seed"), MinLogSize)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestSolveVerifyRoundTrip(t *testing.T) {
	tbl := testTable(t)
	ch := Challenge{Params: Params{M: 6, Walk: 32}, Preimage: []byte("flow-binding")}
	sol, stats, err := tbl.Solve(ch, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if stats.Trials == 0 || stats.Accesses != stats.Trials*32 {
		t.Errorf("stats = %+v", stats)
	}
	if err := tbl.Verify(ch, sol); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	tbl := testTable(t)
	ch := Challenge{Params: Params{M: 8, Walk: 16}, Preimage: []byte("x")}
	sol, _, err := tbl.Solve(ch, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := tbl.Verify(ch, Solution{Nonce: sol.Nonce + 1}); err == nil {
		// The next nonce could validly satisfy the check with prob 2^-8;
		// try a few more to make a false pass astronomically unlikely.
		misses := 0
		for d := uint64(2); d < 10; d++ {
			if tbl.Verify(ch, Solution{Nonce: sol.Nonce + d}) != nil {
				misses++
			}
		}
		if misses == 0 {
			t.Error("every neighbouring nonce verified — check is broken")
		}
	}
}

func TestVerifyRejectsWrongPreimage(t *testing.T) {
	tbl := testTable(t)
	ch := Challenge{Params: Params{M: 8, Walk: 16}, Preimage: []byte("alpha")}
	sol, _, err := tbl.Solve(ch, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	other := ch
	other.Preimage = []byte("beta!")
	if err := tbl.Verify(other, sol); err == nil {
		t.Error("solution verified against a different preimage")
	}
}

func TestTablesAreDeterministic(t *testing.T) {
	a, err := NewTable([]byte("s"), MinLogSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTable([]byte("s"), MinLogSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	c, err := NewTable([]byte("other"), MinLogSize)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.entries {
		if a.entries[i] == c.entries[i] {
			same++
		}
	}
	if same > len(a.entries)/100 {
		t.Errorf("different seeds share %d/%d entries", same, len(a.entries))
	}
}

func TestSolveBudget(t *testing.T) {
	tbl := testTable(t)
	ch := Challenge{Params: Params{M: 24, Walk: 8}, Preimage: []byte("hard")}
	_, stats, err := tbl.Solve(ch, 10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Solve error = %v, want ErrBudgetExhausted", err)
	}
	if stats.Trials != 10 {
		t.Errorf("Trials = %d, want 10", stats.Trials)
	}
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{{M: 0, Walk: 8}, {M: 31, Walk: 8}, {M: 8, Walk: 0}} {
		if err := bad.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("Validate(%+v) = %v", bad, err)
		}
	}
	if err := (Params{M: 8, Walk: 64}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestExpectedAccesses(t *testing.T) {
	p := Params{M: 10, Walk: 32}
	if got := p.ExpectedAccesses(); got != 1024*32 {
		t.Errorf("ExpectedAccesses = %v", got)
	}
	if got := p.VerifyAccesses(); got != 32 {
		t.Errorf("VerifyAccesses = %v", got)
	}
}

func TestNewTableBounds(t *testing.T) {
	if _, err := NewTable([]byte("s"), MinLogSize-1); err == nil {
		t.Error("undersized table accepted")
	}
	if _, err := NewTable([]byte("s"), MaxLogSize+1); err == nil {
		t.Error("oversized table accepted")
	}
}

// Property: every solution the solver returns verifies, for random
// preimages.
func TestSolveVerifyProperty(t *testing.T) {
	tbl := testTable(t)
	f := func(pre []byte) bool {
		ch := Challenge{Params: Params{M: 4, Walk: 8}, Preimage: pre}
		sol, _, err := tbl.Solve(ch, 0)
		if err != nil {
			return false
		}
		return tbl.Verify(ch, sol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: mean trials ≈ 2^M (geometric with p = 2^-M).
func TestSolveCostDistribution(t *testing.T) {
	tbl := testTable(t)
	const m = 5 // expect 32 trials
	var total uint64
	const rounds = 400
	for i := 0; i < rounds; i++ {
		ch := Challenge{Params: Params{M: m, Walk: 4}, Preimage: []byte{byte(i), byte(i >> 8)}}
		_, stats, err := tbl.Solve(ch, 0)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		total += stats.Trials
	}
	mean := float64(total) / rounds
	if mean < 24 || mean > 42 {
		t.Errorf("mean trials = %v, want ≈ 32", mean)
	}
}
