package membound_test

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/membound"
)

// A memory-bound puzzle round trip: both sides derive the same table from a
// public seed; the solver searches nonces, the verifier replays one walk.
func Example() {
	table, err := membound.NewTable([]byte("public-seed"), membound.MinLogSize)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ch := membound.Challenge{
		Params:   membound.Params{M: 6, Walk: 32},
		Preimage: []byte("bound-to-this-connection"),
	}
	sol, _, err := table.Solve(ch, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verified:", table.Verify(ch, sol) == nil)
	fmt.Printf("expected cost: %.0f memory accesses\n", ch.Params.ExpectedAccesses())
	// Output:
	// verified: true
	// expected cost: 2048 memory accesses
}
