// Package membound implements a memory-bound client-puzzle scheme in the
// style of Abadi, Burrows, Manasse and Wobber ("Moderately Hard,
// Memory-bound Functions", ACM TOIT 2005) — the future-work direction the
// paper's §7 proposes for levelling the playing field between power-endowed
// and power-limited clients: memory latency varies far less across device
// classes than compute throughput, so memory-bound puzzles cost a desktop
// and a Raspberry Pi roughly the same wall-clock time.
//
// The scheme: issuer and solver share a large pseudo-random table T (built
// deterministically from a public seed — too large for the working set of
// a fast cache, so lookups are DRAM-latency-bound). A challenge fixes a
// start preimage; the solver tries candidate nonces s = 0, 1, 2, …, and
// for each performs a chained walk of Walk dependent table lookups
//
//	x₀ = H(preimage ‖ s)
//	xᵢ₊₁ = T[xᵢ mod |T|] ⊕ rotl(xᵢ, 11)
//
// accepting when the first M bits of the final value are zero. Each trial
// costs Walk serialized memory accesses (the data dependence defeats
// prefetching); the expected solve cost is 2^M · Walk accesses. The issuer
// verifies in a single walk.
package membound

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

var (
	// ErrInvalidParams reports malformed difficulty parameters.
	ErrInvalidParams = errors.New("membound: invalid parameters")
	// ErrBadSolution reports a nonce that fails the difficulty check.
	ErrBadSolution = errors.New("membound: solution invalid")
	// ErrBudgetExhausted reports that the solver gave up.
	ErrBudgetExhausted = errors.New("membound: walk budget exhausted")
)

// Params is a memory-bound difficulty setting.
type Params struct {
	// M is the number of leading zero bits required of the walk result.
	M uint8
	// Walk is the number of chained table lookups per trial.
	Walk uint16
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M == 0 || p.M > 30 {
		return fmt.Errorf("membound: m=%d outside [1,30]: %w", p.M, ErrInvalidParams)
	}
	if p.Walk == 0 {
		return fmt.Errorf("membound: zero walk length: %w", ErrInvalidParams)
	}
	return nil
}

// ExpectedAccesses returns the expected number of memory accesses to solve:
// 2^M trials of Walk lookups each.
func (p Params) ExpectedAccesses() float64 {
	return math.Exp2(float64(p.M)) * float64(p.Walk)
}

// VerifyAccesses returns the verifier's cost: one walk.
func (p Params) VerifyAccesses() float64 { return float64(p.Walk) }

// Table is the shared lookup table. Both sides derive it from the same
// public seed; it is immutable after construction and safe for concurrent
// use.
type Table struct {
	entries []uint32
	mask    uint32
}

// MinLogSize and MaxLogSize bound table sizes (2^22 entries = 16 MiB, well
// past L2/L3 on the paper's devices).
const (
	MinLogSize = 10
	MaxLogSize = 26
	// DefaultLogSize gives a 4 MiB working set.
	DefaultLogSize = 20
)

// NewTable builds the table of 2^logSize uint32 entries from a public seed.
func NewTable(seed []byte, logSize int) (*Table, error) {
	if logSize < MinLogSize || logSize > MaxLogSize {
		return nil, fmt.Errorf("membound: logSize %d outside [%d,%d]: %w",
			logSize, MinLogSize, MaxLogSize, ErrInvalidParams)
	}
	n := 1 << logSize
	t := &Table{entries: make([]uint32, n), mask: uint32(n - 1)}
	// Expand the seed with SHA-256 in counter mode: deterministic,
	// reproducible on both sides.
	var block [8]byte
	var sum [sha256.Size]byte
	buf := make([]byte, 0, len(seed)+8)
	for i := 0; i < n; i += 8 {
		binary.BigEndian.PutUint64(block[:], uint64(i))
		buf = buf[:0]
		buf = append(buf, seed...)
		buf = append(buf, block[:]...)
		sum = sha256.Sum256(buf)
		for j := 0; j < 8 && i+j < n; j++ {
			t.entries[i+j] = binary.BigEndian.Uint32(sum[j*4:])
		}
	}
	return t, nil
}

// Len returns the number of table entries.
func (t *Table) Len() int { return len(t.entries) }

// Challenge is a memory-bound challenge.
type Challenge struct {
	Params   Params
	Preimage []byte
}

// Solution is a solved challenge: the successful nonce.
type Solution struct {
	Nonce uint64
}

// Stats reports solver accounting.
type Stats struct {
	// Trials is the number of nonces tested.
	Trials uint64
	// Accesses is the total number of table lookups performed.
	Accesses uint64
}

// start derives the walk's initial value from the preimage and nonce.
func start(preimage []byte, nonce uint64) uint32 {
	buf := make([]byte, 0, len(preimage)+8)
	buf = append(buf, preimage...)
	buf = binary.BigEndian.AppendUint64(buf, nonce)
	sum := sha256.Sum256(buf)
	return binary.BigEndian.Uint32(sum[:4])
}

// walk runs the chained lookups.
func (t *Table) walk(x uint32, steps uint16) uint32 {
	for i := uint16(0); i < steps; i++ {
		x = t.entries[x&t.mask] ^ bits.RotateLeft32(x, 11)
	}
	return x
}

// meets reports whether the walk result satisfies the difficulty.
func meets(x uint32, m uint8) bool {
	return bits.LeadingZeros32(x) >= int(m)
}

// Solve brute-forces a challenge. maxTrials bounds the search (zero means
// unlimited).
func (t *Table) Solve(ch Challenge, maxTrials uint64) (Solution, Stats, error) {
	var stats Stats
	if err := ch.Params.Validate(); err != nil {
		return Solution{}, stats, err
	}
	for nonce := uint64(0); maxTrials == 0 || nonce < maxTrials; nonce++ {
		stats.Trials++
		stats.Accesses += uint64(ch.Params.Walk)
		if meets(t.walk(start(ch.Preimage, nonce), ch.Params.Walk), ch.Params.M) {
			return Solution{Nonce: nonce}, stats, nil
		}
	}
	return Solution{}, stats, fmt.Errorf("membound: %d trials: %w", stats.Trials, ErrBudgetExhausted)
}

// Verify checks a solution with a single walk.
func (t *Table) Verify(ch Challenge, sol Solution) error {
	if err := ch.Params.Validate(); err != nil {
		return err
	}
	if !meets(t.walk(start(ch.Preimage, sol.Nonce), ch.Params.Walk), ch.Params.M) {
		return ErrBadSolution
	}
	return nil
}
