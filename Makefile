# Development entry points. CI runs the same commands (see
# .github/workflows/ci.yml); nothing here is required to build.

GO ?= go
# Repeat each benchmark COUNT times so `benchstat old.txt new.txt` has
# samples to test significance on (benchstat wants >= 10 for tight CIs).
COUNT ?= 10

.PHONY: build test race lint bench bench-smoke bench-engine bench-scale fuzz-smoke load-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The determinism-contract analyzers (internal/lint: nodeterm, maporder,
# hashfield, snapfields, allowcheck) driven through the standard vet
# harness. Exits nonzero on any diagnostic; see docs/DETERMINISM.md for
# the rules and the //tcpz:allow suppression syntax.
lint:
	$(GO) build -o bin/tcpz-vet ./cmd/tcpz-vet
	$(GO) vet -vettool=$(CURDIR)/bin/tcpz-vet ./...

# Full microbench sweep, benchstat-ready:
#   make bench > new.txt            # on your branch
#   git stash && make bench > old.txt && git stash pop
#   benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(COUNT) ./...

# The event-engine hot path only (the BENCH_engine.json numbers).
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineScheduling|BenchmarkPacketPath' -benchmem -count $(COUNT) ./internal/netsim/

# One iteration of every benchmark — the CI rot guard.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The macro-source scale wall and curve: the 100k-source bounded-memory
# test (skipped under -short, so `make race`/CI's -short test job never
# runs it implicitly) plus the sources-vs-heap/runtime sweep behind
# BENCH_scale.json.
bench-scale:
	$(GO) test -run TestMacroFloodBoundedMemory -v ./internal/experiments/
	$(GO) test -run '^$$' -bench BenchmarkMacroFlood -benchtime=3x .

fuzz-smoke:
	$(GO) test -fuzz=FuzzChallengeRoundTrip -fuzztime=10s ./tcpopt
	$(GO) test -fuzz=FuzzCookieRoundTrip -fuzztime=10s ./syncookie
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=10s ./puzzlenet
	$(GO) test -fuzz=FuzzSpeculativeEquivalence -fuzztime=10s ./internal/netsim

# Real-network robustness smoke (docs/ROBUSTNESS.md): the fault-injected
# chaos suite under the race detector, then a self-hosted tcpz-load run
# that must sustain >= 500 completed handshakes on loopback.
load-smoke:
	$(GO) test -race -run 'TestChaos' -v ./puzzlenet
	$(GO) build -o bin/tcpz-load ./cmd/tcpz-load
	bin/tcpz-load -self -duration 3s -clients 12 -attackers 6 -min-handshakes 500
