package syncache

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

func peer(i int) tcpkit.PeerKey {
	return tcpkit.PeerKey{IP: [4]byte{10, 1, byte(i >> 8), byte(i)}, Port: 2000}
}

func TestAddTake(t *testing.T) {
	c := New(4, RejectNew)
	if !c.Add(&Entry{Peer: peer(1), ClientISN: 7}) {
		t.Fatal("Add failed")
	}
	e, ok := c.Take(peer(1))
	if !ok || e.ClientISN != 7 {
		t.Fatalf("Take = %+v, %v", e, ok)
	}
	if _, ok := c.Take(peer(1)); ok {
		t.Error("Take twice succeeded")
	}
}

func TestRejectNewWhenFull(t *testing.T) {
	c := New(2, RejectNew)
	c.Add(&Entry{Peer: peer(1)})
	c.Add(&Entry{Peer: peer(2)})
	if c.Add(&Entry{Peer: peer(3)}) {
		t.Error("Add succeeded beyond capacity")
	}
	if c.RejectedFull != 1 {
		t.Errorf("RejectedFull = %d, want 1", c.RejectedFull)
	}
	if !c.Full() {
		t.Error("not full at capacity")
	}
}

func TestDropOldestWhenFull(t *testing.T) {
	c := New(2, DropOldest)
	c.Add(&Entry{Peer: peer(1)})
	c.Add(&Entry{Peer: peer(2)})
	if !c.Add(&Entry{Peer: peer(3)}) {
		t.Fatal("DropOldest Add failed")
	}
	if c.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", c.Evicted)
	}
	if _, ok := c.Take(peer(1)); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Take(peer(3)); !ok {
		t.Error("new entry missing after eviction")
	}
}

func TestDuplicatePeer(t *testing.T) {
	c := New(2, RejectNew)
	c.Add(&Entry{Peer: peer(1), ClientISN: 1})
	if !c.Add(&Entry{Peer: peer(1), ClientISN: 2}) {
		t.Error("duplicate Add reported failure")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	e, _ := c.Take(peer(1))
	if e.ClientISN != 1 {
		t.Errorf("duplicate overwrote original: ISN = %d", e.ClientISN)
	}
}

func TestExpire(t *testing.T) {
	c := New(10, RejectNew)
	for i := 0; i < 5; i++ {
		c.Add(&Entry{Peer: peer(i), ExpiresAt: time.Duration(i+1) * time.Second})
	}
	if n := c.Expire(3 * time.Second); n != 3 {
		t.Errorf("Expire = %d, want 3", n)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestEvictionSkipsTakenEntries(t *testing.T) {
	c := New(2, DropOldest)
	c.Add(&Entry{Peer: peer(1)})
	c.Add(&Entry{Peer: peer(2)})
	c.Take(peer(1)) // order slice still references peer(1)
	c.Add(&Entry{Peer: peer(3)})
	// Cache now holds 2 and 3; adding a fourth must evict 2, not the
	// stale 1.
	c.Add(&Entry{Peer: peer(4)})
	if _, ok := c.Take(peer(3)); !ok {
		t.Error("entry 3 missing")
	}
	if _, ok := c.Take(peer(4)); !ok {
		t.Error("entry 4 missing")
	}
}
