// Package syncache implements the SYN cache baseline (Lemon 2002, paper
// §2.1): a bounded table of partial half-open connection state that delays
// full TCB allocation until the handshake completes. As the paper observes,
// the cache contains small floods but degrades to backlog-full behaviour
// once an attack overruns its capacity.
package syncache

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// Entry is the partial state kept per half-open connection — substantially
// smaller than a full TCB.
type Entry struct {
	Peer      tcpkit.PeerKey
	ClientISN uint32
	ServerISN uint32
	MSS       uint16
	CreatedAt time.Duration
	ExpiresAt time.Duration
}

// EvictPolicy selects behaviour when the cache is full.
type EvictPolicy int

// Eviction policies.
const (
	// RejectNew drops the incoming SYN when full (the backlog-like default
	// the paper describes).
	RejectNew EvictPolicy = iota + 1
	// DropOldest evicts the oldest entry to admit the new SYN.
	DropOldest
)

// Cache is a bounded SYN cache. It is not safe for concurrent use; the
// simulator is single-threaded.
type Cache struct {
	capacity int
	policy   EvictPolicy
	entries  map[tcpkit.PeerKey]*Entry
	order    []tcpkit.PeerKey // insertion order for DropOldest
	// Evicted counts entries discarded by DropOldest.
	Evicted uint64
	// RejectedFull counts SYNs refused by RejectNew.
	RejectedFull uint64
}

// New returns a cache with the given capacity and policy.
func New(capacity int, policy EvictPolicy) *Cache {
	if policy == 0 {
		policy = RejectNew
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[tcpkit.PeerKey]*Entry, capacity),
	}
}

// Len returns the number of cached half-open connections.
func (c *Cache) Len() int { return len(c.entries) }

// Cap returns the capacity.
func (c *Cache) Cap() int { return c.capacity }

// Full reports whether the cache is at capacity.
func (c *Cache) Full() bool { return len(c.entries) >= c.capacity }

// Add inserts partial state for a SYN. Duplicate peers refresh nothing and
// report success.
func (c *Cache) Add(e *Entry) bool {
	if _, ok := c.entries[e.Peer]; ok {
		return true
	}
	if c.Full() {
		switch c.policy {
		case DropOldest:
			c.evictOldest()
		default:
			c.RejectedFull++
			return false
		}
	}
	c.entries[e.Peer] = e
	c.order = append(c.order, e.Peer)
	return true
}

func (c *Cache) evictOldest() {
	for len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.entries[victim]; ok {
			delete(c.entries, victim)
			c.Evicted++
			return
		}
	}
}

// Take removes and returns the entry for a peer (handshake completion).
func (c *Cache) Take(peer tcpkit.PeerKey) (*Entry, bool) {
	e, ok := c.entries[peer]
	if !ok {
		return nil, false
	}
	delete(c.entries, peer)
	return e, true
}

// Expire removes entries whose ExpiresAt is at or before now.
func (c *Cache) Expire(now time.Duration) int {
	n := 0
	for k, e := range c.entries {
		if e.ExpiresAt <= now {
			delete(c.entries, k)
			n++
		}
	}
	return n
}
