package pzengine

import (
	"errors"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

func testIssuer(t *testing.T, p puzzle.Params) *puzzle.Issuer {
	t.Helper()
	is, err := puzzle.NewIssuer(
		puzzle.WithParams(p),
		puzzle.WithClock(func() time.Time { return time.Unix(1_700_000_000, 0) }),
	)
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	return is
}

func flow() puzzle.FlowID {
	return puzzle.FlowID{SrcIP: [4]byte{1, 2, 3, 4}, SrcPort: 555, DstPort: 80, ISN: 42}
}

func TestSimAcceptsSimSolutions(t *testing.T) {
	p := puzzle.Params{K: 2, M: 17, L: 32} // too hard to really solve in a test
	eng := Sim{Is: testIssuer(t, p)}
	ch := eng.Issue(flow())
	sol := SimSolution(ch)
	info, err := eng.Verify(flow(), sol)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if info.Hashes != 1+int(p.K) {
		t.Errorf("Hashes = %d, want %d", info.Hashes, 1+p.K)
	}
}

func TestSimAcceptsRealSolutions(t *testing.T) {
	p := puzzle.Params{K: 2, M: 4, L: 32}
	eng := Sim{Is: testIssuer(t, p)}
	ch := eng.Issue(flow())
	sol, _, err := puzzle.Solve(ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := eng.Verify(flow(), sol); err != nil {
		t.Errorf("Verify(real solution): %v", err)
	}
}

func TestSimRejectsGarbage(t *testing.T) {
	p := puzzle.Params{K: 2, M: 17, L: 32}
	eng := Sim{Is: testIssuer(t, p)}
	garbage := puzzle.Solution{
		Params:    p,
		Timestamp: 1_700_000_000,
		Solutions: [][]byte{make([]byte, 4), make([]byte, 4)},
	}
	if _, err := eng.Verify(flow(), garbage); err == nil {
		t.Error("Verify accepted garbage")
	}
}

func TestSimRejectsWrongFlow(t *testing.T) {
	p := puzzle.Params{K: 1, M: 17, L: 32}
	eng := Sim{Is: testIssuer(t, p)}
	sol := SimSolution(eng.Issue(flow()))
	other := flow()
	other.ISN++
	if _, err := eng.Verify(other, sol); err == nil {
		t.Error("Verify accepted solution for a different flow")
	}
}

func TestSimEnforcesExpiryAndParams(t *testing.T) {
	p := puzzle.Params{K: 1, M: 17, L: 32}
	is := testIssuer(t, p)
	eng := Sim{Is: is}
	sol := SimSolution(eng.Issue(flow()))

	// Parameter mismatch after retuning.
	if err := eng.SetParams(puzzle.Params{K: 1, M: 18, L: 32}); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if _, err := eng.Verify(flow(), sol); !errors.Is(err, puzzle.ErrParamMismatch) {
		t.Errorf("Verify error = %v, want ErrParamMismatch", err)
	}
	if err := eng.SetParams(p); err != nil {
		t.Fatalf("SetParams back: %v", err)
	}

	// Expired timestamp.
	old := sol
	old.Timestamp -= 3600
	if _, err := eng.Verify(flow(), old); !errors.Is(err, puzzle.ErrExpired) {
		t.Errorf("Verify error = %v, want ErrExpired", err)
	}
}

func TestSimRejectsWrongCountAndLength(t *testing.T) {
	p := puzzle.Params{K: 2, M: 17, L: 32}
	eng := Sim{Is: testIssuer(t, p)}
	sol := SimSolution(eng.Issue(flow()))

	short := sol
	short.Solutions = sol.Solutions[:1]
	if _, err := eng.Verify(flow(), short); !errors.Is(err, puzzle.ErrWrongCount) {
		t.Errorf("Verify(short) = %v, want ErrWrongCount", err)
	}
	trunc := sol
	trunc.Solutions = [][]byte{sol.Solutions[0][:2], sol.Solutions[1]}
	if _, err := eng.Verify(flow(), trunc); !errors.Is(err, puzzle.ErrWrongLength) {
		t.Errorf("Verify(trunc) = %v, want ErrWrongLength", err)
	}
}

func TestRealEngineRoundTrip(t *testing.T) {
	p := puzzle.Params{K: 1, M: 16, L: 32}
	eng := Real{Is: testIssuer(t, p)}
	ch := eng.Issue(flow())
	sol, _, err := puzzle.Solve(ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := eng.Verify(flow(), sol); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Real engine must NOT accept sim solutions.
	if _, err := eng.Verify(flow(), SimSolution(ch)); err == nil {
		t.Error("Real engine accepted a sim solution")
	}
}

func TestSimSolutionBitsDeterministic(t *testing.T) {
	p := puzzle.Params{K: 1, M: 8, L: 64}
	pre := make([]byte, 8)
	a := SimSolutionBits(pre, p, 1)
	b := SimSolutionBits(pre, p, 1)
	c := SimSolutionBits(pre, p, 2)
	if string(a) != string(b) {
		t.Error("SimSolutionBits not deterministic")
	}
	if string(a) == string(c) {
		t.Error("SimSolutionBits ignores index")
	}
	if len(a) != p.SolutionBytes() {
		t.Errorf("len = %d, want %d", len(a), p.SolutionBytes())
	}
}
