// Package pzengine abstracts puzzle issue/verify behind an interface so the
// simulator can swap real SHA-256 brute forcing for a cost-equivalent
// simulated search. The Sim engine charges identical hash *counts* to the
// CPU models while deriving solution bits deterministically from the
// preimage, so experiments with 17-bit difficulties don't burn host cycles;
// the Real engine performs the genuine cryptographic protocol and is used by
// integration tests (at small difficulties) and by package puzzlenet.
package pzengine

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Engine issues and verifies puzzle challenges.
type Engine interface {
	// Params returns the current difficulty.
	Params() puzzle.Params
	// SetParams retunes the difficulty at runtime.
	SetParams(puzzle.Params) error
	// Issue creates a challenge bound to the flow.
	Issue(flow puzzle.FlowID) puzzle.Challenge
	// Verify checks a solution, returning hash accounting.
	Verify(flow puzzle.FlowID, sol puzzle.Solution) (puzzle.VerifyInfo, error)
}

// Real performs the genuine Juels–Brainard protocol.
type Real struct {
	Is *puzzle.Issuer
}

var _ Engine = Real{}

// Params implements Engine.
func (r Real) Params() puzzle.Params { return r.Is.Params() }

// SetParams implements Engine.
func (r Real) SetParams(p puzzle.Params) error { return r.Is.SetParams(p) }

// Issue implements Engine.
func (r Real) Issue(flow puzzle.FlowID) puzzle.Challenge { return r.Is.Issue(flow) }

// Verify implements Engine.
func (r Real) Verify(flow puzzle.FlowID, sol puzzle.Solution) (puzzle.VerifyInfo, error) {
	return r.Is.VerifyDetailed(flow, sol)
}

// Sim verifies canonical simulated solutions (see SimSolution) in addition
// to genuinely valid ones. Statelessness, flow binding, parameter matching
// and timestamp expiry behave exactly as in the real protocol — only the
// brute-force search is elided.
type Sim struct {
	Is *puzzle.Issuer
}

var _ Engine = Sim{}

// Params implements Engine.
func (s Sim) Params() puzzle.Params { return s.Is.Params() }

// SetParams implements Engine.
func (s Sim) SetParams(p puzzle.Params) error { return s.Is.SetParams(p) }

// Issue implements Engine.
func (s Sim) Issue(flow puzzle.FlowID) puzzle.Challenge { return s.Is.Issue(flow) }

// Verify implements Engine.
func (s Sim) Verify(flow puzzle.FlowID, sol puzzle.Solution) (puzzle.VerifyInfo, error) {
	params := s.Is.Params()
	var info puzzle.VerifyInfo
	if sol.Params != params {
		return info, fmt.Errorf("pzengine: solution for %v, server at %v: %w",
			sol.Params, params, puzzle.ErrParamMismatch)
	}
	if err := s.Is.ValidateTimestamp(sol.Timestamp); err != nil {
		return info, err
	}
	pre := s.Is.PreimageFor(flow, sol.Timestamp)
	info.Hashes = 1
	if len(sol.Solutions) != int(params.K) {
		return info, fmt.Errorf("pzengine: got %d solutions, want %d: %w",
			len(sol.Solutions), params.K, puzzle.ErrWrongCount)
	}
	sb := params.SolutionBytes()
	allSim := true
	for i, raw := range sol.Solutions {
		if len(raw) != sb {
			return info, fmt.Errorf("pzengine: solution %d is %d bytes, want %d: %w",
				i+1, len(raw), sb, puzzle.ErrWrongLength)
		}
		info.Hashes++
		info.Checked++
		if !bytes.Equal(raw, SimSolutionBits(pre, params, uint8(i+1))) {
			allSim = false
			break
		}
	}
	if allSim {
		return info, nil
	}
	// Fall back to the genuine check so real solutions also verify.
	checked, err := puzzle.VerifySolutions(pre, params, sol.Solutions)
	info.Checked = checked
	info.Hashes = 1 + checked
	if err != nil {
		return info, fmt.Errorf("pzengine: %w", err)
	}
	return info, nil
}

// simMagic domain-separates simulated solution bits from anything the real
// protocol hashes.
var simMagic = []byte("tcppuzzles-sim-solution")

// SimSolutionBits derives the canonical simulated solution for index i from
// the preimage. It is a keyed function of the preimage, so only a party that
// received (or re-derived) the challenge can produce it — preserving the
// flow binding and replay semantics of the real protocol.
func SimSolutionBits(preimage []byte, params puzzle.Params, index uint8) []byte {
	buf := make([]byte, 0, len(preimage)+1+len(simMagic))
	buf = append(buf, preimage...)
	buf = append(buf, index)
	buf = append(buf, simMagic...)
	sum := sha256.Sum256(buf)
	out := make([]byte, params.SolutionBytes())
	copy(out, sum[:])
	return out
}

// SimSolution produces the canonical simulated solution for a challenge.
// The caller is responsible for charging puzzle.SampleSolveHashes to its CPU
// model.
func SimSolution(ch puzzle.Challenge) puzzle.Solution {
	sol := puzzle.Solution{
		Params:    ch.Params,
		Timestamp: ch.Timestamp,
		Solutions: make([][]byte, ch.Params.K),
	}
	for i := range sol.Solutions {
		sol.Solutions[i] = SimSolutionBits(ch.Preimage, ch.Params, uint8(i+1))
	}
	return sol
}
