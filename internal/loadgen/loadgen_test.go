package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func TestFromScenario(t *testing.T) {
	sc := sweep.Scenario{
		Duration:   2 * time.Second,
		NumClients: 7,
		ClientRate: 3,
		BotCount:   4,
		PerBotRate: 9,
		BotsSolve:  true,
		Params:     puzzle.Params{K: 1, M: 5, L: 32},
	}
	cfg := FromScenario(sc)
	if cfg.Clients != 7 || cfg.ClientRate != 3 || cfg.Attackers != 4 || cfg.AttackRate != 9 {
		t.Errorf("load mix mismatch: %+v", cfg)
	}
	if cfg.Attack != AttackSolve {
		t.Errorf("Attack = %q, want %q for BotsSolve", cfg.Attack, AttackSolve)
	}
	if cfg.Params != sc.Params {
		t.Errorf("Params = %v, want %v", cfg.Params, sc.Params)
	}

	if cfg := FromScenario(sweep.Scenario{BotCount: sweep.NoBotnet}); cfg.Attackers != 0 {
		t.Errorf("NoBotnet mapped to %d attackers", cfg.Attackers)
	}
	if cfg := FromScenario(sweep.Scenario{}); cfg.Attack != AttackNoSolve {
		t.Errorf("default attack = %q, want %q", cfg.Attack, AttackNoSolve)
	}
}

func TestSelfHostedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	cfg := Config{
		Duration:         time.Second,
		Clients:          8,
		Attackers:        4,
		Attack:           AttackNoSolve,
		AttackRate:       20,
		Params:           puzzle.Params{K: 1, M: 4, L: 32},
		HandshakeTimeout: 2 * time.Second,
	}
	addr, l, p, shutdown, err := SelfHost(cfg)
	if err != nil {
		t.Fatalf("SelfHost: %v", err)
	}
	cfg.Target = addr
	report, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ls, ps := l.Stats(), p.Stats()
	report.Listener, report.Proxy = &ls, &ps

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}

	if report.Handshakes == 0 {
		t.Fatal("no handshakes completed")
	}
	if report.Throughput <= 0 {
		t.Errorf("Throughput = %v", report.Throughput)
	}
	if int(report.Handshakes) != report.Latency.Count {
		t.Errorf("latency samples %d != handshakes %d", report.Latency.Count, report.Handshakes)
	}
	for name, v := range map[string]float64{
		"p50": report.Latency.P50Ms, "p99": report.Latency.P99Ms,
		"max": report.Latency.MaxMs, "mean": report.Latency.MeanMs,
	} {
		if math.IsNaN(v) || v < 0 {
			t.Errorf("latency %s = %v", name, v)
		}
	}
	if report.Latency.P50Ms > report.Latency.MaxMs {
		t.Errorf("p50 %v > max %v", report.Latency.P50Ms, report.Latency.MaxMs)
	}
	if report.Dialer.Accepted != report.Handshakes+report.Errors && report.Dialer.Accepted < report.Handshakes {
		t.Errorf("dialer accepted %d < handshakes %d", report.Dialer.Accepted, report.Handshakes)
	}
	if report.Listener.Verified == 0 {
		t.Error("listener verified nothing")
	}
	if report.Proxy.Spliced == 0 {
		t.Error("proxy spliced nothing")
	}
	if report.AttackConns == 0 {
		t.Error("attackers opened no connections")
	}
	t.Logf("report:\n%s", report)
}

func TestPacerClosedLoopStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	step := pacer(0)
	if !step(ctx) {
		t.Fatal("closed-loop pacer stopped immediately")
	}
	cancel()
	if step(ctx) {
		t.Fatal("closed-loop pacer ran past cancel")
	}
}

func TestPacerRate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step := pacer(100) // 10ms interval
	start := time.Now()
	for i := 0; i < 5; i++ {
		if !step(ctx) {
			t.Fatal("pacer stopped early")
		}
	}
	// First step fires immediately; four more at 10ms spacing.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("5 steps at 100/s took %v, want >= 40ms of pacing", elapsed)
	}
}
