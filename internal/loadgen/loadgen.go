// Package loadgen replays a sweep.Scenario-shaped load mix against a live
// puzzle proxy over real sockets: honest clients that solve challenges and
// exchange an echo payload, and attackers that open preambles and
// misbehave. It reports completed-handshake throughput, preamble latency
// percentiles (streaming P² sketches, O(1) memory), and the shed/reject
// counters from every tier — the measurement half of cmd/tcpz-load.
//
// Unlike the simulator, loadgen measures the real implementation: kernel
// sockets, real clock, real goroutine scheduling. It is therefore not
// deterministic and lives outside the determinism contract (see
// docs/ROBUSTNESS.md).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/puzzlenet"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Attack behaviours for the attacker workers.
const (
	// AttackNoSolve opens the preamble, reads the challenge, and abandons
	// the connection — the connection-flood shape (§6 connflood).
	AttackNoSolve = "nosolve"
	// AttackStall opens the preamble and holds the socket silently until
	// the server's handshake deadline reaps it.
	AttackStall = "stall"
	// AttackGarbage answers the challenge with protocol garbage.
	AttackGarbage = "garbage"
	// AttackSolve solves honestly but opens connections as fast as allowed
	// — the solution-flood shape (§6 solutionflood).
	AttackSolve = "solve"
)

// Config describes one load run.
type Config struct {
	// Target is the proxy address to load. Leave empty with SelfHost to
	// run against an in-process proxy on loopback.
	Target string
	// Duration bounds the run (default 5 s).
	Duration time.Duration

	// Clients honest workers each complete handshakes at ClientRate
	// attempts/second (0 = closed loop, back-to-back).
	Clients    int
	ClientRate float64
	// Payload is the number of echo bytes exchanged per handshake to
	// verify the splice end-to-end (default 16).
	Payload int

	// Attackers workers each run the Attack behaviour at AttackRate
	// connections/second (0 = closed loop).
	Attackers  int
	Attack     string
	AttackRate float64

	// Params is the puzzle difficulty clients solve at. Used by the
	// self-hosted proxy and informative for reports.
	Params puzzle.Params
	// HandshakeTimeout bounds each client preamble (default 5 s).
	HandshakeTimeout time.Duration
}

// FromScenario maps the simulator's canonical scenario shape onto a real
// load run: clients→clients, botnet→attackers, puzzle params carried
// through. Only the load-mix fields translate — defenses other than
// puzzles, attack start/stop phasing, and byte-level request sizes have no
// real-socket equivalent here.
func FromScenario(sc sweep.Scenario) Config {
	sc = sc.Defaults()
	attack := AttackNoSolve
	if sc.BotsSolve {
		attack = AttackSolve
	}
	attackers := sc.BotCount
	if attackers == sweep.NoBotnet {
		attackers = 0
	}
	return Config{
		Duration:   sc.Duration,
		Clients:    sc.NumClients,
		ClientRate: sc.ClientRate,
		Attackers:  attackers,
		Attack:     attack,
		AttackRate: sc.PerBotRate,
		Params:     sc.Params,
	}
}

func (cfg Config) withDefaults() Config {
	if cfg.Duration == 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Payload == 0 {
		cfg.Payload = 16
	}
	if cfg.Attack == "" {
		cfg.Attack = AttackNoSolve
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.Params.K == 0 && cfg.Params.M == 0 {
		cfg.Params = puzzle.Params{K: 1, M: 4, L: 32}
	}
	return cfg
}

// LatencySummary is the preamble-latency distribution in milliseconds,
// estimated by streaming P² sketches.
type LatencySummary struct {
	Count                      int
	MeanMs, MaxMs              float64
	P10Ms, P50Ms, P90Ms, P99Ms float64
}

// Report is the outcome of one load run.
type Report struct {
	// Elapsed is the measured wall-clock span.
	Elapsed time.Duration
	// Handshakes counts completed end-to-end exchanges (preamble accepted
	// and the echo payload verified through the splice).
	Handshakes uint64
	// Rejected counts client dials the server answered with REJECT.
	Rejected uint64
	// Errors counts client dials that failed any other way.
	Errors uint64
	// AttackConns counts attacker connections opened.
	AttackConns uint64
	// Throughput is Handshakes per second of Elapsed.
	Throughput float64
	// Latency summarises the honest preamble latency (dial to ACCEPT).
	Latency LatencySummary
	// Dialer is the aggregate honest-dialer view.
	Dialer puzzlenet.DialerStats
	// Listener and Proxy carry the server-side counters when the run is
	// self-hosted; nil against an external target.
	Listener *puzzlenet.ListenerStats
	Proxy    *puzzlenet.ProxyStats
}

func (r *Report) String() string {
	s := fmt.Sprintf(
		"handshakes %d (%.1f/s) rejected %d errors %d attack-conns %d\n"+
			"preamble latency ms: p10 %.2f p50 %.2f p90 %.2f p99 %.2f max %.2f mean %.2f (n=%d)",
		r.Handshakes, r.Throughput, r.Rejected, r.Errors, r.AttackConns,
		r.Latency.P10Ms, r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms,
		r.Latency.MaxMs, r.Latency.MeanMs, r.Latency.Count,
	)
	if r.Listener != nil {
		s += fmt.Sprintf("\nlistener: %+v", *r.Listener)
	}
	if r.Proxy != nil {
		s += fmt.Sprintf("\nproxy: %+v", *r.Proxy)
	}
	return s
}

// Print writes the report to stdout and returns an error when fewer than
// min handshakes completed — the smoke gate cmd/tcpz-load exposes as
// -min-handshakes.
func (r *Report) Print(min uint64) error {
	fmt.Println(r)
	if r.Handshakes < min {
		return fmt.Errorf("loadgen: %d handshakes completed, need >= %d", r.Handshakes, min)
	}
	return nil
}

// SelfHost starts an echo backend, a puzzle listener at cfg.Params, and a
// proxy splicing between them, all on loopback. It returns the proxy
// address and a shutdown function draining all three within the context
// deadline. The returned listener/proxy are also handed back so Run can
// snapshot their stats.
func SelfHost(cfg Config) (addr string, l *puzzlenet.Listener, p *puzzlenet.Proxy, shutdown func(context.Context) error, err error) {
	cfg = cfg.withDefaults()
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := backend.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()

	issuer, err := puzzle.NewIssuer(puzzle.WithParams(cfg.Params))
	if err != nil {
		backend.Close()
		return "", nil, nil, nil, err
	}
	l, err = puzzlenet.Listen("127.0.0.1:0", issuer,
		puzzlenet.WithHandshakeTimeout(cfg.HandshakeTimeout),
		puzzlenet.WithMaxPending(256),
	)
	if err != nil {
		backend.Close()
		return "", nil, nil, nil, err
	}
	p = puzzlenet.NewProxy(l, backend.Addr().String())
	go func() { _ = p.Serve() }()

	shutdown = func(ctx context.Context) error {
		err := p.Shutdown(ctx)
		_ = backend.Close()
		wg.Wait()
		return err
	}
	return l.Addr().String(), l, p, shutdown, nil
}

// Run drives the configured mix at cfg.Target for cfg.Duration and
// returns the report. The caller owns the target; pair with SelfHost for
// an in-process run.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, errors.New("loadgen: no target address")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		mu     sync.Mutex
		sketch = stats.NewSummarySketch(0.10, 0.50, 0.90, 0.99)

		handshakes, rejected, clientErrs, attackConns atomic.Uint64
	)
	dialer := &puzzlenet.Dialer{HandshakeTimeout: cfg.HandshakeTimeout}
	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pace := pacer(cfg.ClientRate)
			buf := make([]byte, len(payload))
			for pace(ctx) {
				t0 := time.Now()
				conn, err := dialer.DialContext(ctx, "tcp", cfg.Target)
				if err != nil {
					if errors.Is(err, puzzlenet.ErrRejected) {
						rejected.Add(1)
					} else if ctx.Err() == nil {
						clientErrs.Add(1)
					}
					continue
				}
				latency := time.Since(t0)
				_, werr := conn.Write(payload)
				_, rerr := io.ReadFull(conn, buf)
				_ = conn.Close()
				if werr != nil || rerr != nil {
					if ctx.Err() == nil {
						clientErrs.Add(1)
					}
					continue
				}
				handshakes.Add(1)
				mu.Lock()
				sketch.Observe(float64(latency) / float64(time.Millisecond))
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Attackers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pace := pacer(cfg.AttackRate)
			for pace(ctx) {
				if attackOnce(ctx, cfg) {
					attackConns.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	lat := LatencySummary{Count: sketch.Count()}
	if lat.Count > 0 {
		lat.MeanMs = sketch.Mean()
		lat.MaxMs = sketch.Max()
		lat.P10Ms = sketch.Quantile(0.10)
		lat.P50Ms = sketch.Quantile(0.50)
		lat.P90Ms = sketch.Quantile(0.90)
		lat.P99Ms = sketch.Quantile(0.99)
	}
	return &Report{
		Elapsed:     elapsed,
		Handshakes:  handshakes.Load(),
		Rejected:    rejected.Load(),
		Errors:      clientErrs.Load(),
		AttackConns: attackConns.Load(),
		Throughput:  float64(handshakes.Load()) / elapsed.Seconds(),
		Latency:     lat,
		Dialer:      dialer.Stats(),
	}, nil
}

// pacer returns a step function implementing a fixed-rate open loop
// (rate > 0) or a closed loop (rate <= 0): it reports false once ctx is
// done.
func pacer(rate float64) func(context.Context) bool {
	if rate <= 0 {
		return func(ctx context.Context) bool { return ctx.Err() == nil }
	}
	interval := time.Duration(float64(time.Second) / rate)
	var next time.Time
	return func(ctx context.Context) bool {
		now := time.Now()
		if next.IsZero() {
			next = now
		}
		if wait := next.Sub(now); wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return false
			}
		}
		next = next.Add(interval)
		return ctx.Err() == nil
	}
}

// attackOnce opens one attacker connection and misbehaves per cfg.Attack;
// it reports whether the dial reached the server.
func attackOnce(ctx context.Context, cfg Config) bool {
	switch cfg.Attack {
	case AttackSolve:
		d := puzzlenet.Dialer{HandshakeTimeout: cfg.HandshakeTimeout}
		conn, err := d.DialContext(ctx, "tcp", cfg.Target)
		if err == nil {
			_ = conn.Close()
		}
		return true
	default:
		var nd net.Dialer
		conn, err := nd.DialContext(ctx, "tcp", cfg.Target)
		if err != nil {
			return false
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout))
		switch cfg.Attack {
		case AttackStall:
			// Hold the socket until the server or the run deadline reaps it.
			done := make(chan struct{})
			go func() {
				_, _ = conn.Read(make([]byte, 1))
				close(done)
			}()
			select {
			case <-done:
			case <-ctx.Done():
			}
		case AttackGarbage:
			_, _ = conn.Write([]byte("\x00\xff\x00garbage\r\n"))
			_, _ = conn.Read(make([]byte, 16))
		default: // AttackNoSolve
			_, _ = conn.Read(make([]byte, 16))
		}
		return true
	}
}
