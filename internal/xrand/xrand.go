// Package xrand provides a compact deterministic random source for
// macro-source populations. The standard library's rand.NewSource costs
// ~4.9 KB of shuffled-feedback state per instance — fine for tens of
// bots, fatal for a million spoofed sources. SplitMix implements
// math/rand.Source64 in exactly 8 bytes of state (splitmix64, Steele et
// al., OOPSLA 2014), and exposes that state so a fleet can keep one
// uint64 per source in a flat array and swap it through a single shared
// rand.Rand wrapper.
//
// splitmix64's output function applies full avalanche to the counter, so
// even adjacent seeds (the botnet derives seed_i = base + i*101) produce
// uncorrelated streams.
package xrand

// SplitMix is a splitmix64 generator: state advances by a fixed odd
// constant and each output mixes the counter through two xor-multiply
// rounds. It implements math/rand.Source and math/rand.Source64.
type SplitMix struct {
	state uint64
}

// New returns a SplitMix seeded with the given value. The raw seed is
// the initial state: Stream(seed) is fully determined by it, and
// State()/SetState round-trip it exactly.
func New(seed int64) *SplitMix { return &SplitMix{state: uint64(seed)} }

// Uint64 advances the state and returns the next mixed output.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1E4B71D9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Int63 returns the top 63 bits of the next output, satisfying
// math/rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed resets the generator to the given seed (math/rand.Source).
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }

// State returns the current 8-byte state, the complete generator.
func (s *SplitMix) State() uint64 { return s.state }

// SetState restores a state previously read with State.
func (s *SplitMix) SetState(v uint64) { s.state = v }
