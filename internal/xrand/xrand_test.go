package xrand

import (
	"math/rand"
	"testing"
)

// The whole point of SplitMix is that State/SetState round-trip the
// complete generator, so a fleet can park one uint64 per source and
// resume any source's stream through a single shared wrapper.
func TestStateRoundTrip(t *testing.T) {
	a := New(42)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	saved := a.State()
	want := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}

	b := New(0)
	b.SetState(saved)
	for i, w := range want {
		if got := b.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: got %d, want %d", i, got, w)
		}
	}
}

// A shared rand.Rand wrapper over a swapped SplitMix must reproduce the
// stream of a dedicated rand.Rand per source — this is the equivalence
// the macro fleet's lazy-swap RNG depends on.
func TestSharedWrapperMatchesDedicated(t *testing.T) {
	seeds := []int64{1, 101, 202, 1<<40 + 7}

	dedicated := make([][]int64, len(seeds))
	for i, seed := range seeds {
		r := rand.New(New(seed))
		for j := 0; j < 8; j++ {
			dedicated[i] = append(dedicated[i], r.Int63n(1_000_000))
		}
	}

	// Interleave draws across sources through one wrapper, swapping
	// state between draws.
	states := make([]uint64, len(seeds))
	for i, seed := range seeds {
		states[i] = New(seed).State()
	}
	src := New(0)
	shared := rand.New(src)
	got := make([][]int64, len(seeds))
	for j := 0; j < 8; j++ {
		for i := range seeds {
			src.SetState(states[i])
			got[i] = append(got[i], shared.Int63n(1_000_000))
			states[i] = src.State()
		}
	}
	for i := range seeds {
		for j := range dedicated[i] {
			if got[i][j] != dedicated[i][j] {
				t.Fatalf("source %d draw %d: shared wrapper %d != dedicated %d",
					i, j, got[i][j], dedicated[i][j])
			}
		}
	}
}

// Adjacent seeds must not produce visibly correlated first outputs —
// the botnet seeds sources base + i*101 apart.
func TestAdjacentSeedsDecorrelated(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		v := New(1000 + i*101).Uint64()
		if seen[v] {
			t.Fatalf("duplicate first output for seed stride test at i=%d", i)
		}
		seen[v] = true
	}
}

func TestUint64KnownVector(t *testing.T) {
	// Reference values for splitmix64 with seed 1234567
	// (cross-checked against the published algorithm).
	s := New(1234567)
	first := s.Uint64()
	second := s.Uint64()
	if first == 0 || second == 0 || first == second {
		t.Fatalf("degenerate outputs: %d, %d", first, second)
	}
	// Pin the exact values so any accidental change to the mixing
	// constants (which would silently re-run every macro scenario
	// differently) fails loudly.
	if first != 0x8d95708ae06ae805 {
		t.Fatalf("first output changed: got %#x", first)
	}
}
