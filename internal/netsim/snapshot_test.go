package netsim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// drainOrder fires every pending event and returns the log the scheduled
// closures append to, proving the heap's pop order survived a round trip.
func drainOrder(e *Engine, log *[]string) []string {
	*log = (*log)[:0]
	e.Run(time.Hour)
	return append([]string(nil), *log...)
}

// TestEngineSnapshotRestoreExact: snapshot mid-run, keep executing and
// mutating the schedule, restore — the engine must be back exactly:
// clock, sequence counter, fired count, pending set, and pop order.
func TestEngineSnapshotRestoreExact(t *testing.T) {
	e := NewEngine()
	var log []string
	at := func(name string, d time.Duration) Timer {
		return e.ScheduleAt(d, func() { *(&log) = append(log, fmt.Sprintf("%s@%v", name, e.Now())) })
	}
	at("a", 1*time.Millisecond)
	tb := at("b", 2*time.Millisecond)
	at("c", 3*time.Millisecond)
	at("d", 3*time.Millisecond) // same instant as c: scheduling order must hold
	at("e", 5*time.Millisecond)
	tb.Cancel()

	e.Run(1 * time.Millisecond) // fires a; b cancelled-fires; pool now holds them
	now, seq, fired, pending, pool := e.now, e.seq, e.fired, e.Pending(), e.PoolSize()
	snap := e.snapshot()

	// Speculative phase: execute past the snapshot and mutate the schedule.
	at("x", 4*time.Millisecond)
	e.Run(4 * time.Millisecond) // fires c, d, x
	at("y", 6*time.Millisecond)

	e.restore(snap)
	if e.now != now || e.seq != seq || e.fired != fired {
		t.Fatalf("restore: now=%v seq=%d fired=%d, want %v/%d/%d", e.now, e.seq, e.fired, now, seq, fired)
	}
	if e.Pending() != pending || e.PoolSize() != pool {
		t.Fatalf("restore: pending=%d pool=%d, want %d/%d", e.Pending(), e.PoolSize(), pending, pool)
	}
	// a fired before the snapshot; b was cancelled; the replay must fire
	// exactly the snapshot's pending set, same-instant pair in scheduling
	// order, with no trace of the speculative x or y.
	got := drainOrder(e, &log)
	want := []string{"c@3ms", "d@3ms", "e@5ms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restore fire order = %v, want %v", got, want)
	}
}

// TestEngineSnapshotTimerGenerations pins the Timer-handle contract across
// a rollback: a handle issued before the snapshot is valid again after
// restore even though its event fired (and was recycled) during the
// speculative phase, while a handle issued *during* speculation on a
// recycled slot goes stale on restore.
func TestEngineSnapshotTimerGenerations(t *testing.T) {
	e := NewEngine()
	pre := e.ScheduleAt(2*time.Millisecond, func() {})
	e.ScheduleAt(5*time.Millisecond, func() {})
	snap := e.snapshot()

	e.Run(2 * time.Millisecond) // pre's event fires and is recycled (gen++)
	if _, ok := pre.At(); ok {
		t.Fatal("pre fired during speculation but its handle is still valid")
	}
	spec := e.ScheduleAt(3*time.Millisecond, func() {}) // reuses pre's pooled slot
	if spec.ev != pre.ev {
		t.Fatalf("test fixture assumption broke: speculative event did not reuse the pooled slot")
	}

	e.restore(snap)
	if at, ok := pre.At(); !ok || at != 2*time.Millisecond {
		t.Fatalf("pre-snapshot timer after restore: at=%v ok=%v, want 2ms true", at, ok)
	}
	if _, ok := spec.At(); ok {
		t.Fatal("speculation-issued timer survived the rollback")
	}
	pre.Cancel() // must hit the restored event, not a stale generation
	fired := 0
	e.ScheduleAt(10*time.Millisecond, func() { fired++ })
	e.Run(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.fired != snap.fired+2 { // cancelled pre still pops (and counts) plus the live closure
		t.Fatalf("fired counter = %d, want %d", e.fired, snap.fired+2)
	}
}

// TestEngineSnapshotFreeListScrubbed: restore rebuilds the pool with the
// recycle-time scrub invariant intact — allocations after a rollback hand
// out clean events carrying only their generation.
func TestEngineSnapshotFreeListScrubbed(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(time.Millisecond, func() {})
	e.Run(time.Millisecond) // one pooled event
	snap := e.snapshot()

	e.ScheduleAt(2*time.Millisecond, func() {}) // drains the pool
	e.Run(2 * time.Millisecond)                 // ... and refills it, gen bumped again

	e.restore(snap)
	if e.PoolSize() != 1 {
		t.Fatalf("pool size = %d, want 1", e.PoolSize())
	}
	ev := e.free[0]
	gen := ev.gen
	if ev.at != 0 || ev.seq != 0 || ev.src != 0 || ev.srcSeq != 0 ||
		ev.kind != kindFunc || ev.cancelled || ev.fn != nil ||
		!reflect.DeepEqual(ev.msg, message{}) {
		t.Fatalf("restored pool event not scrubbed: %+v", ev)
	}
	// The next allocation must hand the slot out clean, at the generation
	// the snapshot recorded — exactly as if the speculative reuse never
	// happened. (Handles the speculative execution created are themselves
	// rolled back with the application state, so none survive to observe
	// the reused generation.)
	tm := e.ScheduleAt(3*time.Millisecond, func() {})
	if tm.ev != ev || tm.gen != gen {
		t.Fatalf("post-restore alloc: slot reused=%v gen=%d, want reused gen %d", tm.ev == ev, tm.gen, gen)
	}
	if at, ok := tm.At(); !ok || at != 3*time.Millisecond {
		t.Fatalf("post-restore timer: at=%v ok=%v", at, ok)
	}
}
