// Package netsim is a deterministic discrete-event network simulator: the
// substrate standing in for the paper's DETER testbed. It provides a clocked
// event engine, nodes addressed by IPv4 address, and access links with
// bandwidth, propagation latency, and drop-tail queues. Packet taps play the
// role of tcpdump.
//
// The engine can run as a single event heap or sharded: a Network built
// with NewSharded partitions its nodes across several engines that execute
// concurrently in conservative lock-step time windows (see Network.Run).
// Results are byte-identical at every shard count because all cross-node
// deliveries are ordered by a canonical, shard-count-independent key
// rather than by scheduling order.
//
// The scheduling hot path is allocation-free in steady state: events are
// plain structs recycled through a per-engine free-list, the pending queue
// is a monomorphic 4-ary min-heap specialised for *Event (no interface
// boxing, no container/heap indirection), and packet deliveries carry
// their payload as a typed message on the event itself — dispatched by a
// small fixed set of event kinds — instead of a per-packet closure.
package netsim

import (
	"time"
)

// eventKind selects the dispatch path when an event fires. Keeping the
// set small and fixed is what lets the packet path avoid closures: the
// payload travels on the event, the behaviour lives in Engine.fire.
type eventKind uint8

const (
	// kindFunc runs a captured callback — timers, Poisson generators,
	// RTOs. The closure is the caller's; the engine only recycles the
	// event shell.
	kindFunc eventKind = iota
	// kindArrival is the downlink-queue leg of a packet delivery: the
	// event's msg payload is offered to the destination's downlink
	// transmitter, and on success the same event is re-queued as
	// kindDeliver at the serialisation-complete time.
	kindArrival
	// kindDeliver hands the msg payload to the destination node.
	kindDeliver
)

// Event is a scheduled occurrence. Events are pooled: once fired (or
// discarded after Cancel) the struct returns to its engine's free-list and
// will be reused, so external code never holds a *Event — cancellation
// goes through the generation-checked Timer handle instead.
type Event struct {
	at  time.Duration
	seq uint64
	// src/srcSeq order kindArrival events at equal times by the canonical
	// (source, per-source sequence) key instead of the engine-local seq.
	// The key is a pure function of the sending node's history, so it does
	// not depend on how nodes are partitioned into shards — the property
	// that makes sharded runs byte-identical to single-shard runs.
	src       uint64
	srcSeq    uint64
	kind      eventKind
	cancelled bool
	// gen increments every time the event returns to the free-list; a
	// Timer handle carries the generation it was issued under, so a stale
	// Cancel after the event fired (and the struct was reused) is a no-op
	// instead of poisoning the new occupant.
	gen uint32
	fn  func()  // kindFunc payload
	msg message // kindArrival / kindDeliver payload
}

// Timer is a cancellable handle to a scheduled callback. The zero Timer
// is valid and inert. Handles stay safe after the event fires: the pooled
// event's generation moves on and Cancel quietly misses.
type Timer struct {
	ev  *Event
	gen uint32
}

// Cancel prevents the pending callback from firing. Cancelling a zero
// Timer, or one whose event already fired, is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.cancelled = true
	}
}

// At returns the event's scheduled time, or false if it already fired
// (its pooled slot moved on) or the handle is zero.
func (t Timer) At() (time.Duration, bool) {
	if t.ev == nil || t.ev.gen != t.gen {
		return 0, false
	}
	return t.ev.at, true
}

// less is the canonical firing order: time, then locally scheduled events
// before packet arrivals at the same instant, arrivals among themselves by
// the shard-independent (src, srcSeq) key, and engine scheduling order
// last. It is a strict total order (seq is unique per engine), so the
// heap's internal layout can never influence pop order.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	aArr, bArr := a.kind == kindArrival, b.kind == kindArrival
	if aArr != bArr {
		return !aArr
	}
	if aArr {
		if a.src != b.src {
			return a.src < b.src
		}
		if a.srcSeq != b.srcSeq {
			return a.srcSeq < b.srcSeq
		}
	}
	return a.seq < b.seq
}

// Engine is a single-threaded discrete-event clock. Time starts at zero;
// events at equal times fire in scheduling order (arrival events are the
// exception — see the less doc).
type Engine struct {
	now   time.Duration
	pq    []*Event // monomorphic 4-ary min-heap ordered by less
	seq   uint64
	fired uint64
	// free is the event pool. Steady-state simulation cycles events
	// between pq and free without touching the allocator.
	free []*Event
	// net dispatches kindArrival/kindDeliver events; set when the engine
	// is owned by a Network. A standalone engine only sees kindFunc.
	net *Network
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// alloc takes an event from the free-list (or the allocator when the pool
// is dry). Pool entries were scrubbed by recycle, so every field except
// gen starts zero.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle scrubs a finished event and returns it to the pool. The
// generation bump invalidates outstanding Timer handles, and clearing fn
// and msg drops the references they pin (closures, segments, ports) so
// the pool never extends object lifetimes.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.at = 0
	ev.seq = 0
	ev.src = 0
	ev.srcSeq = 0
	ev.kind = kindFunc
	ev.cancelled = false
	ev.fn = nil
	ev.msg = message{}
	e.free = append(e.free, ev)
}

// push appends ev and restores the heap: a 4-ary sift-up. The shallow
// 4-ary shape trades one extra comparison per level for half the levels —
// a clear win when every node is a hot *Event comparison instead of a
// heap.Interface call.
func (e *Engine) push(ev *Event) {
	e.pq = append(e.pq, ev)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(e.pq[i], e.pq[parent]) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// pop removes and returns the minimum event (heap must be non-empty).
func (e *Engine) pop() *Event {
	h := e.pq
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	e.pq = h
	if n == 0 {
		return root
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(h[c], h[min]) {
				min = c
			}
		}
		if !less(h[min], last) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = last
	return root
}

// Schedule queues fn to run after delay (clamped at zero) and returns a
// cancellable handle.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute time (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) Timer {
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// scheduleArrival queues the downlink leg of a packet delivery. At equal
// times arrivals fire after locally scheduled events and order among
// themselves by (m.src, m.seq) — a key derived from the sending node, not
// from this engine's scheduling history, so the firing order is identical
// however the simulation is sharded. The (src, seq) pair must be unique
// per pending arrival.
func (e *Engine) scheduleArrival(m message) {
	at := m.at
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.kind = kindArrival
	ev.src = m.src
	ev.srcSeq = m.seq
	ev.msg = m
	e.seq++
	e.push(ev)
}

// grow pre-extends the heap's capacity by n slots — one reallocation for
// a whole batch of cross-shard arrivals instead of log-many appends.
func (e *Engine) grow(n int) {
	if need := len(e.pq) + n; need > cap(e.pq) {
		pq := make([]*Event, len(e.pq), need+need/2)
		copy(pq, e.pq)
		e.pq = pq
	}
}

// fire dispatches one live event and recycles it (directly, or after its
// follow-up leg for arrivals).
func (e *Engine) fire(ev *Event) {
	switch ev.kind {
	case kindFunc:
		fn := ev.fn
		e.recycle(ev)
		fn()
	case kindArrival:
		// The network either recycles ev (drop) or re-queues it as
		// kindDeliver, reusing the struct for the second leg.
		e.net.runArrival(e, ev)
	case kindDeliver:
		m := ev.msg
		e.recycle(ev)
		e.net.runDeliver(e, m)
	}
}

// Step fires the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		e.fire(ev)
		return true
	}
	return false
}

// Fired returns how many events this engine has executed — the per-shard
// load signal behind Network.ShardStats.
func (e *Engine) Fired() uint64 { return e.fired }

// Run fires all events scheduled at or before until and then advances the
// clock to until. The time check discards cancelled events first, so a
// cancelled head never lets a later live event fire past the boundary —
// the invariant the sharded window scheduler depends on.
func (e *Engine) Run(until time.Duration) {
	for {
		at, ok := e.NextEventAt()
		if !ok || at > until {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

// RunBefore fires all events strictly before end without advancing the
// clock past the last fired event — one lock-step window of a sharded run.
func (e *Engine) RunBefore(end time.Duration) {
	for {
		at, ok := e.NextEventAt()
		if !ok || at >= end {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// NextEventAt returns the time of the earliest live pending event.
// Cancelled events at the head of the queue are discarded on the way.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	for len(e.pq) > 0 {
		if e.pq[0].cancelled {
			e.recycle(e.pop())
			continue
		}
		return e.pq[0].at, true
	}
	return 0, false
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.pq) }

// PoolSize returns the free-list length — test and benchmark
// observability for the recycling contract.
func (e *Engine) PoolSize() int { return len(e.free) }

// engineSnap is a point-in-time copy of an engine's complete scheduling
// state: clock, counters, the heap (both the pointer layout and the value
// of every pending event), and the free-list with each pooled event's
// generation. It exists for speculative shard execution (see
// Network.runSpeculative): restore puts the *same* event structs back in
// the *same* heap positions with the *same* generations, so Timer handles
// issued before the snapshot remain exactly as valid or stale as they
// were, and pre-snapshot closures that captured nothing but the handle
// keep working after a rollback.
type engineSnap struct {
	now        time.Duration
	seq, fired uint64
	pq         []*Event
	pqVals     []Event
	free       []*Event
	freeGens   []uint32
}

// snapshot captures the engine's scheduling state. Must not run while the
// engine is firing events.
func (e *Engine) snapshot() *engineSnap {
	s := &engineSnap{
		now: e.now, seq: e.seq, fired: e.fired,
		pq:       append([]*Event(nil), e.pq...),
		pqVals:   make([]Event, len(e.pq)),
		free:     append([]*Event(nil), e.free...),
		freeGens: make([]uint32, len(e.free)),
	}
	for i, ev := range e.pq {
		s.pqVals[i] = *ev
	}
	for i, ev := range e.free {
		s.freeGens[i] = ev.gen
	}
	return s
}

// restore rewinds the engine to a snapshot, in place: every event struct
// that was pending goes back to its snapshotted heap slot and contents,
// and every event that was pooled returns to the pool scrubbed (it may
// have been reallocated and dirtied during the discarded execution) with
// its snapshotted generation, preserving both the free-list contract
// (alloc hands out clean structs) and the validity status of every Timer
// handle issued before the snapshot. Events allocated from the heap
// allocator after the snapshot are simply dropped. A snapshot can be
// restored any number of times.
func (e *Engine) restore(s *engineSnap) {
	e.now, e.seq, e.fired = s.now, s.seq, s.fired
	e.pq = append(e.pq[:0], s.pq...)
	for i, ev := range s.pq {
		*ev = s.pqVals[i]
	}
	e.free = append(e.free[:0], s.free...)
	for i, ev := range s.free {
		*ev = Event{gen: s.freeGens[i]}
	}
}
