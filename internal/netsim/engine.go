// Package netsim is a deterministic discrete-event network simulator: the
// substrate standing in for the paper's DETER testbed. It provides a clocked
// event engine, nodes addressed by IPv4 address, and access links with
// bandwidth, propagation latency, and drop-tail queues. Packet taps play the
// role of tcpdump.
//
// The engine can run as a single event heap or sharded: a Network built
// with NewSharded partitions its nodes across several engines that execute
// concurrently in conservative lock-step time windows (see Network.Run).
// Results are byte-identical at every shard count because all cross-node
// deliveries are ordered by a canonical, shard-count-independent key
// rather than by scheduling order.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing.
type Event struct {
	at  time.Duration
	seq uint64
	// arrival marks a packet-delivery event, ordered at equal times by the
	// canonical (src, srcSeq) key instead of the engine-local seq. The key
	// is a pure function of the sending node's history, so it does not
	// depend on how nodes are partitioned into shards — the property that
	// makes sharded runs byte-identical to single-shard runs.
	arrival   bool
	src       uint64
	srcSeq    uint64
	fn        func()
	index     int
	cancelled bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// At returns the event's scheduled time.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	// Locally scheduled events fire before packet arrivals at the same
	// instant; arrivals among themselves order by the canonical key. Both
	// rules are independent of shard layout.
	if a.arrival != b.arrival {
		return !a.arrival
	}
	if a.arrival {
		if a.src != b.src {
			return a.src < b.src
		}
		if a.srcSeq != b.srcSeq {
			return a.srcSeq < b.srcSeq
		}
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event clock. Time starts at zero;
// events at equal times fire in scheduling order (arrival events are the
// exception — see ScheduleArrivalAt).
type Engine struct {
	now   time.Duration
	pq    eventHeap
	seq   uint64
	fired uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule queues fn to run after delay (clamped at zero) and returns a
// cancellable handle.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute time (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// ScheduleArrivalAt queues a packet-arrival event. At equal times arrivals
// fire after locally scheduled events and order among themselves by
// (src, srcSeq) — a key derived from the sending node, not from this
// engine's scheduling history, so the firing order is identical however
// the simulation is sharded. The (src, srcSeq) pair must be unique per
// pending arrival.
func (e *Engine) ScheduleArrivalAt(at time.Duration, src, srcSeq uint64, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, arrival: true, src: src, srcSeq: srcSeq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Step fires the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Fired returns how many events this engine has executed — the per-shard
// load signal behind Network.ShardStats.
func (e *Engine) Fired() uint64 { return e.fired }

// Run fires all events scheduled at or before until and then advances the
// clock to until. The time check discards cancelled events first, so a
// cancelled head never lets a later live event fire past the boundary —
// the invariant the sharded window scheduler depends on.
func (e *Engine) Run(until time.Duration) {
	for {
		at, ok := e.NextEventAt()
		if !ok || at > until {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

// RunBefore fires all events strictly before end without advancing the
// clock past the last fired event — one lock-step window of a sharded run.
func (e *Engine) RunBefore(end time.Duration) {
	for {
		at, ok := e.NextEventAt()
		if !ok || at >= end {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// NextEventAt returns the time of the earliest live pending event.
// Cancelled events at the head of the queue are discarded on the way.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	for len(e.pq) > 0 {
		if e.pq[0].cancelled {
			heap.Pop(&e.pq)
			continue
		}
		return e.pq[0].at, true
	}
	return 0, false
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.pq) }
