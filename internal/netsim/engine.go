// Package netsim is a deterministic discrete-event network simulator: the
// substrate standing in for the paper's DETER testbed. It provides a clocked
// event engine, nodes addressed by IPv4 address, and access links with
// bandwidth, propagation latency, and drop-tail queues. Packet taps play the
// role of tcpdump.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// At returns the event's scheduled time.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event clock. Time starts at zero;
// events at equal times fire in scheduling order.
type Engine struct {
	now time.Duration
	pq  eventHeap
	seq uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule queues fn to run after delay (clamped at zero) and returns a
// cancellable handle.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute time (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Step fires the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run fires all events scheduled at or before until and then advances the
// clock to until.
func (e *Engine) Run(until time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.pq) }
