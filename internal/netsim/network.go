package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// Addr is an IPv4 address.
type Addr = [4]byte

// Node receives segments delivered by the network.
type Node interface {
	// Addr is the node's address.
	Addr() Addr
	// Handle processes a delivered segment. It runs inside the event loop;
	// implementations may send further segments and schedule events.
	Handle(seg tcpkit.Segment)
}

// LinkConfig describes one node's access link (used symmetrically for both
// directions, mirroring the paper's full-duplex testbed links).
type LinkConfig struct {
	// RateBps is the link bandwidth in bits per second.
	RateBps float64
	// Latency is the one-way propagation delay from the node to the
	// backbone (the backbone itself is well provisioned, per the paper's
	// topology, and adds no queueing).
	Latency time.Duration
	// MaxBacklog bounds the transmit queue as maximum queueing delay;
	// packets that would wait longer are dropped (drop-tail).
	MaxBacklog time.Duration
}

// DefaultHostLink is the paper's 100 Mbps host access link.
func DefaultHostLink() LinkConfig {
	return LinkConfig{RateBps: 100e6, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
}

// DefaultServerLink is the paper's 1 Gbps server access link.
func DefaultServerLink() LinkConfig {
	return LinkConfig{RateBps: 1e9, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
}

// xmitter is one direction of an access link.
type xmitter struct {
	cfg       LinkConfig
	busyUntil time.Duration
	dropped   uint64
	sentPkts  uint64
	sentBytes uint64
}

// transmit attempts to enqueue a packet of size bytes at time now and
// returns the departure time (serialisation complete).
func (x *xmitter) transmit(now time.Duration, size int) (time.Duration, bool) {
	start := now
	if x.busyUntil > start {
		start = x.busyUntil
	}
	if start-now > x.cfg.MaxBacklog {
		x.dropped++
		return 0, false
	}
	ser := time.Duration(float64(size*8) / x.cfg.RateBps * float64(time.Second))
	depart := start + ser
	x.busyUntil = depart
	x.sentPkts++
	x.sentBytes += uint64(size)
	return depart, true
}

// LinkStats summarises one link direction.
type LinkStats struct {
	SentPackets uint64
	SentBytes   uint64
	Dropped     uint64
}

// port is one attached node. All of its mutable state — uplink, downlink,
// msgSeq — is touched only by the node's home shard: uplink and msgSeq
// from the node's own sends, downlink from deliveries, which execute on
// the destination's home shard.
type port struct {
	node  Node
	up    xmitter
	down  xmitter
	shard int
	// msgSeq numbers this node's outgoing packets; together with the
	// address it forms the canonical arrival-ordering key.
	msgSeq uint64
	// store, when non-nil, marks this as a SourceStore's virtual port:
	// deliveries run the store's per-slot downlink and handler instead of
	// node/down (which stay nil/unused).
	store *SourceStore
}

// downLatency returns the propagation delay of the destination's
// downlink, whether it is a real port or a source store's shared link.
func (p *port) downLatency() time.Duration {
	if p.store != nil {
		return p.store.link.Latency
	}
	return p.down.cfg.Latency
}

// message is one packet in flight between shards: everything the
// destination shard needs to run the downlink leg of the delivery.
type message struct {
	at   time.Duration // arrival at the destination downlink
	src  uint64        // canonical origin key (address as integer)
	seq  uint64        // origin's packet counter
	size int
	dst  *port
	// slot is the destination slot when dst is a source store's virtual
	// port (-1 for real ports).
	slot int32
	seg  tcpkit.Segment
}

// netShard is the per-shard execution state: an engine plus outboxes of
// packets destined for other shards, exchanged at window barriers.
type netShard struct {
	eng    *Engine
	outbox [][]message // indexed by destination shard
}

// TapDir distinguishes tap events.
type TapDir int

// Tap directions.
const (
	TapSend TapDir = iota + 1
	TapDeliver
	TapDrop
)

// Tap observes packets, standing in for tcpdump. In sharded runs taps are
// invoked under a mutex from several shards; calls are race-free but their
// relative order across shards is not deterministic (aggregate anything
// order-sensitive per source instead).
type Tap func(at time.Duration, dir TapDir, seg tcpkit.Segment)

// Network connects nodes through access links and a zero-queueing
// backbone. A network built with NewNetwork runs on one engine; one built
// with NewSharded partitions nodes across several engines advanced in
// conservative lock-step windows by Run. Attach every node before running;
// the port table is read concurrently once the simulation starts.
type Network struct {
	// Eng is shard 0's engine, which is the only engine of an unsharded
	// network (and the conventional home of pinned nodes — see Pin).
	Eng    *Engine
	shards []*netShard
	ports  map[Addr]*port
	stores []*SourceStore
	pins   map[Addr]int

	taps  []Tap
	tapMu sync.Mutex

	// unroutable counts packets addressed to unknown nodes (e.g. SYN-ACKs
	// to spoofed sources). Sends from a known origin increment their own
	// slot of unroutableShard — per-shard state that speculative rollbacks
	// can rewind; only sends from unattached origins (where the calling
	// shard is unknown) fall back to the atomic.
	unroutable      atomic.Uint64
	unroutableShard []uint64

	// minUp[i] / minDown[i] are the smallest uplink / downlink propagation
	// latencies among shard i's attached ports, maintained incrementally
	// by Attach (hasPort marks shards with at least one port). Together
	// they bound how soon a packet from shard i can land on shard j —
	// minUp[i]+minDown[j] — which is the per-shard-pair lookahead the
	// window scheduler widens its windows with.
	minUp   []time.Duration
	minDown []time.Duration
	hasPort []bool

	// globalLookaheadOnly collapses the per-pair lookaheads back to the
	// pre-adaptive global minimum — kept for A/B tests proving the
	// per-pair windows barrier strictly less often with identical bytes.
	globalLookaheadOnly bool

	// Shard load-balance observability (see ShardStats): the window count,
	// per-shard cumulative barrier wait, and the min/sum/max of the
	// per-shard window widths actually applied. Written only by the window
	// coordinator between barriers.
	windows     int
	barrierWait []time.Duration
	lookMin     time.Duration
	lookMax     time.Duration
	lookSum     time.Duration
	lookN       uint64

	// Speculative execution state (see spec.go): the opt-in flag, tuning
	// overrides (zero = derived defaults), the per-shard restoration
	// inventory built lazily on the first speculative run, auxiliary
	// snapshotters, and the deterministic speculation counters.
	speculative  bool
	specQuantum  time.Duration
	specMaxIters int
	spec         []specShardState
	aux          []auxState
	rollbacks    uint64
	specWindows  uint64
	wastedEvents uint64
}

// ShardStats summarises how a sharded run's load spread across shards:
// per-shard executed event counts, the number of lock-step windows, and
// each shard's cumulative wall-clock wait at window barriers (time spent
// finished while the slowest shard of the window was still running —
// high wait on one shard means the others carry the load). Event counts
// are deterministic; waits and windows are wall-clock observations and
// never affect results. LookaheadMin/Mean/Max summarise the per-shard
// window widths the adaptive per-pair lookahead actually granted (zero
// until a windowed run happens) — on a heterogeneous topology Mean well
// above Min is the widening working.
type ShardStats struct {
	Events      []uint64
	Windows     int
	BarrierWait []time.Duration

	LookaheadMin  time.Duration
	LookaheadMean time.Duration
	LookaheadMax  time.Duration

	// Speculation counters (zero on conservative runs, all deterministic):
	// Rollbacks counts shard restorations, SpeculativeWindows counts
	// quanta that ran with at least one shard past its lookahead bound,
	// and WastedEvents counts events fired and then discarded by a
	// rollback.
	Rollbacks          uint64
	SpeculativeWindows uint64
	WastedEvents       uint64
}

// ShardStats reports the current load-balance counters.
func (n *Network) ShardStats() ShardStats {
	st := ShardStats{
		Windows: n.windows, Events: make([]uint64, len(n.shards)),
		Rollbacks: n.rollbacks, SpeculativeWindows: n.specWindows, WastedEvents: n.wastedEvents,
	}
	for i, s := range n.shards {
		st.Events[i] = s.eng.Fired()
	}
	if n.barrierWait != nil {
		st.BarrierWait = append([]time.Duration(nil), n.barrierWait...)
	}
	if n.lookN > 0 {
		st.LookaheadMin = n.lookMin
		st.LookaheadMax = n.lookMax
		st.LookaheadMean = n.lookSum / time.Duration(n.lookN)
	}
	return st
}

// NewNetwork returns an empty single-shard network on the engine.
func NewNetwork(eng *Engine) *Network {
	n := &Network{
		Eng:    eng,
		shards: []*netShard{{eng: eng, outbox: make([][]message, 1)}},
		ports:  make(map[Addr]*port),
		pins:   make(map[Addr]int),
	}
	n.initLookahead()
	eng.net = n
	return n
}

// initLookahead sizes the per-shard latency minima tables (and the
// per-shard unroutable counters, which share the shard indexing).
func (n *Network) initLookahead() {
	ns := len(n.shards)
	n.minUp = make([]time.Duration, ns)
	n.minDown = make([]time.Duration, ns)
	n.hasPort = make([]bool, ns)
	n.unroutableShard = make([]uint64, ns)
}

// NewSharded returns an empty network whose nodes are partitioned across
// shards event engines (at least one). Nodes are placed by address hash
// (see Pin for explicit placement); Run advances all shards in lock-step
// windows bounded by the minimum cross-shard link latency. Results are
// byte-identical at every shard count.
func NewSharded(shards int) *Network {
	if shards < 1 {
		shards = 1
	}
	n := &Network{
		ports: make(map[Addr]*port),
		pins:  make(map[Addr]int),
	}
	for i := 0; i < shards; i++ {
		s := &netShard{eng: NewEngine(), outbox: make([][]message, shards)}
		s.eng.net = n
		n.shards = append(n.shards, s)
	}
	n.Eng = n.shards[0].eng
	n.initLookahead()
	return n
}

// Shards returns the shard count.
func (n *Network) Shards() int { return len(n.shards) }

// Engine returns shard i's engine.
func (n *Network) Engine(i int) *Engine { return n.shards[i].eng }

// Pin fixes the shard a not-yet-attached address will live on (the flood
// experiments pin the server to shard 0). When any pin exists, unpinned
// nodes spread over the remaining shards, keeping the pinned (hot) shards
// to their designated tenants. Placement never affects results, only load
// balance.
func (n *Network) Pin(addr Addr, shard int) error {
	if shard < 0 || shard >= len(n.shards) {
		return fmt.Errorf("netsim: pin shard %d out of range [0,%d)", shard, len(n.shards))
	}
	if _, ok := n.ports[addr]; ok {
		return fmt.Errorf("netsim: address %v already attached", addr)
	}
	n.pins[addr] = shard
	return nil
}

// homeShard is the deterministic placement rule: explicit pin, else an
// address hash over the unpinned shards (over all shards when nothing is
// pinned).
func (n *Network) homeShard(addr Addr) int {
	ns := len(n.shards)
	if ns == 1 {
		return 0
	}
	if s, ok := n.pins[addr]; ok {
		return s
	}
	h := fnv32a(addr)
	if len(n.pins) == 0 {
		return int(h % uint32(ns))
	}
	pinned := make([]bool, ns)
	for _, s := range n.pins {
		pinned[s] = true
	}
	var free []int
	for i := 0; i < ns; i++ {
		if !pinned[i] {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return int(h % uint32(ns))
	}
	return free[h%uint32(len(free))]
}

func fnv32a(addr Addr) uint32 {
	h := uint32(2166136261)
	for _, b := range addr {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// addrKey is the canonical origin component of the arrival-ordering key.
func addrKey(addr Addr) uint64 {
	return uint64(addr[0])<<24 | uint64(addr[1])<<16 | uint64(addr[2])<<8 | uint64(addr[3])
}

// EngineFor returns the engine of the shard the address lives (or will
// live) on — the engine a node must schedule its own events against.
func (n *Network) EngineFor(addr Addr) *Engine {
	return n.shards[n.homeShard(addr)].eng
}

// Attach registers a node with its access link on the node's home shard.
// Attaching a duplicate address fails. All attaches must happen before the
// simulation runs.
func (n *Network) Attach(node Node, link LinkConfig) error {
	addr := node.Addr()
	if _, ok := n.ports[addr]; ok {
		return fmt.Errorf("netsim: address %v already attached", addr)
	}
	for _, s := range n.stores {
		if _, ok := s.slotOf(addr); ok {
			return fmt.Errorf("netsim: address %v falls inside macro source range at %v", addr, s.base)
		}
	}
	shard := n.homeShard(addr)
	n.ports[addr] = &port{
		node:  node,
		up:    xmitter{cfg: link},
		down:  xmitter{cfg: link},
		shard: shard,
	}
	// Fold the link into the shard's latency minima — the incremental
	// half of the per-pair lookahead (Run derives window widths from
	// these, so all attaches must precede the first Run).
	if !n.hasPort[shard] {
		n.hasPort[shard] = true
		n.minUp[shard] = link.Latency
		n.minDown[shard] = link.Latency
	} else {
		if link.Latency < n.minUp[shard] {
			n.minUp[shard] = link.Latency
		}
		if link.Latency < n.minDown[shard] {
			n.minDown[shard] = link.Latency
		}
	}
	return nil
}

// RegisterTap adds a packet observer.
func (n *Network) RegisterTap(t Tap) { n.taps = append(n.taps, t) }

func (n *Network) tap(at time.Duration, dir TapDir, seg tcpkit.Segment) {
	if len(n.taps) == 0 {
		return
	}
	n.tapMu.Lock()
	defer n.tapMu.Unlock()
	for _, t := range n.taps {
		t(at, dir, seg)
	}
}

// Send injects a segment from its source node. The packet traverses the
// source uplink, the backbone, and the destination downlink; it may be
// dropped at either queue or if the destination does not exist.
func (n *Network) Send(seg tcpkit.Segment) {
	n.SendFrom(seg.Src, seg)
}

// SendFrom injects a segment through origin's uplink regardless of the
// segment's source address — the spoofing primitive SYN flooders use.
// Replies to the spoofed source become unroutable. Must be called from the
// origin node's own shard (i.e. inside one of its events or before the
// simulation starts).
func (n *Network) SendFrom(origin Addr, seg tcpkit.Segment) {
	src, ok := n.ports[origin]
	if !ok {
		// Origins must be attached; treat as misconfiguration drop. Only
		// the (atomic) unroutable counter records it: without a port we
		// do not know the calling shard, so reading any engine's clock
		// for a tap here would race in sharded runs.
		n.unroutable.Add(1)
		return
	}
	sh := n.shards[src.shard]
	now := sh.eng.Now()
	n.tap(now, TapSend, seg)
	size := seg.WireSize()
	departUp, ok := src.up.transmit(now, size)
	if !ok {
		n.tap(now, TapDrop, seg)
		return
	}
	// After the uplink serialisation and both propagation legs, the packet
	// reaches the destination's downlink.
	dst, dslot := n.lookup(seg.Dst)
	if dst == nil {
		// Per-shard so a speculative rollback of the sending shard can
		// rewind the count. Still consume uplink bandwidth; nothing
		// arrives anywhere.
		n.unroutableShard[src.shard]++
		return
	}
	m := message{
		at:   departUp + src.up.cfg.Latency + dst.downLatency(),
		src:  addrKey(origin),
		seq:  src.msgSeq,
		size: size,
		dst:  dst,
		slot: dslot,
		seg:  seg,
	}
	src.msgSeq++
	if dst.shard == src.shard {
		sh.eng.scheduleArrival(m)
	} else {
		sh.outbox[dst.shard] = append(sh.outbox[dst.shard], m)
	}
}

// runArrival fires the downlink-queue leg of a delivery (kindArrival):
// the payload is offered to the destination's downlink transmitter, and
// the same event struct is re-queued as the kindDeliver leg at the
// serialisation-complete time — or recycled on a drop. The re-queued leg
// takes a fresh engine seq, exactly as the closure it replaced did, so
// firing order is bit-compatible with the pre-pooled engine.
func (n *Network) runArrival(e *Engine, ev *Event) {
	m := &ev.msg
	var departDown time.Duration
	var ok bool
	if st := m.dst.store; st != nil {
		departDown, ok = st.downTransmit(m.slot, e.now, m.size)
	} else {
		departDown, ok = m.dst.down.transmit(e.now, m.size)
	}
	if !ok {
		n.tap(e.now, TapDrop, m.seg)
		e.recycle(ev)
		return
	}
	ev.kind = kindDeliver
	ev.at = departDown // transmit never departs before now
	ev.seq = e.seq
	e.seq++
	e.push(ev)
}

// runDeliver fires the final leg (kindDeliver): tap, then hand the
// segment to the destination node.
func (n *Network) runDeliver(e *Engine, m message) {
	n.tap(e.now, TapDeliver, m.seg)
	if st := m.dst.store; st != nil {
		st.handler(m.slot, m.seg)
		return
	}
	m.dst.node.Handle(m.seg)
}

// lookup resolves a destination address to its port — a real attached
// port (slot -1) or a source store's virtual port plus slot index.
func (n *Network) lookup(addr Addr) (*port, int32) {
	if p, ok := n.ports[addr]; ok {
		return p, -1
	}
	for _, s := range n.stores {
		if slot, ok := s.slotOf(addr); ok {
			return s.vport, slot
		}
	}
	return nil, -1
}

// Unroutable returns how many packets were addressed to unknown nodes
// (e.g. SYN-ACKs to spoofed sources) or sent from unattached origins.
func (n *Network) Unroutable() uint64 {
	u := n.unroutable.Load()
	for _, c := range n.unroutableShard {
		u += c
	}
	return u
}

// Stats returns (uplink, downlink) statistics for a node address.
func (n *Network) Stats(addr Addr) (up, down LinkStats, ok bool) {
	p, found := n.ports[addr]
	if !found {
		return LinkStats{}, LinkStats{}, false
	}
	up = LinkStats{SentPackets: p.up.sentPkts, SentBytes: p.up.sentBytes, Dropped: p.up.dropped}
	down = LinkStats{SentPackets: p.down.sentPkts, SentBytes: p.down.sentBytes, Dropped: p.down.dropped}
	return up, down, true
}
