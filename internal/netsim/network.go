package netsim

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// Addr is an IPv4 address.
type Addr = [4]byte

// Node receives segments delivered by the network.
type Node interface {
	// Addr is the node's address.
	Addr() Addr
	// Handle processes a delivered segment. It runs inside the event loop;
	// implementations may send further segments and schedule events.
	Handle(seg tcpkit.Segment)
}

// LinkConfig describes one node's access link (used symmetrically for both
// directions, mirroring the paper's full-duplex testbed links).
type LinkConfig struct {
	// RateBps is the link bandwidth in bits per second.
	RateBps float64
	// Latency is the one-way propagation delay from the node to the
	// backbone (the backbone itself is well provisioned, per the paper's
	// topology, and adds no queueing).
	Latency time.Duration
	// MaxBacklog bounds the transmit queue as maximum queueing delay;
	// packets that would wait longer are dropped (drop-tail).
	MaxBacklog time.Duration
}

// DefaultHostLink is the paper's 100 Mbps host access link.
func DefaultHostLink() LinkConfig {
	return LinkConfig{RateBps: 100e6, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
}

// DefaultServerLink is the paper's 1 Gbps server access link.
func DefaultServerLink() LinkConfig {
	return LinkConfig{RateBps: 1e9, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
}

// xmitter is one direction of an access link.
type xmitter struct {
	cfg       LinkConfig
	busyUntil time.Duration
	dropped   uint64
	sentPkts  uint64
	sentBytes uint64
}

// transmit attempts to enqueue a packet of size bytes at time now and
// returns the departure time (serialisation complete).
func (x *xmitter) transmit(now time.Duration, size int) (time.Duration, bool) {
	start := now
	if x.busyUntil > start {
		start = x.busyUntil
	}
	if start-now > x.cfg.MaxBacklog {
		x.dropped++
		return 0, false
	}
	ser := time.Duration(float64(size*8) / x.cfg.RateBps * float64(time.Second))
	depart := start + ser
	x.busyUntil = depart
	x.sentPkts++
	x.sentBytes += uint64(size)
	return depart, true
}

// LinkStats summarises one link direction.
type LinkStats struct {
	SentPackets uint64
	SentBytes   uint64
	Dropped     uint64
}

type port struct {
	node Node
	up   xmitter
	down xmitter
}

// TapDir distinguishes tap events.
type TapDir int

// Tap directions.
const (
	TapSend TapDir = iota + 1
	TapDeliver
	TapDrop
)

// Tap observes packets, standing in for tcpdump.
type Tap func(at time.Duration, dir TapDir, seg tcpkit.Segment)

// Network connects nodes through access links and a zero-queueing backbone.
type Network struct {
	Eng   *Engine
	ports map[Addr]*port
	taps  []Tap
	// Unroutable counts packets addressed to unknown nodes (e.g. SYN-ACKs
	// to spoofed sources).
	Unroutable uint64
}

// NewNetwork returns an empty network on the engine.
func NewNetwork(eng *Engine) *Network {
	return &Network{Eng: eng, ports: make(map[Addr]*port)}
}

// Attach registers a node with its access link. Attaching a duplicate
// address fails.
func (n *Network) Attach(node Node, link LinkConfig) error {
	addr := node.Addr()
	if _, ok := n.ports[addr]; ok {
		return fmt.Errorf("netsim: address %v already attached", addr)
	}
	n.ports[addr] = &port{node: node, up: xmitter{cfg: link}, down: xmitter{cfg: link}}
	return nil
}

// RegisterTap adds a packet observer.
func (n *Network) RegisterTap(t Tap) { n.taps = append(n.taps, t) }

func (n *Network) tap(dir TapDir, seg tcpkit.Segment) {
	for _, t := range n.taps {
		t(n.Eng.Now(), dir, seg)
	}
}

// Send injects a segment from its source node. The packet traverses the
// source uplink, the backbone, and the destination downlink; it may be
// dropped at either queue or if the destination does not exist.
func (n *Network) Send(seg tcpkit.Segment) {
	n.SendFrom(seg.Src, seg)
}

// SendFrom injects a segment through origin's uplink regardless of the
// segment's source address — the spoofing primitive SYN flooders use.
// Replies to the spoofed source become unroutable.
func (n *Network) SendFrom(origin Addr, seg tcpkit.Segment) {
	n.tap(TapSend, seg)
	src, ok := n.ports[origin]
	if !ok {
		// Origins must be attached; treat as misconfiguration drop.
		n.Unroutable++
		n.tap(TapDrop, seg)
		return
	}
	now := n.Eng.Now()
	size := seg.WireSize()
	departUp, ok := src.up.transmit(now, size)
	if !ok {
		n.tap(TapDrop, seg)
		return
	}
	// After the uplink serialisation and both propagation legs, the packet
	// reaches the destination's downlink.
	dst, haveDst := n.ports[seg.Dst]
	if !haveDst {
		n.Unroutable++
		// Still consume uplink bandwidth; nothing arrives anywhere.
		return
	}
	arriveDown := departUp + src.up.cfg.Latency + dst.down.cfg.Latency
	n.Eng.ScheduleAt(arriveDown, func() {
		departDown, ok := dst.down.transmit(n.Eng.Now(), size)
		if !ok {
			n.tap(TapDrop, seg)
			return
		}
		n.Eng.ScheduleAt(departDown, func() {
			n.tap(TapDeliver, seg)
			dst.node.Handle(seg)
		})
	})
}

// Stats returns (uplink, downlink) statistics for a node address.
func (n *Network) Stats(addr Addr) (up, down LinkStats, ok bool) {
	p, found := n.ports[addr]
	if !found {
		return LinkStats{}, LinkStats{}, false
	}
	up = LinkStats{SentPackets: p.up.sentPkts, SentBytes: p.up.sentBytes, Dropped: p.up.dropped}
	down = LinkStats{SentPackets: p.down.sentPkts, SentBytes: p.down.sentBytes, Dropped: p.down.dropped}
	return up, down, true
}
