package netsim

import (
	"testing"
	"time"
)

// scInner exercises pointer chains and cycles through unexported fields —
// exactly what CaptureState sees when it walks real node state, where
// every interesting field is unexported and reflect marks it read-only.
type scInner struct {
	n    int
	next *scInner
}

type scState struct {
	count  int
	name   string
	buf    []int
	tags   map[string]int
	inner  *scInner
	iface  any
	shared *scInner
	alias  *scInner // same pointer as shared: identity must survive restore
	timer  Timer    // engine-owned; the copier must not walk through it
}

func newSCState() *scState {
	shared := &scInner{n: 7}
	return &scState{
		count:  1,
		name:   "orig",
		buf:    []int{1, 2, 3},
		tags:   map[string]int{"a": 1, "b": 2},
		inner:  &scInner{n: 5},
		iface:  &scInner{n: 9},
		shared: shared,
		alias:  shared,
	}
}

// TestCaptureStateRestoresMutations mutates every kind of reachable state
// — scalars, slice elements and headers, map contents and the map header,
// pointed-to structs, interface-held state — then restores and checks the
// original values are back bit-for-bit.
func TestCaptureStateRestoresMutations(t *testing.T) {
	st := newSCState()
	origBuf := st.buf
	origTags := st.tags
	snap := CaptureState(st)

	st.count = 99
	st.name = "mutated"
	st.buf[0] = -1
	st.buf = append(st.buf, 4) // may or may not reallocate; header changes either way
	st.tags["a"] = 99
	st.tags["new"] = 3
	delete(st.tags, "b")
	st.tags = map[string]int{"other": 1} // header reassignment
	st.inner.n = 50
	st.inner = &scInner{n: 51} // pointer reassignment
	st.iface.(*scInner).n = 90
	st.iface = "replaced" // interface word reassignment
	st.shared.n = 70
	st.alias = nil

	snap.Restore()
	if st.count != 1 || st.name != "orig" {
		t.Fatalf("scalars not restored: count=%d name=%q", st.count, st.name)
	}
	if len(st.buf) != 3 || &st.buf[0] != &origBuf[0] || st.buf[0] != 1 || st.buf[2] != 3 {
		t.Fatalf("slice not restored: %v (backing moved: %v)", st.buf, &st.buf[0] != &origBuf[0])
	}
	if len(st.tags) != 2 || st.tags["a"] != 1 || st.tags["b"] != 2 {
		t.Fatalf("map contents not restored: %v", st.tags)
	}
	// The header must point at the original map object again, and that
	// object's contents must be the snapshot's (Clear + reinsert).
	origTags["probe"] = 1
	if st.tags["probe"] != 1 {
		t.Fatal("map header restored to a different map object")
	}
	delete(origTags, "probe")
	if st.inner.n != 5 {
		t.Fatalf("pointed-to struct not restored: %d", st.inner.n)
	}
	inner, ok := st.iface.(*scInner)
	if !ok || inner.n != 9 {
		t.Fatalf("interface-held state not restored: %#v", st.iface)
	}
	if st.shared.n != 7 || st.alias != st.shared {
		t.Fatalf("shared pointer: n=%d identity=%v", st.shared.n, st.alias == st.shared)
	}
}

// TestCaptureStateRestoreTwice: a speculative round may roll the same
// shard back several times before the fixed point; the same snapshot must
// restore repeatedly.
func TestCaptureStateRestoreTwice(t *testing.T) {
	st := newSCState()
	snap := CaptureState(st)
	for round := 0; round < 3; round++ {
		st.count = 100 + round
		st.tags["x"] = round
		st.inner.n = round
		snap.Restore()
		if st.count != 1 || st.inner.n != 5 || len(st.tags) != 2 {
			t.Fatalf("round %d: count=%d inner=%d tags=%v", round, st.count, st.inner.n, st.tags)
		}
	}
}

// TestCaptureStateCycles: mutually referencing nodes must capture once
// each (visited set) and restore cleanly.
func TestCaptureStateCycles(t *testing.T) {
	a := &scInner{n: 1}
	b := &scInner{n: 2}
	a.next, b.next = b, a
	snap := CaptureState(a)
	a.n, b.n = 10, 20
	a.next = nil
	snap.Restore()
	if a.n != 1 || b.n != 2 || a.next != b || b.next != a {
		t.Fatalf("cycle not restored: a=%+v b=%+v", a, b)
	}
}

// TestCaptureStateSkipsTimers: Timer handles reference engine-pooled
// events; the engine snapshot owns those, so the generic copier must stop
// at the Timer value itself (restoring the handle) without capturing the
// event it points to.
func TestCaptureStateSkipsTimers(t *testing.T) {
	e := NewEngine()
	st := newSCState()
	st.timer = e.ScheduleAt(time.Millisecond, func() {})
	ev := st.timer.ev
	snap := CaptureState(st)
	stale := Timer{}
	st.timer = stale
	ev.at = 42 // would be clobbered if the copier had captured the event
	snap.Restore()
	if st.timer.ev != ev {
		t.Fatal("timer handle not restored")
	}
	if ev.at != 42 {
		t.Fatalf("copier walked through a Timer into the engine-owned event: at=%v", ev.at)
	}
}

// TestCaptureStateObservability sanity-checks the snapshot inventory the
// Regions/Maps accessors expose.
func TestCaptureStateObservability(t *testing.T) {
	st := newSCState()
	snap := CaptureState(st)
	if snap.Regions() == 0 {
		t.Error("Regions() = 0")
	}
	if snap.Maps() != 1 {
		t.Errorf("Maps() = %d, want 1", snap.Maps())
	}
}
