package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run(2 * time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling zero or fired handles must not panic (and must not touch
	// whatever event now occupies the recycled slot).
	var zero Timer
	zero.Cancel()
	ev2 := e.Schedule(0, func() {})
	e.Run(3 * time.Second)
	ev2.Cancel()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run(5 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5*time.Second, func() { fired = true })
	e.Run(4 * time.Second)
	if fired {
		t.Error("event beyond boundary fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(6 * time.Second)
	if !fired {
		t.Error("event not fired after extending run")
	}
}

func TestScheduleNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	e.Run(time.Second)
	var at time.Duration
	e.Schedule(-5*time.Second, func() { at = e.Now() })
	e.Run(2 * time.Second)
	if at != time.Second {
		t.Errorf("event at %v, want 1s (clamped)", at)
	}
}

// A cancelled event goes back to the pool without firing, and the struct
// that comes back out must not inherit the cancellation — the regression
// class behind the PR 3 cancelled-head bug.
func TestRecycledEventDoesNotInheritCancel(t *testing.T) {
	e := NewEngine()
	const n = 50
	for i := 0; i < n; i++ {
		tm := e.Schedule(time.Second, func() { t.Error("cancelled event fired") })
		tm.Cancel()
	}
	e.Run(2 * time.Second)
	if e.PoolSize() != n {
		t.Fatalf("PoolSize = %d, want %d cancelled events recycled", e.PoolSize(), n)
	}
	// Reuse the whole pool: every reused event must fire exactly once, in
	// FIFO order (stale ordering fields would scramble it, a stale
	// cancelled flag would drop it).
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(4 * time.Second)
	if len(order) != n {
		t.Fatalf("fired %d of %d reused events", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO: reused event carried stale ordering state", order)
		}
	}
}

// A Timer held across its event's firing must not cancel the pool slot's
// next occupant.
func TestStaleCancelMissesReusedEvent(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(time.Second, func() {})
	e.Run(2 * time.Second) // fires and recycles the event
	fired := false
	fresh := e.Schedule(time.Second, func() { fired = true }) // reuses the struct
	stale.Cancel()                                            // generation moved on: must be a no-op
	if _, ok := stale.At(); ok {
		t.Error("stale Timer still reports a scheduled time")
	}
	if at, ok := fresh.At(); !ok || at != 3*time.Second {
		t.Errorf("fresh Timer At = %v, %v; want 3s, true", at, ok)
	}
	e.Run(4 * time.Second)
	if !fired {
		t.Error("stale Cancel killed the reused event")
	}
}

// The steady-state timer path must not touch the allocator: one event
// cycles between the heap and the free-list.
func TestSchedulingSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(time.Microsecond, tick) }
	e.Schedule(0, tick)
	for i := 0; i < 100; i++ { // warm the pool
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %v objects/op, want 0", allocs)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// scheduling order.
func TestEngineMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run(time.Hour)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
