package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run(2 * time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling nil or fired events must not panic.
	var nilEv *Event
	nilEv.Cancel()
	ev2 := e.Schedule(0, func() {})
	e.Run(3 * time.Second)
	ev2.Cancel()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run(5 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5*time.Second, func() { fired = true })
	e.Run(4 * time.Second)
	if fired {
		t.Error("event beyond boundary fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(6 * time.Second)
	if !fired {
		t.Error("event not fired after extending run")
	}
}

func TestScheduleNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	e.Run(time.Second)
	var at time.Duration
	e.Schedule(-5*time.Second, func() { at = e.Now() })
	e.Run(2 * time.Second)
	if at != time.Second {
		t.Errorf("event at %v, want 1s (clamped)", at)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// scheduling order.
func TestEngineMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run(time.Hour)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
