// Speculative shard execution: an optimistic alternative to the
// conservative lock-step windows of shard.go that runs every shard a full
// quantum past its per-pair lookahead bound, detects the cross-shard
// packets that would have violated causality, and rolls the affected
// shards back to the quantum's opening instant and re-executes them with
// those packets injected — iterating to a fixed point before committing.
//
// The fixed point is unique and equal to the canonical serial execution:
// timestamps strictly increase along every causal chain (an uplink
// serialisation is always positive), so re-executing a shard with the
// true set of incoming packets can only change its outgoing packets at
// strictly later times, and the iteration converges from the front of the
// quantum backwards. Shards whose incoming lookahead covers the whole
// quantum cannot receive an intra-quantum packet at all (any packet sent
// at or after the quantum's start lands at least a lookahead later) and
// are exempt from snapshotting entirely.
//
// Determinism: every decision in this file — quantum bounds, the at-risk
// set, the gathered packet sets (canonically sorted), rollback choices,
// and the bailout — is a pure function of simulation state, so a
// speculative run is byte-identical to the conservative oracle, which is
// exactly what the differential harness (shard tests, the experiments
// determinism matrix, and FuzzSpeculativeEquivalence) pins.
package netsim

import (
	"bytes"
	"sort"
	"sync"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// Snapshotter is implemented by application state attached to a network —
// nodes, or auxiliary drivers registered with RegisterAuxState — that
// speculative execution must be able to roll back. SnapshotState returns
// an opaque snapshot; RestoreState rewinds the application to it. A
// snapshot may be restored more than once. Nodes that do not implement
// Snapshotter are captured generically with CaptureState (they must be
// pointers for the generic capture to see their state).
type Snapshotter interface {
	SnapshotState() any
	RestoreState(state any)
}

// reflectState is the default Snapshotter for nodes that do not bring
// their own: a generic deep capture of everything reachable from the
// node pointer.
type reflectState struct{ root any }

func (r reflectState) SnapshotState() any     { return CaptureState(r.root) }
func (r reflectState) RestoreState(state any) { state.(*StateSnap).Restore() }

// SetSpeculative switches Run between the conservative window protocol
// (default) and speculative execution. Purely an execution knob: results
// are byte-identical either way. Speculation silently falls back to the
// conservative path when any packet tap is registered (a tap would
// observe packets from rolled-back executions).
func (n *Network) SetSpeculative(on bool) { n.speculative = on }

// RegisterAuxState attaches application state that lives on addr's home
// shard but is not an attached Node — e.g. a macro-source driver — so
// speculative rollbacks rewind it together with the shard. Must be called
// before the simulation runs.
func (n *Network) RegisterAuxState(addr Addr, s Snapshotter) {
	n.aux = append(n.aux, auxState{shard: n.homeShard(addr), s: s})
}

type auxState struct {
	shard int
	s     Snapshotter
}

// Speculation tuning. The quantum is how far past the opening instant
// every shard runs per round: wide enough to amortise a snapshot over
// many events, bounded so a mis-speculation does not discard too much
// work. Both only shape performance — never results.
const (
	defaultSpecQuantumFactor = 8
	minSpecQuantum           = time.Millisecond
	defaultSpecMaxIters      = 8
)

// specQuantumFor derives the speculation quantum from the per-shard
// lookaheads: a multiple of the tightest bounded lookahead, floored so
// zero-lookahead topologies (where the conservative path degenerates to a
// serial merge) still speculate in useful strides.
func (n *Network) specQuantumFor(la []time.Duration) time.Duration {
	if n.specQuantum > 0 {
		return n.specQuantum
	}
	min := noLookahead
	for _, l := range la {
		if l != noLookahead && l < min {
			min = l
		}
	}
	if min == noLookahead {
		// No shard can receive cross-shard traffic: one unbounded round.
		return noLookahead
	}
	if min < minSpecQuantum {
		min = minSpecQuantum
	}
	if min > noLookahead/defaultSpecQuantumFactor {
		return noLookahead
	}
	return min * defaultSpecQuantumFactor
}

// specShardState is the per-shard restoration inventory, built once per
// run: the ports, stores, and application snapshotters living on each
// shard.
type specShardState struct {
	ports  []*port
	stores []*SourceStore
	apps   []Snapshotter
}

func (n *Network) initSpec() {
	if n.spec != nil {
		return
	}
	n.spec = make([]specShardState, len(n.shards))
	seen := make(map[Node]bool)
	for _, p := range n.ports {
		st := &n.spec[p.shard]
		st.ports = append(st.ports, p)
		if p.node == nil || seen[p.node] {
			continue
		}
		seen[p.node] = true
		if s, ok := p.node.(Snapshotter); ok {
			st.apps = append(st.apps, s)
		} else {
			st.apps = append(st.apps, reflectState{root: p.node})
		}
	}
	for _, s := range n.stores {
		n.spec[s.shard].stores = append(n.spec[s.shard].stores, s)
	}
	for _, a := range n.aux {
		n.spec[a.shard].apps = append(n.spec[a.shard].apps, a.s)
	}
}

// shardSnap is one shard's complete committed state: engine, per-port
// link/sequence state, per-store slot state, the shard's unroutable
// count, and every application snapshot.
type shardSnap struct {
	eng        *engineSnap
	ports      []portSnap
	stores     []storeSnap
	apps       []any
	unroutable uint64
}

type portSnap struct {
	p        *port
	up, down xmitter
	msgSeq   uint64
}

type storeSnap struct {
	s                  *SourceStore
	upBusy, downBusy   []time.Duration
	msgSeq             []uint64
	upStats, downStats LinkStats
}

func (n *Network) snapshotShard(j int) *shardSnap {
	st := &n.spec[j]
	sp := &shardSnap{
		eng:        n.shards[j].eng.snapshot(),
		ports:      make([]portSnap, 0, len(st.ports)),
		unroutable: n.unroutableShard[j],
	}
	for _, p := range st.ports {
		sp.ports = append(sp.ports, portSnap{p: p, up: p.up, down: p.down, msgSeq: p.msgSeq})
	}
	for _, s := range st.stores {
		sp.stores = append(sp.stores, storeSnap{
			s:        s,
			upBusy:   append([]time.Duration(nil), s.upBusy...),
			downBusy: append([]time.Duration(nil), s.downBusy...),
			msgSeq:   append([]uint64(nil), s.msgSeq...),
			upStats:  s.upStats, downStats: s.downStats,
		})
	}
	for _, a := range st.apps {
		sp.apps = append(sp.apps, a.SnapshotState())
	}
	return sp
}

// restoreShard rewinds shard j to sp and clears its outboxes (everything
// in them was produced by the discarded execution). Runs single-threaded
// on the coordinator.
func (n *Network) restoreShard(j int, sp *shardSnap) {
	s := n.shards[j]
	n.wastedEvents += s.eng.fired - sp.eng.fired
	n.rollbacks++
	s.eng.restore(sp.eng)
	for i := range sp.ports {
		p := sp.ports[i].p
		p.up = sp.ports[i].up
		p.down = sp.ports[i].down
		p.msgSeq = sp.ports[i].msgSeq
	}
	for i := range sp.stores {
		st := sp.stores[i].s
		copy(st.upBusy, sp.stores[i].upBusy)
		copy(st.downBusy, sp.stores[i].downBusy)
		copy(st.msgSeq, sp.stores[i].msgSeq)
		st.upStats = sp.stores[i].upStats
		st.downStats = sp.stores[i].downStats
	}
	for i, a := range n.spec[j].apps {
		a.RestoreState(sp.apps[i])
	}
	n.unroutableShard[j] = sp.unroutable
	for d := range s.outbox {
		s.outbox[d] = s.outbox[d][:0]
	}
}

// runSpeculative executes [now, until) in speculative quanta. Each round:
// exchange committed packets, snapshot the at-risk shards (those whose
// incoming lookahead is shorter than the quantum), run every shard to the
// quantum's end in parallel with outboxes held back, then compare each
// at-risk shard's gathered intra-quantum packet set against what it was
// executed with; mismatched shards are rolled back, re-fed, and re-run
// until the sets fix-point. Rounds that fail to converge within
// defaultSpecMaxIters are rolled back wholesale and re-executed with the
// serial merge — the same deterministic order, just without speculation.
func (n *Network) runSpeculative(until time.Duration) {
	la, _ := n.lookaheads()
	q := n.specQuantumFor(la)
	maxIters := n.specMaxIters
	if maxIters <= 0 {
		maxIters = defaultSpecMaxIters
	}
	n.initSpec()

	ns := len(n.shards)
	starts := make([]chan time.Duration, ns)
	var wg sync.WaitGroup
	for i, s := range n.shards {
		starts[i] = make(chan time.Duration, 1)
		//tcpz:allow nodeterm — speculative rounds run shard quanta concurrently; rollback + re-execution to the fixed point restores the conservative order, pinned by the oracle differentials
		go func(s *netShard, start <-chan time.Duration) {
			for end := range start {
				s.eng.RunBefore(end)
				wg.Done()
			}
		}(s, starts[i])
	}
	defer func() {
		for _, start := range starts {
			close(start)
		}
	}()

	snaps := make([]*shardSnap, ns)
	inputs := make([][]message, ns) // last injected set per at-risk shard
	pending := make([][]message, ns)
	atRisk := make([]bool, ns)
	rerun := make([]bool, ns)

	for {
		n.exchange()
		open, ok := n.minNext()
		if !ok || open >= until {
			return
		}
		end := until
		if q != noLookahead && q < until-open {
			end = open + q
		}
		width := end - open
		anyRisk := false
		for j := 0; j < ns; j++ {
			if la[j] != noLookahead {
				n.observeLookahead(width)
			}
			atRisk[j] = la[j] != noLookahead && la[j] < width
			if atRisk[j] {
				snaps[j] = n.snapshotShard(j)
				inputs[j] = inputs[j][:0]
				anyRisk = true
			}
		}
		if anyRisk {
			n.specWindows++
		}
		wg.Add(ns)
		for _, start := range starts {
			start <- end
		}
		wg.Wait()
		n.windows++

		committed := true
		for iter := 0; anyRisk; iter++ {
			n.gatherPending(end, atRisk, pending)
			changed := 0
			for j := 0; j < ns; j++ {
				rerun[j] = atRisk[j] && !sameMessages(pending[j], inputs[j])
				if rerun[j] {
					changed++
				}
			}
			if changed == 0 {
				break
			}
			if iter >= maxIters {
				committed = false
				break
			}
			for j := 0; j < ns; j++ {
				if !rerun[j] {
					continue
				}
				n.restoreShard(j, snaps[j])
				inputs[j] = append(inputs[j][:0], pending[j]...)
				eng := n.shards[j].eng
				eng.grow(len(inputs[j]))
				for i := range inputs[j] {
					eng.scheduleArrival(inputs[j][i])
				}
			}
			wg.Add(changed)
			for j, start := range starts {
				if rerun[j] {
					start <- end
				}
			}
			wg.Wait()
		}

		if committed {
			// Intra-quantum packets were consumed by injection; only the
			// post-quantum tail stays for the next exchange.
			for _, s := range n.shards {
				for d, box := range s.outbox {
					keep := box[:0]
					for i := range box {
						if box[i].at >= end {
							keep = append(keep, box[i])
						}
					}
					s.outbox[d] = keep
				}
			}
		} else {
			// Deterministic bailout: discard the whole round's speculation
			// and run the quantum with the serial merge. The surviving
			// outbox packets (from the exempt shards) are real committed
			// sends; runMerged's exchange delivers them.
			for j := 0; j < ns; j++ {
				if atRisk[j] {
					n.restoreShard(j, snaps[j])
				}
			}
			n.runMerged(end)
		}
	}
}

// gatherPending collects, per destination shard, the packets currently
// held in outboxes that would land inside the open quantum, canonically
// sorted by the unique (src, seq) origin key. A packet inside the quantum
// for a shard outside the at-risk set would contradict the lookahead
// bound that exempted it from snapshotting — that is an engine bug, not a
// recoverable condition.
func (n *Network) gatherPending(end time.Duration, atRisk []bool, pending [][]message) {
	for j := range pending {
		pending[j] = pending[j][:0]
	}
	for _, s := range n.shards {
		for d, box := range s.outbox {
			for i := range box {
				if box[i].at < end {
					if !atRisk[d] {
						panic("netsim: speculative quantum packet for a shard outside its lookahead bound")
					}
					pending[d] = append(pending[d], box[i])
				}
			}
		}
	}
	for j := range pending {
		ms := pending[j]
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].src != ms[b].src {
				return ms[a].src < ms[b].src
			}
			return ms[a].seq < ms[b].seq
		})
	}
}

// sameMessages reports whether two canonically sorted packet sets are
// identical in full content — not just by key, since a rolled-back sender
// can reissue the same (src, seq) with different contents.
func sameMessages(a, b []message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameMessage(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

func sameMessage(x, y *message) bool {
	return x.at == y.at && x.src == y.src && x.seq == y.seq &&
		x.size == y.size && x.dst == y.dst && x.slot == y.slot &&
		sameSegment(&x.seg, &y.seg)
}

func sameSegment(a, b *tcpkit.Segment) bool {
	return a.Src == b.Src && a.Dst == b.Dst &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Seq == b.Seq && a.Ack == b.Ack &&
		a.Flags == b.Flags && a.Window == b.Window &&
		a.PayloadLen == b.PayloadLen && a.Meta == b.Meta &&
		bytes.Equal(a.Options, b.Options)
}
