package netsim

import (
	"math"
	"sync"
	"time"
)

// noLookahead marks a shard no other shard can send to: it may run every
// window all the way to the horizon.
const noLookahead = time.Duration(math.MaxInt64)

// Run executes the simulation until the given time, firing events at or
// before it (the sharded generalisation of Engine.Run).
//
// With one shard it simply drains that engine. With several it runs a
// conservative parallel discrete-event simulation: all shards advance
// together through lock-step time windows, with cross-shard packets
// queued in per-shard outboxes during a window and exchanged at the
// barrier between windows. Each shard's window is bounded by its own
// incoming lookahead — the minimum uplink latency over the other
// port-bearing shards plus the shard's own minimum downlink latency,
// maintained incrementally by Attach — which lower-bounds how far in the
// future any cross-shard packet can land on it. On heterogeneous
// topologies this is strictly wider than the old global minimum (one
// fast link anywhere no longer throttles every shard), so barrier counts
// drop. The canonical (time, source, sequence) arrival ordering (see
// Engine.scheduleArrival) makes the execution — and therefore every
// metric — byte-identical at every shard count and every window width.
//
// When some shard's incoming lookahead is zero (a zero-latency sender
// paired with a zero-latency receiver) the windows degenerate, and Run
// falls back to a serial merge of the shard heaps that preserves the same
// canonical order.
func (n *Network) Run(until time.Duration) {
	if len(n.shards) == 1 {
		n.Eng.Run(until)
		return
	}
	if n.speculative && len(n.taps) == 0 {
		// Optimistic execution (see spec.go). Taps force the conservative
		// path: they would observe packets from rolled-back executions.
		n.runSpeculative(until)
	} else if la, ok := n.lookaheads(); ok {
		n.runWindows(until, la)
	} else {
		n.runMerged(until)
	}
	// Events at exactly `until` cannot spawn cross-shard work inside the
	// horizon (arrivals land strictly later), so each shard drains them —
	// and advances its clock to until — independently.
	n.exchange()
	for _, s := range n.shards {
		s.eng.Run(until)
	}
	n.exchange()
}

// lookaheads returns each shard's incoming lookahead — how far past the
// window's opening instant shard j may safely run — and whether windowed
// execution is possible at all (false when any shard's bound is zero).
// With globalLookaheadOnly set, every shard gets the legacy global
// minimum (smallest uplink plus smallest downlink latency over all
// ports), the width the pre-adaptive scheduler used.
func (n *Network) lookaheads() ([]time.Duration, bool) {
	ns := len(n.shards)
	la := make([]time.Duration, ns)
	if n.globalLookaheadOnly {
		g := noLookahead
		minUp, minDown := noLookahead, noLookahead
		for i := 0; i < ns; i++ {
			if !n.hasPort[i] {
				continue
			}
			if n.minUp[i] < minUp {
				minUp = n.minUp[i]
			}
			if n.minDown[i] < minDown {
				minDown = n.minDown[i]
			}
		}
		if minUp != noLookahead {
			g = minUp + minDown
		}
		for j := range la {
			la[j] = g
		}
		return la, g != 0
	}
	ok := true
	for j := 0; j < ns; j++ {
		// The tightest sender elsewhere bounds what can land here.
		up := noLookahead
		for i := 0; i < ns; i++ {
			if i != j && n.hasPort[i] && n.minUp[i] < up {
				up = n.minUp[i]
			}
		}
		if up == noLookahead || !n.hasPort[j] {
			la[j] = noLookahead
			continue
		}
		la[j] = up + n.minDown[j]
		if la[j] == 0 {
			ok = false
		}
	}
	return la, ok
}

// exchange flushes every shard's outboxes into the destination engines.
// Runs single-threaded between windows; the barrier orders it with the
// shard goroutines. The outbox slices and the destination heaps are
// pre-sized per batch and reused across windows, so a steady cross-shard
// flow settles into zero allocations here too.
func (n *Network) exchange() {
	for _, s := range n.shards {
		for d, box := range s.outbox {
			if len(box) == 0 {
				continue
			}
			deng := n.shards[d].eng
			deng.grow(len(box))
			for i := range box {
				deng.scheduleArrival(box[i])
			}
			s.outbox[d] = box[:0]
		}
	}
}

// minNext returns the earliest live event time across all shards.
func (n *Network) minNext() (time.Duration, bool) {
	var m time.Duration
	found := false
	for _, s := range n.shards {
		if at, ok := s.eng.NextEventAt(); ok && (!found || at < m) {
			m, found = at, true
		}
	}
	return m, found
}

// runWindows is the parallel path: persistent per-shard workers fire the
// events of one window concurrently, then a barrier exchanges cross-shard
// packets before the next window opens. Windows start at the earliest
// pending event, so idle stretches cost one barrier, not many; each shard
// runs to its own end — the window start plus its incoming lookahead —
// so shards behind slow links burn through more events per barrier.
func (n *Network) runWindows(until time.Duration, la []time.Duration) {
	if n.barrierWait == nil {
		n.barrierWait = make([]time.Duration, len(n.shards))
	}
	starts := make([]chan time.Duration, len(n.shards))
	// finish[i] is shard i's wall-clock completion of the current window;
	// written by the shard worker, read by the coordinator after the
	// barrier (ordered by wg), and folded into barrierWait as the gap to
	// the window's slowest shard.
	finish := make([]time.Time, len(n.shards))
	var wg sync.WaitGroup
	for i, s := range n.shards {
		starts[i] = make(chan time.Duration, 1)
		//tcpz:allow nodeterm — shard workers advance in lock-step windows; the wg barrier fully orders cross-shard state, pinned by TestShardDeterminismMatrix
		go func(i int, s *netShard, start <-chan time.Duration) {
			for end := range start {
				s.eng.RunBefore(end)
				//tcpz:allow nodeterm — wall clock feeds only ShardStats barrier-wait observability, never simulation state or sink bytes
				finish[i] = time.Now()
				wg.Done()
			}
		}(i, s, starts[i])
	}
	for {
		n.exchange()
		m, ok := n.minNext()
		if !ok || m >= until {
			break
		}
		wg.Add(len(n.shards))
		for j, start := range starts {
			end := until
			if la[j] != noLookahead {
				if la[j] < until-m {
					end = m + la[j]
				}
				// Only bounded shards feed the lookahead stats: an
				// unreachable shard's horizon-wide window says nothing
				// about the adaptive widening.
				n.observeLookahead(end - m)
			}
			start <- end
		}
		wg.Wait()
		n.windows++
		var last time.Time
		for _, at := range finish {
			if at.After(last) {
				last = at
			}
		}
		for i, at := range finish {
			n.barrierWait[i] += last.Sub(at)
		}
	}
	for _, start := range starts {
		close(start)
	}
}

// observeLookahead folds one applied window width into the ShardStats
// min/mean/max — determinism-neutral observability for the adaptive
// widening.
func (n *Network) observeLookahead(w time.Duration) {
	if n.lookN == 0 || w < n.lookMin {
		n.lookMin = w
	}
	if w > n.lookMax {
		n.lookMax = w
	}
	n.lookSum += w
	n.lookN++
}

// runMerged is the zero-lookahead fallback: a serial merge that always
// fires the globally earliest event. Same-time events on different shards
// belong to different nodes and commute, so picking the lowest shard first
// is as canonical as any rule.
func (n *Network) runMerged(until time.Duration) {
	for {
		n.exchange()
		var best *netShard
		var bestAt time.Duration
		for _, s := range n.shards {
			if at, ok := s.eng.NextEventAt(); ok && (best == nil || at < bestAt) {
				best, bestAt = s, at
			}
		}
		if best == nil || bestAt >= until {
			return
		}
		best.eng.Step()
	}
}
