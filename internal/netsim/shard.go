package netsim

import (
	"sync"
	"time"
)

// Run executes the simulation until the given time, firing events at or
// before it (the sharded generalisation of Engine.Run).
//
// With one shard it simply drains that engine. With several it runs a
// conservative parallel discrete-event simulation: all shards advance
// together through lock-step time windows no wider than the lookahead —
// the minimum uplink-plus-downlink propagation latency, which lower-bounds
// how far in the future any cross-shard packet can land. Packets crossing
// shards are queued in per-shard outboxes during a window and exchanged at
// the barrier between windows; the canonical (time, source, sequence)
// arrival ordering (see Engine.ScheduleArrivalAt) makes the execution —
// and therefore every metric — byte-identical at every shard count.
//
// When the lookahead is zero (some link has no propagation delay) the
// windows degenerate, and Run falls back to a serial merge of the shard
// heaps that preserves the same canonical order.
func (n *Network) Run(until time.Duration) {
	if len(n.shards) == 1 {
		n.Eng.Run(until)
		return
	}
	if w := n.lookahead(); w > 0 {
		n.runWindows(until, w)
	} else {
		n.runMerged(until)
	}
	// Events at exactly `until` cannot spawn cross-shard work inside the
	// horizon (arrivals land strictly later), so each shard drains them —
	// and advances its clock to until — independently.
	n.exchange()
	for _, s := range n.shards {
		s.eng.Run(until)
	}
	n.exchange()
}

// lookahead returns the minimum time a packet needs to reach another
// shard: the smallest uplink latency plus the smallest downlink latency of
// any attached port. Serialisation time only adds to it.
func (n *Network) lookahead() time.Duration {
	first := true
	var minUp, minDown time.Duration
	for _, p := range n.ports {
		if first || p.up.cfg.Latency < minUp {
			minUp = p.up.cfg.Latency
		}
		if first || p.down.cfg.Latency < minDown {
			minDown = p.down.cfg.Latency
		}
		first = false
	}
	if first {
		return 0
	}
	return minUp + minDown
}

// exchange flushes every shard's outboxes into the destination engines.
// Runs single-threaded between windows; the barrier orders it with the
// shard goroutines.
func (n *Network) exchange() {
	for _, s := range n.shards {
		for d, box := range s.outbox {
			if len(box) == 0 {
				continue
			}
			deng := n.shards[d].eng
			for i := range box {
				n.scheduleArrival(deng, box[i])
			}
			s.outbox[d] = box[:0]
		}
	}
}

// minNext returns the earliest live event time across all shards.
func (n *Network) minNext() (time.Duration, bool) {
	var m time.Duration
	found := false
	for _, s := range n.shards {
		if at, ok := s.eng.NextEventAt(); ok && (!found || at < m) {
			m, found = at, true
		}
	}
	return m, found
}

// runWindows is the parallel path: persistent per-shard workers fire the
// events of one window concurrently, then a barrier exchanges cross-shard
// packets before the next window opens. Windows start at the earliest
// pending event, so idle stretches cost one barrier, not many.
func (n *Network) runWindows(until time.Duration, w time.Duration) {
	if n.barrierWait == nil {
		n.barrierWait = make([]time.Duration, len(n.shards))
	}
	starts := make([]chan time.Duration, len(n.shards))
	// finish[i] is shard i's wall-clock completion of the current window;
	// written by the shard worker, read by the coordinator after the
	// barrier (ordered by wg), and folded into barrierWait as the gap to
	// the window's slowest shard.
	finish := make([]time.Time, len(n.shards))
	var wg sync.WaitGroup
	for i, s := range n.shards {
		starts[i] = make(chan time.Duration, 1)
		go func(i int, s *netShard, start <-chan time.Duration) {
			for end := range start {
				s.eng.RunBefore(end)
				finish[i] = time.Now()
				wg.Done()
			}
		}(i, s, starts[i])
	}
	for {
		n.exchange()
		m, ok := n.minNext()
		if !ok || m >= until {
			break
		}
		end := m + w
		if end > until {
			end = until
		}
		wg.Add(len(n.shards))
		for _, start := range starts {
			start <- end
		}
		wg.Wait()
		n.windows++
		var last time.Time
		for _, at := range finish {
			if at.After(last) {
				last = at
			}
		}
		for i, at := range finish {
			n.barrierWait[i] += last.Sub(at)
		}
	}
	for _, start := range starts {
		close(start)
	}
}

// runMerged is the zero-lookahead fallback: a serial merge that always
// fires the globally earliest event. Same-time events on different shards
// belong to different nodes and commute, so picking the lowest shard first
// is as canonical as any rule.
func (n *Network) runMerged(until time.Duration) {
	for {
		n.exchange()
		var best *netShard
		var bestAt time.Duration
		for _, s := range n.shards {
			if at, ok := s.eng.NextEventAt(); ok && (best == nil || at < bestAt) {
				best, bestAt = s, at
			}
		}
		if best == nil || bestAt >= until {
			return
		}
		best.eng.Step()
	}
}
