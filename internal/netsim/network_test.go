package netsim

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

type sink struct {
	addr     Addr
	received []tcpkit.Segment
	at       []time.Duration
	eng      *Engine
}

func (s *sink) Addr() Addr { return s.addr }
func (s *sink) Handle(seg tcpkit.Segment) {
	s.received = append(s.received, seg)
	s.at = append(s.at, s.eng.Now())
}

func twoNodeNet(t *testing.T, link LinkConfig) (*Network, *sink, *sink) {
	t.Helper()
	eng := NewEngine()
	net := NewNetwork(eng)
	a := &sink{addr: Addr{10, 0, 0, 1}, eng: eng}
	b := &sink{addr: Addr{10, 0, 0, 2}, eng: eng}
	if err := net.Attach(a, link); err != nil {
		t.Fatalf("Attach(a): %v", err)
	}
	if err := net.Attach(b, link); err != nil {
		t.Fatalf("Attach(b): %v", err)
	}
	return net, a, b
}

func seg(src, dst Addr, payload int) tcpkit.Segment {
	return tcpkit.Segment{Src: src, Dst: dst, SrcPort: 1000, DstPort: 80, PayloadLen: payload}
}

func TestDeliveryLatency(t *testing.T) {
	link := LinkConfig{RateBps: 8e6, Latency: 10 * time.Millisecond, MaxBacklog: time.Second}
	net, a, b := twoNodeNet(t, link)
	// 1000-byte payload → 1040 wire bytes → 8320 bits → 1.04 ms per hop
	// serialisation, 20 ms propagation.
	net.Send(seg(a.addr, b.addr, 1000))
	net.Eng.Run(time.Second)
	if len(b.received) != 1 {
		t.Fatalf("received %d segments, want 1", len(b.received))
	}
	want := 2*1040*time.Microsecond + 20*time.Millisecond
	got := b.at[0]
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("delivered at %v, want ≈ %v", got, want)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	// Rate 1 Mbps: a 125-byte packet (1000 bits) takes 1 ms to serialise;
	// ten back-to-back packets finish uplink at 10 ms.
	link := LinkConfig{RateBps: 1e6, Latency: 0, MaxBacklog: time.Second}
	net, a, b := twoNodeNet(t, link)
	for i := 0; i < 10; i++ {
		net.Send(seg(a.addr, b.addr, 125-40))
	}
	net.Eng.Run(time.Second)
	if len(b.received) != 10 {
		t.Fatalf("received %d segments, want 10", len(b.received))
	}
	last := b.at[len(b.at)-1]
	want := 11 * time.Millisecond // 10 ms uplink drain + 1 ms downlink for the last
	if last < want-time.Millisecond || last > want+2*time.Millisecond {
		t.Errorf("last delivery at %v, want ≈ %v", last, want)
	}
}

func TestDropTailOnBacklog(t *testing.T) {
	link := LinkConfig{RateBps: 1e6, Latency: 0, MaxBacklog: 5 * time.Millisecond}
	net, a, b := twoNodeNet(t, link)
	// Each 125-byte packet costs 1 ms of uplink; with 5 ms max backlog
	// only ~6 of 100 survive.
	for i := 0; i < 100; i++ {
		net.Send(seg(a.addr, b.addr, 125-40))
	}
	net.Eng.Run(time.Second)
	up, _, ok := net.Stats(a.addr)
	if !ok {
		t.Fatal("Stats missing")
	}
	if up.Dropped == 0 {
		t.Error("no uplink drops under overload")
	}
	if got := len(b.received); got > 10 {
		t.Errorf("received %d segments, want ≤ 10 under 5ms backlog", got)
	}
	if up.SentPackets+up.Dropped != 100 {
		t.Errorf("sent %d + dropped %d ≠ 100", up.SentPackets, up.Dropped)
	}
}

func TestUnroutableDestination(t *testing.T) {
	link := DefaultHostLink()
	net, a, _ := twoNodeNet(t, link)
	net.Send(seg(a.addr, Addr{9, 9, 9, 9}, 0))
	net.Eng.Run(time.Second)
	if net.Unroutable() != 1 {
		t.Errorf("Unroutable = %d, want 1", net.Unroutable())
	}
}

func TestUnattachedSourceDropped(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng)
	b := &sink{addr: Addr{10, 0, 0, 2}, eng: eng}
	if err := net.Attach(b, DefaultHostLink()); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	net.Send(seg(Addr{1, 1, 1, 1}, b.addr, 0))
	eng.Run(time.Second)
	if len(b.received) != 0 {
		t.Error("segment from unattached source delivered")
	}
	if net.Unroutable() != 1 {
		t.Errorf("Unroutable = %d, want 1", net.Unroutable())
	}
}

func TestDuplicateAttachFails(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng)
	a := &sink{addr: Addr{10, 0, 0, 1}, eng: eng}
	if err := net.Attach(a, DefaultHostLink()); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := net.Attach(a, DefaultHostLink()); err == nil {
		t.Error("duplicate Attach succeeded")
	}
}

func TestTapsObserveTraffic(t *testing.T) {
	net, a, b := twoNodeNet(t, DefaultHostLink())
	var sends, delivers int
	net.RegisterTap(func(_ time.Duration, dir TapDir, _ tcpkit.Segment) {
		switch dir {
		case TapSend:
			sends++
		case TapDeliver:
			delivers++
		}
	})
	net.Send(seg(a.addr, b.addr, 100))
	net.Eng.Run(time.Second)
	if sends != 1 || delivers != 1 {
		t.Errorf("sends=%d delivers=%d, want 1/1", sends, delivers)
	}
}

func TestBidirectionalIndependentLinks(t *testing.T) {
	net, a, b := twoNodeNet(t, LinkConfig{RateBps: 1e6, Latency: 0, MaxBacklog: time.Second})
	// Saturate a→b; b→a must be unaffected.
	for i := 0; i < 50; i++ {
		net.Send(seg(a.addr, b.addr, 1000))
	}
	net.Send(seg(b.addr, a.addr, 0))
	net.Eng.Run(10 * time.Second)
	if len(a.received) != 1 {
		t.Fatalf("reverse segment not delivered")
	}
	if a.at[0] > 10*time.Millisecond {
		t.Errorf("reverse delivery at %v, should not queue behind forward traffic", a.at[0])
	}
}

func TestSendFromSpoofing(t *testing.T) {
	net, a, b := twoNodeNet(t, DefaultHostLink())
	// a emits a packet claiming to be from 99.9.9.9; it must be delivered
	// to b, and b's reply to the spoofed source must become unroutable.
	spoofed := seg(Addr{99, 9, 9, 9}, b.addr, 0)
	net.SendFrom(a.addr, spoofed)
	net.Eng.Run(time.Second)
	if len(b.received) != 1 {
		t.Fatalf("spoofed packet not delivered: %d", len(b.received))
	}
	reply := seg(b.addr, Addr{99, 9, 9, 9}, 0)
	net.Send(reply)
	net.Eng.Run(2 * time.Second)
	if net.Unroutable() != 1 {
		t.Errorf("Unroutable = %d, want 1", net.Unroutable())
	}
	// The spoofed emission consumed a's uplink.
	up, _, _ := net.Stats(a.addr)
	if up.SentPackets != 1 {
		t.Errorf("spoofer uplink packets = %d, want 1", up.SentPackets)
	}
}
