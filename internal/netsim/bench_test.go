package netsim

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// BenchmarkEngineScheduling measures the raw timer path: schedule a
// callback, fire it, schedule the next — the pattern every Poisson
// generator, RTO and idle timeout in the simulators follows. allocs/op is
// the headline number: with the event free-list it should be ~0 in steady
// state (the closure itself is the only allocation left, and a method
// value amortises even that).
func BenchmarkEngineScheduling(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		e.Schedule(time.Microsecond, tick)
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	if n == 0 {
		b.Fatal("no events fired")
	}
}

// benchSink counts deliveries.
type benchSink struct {
	addr Addr
	got  int
}

func (s *benchSink) Addr() Addr                { return s.addr }
func (s *benchSink) Handle(seg tcpkit.Segment) { s.got++ }

// BenchmarkPacketPath measures the steady-state flood path end to end:
// one spoofed-source SYN injected per iteration through SendFrom, the
// uplink leg, the arrival event, the downlink leg, and the delivery into
// the destination node — the exact per-packet work a SYN flood multiplies
// by hundreds of thousands. The pre-refactor engine paid two event
// allocations plus two closures per packet here; the pooled, kind-
// dispatched engine should be allocation-free once warm.
func BenchmarkPacketPath(b *testing.B) {
	eng := NewEngine()
	net := NewNetwork(eng)
	src := &benchSink{addr: Addr{10, 0, 0, 1}}
	dst := &benchSink{addr: Addr{10, 0, 0, 2}}
	// A fat, deep link so nothing drops and serialisation stays tiny.
	link := LinkConfig{RateBps: 1e12, Latency: time.Millisecond, MaxBacklog: time.Hour}
	if err := net.Attach(src, link); err != nil {
		b.Fatal(err)
	}
	if err := net.Attach(dst, link); err != nil {
		b.Fatal(err)
	}
	seg := tcpkit.Segment{
		Src: src.addr, Dst: dst.addr,
		SrcPort: 1234, DstPort: 80,
		Flags: tcpkit.FlagSYN, Window: 65535,
	}
	// Warm the pool and the link state.
	net.SendFrom(src.addr, seg)
	eng.Run(eng.Now() + time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SendFrom(src.addr, seg)
		// Drain: the arrival and delivery events both fire here.
		for eng.Step() {
		}
	}
	b.StopTimer()
	if dst.got < b.N {
		b.Fatalf("delivered %d of %d packets", dst.got, b.N)
	}
}
