package netsim

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// SourceAddr returns the address of source i in a population based at
// base: the low octet cycles over 200 hosts, the next two octets carry
// the higher digits. For i < 51200 this is exactly the botnet's historic
// address derivation, so per-bot and macro populations with the same
// base agree address-for-address; beyond it the second octet extends the
// range instead of wrapping into collisions.
func SourceAddr(base Addr, i int) Addr {
	addr := base
	addr[3] += byte(i % 200)
	addr[2] += byte((i / 200) % 256)
	addr[1] += byte(i / 51200)
	return addr
}

// MaxSourceSlots is the largest population SourceAddr maps injectively:
// 200 low-octet hosts × 256 × 256 higher digits.
const MaxSourceSlots = 200 * 256 * 256

// SourceStore is a struct-of-arrays population of homogeneous attack
// sources sharing one access-link configuration: per-source state is a
// few flat parallel slices (uplink/downlink busy-until, packet sequence)
// instead of a port object, node object, and timer per source, so a
// million-source flood costs tens of megabytes instead of gigabytes.
//
// The store occupies a single shard (the base address's home shard) and
// is reached through the normal delivery path: packets addressed to any
// source in the range resolve to the store's virtual port, run the
// per-slot downlink leg, and are handed to the store's handler with the
// slot index. Outbound packets go through SendAt, which mirrors
// Network.SendFrom exactly — same tap order, same drop points, same
// canonical (address, sequence) arrival key — so a store-backed source
// is byte-indistinguishable on the wire from an attached port.
type SourceStore struct {
	n       *Network
	base    Addr
	count   int
	link    LinkConfig
	shard   int
	handler func(slot int32, seg tcpkit.Segment)
	// vport is the store's standin in the routing table: a port whose
	// store field redirects the downlink and delivery legs to per-slot
	// state. Its xmitters are never used.
	vport *port

	// Parallel per-slot state, indexed by source slot.
	upBusy   []time.Duration
	downBusy []time.Duration
	msgSeq   []uint64

	// Aggregate link counters (per-direction totals over all slots).
	upStats   LinkStats
	downStats LinkStats
}

// AttachSources registers a population of count sources based at base,
// all sharing the given access link, delivering inbound segments to
// handler(slot, seg). Like Attach it must be called before the
// simulation runs. The population's addresses must not collide with any
// attached port; distinct stores must use distinct first octets.
func (n *Network) AttachSources(count int, base Addr, link LinkConfig, handler func(slot int32, seg tcpkit.Segment)) (*SourceStore, error) {
	if count < 1 || count > MaxSourceSlots {
		return nil, fmt.Errorf("netsim: source count %d out of range [1,%d]", count, MaxSourceSlots)
	}
	if handler == nil {
		return nil, fmt.Errorf("netsim: source store needs a handler")
	}
	if link.RateBps <= 0 {
		return nil, fmt.Errorf("netsim: source store link needs a positive rate")
	}
	s := &SourceStore{
		n:        n,
		base:     base,
		count:    count,
		link:     link,
		handler:  handler,
		upBusy:   make([]time.Duration, count),
		downBusy: make([]time.Duration, count),
		msgSeq:   make([]uint64, count),
	}
	for addr := range n.ports {
		if _, ok := s.slotOf(addr); ok {
			return nil, fmt.Errorf("netsim: attached address %v falls inside macro source range", addr)
		}
	}
	for _, other := range n.stores {
		// Exact overlap checks over millions of slots are pointless;
		// first-octet separation is the documented contract.
		if other.base[0] == base[0] {
			return nil, fmt.Errorf("netsim: macro source ranges %v and %v share first octet; use distinct prefixes", other.base, base)
		}
	}
	s.shard = n.homeShard(base)
	s.vport = &port{shard: s.shard, store: s}
	n.stores = append(n.stores, s)
	// Fold the shared link into the shard's latency minima exactly as
	// Attach does: the store's slots are senders and receivers on this
	// shard for lookahead purposes.
	if !n.hasPort[s.shard] {
		n.hasPort[s.shard] = true
		n.minUp[s.shard] = link.Latency
		n.minDown[s.shard] = link.Latency
	} else {
		if link.Latency < n.minUp[s.shard] {
			n.minUp[s.shard] = link.Latency
		}
		if link.Latency < n.minDown[s.shard] {
			n.minDown[s.shard] = link.Latency
		}
	}
	return s, nil
}

// slotOf inverts SourceAddr over this store's range.
func (s *SourceStore) slotOf(addr Addr) (int32, bool) {
	if addr[0] != s.base[0] {
		return 0, false
	}
	d3 := int(addr[3]-s.base[3]) & 0xff
	if d3 >= 200 {
		return 0, false
	}
	d2 := int(addr[2]-s.base[2]) & 0xff
	d1 := int(addr[1]-s.base[1]) & 0xff
	i := d3 + 200*d2 + 51200*d1
	if i >= s.count {
		return 0, false
	}
	return int32(i), true
}

// Count returns the population size.
func (s *SourceStore) Count() int { return s.count }

// Base returns the population's base address.
func (s *SourceStore) Base() Addr { return s.base }

// Addr returns slot i's address.
func (s *SourceStore) Addr(slot int32) Addr { return SourceAddr(s.base, int(slot)) }

// Engine returns the engine of the shard the store lives on — the engine
// the macro driver must schedule its batch events against.
func (s *SourceStore) Engine() *Engine { return s.n.shards[s.shard].eng }

// Contains reports whether addr belongs to this population — the
// predicate server-side metrics aggregate attacker establishments by.
func (s *SourceStore) Contains(addr Addr) bool {
	_, ok := s.slotOf(addr)
	return ok
}

// Stats returns the aggregate (uplink, downlink) counters over all slots.
func (s *SourceStore) Stats() (up, down LinkStats) { return s.upStats, s.downStats }

// SendAt injects a segment through slot's uplink at simulated time at
// (at or after the store shard's current time — the macro driver emits at
// virtual per-source times inside a batch event). The path mirrors
// Network.SendFrom leg for leg: tap, uplink transmit with drop-tail
// check, destination resolution, canonical arrival key.
//
// A future at defers the send as an engine event at that time. The
// per-slot busy-until accumulators assume time-ordered transmissions —
// the same assumption every attached port's xmitter makes — and a batch
// event emitting hundreds of milliseconds into the virtual future while
// reply-driven sends land at real times in between would interleave them
// out of order, inflating apparent queue delay into spurious drop-tail
// drops. Deferring restores the per-slot time ordering, and makes the
// cross-shard causality argument the trivial one: every transmit starts
// at its shard's current time, exactly like SendFrom.
func (s *SourceStore) SendAt(slot int32, at time.Duration, seg tcpkit.Segment) {
	n := s.n
	sh := n.shards[s.shard]
	if now := sh.eng.Now(); at > now {
		sh.eng.ScheduleAt(at, func() { s.SendAt(slot, at, seg) })
		return
	} else if at < now {
		at = now
	}
	n.tap(at, TapSend, seg)
	size := seg.WireSize()
	departUp, ok := s.upTransmit(slot, at, size)
	if !ok {
		n.tap(at, TapDrop, seg)
		return
	}
	dst, dslot := n.lookup(seg.Dst)
	if dst == nil {
		n.unroutableShard[s.shard]++
		return
	}
	m := message{
		at:   departUp + s.link.Latency + dst.downLatency(),
		src:  addrKey(SourceAddr(s.base, int(slot))),
		seq:  s.msgSeq[slot],
		size: size,
		dst:  dst,
		slot: dslot,
		seg:  seg,
	}
	s.msgSeq[slot]++
	if dst.shard == s.shard {
		sh.eng.scheduleArrival(m)
	} else {
		sh.outbox[dst.shard] = append(sh.outbox[dst.shard], m)
	}
}

// upTransmit is xmitter.transmit over the flat per-slot uplink state.
func (s *SourceStore) upTransmit(slot int32, now time.Duration, size int) (time.Duration, bool) {
	start := now
	if b := s.upBusy[slot]; b > start {
		start = b
	}
	if start-now > s.link.MaxBacklog {
		s.upStats.Dropped++
		return 0, false
	}
	ser := time.Duration(float64(size*8) / s.link.RateBps * float64(time.Second))
	depart := start + ser
	s.upBusy[slot] = depart
	s.upStats.SentPackets++
	s.upStats.SentBytes += uint64(size)
	return depart, true
}

// downTransmit is the per-slot downlink leg, run by runArrival on the
// store's home shard.
func (s *SourceStore) downTransmit(slot int32, now time.Duration, size int) (time.Duration, bool) {
	start := now
	if b := s.downBusy[slot]; b > start {
		start = b
	}
	if start-now > s.link.MaxBacklog {
		s.downStats.Dropped++
		return 0, false
	}
	ser := time.Duration(float64(size*8) / s.link.RateBps * float64(time.Second))
	depart := start + ser
	s.downBusy[slot] = depart
	s.downStats.SentPackets++
	s.downStats.SentBytes += uint64(size)
	return depart, true
}
