package netsim

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// speculate returns an echoMeshRun tuner enabling speculative execution
// with an optional quantum and fixed-point iteration override (0 keeps
// the derived defaults).
func speculate(quantum time.Duration, maxIters int) func(*Network) {
	return func(n *Network) {
		n.SetSpeculative(true)
		n.specQuantum = quantum
		n.specMaxIters = maxIters
	}
}

// TestSpeculativeEchoMeshByteIdentical is the headline differential: the
// speculative run of the echo mesh is byte-identical to the serial oracle
// at every shard count, and actually speculated (windows ran past the
// lookahead bound) rather than degenerating to the conservative path.
func TestSpeculativeEchoMeshByteIdentical(t *testing.T) {
	link := LinkConfig{RateBps: 2e6, Latency: 2 * time.Millisecond, MaxBacklog: 20 * time.Millisecond}
	want := echoFingerprint(t, 1, 6, link, 3*time.Second)
	for _, shards := range []int{2, 3, 4, 8} {
		got, st := echoMeshRun(t, shards, 6, link, 3*time.Second, 100, speculate(0, 0))
		if got != want {
			t.Errorf("speculative shards=%d diverged from serial oracle:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
		if st.SpeculativeWindows == 0 {
			t.Errorf("shards=%d: SpeculativeWindows = 0, speculation never engaged", shards)
		}
	}
}

// TestSpeculativeStragglerRollbackEquivalence pins the rollback machinery
// itself: with near-zero cross-shard latency every quantum is invaded by
// straggler packets, so the run must roll shards back — and still land on
// the oracle's exact bytes.
func TestSpeculativeStragglerRollbackEquivalence(t *testing.T) {
	link := LinkConfig{RateBps: 5e6, Latency: 50 * time.Microsecond, MaxBacklog: 10 * time.Millisecond}
	want := echoFingerprint(t, 1, 6, link, 2*time.Second)
	got, st := echoMeshRun(t, 4, 6, link, 2*time.Second, 100, speculate(0, 0))
	if got != want {
		t.Fatalf("straggler-heavy speculative run diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
	if st.Rollbacks == 0 {
		t.Error("Rollbacks = 0; fixture failed to provoke mis-speculation")
	}
	if st.WastedEvents == 0 {
		t.Error("WastedEvents = 0 despite rollbacks")
	}
	if st.SpeculativeWindows == 0 {
		t.Error("SpeculativeWindows = 0")
	}
}

// TestSpeculativeZeroLatencyMatchesOracle covers the topology where the
// conservative path has no lookahead at all and degenerates to a serial
// merge: speculation must still run (floored quantum) and agree.
func TestSpeculativeZeroLatencyMatchesOracle(t *testing.T) {
	link := LinkConfig{RateBps: 5e6, Latency: 0, MaxBacklog: 10 * time.Millisecond}
	want := echoFingerprint(t, 1, 4, link, 2*time.Second)
	got, st := echoMeshRun(t, 4, 4, link, 2*time.Second, 100, speculate(0, 0))
	if got != want {
		t.Fatalf("zero-latency speculative run diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
	if st.SpeculativeWindows == 0 {
		t.Error("SpeculativeWindows = 0 on a zero-lookahead topology")
	}
}

// TestSpeculativeBailoutMatchesOracle forces the fixed-point iteration cap
// down to one with a deliberately oversized quantum, so rounds that do not
// converge immediately take the bailout path (restore everything, advance
// the quantum under the serial merge) — which must be invisible in the
// results.
func TestSpeculativeBailoutMatchesOracle(t *testing.T) {
	link := LinkConfig{RateBps: 5e6, Latency: 50 * time.Microsecond, MaxBacklog: 10 * time.Millisecond}
	want := echoFingerprint(t, 1, 6, link, 2*time.Second)
	got, st := echoMeshRun(t, 4, 6, link, 2*time.Second, 100, speculate(50*time.Millisecond, 1))
	if got != want {
		t.Fatalf("bailout-heavy speculative run diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
	if st.SpeculativeWindows == 0 {
		t.Error("SpeculativeWindows = 0")
	}
}

// TestSpeculativeTapsFallBackConservative: a registered tap would observe
// packets from executions that later roll back, so Run must silently take
// the conservative path — identical results, zero speculation counters.
func TestSpeculativeTapsFallBackConservative(t *testing.T) {
	link := LinkConfig{RateBps: 2e6, Latency: 2 * time.Millisecond, MaxBacklog: 20 * time.Millisecond}
	want := echoFingerprint(t, 1, 6, link, 2*time.Second)
	got, st := echoMeshRun(t, 4, 6, link, 2*time.Second, 100, func(n *Network) {
		n.SetSpeculative(true)
		n.RegisterTap(func(time.Duration, TapDir, tcpkit.Segment) {})
	})
	if got != want {
		t.Fatalf("tapped speculative run diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
	if st.SpeculativeWindows != 0 || st.Rollbacks != 0 {
		t.Errorf("taps registered but speculation engaged: windows=%d rollbacks=%d",
			st.SpeculativeWindows, st.Rollbacks)
	}
}

// TestSpeculativeStatsZeroOnConservative pins the ShardStats contract:
// the speculation counters are exactly zero on conservative runs.
func TestSpeculativeStatsZeroOnConservative(t *testing.T) {
	link := LinkConfig{RateBps: 2e6, Latency: 2 * time.Millisecond, MaxBacklog: 20 * time.Millisecond}
	_, st := echoMeshRun(t, 4, 6, link, time.Second, 100, nil)
	if st.Rollbacks != 0 || st.SpeculativeWindows != 0 || st.WastedEvents != 0 {
		t.Errorf("conservative run reported speculation: rollbacks=%d windows=%d wasted=%d",
			st.Rollbacks, st.SpeculativeWindows, st.WastedEvents)
	}
}

// FuzzSpeculativeEquivalence drives the differential harness over random
// topologies and tunings: any divergence between a speculative run and its
// serial oracle — or a crash in the snapshot/rollback machinery — is a
// finding. The checked-in corpus seeds the interesting regimes: healthy
// lookahead, straggler-heavy microsecond latency, zero lookahead, and a
// forced tiny quantum.
func FuzzSpeculativeEquivalence(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint32(2000), uint32(0), int64(100))
	f.Add(uint8(4), uint8(6), uint32(50), uint32(0), int64(7))
	f.Add(uint8(3), uint8(5), uint32(0), uint32(500), int64(42))
	f.Add(uint8(8), uint8(8), uint32(800), uint32(3000), int64(1))
	f.Fuzz(func(t *testing.T, shards, nodes uint8, latencyUs, quantumUs uint32, seed int64) {
		ns := 2 + int(shards)%7                                   // 2..8 shards
		nn := 2 + int(nodes)%7                                    // 2..8 nodes
		lat := time.Duration(latencyUs%20_000) * time.Microsecond // 0..20ms
		q := time.Duration(quantumUs%50_000) * time.Microsecond   // 0 = derived
		link := LinkConfig{RateBps: 5e6, Latency: lat, MaxBacklog: 10 * time.Millisecond}
		dur := 500 * time.Millisecond
		want, _ := echoMeshRun(t, 1, nn, link, dur, seed, nil)
		got, _ := echoMeshRun(t, ns, nn, link, dur, seed, speculate(q, 0))
		if got != want {
			t.Fatalf("shards=%d nodes=%d latency=%v quantum=%v seed=%d: speculative run diverged:\n got:\n%s\nwant:\n%s",
				ns, nn, lat, q, seed, got, want)
		}
	})
}
