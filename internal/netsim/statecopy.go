package netsim

import (
	"reflect"
	"sync"
	"time"
	"unsafe"
)

// StateSnap is a restorable deep snapshot of the mutable state reachable
// from a set of root pointers — the default application-state capture
// behind speculative shard execution for nodes that do not implement
// Snapshotter themselves. CaptureState records every heap object reachable
// through pointers, slices, maps, and interfaces; Restore writes the
// recorded bytes back into the *same* objects, so every live pointer into
// the graph (including closures scheduled before the snapshot) observes
// the rolled-back state.
//
// The walk deliberately does not follow: engine/network plumbing
// (*Engine, *Network, *SourceStore — the shard runner snapshots those
// itself), Timer values (the pooled event they reference is restored by
// the engine snapshot), *time.Location, strings (immutable), channels,
// and functions (a closure's captured variables must be reachable from
// the roots some other way — true for every node in this repo, and
// exactly the property the conservative-oracle differential tests pin).
type StateSnap struct {
	regions []region
	maps    []mapSnap
}

// region is one restorable memory block: an addressable view of a live
// object (or slice backing prefix) plus a typed clone of its contents.
type region struct {
	dst   reflect.Value
	saved reflect.Value
}

// mapSnap is one restorable map: content is restored key-by-key because a
// map's storage cannot be rewritten as a region.
type mapSnap struct {
	m    reflect.Value
	keys []reflect.Value
	vals []reflect.Value
}

// CaptureState deep-snapshots everything reachable from the given roots
// (typically pointers to node structs). Capture and Restore must run with
// the referenced shard quiescent — the speculative coordinator calls both
// between parallel phases.
func CaptureState(roots ...any) *StateSnap {
	c := &capturer{snap: &StateSnap{}, visited: make(map[visitKey]bool)}
	for _, r := range roots {
		if r == nil {
			continue
		}
		v := reflect.ValueOf(r)
		if v.Kind() == reflect.Pointer {
			c.capturePtr(v)
		} else {
			c.walkRefs(v)
		}
	}
	return c.snap
}

// Restore writes the snapshot back into the live objects. Regions first,
// then map contents: if a map-typed field was reassigned after the
// snapshot, the region restore resets the header to the snapshotted map
// before its entries are rebuilt.
func (s *StateSnap) Restore() {
	for i := range s.regions {
		s.regions[i].dst.Set(s.regions[i].saved)
	}
	for i := range s.maps {
		ms := &s.maps[i]
		ms.m.Clear()
		for j := range ms.keys {
			ms.m.SetMapIndex(ms.keys[j], ms.vals[j])
		}
	}
}

// Regions returns how many memory blocks the snapshot holds — test
// observability for the walker's coverage.
func (s *StateSnap) Regions() int { return len(s.regions) }

// Maps returns how many maps the snapshot holds.
func (s *StateSnap) Maps() int { return len(s.maps) }

type visitKey struct {
	p unsafe.Pointer
	t reflect.Type
}

type capturer struct {
	snap    *StateSnap
	visited map[visitKey]bool
}

// Simulator-plumbing types the walk never follows (the shard runner
// snapshots engine and store state itself; a network or location is
// effectively immutable during a window).
var (
	engineType   = reflect.TypeOf((*Engine)(nil))
	networkType  = reflect.TypeOf((*Network)(nil))
	storeType    = reflect.TypeOf((*SourceStore)(nil))
	locationType = reflect.TypeOf((*time.Location)(nil))
	timerType    = reflect.TypeOf(Timer{})
)

func skipPtrType(t reflect.Type) bool {
	switch t {
	case engineType, networkType, storeType, locationType:
		return true
	}
	return false
}

// capturePtr records the pointee as a region (once per (address, type))
// and walks its references.
func (c *capturer) capturePtr(v reflect.Value) {
	if v.IsNil() || skipPtrType(v.Type()) {
		return
	}
	elem := v.Type().Elem()
	if elem.Kind() == reflect.Func || elem.Kind() == reflect.Chan {
		return
	}
	key := visitKey{v.UnsafePointer(), elem}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	// A NewAt view is addressable and fully settable even where the
	// original reflect.Value came from an unexported field.
	live := reflect.NewAt(elem, v.UnsafePointer()).Elem()
	c.captureRegion(live)
}

// captureRegion clones an addressable live value and walks the clone's
// references (identical to the live value's at capture time).
func (c *capturer) captureRegion(live reflect.Value) {
	saved := reflect.New(live.Type()).Elem()
	saved.Set(live)
	c.snap.regions = append(c.snap.regions, region{dst: live, saved: saved})
	c.walkRefs(saved)
}

// captureSliceBacking records the [0:len] prefix of a slice's backing
// array as a region. The post-restore header hides anything written past
// the snapshotted length, so the tail needs no restoration.
func (c *capturer) captureSliceBacking(v reflect.Value) {
	n := v.Len()
	if v.IsNil() || n == 0 {
		return
	}
	at := reflect.ArrayOf(n, v.Type().Elem())
	key := visitKey{v.UnsafePointer(), at}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	c.captureRegion(reflect.NewAt(at, v.UnsafePointer()).Elem())
}

// captureMap records a map's entries. The write-capable handle is rebuilt
// from the map's header pointer so maps found through unexported fields
// (read-only reflect.Values) restore like any other.
func (c *capturer) captureMap(v reflect.Value) {
	if v.IsNil() {
		return
	}
	key := visitKey{v.UnsafePointer(), v.Type()}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	clean := reflect.New(v.Type())
	*(*unsafe.Pointer)(clean.UnsafePointer()) = v.UnsafePointer()
	m := clean.Elem()
	ms := mapSnap{m: m}
	iter := m.MapRange()
	for iter.Next() {
		k := cloneValue(iter.Key())
		val := cloneValue(iter.Value())
		ms.keys = append(ms.keys, k)
		ms.vals = append(ms.vals, val)
		c.walkRefs(k)
		c.walkRefs(val)
	}
	c.snap.maps = append(c.snap.maps, ms)
}

func cloneValue(v reflect.Value) reflect.Value {
	nv := reflect.New(v.Type()).Elem()
	nv.Set(v)
	return nv
}

// walkRefs chases the references inside a value that is already captured
// (or immutable, for interface-boxed values), recording each reachable
// heap object exactly once.
func (c *capturer) walkRefs(v reflect.Value) {
	if !typeHasRefs(v.Type()) {
		return
	}
	switch v.Kind() {
	case reflect.Pointer:
		c.capturePtr(v)
	case reflect.Interface:
		if v.IsNil() {
			return
		}
		d := v.Elem()
		switch d.Kind() {
		case reflect.Pointer:
			c.capturePtr(d)
		case reflect.Map:
			c.captureMap(d)
		case reflect.Slice:
			c.captureSliceBacking(d)
		case reflect.Struct, reflect.Array:
			// The boxed value itself is immutable; only what it points
			// to can change.
			c.walkRefs(d)
		}
	case reflect.Map:
		c.captureMap(v)
	case reflect.Slice:
		c.captureSliceBacking(v)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			c.walkRefs(v.Index(i))
		}
	case reflect.Struct:
		if v.Type() == timerType {
			return
		}
		for i := 0; i < v.NumField(); i++ {
			c.walkRefs(v.Field(i))
		}
	}
}

// typeHasRefs reports whether values of t can reach other heap objects
// the walker cares about — the pruning that keeps the walk off flat
// numeric state (busy-until slices, counters).
var hasRefsCache sync.Map // reflect.Type → bool

func typeHasRefs(t reflect.Type) bool {
	if r, ok := hasRefsCache.Load(t); ok {
		return r.(bool)
	}
	r := computeHasRefs(t)
	hasRefsCache.Store(t, r)
	return r
}

func computeHasRefs(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Interface:
		return true
	case reflect.Array:
		return computeHasRefs(t.Elem())
	case reflect.Struct:
		if t == timerType {
			return false
		}
		for i := 0; i < t.NumField(); i++ {
			if computeHasRefs(t.Field(i).Type) {
				return true
			}
		}
	}
	return false
}
