package netsim

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

func TestSourceAddrRoundTrip(t *testing.T) {
	base := Addr{100, 2, 0, 1}
	s := &SourceStore{base: base, count: MaxSourceSlots}
	for _, i := range []int{0, 1, 199, 200, 51199, 51200, 1_000_000, MaxSourceSlots - 1} {
		addr := SourceAddr(base, i)
		slot, ok := s.slotOf(addr)
		if !ok || int(slot) != i {
			t.Fatalf("slotOf(SourceAddr(%d)) = %d,%v", i, slot, ok)
		}
	}
	if _, ok := s.slotOf(Addr{101, 2, 0, 1}); ok {
		t.Fatalf("foreign first octet resolved to a slot")
	}
}

// SourceAddr must agree with the botnet's historic derivation for the
// first 51200 sources (addr[3] += i%200; addr[2] += i/200).
func TestSourceAddrMatchesBotnetDerivation(t *testing.T) {
	base := Addr{10, 2, 0, 1}
	for _, i := range []int{0, 5, 199, 200, 12345, 51199} {
		want := base
		want[3] += byte(i % 200)
		want[2] += byte(i / 200)
		if got := SourceAddr(base, i); got != want {
			t.Fatalf("SourceAddr(%d) = %v, want %v", i, got, want)
		}
	}
}

type sinkNode struct {
	addr     Addr
	got      []tcpkit.Segment
	at       []time.Duration
	eng      *Engine
	reply    bool
	replyNet *Network
}

func (s *sinkNode) Addr() Addr { return s.addr }
func (s *sinkNode) Handle(seg tcpkit.Segment) {
	s.got = append(s.got, seg)
	s.at = append(s.at, s.eng.Now())
	if s.reply {
		s.replyNet.Send(tcpkit.Segment{Src: s.addr, Dst: seg.Src, SrcPort: seg.DstPort, DstPort: seg.SrcPort, Flags: tcpkit.FlagSYN | tcpkit.FlagACK})
	}
}

// A store-backed source must be wire-identical to an attached port: same
// delivery time at the destination, and replies must route back into the
// store's handler with the right slot.
func TestStoreSendMatchesPortSend(t *testing.T) {
	link := DefaultHostLink()
	seg := func(src Addr) tcpkit.Segment {
		return tcpkit.Segment{Src: src, Dst: Addr{10, 0, 0, 1}, SrcPort: 3333, DstPort: 80, Flags: tcpkit.FlagSYN}
	}

	// Reference run: one attached port.
	refEng := NewEngine()
	refNet := NewNetwork(refEng)
	refSink := &sinkNode{addr: Addr{10, 0, 0, 1}, eng: refEng}
	if err := refNet.Attach(refSink, DefaultServerLink()); err != nil {
		t.Fatal(err)
	}
	srcAddr := Addr{20, 2, 0, 1}
	srcNode := &sinkNode{addr: srcAddr, eng: refEng}
	if err := refNet.Attach(srcNode, link); err != nil {
		t.Fatal(err)
	}
	refNet.SendFrom(srcAddr, seg(srcAddr))
	refEng.Run(time.Second)

	// Store run: same topology, source backed by a one-slot store.
	eng2 := NewEngine()
	net2 := NewNetwork(eng2)
	sink2 := &sinkNode{addr: Addr{10, 0, 0, 1}, eng: eng2}
	if err := net2.Attach(sink2, DefaultServerLink()); err != nil {
		t.Fatal(err)
	}
	var gotSlot int32 = -1
	var gotReply tcpkit.Segment
	store, err := net2.AttachSources(1, srcAddr, link, func(slot int32, s tcpkit.Segment) {
		gotSlot, gotReply = slot, s
	})
	if err != nil {
		t.Fatal(err)
	}
	sink2.reply, sink2.replyNet = true, net2
	store.SendAt(0, 0, seg(srcAddr))
	eng2.Run(time.Second)

	if len(refSink.got) != 1 || len(sink2.got) != 1 {
		t.Fatalf("deliveries: ref=%d store=%d", len(refSink.got), len(sink2.got))
	}
	if refSink.at[0] != sink2.at[0] {
		t.Fatalf("delivery time differs: port %v vs store %v", refSink.at[0], sink2.at[0])
	}
	if gotSlot != 0 {
		t.Fatalf("reply slot = %d, want 0", gotSlot)
	}
	if !gotReply.Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK) {
		t.Fatalf("reply flags = %v", gotReply.Flags)
	}
	up, _ := store.Stats()
	if up.SentPackets != 1 {
		t.Fatalf("store uplink packets = %d", up.SentPackets)
	}
}

func TestAttachOverlapRejected(t *testing.T) {
	net := NewNetwork(NewEngine())
	base := Addr{10, 2, 0, 1}
	if _, err := net.AttachSources(100, base, DefaultHostLink(), func(int32, tcpkit.Segment) {}); err != nil {
		t.Fatal(err)
	}
	// A port inside the range must be rejected.
	n := &sinkNode{addr: SourceAddr(base, 50)}
	if err := net.Attach(n, DefaultHostLink()); err == nil {
		t.Fatalf("attach inside macro range succeeded")
	}
	// A second store sharing the first octet must be rejected.
	if _, err := net.AttachSources(10, Addr{10, 200, 0, 1}, DefaultHostLink(), func(int32, tcpkit.Segment) {}); err == nil {
		t.Fatalf("same-prefix second store succeeded")
	}
	// And the reverse: a store over an attached port's address.
	net2 := NewNetwork(NewEngine())
	if err := net2.Attach(&sinkNode{addr: SourceAddr(base, 3)}, DefaultHostLink()); err != nil {
		t.Fatal(err)
	}
	if _, err := net2.AttachSources(100, base, DefaultHostLink(), func(int32, tcpkit.Segment) {}); err == nil {
		t.Fatalf("store over attached port succeeded")
	}
}
