package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// echoNode is a traffic generator that also answers every delivery with a
// reply to its sender — enough feedback to make cross-shard causality
// matter. All of its decisions derive from its own seed.
type echoNode struct {
	addr Addr
	eng  *Engine
	net  *Network
	rnd  *rand.Rand

	peers   []Addr
	rate    float64
	stopAt  time.Duration
	sent    uint64
	recvd   uint64
	echoed  uint64
	lastAt  time.Duration
	byPeer  map[Addr]uint64
	sumSize uint64
}

func (n *echoNode) Addr() Addr { return n.addr }

func (n *echoNode) Handle(seg tcpkit.Segment) {
	n.recvd++
	n.byPeer[seg.Src]++
	n.sumSize += uint64(seg.WireSize())
	n.lastAt = n.eng.Now()
	// Echo data packets (not echoes of echoes, or the storm never ends).
	if seg.PayloadLen > 0 {
		n.echoed++
		n.net.Send(tcpkit.Segment{
			Src: n.addr, Dst: seg.Src,
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Flags: tcpkit.FlagACK,
		})
	}
}

func (n *echoNode) tick() {
	if n.eng.Now() >= n.stopAt {
		return
	}
	dst := n.peers[n.rnd.Intn(len(n.peers))]
	n.sent++
	n.net.Send(tcpkit.Segment{
		Src: n.addr, Dst: dst,
		SrcPort: 1000, DstPort: 80,
		PayloadLen: 100 + n.rnd.Intn(900),
	})
	n.eng.Schedule(time.Duration(n.rnd.ExpFloat64()/n.rate*float64(time.Second)), n.tick)
}

// echoFingerprint runs a mesh of echo nodes on the given shard count and
// returns a per-node summary string capturing counts, byte sums, arrival
// order effects (lastAt) and link statistics.
func echoFingerprint(t *testing.T, shards, nodes int, link LinkConfig, dur time.Duration) string {
	t.Helper()
	out, _ := echoMeshRun(t, shards, nodes, link, dur, 100, nil)
	return out
}

// echoMeshRun is the configurable core behind echoFingerprint and the
// speculative differential tests: tune (may be nil) adjusts the freshly
// built network — e.g. enabling speculation — before nodes attach, seed
// offsets every node's RNG stream, and the run's ShardStats come back
// alongside the fingerprint.
func echoMeshRun(tb testing.TB, shards, nodes int, link LinkConfig, dur time.Duration, seed int64, tune func(*Network)) (string, ShardStats) {
	if t, ok := tb.(*testing.T); ok {
		t.Helper()
	}
	net := NewSharded(shards)
	if tune != nil {
		tune(net)
	}
	addrs := make([]Addr, nodes)
	for i := range addrs {
		addrs[i] = Addr{10, 0, byte(i / 200), byte(1 + i%200)}
	}
	ens := make([]*echoNode, nodes)
	for i, addr := range addrs {
		var peers []Addr
		for _, p := range addrs {
			if p != addr {
				peers = append(peers, p)
			}
		}
		ens[i] = &echoNode{
			addr: addr, eng: net.EngineFor(addr), net: net,
			rnd: rand.New(rand.NewSource(seed + int64(i))), peers: peers,
			rate: 200, stopAt: dur, byPeer: map[Addr]uint64{},
		}
		if err := net.Attach(ens[i], link); err != nil {
			tb.Fatalf("Attach(%v): %v", addr, err)
		}
		ens[i].eng.Schedule(0, ens[i].tick)
	}
	net.Run(dur)

	out := ""
	for i, n := range ens {
		out += fmt.Sprintf("node%d sent=%d recvd=%d echoed=%d bytes=%d last=%v\n",
			i, n.sent, n.recvd, n.echoed, n.sumSize, n.lastAt)
		for _, p := range addrs {
			out += fmt.Sprintf("  from %v: %d\n", p, n.byPeer[p])
		}
		up, down, _ := net.Stats(n.addr)
		out += fmt.Sprintf("  up=%+v down=%+v\n", up, down)
	}
	out += fmt.Sprintf("unroutable=%d\n", net.Unroutable())
	return out, net.ShardStats()
}

// TestShardedEchoMeshByteIdentical is the engine-level half of the repo's
// sharding invariant: a chatty mesh with feedback loops, tight links and
// drops must produce identical per-node state at every shard count,
// including shard counts exceeding the node count.
func TestShardedEchoMeshByteIdentical(t *testing.T) {
	// A slow, shallow link forces queueing and drop-tail decisions, the
	// state most sensitive to delivery ordering.
	link := LinkConfig{RateBps: 2e6, Latency: 2 * time.Millisecond, MaxBacklog: 20 * time.Millisecond}
	want := echoFingerprint(t, 1, 6, link, 3*time.Second)
	for _, shards := range []int{2, 3, 4, 8} {
		got := echoFingerprint(t, shards, 6, link, 3*time.Second)
		if got != want {
			t.Errorf("shards=%d diverged from shards=1:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

// TestShardedZeroLatencyFallsBackToMerge covers the degenerate lookahead:
// with zero propagation delay the conservative windows collapse, and Run
// must fall back to the serial merge with identical results.
func TestShardedZeroLatencyFallsBackToMerge(t *testing.T) {
	link := LinkConfig{RateBps: 5e6, Latency: 0, MaxBacklog: 10 * time.Millisecond}
	want := echoFingerprint(t, 1, 4, link, 2*time.Second)
	got := echoFingerprint(t, 4, 4, link, 2*time.Second)
	if got != want {
		t.Errorf("zero-latency sharded run diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestShardedSimultaneousArrivalsCanonicalOrder pins the tie-break rule:
// two packets from different sources engineered to arrive at the same
// instant deliver in source-address order at every shard count.
func TestShardedSimultaneousArrivalsCanonicalOrder(t *testing.T) {
	link := LinkConfig{RateBps: 1e9, Latency: 5 * time.Millisecond, MaxBacklog: time.Second}
	for _, shards := range []int{1, 2, 4} {
		net := NewSharded(shards)
		// Higher-address source scheduled first: scheduling order must NOT
		// decide delivery order.
		hi := &sink{addr: Addr{10, 0, 0, 9}}
		lo := &sink{addr: Addr{10, 0, 0, 1}}
		dst := &sink{addr: Addr{10, 0, 0, 5}}
		for _, n := range []*sink{hi, lo, dst} {
			n.eng = net.EngineFor(n.addr)
			if err := net.Attach(n, link); err != nil {
				t.Fatalf("Attach: %v", err)
			}
		}
		net.EngineFor(hi.addr).Schedule(10*time.Millisecond, func() {
			net.Send(seg(hi.addr, dst.addr, 64))
		})
		net.EngineFor(lo.addr).Schedule(10*time.Millisecond, func() {
			net.Send(seg(lo.addr, dst.addr, 64))
		})
		net.Run(time.Second)
		if len(dst.received) != 2 {
			t.Fatalf("shards=%d: delivered %d, want 2", shards, len(dst.received))
		}
		if dst.received[0].Src != lo.addr || dst.received[1].Src != hi.addr {
			t.Errorf("shards=%d: delivery order %v, %v; want low-address source first",
				shards, dst.received[0].Src, dst.received[1].Src)
		}
	}
}

// TestShardedRunMatchesEngineRunBoundary checks the until-inclusive
// boundary semantics match Engine.Run: events at exactly `until` fire, and
// the clocks land on until.
func TestShardedRunMatchesEngineRunBoundary(t *testing.T) {
	net := NewSharded(2)
	a := &sink{addr: Addr{10, 0, 0, 1}}
	b := &sink{addr: Addr{10, 7, 0, 2}} // hashes away from a with high odds; placement is irrelevant to the assertion
	a.eng = net.EngineFor(a.addr)
	b.eng = net.EngineFor(b.addr)
	if err := net.Attach(a, DefaultHostLink()); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, DefaultHostLink()); err != nil {
		t.Fatal(err)
	}
	fired := 0
	a.eng.ScheduleAt(time.Second, func() { fired++ })
	b.eng.ScheduleAt(time.Second, func() {
		fired++
		// Nested same-time event must also fire, as with Engine.Run.
		b.eng.ScheduleAt(time.Second, func() { fired++ })
	})
	a.eng.ScheduleAt(time.Second+time.Nanosecond, func() { fired++ })
	net.Run(time.Second)
	if fired != 3 {
		t.Errorf("fired %d events at the boundary, want 3", fired)
	}
	for i := 0; i < net.Shards(); i++ {
		if got := net.Engine(i).Now(); got != time.Second {
			t.Errorf("shard %d clock = %v, want 1s", i, got)
		}
	}
}

// hetFingerprint runs a two-class mesh — one fast-link node pinned to
// shard 0, slow-link nodes pinned to shard 1 — and returns its state
// fingerprint plus the window count. globalOnly collapses the per-pair
// lookaheads back to the legacy global minimum for the A/B comparison.
func hetFingerprint(t *testing.T, globalOnly bool) (string, int) {
	t.Helper()
	fast := LinkConfig{RateBps: 1e9, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
	slow := LinkConfig{RateBps: 10e6, Latency: 20 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
	net := NewSharded(2)
	net.globalLookaheadOnly = globalOnly
	const nodes = 5
	addrs := make([]Addr, nodes)
	for i := range addrs {
		addrs[i] = Addr{10, 0, 0, byte(1 + i)}
		shard := 1
		if i == 0 {
			shard = 0
		}
		if err := net.Pin(addrs[i], shard); err != nil {
			t.Fatalf("Pin: %v", err)
		}
	}
	ens := make([]*echoNode, nodes)
	for i, addr := range addrs {
		var peers []Addr
		for _, p := range addrs {
			if p != addr {
				peers = append(peers, p)
			}
		}
		ens[i] = &echoNode{
			addr: addr, eng: net.EngineFor(addr), net: net,
			rnd: rand.New(rand.NewSource(int64(100 + i))), peers: peers,
			rate: 150, stopAt: 3 * time.Second, byPeer: map[Addr]uint64{},
		}
		link := slow
		if i == 0 {
			link = fast
		}
		if err := net.Attach(ens[i], link); err != nil {
			t.Fatalf("Attach(%v): %v", addr, err)
		}
		ens[i].eng.Schedule(0, ens[i].tick)
	}
	net.Run(3 * time.Second)

	out := ""
	for i, n := range ens {
		out += fmt.Sprintf("node%d sent=%d recvd=%d echoed=%d bytes=%d last=%v\n",
			i, n.sent, n.recvd, n.echoed, n.sumSize, n.lastAt)
	}
	return out, net.ShardStats().Windows
}

// TestPerPairLookaheadFewerWindows is the adaptive-widening contract on a
// heterogeneous topology: one fast 2 ms link (the server class) pinned to
// shard 0 and slow 20 ms links on shard 1. The legacy global lookahead is
// 4 ms — the fast link throttles everyone — while the per-pair bounds are
// 22 ms in both directions, so the same simulation must barrier strictly
// less often with byte-identical results.
func TestPerPairLookaheadFewerWindows(t *testing.T) {
	wantFP, globalWindows := hetFingerprint(t, true)
	gotFP, pairWindows := hetFingerprint(t, false)
	if gotFP != wantFP {
		t.Errorf("per-pair lookahead changed results:\n got:\n%s\nwant:\n%s", gotFP, wantFP)
	}
	if globalWindows == 0 || pairWindows == 0 {
		t.Fatalf("degenerate run: windows global=%d perpair=%d", globalWindows, pairWindows)
	}
	if pairWindows >= globalWindows {
		t.Errorf("per-pair lookahead ran %d windows, global minimum %d; want strictly fewer",
			pairWindows, globalWindows)
	}
	t.Logf("windows: global=%d per-pair=%d", globalWindows, pairWindows)
}

// TestLookaheadStatsObserved: windowed runs must report the applied
// window widths, and on the heterogeneous mesh the per-pair widths must
// exceed the legacy global minimum (4 ms here).
func TestLookaheadStatsObserved(t *testing.T) {
	net := NewSharded(4)
	statsMesh(t, net, 8)
	net.Run(2 * time.Second)
	st := net.ShardStats()
	if st.LookaheadMin <= 0 || st.LookaheadMean < st.LookaheadMin || st.LookaheadMax < st.LookaheadMean {
		t.Errorf("lookahead stats not ordered: min=%v mean=%v max=%v",
			st.LookaheadMin, st.LookaheadMean, st.LookaheadMax)
	}
	// statsMesh links are homogeneous 2 ms, so every window is exactly
	// 4 ms wide except the horizon-capped ones, which are narrower.
	if st.LookaheadMax != 4*time.Millisecond {
		t.Errorf("LookaheadMax = %v, want 4ms on a homogeneous 2ms mesh", st.LookaheadMax)
	}
}

// TestPinPlacesNode verifies explicit placement and its reservation
// behaviour for unpinned nodes.
func TestPinPlacesNode(t *testing.T) {
	net := NewSharded(4)
	srv := Addr{10, 0, 0, 1}
	if err := net.Pin(srv, 0); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if got := net.EngineFor(srv); got != net.Engine(0) {
		t.Error("pinned address not on shard 0")
	}
	// Unpinned nodes must avoid the reserved shard.
	for i := 0; i < 32; i++ {
		addr := Addr{10, 1, 0, byte(1 + i)}
		if net.EngineFor(addr) == net.Engine(0) {
			t.Errorf("unpinned %v landed on the pinned shard", addr)
		}
	}
	if err := net.Pin(Addr{10, 0, 0, 2}, 7); err == nil {
		t.Error("out-of-range pin accepted")
	}
}

// statsMesh builds a small echo mesh on net and returns nothing; the
// caller runs the network and reads ShardStats.
func statsMesh(t *testing.T, net *Network, nodes int) {
	t.Helper()
	link := LinkConfig{RateBps: 100e6, Latency: 2 * time.Millisecond, MaxBacklog: 100 * time.Millisecond}
	addrs := make([]Addr, nodes)
	for i := range addrs {
		addrs[i] = Addr{10, 0, 0, byte(1 + i)}
	}
	for i, addr := range addrs {
		var peers []Addr
		for _, p := range addrs {
			if p != addr {
				peers = append(peers, p)
			}
		}
		n := &echoNode{
			addr: addr, eng: net.EngineFor(addr), net: net,
			rnd: rand.New(rand.NewSource(int64(100 + i))), peers: peers,
			rate: 100, stopAt: 2 * time.Second, byPeer: map[Addr]uint64{},
		}
		if err := net.Attach(n, link); err != nil {
			t.Fatalf("Attach(%v): %v", addr, err)
		}
		n.eng.Schedule(0, n.tick)
	}
}

// ShardStats is observability, not modelling: event counts must cover the
// whole run deterministically, and sharded runs must report their windows
// and per-shard barrier waits.
func TestShardStatsReportLoadBalance(t *testing.T) {
	serialNet := NewSharded(1)
	statsMesh(t, serialNet, 8)
	serialNet.Run(2 * time.Second)
	serialTotal := serialNet.ShardStats().Events[0]
	if serialTotal == 0 {
		t.Fatal("serial run fired no events")
	}

	net := NewSharded(4)
	statsMesh(t, net, 8)
	net.Run(2 * time.Second)
	st := net.ShardStats()
	if len(st.Events) != 4 {
		t.Fatalf("Events has %d shards, want 4", len(st.Events))
	}
	var total uint64
	busy := 0
	for _, n := range st.Events {
		total += n
		if n > 0 {
			busy++
		}
	}
	if total != serialTotal {
		t.Errorf("sharded events = %d, serial = %d; the same run must fire the same events", total, serialTotal)
	}
	if busy < 2 {
		t.Errorf("only %d shards fired events; mesh placement should spread load", busy)
	}
	if st.Windows == 0 {
		t.Error("sharded run reports zero windows")
	}
	if len(st.BarrierWait) != 4 {
		t.Errorf("BarrierWait has %d entries, want 4", len(st.BarrierWait))
	}
}
