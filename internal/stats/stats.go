// Package stats provides the measurement primitives the experiment harness
// uses in place of tcpdump post-processing: bucketed time series, CDFs, box
// statistics and rate estimators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates values into fixed-width time buckets, e.g. bytes per
// second for throughput plots.
type Series struct {
	bucket time.Duration
	vals   []float64
}

// NewSeries returns a Series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Series{bucket: bucket}
}

// Bucket returns the configured bucket width.
func (s *Series) Bucket() time.Duration { return s.bucket }

// Add accumulates v into the bucket containing at. Negative times are
// clamped to the first bucket.
func (s *Series) Add(at time.Duration, v float64) {
	idx := int(at / s.bucket)
	if idx < 0 {
		idx = 0
	}
	for len(s.vals) <= idx {
		s.vals = append(s.vals, 0)
	}
	s.vals[idx] += v
}

// AddSpan spreads v uniformly over [from, to) across the buckets it covers.
// It is used for busy-time accounting (CPU utilisation).
func (s *Series) AddSpan(from, to time.Duration, v float64) {
	if to <= from {
		return
	}
	total := to - from
	for t := from; t < to; {
		end := (t/s.bucket + 1) * s.bucket
		if end > to {
			end = to
		}
		s.Add(t, v*(float64(end-t)/float64(total)))
		t = end
	}
}

// Values returns a copy of the bucket values, padded with zeros out to the
// bucket containing until.
func (s *Series) Values(until time.Duration) []float64 {
	n := int(until/s.bucket) + 1
	out := make([]float64, n)
	copy(out, s.vals)
	return out
}

// Sum returns the total across all buckets.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// SumRange returns the total over buckets intersecting [from, to).
func (s *Series) SumRange(from, to time.Duration) float64 {
	lo := int(from / s.bucket)
	hi := int((to + s.bucket - 1) / s.bucket)
	var sum float64
	for i := lo; i < hi && i < len(s.vals); i++ {
		if i >= 0 {
			sum += s.vals[i]
		}
	}
	return sum
}

// RatePerSecond converts bucket totals into per-second rates.
func (s *Series) RatePerSecond(until time.Duration) []float64 {
	vals := s.Values(until)
	scale := float64(time.Second) / float64(s.bucket)
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * scale
	}
	return out
}

// Mbps converts bucket byte totals into megabits per second.
func (s *Series) Mbps(until time.Duration) []float64 {
	rates := s.RatePerSecond(until)
	for i := range rates {
		rates[i] = rates[i] * 8 / 1e6
	}
	return rates
}

// Gauge records a piecewise-constant quantity over time (queue lengths).
type Gauge struct {
	times []time.Duration
	vals  []float64
}

// Set records that the gauge took value v at time at. Times must be
// non-decreasing; out-of-order samples are dropped.
func (g *Gauge) Set(at time.Duration, v float64) {
	if n := len(g.times); n > 0 && at < g.times[n-1] {
		return
	}
	g.times = append(g.times, at)
	g.vals = append(g.vals, v)
}

// At returns the gauge value in effect at time at (zero before the first
// sample).
func (g *Gauge) At(at time.Duration) float64 {
	idx := sort.Search(len(g.times), func(i int) bool { return g.times[i] > at })
	if idx == 0 {
		return 0
	}
	return g.vals[idx-1]
}

// Sampled returns the gauge resampled at the given period over [0, until).
func (g *Gauge) Sampled(period, until time.Duration) []float64 {
	if period <= 0 {
		period = time.Second
	}
	var out []float64
	for t := time.Duration(0); t < until; t += period {
		out = append(out, g.At(t))
	}
	return out
}

// Max returns the largest recorded value.
func (g *Gauge) Max() float64 {
	var m float64
	for _, v := range g.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the empirical fraction of samples ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Box summarises a sample for box plots.
type Box struct {
	N                int
	Mean, Std        float64
	Min, Q1, Med, Q3 float64
	Max              float64
}

// BoxOf computes box statistics over samples.
func BoxOf(samples []float64) Box {
	if len(samples) == 0 {
		nan := math.NaN()
		return Box{Mean: nan, Std: nan, Min: nan, Q1: nan, Med: nan, Q3: nan, Max: nan}
	}
	c := NewCDF(samples)
	var b Box
	b.N = len(samples)
	b.Mean = c.Mean()
	var ss float64
	for _, v := range samples {
		d := v - b.Mean
		ss += d * d
	}
	b.Std = math.Sqrt(ss / float64(len(samples)))
	b.Min = c.sorted[0]
	b.Max = c.sorted[len(c.sorted)-1]
	b.Q1 = c.Quantile(0.25)
	b.Med = c.Quantile(0.5)
	b.Q3 = c.Quantile(0.75)
	return b
}

// String renders the box as "mean=… std=… [min q1 med q3 max]".
func (b Box) String() string {
	return fmt.Sprintf("mean=%.3f std=%.3f [%.3f %.3f %.3f %.3f %.3f] n=%d",
		b.Mean, b.Std, b.Min, b.Q1, b.Med, b.Q3, b.Max, b.N)
}

// MeanStd returns mean and population standard deviation of samples.
func MeanStd(samples []float64) (mean, std float64) {
	b := BoxOf(samples)
	return b.Mean, b.Std
}
