package stats

import (
	"math"
	"math/rand"
	"sort"

	"github.com/tcppuzzles/tcppuzzles/internal/xrand"
)

// P2Quantile is the Jain & Chlamtac P² streaming quantile estimator: five
// markers track the running minimum, maximum, target quantile, and the
// two midpoints, adjusted per observation by a piecewise-parabolic
// interpolation. O(1) state and O(1) per observation, so million-sample
// metric streams cost 40 words instead of a retained sample slice. Exact
// for the first five observations (nearest-rank); an approximation after.
// The exact CDF remains the oracle — see the differential tests for the
// observed error envelope (≲1% of the distribution span on smooth inputs,
// a few percent under adversarial ordering).
type P2Quantile struct {
	q     float64    // target quantile in (0, 1)
	h     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based observation ranks)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
	n     int        // observations seen
}

// NewP2Quantile returns an estimator for the q-th quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	p := &P2Quantile{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the target quantile.
func (p *P2Quantile) Q() float64 { return p.q }

// Count returns the number of observations.
func (p *P2Quantile) Count() int { return p.n }

// Observe feeds one sample.
func (p *P2Quantile) Observe(x float64) {
	if p.n < 5 {
		p.h[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.h[:])
			p.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	p.n++

	// Locate the cell and update the extremes.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := math.Copysign(1, d)
			h := p.parabolic(i, s)
			if p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback when the parabolic prediction is not monotone.
func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current estimate: the middle marker, or the exact
// nearest-rank quantile while fewer than five samples have been seen.
// NaN before any observation.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		s := make([]float64, p.n)
		copy(s, p.h[:p.n])
		sort.Float64s(s)
		idx := int(math.Ceil(p.q*float64(p.n))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	return p.h[2]
}

// Reservoir is a deterministic fixed-capacity uniform sample (Vitter's
// Algorithm R) over a stream: every observation has equal probability of
// appearing in the final sample, using O(capacity) memory. Randomness
// comes from a splitmix source seeded at construction, so equal seeds
// reproduce the sample bit-for-bit regardless of platform.
type Reservoir struct {
	sample []float64
	n      int
	rnd    *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		sample: make([]float64, 0, capacity),
		rnd:    rand.New(xrand.New(seed)),
	}
}

// Observe feeds one sample.
func (r *Reservoir) Observe(x float64) {
	r.n++
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rnd.Int63n(int64(r.n)); j < int64(cap(r.sample)) {
		r.sample[j] = x
	}
}

// Count returns the number of observations seen (not retained).
func (r *Reservoir) Count() int { return r.n }

// Sample returns the retained samples (shared slice; do not mutate).
func (r *Reservoir) Sample() []float64 { return r.sample }

// SummarySketch bundles the streaming statistics the figure drivers need
// from a sample distribution — count, mean, extremes, and a fixed set of
// P² quantile estimates — in O(1) memory. It is the drop-in replacement
// for retaining every sample and building an exact CDF.
type SummarySketch struct {
	count     int
	sum       float64
	min, max  float64
	quantiles []*P2Quantile
}

// NewSummarySketch returns a sketch estimating the given quantiles.
func NewSummarySketch(qs ...float64) *SummarySketch {
	s := &SummarySketch{min: math.Inf(1), max: math.Inf(-1)}
	for _, q := range qs {
		s.quantiles = append(s.quantiles, NewP2Quantile(q))
	}
	return s
}

// Observe feeds one sample.
func (s *SummarySketch) Observe(x float64) {
	s.count++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	for _, p := range s.quantiles {
		p.Observe(x)
	}
}

// Count returns the number of observations.
func (s *SummarySketch) Count() int { return s.count }

// Mean returns the running mean (exact), NaN before any observation.
func (s *SummarySketch) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.count)
}

// Min and Max return the exact extremes, ±Inf before any observation.
func (s *SummarySketch) Min() float64 { return s.min }

// Max returns the exact maximum observed.
func (s *SummarySketch) Max() float64 { return s.max }

// Quantile returns the estimate for q, which must be one of the
// quantiles the sketch was constructed with; NaN otherwise.
func (s *SummarySketch) Quantile(q float64) float64 {
	for _, p := range s.quantiles {
		if p.Q() == q {
			return p.Value()
		}
	}
	return math.NaN()
}
