package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddAndValues(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(0, 1)
	s.Add(500*time.Millisecond, 2)
	s.Add(1500*time.Millisecond, 4)
	s.Add(-time.Second, 8) // clamped to bucket 0
	got := s.Values(2 * time.Second)
	want := []float64{11, 4, 0}
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeriesRates(t *testing.T) {
	s := NewSeries(500 * time.Millisecond)
	s.Add(0, 100) // 100 in half a second → 200/s
	rates := s.RatePerSecond(500 * time.Millisecond)
	if rates[0] != 200 {
		t.Errorf("rate = %v, want 200", rates[0])
	}
	// 1e6 bytes in one bucket of 0.5s → 2e6 B/s → 16 Mbps.
	b := NewSeries(500 * time.Millisecond)
	b.Add(0, 1e6)
	if got := b.Mbps(500 * time.Millisecond)[0]; math.Abs(got-16) > 1e-9 {
		t.Errorf("Mbps = %v, want 16", got)
	}
}

func TestSeriesAddSpan(t *testing.T) {
	s := NewSeries(time.Second)
	// 3 units of busy time spread across [0.5s, 3.5s): 1/6 in each of the
	// partial end buckets, 1/3 in the two full middle buckets.
	s.AddSpan(500*time.Millisecond, 3500*time.Millisecond, 3)
	got := s.Values(4 * time.Second)
	want := []float64{0.5, 1, 1, 0.5, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if math.Abs(s.Sum()-3) > 1e-9 {
		t.Errorf("Sum = %v, want 3", s.Sum())
	}
}

func TestSeriesSumRange(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, 1)
	}
	if got := s.SumRange(2*time.Second, 5*time.Second); got != 3 {
		t.Errorf("SumRange = %v, want 3", got)
	}
	if got := s.SumRange(0, 100*time.Second); got != 10 {
		t.Errorf("SumRange(all) = %v, want 10", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(time.Second, 5)
	g.Set(3*time.Second, 2)
	g.Set(2*time.Second, 99) // out of order: dropped
	if got := g.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := g.At(time.Second); got != 5 {
		t.Errorf("At(1s) = %v, want 5", got)
	}
	if got := g.At(2500 * time.Millisecond); got != 5 {
		t.Errorf("At(2.5s) = %v, want 5", got)
	}
	if got := g.At(10 * time.Second); got != 2 {
		t.Errorf("At(10s) = %v, want 2", got)
	}
	if got := g.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	samples := g.Sampled(time.Second, 4*time.Second)
	want := []float64{0, 5, 5, 2}
	for i := range want {
		if samples[i] != want[i] {
			t.Errorf("Sampled[%d] = %v, want %v", i, samples[i], want[i])
		}
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(1); got != 0 {
		t.Errorf("empty At = %v", got)
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty quantile/mean not NaN")
	}
}

func TestBoxOf(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 5})
	if b.Mean != 3 || b.Min != 1 || b.Max != 5 || b.Med != 3 {
		t.Errorf("BoxOf = %+v", b)
	}
	if math.Abs(b.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Std = %v, want √2", b.Std)
	}
	if b.N != 5 {
		t.Errorf("N = %d", b.N)
	}
	empty := BoxOf(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty box mean not NaN")
	}
}

// Property: a CDF is monotone non-decreasing and bounded in [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		c := NewCDF(samples)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		fa, fb := c.At(lo), c.At(hi)
		return fa >= 0 && fb <= 1 && fa <= fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Series.AddSpan conserves mass.
func TestAddSpanConservesMass(t *testing.T) {
	f := func(fromMs, spanMs uint16, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := NewSeries(time.Second)
		from := time.Duration(fromMs) * time.Millisecond
		to := from + time.Duration(spanMs%5000+1)*time.Millisecond
		s.AddSpan(from, to, v)
		return math.Abs(s.Sum()-v) <= 1e-6*math.Abs(v)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
