package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sketchCase is one distribution the P² estimator is differentially
// tested against the exact CDF on. Bound is the allowed absolute error as
// a fraction of the distribution's span (max-min): the documented error
// envelope for that input shape. The bounds are pinned from observed
// error plus margin — they are regression walls, not theoretical limits
// (P² has no distribution-free guarantee).
type sketchCase struct {
	name    string
	samples []float64
	bound   float64
}

func sketchCases() []sketchCase {
	rnd := rand.New(rand.NewSource(42))
	const n = 10_000

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rnd.Float64() * 1000
	}

	// Bimodal: two well-separated normal-ish humps, the shape of a
	// connection-time distribution under an on/off pulse attack.
	bimodal := make([]float64, n)
	for i := range bimodal {
		center := 100.0
		if rnd.Intn(2) == 1 {
			center = 900.0
		}
		bimodal[i] = center + rnd.NormFloat64()*30
	}

	// Adversarial ordering: the same uniform sample sorted ascending —
	// the worst case for P², whose markers chase a moving front and lag
	// most when every observation lands in the top cell.
	adversarial := make([]float64, n)
	copy(adversarial, uniform)
	sort.Float64s(adversarial)

	return []sketchCase{
		{"uniform", uniform, 0.01},
		{"bimodal", bimodal, 0.05},
		{"adversarial-sorted", adversarial, 0.05},
	}
}

// TestP2AgainstExactCDF is the sketch's differential oracle: the P²
// estimate for each target quantile must land within the case's pinned
// error envelope of the exact nearest-rank quantile.
func TestP2AgainstExactCDF(t *testing.T) {
	for _, tc := range sketchCases() {
		exact := NewCDF(tc.samples)
		span := exact.Quantile(1) - exact.Quantile(0)
		for _, q := range []float64{0.10, 0.50, 0.90} {
			p := NewP2Quantile(q)
			for _, x := range tc.samples {
				p.Observe(x)
			}
			got, want := p.Value(), exact.Quantile(q)
			err := math.Abs(got-want) / span
			t.Logf("%s q=%.2f: p2=%.2f exact=%.2f err=%.4f of span", tc.name, q, got, want, err)
			if err > tc.bound {
				t.Errorf("%s q=%.2f: error %.4f of span exceeds pinned bound %.4f (p2=%v exact=%v)",
					tc.name, q, err, tc.bound, got, want)
			}
		}
	}
}

// TestP2ExactBelowFiveSamples pins the small-stream contract: with fewer
// than five observations the estimator IS the exact nearest-rank
// quantile, so tiny cells lose nothing by using the sketch.
func TestP2ExactBelowFiveSamples(t *testing.T) {
	samples := []float64{7, 3, 9, 1}
	for n := 1; n <= len(samples); n++ {
		exact := NewCDF(samples[:n])
		for _, q := range []float64{0.10, 0.50, 0.90} {
			p := NewP2Quantile(q)
			for _, x := range samples[:n] {
				p.Observe(x)
			}
			if got, want := p.Value(), exact.Quantile(q); got != want {
				t.Errorf("n=%d q=%.2f: got %v, want exact %v", n, q, got, want)
			}
		}
	}
	if !math.IsNaN(NewP2Quantile(0.5).Value()) {
		t.Error("empty estimator should return NaN")
	}
}

// TestReservoirDeterministicAndUniform pins the reservoir's two
// contracts: equal seeds reproduce the retained sample bit-for-bit, and
// the retained sample's mean tracks the stream mean (uniformity smoke).
func TestReservoirDeterministicAndUniform(t *testing.T) {
	run := func(seed int64) *Reservoir {
		r := NewReservoir(256, seed)
		for i := 0; i < 100_000; i++ {
			r.Observe(float64(i))
		}
		return r
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a.Sample(), b.Sample()) {
		t.Error("equal seeds produced different reservoir samples")
	}
	if a.Count() != 100_000 || len(a.Sample()) != 256 {
		t.Errorf("count=%d retained=%d, want 100000/256", a.Count(), len(a.Sample()))
	}
	if c := run(8); reflect.DeepEqual(a.Sample(), c.Sample()) {
		t.Error("different seeds produced identical reservoir samples")
	}
	mean, _ := MeanStd(a.Sample())
	// Stream mean is ~49999.5; a uniform 256-sample mean has standard
	// error ~1804, so ±6 SE is a deterministic-seed-safe window.
	if mean < 39000 || mean > 61000 {
		t.Errorf("reservoir mean %v implausibly far from stream mean 49999.5", mean)
	}
}

// TestSummarySketchBundles checks the composite: exact count/mean/
// extremes, quantile routing, and NaN for unregistered quantiles.
func TestSummarySketchBundles(t *testing.T) {
	s := NewSummarySketch(0.10, 0.50, 0.90)
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	if s.Count() != 1000 {
		t.Errorf("Count = %d", s.Count())
	}
	if got := s.Mean(); got != 500.5 {
		t.Errorf("Mean = %v, want 500.5", got)
	}
	if s.Min() != 1 || s.Max() != 1000 {
		t.Errorf("extremes = [%v, %v], want [1, 1000]", s.Min(), s.Max())
	}
	if got := s.Quantile(0.50); math.Abs(got-500) > 25 {
		t.Errorf("Quantile(0.5) = %v, want ≈500", got)
	}
	if !math.IsNaN(s.Quantile(0.25)) {
		t.Error("unregistered quantile should return NaN")
	}
}
