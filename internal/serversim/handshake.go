package serversim

import (
	"github.com/tcppuzzles/tcppuzzles/internal/syncache"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// onSYN processes a connection request.
func (s *Server) onSYN(seg tcpkit.Segment) {
	s.metrics.SYNsReceived++
	peer := tcpkit.PeerOf(seg)
	mss, wscale := parseSynOptions(seg.Options)

	switch s.cfg.Protection {
	case ProtectionPuzzles:
		// Opportunistic controller (§5): challenges engage when a queue
		// fills and latch until both queues drain below the low-water
		// mark; per the paper's modification, challenges are sent even
		// while the accept queue overflows rather than dropping SYNs.
		// AlwaysChallenge is the ablation that drops the opportunism.
		if s.protectionActive() {
			s.sendChallenge(seg)
			return
		}
		s.normalSYN(seg, peer, mss, wscale)
	case ProtectionCookies:
		if s.acceptQ.Full() {
			// Linux drops SYNs outright when the accept queue is full —
			// the gap that makes cookies ineffective against connection
			// floods (§6.2).
			s.metrics.SYNsDropped++
			return
		}
		if s.listenQ.Full() {
			s.sendCookieSynAck(seg, mss)
			return
		}
		s.normalSYN(seg, peer, mss, wscale)
	case ProtectionSYNCache:
		if s.listenQ.Full() {
			serverISN := s.isns.Next()
			added := s.cache.Add(&syncache.Entry{
				Peer:      peer,
				ClientISN: seg.Seq,
				ServerISN: serverISN,
				MSS:       mss,
				CreatedAt: s.eng.Now(),
				ExpiresAt: s.eng.Now() + s.cfg.SynAckTimeout,
			})
			if !added {
				s.metrics.SYNsDropped++
				return
			}
			s.metrics.PlainSynAcks.Add(s.eng.Now(), 1)
			s.send(s.synAck(seg, serverISN, nil))
			return
		}
		s.normalSYN(seg, peer, mss, wscale)
	default: // ProtectionNone
		if s.acceptQ.Full() {
			s.metrics.SYNsDropped++
			return
		}
		s.normalSYN(seg, peer, mss, wscale)
	}
}

// protectionActive implements the challenge controller latch. Protection
// engages once either queue climbs past its high-water mark (1/16 of
// capacity — the sysctl-style watermark that bounds how much of the queue
// an attack can claim before challenges start) and releases only after
// both queues have stayed below the low-water mark (1/32) for a full
// ProtectionRelease window. In the kernel implementation equivalent
// stickiness comes from the flood keeping the listen queue saturated with
// half-open state for the SYN-ACK retransmission lifetime (Fig. 10); the
// release window reproduces the ~30 s post-attack recovery the paper
// measures. See DESIGN.md for the substitution rationale.
func (s *Server) protectionActive() bool {
	if s.cfg.AlwaysChallenge {
		return true
	}
	now := s.eng.Now()
	if s.listenQ.Len() >= high(s.cfg.Backlog) || s.acceptQ.Len() >= high(s.cfg.AcceptBacklog) {
		s.protLatched = true
		s.latchLoadedAt = now
		return true
	}
	if !s.protLatched {
		return false
	}
	if s.listenQ.Len() >= low(s.cfg.Backlog) || s.acceptQ.Len() >= low(s.cfg.AcceptBacklog) {
		s.latchLoadedAt = now
		return true
	}
	if now-s.latchLoadedAt >= s.cfg.ProtectionRelease {
		s.protLatched = false
	}
	return s.protLatched
}

// high and low are the controller watermarks. Queue occupancy is near zero
// in normal operation (the worker pool drains the accept queue and
// handshakes clear the listen queue within an RTT), so even 1/16 of
// capacity indicates overload; engaging there bounds how many queue slots
// an attack claims per controller cycle.
func high(capacity int) int { return max(capacity/16, 1) }
func low(capacity int) int  { return max(capacity/32, 1) }

// normalSYN allocates half-open state and replies SYN-ACK, dropping the SYN
// when the backlog is exhausted.
func (s *Server) normalSYN(seg tcpkit.Segment, peer tcpkit.PeerKey, mss uint16, wscale uint8) {
	serverISN := s.isns.Next()
	half := &tcpkit.HalfOpen{
		Peer:      peer,
		ClientISN: seg.Seq,
		ServerISN: serverISN,
		MSS:       mss,
		WScale:    wscale,
		CreatedAt: s.eng.Now(),
		ExpiresAt: s.eng.Now() + s.cfg.SynAckTimeout,
	}
	if !s.listenQ.Add(half) {
		s.metrics.SYNsDropped++
		return
	}
	s.metrics.PlainSynAcks.Add(s.eng.Now(), 1)
	s.send(s.synAck(seg, serverISN, nil))
}

// sendChallenge replies with a stateless SYN-ACK carrying a puzzle. It is
// sent even when the accept queue overflows (the paper's modified
// behaviour), so that solving clients can claim slots the moment they open.
func (s *Server) sendChallenge(seg tcpkit.Segment) {
	flow := seg.Flow()
	ch := s.engine.Issue(flow)
	s.chargeHashes(ch.Params.GenerateHashes())
	opt, err := tcpopt.EncodeChallenge(ch, true)
	if err != nil {
		// Difficulty misconfiguration; account and drop.
		s.metrics.EncodeFailures++
		return
	}
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{opt})
	if err != nil {
		s.metrics.EncodeFailures++
		return
	}
	s.metrics.ChallengesSent.Add(s.eng.Now(), 1)
	// The SYN-ACK is stateless: the ISN is reconstructed at ACK time from
	// the cookie jar so a bare ACK cannot collide with a real half-open.
	s.send(s.synAck(seg, s.jar.Encode(flow, 0), opts))
}

// sendCookieSynAck replies with a stateless SYN-cookie SYN-ACK.
func (s *Server) sendCookieSynAck(seg tcpkit.Segment, mss uint16) {
	s.chargeHashes(1)
	cookie := s.jar.Encode(seg.Flow(), mss)
	s.metrics.CookieSynAcks.Add(s.eng.Now(), 1)
	s.send(s.synAck(seg, cookie, nil))
}

// synAck builds a SYN-ACK for a SYN.
func (s *Server) synAck(syn tcpkit.Segment, serverISN uint32, opts []byte) tcpkit.Segment {
	if opts == nil {
		opts = defaultSynAckOptions()
	}
	return tcpkit.Segment{
		Src: s.cfg.Addr, Dst: syn.Src,
		SrcPort: s.cfg.Port, DstPort: syn.SrcPort,
		Seq: serverISN, Ack: syn.Seq + 1,
		Flags:   tcpkit.FlagSYN | tcpkit.FlagACK,
		Window:  65535,
		Options: opts,
	}
}

// onACK processes a bare ACK: handshake completion (stateful, cookie, or
// puzzle path) or data on an established connection.
func (s *Server) onACK(seg tcpkit.Segment) {
	peer := tcpkit.PeerOf(seg)

	if c, ok := s.conns[peer]; ok {
		s.onData(c, seg)
		return
	}
	if half, ok := s.listenQ.Get(peer); ok {
		s.completeStateful(seg, half)
		return
	}
	if s.cfg.Protection == ProtectionSYNCache {
		if entry, ok := s.cache.Take(peer); ok {
			s.establish(peer, entry.MSS, false)
			return
		}
	}

	switch s.cfg.Protection {
	case ProtectionPuzzles:
		s.completePuzzle(seg)
	case ProtectionCookies:
		s.completeCookie(seg)
	default:
		// No state, no defense path: an ACK for a connection we do not
		// know. If it carries data the peer was deceived or stale; reset.
		if seg.PayloadLen > 0 {
			s.sendRST(seg)
		}
	}
}

// completeStateful finishes a handshake that has listen-queue state.
func (s *Server) completeStateful(seg tcpkit.Segment, half *tcpkit.HalfOpen) {
	peer := half.Peer
	if s.acceptQ.Full() {
		// The accept queue has no room: keep the half-open entry (the
		// client may retransmit) and drop the ACK.
		s.metrics.AcceptOverflow++
		return
	}
	s.listenQ.Remove(peer)
	s.establish(peer, half.MSS, false)
}

// completeCookie validates a stateless cookie handshake.
func (s *Server) completeCookie(seg tcpkit.Segment) {
	flow := seg.Flow()
	flow.ISN = seg.Seq - 1 // the client's SYN ISN preceded this ACK
	s.chargeHashes(1)
	mss, err := s.jar.Decode(flow, seg.Ack-1)
	if err != nil {
		s.metrics.CookieFailures++
		if seg.PayloadLen > 0 {
			s.sendRST(seg)
		}
		return
	}
	if s.acceptQ.Full() {
		s.metrics.AcceptOverflow++
		return
	}
	s.establish(tcpkit.PeerOf(seg), mss, false)
	// A data-bearing ACK (cookie + piggybacked request) is processed as
	// data immediately after establishment.
	if c, ok := s.conns[tcpkit.PeerOf(seg)]; ok && seg.PayloadLen > 0 {
		s.onData(c, seg)
	}
}

// completePuzzle verifies a puzzle solution carried on the ACK. The order of
// checks follows §5: when the accept queue is full the ACK is ignored
// *before* any verification work, deceiving non-compliant senders; a
// later data packet from such a peer draws an RST.
func (s *Server) completePuzzle(seg tcpkit.Segment) {
	opts, err := tcpopt.ParseOptions(seg.Options)
	if err != nil {
		s.metrics.SolutionMalformed++
		return
	}
	solOpt, ok := tcpopt.FindOption(opts, tcpopt.KindSolution)
	if !ok {
		// Bare ACK without solution while protection is active: the peer
		// either ignored the challenge (unpatched) or this is stray; it is
		// silently ignored. Data probes draw an RST (deception reveal).
		s.metrics.AcksWithoutSolution++
		if seg.PayloadLen > 0 {
			s.sendRST(seg)
		}
		return
	}
	if s.acceptQ.Full() {
		s.metrics.DeceptionIgnored++
		return
	}
	blk, err := tcpopt.ParseSolution(solOpt, s.engine.Params())
	if err != nil {
		s.metrics.SolutionMalformed++
		return
	}
	flow := seg.Flow()
	flow.ISN = seg.Seq - 1
	info, err := s.engine.Verify(flow, blk.Solution)
	s.chargeHashes(float64(info.Hashes))
	if err != nil {
		s.metrics.SolutionInvalid++
		return
	}
	peer := tcpkit.PeerOf(seg)
	if s.acceptQ.Contains(peer) {
		// Replayed solution: at most one slot per flow (§7).
		s.metrics.ReplaysBlocked++
		return
	}
	s.metrics.SolutionsVerified++
	s.establish(peer, blk.MSS, true)
}

// onRST tears down any established state for the peer.
func (s *Server) onRST(seg tcpkit.Segment) {
	peer := tcpkit.PeerOf(seg)
	if c, ok := s.conns[peer]; ok {
		s.closeConn(c, false)
	}
	s.listenQ.Remove(peer)
}

// sendRST signals that no connection exists.
func (s *Server) sendRST(seg tcpkit.Segment) {
	s.metrics.RSTsSent++
	s.send(tcpkit.Segment{
		Src: s.cfg.Addr, Dst: seg.Src,
		SrcPort: s.cfg.Port, DstPort: seg.SrcPort,
		Seq: seg.Ack, Ack: seg.Seq,
		Flags: tcpkit.FlagRST,
	})
}

// parseSynOptions extracts MSS and window scale from SYN options, with the
// kernel defaults when absent or malformed.
func parseSynOptions(raw []byte) (mss uint16, wscale uint8) {
	mss, wscale = 536, 0
	opts, err := tcpopt.ParseOptions(raw)
	if err != nil {
		return mss, wscale
	}
	if o, ok := tcpopt.FindOption(opts, tcpopt.KindMSS); ok {
		if v, err := tcpopt.ParseMSS(o); err == nil {
			mss = v
		}
	}
	if o, ok := tcpopt.FindOption(opts, tcpopt.KindWScale); ok {
		if v, err := tcpopt.ParseWScale(o); err == nil {
			wscale = v
		}
	}
	return mss, wscale
}

// defaultSynAckOptions advertises the server's MSS and window scale.
func defaultSynAckOptions() []byte {
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{
		tcpopt.MSSOption(1460),
		tcpopt.WScaleOption(7),
	})
	if err != nil {
		return nil
	}
	return opts
}
