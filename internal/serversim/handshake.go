package serversim

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// onSYN counts and parses a connection request, then hands it to the
// configured defense strategy. The strategy decides between the stateful
// path (NormalSYN), a stateless reply (cookies, challenges, cache spill),
// or a drop — see package defense for the registered behaviours.
func (s *Server) onSYN(seg tcpkit.Segment) {
	s.metrics.SYNsReceived++
	mss, wscale := parseSynOptions(seg.Options)
	s.defense.OnSYN(s.ctx(), seg, mss, wscale)
}

// overloadActive implements the §5 controller latch shared by every
// defense that keys off queue pressure. It engages once either queue
// climbs past its high-water mark (1/16 of capacity — the sysctl-style
// watermark that bounds how much of the queue an attack can claim before
// the defense reacts) and releases only after both queues have stayed
// below the low-water mark (1/32) for a full ProtectionRelease window. In
// the kernel implementation equivalent stickiness comes from the flood
// keeping the listen queue saturated with half-open state for the SYN-ACK
// retransmission lifetime (Fig. 10); the release window reproduces the
// ~30 s post-attack recovery the paper measures. See DESIGN.md for the
// substitution rationale.
func (s *Server) overloadActive() bool {
	if s.cfg.AlwaysChallenge {
		return true
	}
	now := s.eng.Now()
	if s.listenQ.Len() >= high(s.cfg.Backlog) || s.acceptQ.Len() >= high(s.cfg.AcceptBacklog) {
		s.protLatched = true
		s.latchLoadedAt = now
		return true
	}
	if !s.protLatched {
		return false
	}
	if s.listenQ.Len() >= low(s.cfg.Backlog) || s.acceptQ.Len() >= low(s.cfg.AcceptBacklog) {
		s.latchLoadedAt = now
		return true
	}
	if now-s.latchLoadedAt >= s.cfg.ProtectionRelease {
		s.protLatched = false
	}
	return s.protLatched
}

// high and low are the controller watermarks. Queue occupancy is near zero
// in normal operation (the worker pool drains the accept queue and
// handshakes clear the listen queue within an RTT), so even 1/16 of
// capacity indicates overload; engaging there bounds how many queue slots
// an attack claims per controller cycle.
func high(capacity int) int { return max(capacity/16, 1) }
func low(capacity int) int  { return max(capacity/32, 1) }

// normalSYN allocates half-open state and replies SYN-ACK, dropping the SYN
// when the backlog is exhausted.
func (s *Server) normalSYN(seg tcpkit.Segment, mss uint16, wscale uint8) {
	peer := tcpkit.PeerOf(seg)
	serverISN := s.isns.Next()
	half := &tcpkit.HalfOpen{
		Peer:      peer,
		ClientISN: seg.Seq,
		ServerISN: serverISN,
		MSS:       mss,
		WScale:    wscale,
		CreatedAt: s.eng.Now(),
		ExpiresAt: s.eng.Now() + s.cfg.SynAckTimeout,
	}
	if !s.listenQ.Add(half) {
		s.metrics.SYNsDropped++
		return
	}
	s.metrics.PlainSynAcks.Add(s.eng.Now(), 1)
	s.send(s.synAck(seg, serverISN, nil))
}

// synAck builds a SYN-ACK for a SYN.
func (s *Server) synAck(syn tcpkit.Segment, serverISN uint32, opts []byte) tcpkit.Segment {
	if opts == nil {
		opts = defaultSynAckOptions()
	}
	return tcpkit.Segment{
		Src: s.cfg.Addr, Dst: syn.Src,
		SrcPort: s.cfg.Port, DstPort: syn.SrcPort,
		Seq: serverISN, Ack: syn.Seq + 1,
		Flags:   tcpkit.FlagSYN | tcpkit.FlagACK,
		Window:  65535,
		Options: opts,
	}
}

// onACK processes a bare ACK: data on an established connection, stateful
// handshake completion, then whatever stateless completion path the
// defense strategy provides (cookies, puzzle solutions, cache entries).
// An ACK no layer claims is RST-answered when it carries data.
func (s *Server) onACK(seg tcpkit.Segment) {
	peer := tcpkit.PeerOf(seg)

	if c, ok := s.conns[peer]; ok {
		s.onData(c, seg)
		return
	}
	if half, ok := s.listenQ.Get(peer); ok {
		s.completeStateful(seg, half)
		return
	}
	if s.defense.OnACK(s.ctx(), seg) {
		return
	}
	// No state, no defense path: an ACK for a connection we do not
	// know. If it carries data the peer was deceived or stale; reset.
	if seg.PayloadLen > 0 {
		s.sendRST(seg)
	}
}

// completeStateful finishes a handshake that has listen-queue state.
func (s *Server) completeStateful(seg tcpkit.Segment, half *tcpkit.HalfOpen) {
	peer := half.Peer
	if s.acceptQ.Full() {
		// The accept queue has no room: keep the half-open entry (the
		// client may retransmit) and drop the ACK.
		s.metrics.AcceptOverflow++
		return
	}
	s.listenQ.Remove(peer)
	s.establish(peer, half.MSS, false)
}

// onRST tears down any established state for the peer.
func (s *Server) onRST(seg tcpkit.Segment) {
	peer := tcpkit.PeerOf(seg)
	if c, ok := s.conns[peer]; ok {
		s.closeConn(c, false)
	}
	s.listenQ.Remove(peer)
}

// sendRST signals that no connection exists.
func (s *Server) sendRST(seg tcpkit.Segment) {
	s.metrics.RSTsSent++
	s.send(tcpkit.Segment{
		Src: s.cfg.Addr, Dst: seg.Src,
		SrcPort: s.cfg.Port, DstPort: seg.SrcPort,
		Seq: seg.Ack, Ack: seg.Seq,
		Flags: tcpkit.FlagRST,
	})
}

// parseSynOptions extracts MSS and window scale from SYN options, with the
// kernel defaults when absent or malformed.
func parseSynOptions(raw []byte) (mss uint16, wscale uint8) {
	mss, wscale = 536, 0
	opts, err := tcpopt.ParseOptions(raw)
	if err != nil {
		return mss, wscale
	}
	if o, ok := tcpopt.FindOption(opts, tcpopt.KindMSS); ok {
		if v, err := tcpopt.ParseMSS(o); err == nil {
			mss = v
		}
	}
	if o, ok := tcpopt.FindOption(opts, tcpopt.KindWScale); ok {
		if v, err := tcpopt.ParseWScale(o); err == nil {
			wscale = v
		}
	}
	return mss, wscale
}

// defaultSynAckOptions advertises the server's MSS and window scale.
func defaultSynAckOptions() []byte {
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{
		tcpopt.MSSOption(1460),
		tcpopt.WScaleOption(7),
	})
	if err != nil {
		return nil
	}
	return opts
}
