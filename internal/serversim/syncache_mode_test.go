package serversim

import (
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"testing"
	"time"
)

func TestSYNCacheExtendsBacklog(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseSYNCache, Backlog: 2})
	// Four SYNs: two fill the listen queue, two spill into the cache.
	for i := 0; i < 4; i++ {
		f.syn(uint16(7100+i), uint32(i))
		f.run(20 * time.Millisecond)
	}
	if got := f.server.ListenLen(); got != 2 {
		t.Fatalf("ListenLen = %d, want 2", got)
	}
	if f.server.Metrics().SYNsDropped != 0 {
		t.Fatalf("SYNsDropped = %d, want 0 (cache absorbs)", f.server.Metrics().SYNsDropped)
	}
	// All four SYN-ACKs were sent; complete the cached ones.
	synacks := 0
	for _, seg := range f.peer.got {
		if seg.Flags.Has(0x12) { // SYN|ACK
			synacks++
			f.ack(seg.DstPort, seg.Ack-1, seg.Seq, nil, 0)
		}
	}
	f.run(50 * time.Millisecond)
	if synacks != 4 {
		t.Fatalf("SYN-ACKs = %d, want 4", synacks)
	}
	if got := f.server.OpenConns(); got != 4 {
		t.Errorf("OpenConns = %d, want 4 (cache path establishes)", got)
	}
}

func TestSYNCacheEventuallyOverflows(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseSYNCache, Backlog: 2})
	// Cache capacity is 4× backlog = 8; with the 2-slot listen queue a
	// total of 10 half-opens fit.
	for i := 0; i < 20; i++ {
		f.syn(uint16(7200+i), uint32(i))
		f.run(10 * time.Millisecond)
	}
	if f.server.Metrics().SYNsDropped == 0 {
		t.Error("cache never overflowed — backlog-full behaviour not reached")
	}
}

func TestAdaptiveControllerUnit(t *testing.T) {
	cfg := puzzleCfg(false)
	cfg.AdaptiveDifficulty = true
	cfg.AdaptInterval = 100 * time.Millisecond
	cfg.AdaptMaxM = 6
	cfg.AcceptBacklog = 4
	cfg.Workers = -1
	f := newFixture(t, cfg)
	// Latch the controller and keep the accept queue above its watermark:
	// a full listen queue plus established connections.
	fillListenQueue(f, t)
	for i := 0; i < 3; i++ {
		f.syn(uint16(7300+i), uint32(i))
		f.run(30 * time.Millisecond)
		sa := f.peer.lastSynAck(t)
		if sa.DstPort == uint16(7300+i) {
			solveAndAck(t, f, sa, uint32(i))
		}
		f.run(30 * time.Millisecond)
	}
	f.run(2 * time.Second)
	if got := f.server.Issuer().Params().M; got <= 4 {
		t.Errorf("adaptive m = %d, want climbed above baseline 4", got)
	}
	if got := f.server.Issuer().Params().M; got > cfg.AdaptMaxM {
		t.Errorf("adaptive m = %d exceeds cap %d", got, cfg.AdaptMaxM)
	}
}
