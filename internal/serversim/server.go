package serversim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/srvmetrics"
	"github.com/tcppuzzles/tcppuzzles/internal/syncache"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/syncookie"
)

// Metrics is the server measurement state (defined in internal/srvmetrics
// so defense plugins account into it through the ServerCtx facade).
type Metrics = srvmetrics.Metrics

// conn is a server-side established connection.
type conn struct {
	peer       tcpkit.PeerKey
	mss        uint16
	accepted   bool
	hasWorker  bool
	pendingReq int // requested response bytes, 0 if no request yet
	idleEv     netsim.Timer
	createdAt  time.Duration
}

// Server is the simulated protected server node.
type Server struct {
	cfg Config
	eng *netsim.Engine
	net *netsim.Network
	rnd *rand.Rand

	issuer  *puzzle.Issuer
	engine  pzengine.Engine
	jar     *syncookie.Jar
	cache   *syncache.Cache
	defense defense.Defense

	listenQ *tcpkit.ListenQueue
	acceptQ *tcpkit.AcceptQueue
	isns    *tcpkit.ISNSource
	cpu     *cpumodel.CPU

	workersFree   int
	conns         map[tcpkit.PeerKey]*conn
	protLatched   bool
	latchLoadedAt time.Duration
	baselineM     uint8

	metrics *Metrics
}

// New builds a server on the given engine and network and attaches it. The
// protection strategy is instantiated from the defense registry by
// cfg.Defense; unknown names fail with the registered alternatives.
func New(eng *netsim.Engine, network *netsim.Network, link netsim.LinkConfig, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg:         cfg,
		eng:         eng,
		net:         network,
		rnd:         rand.New(rand.NewSource(cfg.Seed)),
		isns:        tcpkit.NewISNSource(cfg.Seed + 1),
		cpu:         cpumodel.NewCPU(cfg.Device, cfg.MetricBucket),
		workersFree: max(cfg.Workers, 0),
		conns:       make(map[tcpkit.PeerKey]*conn),
		metrics:     srvmetrics.New(cfg.MetricBucket),
	}
	simClock := func() time.Time { return time.Unix(0, 0).Add(eng.Now()) }
	issuer, err := puzzle.NewIssuer(
		puzzle.WithParams(cfg.PuzzleParams),
		puzzle.WithMaxAge(cfg.PuzzleMaxAge),
		puzzle.WithClock(simClock),
	)
	if err != nil {
		return nil, fmt.Errorf("serversim: issuer: %w", err)
	}
	s.issuer = issuer
	if cfg.SimulatedCrypto {
		s.engine = pzengine.Sim{Is: issuer}
	} else {
		s.engine = pzengine.Real{Is: issuer}
	}
	s.jar = syncookie.New([]byte{byte(cfg.Seed)}, syncookie.WithClock(simClock))
	s.cache = syncache.New(cfg.Backlog*4, syncache.RejectNew)
	s.listenQ = tcpkit.NewListenQueue(cfg.Backlog, func(n int) {
		s.metrics.ListenLen.Set(eng.Now(), float64(n))
	})
	s.acceptQ = tcpkit.NewAcceptQueue(cfg.AcceptBacklog, func(n int) {
		s.metrics.AcceptLen.Set(eng.Now(), float64(n))
	})
	d, err := defense.New(cfg.Defense, s.ctx())
	if err != nil {
		return nil, fmt.Errorf("serversim: %w", err)
	}
	s.defense = d
	if err := network.Attach(s, link); err != nil {
		return nil, fmt.Errorf("serversim: %w", err)
	}
	s.scheduleSweep()
	if cfg.AdaptiveDifficulty {
		s.baselineM = cfg.PuzzleParams.M
		s.scheduleAdapt()
	}
	return s, nil
}

// scheduleAdapt runs the closed-loop difficulty controller: raise m while
// the latched overload signal is still losing accept-queue ground, decay
// back to the baseline once the attack subsides.
func (s *Server) scheduleAdapt() {
	s.eng.Schedule(s.cfg.AdaptInterval, func() {
		p := s.engine.Params()
		switch {
		case s.protLatched && s.acceptQ.Len() >= high(s.cfg.AcceptBacklog) && p.M < s.cfg.AdaptMaxM:
			p.M++
			if err := s.engine.SetParams(p); err == nil {
				s.metrics.DifficultyM.Set(s.eng.Now(), float64(p.M))
			}
		case !s.protLatched && p.M > s.baselineM:
			p.M--
			if err := s.engine.SetParams(p); err == nil {
				s.metrics.DifficultyM.Set(s.eng.Now(), float64(p.M))
			}
		}
		s.scheduleAdapt()
	})
}

// Addr implements netsim.Node.
func (s *Server) Addr() netsim.Addr { return s.cfg.Addr }

// SnapshotState implements netsim.Snapshotter: a deep capture of the
// whole server — listener queues, connections, defense plugin state,
// worker pool, CPU model, metrics — so speculative shard execution can
// roll the server back to a committed window.
// The walk reaches fields the copier cannot restore generically; each is
// rollback-safe here: capture and restore run with the shard quiescent, so
// the issuer's RWMutex is always in its unlocked zero state when copied,
// and the issuer/jar clock closures and listen/accept-queue length
// callbacks capture only s.eng and s.metrics, both restored separately
// (engine snapshot and this capture respectively).
//
//tcpz:allow snapfields — shard is quiescent at capture/restore (mutexes unlocked) and every closure's captured state (engine, metrics) is restored through other roots
func (s *Server) SnapshotState() any { return netsim.CaptureState(s) }

// RestoreState implements netsim.Snapshotter.
func (s *Server) RestoreState(state any) { state.(*netsim.StateSnap).Restore() }

// Config returns the server configuration (after defaulting).
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the measurement state.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CPU exposes the server CPU model (utilisation plots).
func (s *Server) CPU() *cpumodel.CPU { return s.cpu }

// Issuer exposes the puzzle issuer for runtime retuning (sysctl analogue).
func (s *Server) Issuer() *puzzle.Issuer { return s.issuer }

// Defense exposes the instantiated protection strategy.
func (s *Server) Defense() defense.Defense { return s.defense }

// ListenLen and AcceptLen report current queue occupancy.
func (s *Server) ListenLen() int { return s.listenQ.Len() }

// AcceptLen reports current accept-queue occupancy.
func (s *Server) AcceptLen() int { return s.acceptQ.Len() }

// scheduleSweep expires half-open state once per second and gives the
// defense strategy its periodic tick.
func (s *Server) scheduleSweep() {
	s.eng.Schedule(time.Second, func() {
		s.listenQ.Expire(s.eng.Now())
		s.cache.Expire(s.eng.Now())
		s.defense.OnTick(s.ctx())
		s.scheduleSweep()
	})
}

// Handle implements netsim.Node.
func (s *Server) Handle(seg tcpkit.Segment) {
	if seg.DstPort != s.cfg.Port {
		return
	}
	s.metrics.BytesIn.Add(s.eng.Now(), float64(seg.WireSize()))
	switch {
	case seg.Flags.Has(tcpkit.FlagSYN) && !seg.Flags.Has(tcpkit.FlagACK):
		s.onSYN(seg)
	case seg.Flags.Has(tcpkit.FlagRST):
		s.onRST(seg)
	case seg.Flags.Has(tcpkit.FlagACK):
		s.onACK(seg)
	}
}

// send transmits a segment from the server, accounting outgoing bytes.
func (s *Server) send(seg tcpkit.Segment) {
	s.metrics.BytesOut.Add(s.eng.Now(), float64(seg.WireSize()))
	s.net.Send(seg)
}

// chargeHashes runs hash work on the server CPU.
func (s *Server) chargeHashes(n float64) {
	s.cpu.Charge(s.eng.Now(), n)
}
