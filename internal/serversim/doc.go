// Package serversim models the protected server of the paper's testbed
// inside the deterministic discrete-event engine (internal/netsim).
//
// A Server terminates simulated TCP handshakes under a protection
// strategy resolved from the defense plugin registry (package defense) by
// the Config.Defense name — the paper's four modes (none, SYN cookies, a
// SYN cache, client puzzles) plus any other registered plugin — and
// serves application requests through a bounded worker pool fed by
// listen and accept queues, the two resources the paper's floods exhaust.
// The server core owns the shared machinery every strategy composes: the
// queues, the §5 overload latch, the cookie jar, the puzzle engine (with
// the closed-loop difficulty controller of §7), and the SYN cache; a
// strategy reaches them only through the narrow defense.ServerCtx facade.
// Crypto costs are charged to a modelled CPU (internal/cpumodel) rather
// than computed, so a 600-second deployment simulates in seconds while
// preserving the paper's load structure.
//
// Every rate, queue occupancy, CPU share, and counter is recorded in
// Metrics as per-bucket series; the figure drivers in
// internal/experiments turn those series into the paper's plots. All
// randomness derives from Config.Seed, keeping runs bit-for-bit
// reproducible at any runner parallelism.
package serversim
