// Package serversim models the protected server of the paper's testbed
// inside the deterministic discrete-event engine (internal/netsim).
//
// A Server terminates simulated TCP handshakes under one of four
// Protection modes — none, SYN cookies, a SYN cache, or client puzzles —
// and serves application requests through a bounded worker pool fed by
// listen and accept queues, the two resources the paper's floods exhaust.
// Puzzle protection is opportunistic by default (challenges engage only
// when queue pressure indicates an attack, §5) and can adapt its
// difficulty with the closed-loop controller of §7. Crypto costs are
// charged to a modelled CPU (internal/cpumodel) rather than computed, so
// a 600-second deployment simulates in seconds while preserving the
// paper's load structure.
//
// Every rate, queue occupancy, CPU share, and counter is recorded in
// Metrics as per-bucket series; the figure drivers in
// internal/experiments turn those series into the paper's plots. All
// randomness derives from Config.Seed, keeping runs bit-for-bit
// reproducible at any runner parallelism.
package serversim
