package serversim

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Config describes the server deployment.
type Config struct {
	// Addr and Port are the listening endpoint.
	Addr [4]byte
	Port uint16

	// Defense names the protection strategy in the defense registry
	// (sweep.DefenseNone, sweep.DefensePuzzles, ...). Empty selects the
	// paper's default, puzzles.
	Defense sweep.Defense
	// PuzzleParams is the difficulty used by puzzle-issuing defenses.
	PuzzleParams puzzle.Params
	// PuzzleMaxAge is the challenge replay window.
	PuzzleMaxAge time.Duration
	// AlwaysChallenge disables the opportunistic controller and latches
	// the overload signal permanently — the ablation of §5's design
	// choice (the puzzles defense then challenges every SYN).
	AlwaysChallenge bool
	// ProtectionRelease is how long both queues must stay below the
	// low-water mark before the overload latch disengages; defaults
	// to SynAckTimeout, reproducing the paper's ~30 s recovery.
	ProtectionRelease time.Duration
	// AdaptiveDifficulty enables the closed-loop controller of §7's future
	// work: while the overload latch is engaged and the accept queue keeps
	// climbing, the difficulty m is raised one bit per AdaptInterval (up
	// to AdaptMaxM); once the latch disengages it decays back to the
	// configured baseline.
	AdaptiveDifficulty bool
	// AdaptInterval is the adaptation period (default 5 s).
	AdaptInterval time.Duration
	// AdaptMaxM caps the adaptive difficulty (default 18 bits — the
	// largest per-solution difficulty a w_av-budget client can still pay,
	// k·2^(m-1) ≤ 2·w_av; beyond it the controller would price out the
	// clients it is defending).
	AdaptMaxM uint8
	// SimulatedCrypto swaps genuine SHA-256 verification for the
	// cost-equivalent simulated engine (see internal/pzengine), letting
	// experiments run 17-bit difficulties without burning host cycles.
	SimulatedCrypto bool

	// Backlog bounds the listen queue (half-open connections).
	Backlog int
	// AcceptBacklog bounds the accept queue (established, unaccepted).
	AcceptBacklog int
	// SynAckTimeout expires half-open connections (abstracting SYN-ACK
	// retransmission and reset timers).
	SynAckTimeout time.Duration

	// Workers is the application worker pool size (Apache-style). Zero
	// selects the default; -1 disables the pool entirely (nothing drains
	// the accept queue — useful in tests).
	Workers int
	// ServiceTime is the mean (exponential) per-request service time of a
	// worker; aggregate capacity is Workers/ServiceTime.
	ServiceTime time.Duration
	// IdleTimeout is how long a worker waits for a request on an accepted
	// connection before giving up — the resource idle attackers pin.
	IdleTimeout time.Duration

	// MSS is the server's maximum segment size for response data.
	MSS int

	// Device models the server CPU for hash accounting (Fig. 9).
	Device cpumodel.Device
	// PerRequestHashEquiv charges baseline (non-crypto) application work
	// per served request, expressed in hash-equivalents, so nominal CPU
	// load is nonzero.
	PerRequestHashEquiv float64

	// Seed drives the server's deterministic randomness.
	Seed int64
	// MetricBucket is the width of metric time buckets.
	MetricBucket time.Duration
}

// DefaultConfig returns the paper's server deployment: backlog and accept
// queue of 4096 (Fig. 10 saturates near 4000), an Apache-like pool of 256
// workers at ~230 ms mean service (aggregate µ ≈ 1100 req/s, Fig. 3b) with
// a 2 s idle timeout — which clears a saturated 4096-slot accept queue in
// ≈30 s, the paper's measured recovery time — 30 s half-open expiry, and
// the HP Proliant CPU profile.
func DefaultConfig() Config {
	return Config{
		Addr:                [4]byte{10, 0, 0, 1},
		Port:                80,
		Defense:             sweep.DefensePuzzles,
		PuzzleParams:        puzzle.Params{K: 2, M: 17, L: 32},
		PuzzleMaxAge:        30 * time.Second,
		Backlog:             4096,
		AcceptBacklog:       4096,
		SynAckTimeout:       30 * time.Second,
		Workers:             256,
		ServiceTime:         230 * time.Millisecond,
		IdleTimeout:         2 * time.Second,
		MSS:                 1448,
		Device:              cpumodel.Server,
		PerRequestHashEquiv: 2000,
		Seed:                1,
		MetricBucket:        time.Second,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Port == 0 {
		c.Port = d.Port
	}
	if c.Defense == "" {
		c.Defense = d.Defense
	}
	if c.PuzzleParams == (puzzle.Params{}) {
		c.PuzzleParams = d.PuzzleParams
	}
	if c.PuzzleMaxAge == 0 {
		c.PuzzleMaxAge = d.PuzzleMaxAge
	}
	if c.Backlog == 0 {
		c.Backlog = d.Backlog
	}
	if c.AcceptBacklog == 0 {
		c.AcceptBacklog = d.AcceptBacklog
	}
	if c.SynAckTimeout == 0 {
		c.SynAckTimeout = d.SynAckTimeout
	}
	if c.ProtectionRelease == 0 {
		c.ProtectionRelease = c.SynAckTimeout
	}
	if c.AdaptInterval == 0 {
		c.AdaptInterval = 5 * time.Second
	}
	if c.AdaptMaxM == 0 {
		c.AdaptMaxM = 18
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = d.ServiceTime
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.Device.HashRate == 0 {
		c.Device = d.Device
	}
	if c.PerRequestHashEquiv == 0 {
		c.PerRequestHashEquiv = d.PerRequestHashEquiv
	}
	if c.MetricBucket == 0 {
		c.MetricBucket = d.MetricBucket
	}
}
