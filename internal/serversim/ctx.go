package serversim

import (
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/srvmetrics"
	"github.com/tcppuzzles/tcppuzzles/internal/syncache"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/syncookie"
)

// serverCtx is the server's implementation of defense.ServerCtx: the
// narrow facade a protection strategy sees. It is a value wrapper, cheap
// to mint per call, and deliberately exposes nothing beyond what the
// registered strategies need — queue pressure, handshake primitives,
// crypto-cost charging, and shared measurement state.
type serverCtx struct{ s *Server }

var _ defense.ServerCtx = serverCtx{}

// ctx mints the facade for a defense hook invocation.
func (s *Server) ctx() defense.ServerCtx { return serverCtx{s} }

// Now implements defense.ServerCtx.
func (c serverCtx) Now() time.Duration { return c.s.eng.Now() }

// Rand implements defense.ServerCtx.
func (c serverCtx) Rand() *rand.Rand { return c.s.rnd }

// Backlog implements defense.ServerCtx.
func (c serverCtx) Backlog() int { return c.s.cfg.Backlog }

// AcceptBacklog implements defense.ServerCtx.
func (c serverCtx) AcceptBacklog() int { return c.s.cfg.AcceptBacklog }

// SynAckTimeout implements defense.ServerCtx.
func (c serverCtx) SynAckTimeout() time.Duration { return c.s.cfg.SynAckTimeout }

// PuzzleParams implements defense.ServerCtx.
func (c serverCtx) PuzzleParams() puzzle.Params { return c.s.cfg.PuzzleParams }

// ListenLen implements defense.ServerCtx.
func (c serverCtx) ListenLen() int { return c.s.listenQ.Len() }

// ListenFull implements defense.ServerCtx.
func (c serverCtx) ListenFull() bool { return c.s.listenQ.Full() }

// ListenHighWater implements defense.ServerCtx.
func (c serverCtx) ListenHighWater() int { return high(c.s.cfg.Backlog) }

// AcceptLen implements defense.ServerCtx.
func (c serverCtx) AcceptLen() int { return c.s.acceptQ.Len() }

// AcceptFull implements defense.ServerCtx.
func (c serverCtx) AcceptFull() bool { return c.s.acceptQ.Full() }

// AcceptHighWater implements defense.ServerCtx.
func (c serverCtx) AcceptHighWater() int { return high(c.s.cfg.AcceptBacklog) }

// AcceptContains implements defense.ServerCtx.
func (c serverCtx) AcceptContains(peer tcpkit.PeerKey) bool { return c.s.acceptQ.Contains(peer) }

// OverloadActive implements defense.ServerCtx.
func (c serverCtx) OverloadActive() bool { return c.s.overloadActive() }

// NextISN implements defense.ServerCtx.
func (c serverCtx) NextISN() uint32 { return c.s.isns.Next() }

// NormalSYN implements defense.ServerCtx.
func (c serverCtx) NormalSYN(syn tcpkit.Segment, mss uint16, wscale uint8) {
	c.s.normalSYN(syn, mss, wscale)
}

// SynAck implements defense.ServerCtx.
func (c serverCtx) SynAck(syn tcpkit.Segment, serverISN uint32, opts []byte) {
	c.s.send(c.s.synAck(syn, serverISN, opts))
}

// SendRST implements defense.ServerCtx.
func (c serverCtx) SendRST(seg tcpkit.Segment) { c.s.sendRST(seg) }

// Establish implements defense.ServerCtx.
func (c serverCtx) Establish(peer tcpkit.PeerKey, mss uint16, solvedPuzzle bool) {
	c.s.establish(peer, mss, solvedPuzzle)
}

// DeliverData implements defense.ServerCtx.
func (c serverCtx) DeliverData(seg tcpkit.Segment) {
	if conn, ok := c.s.conns[tcpkit.PeerOf(seg)]; ok && seg.PayloadLen > 0 {
		c.s.onData(conn, seg)
	}
}

// ChargeHashes implements defense.ServerCtx.
func (c serverCtx) ChargeHashes(n float64) { c.s.chargeHashes(n) }

// Jar implements defense.ServerCtx.
func (c serverCtx) Jar() *syncookie.Jar { return c.s.jar }

// Puzzles implements defense.ServerCtx.
func (c serverCtx) Puzzles() pzengine.Engine { return c.s.engine }

// SynCache implements defense.ServerCtx.
func (c serverCtx) SynCache() *syncache.Cache { return c.s.cache }

// Metrics implements defense.ServerCtx.
func (c serverCtx) Metrics() *srvmetrics.Metrics { return c.s.metrics }
