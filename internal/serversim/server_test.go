package serversim

import (
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// scriptedPeer records everything the server sends it and lets tests inject
// segments manually.
type scriptedPeer struct {
	addr netsim.Addr
	eng  *netsim.Engine
	net  *netsim.Network
	got  []tcpkit.Segment
}

func (p *scriptedPeer) Addr() netsim.Addr { return p.addr }
func (p *scriptedPeer) Handle(seg tcpkit.Segment) {
	p.got = append(p.got, seg)
}

func (p *scriptedPeer) lastSynAck(t *testing.T) tcpkit.Segment {
	t.Helper()
	for i := len(p.got) - 1; i >= 0; i-- {
		if p.got[i].Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK) {
			return p.got[i]
		}
	}
	t.Fatal("no SYN-ACK received")
	return tcpkit.Segment{}
}

type fixture struct {
	eng    *netsim.Engine
	net    *netsim.Network
	server *Server
	peer   *scriptedPeer
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)
	cfg.Addr = [4]byte{10, 0, 0, 1}
	srv, err := New(eng, network, netsim.DefaultServerLink(), cfg)
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	peer := &scriptedPeer{addr: [4]byte{10, 0, 0, 99}, eng: eng, net: network}
	if err := network.Attach(peer, netsim.DefaultHostLink()); err != nil {
		t.Fatalf("Attach peer: %v", err)
	}
	return &fixture{eng: eng, net: network, server: srv, peer: peer}
}

func (f *fixture) syn(port uint16, isn uint32) {
	opts, _ := tcpopt.MarshalOptions([]tcpopt.Option{
		tcpopt.MSSOption(1460), tcpopt.WScaleOption(7),
	})
	f.net.Send(tcpkit.Segment{
		Src: f.peer.addr, Dst: f.server.cfg.Addr,
		SrcPort: port, DstPort: f.server.cfg.Port,
		Seq: isn, Flags: tcpkit.FlagSYN, Options: opts,
	})
}

func (f *fixture) ack(port uint16, isn, serverISN uint32, opts []byte, payload int) {
	f.net.Send(tcpkit.Segment{
		Src: f.peer.addr, Dst: f.server.cfg.Addr,
		SrcPort: port, DstPort: f.server.cfg.Port,
		Seq: isn + 1, Ack: serverISN + 1,
		Flags: tcpkit.FlagACK, Options: opts, PayloadLen: payload,
	})
}

func (f *fixture) run(d time.Duration) { f.eng.Run(f.eng.Now() + d) }

func TestPlainHandshakeEstablishes(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseNone})
	f.syn(5000, 100)
	f.run(100 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	if sa.Ack != 101 {
		t.Errorf("SYN-ACK ack = %d, want 101", sa.Ack)
	}
	f.ack(5000, 100, sa.Seq, nil, 0)
	f.run(100 * time.Millisecond)
	if f.server.OpenConns() != 1 {
		t.Fatalf("OpenConns = %d, want 1", f.server.OpenConns())
	}
	if f.server.Metrics().Established.Sum() != 1 {
		t.Errorf("Established = %v, want 1", f.server.Metrics().Established.Sum())
	}
}

func TestGettextRequestServed(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseNone})
	f.syn(5000, 100)
	f.run(100 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	f.ack(5000, 100, sa.Seq, nil, 0)
	// Request 5000 bytes.
	f.net.Send(tcpkit.Segment{
		Src: f.peer.addr, Dst: f.server.cfg.Addr,
		SrcPort: 5000, DstPort: f.server.cfg.Port,
		Flags: tcpkit.FlagACK | tcpkit.FlagPSH, PayloadLen: 200, Meta: 5000,
	})
	f.run(5 * time.Second)
	var dataBytes int
	for _, seg := range f.peer.got {
		dataBytes += seg.PayloadLen
	}
	if dataBytes < 5000 {
		t.Errorf("received %d data bytes, want ≥ 5000", dataBytes)
	}
	if f.server.Metrics().RequestsServed != 1 {
		t.Errorf("RequestsServed = %d, want 1", f.server.Metrics().RequestsServed)
	}
	// Connection closed after serving; worker released.
	if f.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0", f.server.OpenConns())
	}
	if f.server.FreeWorkers() != f.server.cfg.Workers {
		t.Errorf("FreeWorkers = %d, want %d", f.server.FreeWorkers(), f.server.cfg.Workers)
	}
}

func TestBacklogOverflowDropsSYNs(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseNone, Backlog: 4})
	for i := 0; i < 10; i++ {
		f.syn(uint16(6000+i), uint32(i))
		f.run(10 * time.Millisecond)
	}
	f.run(100 * time.Millisecond)
	if got := f.server.ListenLen(); got != 4 {
		t.Errorf("ListenLen = %d, want 4", got)
	}
	if f.server.Metrics().SYNsDropped != 6 {
		t.Errorf("SYNsDropped = %d, want 6", f.server.Metrics().SYNsDropped)
	}
}

func TestHalfOpenExpiry(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseNone, Backlog: 4, SynAckTimeout: 3 * time.Second})
	f.syn(7000, 1)
	f.run(time.Second)
	if f.server.ListenLen() != 1 {
		t.Fatalf("ListenLen = %d, want 1", f.server.ListenLen())
	}
	f.run(5 * time.Second)
	if f.server.ListenLen() != 0 {
		t.Errorf("ListenLen after expiry = %d, want 0", f.server.ListenLen())
	}
}

func TestCookiesStatelessWhenFull(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseCookies, Backlog: 1})
	f.syn(8000, 1)
	f.run(50 * time.Millisecond)
	// Queue now full; next SYN gets a cookie SYN-ACK with no state.
	f.syn(8001, 2)
	f.run(50 * time.Millisecond)
	if got := f.server.ListenLen(); got != 1 {
		t.Fatalf("ListenLen = %d, want 1 (cookie path is stateless)", got)
	}
	if f.server.Metrics().CookieSynAcks.Sum() != 1 {
		t.Errorf("CookieSynAcks = %v, want 1", f.server.Metrics().CookieSynAcks.Sum())
	}
	sa := f.peer.lastSynAck(t)
	if sa.DstPort != 8001 {
		t.Fatalf("last SYN-ACK for port %d, want 8001", sa.DstPort)
	}
	// Complete the cookie handshake.
	f.ack(8001, 2, sa.Seq, nil, 0)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 1 {
		t.Errorf("OpenConns = %d, want 1 (cookie ACK must establish)", f.server.OpenConns())
	}
}

func TestCookieForgeryRejected(t *testing.T) {
	f := newFixture(t, Config{Defense: sweep.DefenseCookies, Backlog: 1})
	f.syn(8000, 1)
	f.run(50 * time.Millisecond)
	// Forge an ACK with a made-up cookie.
	f.ack(8005, 77, 0xdeadbeef, nil, 0)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0 after forged cookie", f.server.OpenConns())
	}
	if f.server.Metrics().CookieFailures == 0 {
		t.Error("CookieFailures not incremented")
	}
}

func puzzleCfg(sim bool) Config {
	return Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         1,
		PuzzleParams:    puzzle.Params{K: 2, M: 4, L: 32},
		SimulatedCrypto: sim,
	}
}

// fillListenQueue occupies the single backlog slot so puzzles activate.
func fillListenQueue(f *fixture, t *testing.T) {
	t.Helper()
	f.syn(9999, 42)
	f.run(50 * time.Millisecond)
	if !f.server.listenQ.Full() {
		t.Fatal("listen queue not full")
	}
}

func TestPuzzleOpportunisticController(t *testing.T) {
	f := newFixture(t, puzzleCfg(false))
	// First SYN: queues empty → normal SYN-ACK, no challenge.
	f.syn(9000, 5)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	opts, err := tcpopt.ParseOptions(sa.Options)
	if err != nil {
		t.Fatalf("ParseOptions: %v", err)
	}
	if _, ok := tcpopt.FindOption(opts, tcpopt.KindChallenge); ok {
		t.Error("challenge issued while queues empty (controller not opportunistic)")
	}
	// Queue is now full (backlog 1) → next SYN must be challenged.
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa2 := f.peer.lastSynAck(t)
	if sa2.DstPort != 9001 {
		t.Fatalf("SYN-ACK for port %d, want 9001", sa2.DstPort)
	}
	opts2, err := tcpopt.ParseOptions(sa2.Options)
	if err != nil {
		t.Fatalf("ParseOptions: %v", err)
	}
	if _, ok := tcpopt.FindOption(opts2, tcpopt.KindChallenge); !ok {
		t.Error("no challenge issued while listen queue full")
	}
	if f.server.ListenLen() != 1 {
		t.Errorf("ListenLen = %d: challenge path must stay stateless", f.server.ListenLen())
	}
}

// solveAndAck solves the challenge in sa (real crypto) and sends the ACK.
func solveAndAck(t *testing.T, f *fixture, sa tcpkit.Segment, isn uint32) {
	t.Helper()
	opts, err := tcpopt.ParseOptions(sa.Options)
	if err != nil {
		t.Fatalf("ParseOptions: %v", err)
	}
	chOpt, ok := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	if !ok {
		t.Fatal("no challenge option")
	}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	sol, _, err := puzzle.Solve(blk.Challenge)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		t.Fatalf("EncodeSolution: %v", err)
	}
	raw, err := tcpopt.MarshalOptions([]tcpopt.Option{sOpt})
	if err != nil {
		t.Fatalf("MarshalOptions: %v", err)
	}
	f.ack(sa.DstPort, isn, sa.Seq, raw, 0)
}

func TestPuzzleSolvedHandshakeEstablishes(t *testing.T) {
	f := newFixture(t, puzzleCfg(false))
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	solveAndAck(t, f, f.peer.lastSynAck(t), 6)
	f.run(50 * time.Millisecond)
	if f.server.Metrics().SolutionsVerified != 1 {
		t.Errorf("SolutionsVerified = %d, want 1", f.server.Metrics().SolutionsVerified)
	}
	if f.server.OpenConns() != 1 {
		t.Errorf("OpenConns = %d, want 1", f.server.OpenConns())
	}
}

func TestPuzzleBogusSolutionRejected(t *testing.T) {
	// Not puzzleCfg: at the shared K=2/M=4 difficulty an all-zero guess
	// verifies by luck once per 2^8 runs (the issuer secret is drawn from
	// crypto/rand, so the test cannot pin the challenge). M=20 pushes the
	// false-accept odds to 2^-40 while verification stays instant.
	f := newFixture(t, Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         1,
		PuzzleParams:    puzzle.Params{K: 2, M: 20, L: 32},
		SimulatedCrypto: false,
	})
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	// Garbage solution of the right shape.
	p := f.server.engine.Params()
	garbage := puzzle.Solution{Params: p, Timestamp: uint32(f.eng.Now() / time.Second), Solutions: make([][]byte, p.K)}
	for i := range garbage.Solutions {
		garbage.Solutions[i] = make([]byte, p.SolutionBytes())
	}
	sOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{HasTimestamp: true, Solution: garbage})
	if err != nil {
		t.Fatalf("EncodeSolution: %v", err)
	}
	raw, _ := tcpopt.MarshalOptions([]tcpopt.Option{sOpt})
	f.ack(sa.DstPort, 6, sa.Seq, raw, 0)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0", f.server.OpenConns())
	}
	if f.server.Metrics().SolutionInvalid == 0 {
		t.Error("SolutionInvalid not incremented")
	}
}

func TestPuzzleAckWithoutSolutionIgnored(t *testing.T) {
	f := newFixture(t, puzzleCfg(false))
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	f.ack(sa.DstPort, 6, sa.Seq, nil, 0)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0", f.server.OpenConns())
	}
	if f.server.Metrics().AcksWithoutSolution != 1 {
		t.Errorf("AcksWithoutSolution = %d, want 1", f.server.Metrics().AcksWithoutSolution)
	}
	// The deceived peer sends data and must receive an RST.
	before := len(f.peer.got)
	f.ack(sa.DstPort, 6, sa.Seq, nil, 100)
	f.run(50 * time.Millisecond)
	foundRST := false
	for _, seg := range f.peer.got[before:] {
		if seg.Flags.Has(tcpkit.FlagRST) {
			foundRST = true
		}
	}
	if !foundRST {
		t.Error("no RST sent to deceived peer probing with data")
	}
}

func TestPuzzleDeceptionWhenAcceptQueueFull(t *testing.T) {
	cfg := puzzleCfg(false)
	cfg.AcceptBacklog = 1
	cfg.Workers = -1 // nothing drains the accept queue
	f := newFixture(t, cfg)
	fillListenQueue(f, t)

	// First solver takes the only accept slot.
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	solveAndAck(t, f, f.peer.lastSynAck(t), 6)
	f.run(50 * time.Millisecond)
	if f.server.AcceptLen() != 1 {
		t.Fatalf("AcceptLen = %d, want 1", f.server.AcceptLen())
	}

	// Second solver: accept queue full → ACK ignored before verification.
	verified := f.server.Metrics().SolutionsVerified
	f.syn(9002, 7)
	f.run(50 * time.Millisecond)
	solveAndAck(t, f, f.peer.lastSynAck(t), 7)
	f.run(50 * time.Millisecond)
	if f.server.Metrics().DeceptionIgnored != 1 {
		t.Errorf("DeceptionIgnored = %d, want 1", f.server.Metrics().DeceptionIgnored)
	}
	if f.server.Metrics().SolutionsVerified != verified {
		t.Error("verification work performed while accept queue full")
	}
}

func TestPuzzleChallengeSentEvenWhenAcceptQueueFull(t *testing.T) {
	cfg := puzzleCfg(false)
	cfg.Backlog = 100
	cfg.AcceptBacklog = 1
	cfg.Workers = -1
	f := newFixture(t, cfg)
	// Fill the accept queue via a normal handshake.
	f.syn(9100, 1)
	f.run(50 * time.Millisecond)
	f.ack(9100, 1, f.peer.lastSynAck(t).Seq, nil, 0)
	f.run(50 * time.Millisecond)
	if f.server.AcceptLen() != 1 {
		t.Fatalf("AcceptLen = %d, want 1", f.server.AcceptLen())
	}
	// New SYN must be challenged (modified §5 behaviour), not dropped.
	f.syn(9101, 2)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	if sa.DstPort != 9101 {
		t.Fatal("no SYN-ACK for new SYN while accept queue full")
	}
	opts, _ := tcpopt.ParseOptions(sa.Options)
	if _, ok := tcpopt.FindOption(opts, tcpopt.KindChallenge); !ok {
		t.Error("SYN while accept queue full not challenged")
	}
}

func TestPuzzleReplayTakesOneSlot(t *testing.T) {
	cfg := puzzleCfg(false)
	cfg.Workers = -1
	cfg.AcceptBacklog = 10
	f := newFixture(t, cfg)
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	solveAndAck(t, f, sa, 6)
	f.run(50 * time.Millisecond)
	if f.server.AcceptLen() != 1 {
		t.Fatalf("AcceptLen = %d, want 1", f.server.AcceptLen())
	}
	// Replay the identical solution while the connection is live: it is
	// absorbed by the established connection and takes no second slot.
	solveAndAck(t, f, sa, 6)
	f.run(50 * time.Millisecond)
	if f.server.AcceptLen() != 1 {
		t.Errorf("AcceptLen = %d after replay, want 1", f.server.AcceptLen())
	}
	// Tear the connection down (RST) while the accept-queue entry remains,
	// then replay again: the stateless path must detect the occupied slot.
	f.net.Send(tcpkit.Segment{
		Src: f.peer.addr, Dst: f.server.cfg.Addr,
		SrcPort: sa.DstPort, DstPort: f.server.cfg.Port,
		Flags: tcpkit.FlagRST,
	})
	f.run(50 * time.Millisecond)
	solveAndAck(t, f, sa, 6)
	f.run(50 * time.Millisecond)
	if f.server.AcceptLen() != 1 {
		t.Errorf("AcceptLen = %d after replay into dead conn, want 1", f.server.AcceptLen())
	}
	if f.server.Metrics().ReplaysBlocked == 0 {
		t.Error("ReplaysBlocked not incremented")
	}
}

func TestPuzzleExpiredSolutionRejected(t *testing.T) {
	cfg := puzzleCfg(false)
	cfg.PuzzleMaxAge = 2 * time.Second
	f := newFixture(t, cfg)
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	// Wait beyond the replay window before answering.
	f.run(5 * time.Second)
	solveAndAck(t, f, sa, 6)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0 for expired solution", f.server.OpenConns())
	}
	if f.server.Metrics().SolutionInvalid == 0 {
		t.Error("expired solution not counted invalid")
	}
}

func TestSimEngineAcceptsSimSolutions(t *testing.T) {
	f := newFixture(t, puzzleCfg(true))
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	opts, _ := tcpopt.ParseOptions(sa.Options)
	chOpt, ok := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	if !ok {
		t.Fatal("no challenge")
	}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	sol := pzengine.SimSolution(blk.Challenge)
	sOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{HasTimestamp: true, Solution: sol})
	if err != nil {
		t.Fatalf("EncodeSolution: %v", err)
	}
	raw, _ := tcpopt.MarshalOptions([]tcpopt.Option{sOpt})
	f.ack(sa.DstPort, 6, sa.Seq, raw, 0)
	f.run(50 * time.Millisecond)
	if f.server.OpenConns() != 1 {
		t.Errorf("OpenConns = %d, want 1 with sim solution", f.server.OpenConns())
	}
}

func TestWorkerPoolPinnedByIdleConnections(t *testing.T) {
	cfg := Config{Defense: sweep.DefenseNone, Workers: 2, IdleTimeout: 3 * time.Second}
	f := newFixture(t, cfg)
	for i := 0; i < 2; i++ {
		port := uint16(9200 + i)
		f.syn(port, uint32(i))
		f.run(20 * time.Millisecond)
		f.ack(port, uint32(i), f.peer.lastSynAck(t).Seq, nil, 0)
		f.run(20 * time.Millisecond)
	}
	if f.server.FreeWorkers() != 0 {
		t.Fatalf("FreeWorkers = %d, want 0", f.server.FreeWorkers())
	}
	// After the idle timeout the workers are reclaimed.
	f.run(5 * time.Second)
	if f.server.FreeWorkers() != 2 {
		t.Errorf("FreeWorkers = %d, want 2 after idle timeout", f.server.FreeWorkers())
	}
	if f.server.Metrics().IdleTimeouts != 2 {
		t.Errorf("IdleTimeouts = %d, want 2", f.server.Metrics().IdleTimeouts)
	}
}

func TestSysctlRetuning(t *testing.T) {
	f := newFixture(t, puzzleCfg(false))
	newParams := puzzle.Params{K: 1, M: 6, L: 32}
	if err := f.server.Issuer().SetParams(newParams); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	fillListenQueue(f, t)
	f.syn(9001, 6)
	f.run(50 * time.Millisecond)
	sa := f.peer.lastSynAck(t)
	opts, _ := tcpopt.ParseOptions(sa.Options)
	chOpt, ok := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	if !ok {
		t.Fatal("no challenge")
	}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	if blk.Challenge.Params != newParams {
		t.Errorf("challenge params = %v, want %v", blk.Challenge.Params, newParams)
	}
}
