package serversim

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// establish records a completed handshake, placing it on the accept queue
// and dispatching workers.
func (s *Server) establish(peer tcpkit.PeerKey, mss uint16, solvedPuzzle bool) {
	e := &tcpkit.Established{
		Peer:         peer,
		MSS:          mss,
		SolvedPuzzle: solvedPuzzle,
		CreatedAt:    s.eng.Now(),
	}
	if !s.acceptQ.Push(e) {
		// Full or duplicate peer; the handshake is silently lost.
		s.metrics.AcceptOverflow++
		return
	}
	if mss == 0 {
		mss = 536
	}
	s.conns[peer] = &conn{peer: peer, mss: mss, createdAt: s.eng.Now()}
	s.metrics.RecordEstablished(s.eng.Now(), peer)
	s.dispatchWorkers()
}

// dispatchWorkers lets free workers accept queued connections.
func (s *Server) dispatchWorkers() {
	for s.workersFree > 0 {
		e, ok := s.acceptQ.Pop()
		if !ok {
			return
		}
		c, live := s.conns[e.Peer]
		if !live {
			continue // torn down while queued
		}
		s.workersFree--
		c.accepted = true
		c.hasWorker = true
		if c.pendingReq > 0 {
			s.serve(c)
			continue
		}
		// No request yet: the worker waits up to the idle timeout — the
		// resource a connection flood pins. Jitter desynchronises the
		// worker pool so releases do not arrive in lockstep waves.
		idle := time.Duration((0.75 + 0.5*s.rnd.Float64()) * float64(s.cfg.IdleTimeout))
		c.idleEv = s.eng.Schedule(idle, func() {
			s.metrics.IdleTimeouts++
			s.closeConn(c, true)
		})
	}
}

// onData processes application data from an established peer.
func (s *Server) onData(c *conn, seg tcpkit.Segment) {
	if seg.PayloadLen <= 0 {
		return // pure ACK
	}
	if c.pendingReq > 0 {
		return // duplicate request; the first one wins
	}
	want := seg.Meta
	if want <= 0 {
		want = 1
	}
	c.pendingReq = want
	if c.hasWorker {
		c.idleEv.Cancel()
		c.idleEv = netsim.Timer{}
		s.serve(c)
	}
	// Otherwise the request is buffered until a worker accepts the
	// connection (dispatchWorkers will call serve).
}

// serve runs the application: after an exponential service time, the
// response of c.pendingReq bytes is written out in MSS-sized segments and
// the connection closes (the paper's gettext/size exchange).
func (s *Server) serve(c *conn) {
	service := time.Duration(s.rnd.ExpFloat64() * float64(s.cfg.ServiceTime))
	s.chargeHashes(s.cfg.PerRequestHashEquiv)
	respBytes := c.pendingReq
	s.eng.Schedule(service, func() {
		if _, live := s.conns[c.peer]; !live {
			return
		}
		s.metrics.RequestsServed++
		s.sendResponse(c, respBytes)
		s.closeConn(c, true)
	})
}

// sendResponse writes size bytes to the peer as MSS-sized segments. The
// access link model paces actual delivery.
func (s *Server) sendResponse(c *conn, size int) {
	mss := int(c.mss)
	if mss <= 0 || mss > s.cfg.MSS {
		mss = s.cfg.MSS
	}
	for off := 0; off < size; off += mss {
		n := size - off
		if n > mss {
			n = mss
		}
		s.send(tcpkit.Segment{
			Src: s.cfg.Addr, Dst: c.peer.IP,
			SrcPort: s.cfg.Port, DstPort: c.peer.Port,
			Flags:      tcpkit.FlagACK | tcpkit.FlagPSH,
			PayloadLen: n,
		})
	}
}

// closeConn tears down a connection, releasing its worker if held.
func (s *Server) closeConn(c *conn, releaseWorker bool) {
	if _, live := s.conns[c.peer]; !live {
		return
	}
	delete(s.conns, c.peer)
	c.idleEv.Cancel()
	c.idleEv = netsim.Timer{}
	if c.hasWorker && releaseWorker {
		s.workersFree++
		c.hasWorker = false
		s.dispatchWorkers()
	}
}

// OpenConns reports the number of live established connections.
func (s *Server) OpenConns() int { return len(s.conns) }

// FreeWorkers reports the idle worker count.
func (s *Server) FreeWorkers() int { return s.workersFree }
