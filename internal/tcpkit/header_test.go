package tcpkit

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	testSrc = [4]byte{192, 168, 0, 1}
	testDst = [4]byte{10, 0, 0, 1}
)

func TestHeaderMarshalUnmarshalRoundTrip(t *testing.T) {
	h := Header{
		SrcPort: 43210,
		DstPort: 80,
		Seq:     0xdeadbeef,
		Ack:     0x01020304,
		Flags:   FlagSYN | FlagACK,
		Window:  65535,
		Options: []byte{2, 4, 5, 180}, // MSS 1460
	}
	payload := []byte("hello world")
	pkt, err := h.Marshal(testSrc, testDst, payload)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, gotPayload, err := Unmarshal(testSrc, testDst, pkt)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort ||
		got.Seq != h.Seq || got.Ack != h.Ack || got.Flags != h.Flags ||
		got.Window != h.Window {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(got.Options, h.Options) {
		t.Errorf("options = %x, want %x", got.Options, h.Options)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q, want %q", gotPayload, payload)
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	h := Header{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	pkt, err := h.Marshal(testSrc, testDst, []byte("data"))
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, bit := range []int{0, 13, 50, len(pkt)*8 - 1} {
		mut := bytes.Clone(pkt)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, _, err := Unmarshal(testSrc, testDst, mut); !errors.Is(err, ErrBadChecksum) {
			t.Errorf("bit %d flip: error = %v, want ErrBadChecksum", bit, err)
		}
	}
}

func TestUnmarshalWrongPseudoHeader(t *testing.T) {
	h := Header{SrcPort: 1, DstPort: 2}
	pkt, err := h.Marshal(testSrc, testDst, nil)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	other := testSrc
	other[3]++
	if _, _, err := Unmarshal(other, testDst, pkt); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("wrong pseudo-header error = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalRejectsShortAndBadOffset(t *testing.T) {
	if _, _, err := Unmarshal(testSrc, testDst, make([]byte, 10)); !errors.Is(err, ErrHeaderTooShort) {
		t.Errorf("short error = %v", err)
	}
	pkt := make([]byte, 20)
	pkt[12] = 3 << 4 // offset 12 < 20
	if _, _, err := Unmarshal(testSrc, testDst, pkt); !errors.Is(err, ErrBadDataOffset) {
		t.Errorf("bad offset error = %v", err)
	}
	pkt[12] = 15 << 4 // offset 60 > len
	if _, _, err := Unmarshal(testSrc, testDst, pkt); !errors.Is(err, ErrBadDataOffset) {
		t.Errorf("overlong offset error = %v", err)
	}
}

func TestMarshalRejectsBadOptions(t *testing.T) {
	h := Header{Options: make([]byte, 44)}
	if _, err := h.Marshal(testSrc, testDst, nil); !errors.Is(err, ErrOptionsTooLong) {
		t.Errorf("long options error = %v", err)
	}
	h = Header{Options: make([]byte, 3)}
	if _, err := h.Marshal(testSrc, testDst, nil); !errors.Is(err, ErrOptionsUnaligned) {
		t.Errorf("unaligned options error = %v", err)
	}
}

// Property: marshal→unmarshal round-trips arbitrary headers and payloads.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte, optWords uint8) bool {
		h := Header{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: Flags(flags & 0x3f), Window: win,
			Options: bytes.Repeat([]byte{1}, int(optWords%11)*4),
		}
		pkt, err := h.Marshal(testSrc, testDst, payload)
		if err != nil {
			return false
		}
		got, gotPayload, err := Unmarshal(testSrc, testDst, pkt)
		if err != nil {
			return false
		}
		return got.SrcPort == h.SrcPort && got.DstPort == h.DstPort &&
			got.Seq == h.Seq && got.Ack == h.Ack && got.Flags == h.Flags &&
			got.Window == h.Window && bytes.Equal(gotPayload, payload) &&
			bytes.Equal(got.Options, h.Options)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("String = %q", got)
	}
	if got := Flags(0).String(); got != "none" {
		t.Errorf("String(0) = %q", got)
	}
}

func TestSegmentWireSizeAndFlow(t *testing.T) {
	s := Segment{
		Src: testSrc, Dst: testDst, SrcPort: 7, DstPort: 8,
		Seq: 99, Options: make([]byte, 12), PayloadLen: 100,
	}
	if got := s.WireSize(); got != 20+20+12+100 {
		t.Errorf("WireSize = %d", got)
	}
	f := s.Flow()
	if f.SrcIP != testSrc || f.DstIP != testDst || f.SrcPort != 7 || f.DstPort != 8 || f.ISN != 99 {
		t.Errorf("Flow = %+v", f)
	}
}

func TestISNSourceDeterministic(t *testing.T) {
	a, b := NewISNSource(1), NewISNSource(1)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewISNSource(2)
	same := true
	a2 := NewISNSource(1)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}
