package tcpkit

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var (
	// ErrHeaderTooShort reports a buffer smaller than a TCP header.
	ErrHeaderTooShort = errors.New("tcpkit: buffer shorter than TCP header")
	// ErrBadDataOffset reports an invalid data-offset field.
	ErrBadDataOffset = errors.New("tcpkit: invalid data offset")
	// ErrBadChecksum reports a checksum mismatch.
	ErrBadChecksum = errors.New("tcpkit: checksum mismatch")
	// ErrOptionsTooLong reports options exceeding the 40-byte limit.
	ErrOptionsTooLong = errors.New("tcpkit: options exceed 40 bytes")
	// ErrOptionsUnaligned reports options not padded to 32 bits.
	ErrOptionsUnaligned = errors.New("tcpkit: options not 32-bit aligned")
)

// Header is a decoded TCP header (without payload).
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint16
	Urgent           uint16
	Options          []byte
}

// Marshal encodes the header, computing the checksum over the IPv4
// pseudo-header for the given addresses and payload.
func (h Header) Marshal(src, dst [4]byte, payload []byte) ([]byte, error) {
	if len(h.Options) > 40 {
		return nil, fmt.Errorf("tcpkit: %d option bytes: %w", len(h.Options), ErrOptionsTooLong)
	}
	if len(h.Options)%4 != 0 {
		return nil, fmt.Errorf("tcpkit: %d option bytes: %w", len(h.Options), ErrOptionsUnaligned)
	}
	hdrLen := TCPHeaderLen + len(h.Options)
	buf := make([]byte, hdrLen, hdrLen+len(payload))
	binary.BigEndian.PutUint16(buf[0:], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], h.DstPort)
	binary.BigEndian.PutUint32(buf[4:], h.Seq)
	binary.BigEndian.PutUint32(buf[8:], h.Ack)
	buf[12] = uint8(hdrLen/4) << 4
	buf[13] = uint8(h.Flags)
	binary.BigEndian.PutUint16(buf[14:], h.Window)
	binary.BigEndian.PutUint16(buf[18:], h.Urgent)
	copy(buf[20:], h.Options)
	buf = append(buf, payload...)
	sum := Checksum(src, dst, buf)
	binary.BigEndian.PutUint16(buf[16:], sum)
	return buf, nil
}

// Unmarshal decodes a TCP header from packet bytes, verifying the checksum
// against the pseudo-header. It returns the header and the payload slice
// (aliasing pkt).
func Unmarshal(src, dst [4]byte, pkt []byte) (Header, []byte, error) {
	if len(pkt) < TCPHeaderLen {
		return Header{}, nil, fmt.Errorf("tcpkit: %d bytes: %w", len(pkt), ErrHeaderTooShort)
	}
	dataOff := int(pkt[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(pkt) {
		return Header{}, nil, fmt.Errorf("tcpkit: data offset %d: %w", dataOff, ErrBadDataOffset)
	}
	if got := Checksum(src, dst, pkt); got != 0 {
		return Header{}, nil, fmt.Errorf("tcpkit: residual 0x%04x: %w", got, ErrBadChecksum)
	}
	h := Header{
		SrcPort: binary.BigEndian.Uint16(pkt[0:]),
		DstPort: binary.BigEndian.Uint16(pkt[2:]),
		Seq:     binary.BigEndian.Uint32(pkt[4:]),
		Ack:     binary.BigEndian.Uint32(pkt[8:]),
		Flags:   Flags(pkt[13] & 0x3f),
		Window:  binary.BigEndian.Uint16(pkt[14:]),
		Urgent:  binary.BigEndian.Uint16(pkt[18:]),
	}
	if dataOff > TCPHeaderLen {
		h.Options = append([]byte(nil), pkt[TCPHeaderLen:dataOff]...)
	}
	return h, pkt[dataOff:], nil
}

// Checksum computes the Internet checksum of a TCP packet (header+payload)
// over the IPv4 pseudo-header. Computing it over a packet whose checksum
// field is already filled yields zero for an intact packet.
func Checksum(src, dst [4]byte, pkt []byte) uint16 {
	var sum uint32
	add16 := func(v uint16) { sum += uint32(v) }
	add16(binary.BigEndian.Uint16(src[0:]))
	add16(binary.BigEndian.Uint16(src[2:]))
	add16(binary.BigEndian.Uint16(dst[0:]))
	add16(binary.BigEndian.Uint16(dst[2:]))
	add16(6) // protocol TCP
	add16(uint16(len(pkt)))
	for i := 0; i+1 < len(pkt); i += 2 {
		add16(binary.BigEndian.Uint16(pkt[i:]))
	}
	if len(pkt)%2 == 1 {
		add16(uint16(pkt[len(pkt)-1]) << 8)
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
