// Package tcpkit is the userspace TCP handshake substrate: segments, a
// binary header codec with checksumming, initial-sequence-number generation,
// and the listen/accept queue structures whose occupancy the paper's attacks
// target.
package tcpkit

import (
	"math/rand"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Flags is the TCP flags byte (low 6 bits).
type Flags uint8

// TCP flag bits.
const (
	FlagFIN Flags = 1 << 0
	FlagSYN Flags = 1 << 1
	FlagRST Flags = 1 << 2
	FlagPSH Flags = 1 << 3
	FlagACK Flags = 1 << 4
	FlagURG Flags = 1 << 5
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String renders the set flags, e.g. "SYN|ACK".
func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// IPHeaderLen and TCPHeaderLen are the fixed header sizes used for wire-size
// accounting.
const (
	IPHeaderLen  = 20
	TCPHeaderLen = 20
)

// Segment is a simulated TCP segment. Payload bytes are modelled by length
// only; options carry real encoded bytes so the puzzle extension exercises
// its true wire format.
type Segment struct {
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint16
	Options          []byte
	PayloadLen       int
	// Meta carries modelled application-level content without
	// materialising payload bytes — e.g. the size argument of the paper's
	// "gettext/size" request. It does not contribute to WireSize.
	Meta int
}

// WireSize returns the on-wire packet size in bytes (IP + TCP headers,
// options, payload).
func (s Segment) WireSize() int {
	return IPHeaderLen + TCPHeaderLen + len(s.Options) + s.PayloadLen
}

// Flow returns the puzzle flow identifier of the segment as the *client's*
// flow: for a SYN this is (src → dst, ISN = Seq); for segments travelling
// server→client callers should use Flow().Reverse() semantics explicitly.
func (s Segment) Flow() puzzle.FlowID {
	return puzzle.FlowID{
		SrcIP:   s.Src,
		DstIP:   s.Dst,
		SrcPort: s.SrcPort,
		DstPort: s.DstPort,
		ISN:     s.Seq,
	}
}

// PeerKey identifies the remote endpoint of a connection from the server's
// point of view.
type PeerKey struct {
	IP   [4]byte
	Port uint16
}

// PeerOf returns the sender endpoint of a segment.
func PeerOf(s Segment) PeerKey { return PeerKey{IP: s.Src, Port: s.SrcPort} }

// ISNSource generates initial sequence numbers from a deterministic stream,
// standing in for the kernel's randomised ISN generator.
type ISNSource struct {
	rnd *rand.Rand
}

// NewISNSource returns a seeded generator.
func NewISNSource(seed int64) *ISNSource {
	return &ISNSource{rnd: rand.New(rand.NewSource(seed))}
}

// NewISNSourceFrom returns a generator drawing from the caller's source —
// used by compact per-source state (an 8-byte splitmix state per source
// instead of the ~5 KB default source).
func NewISNSourceFrom(src rand.Source) *ISNSource {
	return &ISNSource{rnd: rand.New(src)}
}

// Next returns a fresh ISN.
func (g *ISNSource) Next() uint32 { return g.rnd.Uint32() }
