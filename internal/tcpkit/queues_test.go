package tcpkit

import (
	"testing"
	"time"
)

func peer(i int) PeerKey {
	return PeerKey{IP: [4]byte{10, 0, byte(i >> 8), byte(i)}, Port: 1000}
}

func TestListenQueueCapacity(t *testing.T) {
	var lastLen int
	q := NewListenQueue(3, func(n int) { lastLen = n })
	for i := 0; i < 3; i++ {
		if !q.Add(&HalfOpen{Peer: peer(i)}) {
			t.Fatalf("Add(%d) failed below capacity", i)
		}
	}
	if !q.Full() {
		t.Error("queue not full at capacity")
	}
	if q.Add(&HalfOpen{Peer: peer(99)}) {
		t.Error("Add succeeded beyond backlog")
	}
	if lastLen != 3 {
		t.Errorf("len callback = %d, want 3", lastLen)
	}
}

func TestListenQueueDuplicateSYN(t *testing.T) {
	q := NewListenQueue(2, nil)
	h := &HalfOpen{Peer: peer(1), ClientISN: 5}
	if !q.Add(h) {
		t.Fatal("Add failed")
	}
	// Retransmitted SYN: reports success, does not duplicate.
	if !q.Add(&HalfOpen{Peer: peer(1), ClientISN: 6}) {
		t.Error("duplicate Add reported failure")
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	got, ok := q.Get(peer(1))
	if !ok || got.ClientISN != 5 {
		t.Errorf("Get = %+v, %v; want original entry", got, ok)
	}
}

func TestListenQueueRemoveAndExpire(t *testing.T) {
	q := NewListenQueue(10, nil)
	for i := 0; i < 5; i++ {
		q.Add(&HalfOpen{Peer: peer(i), ExpiresAt: time.Duration(i) * time.Second})
	}
	if !q.Remove(peer(0)) {
		t.Error("Remove existing failed")
	}
	if q.Remove(peer(0)) {
		t.Error("Remove missing succeeded")
	}
	// Expire entries 1..3 (ExpiresAt ≤ 3s).
	if n := q.Expire(3 * time.Second); n != 3 {
		t.Errorf("Expire = %d, want 3", n)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestAcceptQueueFIFO(t *testing.T) {
	q := NewAcceptQueue(10, nil)
	for i := 0; i < 3; i++ {
		if !q.Push(&Established{Peer: peer(i)}) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	for i := 0; i < 3; i++ {
		e, ok := q.Pop()
		if !ok || e.Peer != peer(i) {
			t.Fatalf("Pop %d = %+v, %v", i, e, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
}

func TestAcceptQueueCapacityAndReplayGuard(t *testing.T) {
	q := NewAcceptQueue(2, nil)
	if !q.Push(&Established{Peer: peer(1)}) {
		t.Fatal("Push failed")
	}
	// A replayed solution (same peer) cannot take a second slot.
	if q.Push(&Established{Peer: peer(1)}) {
		t.Error("duplicate peer took a second slot")
	}
	if !q.Push(&Established{Peer: peer(2)}) {
		t.Fatal("Push(2) failed")
	}
	if q.Push(&Established{Peer: peer(3)}) {
		t.Error("Push succeeded beyond capacity")
	}
	if !q.Full() {
		t.Error("queue should be full")
	}
	q.Pop()
	if q.Contains(peer(1)) {
		t.Error("Contains after Pop")
	}
	if !q.Push(&Established{Peer: peer(3)}) {
		t.Error("Push after Pop failed")
	}
}

func TestQueueLenCallbacks(t *testing.T) {
	var listenSamples, acceptSamples []int
	lq := NewListenQueue(5, func(n int) { listenSamples = append(listenSamples, n) })
	aq := NewAcceptQueue(5, func(n int) { acceptSamples = append(acceptSamples, n) })
	lq.Add(&HalfOpen{Peer: peer(1)})
	lq.Remove(peer(1))
	aq.Push(&Established{Peer: peer(1)})
	aq.Pop()
	wantL := []int{1, 0}
	wantA := []int{1, 0}
	for i := range wantL {
		if listenSamples[i] != wantL[i] {
			t.Errorf("listen sample %d = %d, want %d", i, listenSamples[i], wantL[i])
		}
		if acceptSamples[i] != wantA[i] {
			t.Errorf("accept sample %d = %d, want %d", i, acceptSamples[i], wantA[i])
		}
	}
}
