package tcpkit

import (
	"time"
)

// HalfOpen is a listen-queue entry: state for a connection whose final ACK
// has not arrived (a SYN_RECV socket).
type HalfOpen struct {
	Peer      PeerKey
	ClientISN uint32
	ServerISN uint32
	MSS       uint16
	WScale    uint8
	CreatedAt time.Duration
	ExpiresAt time.Duration
}

// ListenQueue holds half-open connections up to the backlog limit. Its
// occupancy is the target of SYN floods.
type ListenQueue struct {
	capacity int
	entries  map[PeerKey]*HalfOpen
	onLen    func(int)
}

// NewListenQueue returns a queue with the given backlog.
func NewListenQueue(backlog int, onLen func(int)) *ListenQueue {
	return &ListenQueue{
		capacity: backlog,
		entries:  make(map[PeerKey]*HalfOpen, backlog),
		onLen:    onLen,
	}
}

// Len returns the number of half-open connections.
func (q *ListenQueue) Len() int { return len(q.entries) }

// Cap returns the backlog limit.
func (q *ListenQueue) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *ListenQueue) Full() bool { return len(q.entries) >= q.capacity }

// Add inserts a half-open entry; it fails when full. A re-transmitted SYN
// for an existing peer refreshes nothing and reports success with the
// existing entry retained.
func (q *ListenQueue) Add(h *HalfOpen) bool {
	if _, exists := q.entries[h.Peer]; exists {
		return true
	}
	if q.Full() {
		return false
	}
	q.entries[h.Peer] = h
	q.notify()
	return true
}

// Get looks up the half-open entry for a peer.
func (q *ListenQueue) Get(peer PeerKey) (*HalfOpen, bool) {
	h, ok := q.entries[peer]
	return h, ok
}

// Remove deletes a peer's entry and reports whether it existed.
func (q *ListenQueue) Remove(peer PeerKey) bool {
	if _, ok := q.entries[peer]; !ok {
		return false
	}
	delete(q.entries, peer)
	q.notify()
	return true
}

// Expire removes every entry whose ExpiresAt is at or before now and
// returns how many were evicted — the reset-timer behaviour that frees the
// queue after a flood ends.
func (q *ListenQueue) Expire(now time.Duration) int {
	n := 0
	for k, h := range q.entries {
		if h.ExpiresAt <= now {
			delete(q.entries, k)
			n++
		}
	}
	if n > 0 {
		q.notify()
	}
	return n
}

func (q *ListenQueue) notify() {
	if q.onLen != nil {
		q.onLen(len(q.entries))
	}
}

// Established is an accept-queue entry: a completed connection awaiting
// accept(2).
type Established struct {
	Peer         PeerKey
	ClientISN    uint32
	ServerISN    uint32
	MSS          uint16
	WScale       uint8
	SolvedPuzzle bool
	CreatedAt    time.Duration
}

// AcceptQueue holds established-but-unaccepted connections. Its occupancy is
// the target of connection floods.
type AcceptQueue struct {
	capacity int
	fifo     []*Established
	members  map[PeerKey]struct{}
	onLen    func(int)
}

// NewAcceptQueue returns a queue with the given capacity.
func NewAcceptQueue(capacity int, onLen func(int)) *AcceptQueue {
	return &AcceptQueue{
		capacity: capacity,
		members:  make(map[PeerKey]struct{}, capacity),
		onLen:    onLen,
	}
}

// Len returns the queue occupancy.
func (q *AcceptQueue) Len() int { return len(q.fifo) }

// Cap returns the capacity.
func (q *AcceptQueue) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *AcceptQueue) Full() bool { return len(q.fifo) >= q.capacity }

// Contains reports whether a peer already occupies a slot — the property
// that bounds replay floods to one slot per captured solution (paper §7).
func (q *AcceptQueue) Contains(peer PeerKey) bool {
	_, ok := q.members[peer]
	return ok
}

// Push enqueues an established connection; it fails when full or when the
// peer already holds a slot.
func (q *AcceptQueue) Push(e *Established) bool {
	if q.Full() || q.Contains(e.Peer) {
		return false
	}
	q.fifo = append(q.fifo, e)
	q.members[e.Peer] = struct{}{}
	q.notify()
	return true
}

// Pop dequeues the oldest connection for the application to accept.
func (q *AcceptQueue) Pop() (*Established, bool) {
	if len(q.fifo) == 0 {
		return nil, false
	}
	e := q.fifo[0]
	q.fifo[0] = nil
	q.fifo = q.fifo[1:]
	delete(q.members, e.Peer)
	q.notify()
	return e, true
}

func (q *AcceptQueue) notify() {
	if q.onLen != nil {
		q.onLen(len(q.fifo))
	}
}
