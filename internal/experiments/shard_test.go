package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// shardMatrixGrid is a mid-size flood grid mixing defenses and attacks so
// the determinism matrix exercises spoofed SYN floods (unroutable
// replies), solving connection floods (CPU-model feedback), the full
// server pipeline, and every plugin registered outside the paper's four —
// a new strategy is only "registered" once it holds byte-identical output
// across shard and worker counts here.
func shardMatrixGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{ClientsSolve: true, BotsSolve: true},
		Axes: []sweep.Axis{sweep.Variants("cell",
			sweep.Point{Label: "puzzles-conn", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackConnFlood
			}},
			sweep.Point{Label: "cookies-syn", Set: func(sc *Scenario) {
				sc.Defense = DefenseCookies
				sc.Attack = AttackSYNFlood
			}},
			sweep.Point{Label: "hybrid-conn", Set: func(sc *Scenario) {
				sc.Defense = DefenseHybrid
				sc.Attack = AttackConnFlood
			}},
			sweep.Point{Label: "ratelimit-syn", Set: func(sc *Scenario) {
				sc.Defense = DefenseRateLimit
				sc.Attack = AttackSYNFlood
			}},
			sweep.Point{Label: "puzzles-pulse", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackPulseFlood
			}},
			// Macro-aggregated populations ride the same matrix: batch
			// events, SoA source store, and aggregate server metrics must
			// hold the byte-identity bar at every shard and worker count.
			sweep.Point{Label: "macro-syn", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackSYNFlood
				sc.MacroSources = 40
			}},
			sweep.Point{Label: "macro-conn", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackConnFlood
				sc.MacroSources = 40
			}},
			// The adaptive arms race: in-run difficulty retuning and
			// replicator budget reallocation must adapt identically at
			// every shard count — both plugins derive state only from
			// their own observation streams, and this is where that
			// contract is enforced.
			sweep.Point{Label: "adaptive-conn", Set: func(sc *Scenario) {
				sc.Defense = DefenseAdaptivePuzzles
				sc.Attack = AttackConnFlood
			}},
			sweep.Point{Label: "puzzles-adaptiveflood", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackAdaptiveFlood
			}},
			sweep.Point{Label: "adaptive-adaptive", Set: func(sc *Scenario) {
				sc.Defense = DefenseAdaptivePuzzles
				sc.Attack = AttackAdaptiveFlood
			}},
		)},
	}
}

// runShardMatrixCell executes the grid at one (shards, workers)
// combination and returns the streamed CSV and NDJSON sink bytes plus the
// structured results.
func runShardMatrixCell(t *testing.T, shards, workers int) ([]byte, []byte, []sweep.Result) {
	t.Helper()
	return runMatrixCell(t, shardMatrixGrid(), shards, workers, false)
}

// runMatrixCell is the shared executor behind the conservative and
// speculative determinism matrices: one grid at one (shards, workers,
// speculative) combination.
func runMatrixCell(t *testing.T, grid sweep.Grid, shards, workers int, speculative bool) ([]byte, []byte, []sweep.Result) {
	t.Helper()
	scale := tinyScale()
	scale.Shards = shards
	scale.Parallelism = workers
	scale.Speculative = speculative
	var csvBuf, jsonBuf bytes.Buffer
	scale.Sinks = []sweep.Sink{sweep.NewCSV(&csvBuf), sweep.NewNDJSON(&jsonBuf)}
	// Expand with the scale so the cells are tiny; RunSweep's grid-as-
	// declared semantics would run the paper-scale defaults here.
	cells := grid.Expand(&scale)
	results, _, err := runFloodCells(scale, "shardmatrix", "", cells, StandardMetrics)
	if err != nil {
		t.Fatalf("runFloodCells(shards=%d, workers=%d, speculative=%v): %v", shards, workers, speculative, err)
	}
	return csvBuf.Bytes(), jsonBuf.Bytes(), results
}

// TestShardDeterminismMatrix is the PR's non-negotiable invariant one
// layer up from netsim: a flood simulated at shards 1/2/4/8 × workers 1/4
// produces byte-identical CSV and NDJSON sink output and equal structured
// Results. It extends the cross-worker determinism tests of the runner
// (TestSinkOutputIdenticalAcrossWorkers) one level deeper, into the event
// engine itself.
func TestShardDeterminismMatrix(t *testing.T) {
	wantCSV, wantJSON, wantResults := runShardMatrixCell(t, 1, 1)
	if len(wantResults) == 0 || len(wantCSV) == 0 || len(wantJSON) == 0 {
		t.Fatal("baseline run produced no output")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			csvOut, jsonOut, results := runShardMatrixCell(t, shards, workers)
			if !bytes.Equal(csvOut, wantCSV) {
				t.Errorf("shards=%d workers=%d: CSV output differs from baseline\n got:\n%s\nwant:\n%s",
					shards, workers, csvOut, wantCSV)
			}
			if !bytes.Equal(jsonOut, wantJSON) {
				t.Errorf("shards=%d workers=%d: NDJSON output differs from baseline", shards, workers)
			}
			// Result structs carry two execution-only knobs: the Shards
			// setting and the runner-pool Exec stats (scheduling-dependent
			// by design). Mask both before comparing the measurements.
			for i := range results {
				results[i].Scenario.Shards = wantResults[i].Scenario.Shards
				results[i].Exec = wantResults[i].Exec
			}
			if !reflect.DeepEqual(results, wantResults) {
				t.Errorf("shards=%d workers=%d: Results differ from baseline", shards, workers)
			}
		}
	}
}

// specMatrixGrid is the speculative determinism sub-grid: one spoofed
// macro-source cell, one bursty pulse cell, one plain solving flood, and
// the adaptive arms race — the cells whose state (SoA source stores,
// batch rounds, controller state) stresses snapshot/rollback hardest.
func specMatrixGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{ClientsSolve: true, BotsSolve: true},
		Axes: []sweep.Axis{sweep.Variants("cell",
			sweep.Point{Label: "puzzles-conn", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackConnFlood
			}},
			sweep.Point{Label: "puzzles-pulse", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackPulseFlood
			}},
			sweep.Point{Label: "macro-syn", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackSYNFlood
				sc.MacroSources = 40
			}},
			sweep.Point{Label: "adaptive-adaptive", Set: func(sc *Scenario) {
				sc.Defense = DefenseAdaptivePuzzles
				sc.Attack = AttackAdaptiveFlood
			}},
		)},
	}
}

// TestSpeculativeShardDeterminismMatrix extends the determinism matrix
// with speculative execution: every speculative (shards, workers) cell of
// the sub-grid must emit byte-identical sink output and equal structured
// Results against the conservative single-shard oracle. Speculative and
// Shards are execution-only knobs, masked like Exec before the struct
// compare.
func TestSpeculativeShardDeterminismMatrix(t *testing.T) {
	grid := specMatrixGrid()
	wantCSV, wantJSON, wantResults := runMatrixCell(t, grid, 1, 1, false)
	if len(wantResults) == 0 || len(wantCSV) == 0 || len(wantJSON) == 0 {
		t.Fatal("baseline run produced no output")
	}
	for _, shards := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			csvOut, jsonOut, results := runMatrixCell(t, grid, shards, workers, true)
			if !bytes.Equal(csvOut, wantCSV) {
				t.Errorf("speculative shards=%d workers=%d: CSV output differs from conservative oracle\n got:\n%s\nwant:\n%s",
					shards, workers, csvOut, wantCSV)
			}
			if !bytes.Equal(jsonOut, wantJSON) {
				t.Errorf("speculative shards=%d workers=%d: NDJSON output differs from conservative oracle", shards, workers)
			}
			for i := range results {
				results[i].Scenario.Shards = wantResults[i].Scenario.Shards
				results[i].Scenario.Speculative = wantResults[i].Scenario.Speculative
				results[i].Exec = wantResults[i].Exec
			}
			if !reflect.DeepEqual(results, wantResults) {
				t.Errorf("speculative shards=%d workers=%d: Results differ from conservative oracle", shards, workers)
			}
		}
	}
}

// TestSpeculativeOracleDifferential is the straggler-heavy pinned
// fixture: a bursty pulse flood sharded 4 ways runs speculatively against
// its conservative single-shard oracle. The runs must agree exactly, and
// the speculative run must actually have rolled shards back — otherwise
// the differential proves nothing about the rollback machinery.
func TestSpeculativeOracleDifferential(t *testing.T) {
	base := tinyScale().Apply(Scenario{
		Label: "oracle", ClientsSolve: true, BotsSolve: true,
		Defense: DefensePuzzles, Attack: AttackPulseFlood,
	})
	oracle, err := RunFlood(base)
	if err != nil {
		t.Fatalf("RunFlood(oracle): %v", err)
	}
	spec := base
	spec.Shards = 4
	spec.Speculative = true
	run, err := RunFlood(spec)
	if err != nil {
		t.Fatalf("RunFlood(speculative): %v", err)
	}
	wantMetrics, wantSeries := StandardMetrics(oracle)
	gotMetrics, gotSeries := StandardMetrics(run)
	if !reflect.DeepEqual(gotMetrics, wantMetrics) {
		t.Errorf("speculative metrics diverged from oracle:\n got: %+v\nwant: %+v", gotMetrics, wantMetrics)
	}
	if !reflect.DeepEqual(gotSeries, wantSeries) {
		t.Error("speculative series diverged from oracle")
	}
	st := run.Net.ShardStats()
	if st.Rollbacks == 0 {
		t.Error("Rollbacks = 0: the pinned fixture no longer provokes mis-speculation")
	}
	if st.SpeculativeWindows == 0 {
		t.Error("SpeculativeWindows = 0: speculation never engaged")
	}
}

// TestAutoShardsRuns exercises the AutoShards sentinel end to end: the
// shard count is sized to the machine and the run must still match the
// single-shard baseline.
func TestAutoShardsRuns(t *testing.T) {
	base := tinyScale().Apply(Scenario{Label: "auto", ClientsSolve: true, BotsSolve: true})
	want, err := RunFlood(base)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	auto := base
	auto.Shards = sweep.AutoShards
	got, err := RunFlood(auto)
	if err != nil {
		t.Fatalf("RunFlood(auto): %v", err)
	}
	if !reflect.DeepEqual(got.ClientThroughputMbps(), want.ClientThroughputMbps()) {
		t.Error("AutoShards client throughput differs from single-shard run")
	}
	if !reflect.DeepEqual(got.ServerThroughputMbps(), want.ServerThroughputMbps()) {
		t.Error("AutoShards server throughput differs from single-shard run")
	}
}

// TestShardsExcludedFromCacheHash pins the cache-key contract: shard
// count never enters the scenario hash, so a cell computed sharded hits
// for a rerun unsharded (and vice versa).
func TestShardsExcludedFromCacheHash(t *testing.T) {
	sc := Scenario{Label: "hash", Seed: 3}
	plain := sweep.Hash("exp", sc)
	sc.Shards = 8
	if got := sweep.Hash("exp", sc); got != plain {
		t.Errorf("Shards changed the cache hash: %s vs %s", got, plain)
	}
	sc.Shards = sweep.AutoShards
	if got := sweep.Hash("exp", sc); got != plain {
		t.Error("AutoShards changed the cache hash")
	}
	// Still sensitive to fields that do change results.
	sc.Seed = 4
	if got := sweep.Hash("exp", sc); got == plain {
		t.Error("seed change did not change the cache hash")
	}
}

// TestSpeculativeExcludedFromCacheHash pins the same contract for the
// speculation knob: a speculative rerun of a conservatively-cached cell
// must hash identically (and therefore hit), because the results are
// byte-identical by construction.
func TestSpeculativeExcludedFromCacheHash(t *testing.T) {
	sc := Scenario{Label: "hash", Seed: 3}
	plain := sweep.Hash("exp", sc)
	sc.Speculative = true
	if got := sweep.Hash("exp", sc); got != plain {
		t.Errorf("Speculative changed the cache hash: %s vs %s", got, plain)
	}
	sc.Shards = 8
	if got := sweep.Hash("exp", sc); got != plain {
		t.Error("Speculative+Shards changed the cache hash")
	}
}
