package experiments

import (
	"math"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// TestAdaptiveDefenseTracksStackelberg pins the defender's half of the
// arms race to the static game solver: a constant-rate SYN flood of known
// aggregate rate must drive the adaptive controller to the same (K, M)
// the Stackelberg solver picks offline for that rate, within the bit
// quantisation of ParamsFor and the EWMA's estimation error — and the
// difficulty must decay back to the no-attack optimum after the flood.
func TestAdaptiveDefenseTracksStackelberg(t *testing.T) {
	sc := Scenario{
		Label:    "stackelberg-track",
		Duration: 70 * time.Second, AttackStart: 10 * time.Second, AttackStop: 50 * time.Second,
		NumClients: 4, ClientRate: 8, ClientsSolve: true,
		Defense: DefenseAdaptivePuzzles, Attack: AttackSYNFlood,
		BotCount: 4, PerBotRate: 80,
		Backlog: 128, AcceptBacklog: 128, Workers: 48,
		Seed: 11,
	}
	run, err := RunFlood(sc)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	ap, ok := run.Server.Defense().(*defense.AdaptivePuzzles)
	if !ok {
		t.Fatalf("defense is %T, want *defense.AdaptivePuzzles", run.Server.Defense())
	}
	trace := ap.Trace()
	if len(trace) == 0 {
		t.Fatal("controller recorded no ticks")
	}

	// Before the flood the controller must sit at the no-attack optimum.
	base := run.Cfg.Params
	idle, err := defense.AdaptiveTarget(0, base)
	if err != nil {
		t.Fatalf("AdaptiveTarget(0): %v", err)
	}
	if trace[0].Params != idle {
		t.Errorf("first tick deployed %v, want no-attack optimum %v", trace[0].Params, idle)
	}

	// At the end of the attack window the rate estimate must have locked
	// onto the true aggregate flood rate...
	trueRate := float64(run.Cfg.BotCount) * run.Cfg.PerBotRate
	end, ok := ap.TraceAt(run.Cfg.AttackStop)
	if !ok {
		t.Fatal("no trace sample inside the attack window")
	}
	if end.AttackRate < 0.6*trueRate || end.AttackRate > 1.5*trueRate {
		t.Errorf("attack-rate estimate %v, want within [0.6, 1.5]×%v", end.AttackRate, trueRate)
	}

	// ...and the deployed work level must match the solver's ℓ* for that
	// rate: ParamsFor rounds up to whole bits (factor < 2), and the
	// estimate tolerance above adds at most another ~quarter bit, so the
	// converged difficulty lands in [0.75·ℓ*, 2.5·ℓ*].
	lPred, err := defense.AdaptiveGame(trueRate).OptimalDifficulty()
	if err != nil {
		t.Fatalf("OptimalDifficulty(%v): %v", trueRate, err)
	}
	lFinal := end.Params.ExpectedSolveHashes()
	if lFinal < 0.75*lPred || lFinal > 2.5*lPred {
		t.Errorf("converged work %v hashes vs Stackelberg ℓ* %v (gap %.2f bits), want within [0.75ℓ*, 2.5ℓ*]",
			lFinal, lPred, math.Abs(math.Log2(lFinal/lPred)))
	}
	// The flood must actually have moved the difficulty off the idle point.
	if end.Params == idle {
		t.Errorf("difficulty never rose under a %v SYN/s flood (stuck at %v)", trueRate, idle)
	}

	// Internal consistency: what is deployed is exactly the controller's
	// own best response to its current estimate — the plugin is the solver,
	// not an approximation of it.
	if want, err := defense.AdaptiveTarget(end.AttackRate, base); err != nil {
		t.Fatalf("AdaptiveTarget(%v): %v", end.AttackRate, err)
	} else if end.Params != want {
		t.Errorf("deployed %v, want best response %v to own estimate %v", end.Params, want, end.AttackRate)
	}

	// After the flood stops the estimate decays and the difficulty returns
	// to the no-attack optimum (20 s of 0.25-EWMA decay ≈ 3 orders of
	// magnitude, far below the lowest difficulty step).
	last := trace[len(trace)-1]
	if last.Params != idle {
		t.Errorf("post-attack difficulty %v, want decay back to %v", last.Params, idle)
	}
	if last.AttackRate > 0.05*trueRate {
		t.Errorf("post-attack estimate %v has not decayed (true rate %v)", last.AttackRate, trueRate)
	}
}

// TestAdaptiveAttackReplicatorFixedPoint pins the attacker's half: on a
// rigged scenario where exactly one arm earns feedback, every bot's
// replicator must concentrate its budget on that arm, up to the
// exploration floor; and on a rock-paper-scissors payoff fixture the same
// dynamics must cycle forever instead of converging.
func TestAdaptiveAttackReplicatorFixedPoint(t *testing.T) {
	t.Run("dominant arm absorbs the budget", func(t *testing.T) {
		// Against cookies nothing is ever challenged, spoofed SYNs get no
		// reply, and completed handshakes are full wins: the conn-flood arm
		// is the unique earner, so shares must converge near its fixed
		// point 1 − (arms−1)·floor.
		sc := Scenario{
			Label:    "replicator-rigged",
			Duration: 60 * time.Second, AttackStart: 5 * time.Second, AttackStop: 55 * time.Second,
			NumClients: 3, ClientRate: 8, ClientsSolve: true,
			Defense: DefenseCookies, Attack: AttackAdaptiveFlood,
			BotCount: 4, PerBotRate: 80, BotsSolve: true,
			Backlog: 256, AcceptBacklog: 256, Workers: 48,
			Seed: 13,
		}
		run, err := RunFlood(sc)
		if err != nil {
			t.Fatalf("RunFlood: %v", err)
		}
		for i, b := range run.Botnet.Bots {
			af, ok := b.Strategy().(*attack.AdaptiveFlood)
			if !ok {
				t.Fatalf("bot %d strategy is %T, want *attack.AdaptiveFlood", i, b.Strategy())
			}
			if epochs := len(af.ShareTrace()); epochs < 10 {
				t.Fatalf("bot %d closed only %d replicator epochs — run too short to converge", i, epochs)
			}
			names, shares := af.ArmNames(), af.Shares()
			conn := -1
			for a, n := range names {
				if n == sweep.AttackConnFlood {
					conn = a
				}
			}
			if conn < 0 {
				t.Fatalf("bot %d arms %v missing connflood", i, names)
			}
			for a := range shares {
				if a == conn {
					if shares[a] < 0.85 {
						t.Errorf("bot %d: conn-flood share %v, want ≥ 0.85 (fixed point %v)",
							i, shares[a], 1-float64(len(names)-1)*attack.AdaptiveExplorationFloor)
					}
				} else if shares[a] > 0.10 {
					t.Errorf("bot %d: starved arm %v holds share %v, want near floor %v",
						i, names[a], shares[a], attack.AdaptiveExplorationFloor)
				}
			}
		}
	})

	t.Run("rock-paper-scissors cycles", func(t *testing.T) {
		// Replicator dynamics on the RPS payoff matrix have no stable
		// interior attractor: the share vector must keep orbiting — leader
		// changes never stop and step sizes never vanish. This is the
		// negative control for the convergence claims above: the learner
		// concentrates only when a dominant arm exists.
		payoff := [3][3]float64{{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}}
		shares := []float64{0.4, 0.3, 0.3}
		const steps, tail = 400, 100
		leadChanges, lastLead := 0, -1
		led := [3]bool{}
		minTailDelta := math.Inf(1)
		for s := 0; s < steps; s++ {
			p := make([]float64, 3)
			for i := range p {
				for j := range shares {
					p[i] += payoff[i][j] * shares[j]
				}
			}
			next, err := game.ReplicatorStep(shares, p, 0.02)
			if err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
			lead, delta := 0, 0.0
			for i := range next {
				if next[i] > next[lead] {
					lead = i
				}
				if d := math.Abs(next[i] - shares[i]); d > delta {
					delta = d
				}
			}
			if lead != lastLead {
				if lastLead >= 0 {
					leadChanges++
				}
				lastLead = lead
			}
			led[lead] = true
			if s >= steps-tail && delta < minTailDelta {
				minTailDelta = delta
			}
			shares = next
		}
		if leadChanges < 10 {
			t.Errorf("only %d lead changes in %d steps — RPS dynamics should cycle", leadChanges, steps)
		}
		if !led[0] || !led[1] || !led[2] {
			t.Errorf("not every arm led at some point: %v", led)
		}
		if minTailDelta < 0.01 {
			t.Errorf("step size fell to %v in the last %d steps — dynamics converged on a non-convergent game",
				minTailDelta, tail)
		}
	})
}

// TestArmsRaceDriver smoke-runs the driver end to end: all three cells
// produce their convergence metrics and trajectory series, and the table
// renders.
func TestArmsRaceDriver(t *testing.T) {
	res, err := ArmsRace(tinyScale())
	if err != nil {
		t.Fatalf("ArmsRace: %v", err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Results))
	}

	// Defender convergence where an adaptive defender plays.
	for _, label := range []string{"adaptive-defense", "adaptive-both"} {
		if gap := res.DefenderGapBits(label); math.IsNaN(gap) || gap > 3 {
			t.Errorf("%s: defender gap %v bits, want finite and ≤ 3", label, gap)
		}
	}
	if gap := res.DefenderGapBits("adaptive-attack"); !math.IsNaN(gap) {
		t.Errorf("static-defender cell reports a defender gap: %v", gap)
	}

	// Attacker convergence where an adaptive attacker plays.
	for _, label := range []string{"adaptive-attack", "adaptive-both"} {
		if gap := res.AttackerGap(label); math.IsNaN(gap) || gap > 0.5 {
			t.Errorf("%s: attacker gap %v, want finite and ≤ 0.5", label, gap)
		}
	}
	if gap := res.AttackerGap("adaptive-defense"); !math.IsNaN(gap) {
		t.Errorf("static-attacker cell reports an attacker gap: %v", gap)
	}

	// Series schema: m-trajectory for adaptive defenders, one share series
	// per arm for adaptive attackers.
	for _, r := range res.Results {
		adaptiveDef := r.Scenario.Defense == DefenseAdaptivePuzzles
		adaptiveAtk := r.Scenario.Attack == AttackAdaptiveFlood
		if got := r.SeriesValues("difficulty_m") != nil; got != adaptiveDef {
			t.Errorf("%s: difficulty_m series present=%v, want %v", r.Scenario.Label, got, adaptiveDef)
		}
		shareSeries := 0
		for _, s := range r.Series {
			if len(s.Name) > 6 && s.Name[:6] == "share_" {
				shareSeries++
			}
		}
		if adaptiveAtk && shareSeries != 3 {
			t.Errorf("%s: %d share series, want 3", r.Scenario.Label, shareSeries)
		}
		if !adaptiveAtk && shareSeries != 0 {
			t.Errorf("%s: unexpected share series", r.Scenario.Label)
		}
	}

	tbl := res.Table()
	if len(tbl.Rows) != 3 || len(tbl.String()) == 0 {
		t.Errorf("table did not render: %d rows", len(tbl.Rows))
	}
}
