package experiments

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// diffScenario is the ≤64-source flood both executions run: small enough
// to afford per-bot objects, busy enough that sources interleave on the
// server.
func diffScenario(attack sweep.Attack) Scenario {
	return Scenario{
		Label:    "diff-" + string(attack),
		Duration: 30 * time.Second, AttackStart: 5 * time.Second, AttackStop: 25 * time.Second,
		NumClients: 3, ClientRate: 8,
		Defense: DefensePuzzles, Attack: attack,
		BotCount: 48, PerBotRate: 60,
		Backlog: 128, AcceptBacklog: 128, Workers: 24,
		Seed: 7,
	}
}

// measurement captures everything the differential compares: the standard
// metric/series set plus the raw attack-side and server-side counters.
type measurement struct {
	Metrics    []sweep.Metric
	Series     []sweep.Series
	SentRate   []float64
	Unroutable uint64
	SYNsRecv   uint64
	SYNsDrop   uint64
}

func measure(t *testing.T, sc Scenario) []byte {
	t.Helper()
	run, err := RunFlood(sc)
	if err != nil {
		t.Fatalf("RunFlood(%q, shards=%d): %v", sc.Label, sc.Shards, err)
	}
	metrics, series := StandardMetrics(run)
	m := measurement{
		Metrics:    metrics,
		Series:     series,
		SentRate:   run.MeasuredAttackRate(),
		Unroutable: run.Net.Unroutable(),
		SYNsRecv:   run.Server.Metrics().SYNsReceived,
		SYNsDrop:   run.Server.Metrics().SYNsDropped,
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return out
}

// TestMacroPerBotDifferential is the tentpole's correctness oracle: a
// small spoofed flood executed per-bot (with the macro-comparable compact
// RNG) and macro-aggregated must produce byte-identical measurements at
// every tested shard count. The comparison covers the Read-free spoofed
// floods — the strategies whose per-source randomness is draw-for-draw
// reproducible through the fleet's shared RNG wrapper (see MacroFleet).
func TestMacroPerBotDifferential(t *testing.T) {
	// adaptive-flood rides the same oracle: its replicator state is
	// per-instance (per bot / per macro slot) and its draws are Read-free,
	// so learned budget shares must be draw-for-draw identical too.
	for _, attack := range []sweep.Attack{AttackSYNFlood, AttackPulseFlood, AttackAdaptiveFlood} {
		var want []byte
		for _, shards := range []int{1, 2, 4} {
			perBot := diffScenario(attack)
			perBot.CompactBotRNG = true
			perBot.Shards = shards

			macro := diffScenario(attack)
			macro.BotCount = sweep.NoBotnet
			macro.MacroSources = 48
			macro.Shards = shards

			got := measure(t, perBot)
			gotMacro := measure(t, macro)
			if string(got) != string(gotMacro) {
				t.Errorf("%s shards=%d: per-bot and macro measurements differ\nper-bot: %s\nmacro:   %s",
					attack, shards, got, gotMacro)
				continue
			}
			if want == nil {
				want = got
			} else if string(got) != string(want) {
				t.Errorf("%s shards=%d: measurements differ from shards=1 baseline", attack, shards)
			}
		}
	}
}

// TestMacroAllStrategiesRun asserts every registered attack executes in
// macro mode through the unchanged BotCtx facade — no per-strategy
// rewrites, including the stateful (per-slot) replay flood and the
// CPU-charging solution/connection floods.
func TestMacroAllStrategiesRun(t *testing.T) {
	for _, attack := range sweep.KnownAttacks() {
		sc := diffScenario(attack)
		sc.Duration = 20 * time.Second
		sc.AttackStop = 15 * time.Second
		sc.BotCount = sweep.NoBotnet
		sc.MacroSources = 30
		sc.BotsSolve = true
		sc.Shards = 2
		run, err := RunFlood(sc)
		if err != nil {
			t.Fatalf("RunFlood(macro %s): %v", attack, err)
		}
		if total := run.Macro.TotalSent(0, sc.Duration); total == 0 {
			t.Errorf("macro %s sent no packets", attack)
		}
	}
}

// macroHeapBudget is the pinned retained-heap budget for a 100k-source
// macro flood: the CI bounded-memory wall. The flat per-source state
// costs ~60 B/source (~6 MB at 100k); the rest of the budget covers the
// server, metrics series, and the event pool after the synchronized
// first-tick burst. A per-bot run of the same population would retain
// >500 MB in RNG state alone, so a regression back to O(sources) objects
// blows this budget immediately.
const macroHeapBudget = 128 << 20

// TestMacroFloodBoundedMemory runs a 100k-source macro SYN flood and
// asserts the retained heap stays under the pinned budget.
func TestMacroFloodBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-memory wall is a dedicated CI step")
	}
	sc := Scenario{
		Label:    "macro-100k",
		Duration: 20 * time.Second, AttackStart: 2 * time.Second, AttackStop: 18 * time.Second,
		NumClients: 2, ClientRate: 4,
		Defense: DefensePuzzles, Attack: AttackSYNFlood,
		BotCount: sweep.NoBotnet, MacroSources: 100_000, PerBotRate: 0.05,
		Backlog: 512, AcceptBacklog: 128, Workers: 24,
		Seed: 11,
	}
	run, err := RunFlood(sc)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	if total := run.Macro.TotalSent(0, sc.Duration); total < float64(sc.MacroSources) {
		t.Errorf("TotalSent = %v, want at least one packet per source", total)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("sources=%d retained HeapAlloc=%d MiB HeapSys=%d MiB",
		sc.MacroSources, ms.HeapAlloc>>20, ms.HeapSys>>20)
	if ms.HeapAlloc > macroHeapBudget {
		t.Errorf("retained HeapAlloc %d MiB exceeds pinned budget %d MiB",
			ms.HeapAlloc>>20, uint64(macroHeapBudget)>>20)
	}
	// Keep the run (and its O(sources) state) live through the measurement.
	runtime.KeepAlive(run)
}

// TestMacroSourcesInCacheHash pins the new knobs' cache identity: zero
// values keep legacy hashes byte-identical, non-zero values mint new ones.
func TestMacroSourcesInCacheHash(t *testing.T) {
	sc := Scenario{Label: "hash", Seed: 3}
	plain := sweep.Hash("exp", sc)

	macro := sc
	macro.MacroSources = 1000
	if sweep.Hash("exp", macro) == plain {
		t.Error("MacroSources did not change the cache hash")
	}
	compact := sc
	compact.CompactBotRNG = true
	if sweep.Hash("exp", compact) == plain {
		t.Error("CompactBotRNG did not change the cache hash")
	}
}

// TestFig6SketchDifferential runs one Fig. 6 difficulty cell both ways —
// exact CDF and O(1) streaming sketch — on the same workload and bounds
// the sketch's error. The sample count is identical and the mean agrees
// to float rounding (the sketch sums seconds, the CDF sums microseconds);
// the P² quantile estimates must land within 10% of the exact values —
// the pinned envelope for this long-tailed solve-time distribution at the
// default 300 samples per cell.
func TestFig6SketchDifferential(t *testing.T) {
	cfg := Fig6Config{Ks: []uint8{2}, Ms: []uint8{10}, Connections: 300, Seed: 7}
	exact, err := Fig6(cfg)
	if err != nil {
		t.Fatalf("Fig6(exact): %v", err)
	}
	cfg.Sketch = true
	sketched, err := Fig6(cfg)
	if err != nil {
		t.Fatalf("Fig6(sketch): %v", err)
	}
	em, sm := exact.Results[0], sketched.Results[0]
	if got, want := sm.Metric("samples"), em.Metric("samples"); got != want {
		t.Errorf("samples: sketch %v != exact %v", got, want)
	}
	if got, want := sm.Metric("conn_time_mean_us"), em.Metric("conn_time_mean_us"); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("mean: sketch %v vs exact %v beyond float rounding", got, want)
	}
	for _, name := range []string{"conn_time_p10_us", "conn_time_p50_us", "conn_time_p90_us"} {
		got, want := sm.Metric(name), em.Metric(name)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("%s: sketch %v vs exact %v, rel err %.4f > 0.10", name, got, want, rel)
		} else {
			t.Logf("%s: sketch %v exact %v rel err %.4f", name, got, want, rel)
		}
	}
}
