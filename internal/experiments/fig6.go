package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/clientsim"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
)

// Fig6Config scales Experiment 1 (connection-time CDFs across k and m).
type Fig6Config struct {
	// Ks and Ms are the difficulty grid; defaults are the paper's
	// {1,2,3,4} × {4,10,16,20}.
	Ks []uint8
	Ms []uint8
	// Connections is the number of handshakes sampled per cell.
	Connections int
	// Seed drives randomness.
	Seed int64
	// Parallelism is the runner width for the grid (0 = GOMAXPROCS).
	Parallelism int
}

func (c *Fig6Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []uint8{1, 2, 3, 4}
	}
	if len(c.Ms) == 0 {
		c.Ms = []uint8{4, 10, 16, 20}
	}
	if c.Connections == 0 {
		c.Connections = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig6Cell is one CDF of the grid.
type Fig6Cell struct {
	Params puzzle.Params
	// CDF is over connection times in microseconds (the paper's axis).
	CDF *stats.CDF
}

// Fig6Result is the full grid.
type Fig6Result struct {
	Cells []Fig6Cell
}

// Fig6 measures handshake completion time CDFs as (k, m) vary, with
// challenges forced on (no attack, LAN latency). Connection time includes
// the solve time on the modelled client CPU plus the LAN round trips, so
// the paper's structure — exponential growth in m, linear growth in k —
// is preserved.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg.fill()
	var grid []puzzle.Params
	for _, k := range cfg.Ks {
		for _, m := range cfg.Ms {
			grid = append(grid, puzzle.Params{K: k, M: m, L: 32})
		}
	}
	// Each cell builds its own engine, server and client from the cell's
	// derived seed, so the grid fans out on the shared runner.
	cells, err := runner.Map(cfg.Parallelism, len(grid), func(i int) (Fig6Cell, error) {
		return fig6Cell(grid[i], cfg)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	return &Fig6Result{Cells: cells}, nil
}

func fig6Cell(params puzzle.Params, cfg Fig6Config) (Fig6Cell, error) {
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)
	// LAN links: negligible propagation so solve time dominates, as in the
	// paper's testbed measurements.
	lan := netsim.LinkConfig{RateBps: 1e9, Latency: 10 * time.Microsecond, MaxBacklog: time.Second}
	srv, err := serversim.New(eng, network, lan, serversim.Config{
		Addr:            [4]byte{10, 0, 0, 1},
		Protection:      serversim.ProtectionPuzzles,
		AlwaysChallenge: true,
		PuzzleParams:    params,
		SimulatedCrypto: true,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return Fig6Cell{}, err
	}
	client, err := clientsim.New(eng, network, lan, clientsim.Config{
		Addr:            [4]byte{10, 1, 0, 1},
		ServerAddr:      srv.Addr(),
		Solves:          true,
		SimulatedCrypto: true,
		RequestBytes:    1000,
		Device:          cpumodel.CPU1,
		MaxSolveBacklog: time.Hour, // sequential connects; never abandon
		Seed:            cfg.Seed + int64(params.K)*100 + int64(params.M),
	})
	if err != nil {
		return Fig6Cell{}, err
	}
	// Issue connections sequentially so solves do not queue behind each
	// other (the paper measures isolated connection times).
	var connect func()
	remaining := cfg.Connections
	connect = func() {
		if remaining == 0 {
			return
		}
		remaining--
		client.Connect()
		eng.Schedule(5*time.Second, connect)
	}
	eng.ScheduleAt(0, connect)
	eng.Run(time.Duration(cfg.Connections+2) * 5 * time.Second)

	times := client.Metrics().ConnTimes
	micros := make([]float64, len(times))
	for i, s := range times {
		micros[i] = s * 1e6
	}
	return Fig6Cell{Params: params, CDF: stats.NewCDF(micros)}, nil
}

// Table renders mean and quantiles per grid cell.
func (r *Fig6Result) Table() Table {
	t := Table{
		Title:  "Fig 6 — connection time vs difficulty (µs)",
		Header: []string{"k", "m", "mean", "p10", "p50", "p90", "n"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.Params.K),
			fmt.Sprintf("%d", c.Params.M),
			f1(c.CDF.Mean()),
			f1(c.CDF.Quantile(0.10)),
			f1(c.CDF.Quantile(0.50)),
			f1(c.CDF.Quantile(0.90)),
			fmt.Sprintf("%d", c.CDF.Len()),
		})
	}
	return t
}

// MeanFor returns the mean connection time (µs) for a difficulty, used by
// shape assertions.
func (r *Fig6Result) MeanFor(k, m uint8) (float64, bool) {
	for _, c := range r.Cells {
		if c.Params.K == k && c.Params.M == m {
			return c.CDF.Mean(), true
		}
	}
	return 0, false
}
