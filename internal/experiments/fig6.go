package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/clientsim"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// fig6ConnectionGap is the spacing between Fig. 6's sequential
// handshakes; each cell's Scenario.Duration encodes its connection count
// as (connections + 2) gaps, so the canonical scenario fully determines
// the cell (and therefore its cache hash).
const fig6ConnectionGap = 5 * time.Second

// Fig6Config scales Experiment 1 (connection-time CDFs across k and m).
type Fig6Config struct {
	// Ks and Ms are the difficulty grid; defaults are the paper's
	// {1,2,3,4} × {4,10,16,20}.
	Ks []uint8
	Ms []uint8
	// Connections is the number of handshakes sampled per cell.
	Connections int
	// Sketch computes each cell's connection-time statistics with the
	// O(1) streaming summary sketch (P² quantiles) instead of retaining
	// every sample for an exact CDF — the bounded-memory mode for very
	// long sample streams. Mean and sample count are exact either way;
	// the p10/p50/p90 estimates carry the P² error envelope (see
	// internal/stats sketch tests). Sketch cells cache under their own
	// namespace so exact and sketched results never alias.
	Sketch bool
	// Seed drives randomness.
	Seed int64
	// Scale supplies execution options only (runner width, sinks,
	// cache); Fig. 6 has no flood to rescale.
	Scale Scale
}

func (c *Fig6Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []uint8{1, 2, 3, 4}
	}
	if len(c.Ms) == 0 {
		c.Ms = []uint8{4, 10, 16, 20}
	}
	if c.Connections == 0 {
		c.Connections = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig6Grid declares the (k, m) difficulty product of Experiment 1. Each
// cell is a single always-challenged client performing sequential
// handshakes; the duration encodes the connection count.
func Fig6Grid(ks, ms []uint8, connections int, seed int64) sweep.Grid {
	return sweep.Grid{
		Base: Scenario{
			Duration:        time.Duration(connections+2) * fig6ConnectionGap,
			NumClients:      1,
			RequestBytes:    1000,
			ClientsSolve:    true,
			Defense:         DefensePuzzles,
			AlwaysChallenge: true,
			Attack:          AttackConnFlood, // canonical default; no botnet runs
			BotCount:        NoBotnet,
			Seed:            seed,
		},
		Axes: []sweep.Axis{sweep.Ks(ks...), sweep.Ms(ms...)},
	}
}

// Fig6Result is the full grid.
type Fig6Result struct {
	Results []sweep.Result
}

// Fig6 measures handshake completion time CDFs as (k, m) vary, with
// challenges forced on (no attack, LAN latency). Connection time includes
// the solve time on the modelled client CPU plus the LAN round trips, so
// the paper's structure — exponential growth in m, linear growth in k —
// is preserved. Each cell builds its own engine, server and client from
// the cell's derived seed, so the grid fans out on the shared runner.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg.fill()
	grid := Fig6Grid(cfg.Ks, cfg.Ms, cfg.Connections, cfg.Seed)
	ns := "fig6"
	if cfg.Sketch {
		ns = "fig6-sketch"
	}
	results, err := runCells(cfg.Scale, ns, "", grid.Expand(nil),
		func(_ int, sc Scenario) ([]sweep.Metric, []sweep.Series, error) {
			return fig6Cell(sc, cfg.Sketch)
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	return &Fig6Result{Results: results}, nil
}

// fig6Cell runs one difficulty cell: sequential handshakes on a LAN, no
// attack, reporting the connection-time distribution in microseconds (the
// paper's axis). With sketch set the distribution is summarised in O(1)
// memory as the handshakes complete; otherwise every sample is retained
// and the quantiles are exact.
func fig6Cell(sc Scenario, sketch bool) ([]sweep.Metric, []sweep.Series, error) {
	params := sc.Params
	connections := int(sc.Duration/fig6ConnectionGap) - 2
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)
	// LAN links: negligible propagation so solve time dominates, as in the
	// paper's testbed measurements.
	lan := netsim.LinkConfig{RateBps: 1e9, Latency: 10 * time.Microsecond, MaxBacklog: time.Second}
	srv, err := serversim.New(eng, network, lan, serversim.Config{
		Addr:            [4]byte{10, 0, 0, 1},
		Defense:         DefensePuzzles,
		AlwaysChallenge: true,
		PuzzleParams:    params,
		SimulatedCrypto: true,
		Seed:            sc.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	client, err := clientsim.New(eng, network, lan, clientsim.Config{
		Addr:            [4]byte{10, 1, 0, 1},
		ServerAddr:      srv.Addr(),
		Solves:          true,
		SimulatedCrypto: true,
		RequestBytes:    sc.RequestBytes,
		Device:          cpumodel.CPU1,
		MaxSolveBacklog: time.Hour, // sequential connects; never abandon
		SketchConnTimes: sketch,
		Seed:            sc.Seed + int64(params.K)*100 + int64(params.M),
	})
	if err != nil {
		return nil, nil, err
	}
	// Issue connections sequentially so solves do not queue behind each
	// other (the paper measures isolated connection times).
	var connect func()
	remaining := connections
	connect = func() {
		if remaining == 0 {
			return
		}
		remaining--
		client.Connect()
		eng.Schedule(fig6ConnectionGap, connect)
	}
	eng.ScheduleAt(0, connect)
	eng.Run(sc.Duration)

	if sk := client.Metrics().ConnSketch; sk != nil {
		// P² marker updates commute with affine scaling, so sketching in
		// seconds and reporting in microseconds loses nothing.
		return []sweep.Metric{
			{Name: "conn_time_mean_us", Value: sk.Mean() * 1e6},
			{Name: "conn_time_p10_us", Value: sk.Quantile(0.10) * 1e6},
			{Name: "conn_time_p50_us", Value: sk.Quantile(0.50) * 1e6},
			{Name: "conn_time_p90_us", Value: sk.Quantile(0.90) * 1e6},
			{Name: "samples", Value: float64(sk.Count())},
		}, nil, nil
	}
	times := client.Metrics().ConnTimes
	micros := make([]float64, len(times))
	for i, s := range times {
		micros[i] = s * 1e6
	}
	cdf := stats.NewCDF(micros)
	metrics := []sweep.Metric{
		{Name: "conn_time_mean_us", Value: cdf.Mean()},
		{Name: "conn_time_p10_us", Value: cdf.Quantile(0.10)},
		{Name: "conn_time_p50_us", Value: cdf.Quantile(0.50)},
		{Name: "conn_time_p90_us", Value: cdf.Quantile(0.90)},
		{Name: "samples", Value: float64(cdf.Len())},
	}
	return metrics, nil, nil
}

// Table renders mean and quantiles per grid cell.
func (r *Fig6Result) Table() Table {
	t := Table{
		Title:  "Fig 6 — connection time vs difficulty (µs)",
		Header: []string{"k", "m", "mean", "p10", "p50", "p90", "n"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Scenario.Params.K),
			fmt.Sprintf("%d", res.Scenario.Params.M),
			f1(res.Metric("conn_time_mean_us")),
			f1(res.Metric("conn_time_p10_us")),
			f1(res.Metric("conn_time_p50_us")),
			f1(res.Metric("conn_time_p90_us")),
			fmt.Sprintf("%d", int(res.Metric("samples"))),
		})
	}
	return t
}

// MeanFor returns the mean connection time (µs) for a difficulty, used by
// shape assertions.
func (r *Fig6Result) MeanFor(k, m uint8) (float64, bool) {
	for _, res := range r.Results {
		if res.Scenario.Params.K == k && res.Scenario.Params.M == m {
			return res.Metric("conn_time_mean_us"), true
		}
	}
	return 0, false
}
