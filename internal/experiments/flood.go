package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// DefenseRun couples a label with a completed flood run. Runs are only
// populated for cells that actually simulated; on cache hits the Run is
// nil and all reporting derives from the Results.
type DefenseRun struct {
	Label string
	Run   *FloodRun
}

// defenseRuns executes a defense-variant grid through the shared executor
// and pairs each cell with its label.
func defenseRuns(scale Scale, experiment string, grid sweep.Grid) ([]sweep.Result, []DefenseRun, error) {
	cells := grid.Expand(&scale)
	results, runs, err := runFloodCells(scale, experiment, "", cells, floodComparisonMetrics)
	if err != nil {
		return nil, nil, err
	}
	out := make([]DefenseRun, len(runs))
	for i, run := range runs {
		out[i] = DefenseRun{Label: cells[i].Label, Run: run}
	}
	return results, out, nil
}

// floodComparisonMetrics measures client/server throughput in the three
// attack phases — the record behind Figs. 7 and 8.
func floodComparisonMetrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	cli := run.ClientThroughputMbps()
	srv := run.ServerThroughputMbps()
	metrics := []sweep.Metric{
		{Name: "client_mbps_before", Value: phaseMean(run, cli, phaseBefore)},
		{Name: "client_mbps_during", Value: phaseMean(run, cli, phaseDuring)},
		{Name: "client_mbps_after", Value: phaseMean(run, cli, phaseAfter)},
		{Name: "server_mbps_before", Value: phaseMean(run, srv, phaseBefore)},
		{Name: "server_mbps_during", Value: phaseMean(run, srv, phaseDuring)},
		{Name: "server_mbps_after", Value: phaseMean(run, srv, phaseAfter)},
	}
	series := []sweep.Series{
		{Name: "client_mbps", Values: cli},
		{Name: "server_mbps", Values: srv},
	}
	return metrics, series
}

// Fig7Grid declares the SYN-flood defense comparison of Fig. 7: no
// defense, SYN cookies, puzzles at (1,8), and puzzles at the Nash
// difficulty (2,17), all against patched clients.
func Fig7Grid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{Attack: AttackSYNFlood, ClientsSolve: true},
		Axes: []sweep.Axis{sweep.Variants("defense",
			sweep.Point{Label: "nodefense", Set: func(sc *Scenario) { sc.Defense = DefenseNone }},
			sweep.Point{Label: "cookies", Set: func(sc *Scenario) { sc.Defense = DefenseCookies }},
			sweep.Point{Label: "challenges-m8", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Params = puzzle.Params{K: 1, M: 8, L: 32}
			}},
			sweep.Point{Label: "challenges-m17", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Params = puzzle.Params{K: 2, M: 17, L: 32}
			}},
		)},
	}
}

// Fig7Result compares defenses under a SYN flood.
type Fig7Result struct {
	Results []sweep.Result
	Runs    []DefenseRun
}

// Fig7 runs the Fig7Grid deployments in parallel on the shared runner.
func Fig7(scale Scale) (*Fig7Result, error) {
	results, runs, err := defenseRuns(scale, "fig7", Fig7Grid())
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7: %w", err)
	}
	return &Fig7Result{Results: results, Runs: runs}, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig7Result) Table() Table {
	return floodComparisonTable("Fig 7 — SYN flood: throughput (Mbps)", r.Results)
}

// Fig8Grid declares the connection-flood comparison of Fig. 8: no
// defense, SYN cookies, and puzzles at the Nash difficulty. The bots run
// patched kernels (they solve when challenged), matching §6's deployment.
func Fig8Grid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{Attack: AttackConnFlood, ClientsSolve: true, BotsSolve: true},
		Axes: []sweep.Axis{sweep.Variants("defense",
			sweep.Point{Label: "nodefense", Set: func(sc *Scenario) { sc.Defense = DefenseNone }},
			sweep.Point{Label: "cookies", Set: func(sc *Scenario) { sc.Defense = DefenseCookies }},
			sweep.Point{Label: "challenges-m17", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Params = puzzle.Params{K: 2, M: 17, L: 32}
			}},
		)},
	}
}

// Fig8Result compares defenses under a connection flood.
type Fig8Result struct {
	Results []sweep.Result
	Runs    []DefenseRun
}

// Fig8 runs the Fig8Grid deployments in parallel on the shared runner.
func Fig8(scale Scale) (*Fig8Result, error) {
	results, runs, err := defenseRuns(scale, "fig8", Fig8Grid())
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	return &Fig8Result{Results: results, Runs: runs}, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig8Result) Table() Table {
	return floodComparisonTable("Fig 8 — connection flood: throughput (Mbps)", r.Results)
}

// RunFor returns the live run with the given label (nil Run on cache
// hits).
func (r *Fig8Result) RunFor(label string) (*FloodRun, bool) {
	return runFor(r.Runs, label)
}

// RunFor returns the live run with the given label (nil Run on cache
// hits).
func (r *Fig7Result) RunFor(label string) (*FloodRun, bool) {
	return runFor(r.Runs, label)
}

func runFor(runs []DefenseRun, label string) (*FloodRun, bool) {
	for _, d := range runs {
		if d.Label == label {
			return d.Run, true
		}
	}
	return nil, false
}

// floodComparisonTable renders client/server throughput in the three
// phases (before/during/after attack) plus a sparkline of the server
// series, straight from the structured Results so cached cells render
// identically to freshly simulated ones.
func floodComparisonTable(title string, results []sweep.Result) Table {
	t := Table{
		Title: title,
		Header: []string{
			"defense", "cli-before", "cli-during", "cli-after",
			"srv-before", "srv-during", "srv-after", "server-series",
		},
	}
	for _, res := range results {
		t.Rows = append(t.Rows, []string{
			res.Scenario.Label,
			f2(res.Metric("client_mbps_before")),
			f2(res.Metric("client_mbps_during")),
			f2(res.Metric("client_mbps_after")),
			f2(res.Metric("server_mbps_before")),
			f2(res.Metric("server_mbps_during")),
			f2(res.Metric("server_mbps_after")),
			sparkline(downsample(res.SeriesValues("server_mbps"), 40)),
		})
	}
	return t
}

type phase int

const (
	phaseBefore phase = iota + 1
	phaseDuring
	phaseAfter
)

// Exported phase selectors for callers outside this package (package sim).
const (
	PhaseBefore = phaseBefore
	PhaseDuring = phaseDuring
	PhaseAfter  = phaseAfter
)

// PhaseMean averages a per-bucket series over one phase of the attack
// timeline.
func (r *FloodRun) PhaseMean(series []float64, ph phase) float64 {
	return phaseMean(r, series, ph)
}

// phaseMean averages a series over one phase of the attack timeline,
// trimming the edges by a few buckets to avoid transition effects.
func phaseMean(run *FloodRun, series []float64, ph phase) float64 {
	bucket := run.Cfg.Bucket
	var lo, hi int
	switch ph {
	case phaseBefore:
		lo, hi = 2, int(run.Cfg.AttackStart/bucket)-1
	case phaseDuring:
		lo, hi = int(run.Cfg.AttackStart/bucket)+5, int(run.Cfg.AttackStop/bucket)-1
	case phaseAfter:
		// Skip the recovery window (half-open expiry ≈ 30 s in the paper);
		// scale it with the phase length for reduced runs.
		phaseLen := int((run.Cfg.Duration - run.Cfg.AttackStop) / bucket)
		lo = int(run.Cfg.AttackStop/bucket) + phaseLen/2
		hi = int(run.Cfg.Duration/bucket) - 1
	}
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
