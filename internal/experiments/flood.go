package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// DefenseRun couples a label with a completed flood run.
type DefenseRun struct {
	Label string
	Run   *FloodRun
}

// defenseRuns executes a labelled scenario grid on the shared runner and
// pairs each completed run with its label.
func defenseRuns(scale Scale, grid []Scenario) ([]DefenseRun, error) {
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(grid...))
	if err != nil {
		return nil, err
	}
	out := make([]DefenseRun, len(runs))
	for i, run := range runs {
		out[i] = DefenseRun{Label: grid[i].Label, Run: run}
	}
	return out, nil
}

// Fig7Result compares defenses under a SYN flood.
type Fig7Result struct {
	Runs []DefenseRun
}

// Fig7 runs the SYN-flood comparison of Fig. 7: no defense, SYN cookies,
// puzzles at (1,8), and puzzles at the Nash difficulty (2,17). Clients run
// patched kernels. The four deployments are independent and run in
// parallel on the shared runner.
func Fig7(scale Scale) (*Fig7Result, error) {
	grid := []Scenario{
		{Label: "nodefense", Defense: DefenseNone, Attack: AttackSYNFlood, ClientsSolve: true},
		{Label: "cookies", Defense: DefenseCookies, Attack: AttackSYNFlood, ClientsSolve: true},
		{Label: "challenges-m8", Defense: DefensePuzzles, Params: puzzle.Params{K: 1, M: 8, L: 32},
			Attack: AttackSYNFlood, ClientsSolve: true},
		{Label: "challenges-m17", Defense: DefensePuzzles, Params: puzzle.Params{K: 2, M: 17, L: 32},
			Attack: AttackSYNFlood, ClientsSolve: true},
	}
	runs, err := defenseRuns(scale, grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7: %w", err)
	}
	return &Fig7Result{Runs: runs}, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig7Result) Table() Table {
	return floodComparisonTable("Fig 7 — SYN flood: throughput (Mbps)", r.Runs)
}

// Fig8Result compares defenses under a connection flood.
type Fig8Result struct {
	Runs []DefenseRun
}

// Fig8 runs the connection-flood comparison of Fig. 8: no defense, SYN
// cookies, and puzzles at the Nash difficulty. The bots run patched kernels
// (they solve when challenged), matching §6's deployment.
func Fig8(scale Scale) (*Fig8Result, error) {
	grid := []Scenario{
		{Label: "nodefense", Defense: DefenseNone, Attack: AttackConnFlood,
			ClientsSolve: true, BotsSolve: true},
		{Label: "cookies", Defense: DefenseCookies, Attack: AttackConnFlood,
			ClientsSolve: true, BotsSolve: true},
		{Label: "challenges-m17", Defense: DefensePuzzles, Params: puzzle.Params{K: 2, M: 17, L: 32},
			Attack: AttackConnFlood, ClientsSolve: true, BotsSolve: true},
	}
	runs, err := defenseRuns(scale, grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	return &Fig8Result{Runs: runs}, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig8Result) Table() Table {
	return floodComparisonTable("Fig 8 — connection flood: throughput (Mbps)", r.Runs)
}

// RunFor returns the run with the given label.
func (r *Fig8Result) RunFor(label string) (*FloodRun, bool) {
	for _, d := range r.Runs {
		if d.Label == label {
			return d.Run, true
		}
	}
	return nil, false
}

// RunFor returns the run with the given label.
func (r *Fig7Result) RunFor(label string) (*FloodRun, bool) {
	for _, d := range r.Runs {
		if d.Label == label {
			return d.Run, true
		}
	}
	return nil, false
}

// floodComparisonTable renders client/server throughput in the three
// phases (before/during/after attack) plus a sparkline of the server
// series.
func floodComparisonTable(title string, runs []DefenseRun) Table {
	t := Table{
		Title: title,
		Header: []string{
			"defense", "cli-before", "cli-during", "cli-after",
			"srv-before", "srv-during", "srv-after", "server-series",
		},
	}
	for _, d := range runs {
		run := d.Run
		cli := run.ClientThroughputMbps()
		srv := run.ServerThroughputMbps()
		t.Rows = append(t.Rows, []string{
			d.Label,
			f2(phaseMean(run, cli, phaseBefore)),
			f2(phaseMean(run, cli, phaseDuring)),
			f2(phaseMean(run, cli, phaseAfter)),
			f2(phaseMean(run, srv, phaseBefore)),
			f2(phaseMean(run, srv, phaseDuring)),
			f2(phaseMean(run, srv, phaseAfter)),
			sparkline(downsample(srv, 40)),
		})
	}
	return t
}

type phase int

const (
	phaseBefore phase = iota + 1
	phaseDuring
	phaseAfter
)

// Exported phase selectors for callers outside this package (package sim).
const (
	PhaseBefore = phaseBefore
	PhaseDuring = phaseDuring
	PhaseAfter  = phaseAfter
)

// PhaseMean averages a per-bucket series over one phase of the attack
// timeline.
func (r *FloodRun) PhaseMean(series []float64, ph phase) float64 {
	return phaseMean(r, series, ph)
}

// phaseMean averages a series over one phase of the attack timeline,
// trimming the edges by a few buckets to avoid transition effects.
func phaseMean(run *FloodRun, series []float64, ph phase) float64 {
	bucket := run.Cfg.Bucket
	var lo, hi int
	switch ph {
	case phaseBefore:
		lo, hi = 2, int(run.Cfg.AttackStart/bucket)-1
	case phaseDuring:
		lo, hi = int(run.Cfg.AttackStart/bucket)+5, int(run.Cfg.AttackStop/bucket)-1
	case phaseAfter:
		// Skip the recovery window (half-open expiry ≈ 30 s in the paper);
		// scale it with the phase length for reduced runs.
		phaseLen := int((run.Cfg.Duration - run.Cfg.AttackStop) / bucket)
		lo = int(run.Cfg.AttackStop/bucket) + phaseLen/2
		hi = int(run.Cfg.Duration/bucket) - 1
	}
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
