package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/attacksim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// FloodScale scales the paper's full 600-second deployment down for tests
// and benchmarks while preserving structure.
type FloodScale struct {
	// Duration, AttackStart, AttackStop override the timeline.
	Duration, AttackStart, AttackStop time.Duration
	// NumClients, ClientRate, BotCount, PerBotRate override the load.
	NumClients int
	ClientRate float64
	BotCount   int
	PerBotRate float64
	// Backlog and AcceptBacklog size the server queues; reduced runs must
	// shrink them with the attack rate so floods saturate them on the same
	// relative timescale as the paper's 5000 pps vs 4096 slots.
	Backlog       int
	AcceptBacklog int
	// Workers sizes the application pool; reduced runs shrink it so the
	// flood overwhelms the drain rate by the same factor as at full scale.
	Workers int
	// Seed overrides the seed.
	Seed int64
}

// PaperScale is the full-size evaluation of §6.
func PaperScale() FloodScale {
	return FloodScale{
		Duration: 600 * time.Second, AttackStart: 120 * time.Second, AttackStop: 480 * time.Second,
		NumClients: 15, ClientRate: 20, BotCount: 10, PerBotRate: 500,
		Backlog: 4096, AcceptBacklog: 4096, Workers: 256, Seed: 1,
	}
}

// QuickScale is a reduced deployment for benchmarks and tests: the same
// shape at ~1/10 the event count.
func QuickScale() FloodScale {
	return FloodScale{
		Duration: 120 * time.Second, AttackStart: 30 * time.Second, AttackStop: 90 * time.Second,
		NumClients: 6, ClientRate: 10, BotCount: 5, PerBotRate: 120,
		Backlog: 512, AcceptBacklog: 512, Workers: 64, Seed: 1,
	}
}

func (s FloodScale) apply(cfg FloodConfig) FloodConfig {
	cfg.Duration = s.Duration
	cfg.AttackStart = s.AttackStart
	cfg.AttackStop = s.AttackStop
	cfg.NumClients = s.NumClients
	cfg.ClientRate = s.ClientRate
	cfg.BotCount = s.BotCount
	cfg.PerBotRate = s.PerBotRate
	cfg.Backlog = s.Backlog
	cfg.AcceptBacklog = s.AcceptBacklog
	cfg.Workers = s.Workers
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg
}

// DefenseRun couples a label with a completed flood run.
type DefenseRun struct {
	Label string
	Run   *FloodRun
}

// Fig7Result compares defenses under a SYN flood.
type Fig7Result struct {
	Runs []DefenseRun
}

// Fig7 runs the SYN-flood comparison of Fig. 7: no defense, SYN cookies,
// puzzles at (1,8), and puzzles at the Nash difficulty (2,17). Clients run
// patched kernels.
func Fig7(scale FloodScale) (*Fig7Result, error) {
	defenses := []struct {
		label      string
		protection serversim.Protection
		params     puzzle.Params
	}{
		{"nodefense", serversim.ProtectionNone, puzzle.Params{}},
		{"cookies", serversim.ProtectionCookies, puzzle.Params{}},
		{"challenges-m8", serversim.ProtectionPuzzles, puzzle.Params{K: 1, M: 8, L: 32}},
		{"challenges-m17", serversim.ProtectionPuzzles, puzzle.Params{K: 2, M: 17, L: 32}},
	}
	res := &Fig7Result{}
	for _, d := range defenses {
		cfg := scale.apply(FloodConfig{
			Label:        d.label,
			Protection:   d.protection,
			Params:       d.params,
			AttackKind:   attacksim.SYNFlood,
			ClientsSolve: true,
		})
		run, err := RunFlood(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", d.label, err)
		}
		res.Runs = append(res.Runs, DefenseRun{Label: d.label, Run: run})
	}
	return res, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig7Result) Table() Table {
	return floodComparisonTable("Fig 7 — SYN flood: throughput (Mbps)", r.Runs)
}

// Fig8Result compares defenses under a connection flood.
type Fig8Result struct {
	Runs []DefenseRun
}

// Fig8 runs the connection-flood comparison of Fig. 8: no defense, SYN
// cookies, and puzzles at the Nash difficulty. The bots run patched kernels
// (they solve when challenged), matching §6's deployment.
func Fig8(scale FloodScale) (*Fig8Result, error) {
	defenses := []struct {
		label      string
		protection serversim.Protection
		params     puzzle.Params
	}{
		{"nodefense", serversim.ProtectionNone, puzzle.Params{}},
		{"cookies", serversim.ProtectionCookies, puzzle.Params{}},
		{"challenges-m17", serversim.ProtectionPuzzles, puzzle.Params{K: 2, M: 17, L: 32}},
	}
	res := &Fig8Result{}
	for _, d := range defenses {
		cfg := scale.apply(FloodConfig{
			Label:        d.label,
			Protection:   d.protection,
			Params:       d.params,
			AttackKind:   attacksim.ConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
		})
		run, err := RunFlood(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 %s: %w", d.label, err)
		}
		res.Runs = append(res.Runs, DefenseRun{Label: d.label, Run: run})
	}
	return res, nil
}

// Table summarises throughput before/during/after the attack per defense.
func (r *Fig8Result) Table() Table {
	return floodComparisonTable("Fig 8 — connection flood: throughput (Mbps)", r.Runs)
}

// RunFor returns the run with the given label.
func (r *Fig8Result) RunFor(label string) (*FloodRun, bool) {
	for _, d := range r.Runs {
		if d.Label == label {
			return d.Run, true
		}
	}
	return nil, false
}

// RunFor returns the run with the given label.
func (r *Fig7Result) RunFor(label string) (*FloodRun, bool) {
	for _, d := range r.Runs {
		if d.Label == label {
			return d.Run, true
		}
	}
	return nil, false
}

// floodComparisonTable renders client/server throughput in the three
// phases (before/during/after attack) plus a sparkline of the server
// series.
func floodComparisonTable(title string, runs []DefenseRun) Table {
	t := Table{
		Title: title,
		Header: []string{
			"defense", "cli-before", "cli-during", "cli-after",
			"srv-before", "srv-during", "srv-after", "server-series",
		},
	}
	for _, d := range runs {
		run := d.Run
		cli := run.ClientThroughputMbps()
		srv := run.ServerThroughputMbps()
		t.Rows = append(t.Rows, []string{
			d.Label,
			f2(phaseMean(run, cli, phaseBefore)),
			f2(phaseMean(run, cli, phaseDuring)),
			f2(phaseMean(run, cli, phaseAfter)),
			f2(phaseMean(run, srv, phaseBefore)),
			f2(phaseMean(run, srv, phaseDuring)),
			f2(phaseMean(run, srv, phaseAfter)),
			sparkline(downsample(srv, 40)),
		})
	}
	return t
}

type phase int

const (
	phaseBefore phase = iota + 1
	phaseDuring
	phaseAfter
)

// Exported phase selectors for callers outside this package (package sim).
const (
	PhaseBefore = phaseBefore
	PhaseDuring = phaseDuring
	PhaseAfter  = phaseAfter
)

// PhaseMean averages a per-bucket series over one phase of the attack
// timeline.
func (r *FloodRun) PhaseMean(series []float64, ph phase) float64 {
	return phaseMean(r, series, ph)
}

// phaseMean averages a series over one phase of the attack timeline,
// trimming the edges by a few buckets to avoid transition effects.
func phaseMean(run *FloodRun, series []float64, ph phase) float64 {
	bucket := run.Cfg.Bucket
	var lo, hi int
	switch ph {
	case phaseBefore:
		lo, hi = 2, int(run.Cfg.AttackStart/bucket)-1
	case phaseDuring:
		lo, hi = int(run.Cfg.AttackStart/bucket)+5, int(run.Cfg.AttackStop/bucket)-1
	case phaseAfter:
		// Skip the recovery window (half-open expiry ≈ 30 s in the paper);
		// scale it with the phase length for reduced runs.
		phaseLen := int((run.Cfg.Duration - run.Cfg.AttackStop) / bucket)
		lo = int(run.Cfg.AttackStop/bucket) + phaseLen/2
		hi = int(run.Cfg.Duration/bucket) - 1
	}
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
