package experiments

import (
	"fmt"
	"math"

	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/defense"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// ArmsRaceGrid declares the in-run arms race: the adaptive plugins play
// against static opponents and against each other. Clients and bots both
// solve, so raising the difficulty genuinely costs the attacker CPU and
// the replicator has a real trade-off to learn.
func ArmsRaceGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{ClientsSolve: true, BotsSolve: true},
		Axes: []sweep.Axis{sweep.Variants("cell",
			sweep.Point{Label: "adaptive-defense", Set: func(sc *Scenario) {
				sc.Defense = DefenseAdaptivePuzzles
				sc.Attack = AttackConnFlood
			}},
			sweep.Point{Label: "adaptive-attack", Set: func(sc *Scenario) {
				sc.Defense = DefensePuzzles
				sc.Attack = AttackAdaptiveFlood
			}},
			sweep.Point{Label: "adaptive-both", Set: func(sc *Scenario) {
				sc.Defense = DefenseAdaptivePuzzles
				sc.Attack = AttackAdaptiveFlood
			}},
		)},
	}
}

// ArmsRaceResult is the adaptive arms race: per-cell trajectories of the
// defender's deployed difficulty and the attacker's budget shares, plus
// convergence distances to the static-equilibrium predictions.
type ArmsRaceResult struct {
	Results []sweep.Result
	// Runs are the live runs, index-aligned with Results (nil on cache
	// hits — everything Table renders comes from Results).
	Runs []*FloodRun
}

// ArmsRace runs the arms-race grid and reports convergence against the
// static game predictions: the defender's deployed work level at the end
// of the attack window against game.FiniteGame's Stackelberg optimum for
// the true attack rate (defender_gap_bits), and the attacker's final
// budget concentration against the replicator fixed point for a dominant
// arm (attacker_gap).
//
// Smoke cost: the three-cell grid completes in ~0.2 s at -scale tiny and
// ~0.8 s at -scale quick single-threaded, so the driver is cheap enough
// for the CI cache round-trip; no dedicated bench file is warranted.
func ArmsRace(scale Scale) (*ArmsRaceResult, error) {
	results, runs, err := runFloodCells(scale, "armsrace", "",
		ArmsRaceGrid().Expand(&scale), armsraceMetrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: arms race: %w", err)
	}
	return &ArmsRaceResult{Results: results, Runs: runs}, nil
}

// armsraceMetrics extracts the adaptive trajectories from a live run. The
// series schema (see docs/EXPERIMENTS.md): difficulty_m and
// attack_estimate per bucket for adaptive defenders; share_<arm> per
// replicator epoch (averaged across bots) for adaptive attackers.
func armsraceMetrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	metrics := []sweep.Metric{
		{Name: "attacker_established_during", Value: phaseMean(run, run.AttackerEstablishedRate(), phaseDuring)},
		{Name: "client_mbps_during", Value: phaseMean(run, run.ClientThroughputMbps(), phaseDuring)},
	}
	var series []sweep.Series

	// True aggregate attack rate of the cell — what the defender's
	// estimator is chasing and the prediction is computed from.
	trueRate := float64(run.Cfg.BotCount) * run.Cfg.PerBotRate
	if run.Cfg.MacroSources > 0 {
		trueRate = float64(run.Cfg.MacroSources) * run.Cfg.PerBotRate
	}

	if ap, ok := run.Server.Defense().(*defense.AdaptivePuzzles); ok {
		m := run.Server.Metrics().DifficultyM.Sampled(run.Cfg.Bucket, run.Cfg.Duration)
		for i, v := range m {
			if v == 0 {
				m[i] = float64(run.Cfg.Params.M)
			}
		}
		series = append(series, sweep.Series{Name: "difficulty_m", Values: m})

		est := make([]float64, int(run.Cfg.Duration/run.Cfg.Bucket))
		for _, s := range ap.Trace() {
			if i := int(s.At / run.Cfg.Bucket); i >= 0 && i < len(est) {
				est[i] = s.AttackRate
			}
		}
		series = append(series, sweep.Series{Name: "attack_estimate", Values: est})

		if sample, ok := ap.TraceAt(run.Cfg.AttackStop); ok {
			lFinal := sample.Params.ExpectedSolveHashes()
			metrics = append(metrics,
				sweep.Metric{Name: "l_final", Value: lFinal},
				sweep.Metric{Name: "attack_rate_estimate", Value: sample.AttackRate},
			)
			// Emitted only when the prediction computes: the cache stores
			// metrics as JSON, which cannot carry an Inf sentinel.
			if lPred, err := defense.AdaptiveGame(trueRate).OptimalDifficulty(); err == nil {
				metrics = append(metrics,
					sweep.Metric{Name: "l_pred", Value: lPred},
					sweep.Metric{Name: "defender_gap_bits", Value: math.Abs(math.Log2(lFinal / lPred))},
				)
			}
		}
	}

	if run.Botnet != nil {
		var traces [][][]float64
		var names []sweep.Attack
		for _, b := range run.Botnet.Bots {
			if af, ok := b.Strategy().(*attack.AdaptiveFlood); ok {
				traces = append(traces, af.ShareTrace())
				if names == nil {
					names = af.ArmNames()
				}
			}
		}
		if len(traces) > 0 {
			epochs := len(traces[0])
			for _, tr := range traces {
				if len(tr) < epochs {
					epochs = len(tr)
				}
			}
			mean := make([][]float64, len(names))
			for a := range names {
				mean[a] = make([]float64, epochs)
				for e := 0; e < epochs; e++ {
					for _, tr := range traces {
						mean[a][e] += tr[e][a] / float64(len(traces))
					}
				}
				series = append(series, sweep.Series{
					Name: "share_" + string(names[a]), Values: mean[a],
				})
			}
			if epochs > 0 {
				top := 0.0
				for a := range names {
					if v := mean[a][epochs-1]; v > top {
						top = v
					}
				}
				fixedPoint := 1 - float64(len(names)-1)*attack.AdaptiveExplorationFloor
				metrics = append(metrics,
					sweep.Metric{Name: "attacker_top_share", Value: top},
					sweep.Metric{Name: "attacker_gap", Value: math.Abs(fixedPoint - top)},
				)
			}
		}
	}
	return metrics, series
}

// DefenderGapBits returns the named cell's convergence distance in
// difficulty bits (NaN when the cell has no adaptive defender).
func (r *ArmsRaceResult) DefenderGapBits(label string) float64 {
	return r.metric(label, "defender_gap_bits")
}

// AttackerGap returns the named cell's distance from the replicator fixed
// point (NaN when the cell has no adaptive attacker).
func (r *ArmsRaceResult) AttackerGap(label string) float64 {
	return r.metric(label, "attacker_gap")
}

func (r *ArmsRaceResult) metric(label, name string) float64 {
	for _, res := range r.Results {
		if res.Scenario.Label == label {
			if v, ok := res.Lookup(name); ok {
				return v
			}
		}
	}
	return math.NaN()
}

// Table renders the arms race: standard during-attack measurements, the
// convergence distances, and sparkline trajectories (deployed difficulty,
// winning arm's budget share).
func (r *ArmsRaceResult) Table() Table {
	t := Table{
		Title:  "Adaptive arms race — in-run convergence to the game equilibria",
		Header: []string{"cell", "att-cps", "cli-Mbps", "def-gap-bits", "atk-gap", "m-trace", "top-share-trace"},
	}
	for _, res := range r.Results {
		mTrace, shareTrace := "", ""
		if m := res.SeriesValues("difficulty_m"); m != nil {
			mTrace = sparkline(downsample(m, 30))
		}
		var topShare []float64
		for _, s := range res.Series {
			if len(s.Name) > 6 && s.Name[:6] == "share_" {
				if topShare == nil {
					topShare = make([]float64, len(s.Values))
				}
				for i, v := range s.Values {
					if i < len(topShare) && v > topShare[i] {
						topShare[i] = v
					}
				}
			}
		}
		if topShare != nil {
			shareTrace = sparkline(downsample(topShare, 30))
		}
		t.Rows = append(t.Rows, []string{
			res.Scenario.Label,
			f2(res.Metric("attacker_established_during")),
			f2(res.Metric("client_mbps_during")),
			optMetric(res, "defender_gap_bits"),
			optMetric(res, "attacker_gap"),
			mTrace,
			shareTrace,
		})
	}
	return t
}

// optMetric renders a metric that only adaptive cells carry.
func optMetric(res sweep.Result, name string) string {
	if v, ok := res.Lookup(name); ok {
		return f2(v)
	}
	return "-"
}
