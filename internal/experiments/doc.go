// Package experiments reproduces the paper's evaluation (§6): one driver
// per figure and table, built on the simulated DETER-like testbed.
//
// Each driver declares its scenario grid as a sweep.Grid literal —
// difficulty axes (k, m), defense variants, botnet shapes, adoption mixes
// — and executes the expanded cells through one shared, cache-aware
// executor (runCells). Cells fan out across the work-stealing runner
// (sim/runner); each completed cell becomes a structured sweep.Result
// (canonical scenario + named metrics and series) that streams to any
// configured sinks (CSV, NDJSON, pretty tables) in grid order as runs
// land, and is stored in the scenario-hash result cache so regenerating a
// figure skips already-computed cells. Driver result structs and their
// Table() views are derived from the Results, which is why a fully cached
// regeneration performs zero simulation work yet renders identically.
//
// See docs/EXPERIMENTS.md for the paper-to-code map: every figure/table,
// its driver, its grid axes, and the metrics in its Result records.
package experiments
