package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// SweepPoint is one sample of Experiment 4: the botnet's attempted rate
// against the rate it actually lands on the server.
type SweepPoint struct {
	// Label identifies the sweep coordinate (per-node rate or botnet size).
	Label string
	// MeasuredAttackRate is the botnet's SYN rate after CPU limiting (pps).
	MeasuredAttackRate float64
	// CompletionRate is the effective attack rate at the server (cps).
	CompletionRate float64
}

// Fig13Result sweeps per-node attack rate at fixed botnet size.
type Fig13Result struct {
	Points []SweepPoint
}

// Fig13 fixes a 5-bot botnet and sweeps the per-node rate, reproducing the
// finding that rate increases do not raise the effective attack rate. All
// sweep points run in parallel on the shared runner.
func Fig13(scale Scale, rates []float64) (*Fig13Result, error) {
	if len(rates) == 0 {
		rates = []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	grid := make([]Scenario, len(rates))
	for i, rate := range rates {
		grid[i] = botnetSweepScenario(scale, 5, rate, fmt.Sprintf("%.0f pps/node", rate))
	}
	points, err := runSweep(scale.Parallelism, grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig13: %w", err)
	}
	return &Fig13Result{Points: points}, nil
}

// Table renders the rate sweep.
func (r *Fig13Result) Table() Table {
	return sweepTable("Fig 13 — rate sweep (5 bots)", r.Points)
}

// Fig14Result sweeps botnet size at fixed cumulative rate.
type Fig14Result struct {
	Points []SweepPoint
}

// Fig14 fixes the cumulative attack rate at 5000 pps and sweeps the botnet
// size, reproducing the finding that only more machines raise the effective
// rate — and only marginally (≈1/100 of the measured rate). All sweep
// points run in parallel on the shared runner.
func Fig14(scale Scale, sizes []int, totalRate float64) (*Fig14Result, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 6, 8, 10, 12, 14}
	}
	if totalRate == 0 {
		totalRate = 5000
	}
	grid := make([]Scenario, len(sizes))
	for i, size := range sizes {
		grid[i] = botnetSweepScenario(scale, size, totalRate/float64(size),
			fmt.Sprintf("%d bots", size))
	}
	points, err := runSweep(scale.Parallelism, grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig14: %w", err)
	}
	return &Fig14Result{Points: points}, nil
}

// Table renders the size sweep.
func (r *Fig14Result) Table() Table {
	return sweepTable("Fig 14 — botnet size sweep (5000 pps total)", r.Points)
}

// botnetSweepScenario declares one connection flood with solving bots at
// the Nash difficulty and the given botnet shape.
func botnetSweepScenario(scale Scale, bots int, perBotRate float64, label string) Scenario {
	sc := scale.Apply(Scenario{
		Label:        label,
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 17, L: 32},
		Attack:       AttackConnFlood,
		ClientsSolve: true,
		BotsSolve:    true,
		// Strongest attacker: solutions kept fresh, so the completion
		// rate reflects the per-bot CPU bound rather than staleness.
		BotMaxSolveBacklog: 2 * time.Second,
	})
	// The sweep coordinate overrides the scale's botnet shape.
	sc.BotCount = bots
	sc.PerBotRate = perBotRate
	return sc
}

// runSweep executes the sweep grid and measures attempted vs completed
// rates during the attack window.
func runSweep(workers int, grid []Scenario) ([]SweepPoint, error) {
	runs, err := RunScenarios(workers, grid)
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(runs))
	for i, run := range runs {
		points[i] = SweepPoint{
			Label:              grid[i].Label,
			MeasuredAttackRate: run.AttackWindowMean(run.MeasuredAttackRate()),
			CompletionRate:     run.AttackWindowMean(run.AttackerEstablishedRate()),
		}
	}
	return points, nil
}

func sweepTable(title string, points []SweepPoint) Table {
	t := Table{
		Title:  title,
		Header: []string{"sweep", "measured-rate(pps)", "completion-rate(cps)"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{p.Label, f1(p.MeasuredAttackRate), f2(p.CompletionRate)})
	}
	return t
}
