package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// SweepPoint is one sample of Experiment 4: the botnet's attempted rate
// against the rate it actually lands on the server.
type SweepPoint struct {
	// Label identifies the sweep coordinate (per-node rate or botnet size).
	Label string
	// MeasuredAttackRate is the botnet's SYN rate after CPU limiting (pps).
	MeasuredAttackRate float64
	// CompletionRate is the effective attack rate at the server (cps).
	CompletionRate float64
}

// botnetSweepBase is the shared cell of Figs. 13–14: a connection flood
// of smart solving bots at the Nash difficulty; the axes vary the botnet
// shape on top.
func botnetSweepBase() Scenario {
	return Scenario{
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 17, L: 32},
		Attack:       AttackConnFlood,
		ClientsSolve: true,
		BotsSolve:    true,
		// Strongest attacker: solutions kept fresh, so the completion
		// rate reflects the per-bot CPU bound rather than staleness.
		BotMaxSolveBacklog: 2 * time.Second,
	}
}

// Fig13Grid declares the rate sweep: a fixed 5-bot botnet whose per-node
// rate varies.
func Fig13Grid(rates []float64) sweep.Grid {
	if len(rates) == 0 {
		rates = []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	points := make([]sweep.Point, len(rates))
	for i, rate := range rates {
		rate := rate
		points[i] = sweep.Point{
			Label: fmt.Sprintf("%.0f pps/node", rate),
			Set: func(sc *Scenario) {
				sc.BotCount = 5
				sc.PerBotRate = rate
			},
		}
	}
	return sweep.Grid{Base: botnetSweepBase(), Axes: []sweep.Axis{sweep.Variants("rate", points...)}}
}

// Fig13Result sweeps per-node attack rate at fixed botnet size.
type Fig13Result struct {
	Results []sweep.Result
	Points  []SweepPoint
}

// Fig13 fixes a 5-bot botnet and sweeps the per-node rate, reproducing the
// finding that rate increases do not raise the effective attack rate. All
// sweep points run in parallel on the shared runner.
func Fig13(scale Scale, rates []float64) (*Fig13Result, error) {
	results, err := runBotnetSweep(scale, "fig13", Fig13Grid(rates))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig13: %w", err)
	}
	return &Fig13Result{Results: results, Points: sweepPoints(results)}, nil
}

// Table renders the rate sweep.
func (r *Fig13Result) Table() Table {
	return sweepTable("Fig 13 — rate sweep (5 bots)", r.Points)
}

// Fig14Grid declares the size sweep: the cumulative attack rate stays
// fixed while the number of machines carrying it varies.
func Fig14Grid(sizes []int, totalRate float64) sweep.Grid {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 6, 8, 10, 12, 14}
	}
	if totalRate == 0 {
		totalRate = 5000
	}
	points := make([]sweep.Point, len(sizes))
	for i, size := range sizes {
		size := size
		points[i] = sweep.Point{
			Label: fmt.Sprintf("%d bots", size),
			Set: func(sc *Scenario) {
				sc.BotCount = size
				sc.PerBotRate = totalRate / float64(size)
			},
		}
	}
	return sweep.Grid{Base: botnetSweepBase(), Axes: []sweep.Axis{sweep.Variants("bots", points...)}}
}

// Fig14Result sweeps botnet size at fixed cumulative rate.
type Fig14Result struct {
	Results []sweep.Result
	Points  []SweepPoint
}

// Fig14 fixes the cumulative attack rate at 5000 pps and sweeps the botnet
// size, reproducing the finding that only more machines raise the effective
// rate — and only marginally (≈1/100 of the measured rate). All sweep
// points run in parallel on the shared runner.
func Fig14(scale Scale, sizes []int, totalRate float64) (*Fig14Result, error) {
	results, err := runBotnetSweep(scale, "fig14", Fig14Grid(sizes, totalRate))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig14: %w", err)
	}
	return &Fig14Result{Results: results, Points: sweepPoints(results)}, nil
}

// Table renders the size sweep.
func (r *Fig14Result) Table() Table {
	return sweepTable("Fig 14 — botnet size sweep (5000 pps total)", r.Points)
}

// runBotnetSweep executes a botnet-shape grid and measures attempted vs
// completed rates during the attack window.
func runBotnetSweep(scale Scale, experiment string, grid sweep.Grid) ([]sweep.Result, error) {
	results, _, err := runFloodCells(scale, experiment, "", grid.Expand(&scale),
		func(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
			return []sweep.Metric{
				{Name: "measured_rate_pps", Value: run.AttackWindowMean(run.MeasuredAttackRate())},
				{Name: "completion_rate_cps", Value: run.AttackWindowMean(run.AttackerEstablishedRate())},
			}, nil
		})
	return results, err
}

func sweepPoints(results []sweep.Result) []SweepPoint {
	points := make([]SweepPoint, len(results))
	for i, res := range results {
		points[i] = SweepPoint{
			Label:              res.Scenario.Label,
			MeasuredAttackRate: res.Metric("measured_rate_pps"),
			CompletionRate:     res.Metric("completion_rate_cps"),
		}
	}
	return points
}

func sweepTable(title string, points []SweepPoint) Table {
	t := Table{
		Title:  title,
		Header: []string{"sweep", "measured-rate(pps)", "completion-rate(cps)"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{p.Label, f1(p.MeasuredAttackRate), f2(p.CompletionRate)})
	}
	return t
}
