package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
)

// Table1Row is one embedded device of the paper's Table 1, extended with
// the implied Nash-difficulty solve time and attack rate — the analysis of
// Experiment 6 (IoT devices can connect but cannot flood).
type Table1Row struct {
	Device          cpumodel.Device
	HashRate        float64
	HashesIn400ms   float64
	NashSolveTime   time.Duration
	MaxFloodRateCPS float64
}

// Table1Result is the embedded-device study.
type Table1Result struct {
	Rows []Table1Row
	// NashParams is the difficulty used for the derived columns.
	NashParams puzzle.Params
}

// Table1 profiles the Raspberry Pi fleet and derives each device's maximum
// solved-connection rate at the Nash difficulty, one runner job per
// device. workers bounds the pool (0 = GOMAXPROCS).
func Table1(workers int) (*Table1Result, error) {
	params := puzzle.Params{K: 2, M: 17, L: 32}
	devices := cpumodel.IoTDevices()
	solveHashes := params.ExpectedSolveHashes()
	rows, err := runner.Map(workers, len(devices), func(i int) (Table1Row, error) {
		dev := devices[i]
		return Table1Row{
			Device:          dev,
			HashRate:        dev.HashRate,
			HashesIn400ms:   dev.HashesIn(400 * time.Millisecond),
			NashSolveTime:   dev.TimeFor(solveHashes),
			MaxFloodRateCPS: dev.HashRate / solveHashes,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{NashParams: params, Rows: rows}, nil
}

// Table renders the device study.
func (r *Table1Result) Table() Table {
	t := Table{
		Title:  "Table 1 — embedded device profiles (+ derived flood capability)",
		Header: []string{"device", "hashes/s", "hashes-in-400ms", "nash-solve-time", "max-flood-cps"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Device.Name,
			f1(row.HashRate),
			f1(row.HashesIn400ms),
			row.NashSolveTime.Round(time.Millisecond).String(),
			f2(row.MaxFloodRateCPS),
		})
	}
	return t
}
