package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Table1Grid declares one cell per embedded device of the paper's
// Table 1.
func Table1Grid() sweep.Grid {
	devices := cpumodel.IoTDevices()
	points := make([]sweep.Point, len(devices))
	for i, dev := range devices {
		points[i] = sweep.Point{Label: dev.Name}
	}
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("device", points...)}}
}

// Table1Row is one embedded device of the paper's Table 1, extended with
// the implied Nash-difficulty solve time and attack rate — the analysis of
// Experiment 6 (IoT devices can connect but cannot flood).
type Table1Row struct {
	Device          cpumodel.Device
	HashRate        float64
	HashesIn400ms   float64
	NashSolveTime   time.Duration
	MaxFloodRateCPS float64
}

// Table1Result is the embedded-device study.
type Table1Result struct {
	Results []sweep.Result
	Rows    []Table1Row
	// NashParams is the difficulty used for the derived columns.
	NashParams puzzle.Params
}

// Table1 profiles the Raspberry Pi fleet and derives each device's maximum
// solved-connection rate at the Nash difficulty, one runner job per
// device. The scale supplies execution options only.
func Table1(scale Scale) (*Table1Result, error) {
	params := puzzle.Params{K: 2, M: 17, L: 32}
	devices := cpumodel.IoTDevices()
	solveHashes := params.ExpectedSolveHashes()
	results, err := runCells(scale, "tab1", "", Table1Grid().Expand(nil),
		func(i int, _ Scenario) ([]sweep.Metric, []sweep.Series, error) {
			dev := devices[i]
			return []sweep.Metric{
				{Name: "hash_rate", Value: dev.HashRate},
				{Name: "hashes_in_400ms", Value: dev.HashesIn(400 * time.Millisecond)},
				{Name: "nash_solve_time_ms", Value: float64(dev.TimeFor(solveHashes)) / float64(time.Millisecond)},
				{Name: "max_flood_cps", Value: dev.HashRate / solveHashes},
			}, nil, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Results: results, NashParams: params}
	for i, r := range results {
		res.Rows = append(res.Rows, Table1Row{
			Device:          devices[i],
			HashRate:        r.Metric("hash_rate"),
			HashesIn400ms:   r.Metric("hashes_in_400ms"),
			NashSolveTime:   time.Duration(r.Metric("nash_solve_time_ms") * float64(time.Millisecond)),
			MaxFloodRateCPS: r.Metric("max_flood_cps"),
		})
	}
	return res, nil
}

// Table renders the device study.
func (r *Table1Result) Table() Table {
	t := Table{
		Title:  "Table 1 — embedded device profiles (+ derived flood capability)",
		Header: []string{"device", "hashes/s", "hashes-in-400ms", "nash-solve-time", "max-flood-cps"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Device.Name,
			f1(row.HashRate),
			f1(row.HashesIn400ms),
			row.NashSolveTime.Round(time.Millisecond).String(),
			f2(row.MaxFloodRateCPS),
		})
	}
	return t
}
