package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// AblationAdaptiveResult contrasts a fixed difficulty against the §7
// closed-loop controller when the attack is stronger than the difficulty
// was provisioned for.
type AblationAdaptiveResult struct {
	Fixed    *FloodRun
	Adaptive *FloodRun
	// MTrace is the adaptive run's difficulty over time (per bucket).
	MTrace []float64
}

// AblationAdaptive starts both servers at an under-provisioned difficulty
// (m = 12, which §6.3 shows is too easy to throttle attackers) and sends a
// connection flood of smart solving bots that keep their solutions fresh.
// The adaptive server must climb towards an effective difficulty and decay
// back after the attack.
func AblationAdaptive(scale Scale) (*AblationAdaptiveResult, error) {
	base := Scenario{
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 12, L: 32},
		Attack:       AttackConnFlood,
		ClientsSolve: true,
		BotsSolve:    true,
		// Smart bots bound their backlog so solutions stay fresh — the
		// attacker model under which an under-provisioned fixed
		// difficulty actually loses (see Fig. 12).
		BotMaxSolveBacklog: 2 * time.Second,
	}
	fixed := base
	fixed.Label = "fixed-m12"
	adaptive := base
	adaptive.Label = "adaptive"
	adaptive.AdaptiveDifficulty = true
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(fixed, adaptive))
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive ablation: %w", err)
	}
	fixedRun, adaptiveRun := runs[0], runs[1]
	res := &AblationAdaptiveResult{Fixed: fixedRun, Adaptive: adaptiveRun}
	res.MTrace = adaptiveRun.Server.Metrics().DifficultyM.Sampled(
		adaptiveRun.Cfg.Bucket, adaptiveRun.Cfg.Duration)
	// Before the first adjustment the gauge reads zero; backfill with the
	// baseline for a readable trace.
	for i, v := range res.MTrace {
		if v == 0 {
			res.MTrace[i] = float64(adaptive.Params.M)
		}
	}
	return res, nil
}

// PeakM returns the highest difficulty the controller reached.
func (r *AblationAdaptiveResult) PeakM() float64 {
	var peak float64
	for _, v := range r.MTrace {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// FinalM returns the difficulty at the end of the run.
func (r *AblationAdaptiveResult) FinalM() float64 {
	if len(r.MTrace) == 0 {
		return 0
	}
	return r.MTrace[len(r.MTrace)-1]
}

// Table renders the comparison.
func (r *AblationAdaptiveResult) Table() Table {
	t := Table{
		Title:  "Ablation — adaptive difficulty (closed loop, §7)",
		Header: []string{"server", "att-cps-during", "cli-Mbps-during", "m-trace"},
	}
	for _, d := range []struct {
		label string
		run   *FloodRun
	}{{"fixed-m12", r.Fixed}, {"adaptive", r.Adaptive}} {
		trace := ""
		if d.label == "adaptive" {
			trace = sparkline(downsample(r.MTrace, 40))
		}
		t.Rows = append(t.Rows, []string{
			d.label,
			f2(phaseMean(d.run, d.run.AttackerEstablishedRate(), phaseDuring)),
			f2(phaseMean(d.run, d.run.ClientThroughputMbps(), phaseDuring)),
			trace,
		})
	}
	t.Rows = append(t.Rows, []string{"peak m", f1(r.PeakM()), "final m", f1(r.FinalM())})
	return t
}
