package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// AblationAdaptiveGrid declares the closed-loop controller ablation: both
// servers start at an under-provisioned difficulty (m = 12, which §6.3
// shows is too easy to throttle attackers) against smart solving bots;
// one server holds the difficulty fixed, the other adapts.
func AblationAdaptiveGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{
			Defense:      DefensePuzzles,
			Params:       puzzle.Params{K: 2, M: 12, L: 32},
			Attack:       AttackConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
			// Smart bots bound their backlog so solutions stay fresh — the
			// attacker model under which an under-provisioned fixed
			// difficulty actually loses (see Fig. 12).
			BotMaxSolveBacklog: 2 * time.Second,
		},
		Axes: []sweep.Axis{sweep.Variants("server",
			sweep.Point{Label: "fixed-m12"},
			sweep.Point{Label: "adaptive", Set: func(sc *Scenario) { sc.AdaptiveDifficulty = true }},
		)},
	}
}

// AblationAdaptiveResult contrasts a fixed difficulty against the §7
// closed-loop controller when the attack is stronger than the difficulty
// was provisioned for.
type AblationAdaptiveResult struct {
	Results []sweep.Result
	// Fixed and Adaptive are the live runs (nil on cache hits).
	Fixed    *FloodRun
	Adaptive *FloodRun
	// MTrace is the adaptive run's difficulty over time (per bucket).
	MTrace []float64
}

// AblationAdaptive runs both arms of the grid; the adaptive server must
// climb towards an effective difficulty and decay back after the attack.
func AblationAdaptive(scale Scale) (*AblationAdaptiveResult, error) {
	results, runs, err := runFloodCells(scale, "ablation-adaptive", "",
		AblationAdaptiveGrid().Expand(&scale), adaptiveMetrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive ablation: %w", err)
	}
	return &AblationAdaptiveResult{
		Results: results, Fixed: runs[0], Adaptive: runs[1],
		MTrace: results[1].SeriesValues("difficulty_m"),
	}, nil
}

func adaptiveMetrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	metrics := []sweep.Metric{
		{Name: "attacker_established_during", Value: phaseMean(run, run.AttackerEstablishedRate(), phaseDuring)},
		{Name: "client_mbps_during", Value: phaseMean(run, run.ClientThroughputMbps(), phaseDuring)},
	}
	var series []sweep.Series
	if run.Cfg.AdaptiveDifficulty {
		trace := run.Server.Metrics().DifficultyM.Sampled(run.Cfg.Bucket, run.Cfg.Duration)
		// Before the first adjustment the gauge reads zero; backfill with
		// the baseline for a readable trace.
		for i, v := range trace {
			if v == 0 {
				trace[i] = float64(run.Cfg.Params.M)
			}
		}
		var peak, final float64
		for _, v := range trace {
			if v > peak {
				peak = v
			}
		}
		if len(trace) > 0 {
			final = trace[len(trace)-1]
		}
		metrics = append(metrics,
			sweep.Metric{Name: "peak_m", Value: peak},
			sweep.Metric{Name: "final_m", Value: final},
		)
		series = append(series, sweep.Series{Name: "difficulty_m", Values: trace})
	}
	return metrics, series
}

// PeakM returns the highest difficulty the controller reached.
func (r *AblationAdaptiveResult) PeakM() float64 {
	return r.Results[1].Metric("peak_m")
}

// FinalM returns the difficulty at the end of the run.
func (r *AblationAdaptiveResult) FinalM() float64 {
	return r.Results[1].Metric("final_m")
}

// Table renders the comparison.
func (r *AblationAdaptiveResult) Table() Table {
	t := Table{
		Title:  "Ablation — adaptive difficulty (closed loop, §7)",
		Header: []string{"server", "att-cps-during", "cli-Mbps-during", "m-trace"},
	}
	for _, res := range r.Results {
		trace := ""
		if m := res.SeriesValues("difficulty_m"); m != nil {
			trace = sparkline(downsample(m, 40))
		}
		t.Rows = append(t.Rows, []string{
			res.Scenario.Label,
			f2(res.Metric("attacker_established_during")),
			f2(res.Metric("client_mbps_during")),
			trace,
		})
	}
	t.Rows = append(t.Rows, []string{"peak m", f1(r.PeakM()), "final m", f1(r.FinalM())})
	return t
}
