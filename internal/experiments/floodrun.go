package experiments

import (
	"fmt"
	"runtime"

	"github.com/tcppuzzles/tcppuzzles/internal/attacksim"
	"github.com/tcppuzzles/tcppuzzles/internal/clientsim"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
)

// FloodRun is a completed flood scenario with its measurement state.
type FloodRun struct {
	Cfg     Scenario
	Eng     *netsim.Engine
	Net     *netsim.Network
	Server  *serversim.Server
	Clients []*clientsim.Client
	Botnet  *attacksim.Botnet
	// Macro is the macro-aggregated source population when the scenario
	// set MacroSources; exactly one of Botnet/Macro is non-nil for an
	// attacking scenario.
	Macro *attacksim.MacroFleet
}

// shardCount resolves a Scenario.Shards value: 0 and 1 run the classic
// single event heap, AutoShards (any negative) uses one shard per core.
func shardCount(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// RunFlood builds and executes one flood scenario to completion. The run
// is fully self-contained — engine, network and every RNG are derived
// from the scenario's seed — so independent scenarios may execute
// concurrently (see RunScenarios) with bit-for-bit identical results.
//
// When sc.Shards selects more than one shard, the deployment's nodes are
// partitioned by source address across that many event-engine shards and
// the simulation executes them concurrently in conservative lock-step
// time windows (see netsim.Network.Run). The server is pinned to shard 0;
// clients and bots spread over the rest, each scheduling against its own
// shard's engine with the same per-node seed derivation as the serial
// engine — which is why metrics are byte-identical at every shard count.
func RunFlood(sc Scenario) (*FloodRun, error) {
	sc = sc.Defaults()
	serverAddr := netsim.Addr{10, 0, 0, 1}
	network := netsim.NewSharded(shardCount(sc.Shards))
	if sc.Speculative {
		network.SetSpeculative(true)
	}
	if err := network.Pin(serverAddr, 0); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	eng := network.EngineFor(serverAddr)

	srv, err := serversim.New(eng, network, netsim.DefaultServerLink(), serversim.Config{
		Addr:               serverAddr,
		Defense:            sc.Defense,
		PuzzleParams:       sc.Params,
		AlwaysChallenge:    sc.AlwaysChallenge,
		AdaptiveDifficulty: sc.AdaptiveDifficulty,
		SimulatedCrypto:    true,
		Workers:            sc.Workers,
		Backlog:            sc.Backlog,
		AcceptBacklog:      sc.AcceptBacklog,
		Seed:               sc.Seed,
		MetricBucket:       sc.Bucket,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: server: %w", err)
	}

	run := &FloodRun{Cfg: sc, Eng: eng, Net: network, Server: srv}
	devices := cpumodel.ClientCPUs()
	for i := 0; i < sc.NumClients; i++ {
		addr := netsim.Addr{10, 1, byte(i / 250), byte(1 + i%250)}
		client, err := clientsim.New(network.EngineFor(addr), network, netsim.DefaultHostLink(), clientsim.Config{
			Addr:            addr,
			ServerAddr:      srv.Addr(),
			Rate:            sc.ClientRate,
			StopAt:          sc.Duration,
			RequestBytes:    sc.RequestBytes,
			Solves:          sc.ClientsSolve,
			SimulatedCrypto: true,
			Device:          devices[i%len(devices)],
			Seed:            sc.Seed + int64(i)*17,
			MetricBucket:    sc.Bucket,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: client %d: %w", i, err)
		}
		run.Clients = append(run.Clients, client)
	}

	switch {
	case sc.MacroSources > 0 && sc.PerBotRate > 0:
		fleet, err := attacksim.NewMacroFleet(network, attacksim.MacroConfig{
			Sources:         sc.MacroSources,
			BaseAddr:        [4]byte{10, 2, 0, 1},
			ServerAddr:      srv.Addr(),
			Attack:          sc.Attack,
			PerSourceRate:   sc.PerBotRate,
			Solves:          sc.BotsSolve,
			SimulatedCrypto: true,
			MaxSolveBacklog: sc.BotMaxSolveBacklog,
			StartAt:         sc.AttackStart,
			StopAt:          sc.AttackStop,
			Seed:            sc.Seed + 1000,
			MetricBucket:    sc.Bucket,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: macro fleet: %w", err)
		}
		run.Macro = fleet
		// The fleet drives its sources through engine events but is not an
		// attached Node; register it so speculative rollbacks rewind its
		// batch/RNG/handshake state together with the store's shard.
		network.RegisterAuxState(fleet.Store().Base(), fleet)
		// Server-side attacker accounting stays O(1) in population size:
		// establishments from the population fold into one series.
		srv.Metrics().AggregateSrcs(fleet.Contains)
	case sc.BotCount > 0 && sc.PerBotRate > 0:
		botnet, err := attacksim.NewBotnet(network, attacksim.BotnetConfig{
			Size:            sc.BotCount,
			BaseAddr:        [4]byte{10, 2, 0, 1},
			ServerAddr:      srv.Addr(),
			Attack:          sc.Attack,
			PerBotRate:      sc.PerBotRate,
			Solves:          sc.BotsSolve,
			SimulatedCrypto: true,
			MaxSolveBacklog: sc.BotMaxSolveBacklog,
			StartAt:         sc.AttackStart,
			StopAt:          sc.AttackStop,
			Seed:            sc.Seed + 1000,
			MetricBucket:    sc.Bucket,
			CompactRNG:      sc.CompactBotRNG,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: botnet: %w", err)
		}
		run.Botnet = botnet
	}

	network.Run(sc.Duration)
	return run, nil
}

// RunScenarios fans a grid of independent scenarios out across the
// work-stealing runner and returns the completed runs in grid order.
// workers <= 0 selects GOMAXPROCS. Because each run's randomness derives
// only from its own seed, the results are identical at every worker
// count; parallelism divides wall-clock time only.
func RunScenarios(workers int, scs []Scenario) ([]*FloodRun, error) {
	return runner.Map(workers, len(scs), func(i int) (*FloodRun, error) {
		run, err := RunFlood(scs[i])
		if err != nil && scs[i].Label != "" {
			// Name the failing grid cell; a bare job index doesn't
			// identify which (k, m)/defense/rate was at fault.
			return nil, fmt.Errorf("scenario %q: %w", scs[i].Label, err)
		}
		return run, err
	})
}

// ClientThroughputMbps returns the mean per-client goodput in Mbps per
// bucket.
func (r *FloodRun) ClientThroughputMbps() []float64 {
	var out []float64
	for _, c := range r.Clients {
		series := c.Metrics().BytesIn.Mbps(r.Cfg.Duration)
		if out == nil {
			out = make([]float64, len(series))
		}
		for i, v := range series {
			out[i] += v / float64(len(r.Clients))
		}
	}
	return out
}

// ServerThroughputMbps returns the server's outgoing throughput in Mbps per
// bucket.
func (r *FloodRun) ServerThroughputMbps() []float64 {
	return r.Server.Metrics().BytesOut.Mbps(r.Cfg.Duration)
}

// ServerCPU returns per-bucket server CPU utilisation (%).
func (r *FloodRun) ServerCPU() []float64 {
	return r.Server.CPU().Utilisation(r.Cfg.Duration)
}

// ClientCPU returns the mean per-bucket client CPU utilisation (%).
func (r *FloodRun) ClientCPU() []float64 {
	var out []float64
	for _, c := range r.Clients {
		u := c.CPU().Utilisation(r.Cfg.Duration)
		if out == nil {
			out = make([]float64, len(u))
		}
		for i, v := range u {
			out[i] += v / float64(len(r.Clients))
		}
	}
	return out
}

// AttackerCPU returns the mean per-bucket botnet CPU utilisation (%).
func (r *FloodRun) AttackerCPU() []float64 {
	if r.Macro != nil {
		return r.Macro.MeanCPUUtilisation(r.Cfg.Duration)
	}
	if r.Botnet == nil {
		return nil
	}
	return r.Botnet.MeanCPUUtilisation(r.Cfg.Duration)
}

// QueueSizes returns per-second listen and accept queue occupancy.
func (r *FloodRun) QueueSizes() (listen, accept []float64) {
	m := r.Server.Metrics()
	return m.ListenLen.Sampled(r.Cfg.Bucket, r.Cfg.Duration),
		m.AcceptLen.Sampled(r.Cfg.Bucket, r.Cfg.Duration)
}

// AttackerEstablishedRate returns the botnet's completed connections per
// second as seen by the server (the effective attack rate).
func (r *FloodRun) AttackerEstablishedRate() []float64 {
	if r.Macro != nil {
		return r.Server.Metrics().AggregateEstablishedRate(r.Cfg.Duration)
	}
	if r.Botnet == nil {
		return nil
	}
	return r.Server.Metrics().EstablishedRateFor(r.Botnet.Srcs(), r.Cfg.Duration)
}

// MeasuredAttackRate returns the botnet's sent packets per second (after
// CPU limiting).
func (r *FloodRun) MeasuredAttackRate() []float64 {
	if r.Macro != nil {
		return r.Macro.SentRate(r.Cfg.Duration)
	}
	if r.Botnet == nil {
		return nil
	}
	return r.Botnet.SentRate(r.Cfg.Duration)
}

// AttackWindowMean averages a per-bucket series over the attack interval.
func (r *FloodRun) AttackWindowMean(series []float64) float64 {
	lo := int(r.Cfg.AttackStart / r.Cfg.Bucket)
	hi := int(r.Cfg.AttackStop / r.Cfg.Bucket)
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// ClientThroughputSamplesDuringAttack returns every per-client per-bucket
// throughput sample (Mbps) inside the attack window — the population behind
// the Fig. 12 box plots.
func (r *FloodRun) ClientThroughputSamplesDuringAttack() []float64 {
	lo := int(r.Cfg.AttackStart / r.Cfg.Bucket)
	hi := int(r.Cfg.AttackStop / r.Cfg.Bucket)
	var out []float64
	for _, c := range r.Clients {
		series := c.Metrics().BytesIn.Mbps(r.Cfg.Duration)
		if hi > len(series) {
			hi = len(series)
		}
		out = append(out, series[lo:hi]...)
	}
	return out
}
