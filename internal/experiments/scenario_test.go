package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

func TestDefaultsFillOnlyUnsetFields(t *testing.T) {
	sc := Scenario{}.Defaults()
	if sc.Duration != 600*time.Second || sc.NumClients != 15 || sc.ClientRate != 20 {
		t.Errorf("zero scenario defaults wrong: %+v", sc)
	}
	if sc.Defense != DefensePuzzles || sc.Attack != AttackConnFlood {
		t.Errorf("default enums wrong: %q %q", sc.Defense, sc.Attack)
	}
	if sc.BotCount != 10 || sc.PerBotRate != 500 || sc.Seed != 1 {
		t.Errorf("default botnet wrong: %+v", sc)
	}
}

// Regression for the old fill() footgun: explicitly selected variants must
// never be overwritten by defaulting, including the "none"/"off" choices.
func TestDefaultsPreserveExplicitChoices(t *testing.T) {
	sc := Scenario{
		Defense:  DefenseNone,
		Attack:   AttackSYNFlood,
		BotCount: NoBotnet,
		Workers:  -1,
		Params:   puzzle.Params{K: 1, M: 4, L: 32},
	}.Defaults()
	if sc.Defense != DefenseNone {
		t.Errorf("DefenseNone overwritten to %q", sc.Defense)
	}
	if sc.Attack != AttackSYNFlood {
		t.Errorf("AttackSYNFlood overwritten to %q", sc.Attack)
	}
	if sc.BotCount != NoBotnet {
		t.Errorf("NoBotnet overwritten to %d", sc.BotCount)
	}
	if sc.Workers != -1 {
		t.Errorf("Workers sentinel overwritten to %d", sc.Workers)
	}
	if sc.Params.M != 4 {
		t.Errorf("explicit params overwritten to %v", sc.Params)
	}
}

// Apply must not resurrect what the scenario explicitly switched off.
func TestScaleApplyPreservesSentinels(t *testing.T) {
	sc := tinyScale().Apply(Scenario{BotCount: NoBotnet, Workers: -1})
	if sc.BotCount != NoBotnet {
		t.Errorf("Apply overwrote NoBotnet with %d", sc.BotCount)
	}
	if sc.Workers != -1 {
		t.Errorf("Apply overwrote Workers sentinel with %d", sc.Workers)
	}
	// ...and Defaults must not either.
	sc = sc.Defaults()
	if sc.BotCount != NoBotnet || sc.Workers != -1 {
		t.Errorf("Defaults after Apply lost sentinels: %+v", sc)
	}
	// Ordinary scenarios still take the scale's botnet shape.
	sc = tinyScale().Apply(Scenario{})
	if sc.BotCount != tinyScale().BotCount || sc.Workers != tinyScale().Workers {
		t.Errorf("Apply did not apply scale: %+v", sc)
	}
}

func TestRunFloodWithoutBotnet(t *testing.T) {
	sc := tinyScale().Apply(Scenario{ClientsSolve: true, BotCount: NoBotnet})
	run, err := RunFlood(sc)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	if run.Botnet != nil {
		t.Error("NoBotnet scenario still built a botnet")
	}
	if run.AttackerCPU() != nil || run.MeasuredAttackRate() != nil {
		t.Error("attacker series should be nil without a botnet")
	}
	cli := run.ClientThroughputMbps()
	if phaseMean(run, cli, phaseDuring) <= 0 {
		t.Error("clients idle despite no attack")
	}
}

func TestRunFloodRejectsUnknownEnums(t *testing.T) {
	sc := tinyScale().Apply(Scenario{})
	sc.Defense = "voodoo"
	if _, err := RunFlood(sc); err == nil || !strings.Contains(err.Error(), "voodoo") {
		t.Errorf("unknown defense accepted: %v", err)
	}
	sc = tinyScale().Apply(Scenario{})
	sc.Attack = "tsunami"
	if _, err := RunFlood(sc); err == nil || !strings.Contains(err.Error(), "tsunami") {
		t.Errorf("unknown attack accepted: %v", err)
	}
}

// determinismGrid is a small mixed grid exercising every defense and
// attack combination the runner fans out in real experiments.
func determinismGrid() []Scenario {
	return tinyScale().ApplyAll(
		Scenario{Label: "puzzles", Defense: DefensePuzzles, Attack: AttackConnFlood,
			ClientsSolve: true, BotsSolve: true},
		Scenario{Label: "cookies", Defense: DefenseCookies, Attack: AttackSYNFlood,
			ClientsSolve: true},
		Scenario{Label: "none", Defense: DefenseNone, Attack: AttackConnFlood,
			ClientsSolve: true},
		Scenario{Label: "syncache", Defense: DefenseSYNCache, Attack: AttackSYNFlood,
			ClientsSolve: true},
	)
}

// seriesFingerprint materialises every measurement series of a run into
// one comparable string, so "identical results" means bit-for-bit equal
// series, not just equal summaries.
func seriesFingerprint(run *FloodRun) string {
	var b strings.Builder
	dump := func(name string, series []float64) {
		fmt.Fprintf(&b, "%s:", name)
		for _, v := range series {
			fmt.Fprintf(&b, "%x,", v)
		}
		b.WriteByte('\n')
	}
	listen, accept := run.QueueSizes()
	dump("cli", run.ClientThroughputMbps())
	dump("srv", run.ServerThroughputMbps())
	dump("srvcpu", run.ServerCPU())
	dump("clicpu", run.ClientCPU())
	dump("attcpu", run.AttackerCPU())
	dump("listen", listen)
	dump("accept", accept)
	dump("estab", run.AttackerEstablishedRate())
	dump("sent", run.MeasuredAttackRate())
	return b.String()
}

// The tentpole guarantee: the same grid produces bit-for-bit identical
// series at every worker count.
func TestRunScenariosDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the grid at four worker counts")
	}
	grid := determinismGrid()
	baseline, err := RunScenarios(1, grid)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	want := make([]string, len(baseline))
	for i, run := range baseline {
		want[i] = seriesFingerprint(run)
	}
	for _, workers := range []int{2, 4, 8} {
		runs, err := RunScenarios(workers, grid)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, run := range runs {
			if got := seriesFingerprint(run); got != want[i] {
				t.Errorf("workers=%d: scenario %q differs from workers=1",
					workers, grid[i].Label)
			}
		}
	}
}

// Distinct seeds must produce distinct series: the seed really drives the
// randomness, for every seed.
func TestDistinctSeedsProduceDistinctSeries(t *testing.T) {
	base := tinyScale().Apply(Scenario{ClientsSolve: true, BotsSolve: true})
	grid := make([]Scenario, 6)
	for i := range grid {
		grid[i] = base
		grid[i].Seed = int64(100 + i)
	}
	runs, err := RunScenarios(0, grid)
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	seen := make(map[string]int64, len(runs))
	for i, run := range runs {
		fp := seriesFingerprint(run)
		if prev, dup := seen[fp]; dup {
			t.Errorf("seeds %d and %d produced identical series", prev, grid[i].Seed)
		}
		seen[fp] = grid[i].Seed
	}
}

// QuickScale is the largest deployment tests exercise; the full §6
// PaperScale stays in cmd/tcpz-exp. Guarded so CI (-short) skips it.
func TestQuickScaleGridThroughRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickScale grid is several seconds of simulation")
	}
	scale := QuickScale()
	res, err := Fig8(scale)
	if err != nil {
		t.Fatalf("Fig8(QuickScale): %v", err)
	}
	puzzles, ok := res.RunFor("challenges-m17")
	if !ok {
		t.Fatal("missing challenges-m17 run")
	}
	cookies, _ := res.RunFor("cookies")
	pz := phaseMean(puzzles, puzzles.ClientThroughputMbps(), phaseDuring)
	ck := phaseMean(cookies, cookies.ClientThroughputMbps(), phaseDuring)
	if pz <= ck {
		t.Errorf("QuickScale: puzzles during (%v) not above cookies (%v)", pz, ck)
	}
}

func TestRunScenariosPropagatesError(t *testing.T) {
	grid := determinismGrid()
	grid[2].Defense = "bogus"
	if _, err := RunScenarios(4, grid); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error not propagated: %v", err)
	}
}
