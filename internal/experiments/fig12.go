package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Fig12Config selects the difficulty grid for Experiment 3.
type Fig12Config struct {
	// Ks and Ms form the grid; defaults are the paper's {1..4} ×
	// {12,15,16,17,18,20}.
	Ks []uint8
	Ms []uint8
	// Scale sets the underlying flood scenario (and the runner width).
	Scale Scale
}

func (c *Fig12Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []uint8{1, 2, 3, 4}
	}
	if len(c.Ms) == 0 {
		c.Ms = []uint8{12, 15, 16, 17, 18, 20}
	}
	if c.Scale.Duration == 0 {
		parallelism := c.Scale.Parallelism
		c.Scale = PaperScale()
		c.Scale.Parallelism = parallelism
	}
}

// Fig12Cell is one box of the grid: per-client per-second throughput
// samples during the attack.
type Fig12Cell struct {
	Params puzzle.Params
	Box    stats.Box
}

// Fig12Result is the difficulty grid of Experiment 3.
type Fig12Result struct {
	Cells []Fig12Cell
}

// Fig12 sweeps puzzle difficulties during a connection flood and reports
// client-throughput box statistics per (k, m) — the Nash cell (2,17) should
// show the most stable (lowest-variance) throughput. The whole (k, m) grid
// is declared up front and executed in parallel on the shared runner.
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.fill()
	var grid []Scenario
	for _, k := range cfg.Ks {
		for _, m := range cfg.Ms {
			params := puzzle.Params{K: k, M: m, L: 32}
			grid = append(grid, Scenario{
				Label:        params.String(),
				Defense:      DefensePuzzles,
				Params:       params,
				Attack:       AttackConnFlood,
				ClientsSolve: true,
				BotsSolve:    true,
				// The difficulty sweep assumes the strongest attacker:
				// bots bound their solve backlog so solutions stay fresh.
				// A greedy flooder's solutions go stale at any m, which
				// would make every difficulty look equally effective.
				BotMaxSolveBacklog: 2 * time.Second,
			})
		}
	}
	runs, err := RunScenarios(cfg.Scale.Parallelism, cfg.Scale.ApplyAll(grid...))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig12: %w", err)
	}
	res := &Fig12Result{}
	for i, run := range runs {
		res.Cells = append(res.Cells, Fig12Cell{
			Params: grid[i].Params,
			Box:    stats.BoxOf(run.ClientThroughputSamplesDuringAttack()),
		})
	}
	return res, nil
}

// Table renders the grid.
func (r *Fig12Result) Table() Table {
	t := Table{
		Title:  "Fig 12 — client throughput during attack by difficulty (Mbps)",
		Header: []string{"k", "m", "mean", "std", "q1", "med", "q3"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.Params.K),
			fmt.Sprintf("%d", c.Params.M),
			f2(c.Box.Mean), f2(c.Box.Std),
			f2(c.Box.Q1), f2(c.Box.Med), f2(c.Box.Q3),
		})
	}
	return t
}

// CellFor returns the box for a difficulty.
func (r *Fig12Result) CellFor(k, m uint8) (Fig12Cell, bool) {
	for _, c := range r.Cells {
		if c.Params.K == k && c.Params.M == m {
			return c, true
		}
	}
	return Fig12Cell{}, false
}
