package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Fig12Config selects the difficulty grid for Experiment 3.
type Fig12Config struct {
	// Ks and Ms form the grid; defaults are the paper's {1..4} ×
	// {12,15,16,17,18,20}.
	Ks []uint8
	Ms []uint8
	// Scale sets the underlying flood scenario and the execution options
	// (runner width, sinks, cache).
	Scale Scale
}

func (c *Fig12Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []uint8{1, 2, 3, 4}
	}
	if len(c.Ms) == 0 {
		c.Ms = []uint8{12, 15, 16, 17, 18, 20}
	}
	if c.Scale.Duration == 0 {
		exec := c.Scale
		c.Scale = PaperScale()
		c.Scale.Parallelism = exec.Parallelism
		c.Scale.Sinks = exec.Sinks
		c.Scale.Cache = exec.Cache
	}
}

// Fig12Grid declares the (k, m) difficulty product of Experiment 3 over
// the canonical connection-flood cell.
func Fig12Grid(ks, ms []uint8) sweep.Grid {
	return sweep.Grid{
		Base: Scenario{
			Defense:      DefensePuzzles,
			Attack:       AttackConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
			// The difficulty sweep assumes the strongest attacker:
			// bots bound their solve backlog so solutions stay fresh.
			// A greedy flooder's solutions go stale at any m, which
			// would make every difficulty look equally effective.
			BotMaxSolveBacklog: 2 * time.Second,
		},
		Axes: []sweep.Axis{sweep.Ks(ks...), sweep.Ms(ms...)},
	}
}

// Fig12Cell is one box of the grid: client-throughput statistics during
// the attack.
type Fig12Cell struct {
	Params puzzle.Params
	Box    stats.Box
}

// Fig12Result is the difficulty grid of Experiment 3.
type Fig12Result struct {
	Results []sweep.Result
}

// Fig12 sweeps puzzle difficulties during a connection flood and reports
// client-throughput box statistics per (k, m) — the Nash cell (2,17) should
// show the most stable (lowest-variance) throughput. The whole (k, m) grid
// is declared up front and executed in parallel on the shared runner.
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.fill()
	cells := Fig12Grid(cfg.Ks, cfg.Ms).Expand(&cfg.Scale)
	results, _, err := runFloodCells(cfg.Scale, "fig12", "", cells, fig12Metrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig12: %w", err)
	}
	return &Fig12Result{Results: results}, nil
}

func fig12Metrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	box := stats.BoxOf(run.ClientThroughputSamplesDuringAttack())
	return []sweep.Metric{
		{Name: "client_mbps_mean", Value: box.Mean},
		{Name: "client_mbps_std", Value: box.Std},
		{Name: "client_mbps_q1", Value: box.Q1},
		{Name: "client_mbps_med", Value: box.Med},
		{Name: "client_mbps_q3", Value: box.Q3},
		{Name: "samples", Value: float64(box.N)},
	}, nil
}

// Table renders the grid.
func (r *Fig12Result) Table() Table {
	t := Table{
		Title:  "Fig 12 — client throughput during attack by difficulty (Mbps)",
		Header: []string{"k", "m", "mean", "std", "q1", "med", "q3"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Scenario.Params.K),
			fmt.Sprintf("%d", res.Scenario.Params.M),
			f2(res.Metric("client_mbps_mean")), f2(res.Metric("client_mbps_std")),
			f2(res.Metric("client_mbps_q1")), f2(res.Metric("client_mbps_med")),
			f2(res.Metric("client_mbps_q3")),
		})
	}
	return t
}

// CellFor returns the box for a difficulty.
func (r *Fig12Result) CellFor(k, m uint8) (Fig12Cell, bool) {
	for _, res := range r.Results {
		if res.Scenario.Params.K == k && res.Scenario.Params.M == m {
			return Fig12Cell{
				Params: res.Scenario.Params,
				Box: stats.Box{
					N:    int(res.Metric("samples")),
					Mean: res.Metric("client_mbps_mean"),
					Std:  res.Metric("client_mbps_std"),
					Q1:   res.Metric("client_mbps_q1"),
					Med:  res.Metric("client_mbps_med"),
					Q3:   res.Metric("client_mbps_q3"),
				},
			}, true
		}
	}
	return Fig12Cell{}, false
}
