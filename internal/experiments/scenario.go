// Package experiments reproduces the paper's evaluation (§6): one driver
// per figure and table, built on the simulated DETER-like testbed. Each
// driver returns a structured result that renders the same rows/series the
// paper reports.
package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/attacksim"
	"github.com/tcppuzzles/tcppuzzles/internal/clientsim"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// FloodConfig describes one flood scenario in the paper's test deployment:
// one server, a set of clients requesting text, and a botnet.
type FloodConfig struct {
	// Label names the run in result tables.
	Label string

	// Duration is the experiment length; the attack runs over
	// [AttackStart, AttackStop).
	Duration    time.Duration
	AttackStart time.Duration
	AttackStop  time.Duration
	// Bucket is the metric bucket width.
	Bucket time.Duration

	// NumClients client hosts each issue ClientRate requests/second for
	// RequestBytes of text.
	NumClients   int
	ClientRate   float64
	RequestBytes int
	// ClientsSolve selects patched client kernels.
	ClientsSolve bool

	// Protection and Params configure the server defense.
	Protection      serversim.Protection
	Params          puzzle.Params
	AlwaysChallenge bool
	Workers         int
	Backlog         int
	AcceptBacklog   int

	// AttackKind, BotCount, PerBotRate and BotsSolve configure the botnet.
	AttackKind attacksim.Kind
	BotCount   int
	PerBotRate float64
	BotsSolve  bool
	// BotMaxSolveBacklog makes solving bots "smart": they discard stale
	// challenges instead of queueing greedily (zero = greedy default).
	BotMaxSolveBacklog time.Duration

	// AdaptiveDifficulty enables the server's closed-loop controller.
	AdaptiveDifficulty bool

	// Seed drives all randomness.
	Seed int64
}

// fill applies the paper's §6 defaults: 15 clients at 20 req/s, a 10-bot
// botnet at 500 pps each, attack over [120 s, 480 s) of a 600 s run.
func (c *FloodConfig) fill() {
	if c.Duration == 0 {
		c.Duration = 600 * time.Second
	}
	if c.AttackStart == 0 {
		c.AttackStart = 120 * time.Second
	}
	if c.AttackStop == 0 {
		c.AttackStop = 480 * time.Second
	}
	if c.Bucket == 0 {
		c.Bucket = time.Second
	}
	if c.NumClients == 0 {
		c.NumClients = 15
	}
	if c.ClientRate == 0 {
		c.ClientRate = 20
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 100_000
	}
	if c.Protection == 0 {
		c.Protection = serversim.ProtectionPuzzles
	}
	if c.Params == (puzzle.Params{}) {
		c.Params = puzzle.Params{K: 2, M: 17, L: 32}
	}
	if c.AttackKind == 0 {
		c.AttackKind = attacksim.ConnFlood
	}
	if c.BotCount == 0 {
		c.BotCount = 10
	}
	if c.PerBotRate == 0 {
		c.PerBotRate = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FloodRun is a completed flood scenario with its measurement state.
type FloodRun struct {
	Cfg     FloodConfig
	Eng     *netsim.Engine
	Net     *netsim.Network
	Server  *serversim.Server
	Clients []*clientsim.Client
	Botnet  *attacksim.Botnet
}

// RunFlood builds and executes a flood scenario to completion.
func RunFlood(cfg FloodConfig) (*FloodRun, error) {
	cfg.fill()
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)

	srv, err := serversim.New(eng, network, netsim.DefaultServerLink(), serversim.Config{
		Addr:               [4]byte{10, 0, 0, 1},
		Protection:         cfg.Protection,
		PuzzleParams:       cfg.Params,
		AlwaysChallenge:    cfg.AlwaysChallenge,
		AdaptiveDifficulty: cfg.AdaptiveDifficulty,
		SimulatedCrypto:    true,
		Workers:            cfg.Workers,
		Backlog:            cfg.Backlog,
		AcceptBacklog:      cfg.AcceptBacklog,
		Seed:               cfg.Seed,
		MetricBucket:       cfg.Bucket,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: server: %w", err)
	}

	run := &FloodRun{Cfg: cfg, Eng: eng, Net: network, Server: srv}
	devices := cpumodel.ClientCPUs()
	for i := 0; i < cfg.NumClients; i++ {
		client, err := clientsim.New(eng, network, netsim.DefaultHostLink(), clientsim.Config{
			Addr:            [4]byte{10, 1, byte(i / 250), byte(1 + i%250)},
			ServerAddr:      srv.Addr(),
			Rate:            cfg.ClientRate,
			StopAt:          cfg.Duration,
			RequestBytes:    cfg.RequestBytes,
			Solves:          cfg.ClientsSolve,
			SimulatedCrypto: true,
			Device:          devices[i%len(devices)],
			Seed:            cfg.Seed + int64(i)*17,
			MetricBucket:    cfg.Bucket,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: client %d: %w", i, err)
		}
		run.Clients = append(run.Clients, client)
	}

	if cfg.BotCount > 0 && cfg.PerBotRate > 0 {
		botnet, err := attacksim.NewBotnet(eng, network, attacksim.BotnetConfig{
			Size:            cfg.BotCount,
			BaseAddr:        [4]byte{10, 2, 0, 1},
			ServerAddr:      srv.Addr(),
			Kind:            cfg.AttackKind,
			PerBotRate:      cfg.PerBotRate,
			Solves:          cfg.BotsSolve,
			SimulatedCrypto: true,
			MaxSolveBacklog: cfg.BotMaxSolveBacklog,
			StartAt:         cfg.AttackStart,
			StopAt:          cfg.AttackStop,
			Seed:            cfg.Seed + 1000,
			MetricBucket:    cfg.Bucket,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: botnet: %w", err)
		}
		run.Botnet = botnet
	}

	eng.Run(cfg.Duration)
	return run, nil
}

// ClientThroughputMbps returns the mean per-client goodput in Mbps per
// bucket.
func (r *FloodRun) ClientThroughputMbps() []float64 {
	var out []float64
	for _, c := range r.Clients {
		series := c.Metrics().BytesIn.Mbps(r.Cfg.Duration)
		if out == nil {
			out = make([]float64, len(series))
		}
		for i, v := range series {
			out[i] += v / float64(len(r.Clients))
		}
	}
	return out
}

// ServerThroughputMbps returns the server's outgoing throughput in Mbps per
// bucket.
func (r *FloodRun) ServerThroughputMbps() []float64 {
	return r.Server.Metrics().BytesOut.Mbps(r.Cfg.Duration)
}

// ServerCPU returns per-bucket server CPU utilisation (%).
func (r *FloodRun) ServerCPU() []float64 {
	return r.Server.CPU().Utilisation(r.Cfg.Duration)
}

// ClientCPU returns the mean per-bucket client CPU utilisation (%).
func (r *FloodRun) ClientCPU() []float64 {
	var out []float64
	for _, c := range r.Clients {
		u := c.CPU().Utilisation(r.Cfg.Duration)
		if out == nil {
			out = make([]float64, len(u))
		}
		for i, v := range u {
			out[i] += v / float64(len(r.Clients))
		}
	}
	return out
}

// AttackerCPU returns the mean per-bucket botnet CPU utilisation (%).
func (r *FloodRun) AttackerCPU() []float64 {
	if r.Botnet == nil {
		return nil
	}
	return r.Botnet.MeanCPUUtilisation(r.Cfg.Duration)
}

// QueueSizes returns per-second listen and accept queue occupancy.
func (r *FloodRun) QueueSizes() (listen, accept []float64) {
	m := r.Server.Metrics()
	return m.ListenLen.Sampled(r.Cfg.Bucket, r.Cfg.Duration),
		m.AcceptLen.Sampled(r.Cfg.Bucket, r.Cfg.Duration)
}

// AttackerEstablishedRate returns the botnet's completed connections per
// second as seen by the server (the effective attack rate).
func (r *FloodRun) AttackerEstablishedRate() []float64 {
	if r.Botnet == nil {
		return nil
	}
	return r.Server.Metrics().EstablishedRateFor(r.Botnet.Srcs(), r.Cfg.Duration)
}

// MeasuredAttackRate returns the botnet's sent packets per second (after
// CPU limiting).
func (r *FloodRun) MeasuredAttackRate() []float64 {
	if r.Botnet == nil {
		return nil
	}
	return r.Botnet.SentRate(r.Cfg.Duration)
}

// AttackWindowMean averages a per-bucket series over the attack interval.
func (r *FloodRun) AttackWindowMean(series []float64) float64 {
	lo := int(r.Cfg.AttackStart / r.Cfg.Bucket)
	hi := int(r.Cfg.AttackStop / r.Cfg.Bucket)
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// ClientThroughputSamplesDuringAttack returns every per-client per-bucket
// throughput sample (Mbps) inside the attack window — the population behind
// the Fig. 12 box plots.
func (r *FloodRun) ClientThroughputSamplesDuringAttack() []float64 {
	lo := int(r.Cfg.AttackStart / r.Cfg.Bucket)
	hi := int(r.Cfg.AttackStop / r.Cfg.Bucket)
	var out []float64
	for _, c := range r.Clients {
		series := c.Metrics().BytesIn.Mbps(r.Cfg.Duration)
		if hi > len(series) {
			hi = len(series)
		}
		out = append(out, series[lo:hi]...)
	}
	return out
}
