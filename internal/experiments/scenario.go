package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// The canonical configuration types live in the public sweep package (the
// DOE layer below this one); the aliases keep every driver, test, and the
// sim façade on literally the same types. Defense and Attack names resolve
// directly in the strategy registries (packages defense and attack) — the
// simulators consume the sweep strings as-is, so there is no translation
// layer between the DOE grid and the simulator cores.
type (
	// Scenario is the canonical description of one deployment under
	// attack. See sweep.Scenario.
	Scenario = sweep.Scenario
	// Scale rescales a scenario's deployment and carries execution
	// options (runner width, sinks, cache). See sweep.Scale.
	Scale = sweep.Scale
	// Defense selects the server protection.
	Defense = sweep.Defense
	// Attack selects the botnet behaviour.
	Attack = sweep.Attack
)

// Re-exported enum values and sentinels.
const (
	DefenseNone            = sweep.DefenseNone
	DefenseCookies         = sweep.DefenseCookies
	DefenseSYNCache        = sweep.DefenseSYNCache
	DefensePuzzles         = sweep.DefensePuzzles
	DefenseHybrid          = sweep.DefenseHybrid
	DefenseRateLimit       = sweep.DefenseRateLimit
	DefenseAdaptivePuzzles = sweep.DefenseAdaptivePuzzles

	AttackSYNFlood      = sweep.AttackSYNFlood
	AttackConnFlood     = sweep.AttackConnFlood
	AttackSolutionFlood = sweep.AttackSolutionFlood
	AttackReplayFlood   = sweep.AttackReplayFlood
	AttackPulseFlood    = sweep.AttackPulseFlood
	AttackAdaptiveFlood = sweep.AttackAdaptiveFlood

	// NoBotnet as a Scenario.BotCount disables the botnet entirely.
	NoBotnet = sweep.NoBotnet
)

// PaperScale is the full-size evaluation of §6.
func PaperScale() Scale {
	return Scale{
		Duration: 600 * time.Second, AttackStart: 120 * time.Second, AttackStop: 480 * time.Second,
		NumClients: 15, ClientRate: 20, BotCount: 10, PerBotRate: 500,
		Backlog: 4096, AcceptBacklog: 4096, Workers: 256, Seed: 1,
	}
}

// QuickScale is a reduced deployment for benchmarks and tests: the same
// shape at ~1/10 the event count.
func QuickScale() Scale {
	return Scale{
		Duration: 120 * time.Second, AttackStart: 30 * time.Second, AttackStop: 90 * time.Second,
		NumClients: 6, ClientRate: 10, BotCount: 5, PerBotRate: 120,
		Backlog: 512, AcceptBacklog: 512, Workers: 64, Seed: 1,
	}
}

// TinyScale is the smallest deployment that still preserves the attack
// structure (the unit tests' scale). It backs `tcpz-exp -scale tiny` and
// the CI cache round-trip, where wall-clock matters more than fidelity.
func TinyScale() Scale {
	return Scale{
		Duration: 60 * time.Second, AttackStart: 15 * time.Second, AttackStop: 45 * time.Second,
		NumClients: 4, ClientRate: 8, BotCount: 4, PerBotRate: 80,
		Backlog: 128, AcceptBacklog: 128, Workers: 48, Seed: 42,
	}
}
