package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// AdoptionScenario is one of Experiment 5's deployment mixes.
type AdoptionScenario struct {
	// Label follows the paper's notation: (NA,NC), (SA,NC), (NA,SC),
	// (SA,SC); the paper groups the last two as (*A,SC).
	Label        string
	AttackSolves bool
	ClientSolves bool
}

// Fig15Scenarios returns the paper's four adoption mixes.
func Fig15Scenarios() []AdoptionScenario {
	return []AdoptionScenario{
		{Label: "(NA,NC)", AttackSolves: false, ClientSolves: false},
		{Label: "(SA,NC)", AttackSolves: true, ClientSolves: false},
		{Label: "(NA,SC)", AttackSolves: false, ClientSolves: true},
		{Label: "(SA,SC)", AttackSolves: true, ClientSolves: true},
	}
}

// Fig15Grid declares the adoption-mix axis over the Nash-difficulty
// connection flood.
func Fig15Grid() sweep.Grid {
	mixes := Fig15Scenarios()
	points := make([]sweep.Point, len(mixes))
	for i, mix := range mixes {
		mix := mix
		points[i] = sweep.Point{Label: mix.Label, Set: func(sc *Scenario) {
			sc.ClientsSolve = mix.ClientSolves
			sc.BotsSolve = mix.AttackSolves
		}}
	}
	return sweep.Grid{
		Base: Scenario{
			Defense: DefensePuzzles,
			Params:  puzzle.Params{K: 2, M: 17, L: 32},
			Attack:  AttackConnFlood,
		},
		Axes: []sweep.Axis{sweep.Variants("mix", points...)},
	}
}

// Fig15Cell is one scenario's outcome.
type Fig15Cell struct {
	Scenario AdoptionScenario
	// PctEstablished is the percentage of client connection attempts that
	// completed during the attack window.
	PctEstablished float64
	// Series is the per-bucket completion percentage.
	Series []float64
}

// Fig15Result is the adoption study.
type Fig15Result struct {
	Results []sweep.Result
	Cells   []Fig15Cell
}

// Fig15 measures how unpatched (non-solving) clients fare against solving
// and non-solving attackers under a connection flood at the Nash
// difficulty. Solving clients are almost always served; non-solving clients
// see erratic service against solving attackers and near-zero service
// against non-solving attackers. The four adoption mixes run in parallel
// on the shared runner.
func Fig15(scale Scale) (*Fig15Result, error) {
	results, _, err := runFloodCells(scale, "fig15", "", Fig15Grid().Expand(&scale), fig15Metrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig15: %w", err)
	}
	mixes := Fig15Scenarios()
	res := &Fig15Result{Results: results}
	for i, result := range results {
		res.Cells = append(res.Cells, Fig15Cell{
			Scenario:       mixes[i],
			PctEstablished: result.Metric("pct_established"),
			Series:         result.SeriesValues("pct_established"),
		})
	}
	return res, nil
}

func fig15Metrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	return []sweep.Metric{{Name: "pct_established", Value: pctEstablishedDuring(run)}},
		[]sweep.Series{{Name: "pct_established", Values: pctSeries(run)}}
}

// pctEstablishedDuring computes completed/attempted over the attack window.
func pctEstablishedDuring(run *FloodRun) float64 {
	var attempts, successes float64
	for _, c := range run.Clients {
		attempts += c.Metrics().Attempts.SumRange(run.Cfg.AttackStart, run.Cfg.AttackStop)
		successes += c.Metrics().Successes.SumRange(run.Cfg.AttackStart, run.Cfg.AttackStop)
	}
	if attempts == 0 {
		return 0
	}
	return 100 * successes / attempts
}

// pctSeries computes the per-bucket completion percentage across clients.
func pctSeries(run *FloodRun) []float64 {
	n := int(run.Cfg.Duration/run.Cfg.Bucket) + 1
	attempts := make([]float64, n)
	successes := make([]float64, n)
	for _, c := range run.Clients {
		for i, v := range c.Metrics().Attempts.Values(run.Cfg.Duration) {
			attempts[i] += v
		}
		for i, v := range c.Metrics().Successes.Values(run.Cfg.Duration) {
			successes[i] += v
		}
	}
	out := make([]float64, n)
	for i := range out {
		if attempts[i] > 0 {
			out[i] = 100 * successes[i] / attempts[i]
		}
	}
	return out
}

// Table renders the adoption outcomes.
func (r *Fig15Result) Table() Table {
	t := Table{
		Title:  "Fig 15 — % established during attack by adoption mix",
		Header: []string{"scenario", "%established", "series"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Scenario.Label,
			f1(c.PctEstablished),
			sparkline(downsample(c.Series, 40)),
		})
	}
	return t
}

// CellFor returns the cell for a scenario label.
func (r *Fig15Result) CellFor(label string) (Fig15Cell, bool) {
	for _, c := range r.Cells {
		if c.Scenario.Label == label {
			return c, true
		}
	}
	return Fig15Cell{}, false
}
