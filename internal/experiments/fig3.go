package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/mm1"
)

// Fig3aResult is the client performance profile of Fig. 3a: cumulative
// hashes over time per CPU, and the fleet w_av.
type Fig3aResult struct {
	Step    time.Duration
	Horizon time.Duration
	Curves  map[string][]float64
	Wav     float64
}

// Fig3a profiles the paper's three client CPUs over one second.
func Fig3a() (*Fig3aResult, error) {
	const (
		step    = 100 * time.Millisecond
		horizon = time.Second
	)
	res := &Fig3aResult{Step: step, Horizon: horizon, Curves: map[string][]float64{}}
	for _, dev := range cpumodel.ClientCPUs() {
		res.Curves[dev.Name] = cpumodel.HashCurve(dev, step, horizon)
	}
	wav, err := cpumodel.FleetWav(cpumodel.ClientCPUs(), 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	res.Wav = wav
	return res, nil
}

// Table renders the Fig. 3a profile.
func (r *Fig3aResult) Table() Table {
	t := Table{
		Title:  "Fig 3a — client hash profiles (cumulative hashes)",
		Header: []string{"t(ms)", "cpu1", "cpu2", "cpu3"},
	}
	n := len(r.Curves["cpu1"])
	for i := 0; i < n; i++ {
		ms := (time.Duration(i+1) * r.Step).Milliseconds()
		t.Rows = append(t.Rows, []string{
			f1(float64(ms)),
			f1(r.Curves["cpu1"][i]),
			f1(r.Curves["cpu2"][i]),
			f1(r.Curves["cpu3"][i]),
		})
	}
	t.Rows = append(t.Rows, []string{"w_av", f1(r.Wav), "", ""})
	return t
}

// Fig3bResult is the server profile of Fig. 3b: service rate and service
// parameter α per concurrency level.
type Fig3bResult struct {
	Points []Fig3bPoint
	Alpha  float64
}

// Fig3bPoint is one sweep sample.
type Fig3bPoint struct {
	Concurrent  int
	ServiceRate float64
	Alpha       float64
}

// Fig3b stress-tests the modelled Apache deployment across concurrency
// levels (the ab sweep) and extracts the converged α.
func Fig3b() (*Fig3bResult, error) {
	cfg := mm1.PaperStress()
	levels := []int{1, 5, 10, 25, 50, 100, 200, 400, 600, 800, 1000}
	points := cfg.Sweep(levels)
	res := &Fig3bResult{}
	for _, p := range points {
		a, err := game.Alpha(p)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig3bPoint{
			Concurrent:  p.Concurrent,
			ServiceRate: p.ServiceRate,
			Alpha:       a,
		})
	}
	alpha, err := game.AlphaFromStress(points)
	if err != nil {
		return nil, err
	}
	res.Alpha = alpha
	return res, nil
}

// Table renders the Fig. 3b sweep.
func (r *Fig3bResult) Table() Table {
	t := Table{
		Title:  "Fig 3b — server profile (service rate µ and parameter α)",
		Header: []string{"concurrent", "rate(req/s)", "alpha"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(float64(p.Concurrent)), f1(p.ServiceRate), f3(p.Alpha),
		})
	}
	t.Rows = append(t.Rows, []string{"converged α", f3(r.Alpha), ""})
	return t
}
