package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/mm1"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Fig3aGrid declares one cell per profiled client CPU.
func Fig3aGrid() sweep.Grid {
	devices := cpumodel.ClientCPUs()
	points := make([]sweep.Point, len(devices))
	for i, dev := range devices {
		points[i] = sweep.Point{Label: dev.Name}
	}
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("cpu", points...)}}
}

// Fig3aResult is the client performance profile of Fig. 3a: cumulative
// hashes over time per CPU, and the fleet w_av.
type Fig3aResult struct {
	Results []sweep.Result
	Step    time.Duration
	Horizon time.Duration
	Curves  map[string][]float64
	Wav     float64
}

// Fig3a profiles the paper's three client CPUs over one second, one
// runner job per device. The scale supplies execution options only.
func Fig3a(scale Scale) (*Fig3aResult, error) {
	const (
		step    = 100 * time.Millisecond
		horizon = time.Second
	)
	devices := cpumodel.ClientCPUs()
	results, err := runCells(scale, "fig3a", "", Fig3aGrid().Expand(nil),
		func(i int, _ Scenario) ([]sweep.Metric, []sweep.Series, error) {
			dev := devices[i]
			curve := cpumodel.HashCurve(dev, step, horizon)
			return []sweep.Metric{
					{Name: "hash_rate", Value: dev.HashRate},
					{Name: "hashes_in_400ms", Value: dev.HashesIn(400 * time.Millisecond)},
				},
				[]sweep.Series{{Name: "cumulative_hashes", Values: curve}}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Fig3aResult{Results: results, Step: step, Horizon: horizon, Curves: map[string][]float64{}}
	for _, r := range results {
		res.Curves[r.Scenario.Label] = r.SeriesValues("cumulative_hashes")
	}
	wav, err := cpumodel.FleetWav(devices, 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	res.Wav = wav
	return res, nil
}

// Table renders the Fig. 3a profile.
func (r *Fig3aResult) Table() Table {
	t := Table{
		Title:  "Fig 3a — client hash profiles (cumulative hashes)",
		Header: []string{"t(ms)", "cpu1", "cpu2", "cpu3"},
	}
	n := len(r.Curves["cpu1"])
	for i := 0; i < n; i++ {
		ms := (time.Duration(i+1) * r.Step).Milliseconds()
		t.Rows = append(t.Rows, []string{
			f1(float64(ms)),
			f1(r.Curves["cpu1"][i]),
			f1(r.Curves["cpu2"][i]),
			f1(r.Curves["cpu3"][i]),
		})
	}
	t.Rows = append(t.Rows, []string{"w_av", f1(r.Wav), "", ""})
	return t
}

// fig3bLevels is the ab concurrency sweep of Fig. 3b.
var fig3bLevels = []int{1, 5, 10, 25, 50, 100, 200, 400, 600, 800, 1000}

// Fig3bGrid declares one cell per stress-test concurrency level.
func Fig3bGrid() sweep.Grid {
	points := make([]sweep.Point, len(fig3bLevels))
	for i, level := range fig3bLevels {
		points[i] = sweep.Point{Label: fmt.Sprintf("c=%d", level)}
	}
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("concurrent", points...)}}
}

// Fig3bResult is the server profile of Fig. 3b: service rate and service
// parameter α per concurrency level.
type Fig3bResult struct {
	Results []sweep.Result
	Points  []Fig3bPoint
	Alpha   float64
}

// Fig3bPoint is one sweep sample.
type Fig3bPoint struct {
	Concurrent  int
	ServiceRate float64
	Alpha       float64
}

// Fig3b stress-tests the modelled Apache deployment across concurrency
// levels (the ab sweep) and extracts the converged α. The scale supplies
// execution options only.
func Fig3b(scale Scale) (*Fig3bResult, error) {
	cfg := mm1.PaperStress()
	points := cfg.Sweep(fig3bLevels)
	results, err := runCells(scale, "fig3b", "", Fig3bGrid().Expand(nil),
		func(i int, _ Scenario) ([]sweep.Metric, []sweep.Series, error) {
			a, err := game.Alpha(points[i])
			if err != nil {
				return nil, nil, err
			}
			return []sweep.Metric{
				{Name: "concurrent", Value: float64(points[i].Concurrent)},
				{Name: "service_rate", Value: points[i].ServiceRate},
				{Name: "alpha", Value: a},
			}, nil, nil
		})
	if err != nil {
		return nil, err
	}
	alpha, err := game.AlphaFromStress(points)
	if err != nil {
		return nil, err
	}
	res := &Fig3bResult{Results: results, Alpha: alpha}
	for _, r := range results {
		res.Points = append(res.Points, Fig3bPoint{
			Concurrent:  int(r.Metric("concurrent")),
			ServiceRate: r.Metric("service_rate"),
			Alpha:       r.Metric("alpha"),
		})
	}
	return res, nil
}

// Table renders the Fig. 3b sweep.
func (r *Fig3bResult) Table() Table {
	t := Table{
		Title:  "Fig 3b — server profile (service rate µ and parameter α)",
		Header: []string{"concurrent", "rate(req/s)", "alpha"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(float64(p.Concurrent)), f1(p.ServiceRate), f3(p.Alpha),
		})
	}
	t.Rows = append(t.Rows, []string{"converged α", f3(r.Alpha), ""})
	return t
}
