package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/mm1"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
)

// Fig3aResult is the client performance profile of Fig. 3a: cumulative
// hashes over time per CPU, and the fleet w_av.
type Fig3aResult struct {
	Step    time.Duration
	Horizon time.Duration
	Curves  map[string][]float64
	Wav     float64
}

// Fig3a profiles the paper's three client CPUs over one second, one
// runner job per device. workers bounds the pool (0 = GOMAXPROCS).
func Fig3a(workers int) (*Fig3aResult, error) {
	const (
		step    = 100 * time.Millisecond
		horizon = time.Second
	)
	devices := cpumodel.ClientCPUs()
	curves, err := runner.Map(workers, len(devices), func(i int) ([]float64, error) {
		return cpumodel.HashCurve(devices[i], step, horizon), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3aResult{Step: step, Horizon: horizon, Curves: map[string][]float64{}}
	for i, dev := range devices {
		res.Curves[dev.Name] = curves[i]
	}
	wav, err := cpumodel.FleetWav(devices, 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	res.Wav = wav
	return res, nil
}

// Table renders the Fig. 3a profile.
func (r *Fig3aResult) Table() Table {
	t := Table{
		Title:  "Fig 3a — client hash profiles (cumulative hashes)",
		Header: []string{"t(ms)", "cpu1", "cpu2", "cpu3"},
	}
	n := len(r.Curves["cpu1"])
	for i := 0; i < n; i++ {
		ms := (time.Duration(i+1) * r.Step).Milliseconds()
		t.Rows = append(t.Rows, []string{
			f1(float64(ms)),
			f1(r.Curves["cpu1"][i]),
			f1(r.Curves["cpu2"][i]),
			f1(r.Curves["cpu3"][i]),
		})
	}
	t.Rows = append(t.Rows, []string{"w_av", f1(r.Wav), "", ""})
	return t
}

// Fig3bResult is the server profile of Fig. 3b: service rate and service
// parameter α per concurrency level.
type Fig3bResult struct {
	Points []Fig3bPoint
	Alpha  float64
}

// Fig3bPoint is one sweep sample.
type Fig3bPoint struct {
	Concurrent  int
	ServiceRate float64
	Alpha       float64
}

// Fig3b stress-tests the modelled Apache deployment across concurrency
// levels (the ab sweep) and extracts the converged α. workers bounds the
// per-level runner pool (0 = GOMAXPROCS).
func Fig3b(workers int) (*Fig3bResult, error) {
	cfg := mm1.PaperStress()
	levels := []int{1, 5, 10, 25, 50, 100, 200, 400, 600, 800, 1000}
	points := cfg.Sweep(levels)
	sweep, err := runner.Map(workers, len(points), func(i int) (Fig3bPoint, error) {
		a, err := game.Alpha(points[i])
		if err != nil {
			return Fig3bPoint{}, err
		}
		return Fig3bPoint{
			Concurrent:  points[i].Concurrent,
			ServiceRate: points[i].ServiceRate,
			Alpha:       a,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	alpha, err := game.AlphaFromStress(points)
	if err != nil {
		return nil, err
	}
	return &Fig3bResult{Points: sweep, Alpha: alpha}, nil
}

// Table renders the Fig. 3b sweep.
func (r *Fig3bResult) Table() Table {
	t := Table{
		Title:  "Fig 3b — server profile (service rate µ and parameter α)",
		Header: []string{"concurrent", "rate(req/s)", "alpha"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(float64(p.Concurrent)), f1(p.ServiceRate), f3(p.Alpha),
		})
	}
	t.Rows = append(t.Rows, []string{"converged α", f3(r.Alpha), ""})
	return t
}
