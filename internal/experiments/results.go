package experiments

import (
	"fmt"
	"strings"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Table is the generic tabular view every experiment renders so the CLI
// and benchmarks print uniform output. The type lives in the sweep
// package next to the structured Result it is derived from.
type Table = sweep.Table

// f1, f2, f3 format floats at fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// sparkline renders a compact series for terminal output.
func sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var maxV float64
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// downsample reduces a series to at most n points by averaging windows.
func downsample(series []float64, n int) []float64 {
	if len(series) <= n || n <= 0 {
		return series
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(series) / n
		hi := (i + 1) * len(series) / n
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range series[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
