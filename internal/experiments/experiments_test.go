package experiments

import (
	"math"
	"testing"
	"time"
)

// tinyScale keeps unit tests fast while preserving the attack structure.
func tinyScale() Scale {
	return Scale{
		Duration: 60 * time.Second, AttackStart: 15 * time.Second, AttackStop: 45 * time.Second,
		NumClients: 4, ClientRate: 8, BotCount: 4, PerBotRate: 80,
		Backlog: 128, AcceptBacklog: 128, Workers: 48, Seed: 42,
	}
}

func TestFig3aProfiles(t *testing.T) {
	res, err := Fig3a(Scale{})
	if err != nil {
		t.Fatalf("Fig3a: %v", err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(res.Curves))
	}
	if math.Abs(res.Wav-140630)/140630 > 0.01 {
		t.Errorf("w_av = %v, want ≈ 140630", res.Wav)
	}
	if got := res.Table(); len(got.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestFig3bAlphaConverges(t *testing.T) {
	res, err := Fig3b(Scale{})
	if err != nil {
		t.Fatalf("Fig3b: %v", err)
	}
	if math.Abs(res.Alpha-1.1) > 0.02 {
		t.Errorf("α = %v, want ≈ 1.1", res.Alpha)
	}
	// Service rate must ramp and plateau at µ ≈ 1100.
	last := res.Points[len(res.Points)-1]
	if math.Abs(last.ServiceRate-1100) > 1 {
		t.Errorf("plateau = %v, want 1100", last.ServiceRate)
	}
}

func TestFig6ShapeExponentialInMLinearInK(t *testing.T) {
	res, err := Fig6(Fig6Config{
		Ks:          []uint8{1, 2},
		Ms:          []uint8{4, 10, 16},
		Connections: 60,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	m4, _ := res.MeanFor(1, 4)
	m10, _ := res.MeanFor(1, 10)
	m16, _ := res.MeanFor(1, 16)
	if !(m4 < m10 && m10 < m16) {
		t.Errorf("means not increasing in m: %v, %v, %v", m4, m10, m16)
	}
	// Exponential in m: 6 extra bits ⇒ ~64× more work; allow slack for
	// RTT floor at small m.
	if m16 < 8*m10 {
		t.Errorf("m=16 mean %v not ≫ m=10 mean %v", m16, m10)
	}
	// Linear in k: doubling k roughly doubles the solve-dominated time.
	k1, _ := res.MeanFor(1, 16)
	k2, _ := res.MeanFor(2, 16)
	ratio := k2 / k1
	if ratio < 1.4 || ratio > 3 {
		t.Errorf("k=2/k=1 ratio at m=16 = %v, want ≈ 2", ratio)
	}
}

func TestFig7SYNFloodOutcomes(t *testing.T) {
	res, err := Fig7(tinyScale())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	noDef, _ := res.RunFor("nodefense")
	cookies, _ := res.RunFor("cookies")
	puzzles8, _ := res.RunFor("challenges-m8")

	noDefCli := noDef.ClientThroughputMbps()
	before := phaseMean(noDef, noDefCli, phaseBefore)
	during := phaseMean(noDef, noDefCli, phaseDuring)
	if before <= 0 {
		t.Fatalf("nodefense before = %v, want > 0", before)
	}
	// Without defense the SYN flood must crater client throughput.
	if during > 0.2*before {
		t.Errorf("nodefense during = %v vs before %v: flood ineffective", during, before)
	}
	// Cookies neutralise a SYN flood.
	ckCli := cookies.ClientThroughputMbps()
	ckBefore := phaseMean(cookies, ckCli, phaseBefore)
	ckDuring := phaseMean(cookies, ckCli, phaseDuring)
	if ckDuring < 0.7*ckBefore {
		t.Errorf("cookies during = %v vs before %v: should be unaffected", ckDuring, ckBefore)
	}
	// Easy puzzles also neutralise it.
	p8Cli := puzzles8.ClientThroughputMbps()
	p8Before := phaseMean(puzzles8, p8Cli, phaseBefore)
	p8During := phaseMean(puzzles8, p8Cli, phaseDuring)
	if p8During < 0.6*p8Before {
		t.Errorf("puzzles-m8 during = %v vs before %v", p8During, p8Before)
	}
}

func TestFig8ConnFloodOutcomes(t *testing.T) {
	res, err := Fig8(tinyScale())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	noDef, _ := res.RunFor("nodefense")
	cookies, _ := res.RunFor("cookies")
	puzzles, _ := res.RunFor("challenges-m17")

	for _, d := range []struct {
		label string
		run   *FloodRun
	}{{"nodefense", noDef}, {"cookies", cookies}} {
		cli := d.run.ClientThroughputMbps()
		before := phaseMean(d.run, cli, phaseBefore)
		during := phaseMean(d.run, cli, phaseDuring)
		if during > 0.3*before {
			t.Errorf("%s during = %v vs before %v: connection flood should deny service",
				d.label, during, before)
		}
	}
	pzCli := puzzles.ClientThroughputMbps()
	pzBefore := phaseMean(puzzles, pzCli, phaseBefore)
	pzDuring := phaseMean(puzzles, pzCli, phaseDuring)
	if pzDuring < 0.15*pzBefore {
		t.Errorf("puzzles during = %v vs before %v: puzzles should preserve service",
			pzDuring, pzBefore)
	}
	// Puzzles must beat cookies during the attack.
	ckDuring := phaseMean(cookies, cookies.ClientThroughputMbps(), phaseDuring)
	if pzDuring <= ckDuring {
		t.Errorf("puzzles during (%v) not better than cookies (%v)", pzDuring, ckDuring)
	}
}

func TestFig9CPUProfile(t *testing.T) {
	res, err := Fig9(tinyScale())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	srvDuring := phaseMean(res.Run, res.Run.ServerCPU(), phaseDuring)
	if srvDuring > 5 {
		t.Errorf("server CPU during attack = %v%%, want < 5%% (§6.2)", srvDuring)
	}
	attDuring := phaseMean(res.Run, res.Run.AttackerCPU(), phaseDuring)
	attBefore := phaseMean(res.Run, res.Run.AttackerCPU(), phaseBefore)
	if attDuring < 60 {
		t.Errorf("attacker CPU during = %v%%, want a solving spike", attDuring)
	}
	if attBefore > 1 {
		t.Errorf("attacker CPU before = %v%%, want ≈ 0", attBefore)
	}
	cliBefore := phaseMean(res.Run, res.Run.ClientCPU(), phaseBefore)
	cliDuring := phaseMean(res.Run, res.Run.ClientCPU(), phaseDuring)
	if cliDuring <= 0 {
		t.Error("client CPU during attack = 0, want solving load")
	}
	if cliBefore > 1 {
		t.Errorf("client CPU before attack = %v%%, want ≈ 0 (no challenges)", cliBefore)
	}
	// See EXPERIMENTS.md: our latch challenges every client request during
	// the attack, so modelled client CPU saturates its solve budget rather
	// than staying near the paper's 10%; the qualitative ordering
	// (baseline ≈ 0, solving load during attack) is preserved.
}

func TestFig10QueueBehaviour(t *testing.T) {
	res, err := Fig10(tinyScale())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	_, ckAccept := res.Cookies.QueueSizes()
	_, pzAccept := res.Puzzles.QueueSizes()
	ckDuring := phaseMean(res.Cookies, ckAccept, phaseDuring)
	pzDuring := phaseMean(res.Puzzles, pzAccept, phaseDuring)
	// With cookies the accept queue saturates; with puzzles it drains once
	// protection engages. At this reduced scale the drain occupies part of
	// the window, so assert a clear separation; the paper-scale run in
	// EXPERIMENTS.md shows the near-empty queue of Fig. 10.
	if pzDuring > 0.6*ckDuring {
		t.Errorf("accept queue cookies=%v puzzles=%v: puzzles should keep it lower",
			ckDuring, pzDuring)
	}
}

func TestFig11RateLimiting(t *testing.T) {
	res, err := Fig11(tinyScale())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	// At this reduced scale the pre-engagement burst dominates the 30 s
	// attack window, compressing the factor; the paper-scale run (360 s
	// attack, EXPERIMENTS.md) recovers the order-of-magnitude reduction
	// (paper: 37×).
	factor := res.ReductionFactor()
	if factor < 3 {
		t.Errorf("reduction factor = %v, want ≫ 1 (paper: 37×)", factor)
	}
}

func TestFig12NashStability(t *testing.T) {
	res, err := Fig12(Fig12Config{
		Ks:    []uint8{2},
		Ms:    []uint8{12, 17},
		Scale: tinyScale(),
	})
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	easy, ok := res.CellFor(2, 12)
	if !ok {
		t.Fatal("missing cell (2,12)")
	}
	nash, ok := res.CellFor(2, 17)
	if !ok {
		t.Fatal("missing cell (2,17)")
	}
	// m=12 is too easy to throttle the attackers (§6.3): the Nash cell
	// must deliver higher client throughput.
	if nash.Box.Mean <= easy.Box.Mean {
		t.Errorf("nash mean %v ≤ easy mean %v", nash.Box.Mean, easy.Box.Mean)
	}
}

func TestFig13RateIncreaseDoesNotHelp(t *testing.T) {
	res, err := Fig13(tinyScale(), []float64{50, 200})
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	lo, hi := res.Points[0], res.Points[1]
	if hi.MeasuredAttackRate <= lo.MeasuredAttackRate {
		t.Errorf("measured rate did not increase: %v vs %v",
			lo.MeasuredAttackRate, hi.MeasuredAttackRate)
	}
	// Quadrupling the rate must not quadruple completions (CPU-bound).
	if hi.CompletionRate > 2*lo.CompletionRate+1 {
		t.Errorf("completion rate scaled with attack rate: %v → %v",
			lo.CompletionRate, hi.CompletionRate)
	}
}

func TestFig14MoreBotsRaiseCompletions(t *testing.T) {
	res, err := Fig14(tinyScale(), []int{2, 8}, 400)
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	small, big := res.Points[0], res.Points[1]
	if big.CompletionRate <= small.CompletionRate {
		t.Errorf("completions with 8 bots (%v) not above 2 bots (%v)",
			big.CompletionRate, small.CompletionRate)
	}
	// Completions remain a small fraction of the measured rate.
	if big.CompletionRate > 0.2*big.MeasuredAttackRate {
		t.Errorf("completion rate %v too close to measured %v",
			big.CompletionRate, big.MeasuredAttackRate)
	}
}

func TestFig15AdoptionOutcomes(t *testing.T) {
	res, err := Fig15(tinyScale())
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	nanc, _ := res.CellFor("(NA,NC)")
	sanc, _ := res.CellFor("(SA,NC)")
	nasc, _ := res.CellFor("(NA,SC)")
	sasc, _ := res.CellFor("(SA,SC)")

	// Solving clients are (almost) always served regardless of attacker.
	if nasc.PctEstablished < 70 {
		t.Errorf("(NA,SC) = %v%%, want high", nasc.PctEstablished)
	}
	if sasc.PctEstablished < 70 {
		t.Errorf("(SA,SC) = %v%%, want high", sasc.PctEstablished)
	}
	// Non-solving clients fare worse than solving ones.
	if nanc.PctEstablished > nasc.PctEstablished {
		t.Errorf("(NA,NC)=%v%% above (NA,SC)=%v%%", nanc.PctEstablished, nasc.PctEstablished)
	}
	if sanc.PctEstablished > sasc.PctEstablished {
		t.Errorf("(SA,NC)=%v%% above (SA,SC)=%v%%", sanc.PctEstablished, sasc.PctEstablished)
	}
}

func TestTable1DerivedColumns(t *testing.T) {
	res, err := Table1(Scale{})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Every Pi can still connect (solve in seconds)…
		if row.NashSolveTime > 30*time.Second {
			t.Errorf("%s solve time %v too slow to ever connect", row.Device.Name, row.NashSolveTime)
		}
		// …but cannot flood: well under one solved connection per second.
		if row.MaxFloodRateCPS > 1 {
			t.Errorf("%s flood rate %v cps, want < 1", row.Device.Name, row.MaxFloodRateCPS)
		}
	}
}

func TestNashExampleMatchesPaper(t *testing.T) {
	res, err := NashExample(Scale{})
	if err != nil {
		t.Fatalf("NashExample: %v", err)
	}
	if res.Params.K != 2 || res.Params.M != 17 {
		t.Errorf("(k,m) = (%d,%d), want (2,17)", res.Params.K, res.Params.M)
	}
	if math.Abs(res.Alpha-1.1) > 0.02 {
		t.Errorf("α = %v", res.Alpha)
	}
	// Finite-N optimum close to the asymptotic ℓ*.
	if math.Abs(res.FiniteLStar-res.LStar)/res.LStar > 0.05 {
		t.Errorf("finite ℓ* %v vs asymptotic %v", res.FiniteLStar, res.LStar)
	}
}

func TestAblationOpportunistic(t *testing.T) {
	res, err := AblationOpportunistic(tinyScale())
	if err != nil {
		t.Fatalf("AblationOpportunistic: %v", err)
	}
	oppBefore := phaseMean(res.Opportunistic,
		res.Opportunistic.ClientThroughputMbps(), phaseBefore)
	alwBefore := phaseMean(res.AlwaysOn, res.AlwaysOn.ClientThroughputMbps(), phaseBefore)
	// Before the attack the opportunistic controller must not tax clients;
	// always-on solves every handshake and loses peacetime throughput.
	if oppBefore <= alwBefore {
		t.Errorf("opportunistic before (%v) not above always-on (%v)", oppBefore, alwBefore)
	}
}

func TestAblationSolutionFlood(t *testing.T) {
	res, err := AblationSolutionFlood(tinyScale())
	if err != nil {
		t.Fatalf("AblationSolutionFlood: %v", err)
	}
	m := res.Run.Server.Metrics()
	if m.SolutionInvalid+m.SolutionMalformed == 0 {
		t.Error("no bogus solutions rejected")
	}
	if during := phaseMean(res.Run, res.Run.ServerCPU(), phaseDuring); during > 5 {
		t.Errorf("server CPU during solution flood = %v%%, want < 5%%", during)
	}
}

func TestTablesRender(t *testing.T) {
	// Smoke-test every table renderer on one tiny run set.
	f8, err := Fig8(tinyScale())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if s := f8.Table().String(); len(s) == 0 {
		t.Error("empty fig8 table")
	}
	t1, err := Table1(Scale{})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if s := t1.Table().String(); len(s) == 0 {
		t.Error("empty table1")
	}
}
