package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/mm1"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// nashFiniteN is the population size of the finite-N numeric cross-check.
const nashFiniteN = 2000

// NashGrid declares the single worked-example cell of §4.4.
func NashGrid() sweep.Grid {
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("example",
		sweep.Point{Label: "nash-equilibrium"},
	)}}
}

// NashResult is the worked example of §4.4: model parameters measured from
// the profiles, the equilibrium work level, and the selected (k, m).
type NashResult struct {
	Results []sweep.Result
	Wav     float64
	Alpha   float64
	LStar   float64
	Params  puzzle.Params
	// FiniteLStar is the finite-N numeric optimum for cross-validation.
	FiniteLStar float64
	FiniteN     int
}

// NashExample reproduces §4.4 end-to-end: w_av from the client CPU
// profiles, α from the stress test, ℓ* from Theorem 1, (k*, m*) from the
// practical selection procedure, and a finite-N numeric cross-check. The
// scale supplies execution options only.
func NashExample(scale Scale) (*NashResult, error) {
	results, err := runCells(scale, "nash", "", NashGrid().Expand(nil),
		func(_ int, _ Scenario) ([]sweep.Metric, []sweep.Series, error) {
			wav, err := cpumodel.FleetWav(cpumodel.ClientCPUs(), 400*time.Millisecond)
			if err != nil {
				return nil, nil, err
			}
			stress := mm1.PaperStress()
			alpha, err := game.AlphaFromStress(stress.Sweep([]int{10, 100, 500, 1000}))
			if err != nil {
				return nil, nil, err
			}
			lstar, err := game.LStar(wav, alpha)
			if err != nil {
				return nil, nil, err
			}
			params, err := game.SelectParams(wav, alpha, game.SelectionConfig{})
			if err != nil {
				return nil, nil, err
			}
			g := game.UniformGame(nashFiniteN, wav, alpha*nashFiniteN)
			finite, err := g.OptimalDifficulty()
			if err != nil {
				return nil, nil, err
			}
			return []sweep.Metric{
				{Name: "w_av", Value: wav},
				{Name: "alpha", Value: alpha},
				{Name: "l_star", Value: lstar},
				{Name: "k_star", Value: float64(params.K)},
				{Name: "m_star", Value: float64(params.M)},
				{Name: "finite_l_star", Value: finite},
				{Name: "finite_n", Value: nashFiniteN},
			}, nil, nil
		})
	if err != nil {
		return nil, err
	}
	res := results[0]
	return &NashResult{
		Results: results,
		Wav:     res.Metric("w_av"),
		Alpha:   res.Metric("alpha"),
		LStar:   res.Metric("l_star"),
		Params: puzzle.Params{
			K: uint8(res.Metric("k_star")), M: uint8(res.Metric("m_star")), L: 32,
		},
		FiniteLStar: res.Metric("finite_l_star"),
		FiniteN:     int(res.Metric("finite_n")),
	}, nil
}

// Table renders the worked example.
func (r *NashResult) Table() Table {
	return Table{
		Title:  "§4.4 — Nash equilibrium difficulty",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"w_av (hashes/400ms)", f1(r.Wav)},
			{"alpha", f3(r.Alpha)},
			{"ℓ* = w_av/(α+1)", f1(r.LStar)},
			{"(k*, m*)", fmt.Sprintf("(%d, %d)", r.Params.K, r.Params.M)},
			{fmt.Sprintf("finite-N ℓ* (N=%d)", r.FiniteN), f1(r.FiniteLStar)},
		},
	}
}
