package experiments

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/mm1"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sim/runner"
)

// NashResult is the worked example of §4.4: model parameters measured from
// the profiles, the equilibrium work level, and the selected (k, m).
type NashResult struct {
	Wav    float64
	Alpha  float64
	LStar  float64
	Params puzzle.Params
	// FiniteLStar is the finite-N numeric optimum for cross-validation.
	FiniteLStar float64
	FiniteN     int
}

// NashExample reproduces §4.4 end-to-end: w_av from the client CPU
// profiles, α from the stress test, ℓ* from Theorem 1, (k*, m*) from the
// practical selection procedure, and a finite-N numeric cross-check.
// workers bounds the runner pool for the independent closing steps
// (0 = GOMAXPROCS).
func NashExample(workers int) (*NashResult, error) {
	wav, err := cpumodel.FleetWav(cpumodel.ClientCPUs(), 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	stress := mm1.PaperStress()
	alpha, err := game.AlphaFromStress(stress.Sweep([]int{10, 100, 500, 1000}))
	if err != nil {
		return nil, err
	}
	lstar, err := game.LStar(wav, alpha)
	if err != nil {
		return nil, err
	}
	// The closed-form parameter selection and the finite-N numeric
	// cross-check depend only on (w_av, α); run them as independent jobs.
	const n = 2000
	var params puzzle.Params
	var finite float64
	err = runner.ForEach(workers, 2, func(i int) error {
		var err error
		switch i {
		case 0:
			params, err = game.SelectParams(wav, alpha, game.SelectionConfig{})
		case 1:
			g := game.UniformGame(n, wav, alpha*n)
			finite, err = g.OptimalDifficulty()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return &NashResult{
		Wav: wav, Alpha: alpha, LStar: lstar, Params: params,
		FiniteLStar: finite, FiniteN: n,
	}, nil
}

// Table renders the worked example.
func (r *NashResult) Table() Table {
	return Table{
		Title:  "§4.4 — Nash equilibrium difficulty",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"w_av (hashes/400ms)", f1(r.Wav)},
			{"alpha", f3(r.Alpha)},
			{"ℓ* = w_av/(α+1)", f1(r.LStar)},
			{"(k*, m*)", fmt.Sprintf("(%d, %d)", r.Params.K, r.Params.M)},
			{fmt.Sprintf("finite-N ℓ* (N=%d)", r.FiniteN), f1(r.FiniteLStar)},
		},
	}
}
