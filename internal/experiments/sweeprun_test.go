package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// tinySweepGrid is a small mixed-defense design for end-to-end sweep
// tests; cells carry their own deployment size (RunSweep applies no
// scale).
func tinySweepGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{
			Duration: 30 * time.Second, AttackStart: 8 * time.Second, AttackStop: 22 * time.Second,
			NumClients: 3, ClientRate: 8, BotCount: 3, PerBotRate: 60,
			Backlog: 96, AcceptBacklog: 96, Workers: 32,
			ClientsSolve: true, BotsSolve: true, Seed: 11,
		},
		Axes: []sweep.Axis{
			sweep.Defenses(DefenseCookies, DefensePuzzles),
			sweep.Seeds(11, 12),
		},
	}
}

// The serialization half of the determinism guarantee: CSV and NDJSON
// sink output must be byte-identical at every runner worker count, even
// though cells complete in different orders.
func TestSinkOutputIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep grid at three worker counts")
	}
	grid := tinySweepGrid()
	render := func(workers int) (csvOut, jsonOut string) {
		var csvBuf, jsonBuf bytes.Buffer
		scale := Scale{
			Parallelism: workers,
			Sinks:       []sweep.Sink{sweep.NewCSV(&csvBuf), sweep.NewNDJSON(&jsonBuf)},
		}
		if _, err := RunSweep(scale, grid); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return csvBuf.String(), jsonBuf.String()
	}
	wantCSV, wantJSON := render(1)
	if wantCSV == "" || wantJSON == "" {
		t.Fatal("empty sink output")
	}
	for _, workers := range []int{4, 8} {
		gotCSV, gotJSON := render(workers)
		if gotCSV != wantCSV {
			t.Errorf("workers=%d: CSV differs from workers=1:\n%s\nvs\n%s", workers, gotCSV, wantCSV)
		}
		if gotJSON != wantJSON {
			t.Errorf("workers=%d: NDJSON differs from workers=1", workers)
		}
	}
}

// Cache behaviour at the executor level, with a synthetic compute so the
// test proves "cache hit = zero compute" without any simulation.
func TestRunCellsCacheSkipsCompute(t *testing.T) {
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cells := sweep.Grid{Axes: []sweep.Axis{sweep.Seeds(1, 2, 3)}}.Expand(nil)
	var computed atomic.Int64
	compute := func(i int, sc Scenario) ([]sweep.Metric, []sweep.Series, error) {
		computed.Add(1)
		return []sweep.Metric{{Name: "seed", Value: float64(sc.Seed)}},
			[]sweep.Series{{Name: "trace", Values: []float64{float64(i)}}}, nil
	}
	scale := Scale{Cache: cache}

	first, err := runCells(scale, "cachetest", "", cells, compute)
	if err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 3 {
		t.Fatalf("first run computed %d cells, want 3", got)
	}
	if cache.Hits() != 0 || cache.Misses() != 3 {
		t.Fatalf("first run hits=%d misses=%d, want 0/3", cache.Hits(), cache.Misses())
	}

	second, err := runCells(scale, "cachetest", "", cells, compute)
	if err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 3 {
		t.Errorf("second run re-computed cells: total %d, want 3", got)
	}
	if cache.Hits() != 3 || cache.Misses() != 3 {
		t.Errorf("second run hits=%d misses=%d, want 3/3", cache.Hits(), cache.Misses())
	}
	// Exec is per-process observability (pool stats, peak heap) and
	// documented as excluded from determinism comparisons; a cache-hit
	// run legitimately samples different heap peaks than a computed one.
	for i := range second {
		second[i].Exec = first[i].Exec
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached results differ:\n%+v\nvs\n%+v", first, second)
	}

	// A different experiment namespace must not see the entries.
	if _, err := runCells(scale, "othertest", "", cells, compute); err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 6 {
		t.Errorf("other namespace computed %d total, want 6", got)
	}
}

// End-to-end: a cached sweep re-run performs zero simulation work and
// produces byte-identical sink output.
func TestRunSweepCachedRerunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a small flood grid twice")
	}
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid := tinySweepGrid()
	run := func() string {
		var buf bytes.Buffer
		scale := Scale{Sinks: []sweep.Sink{sweep.NewCSV(&buf)}, Cache: cache}
		if _, err := RunSweep(scale, grid); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	cells := int64(len(grid.Expand(nil)))
	if cache.Misses() != cells || cache.Hits() != 0 {
		t.Fatalf("first run hits=%d misses=%d, want 0/%d", cache.Hits(), cache.Misses(), cells)
	}
	second := run()
	if cache.Hits() != cells {
		t.Errorf("second run hits=%d, want %d (100%% cache hits)", cache.Hits(), cells)
	}
	if first != second {
		t.Errorf("cached re-run output differs:\n%s\nvs\n%s", first, second)
	}
}

// Figs. 10 and 11 run the same cells with the same metric extraction;
// they share a cache namespace so regenerating one makes the other free.
func TestFig10And11ShareCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the fig10 scenario pair")
	}
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scale := TinyScale()
	scale.Cache = cache
	f10, err := Fig10(scale)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("fig10 hits=%d misses=%d, want 0/2", cache.Hits(), cache.Misses())
	}
	f11, err := Fig11(scale)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 2 {
		t.Errorf("fig11 hits=%d, want 2 (shared namespace)", cache.Hits())
	}
	if f11.Puzzles != nil {
		t.Error("fig11 simulated despite cache hits")
	}
	if f10.Results[0].Metric("attacker_established_during") !=
		f11.Results[0].Metric("attacker_established_during") {
		t.Error("shared cells report different metrics")
	}
}

// Errors from a failing cell must name the cell.
func TestRunCellsNamesFailingCell(t *testing.T) {
	cells := sweep.Grid{Axes: []sweep.Axis{sweep.Seeds(1, 2)}}.Expand(nil)
	_, err := runCells(Scale{}, "errtest", "", cells,
		func(i int, sc Scenario) ([]sweep.Metric, []sweep.Series, error) {
			if sc.Seed == 2 {
				return nil, nil, fmt.Errorf("boom")
			}
			return nil, nil, nil
		})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte(`"seed=2"`)) {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// The new strategy plugins are first-class sweep citizens: runnable from
// a Defenses/Attacks grid axis, byte-identical sink output on a cached
// rerun (zero simulation work), and attached runner-pool exec stats.
func TestNewPluginsSweepCacheRoundTrip(t *testing.T) {
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{
		Base: Scenario{
			Duration: 24 * time.Second, AttackStart: 6 * time.Second, AttackStop: 18 * time.Second,
			NumClients: 3, ClientRate: 8, BotCount: 3, PerBotRate: 60,
			Backlog: 64, AcceptBacklog: 64, Workers: 24,
			ClientsSolve: true, Seed: 21,
		},
		Axes: []sweep.Axis{
			sweep.Defenses(DefenseHybrid, DefenseRateLimit),
			sweep.Attacks(AttackSYNFlood, AttackPulseFlood),
		},
	}
	render := func() string {
		var buf bytes.Buffer
		scale := Scale{Cache: cache, Sinks: []sweep.Sink{sweep.NewCSV(&buf)}}
		results, err := RunSweep(scale, grid)
		if err != nil {
			t.Fatalf("RunSweep: %v", err)
		}
		if len(results) != 4 {
			t.Fatalf("results = %d, want 4", len(results))
		}
		for _, r := range results {
			if r.Exec == nil || r.Exec.Jobs != 4 {
				t.Errorf("cell %q missing runner exec stats: %+v", r.Scenario.Label, r.Exec)
			}
		}
		return buf.String()
	}
	first := render()
	if first == "" {
		t.Fatal("empty sink output")
	}
	misses := cache.Misses()
	second := render()
	if second != first {
		t.Errorf("cached rerun output differs:\n%s\nvs\n%s", second, first)
	}
	if cache.Misses() != misses {
		t.Errorf("cached rerun missed %d times; new-plugin cells must hit", cache.Misses()-misses)
	}
	if cache.Hits() < 4 {
		t.Errorf("cache hits = %d, want ≥ 4", cache.Hits())
	}
}
