package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// nashFlood is the canonical §6 attack cell: a connection flood of
// solving bots against solving clients at the Nash difficulty.
func nashFlood(label string) sweep.Point {
	return sweep.Point{Label: label, Set: func(sc *Scenario) {
		sc.Defense = DefensePuzzles
		sc.Params = puzzle.Params{K: 2, M: 17, L: 32}
		sc.Attack = AttackConnFlood
		sc.ClientsSolve = true
		sc.BotsSolve = true
	}}
}

// Fig9Grid declares the single Nash-difficulty connection-flood cell
// whose CPU profile Fig. 9 reports.
func Fig9Grid() sweep.Grid {
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("defense", nashFlood("challenges-m17"))}}
}

// Fig9Result is the CPU-utilisation view of the Nash-difficulty connection
// flood (Fig. 9).
type Fig9Result struct {
	Results []sweep.Result
	// Run is the live flood run (nil on a cache hit).
	Run *FloodRun
}

// Fig9 runs a connection flood at the Nash difficulty and reports CPU
// utilisation at clients, server and attackers.
func Fig9(scale Scale) (*Fig9Result, error) {
	results, runs, err := runFloodCells(scale, "fig9", "", Fig9Grid().Expand(&scale), fig9Metrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9: %w", err)
	}
	return &Fig9Result{Results: results, Run: runs[0]}, nil
}

func fig9Metrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	var metrics []sweep.Metric
	var series []sweep.Series
	for _, role := range []struct {
		name   string
		values []float64
	}{
		{"client_cpu_pct", run.ClientCPU()},
		{"server_cpu_pct", run.ServerCPU()},
		{"attacker_cpu_pct", run.AttackerCPU()},
	} {
		var peak float64
		for _, v := range role.values {
			if v > peak {
				peak = v
			}
		}
		metrics = append(metrics,
			sweep.Metric{Name: role.name + "_before", Value: phaseMean(run, role.values, phaseBefore)},
			sweep.Metric{Name: role.name + "_during", Value: phaseMean(run, role.values, phaseDuring)},
			sweep.Metric{Name: role.name + "_after", Value: phaseMean(run, role.values, phaseAfter)},
			sweep.Metric{Name: role.name + "_peak", Value: peak},
		)
		series = append(series, sweep.Series{Name: role.name, Values: role.values})
	}
	return metrics, series
}

// Table reports phase means and peaks of %CPU per role.
func (r *Fig9Result) Table() Table {
	t := Table{
		Title:  "Fig 9 — %CPU during connection flood (Nash difficulty)",
		Header: []string{"role", "before", "during", "after", "peak", "series"},
	}
	res := r.Results[0]
	for _, role := range []struct {
		label, name string
	}{
		{"client", "client_cpu_pct"},
		{"server", "server_cpu_pct"},
		{"attacker", "attacker_cpu_pct"},
	} {
		t.Rows = append(t.Rows, []string{
			role.label,
			f1(res.Metric(role.name + "_before")),
			f1(res.Metric(role.name + "_during")),
			f1(res.Metric(role.name + "_after")),
			f1(res.Metric(role.name + "_peak")),
			sparkline(downsample(res.SeriesValues(role.name), 40)),
		})
	}
	return t
}

// fig10Grid declares the queue-occupancy scenario pair of Figs. 10–11:
// puzzles vs cookies under the same connection flood.
func fig10Grid() sweep.Grid {
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("defense",
		nashFlood("challenges"),
		sweep.Point{Label: "cookies", Set: func(sc *Scenario) {
			sc.Defense = DefenseCookies
			sc.Attack = AttackConnFlood
			sc.ClientsSolve = true
			sc.BotsSolve = true
		}},
	)}}
}

// Fig10Grid declares the Fig. 10 scenario pair.
func Fig10Grid() sweep.Grid { return fig10Grid() }

// Fig11Grid declares the Fig. 11 scenario pair (the same deployments as
// Fig. 10, measured for effective attack rate).
func Fig11Grid() sweep.Grid { return fig10Grid() }

// queueAndRateMetrics measures both the queue occupancy of Fig. 10 and
// the effective attack rate of Fig. 11, so the two figures share one
// extraction (and their tables stay derivable from either experiment's
// cached Results).
func queueAndRateMetrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	listen, accept := run.QueueSizes()
	estab := run.AttackerEstablishedRate()
	peak := func(series []float64) float64 {
		var p float64
		for _, v := range series {
			if v > p {
				p = v
			}
		}
		return p
	}
	metrics := []sweep.Metric{
		{Name: "listen_queue_during", Value: phaseMean(run, listen, phaseDuring)},
		{Name: "listen_queue_peak", Value: peak(listen)},
		{Name: "accept_queue_during", Value: phaseMean(run, accept, phaseDuring)},
		{Name: "accept_queue_peak", Value: peak(accept)},
		{Name: "attacker_established_during", Value: phaseMean(run, estab, phaseDuring)},
	}
	series := []sweep.Series{
		{Name: "listen_queue", Values: listen},
		{Name: "accept_queue", Values: accept},
		{Name: "attacker_established_cps", Values: estab},
	}
	return metrics, series
}

// Fig10Result traces queue occupancy under a connection flood for puzzles
// vs cookies (Fig. 10).
type Fig10Result struct {
	Results []sweep.Result
	// Puzzles and Cookies are the live runs (nil on cache hits).
	Puzzles *FloodRun
	Cookies *FloodRun
}

// Fig10 runs the two defenses in parallel and captures listen/accept queue
// sizes.
func Fig10(scale Scale) (*Fig10Result, error) {
	results, runs, err := runFloodCells(scale, "fig10", "fig10-11", Fig10Grid().Expand(&scale), queueAndRateMetrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig10: %w", err)
	}
	return &Fig10Result{Results: results, Puzzles: runs[0], Cookies: runs[1]}, nil
}

// Table reports queue occupancy during the attack.
func (r *Fig10Result) Table() Table {
	t := Table{
		Title:  "Fig 10 — queue occupancy during connection flood",
		Header: []string{"defense", "queue", "during-mean", "peak", "series"},
	}
	for _, res := range r.Results {
		for _, q := range []struct {
			name, metric, series string
		}{
			{"listen", "listen_queue", "listen_queue"},
			{"accept", "accept_queue", "accept_queue"},
		} {
			t.Rows = append(t.Rows, []string{
				res.Scenario.Label, q.name,
				f1(res.Metric(q.metric + "_during")),
				f1(res.Metric(q.metric + "_peak")),
				sparkline(downsample(res.SeriesValues(q.series), 40)),
			})
		}
	}
	return t
}

// Fig11Result compares the botnet's effective (completed-connection) rate
// under puzzles vs cookies (Fig. 11).
type Fig11Result struct {
	Results []sweep.Result
	// Puzzles and Cookies are the live runs (nil on cache hits).
	Puzzles *FloodRun
	Cookies *FloodRun
}

// Fig11 runs the Fig. 10 scenario pair and extracts attacker completion
// rates.
func Fig11(scale Scale) (*Fig11Result, error) {
	results, runs, err := runFloodCells(scale, "fig11", "fig10-11", Fig11Grid().Expand(&scale), queueAndRateMetrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig11: %w", err)
	}
	return &Fig11Result{Results: results, Puzzles: runs[0], Cookies: runs[1]}, nil
}

// Table reports effective attack rates (cps) during the attack window.
func (r *Fig11Result) Table() Table {
	t := Table{
		Title:  "Fig 11 — effective attack rate (completed connections/s)",
		Header: []string{"defense", "mean-during", "series"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Scenario.Label,
			f2(res.Metric("attacker_established_during")),
			sparkline(downsample(res.SeriesValues("attacker_established_cps"), 40)),
		})
	}
	return t
}

// ReductionFactor returns cookies/puzzles effective-rate ratio — the paper
// reports 225/4 ≈ 37×.
func (r *Fig11Result) ReductionFactor() float64 {
	p := r.Results[0].Metric("attacker_established_during")
	c := r.Results[1].Metric("attacker_established_during")
	if p <= 0 {
		return 0
	}
	return c / p
}
