package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Fig9Result is the CPU-utilisation view of the Nash-difficulty connection
// flood (Fig. 9).
type Fig9Result struct {
	Run *FloodRun
}

// Fig9 runs a connection flood at the Nash difficulty and reports CPU
// utilisation at clients, server and attackers.
func Fig9(scale Scale) (*Fig9Result, error) {
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(Scenario{
		Label:        "challenges-m17",
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 17, L: 32},
		Attack:       AttackConnFlood,
		ClientsSolve: true,
		BotsSolve:    true,
	}))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9: %w", err)
	}
	return &Fig9Result{Run: runs[0]}, nil
}

// Table reports phase means and peaks of %CPU per role.
func (r *Fig9Result) Table() Table {
	t := Table{
		Title:  "Fig 9 — %CPU during connection flood (Nash difficulty)",
		Header: []string{"role", "before", "during", "after", "peak", "series"},
	}
	rows := []struct {
		role   string
		series []float64
	}{
		{"client", r.Run.ClientCPU()},
		{"server", r.Run.ServerCPU()},
		{"attacker", r.Run.AttackerCPU()},
	}
	for _, row := range rows {
		var peak float64
		for _, v := range row.series {
			if v > peak {
				peak = v
			}
		}
		t.Rows = append(t.Rows, []string{
			row.role,
			f1(phaseMean(r.Run, row.series, phaseBefore)),
			f1(phaseMean(r.Run, row.series, phaseDuring)),
			f1(phaseMean(r.Run, row.series, phaseAfter)),
			f1(peak),
			sparkline(downsample(row.series, 40)),
		})
	}
	return t
}

// Fig10Result traces queue occupancy under a connection flood for puzzles
// vs cookies (Fig. 10).
type Fig10Result struct {
	Puzzles *FloodRun
	Cookies *FloodRun
}

// Fig10 runs the two defenses in parallel and captures listen/accept queue
// sizes.
func Fig10(scale Scale) (*Fig10Result, error) {
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(
		Scenario{
			Label:        "challenges",
			Defense:      DefensePuzzles,
			Params:       puzzle.Params{K: 2, M: 17, L: 32},
			Attack:       AttackConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
		},
		Scenario{
			Label:        "cookies",
			Defense:      DefenseCookies,
			Attack:       AttackConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
		},
	))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig10: %w", err)
	}
	return &Fig10Result{Puzzles: runs[0], Cookies: runs[1]}, nil
}

// Table reports queue occupancy during the attack.
func (r *Fig10Result) Table() Table {
	t := Table{
		Title:  "Fig 10 — queue occupancy during connection flood",
		Header: []string{"defense", "queue", "during-mean", "peak", "series"},
	}
	add := func(label string, run *FloodRun) {
		listen, accept := run.QueueSizes()
		for _, q := range []struct {
			name   string
			series []float64
		}{{"listen", listen}, {"accept", accept}} {
			var peak float64
			for _, v := range q.series {
				if v > peak {
					peak = v
				}
			}
			t.Rows = append(t.Rows, []string{
				label, q.name,
				f1(phaseMean(run, q.series, phaseDuring)),
				f1(peak),
				sparkline(downsample(q.series, 40)),
			})
		}
	}
	add("challenges", r.Puzzles)
	add("cookies", r.Cookies)
	return t
}

// Fig11Result compares the botnet's effective (completed-connection) rate
// under puzzles vs cookies (Fig. 11).
type Fig11Result struct {
	Puzzles *FloodRun
	Cookies *FloodRun
}

// Fig11 reuses the Fig. 10 scenario pair and extracts attacker completion
// rates.
func Fig11(scale Scale) (*Fig11Result, error) {
	f10, err := Fig10(scale)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Puzzles: f10.Puzzles, Cookies: f10.Cookies}, nil
}

// Table reports effective attack rates (cps) during the attack window.
func (r *Fig11Result) Table() Table {
	t := Table{
		Title:  "Fig 11 — effective attack rate (completed connections/s)",
		Header: []string{"defense", "mean-during", "series"},
	}
	for _, d := range []struct {
		label string
		run   *FloodRun
	}{{"challenges", r.Puzzles}, {"cookies", r.Cookies}} {
		rate := d.run.AttackerEstablishedRate()
		t.Rows = append(t.Rows, []string{
			d.label,
			f2(phaseMean(d.run, rate, phaseDuring)),
			sparkline(downsample(rate, 40)),
		})
	}
	return t
}

// ReductionFactor returns cookies/puzzles effective-rate ratio — the paper
// reports 225/4 ≈ 37×.
func (r *Fig11Result) ReductionFactor() float64 {
	p := phaseMean(r.Puzzles, r.Puzzles.AttackerEstablishedRate(), phaseDuring)
	c := phaseMean(r.Cookies, r.Cookies.AttackerEstablishedRate(), phaseDuring)
	if p <= 0 {
		return 0
	}
	return c / p
}
