package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// AblationOpportunisticGrid declares the §5 controller ablation pair:
// opportunistic challenges vs always-on.
func AblationOpportunisticGrid() sweep.Grid {
	return sweep.Grid{
		Base: Scenario{
			Defense:      DefensePuzzles,
			Params:       puzzle.Params{K: 2, M: 17, L: 32},
			Attack:       AttackConnFlood,
			ClientsSolve: true,
			BotsSolve:    true,
		},
		Axes: []sweep.Axis{sweep.Variants("controller",
			sweep.Point{Label: "opportunistic"},
			sweep.Point{Label: "always-on", Set: func(sc *Scenario) { sc.AlwaysChallenge = true }},
		)},
	}
}

// AblationOpportunisticResult contrasts the §5 opportunistic challenge
// controller against always-on challenges during a connection flood.
type AblationOpportunisticResult struct {
	Results []sweep.Result
	// Opportunistic and AlwaysOn are the live runs (nil on cache hits).
	Opportunistic *FloodRun
	AlwaysOn      *FloodRun
}

// AblationOpportunistic runs the design-choice ablation: the opportunistic
// controller lets clients connect instantly whenever queue slots exist (the
// Fig. 8 throughput spikes), while always-on challenges tax every
// connection even in peacetime. Both arms run in parallel on the shared
// runner.
func AblationOpportunistic(scale Scale) (*AblationOpportunisticResult, error) {
	results, runs, err := runFloodCells(scale, "ablation-opportunistic", "",
		AblationOpportunisticGrid().Expand(&scale),
		func(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
			cli := run.ClientThroughputMbps()
			return []sweep.Metric{
					{Name: "client_mbps_before", Value: phaseMean(run, cli, phaseBefore)},
					{Name: "client_mbps_during", Value: phaseMean(run, cli, phaseDuring)},
					{Name: "client_mbps_after", Value: phaseMean(run, cli, phaseAfter)},
				},
				[]sweep.Series{{Name: "client_mbps", Values: cli}}
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation opportunistic: %w", err)
	}
	return &AblationOpportunisticResult{
		Results: results, Opportunistic: runs[0], AlwaysOn: runs[1],
	}, nil
}

// Table contrasts peacetime and wartime client throughput.
func (r *AblationOpportunisticResult) Table() Table {
	t := Table{
		Title:  "Ablation — opportunistic vs always-on challenges",
		Header: []string{"controller", "cli-before", "cli-during", "cli-after"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Scenario.Label,
			f2(res.Metric("client_mbps_before")),
			f2(res.Metric("client_mbps_during")),
			f2(res.Metric("client_mbps_after")),
		})
	}
	return t
}

// AblationSolutionFloodGrid declares the §7 "solution floods" cell: a
// barrage of bogus solutions against a puzzle-protected server.
func AblationSolutionFloodGrid() sweep.Grid {
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("attack",
		sweep.Point{Label: "solution-flood", Set: func(sc *Scenario) {
			sc.Defense = DefensePuzzles
			sc.Params = puzzle.Params{K: 2, M: 17, L: 32}
			sc.Attack = AttackSolutionFlood
			sc.ClientsSolve = true
		}},
	)}}
}

// AblationSolutionFloodResult measures the §7 "solution floods" concern:
// server CPU under a barrage of bogus solutions.
type AblationSolutionFloodResult struct {
	Results []sweep.Result
	// Run is the live run (nil on a cache hit).
	Run *FloodRun
}

// AblationSolutionFlood floods the server with fabricated solutions and
// reports the induced verification load.
func AblationSolutionFlood(scale Scale) (*AblationSolutionFloodResult, error) {
	results, runs, err := runFloodCells(scale, "ablation-solutionflood", "",
		AblationSolutionFloodGrid().Expand(&scale),
		func(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
			cpu := run.ServerCPU()
			var peak float64
			for _, v := range cpu {
				if v > peak {
					peak = v
				}
			}
			m := run.Server.Metrics()
			return []sweep.Metric{
					{Name: "server_cpu_during", Value: phaseMean(run, cpu, phaseDuring)},
					{Name: "server_cpu_peak", Value: peak},
					{Name: "solutions_rejected", Value: float64(m.SolutionInvalid + m.SolutionMalformed)},
					{Name: "client_mbps_during", Value: phaseMean(run, run.ClientThroughputMbps(), phaseDuring)},
				},
				[]sweep.Series{{Name: "server_cpu_pct", Values: cpu}}
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation solution flood: %w", err)
	}
	return &AblationSolutionFloodResult{Results: results, Run: runs[0]}, nil
}

// Table reports server CPU and rejection counters.
func (r *AblationSolutionFloodResult) Table() Table {
	res := r.Results[0]
	return Table{
		Title:  "Ablation — solution flood (bogus-verification load, §7)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"server CPU during (%)", f2(res.Metric("server_cpu_during"))},
			{"server CPU peak (%)", f2(res.Metric("server_cpu_peak"))},
			{"solutions rejected", fmt.Sprintf("%d", int64(res.Metric("solutions_rejected")))},
			{"client Mbps during", f2(res.Metric("client_mbps_during"))},
		},
	}
}
