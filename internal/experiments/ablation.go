package experiments

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// AblationOpportunisticResult contrasts the §5 opportunistic challenge
// controller against always-on challenges during a connection flood.
type AblationOpportunisticResult struct {
	Opportunistic *FloodRun
	AlwaysOn      *FloodRun
}

// AblationOpportunistic runs the design-choice ablation: the opportunistic
// controller lets clients connect instantly whenever queue slots exist (the
// Fig. 8 throughput spikes), while always-on challenges tax every
// connection even in peacetime. Both arms run in parallel on the shared
// runner.
func AblationOpportunistic(scale Scale) (*AblationOpportunisticResult, error) {
	base := Scenario{
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 17, L: 32},
		Attack:       AttackConnFlood,
		ClientsSolve: true,
		BotsSolve:    true,
	}
	opp := base
	opp.Label = "opportunistic"
	always := base
	always.Label = "always-on"
	always.AlwaysChallenge = true
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(opp, always))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation opportunistic: %w", err)
	}
	return &AblationOpportunisticResult{Opportunistic: runs[0], AlwaysOn: runs[1]}, nil
}

// Table contrasts peacetime and wartime client throughput.
func (r *AblationOpportunisticResult) Table() Table {
	t := Table{
		Title:  "Ablation — opportunistic vs always-on challenges",
		Header: []string{"controller", "cli-before", "cli-during", "cli-after"},
	}
	for _, d := range []struct {
		label string
		run   *FloodRun
	}{{"opportunistic", r.Opportunistic}, {"always-on", r.AlwaysOn}} {
		cli := d.run.ClientThroughputMbps()
		t.Rows = append(t.Rows, []string{
			d.label,
			f2(phaseMean(d.run, cli, phaseBefore)),
			f2(phaseMean(d.run, cli, phaseDuring)),
			f2(phaseMean(d.run, cli, phaseAfter)),
		})
	}
	return t
}

// AblationSolutionFloodResult measures the §7 "solution floods" concern:
// server CPU under a barrage of bogus solutions.
type AblationSolutionFloodResult struct {
	Run *FloodRun
}

// AblationSolutionFlood floods the server with fabricated solutions and
// reports the induced verification load.
func AblationSolutionFlood(scale Scale) (*AblationSolutionFloodResult, error) {
	runs, err := RunScenarios(scale.Parallelism, scale.ApplyAll(Scenario{
		Label:        "solution-flood",
		Defense:      DefensePuzzles,
		Params:       puzzle.Params{K: 2, M: 17, L: 32},
		Attack:       AttackSolutionFlood,
		ClientsSolve: true,
	}))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation solution flood: %w", err)
	}
	return &AblationSolutionFloodResult{Run: runs[0]}, nil
}

// Table reports server CPU and rejection counters.
func (r *AblationSolutionFloodResult) Table() Table {
	cpu := r.Run.ServerCPU()
	var peak float64
	for _, v := range cpu {
		if v > peak {
			peak = v
		}
	}
	m := r.Run.Server.Metrics()
	return Table{
		Title:  "Ablation — solution flood (bogus-verification load, §7)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"server CPU during (%)", f2(phaseMean(r.Run, cpu, phaseDuring))},
			{"server CPU peak (%)", f2(peak)},
			{"solutions rejected", fmt.Sprintf("%d", m.SolutionInvalid+m.SolutionMalformed)},
			{"client Mbps during", f2(phaseMean(r.Run, r.Run.ClientThroughputMbps(), phaseDuring))},
		},
	}
}
