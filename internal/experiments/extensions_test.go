package experiments

import (
	"testing"
	"time"
)

func TestAblationMemoryBoundUniformity(t *testing.T) {
	res, err := AblationMemoryBound(Scale{})
	if err != nil {
		t.Fatalf("AblationMemoryBound: %v", err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 devices", len(res.Rows))
	}
	// Memory-bound solve times must be far more uniform across the device
	// mix than compute-bound ones — the §7 fairness argument.
	if res.MemCV >= res.HashCV {
		t.Errorf("membound CV %v not below hash CV %v", res.MemCV, res.HashCV)
	}
	if res.HashCV < 0.5 {
		t.Errorf("hash CV %v suspiciously low — device spread not modelled", res.HashCV)
	}
	if res.MemCV > 0.35 {
		t.Errorf("membound CV %v too high — memory rates should be near-uniform", res.MemCV)
	}
	// The slowest device must see a dramatic speed-up relative to its
	// hash-bound time (the Pi profits most).
	for _, row := range res.Rows {
		if row.Device.Name == "D1" {
			if row.MemSolveTime >= row.HashSolveTime {
				t.Errorf("D1 membound %v not faster than hash %v",
					row.MemSolveTime, row.HashSolveTime)
			}
		}
	}
	if s := res.Table().String(); len(s) == 0 {
		t.Error("empty table")
	}
}

func TestAblationAdaptiveRaisesDifficulty(t *testing.T) {
	// A longer attack gives the per-5 s controller room to climb, and a
	// longer tail lets the difficulty decay after the protection-release
	// window.
	scale := tinyScale()
	scale.Duration = 160 * time.Second
	scale.AttackStart = 15 * time.Second
	scale.AttackStop = 105 * time.Second
	res, err := AblationAdaptive(scale)
	if err != nil {
		t.Fatalf("AblationAdaptive: %v", err)
	}
	if res.PeakM() <= 13 {
		t.Errorf("peak m = %v, want the controller to climb above the m=12 baseline", res.PeakM())
	}
	// After the attack and the protection-release window the difficulty
	// decays towards the baseline.
	if res.FinalM() >= res.PeakM() {
		t.Errorf("final m = %v did not decay from peak %v", res.FinalM(), res.PeakM())
	}
	// The smart bots keep solutions fresh, so at fixed m=12 they flood
	// effectively; once the controller has climbed (late attack), the
	// adaptive server throttles them harder.
	late := func(run *FloodRun) float64 {
		rate := run.AttackerEstablishedRate()
		lo, hi := 75, 105
		if hi > len(rate) {
			hi = len(rate)
		}
		var sum float64
		for _, v := range rate[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	fixedRate := late(res.Fixed)
	adaptiveRate := late(res.Adaptive)
	if adaptiveRate >= fixedRate {
		t.Errorf("late-attack adaptive attacker rate %v not below fixed %v", adaptiveRate, fixedRate)
	}
	if s := res.Table().String(); len(s) == 0 {
		t.Error("empty table")
	}
}
