package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/tcppuzzles/tcppuzzles/sim/runner"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// runCells is the shared executor behind every figure/table driver: it
// takes an experiment's expanded scenario cells and a per-cell compute
// function, fans the cells out across the work-stealing runner
// (scale.Parallelism wide), and turns each completed cell into a
// sweep.Result.
//
// Execution options come from the scale: when scale.Cache is set, cells
// whose canonical scenario hash is already stored skip compute entirely
// (the cache's hit counter is the proof); when scale.Sinks is set, each
// Result streams out in grid order as runs land — the sweep.Stream
// reorder buffer keeps sink output byte-identical at every worker count.
//
// cacheNS overrides the cache namespace when two experiments run
// identical cells with identical metrics (figs. 10 and 11); empty means
// "use the experiment name".
func runCells(scale Scale, experiment, cacheNS string, cells []Scenario,
	compute func(i int, sc Scenario) ([]sweep.Metric, []sweep.Series, error),
) ([]sweep.Result, error) {
	if cacheNS == "" {
		cacheNS = experiment
	}
	canon := make([]Scenario, len(cells))
	for i := range cells {
		canon[i] = cells[i].Defaults()
		// Shards and Speculative are execution-only (byte-identical
		// results either way) and excluded from the cache hash, so
		// applying them after canonicalisation is safe.
		if scale.Shards != 0 {
			canon[i].Shards = scale.Shards
		}
		if scale.Speculative {
			canon[i].Speculative = true
		}
	}
	results := make([]sweep.Result, len(cells))
	stream := sweep.NewStream(scale.Sinks...)
	// Process-wide peak heap across the grid's computed cells, sampled as
	// each cell lands. Advisory (GC timing dependent), so it lives in
	// Exec alongside the equally scheduling-dependent pool stats.
	var (
		peakMu                     sync.Mutex
		peakHeapAlloc, peakHeapSys uint64
	)
	stats, err := runner.ForEachStats(scale.Parallelism, len(cells), func(i int) error {
		var (
			metrics []sweep.Metric
			series  []sweep.Series
			cached  bool
		)
		if scale.Cache != nil {
			metrics, series, cached = scale.Cache.Get(cacheNS, canon[i])
		}
		if !cached {
			var err error
			metrics, series, err = compute(i, canon[i])
			if err != nil {
				if canon[i].Label != "" {
					// Name the failing grid cell; a bare job index doesn't
					// identify which (k, m)/defense/rate was at fault.
					return fmt.Errorf("scenario %q: %w", canon[i].Label, err)
				}
				return err
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			peakMu.Lock()
			if ms.HeapAlloc > peakHeapAlloc {
				peakHeapAlloc = ms.HeapAlloc
			}
			if ms.HeapSys > peakHeapSys {
				peakHeapSys = ms.HeapSys
			}
			peakMu.Unlock()
			if scale.Debug != nil {
				fmt.Fprintf(scale.Debug, "[%s] cell %q: heap-alloc=%dMiB heap-sys=%dMiB\n",
					experiment, canon[i].Label, ms.HeapAlloc>>20, ms.HeapSys>>20)
			}
			if scale.Cache != nil {
				if err := scale.Cache.Put(cacheNS, canon[i], metrics, series); err != nil {
					return err
				}
			}
		}
		results[i] = sweep.Result{
			Experiment: experiment, Scenario: canon[i],
			Metrics: metrics, Series: series,
		}
		return stream.Emit(i, results[i])
	})
	if err != nil {
		return nil, err
	}
	// Attach the pool's backpressure stats (shared across the grid) and
	// narrate them when debugging. Exec is json-skipped and uncached, so
	// sink bytes and determinism comparisons never see it.
	exec := &sweep.ExecStats{
		Workers:          stats.Workers,
		Jobs:             stats.Jobs,
		LocalClaims:      stats.LocalClaims,
		Steals:           stats.Steals,
		FailedStealScans: stats.FailedStealScans,
		MeanQueueDepth:   stats.MeanQueueDepth,
		PeakHeapAlloc:    peakHeapAlloc,
		PeakHeapSys:      peakHeapSys,
	}
	for i := range results {
		results[i].Exec = exec
	}
	if scale.Debug != nil {
		fmt.Fprintf(scale.Debug,
			"[%s] runner: workers=%d jobs=%d local=%d steals=%d failed-scans=%d mean-queue-depth=%.1f peak-heap-alloc=%dMiB peak-heap-sys=%dMiB\n",
			experiment, exec.Workers, exec.Jobs, exec.LocalClaims, exec.Steals,
			exec.FailedStealScans, exec.MeanQueueDepth,
			exec.PeakHeapAlloc>>20, exec.PeakHeapSys>>20)
	}
	return results, nil
}

// runFloodCells executes flood-scenario cells through runCells, keeping
// the live FloodRun of every cell that actually simulated (nil for cache
// hits) so callers can expose raw measurement state to tests and
// benchmarks. Driver tables must render from the returned Results, never
// from the runs, or cached regenerations would render differently.
func runFloodCells(scale Scale, experiment, cacheNS string, cells []Scenario,
	extract func(*FloodRun) ([]sweep.Metric, []sweep.Series),
) ([]sweep.Result, []*FloodRun, error) {
	runs := make([]*FloodRun, len(cells))
	var debugMu sync.Mutex
	results, err := runCells(scale, experiment, cacheNS, cells, func(i int, sc Scenario) ([]sweep.Metric, []sweep.Series, error) {
		run, err := RunFlood(sc)
		if err != nil {
			return nil, nil, err
		}
		if scale.Debug != nil {
			// Per-cell shard load balance: event counts show placement
			// skew, barrier waits show which shards idled at windows, and
			// the min/mean/max applied window widths make the adaptive
			// per-pair lookahead observable (mean above min = widening).
			st := run.Net.ShardStats()
			debugMu.Lock()
			fmt.Fprintf(scale.Debug, "[%s] cell %q: shards=%d events=%v windows=%d barrier-wait=%v lookahead=%v/%v/%v\n",
				experiment, sc.Label, run.Net.Shards(), st.Events, st.Windows, st.BarrierWait,
				st.LookaheadMin, st.LookaheadMean, st.LookaheadMax)
			if sc.Speculative {
				// Speculation health: how often shards ran past their
				// lookahead bound, how many rollbacks that cost, and how
				// much fired work was discarded. All deterministic.
				fmt.Fprintf(scale.Debug, "[%s] cell %q: speculative-windows=%d rollbacks=%d wasted-events=%d\n",
					experiment, sc.Label, st.SpeculativeWindows, st.Rollbacks, st.WastedEvents)
			}
			debugMu.Unlock()
		}
		runs[i] = run
		metrics, series := extract(run)
		return metrics, series, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results, runs, nil
}

// RunSweep executes an arbitrary user-declared scenario grid with the
// standard flood metric set, streaming each cell's Result to scale.Sinks
// and caching cells under the "sweep" experiment namespace. It is the
// engine behind the public sim.RunSweep.
func RunSweep(scale Scale, grid sweep.Grid) ([]sweep.Result, error) {
	results, _, err := runFloodCells(scale, "sweep", "", grid.Expand(nil), StandardMetrics)
	return results, err
}

// StandardMetrics is the default flood measurement set used by RunSweep:
// phase means of client goodput, the effective attack rate, and the
// headline per-bucket series.
func StandardMetrics(run *FloodRun) ([]sweep.Metric, []sweep.Series) {
	cli := run.ClientThroughputMbps()
	metrics := []sweep.Metric{
		{Name: "client_mbps_before", Value: phaseMean(run, cli, phaseBefore)},
		{Name: "client_mbps_during", Value: phaseMean(run, cli, phaseDuring)},
		{Name: "client_mbps_after", Value: phaseMean(run, cli, phaseAfter)},
		{Name: "attacker_established_cps", Value: run.AttackWindowMean(run.AttackerEstablishedRate())},
	}
	series := []sweep.Series{
		{Name: "client_mbps", Values: cli},
		{Name: "server_mbps", Values: run.ServerThroughputMbps()},
		{Name: "server_cpu_pct", Values: run.ServerCPU()},
		{Name: "attacker_established_cps", Values: run.AttackerEstablishedRate()},
	}
	return metrics, series
}
