package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/membound"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// UniformityRow compares one device's solve times under the two schemes.
type UniformityRow struct {
	Device        cpumodel.Device
	HashSolveTime time.Duration
	MemSolveTime  time.Duration
}

// UniformityResult is the §7 fairness study: compute-bound (SHA-256)
// puzzles versus memory-bound puzzles across the full device mix, with the
// coefficient of variation of solve times as the fairness metric.
type UniformityResult struct {
	HashParams puzzle.Params
	MemParams  membound.Params
	Rows       []UniformityRow
	// HashCV and MemCV are std/mean of solve time across devices; smaller
	// means fairer.
	HashCV float64
	MemCV  float64
}

// AblationMemoryBound evaluates the memory-bound alternative of §7: the
// Nash-equivalent expected work is charged once as SHA-256 operations and
// once as dependent memory accesses, for every device class the paper
// profiles (three client Xeons plus the four Raspberry Pis).
func AblationMemoryBound() *UniformityResult {
	hashParams := puzzle.Params{K: 2, M: 17, L: 32}
	// Expected accesses chosen so the *fleet-average* wall-clock cost
	// matches the hash scheme: 2^12 trials × 64 lookups = 262144 accesses,
	// numerically equal to the hash scheme's k·2^m = 262144 operations.
	memParams := membound.Params{M: 12, Walk: 64}

	devices := append(append([]cpumodel.Device{}, cpumodel.ClientCPUs()...),
		cpumodel.IoTDevices()...)
	res := &UniformityResult{HashParams: hashParams, MemParams: memParams}
	var hashTimes, memTimes []float64
	for _, dev := range devices {
		// Expected costs: the geometric search does 2^m trials per
		// solution on average.
		hashOps := float64(hashParams.K) * float64(uint64(1)<<hashParams.M)
		row := UniformityRow{
			Device:        dev,
			HashSolveTime: dev.TimeFor(hashOps),
			MemSolveTime:  dev.TimeForAccesses(memParams.ExpectedAccesses()),
		}
		res.Rows = append(res.Rows, row)
		hashTimes = append(hashTimes, row.HashSolveTime.Seconds())
		memTimes = append(memTimes, row.MemSolveTime.Seconds())
	}
	hm, hs := stats.MeanStd(hashTimes)
	mm, ms := stats.MeanStd(memTimes)
	if hm > 0 {
		res.HashCV = hs / hm
	}
	if mm > 0 {
		res.MemCV = ms / mm
	}
	return res
}

// Table renders the uniformity study.
func (r *UniformityResult) Table() Table {
	t := Table{
		Title:  "Ablation — memory-bound puzzles: solve-time uniformity (§7)",
		Header: []string{"device", "hash-solve", "membound-solve"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Device.Name,
			row.HashSolveTime.Round(time.Millisecond).String(),
			row.MemSolveTime.Round(time.Millisecond).String(),
		})
	}
	t.Rows = append(t.Rows, []string{"CV (std/mean)", f3(r.HashCV), f3(r.MemCV)})
	return t
}
