package experiments

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/membound"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// uniformityHashParams is the Nash difficulty the memory-bound scheme is
// compared against.
var uniformityHashParams = puzzle.Params{K: 2, M: 17, L: 32}

// uniformityMemParams charges the Nash-equivalent expected work as
// dependent memory accesses: 2^12 trials × 64 lookups = 262144 accesses,
// numerically equal to the hash scheme's k·2^m = 262144 operations.
var uniformityMemParams = membound.Params{M: 12, Walk: 64}

// uniformityDevices is the full device mix the paper profiles: three
// client Xeons plus the four Raspberry Pis.
func uniformityDevices() []cpumodel.Device {
	return append(append([]cpumodel.Device{}, cpumodel.ClientCPUs()...),
		cpumodel.IoTDevices()...)
}

// AblationMemoryBoundGrid declares one cell per profiled device.
func AblationMemoryBoundGrid() sweep.Grid {
	devices := uniformityDevices()
	points := make([]sweep.Point, len(devices))
	for i, dev := range devices {
		points[i] = sweep.Point{Label: dev.Name}
	}
	return sweep.Grid{Axes: []sweep.Axis{sweep.Variants("device", points...)}}
}

// UniformityRow compares one device's solve times under the two schemes.
type UniformityRow struct {
	Device        cpumodel.Device
	HashSolveTime time.Duration
	MemSolveTime  time.Duration
}

// UniformityResult is the §7 fairness study: compute-bound (SHA-256)
// puzzles versus memory-bound puzzles across the full device mix, with the
// coefficient of variation of solve times as the fairness metric.
type UniformityResult struct {
	Results    []sweep.Result
	HashParams puzzle.Params
	MemParams  membound.Params
	Rows       []UniformityRow
	// HashCV and MemCV are std/mean of solve time across devices; smaller
	// means fairer.
	HashCV float64
	MemCV  float64
}

// uniformityTimes returns one device's expected solve times under both
// schemes. Expected costs: the geometric search does 2^m trials per
// solution on average.
func uniformityTimes(dev cpumodel.Device) (hash, mem time.Duration) {
	hashOps := float64(uniformityHashParams.K) * float64(uint64(1)<<uniformityHashParams.M)
	return dev.TimeFor(hashOps), dev.TimeForAccesses(uniformityMemParams.ExpectedAccesses())
}

// AblationMemoryBound evaluates the memory-bound alternative of §7: the
// Nash-equivalent expected work is charged once as SHA-256 operations and
// once as dependent memory accesses, for every device class the paper
// profiles. The scale supplies execution options only.
func AblationMemoryBound(scale Scale) (*UniformityResult, error) {
	devices := uniformityDevices()
	results, err := runCells(scale, "ablation-membound", "", AblationMemoryBoundGrid().Expand(nil),
		func(i int, _ Scenario) ([]sweep.Metric, []sweep.Series, error) {
			hashT, memT := uniformityTimes(devices[i])
			return []sweep.Metric{
				{Name: "hash_solve_ms", Value: float64(hashT) / float64(time.Millisecond)},
				{Name: "mem_solve_ms", Value: float64(memT) / float64(time.Millisecond)},
			}, nil, nil
		})
	if err != nil {
		return nil, err
	}
	res := &UniformityResult{
		Results:    results,
		HashParams: uniformityHashParams,
		MemParams:  uniformityMemParams,
	}
	var hashTimes, memTimes []float64
	for i, r := range results {
		row := UniformityRow{
			Device:        devices[i],
			HashSolveTime: time.Duration(r.Metric("hash_solve_ms") * float64(time.Millisecond)),
			MemSolveTime:  time.Duration(r.Metric("mem_solve_ms") * float64(time.Millisecond)),
		}
		res.Rows = append(res.Rows, row)
		hashTimes = append(hashTimes, row.HashSolveTime.Seconds())
		memTimes = append(memTimes, row.MemSolveTime.Seconds())
	}
	hm, hs := stats.MeanStd(hashTimes)
	mm, ms := stats.MeanStd(memTimes)
	if hm > 0 {
		res.HashCV = hs / hm
	}
	if mm > 0 {
		res.MemCV = ms / mm
	}
	return res, nil
}

// Table renders the uniformity study.
func (r *UniformityResult) Table() Table {
	t := Table{
		Title:  "Ablation — memory-bound puzzles: solve-time uniformity (§7)",
		Header: []string{"device", "hash-solve", "membound-solve"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Device.Name,
			row.HashSolveTime.Round(time.Millisecond).String(),
			row.MemSolveTime.Round(time.Millisecond).String(),
		})
	}
	t.Rows = append(t.Rows, []string{"CV (std/mean)", f3(r.HashCV), f3(r.MemCV)})
	return t
}
