package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "Demo",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"longer-cell", "2"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Columns are aligned: "value" starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	for _, line := range lines[2:] {
		if len(line) <= idx {
			t.Fatalf("row shorter than header: %q", line)
		}
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	got := downsample(in, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("downsample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// No-op when already small enough.
	if out := downsample(in, 100); len(out) != len(in) {
		t.Errorf("downsample enlarged: %d", len(out))
	}
	if out := downsample(nil, 4); len(out) != 0 {
		t.Errorf("downsample(nil) = %v", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("sparkline(nil) = %q", got)
	}
	out := sparkline([]float64{0, 1, 2, 4})
	if len([]rune(out)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(out)))
	}
	// All-zero series renders the lowest level without dividing by zero.
	flat := sparkline([]float64{0, 0, 0})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

// Determinism at the experiment level: identical configs produce identical
// series, bit for bit.
func TestRunFloodDeterministic(t *testing.T) {
	cfg := tinyScale().Apply(Scenario{
		Defense:      DefenseCookies, // cheap, no solving
		Attack:       AttackSYNFlood,
		ClientsSolve: true,
	})
	a, err := RunFlood(cfg)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	b, err := RunFlood(cfg)
	if err != nil {
		t.Fatalf("RunFlood: %v", err)
	}
	sa := a.ServerThroughputMbps()
	sb := b.ServerThroughputMbps()
	if len(sa) != len(sb) {
		t.Fatalf("series lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, sa[i], sb[i])
		}
	}
}
