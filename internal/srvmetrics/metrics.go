// Package srvmetrics holds the protected server's measurement state. It
// lives below both the server simulator and the defense plugin API: core
// server code (internal/serversim) and registered defense strategies
// (package defense) account into the same Metrics through the ServerCtx
// facade, so a plugin's counters land in the same figures the paper draws.
package srvmetrics

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// Metrics collects the server-side measurements the paper's figures draw
// on. Counters are cumulative; series are bucketed by the configured metric
// bucket.
type Metrics struct {
	// BytesIn and BytesOut feed the server throughput plots (Figs. 7, 8).
	BytesIn  *stats.Series
	BytesOut *stats.Series

	// ListenLen and AcceptLen trace queue occupancy (Fig. 10).
	ListenLen stats.Gauge
	AcceptLen stats.Gauge
	// DifficultyM traces the adaptive controller's difficulty setting.
	DifficultyM stats.Gauge

	// ChallengesSent / PlainSynAcks / CookieSynAcks reproduce the Fig. 8
	// sparkline distinguishing challenged from unchallenged SYN-ACKs.
	ChallengesSent *stats.Series
	PlainSynAcks   *stats.Series
	CookieSynAcks  *stats.Series

	// Established tracks completed handshakes per second, and
	// EstablishedBySrc the same per source address (Figs. 11, 13, 14).
	Established      *stats.Series
	EstablishedBySrc map[[4]byte]*stats.Series

	SYNsReceived        uint64
	SYNsDropped         uint64
	AcceptOverflow      uint64
	CookieFailures      uint64
	SolutionsVerified   uint64
	SolutionInvalid     uint64
	SolutionMalformed   uint64
	AcksWithoutSolution uint64
	DeceptionIgnored    uint64
	ReplaysBlocked      uint64
	EncodeFailures      uint64
	RSTsSent            uint64
	RequestsServed      uint64
	IdleTimeouts        uint64

	// aggMatch, when set, routes matching sources' establishments into
	// the single EstablishedAgg series instead of per-source map entries,
	// keeping server-side attacker accounting O(1) in population size —
	// a million macro sources cost one series, not a million.
	aggMatch       func([4]byte) bool
	EstablishedAgg *stats.Series

	bucket time.Duration
}

// New returns an empty Metrics with the given bucket width.
func New(bucket time.Duration) *Metrics {
	return &Metrics{
		BytesIn:          stats.NewSeries(bucket),
		BytesOut:         stats.NewSeries(bucket),
		ChallengesSent:   stats.NewSeries(bucket),
		PlainSynAcks:     stats.NewSeries(bucket),
		CookieSynAcks:    stats.NewSeries(bucket),
		Established:      stats.NewSeries(bucket),
		EstablishedBySrc: make(map[[4]byte]*stats.Series),
		bucket:           bucket,
	}
}

// AggregateSrcs registers a source-population predicate: establishments
// from matching sources are accumulated in one aggregate series rather
// than per source. Register before the simulation runs; per-source
// queries (EstablishedRateFor) do not see aggregated sources.
func (m *Metrics) AggregateSrcs(match func([4]byte) bool) {
	m.aggMatch = match
	m.EstablishedAgg = stats.NewSeries(m.bucket)
}

// AggregateEstablishedRate returns the aggregated population's completed
// connections per second. Integer bucket counts, so for a population with
// the same establishments it is bit-identical to EstablishedRateFor over
// the member list.
func (m *Metrics) AggregateEstablishedRate(until time.Duration) []float64 {
	if m.EstablishedAgg == nil {
		return stats.NewSeries(m.bucket).RatePerSecond(until)
	}
	return m.EstablishedAgg.RatePerSecond(until)
}

// AggregateEstablishedTotal counts the aggregated population's completed
// connections over [from, to).
func (m *Metrics) AggregateEstablishedTotal(from, to time.Duration) float64 {
	if m.EstablishedAgg == nil {
		return 0
	}
	return m.EstablishedAgg.SumRange(from, to)
}

// RecordEstablished accounts one completed handshake, total and per source.
func (m *Metrics) RecordEstablished(at time.Duration, peer tcpkit.PeerKey) {
	m.Established.Add(at, 1)
	if m.aggMatch != nil && m.aggMatch(peer.IP) {
		m.EstablishedAgg.Add(at, 1)
		return
	}
	srcSeries, ok := m.EstablishedBySrc[peer.IP]
	if !ok {
		srcSeries = stats.NewSeries(m.bucket)
		m.EstablishedBySrc[peer.IP] = srcSeries
	}
	srcSeries.Add(at, 1)
}

// EstablishedRateFor sums completed connections per second over sources in
// the given set — the "effective attack rate" of Figs. 11/13/14 when the
// set is the botnet.
func (m *Metrics) EstablishedRateFor(srcs [][4]byte, until time.Duration) []float64 {
	total := stats.NewSeries(m.bucket)
	for _, src := range srcs {
		s, ok := m.EstablishedBySrc[src]
		if !ok {
			continue
		}
		for i, v := range s.Values(until) {
			total.Add(time.Duration(i)*m.bucket, v)
		}
	}
	return total.RatePerSecond(until)
}

// EstablishedTotalFor counts completed connections for the given sources
// over [from, to).
func (m *Metrics) EstablishedTotalFor(srcs [][4]byte, from, to time.Duration) float64 {
	var sum float64
	for _, src := range srcs {
		if s, ok := m.EstablishedBySrc[src]; ok {
			sum += s.SumRange(from, to)
		}
	}
	return sum
}
