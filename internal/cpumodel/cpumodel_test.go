package cpumodel

import (
	"math"
	"testing"
	"time"
)

func TestFleetWavMatchesPaper(t *testing.T) {
	wav, err := FleetWav(ClientCPUs(), 400*time.Millisecond)
	if err != nil {
		t.Fatalf("FleetWav: %v", err)
	}
	// The paper measures w_av = 140630; the calibrated profiles must land
	// within 1%.
	if math.Abs(wav-140630)/140630 > 0.01 {
		t.Errorf("fleet w_av = %v, want ≈ 140630", wav)
	}
}

func TestTable1Profiles(t *testing.T) {
	wantIn400 := map[string]float64{"D1": 19901, "D2": 26563, "D3": 27987, "D4": 29732}
	profiles := ProfileDevices(IoTDevices(), 400*time.Millisecond)
	for _, p := range profiles {
		want := wantIn400[p.Device.Name]
		// The paper's own columns disagree by a few percent (rate·0.4 vs
		// measured); accept 8%.
		if math.Abs(p.HashesIn400ms-want)/want > 0.08 {
			t.Errorf("%s hashes in 400ms = %v, want ≈ %v", p.Device.Name, p.HashesIn400ms, want)
		}
	}
}

func TestDeviceTimeFor(t *testing.T) {
	d := Device{Name: "x", HashRate: 1000}
	if got := d.TimeFor(500); got != 500*time.Millisecond {
		t.Errorf("TimeFor(500) = %v, want 500ms", got)
	}
	if got := d.HashesIn(2 * time.Second); got != 2000 {
		t.Errorf("HashesIn(2s) = %v, want 2000", got)
	}
	zero := Device{}
	if got := zero.TimeFor(1); got < time.Duration(1<<61) {
		t.Errorf("zero-rate TimeFor = %v, want effectively infinite", got)
	}
}

func TestCPUChargeSerialises(t *testing.T) {
	c := NewCPU(Device{Name: "x", HashRate: 1000}, time.Second)
	d1 := c.Charge(0, 500)                    // finishes at 0.5s
	d2 := c.Charge(100*time.Millisecond, 500) // queues, finishes at 1.0s
	if d1 != 500*time.Millisecond {
		t.Errorf("first job done at %v, want 500ms", d1)
	}
	if d2 != time.Second {
		t.Errorf("second job done at %v, want 1s", d2)
	}
	if got := c.Backlog(200 * time.Millisecond); got != 800*time.Millisecond {
		t.Errorf("Backlog = %v, want 800ms", got)
	}
	if got := c.Backlog(2 * time.Second); got != 0 {
		t.Errorf("Backlog after idle = %v, want 0", got)
	}
}

func TestCPUUtilisation(t *testing.T) {
	c := NewCPU(Device{Name: "x", HashRate: 1000}, time.Second)
	c.Charge(0, 500) // busy 0–0.5s → 50% in bucket 0
	u := c.Utilisation(2 * time.Second)
	if math.Abs(u[0]-50) > 1e-6 {
		t.Errorf("bucket 0 utilisation = %v, want 50", u[0])
	}
	if u[1] != 0 {
		t.Errorf("bucket 1 utilisation = %v, want 0", u[1])
	}
	// Saturating work caps at 100%.
	c2 := NewCPU(Device{Name: "y", HashRate: 1000}, time.Second)
	c2.Charge(0, 5000)
	for i, v := range c2.Utilisation(3 * time.Second) {
		if v > 100 {
			t.Errorf("bucket %d utilisation = %v > 100", i, v)
		}
	}
}

func TestHashCurveMonotone(t *testing.T) {
	curve := HashCurve(CPU1, 100*time.Millisecond, time.Second)
	if len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Errorf("curve not increasing at %d: %v ≤ %v", i, curve[i], curve[i-1])
		}
	}
	// Endpoint equals rate × 1s.
	if math.Abs(curve[9]-CPU1.HashRate) > 1e-6 {
		t.Errorf("curve end = %v, want %v", curve[9], CPU1.HashRate)
	}
}

func TestServerVerificationHeadroom(t *testing.T) {
	// §7: a server at 10.8 M hashes/s needs an attacker to send ~5.4 M
	// packets/s (2 hashes per verification at k=2) to saturate CPU.
	perVerify := 2.0
	pktRate := Server.HashRate / perVerify
	if math.Abs(pktRate-5_400_000) > 1 {
		t.Errorf("saturating packet rate = %v, want 5.4e6", pktRate)
	}
}

func TestFleetWavEmpty(t *testing.T) {
	if _, err := FleetWav(nil, time.Second); err == nil {
		t.Error("FleetWav(nil) succeeded")
	}
}
