// Package cpumodel models the computational capabilities of the machines in
// the paper's testbed: hash rates of client/attacker CPUs (Fig. 3a), the
// server, and the IoT devices of Table 1, plus busy-time accounting that
// yields %CPU series (Fig. 9).
package cpumodel

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
)

// Device is a machine class with a SHA-256 hashing rate and a random
// memory-access rate. Hash rates span ~9× across the paper's device mix
// while memory rates span only ~2× — DRAM latency is far more uniform than
// compute throughput, which is exactly why §7 proposes memory-bound
// puzzles for fairness.
type Device struct {
	// Name identifies the device class (e.g. "cpu1", "D3").
	Name string
	// HashRate is sustained SHA-256 operations per second.
	HashRate float64
	// MemAccessRate is sustained dependent (uncached) memory lookups per
	// second.
	MemAccessRate float64
}

// HashesIn returns the number of hashes the device performs in d.
func (d Device) HashesIn(dur time.Duration) float64 {
	return d.HashRate * dur.Seconds()
}

// TimeFor returns the time the device needs for n hash operations.
func (d Device) TimeFor(hashes float64) time.Duration {
	if d.HashRate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Duration(hashes / d.HashRate * float64(time.Second))
}

// TimeForAccesses returns the time the device needs for n dependent memory
// lookups (the membound cost unit).
func (d Device) TimeForAccesses(accesses float64) time.Duration {
	if d.MemAccessRate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Duration(accesses / d.MemAccessRate * float64(time.Second))
}

// Paper device profiles. Client CPU rates are calibrated so the fleet
// average of hashes in the 400 ms budget reproduces the paper's
// w_av = 140630 (Fig. 3a); the Raspberry Pi rates are Table 1 verbatim; the
// server rate is §7's 10.8 M hashes/second.
var (
	// CPU1 is the Intel Xeon E3-1260L quad-core at 2.4 GHz.
	CPU1 = Device{Name: "cpu1", HashRate: 450000, MemAccessRate: 16_000_000}
	// CPU2 is the Intel Xeon X3210 quad-core at 2.13 GHz.
	CPU2 = Device{Name: "cpu2", HashRate: 330000, MemAccessRate: 14_000_000}
	// CPU3 is the Intel Xeon at 3 GHz.
	CPU3 = Device{Name: "cpu3", HashRate: 274725, MemAccessRate: 13_000_000}
	// Server is the dual Xeon hexa-core HP Proliant (10.8 M hashes/s, §7).
	Server = Device{Name: "server", HashRate: 10_800_000, MemAccessRate: 20_000_000}

	// D1 is a Raspberry Pi Model B (700 MHz ARM11), Table 1.
	D1 = Device{Name: "D1", HashRate: 49617, MemAccessRate: 8_000_000}
	// D2 is a Raspberry Pi Zero (1 GHz ARM11), Table 1.
	D2 = Device{Name: "D2", HashRate: 68960, MemAccessRate: 9_000_000}
	// D3 is a Raspberry Pi 2 Model B (quad Cortex-A53 1.2 GHz), Table 1.
	D3 = Device{Name: "D3", HashRate: 70009, MemAccessRate: 10_500_000}
	// D4 is a Raspberry Pi 3 Model B (quad BCM2837 1.2 GHz), Table 1.
	D4 = Device{Name: "D4", HashRate: 74201, MemAccessRate: 11_000_000}
)

// ClientCPUs is the paper's client/attacker CPU mix (Fig. 3a).
func ClientCPUs() []Device { return []Device{CPU1, CPU2, CPU3} }

// IoTDevices is the paper's Raspberry Pi fleet (Table 1).
func IoTDevices() []Device { return []Device{D1, D2, D3, D4} }

// CPU serialises hash work on a device and accounts busy time so that
// utilisation can be plotted. CPU is not safe for concurrent use; the
// simulator is single-threaded.
type CPU struct {
	dev    Device
	freeAt time.Duration
	busy   *stats.Series
}

// NewCPU returns a CPU for the device, accounting busy time into buckets of
// the given width.
func NewCPU(dev Device, bucket time.Duration) *CPU {
	return &CPU{dev: dev, busy: stats.NewSeries(bucket)}
}

// Device returns the underlying device.
func (c *CPU) Device() Device { return c.dev }

// Charge schedules hashes at time now, queueing behind earlier work, and
// returns the completion time.
func (c *CPU) Charge(now time.Duration, hashes float64) time.Duration {
	start := now
	if c.freeAt > start {
		start = c.freeAt
	}
	dur := c.dev.TimeFor(hashes)
	done := start + dur
	c.busy.AddSpan(start, done, dur.Seconds())
	c.freeAt = done
	return done
}

// Backlog returns how far in the future the CPU is already committed at now.
func (c *CPU) Backlog(now time.Duration) time.Duration {
	if c.freeAt <= now {
		return 0
	}
	return c.freeAt - now
}

// Utilisation returns the per-bucket CPU utilisation in percent over
// [0, until).
func (c *CPU) Utilisation(until time.Duration) []float64 {
	vals := c.busy.Values(until)
	out := make([]float64, len(vals))
	scale := 100 / c.busy.Bucket().Seconds()
	for i, v := range vals {
		u := v * scale
		if u > 100 {
			u = 100
		}
		out[i] = u
	}
	return out
}

// Profile is one row of Table 1 / one curve of Fig. 3a.
type Profile struct {
	Device          Device
	HashesIn400ms   float64
	HashesPerSecond float64
}

// ProfileDevices evaluates the Table 1 metrics for a device fleet.
func ProfileDevices(devs []Device, budget time.Duration) []Profile {
	out := make([]Profile, 0, len(devs))
	for _, d := range devs {
		out = append(out, Profile{
			Device:          d,
			HashesIn400ms:   d.HashesIn(budget),
			HashesPerSecond: d.HashRate,
		})
	}
	return out
}

// HashCurve returns the Fig. 3a curve for a device: cumulative hashes at
// each sample step up to horizon.
func HashCurve(dev Device, step, horizon time.Duration) []float64 {
	var out []float64
	for t := step; t <= horizon; t += step {
		out = append(out, dev.HashesIn(t))
	}
	return out
}

// FleetWav returns the fleet-average hashes available within the budget
// (the paper's w_av).
func FleetWav(devs []Device, budget time.Duration) (float64, error) {
	if len(devs) == 0 {
		return 0, fmt.Errorf("cpumodel: empty fleet")
	}
	var sum float64
	for _, d := range devs {
		sum += d.HashesIn(budget)
	}
	return sum / float64(len(devs)), nil
}
