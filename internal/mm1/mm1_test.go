package mm1

import (
	"errors"
	"math"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/game"
)

func TestSojournTime(t *testing.T) {
	got, err := SojournTime(10, 5)
	if err != nil {
		t.Fatalf("SojournTime: %v", err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SojournTime = %v, want 0.2", got)
	}
	if _, err := SojournTime(10, 10); !errors.Is(err, ErrUnstable) {
		t.Errorf("saturated error = %v, want ErrUnstable", err)
	}
}

func TestQueueLength(t *testing.T) {
	got, err := QueueLength(10, 5)
	if err != nil {
		t.Fatalf("QueueLength: %v", err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("QueueLength = %v, want 1", got)
	}
	if _, err := QueueLength(1, 2); !errors.Is(err, ErrUnstable) {
		t.Errorf("unstable error = %v", err)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	const (
		mu     = 100.0
		lambda = 50.0
	)
	res, err := Simulate(mu, lambda, 200000, 42)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	want, err := SojournTime(mu, lambda)
	if err != nil {
		t.Fatalf("SojournTime: %v", err)
	}
	if math.Abs(res.MeanSojourn-want)/want > 0.05 {
		t.Errorf("simulated sojourn %v, analytic %v", res.MeanSojourn, want)
	}
	if math.Abs(res.Utilisation-0.5) > 0.05 {
		t.Errorf("utilisation = %v, want ≈ 0.5", res.Utilisation)
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	if _, err := Simulate(0, 1, 10, 1); err == nil {
		t.Error("Simulate(mu=0) succeeded")
	}
	if _, err := Simulate(1, 0, 10, 1); err == nil {
		t.Error("Simulate(lambda=0) succeeded")
	}
	if _, err := Simulate(1, 1, 0, 1); err == nil {
		t.Error("Simulate(n=0) succeeded")
	}
}

func TestStressThroughputRampAndPlateau(t *testing.T) {
	cfg := PaperStress()
	low := cfg.Throughput(1)
	mid := cfg.Throughput(50)
	high := cfg.Throughput(1000)
	if !(low < mid && mid <= high) {
		t.Errorf("throughput not ramping: %v, %v, %v", low, mid, high)
	}
	if high != cfg.ServiceRate {
		t.Errorf("plateau = %v, want µ=%v", high, cfg.ServiceRate)
	}
}

// Fig. 3b: the paper's stress test converges to α = 1.1 at high load.
func TestPaperStressAlphaConverges(t *testing.T) {
	cfg := PaperStress()
	points := cfg.Sweep([]int{1, 10, 50, 100, 200, 400, 600, 800, 1000})
	alpha, err := game.AlphaFromStress(points)
	if err != nil {
		t.Fatalf("AlphaFromStress: %v", err)
	}
	if math.Abs(alpha-1.1) > 0.01 {
		t.Errorf("α = %v, want ≈ 1.1", alpha)
	}
}
