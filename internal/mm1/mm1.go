// Package mm1 provides the M/M/1 service abstraction of paper §4.1 — the
// analytic sojourn time S(x̄) = 1/(µ−x̄) — together with a discrete-event
// simulation of the queue and the closed-loop stress-test harness used to
// estimate the server's service parameter α (Fig. 3b).
package mm1

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/tcppuzzles/tcppuzzles/game"
)

// ErrUnstable reports λ ≥ µ in an open queue analysis.
var ErrUnstable = errors.New("mm1: arrival rate at or above service rate")

// SojournTime returns the expected time in system S = 1/(µ−λ).
func SojournTime(mu, lambda float64) (float64, error) {
	if lambda >= mu {
		return 0, fmt.Errorf("mm1: λ=%v µ=%v: %w", lambda, mu, ErrUnstable)
	}
	return 1 / (mu - lambda), nil
}

// QueueLength returns the expected number in system L = ρ/(1−ρ).
func QueueLength(mu, lambda float64) (float64, error) {
	if lambda >= mu {
		return 0, fmt.Errorf("mm1: λ=%v µ=%v: %w", lambda, mu, ErrUnstable)
	}
	rho := lambda / mu
	return rho / (1 - rho), nil
}

// SimResult summarises a queue simulation.
type SimResult struct {
	// MeanSojourn is the average time in system per job.
	MeanSojourn float64
	// Utilisation is the fraction of time the server was busy.
	Utilisation float64
	// Completed is the number of jobs served.
	Completed int
}

// Simulate runs an open M/M/1 queue with Poisson arrivals at rate lambda and
// exponential service at rate mu for n jobs.
func Simulate(mu, lambda float64, n int, seed int64) (SimResult, error) {
	if mu <= 0 || lambda <= 0 || n <= 0 {
		return SimResult{}, fmt.Errorf("mm1: mu=%v lambda=%v n=%d invalid", mu, lambda, n)
	}
	rnd := rand.New(rand.NewSource(seed))
	var (
		clock      float64
		serverFree float64
		busy       float64
		totalSoj   float64
	)
	for i := 0; i < n; i++ {
		clock += rnd.ExpFloat64() / lambda
		start := math.Max(clock, serverFree)
		service := rnd.ExpFloat64() / mu
		serverFree = start + service
		busy += service
		totalSoj += serverFree - clock
	}
	return SimResult{
		MeanSojourn: totalSoj / float64(n),
		Utilisation: busy / serverFree,
		Completed:   n,
	}, nil
}

// StressConfig describes the closed-loop stress test of §4.3: n concurrent
// clients each issue the next request as soon as the previous one completes,
// after a think time.
type StressConfig struct {
	// ServiceRate is the server's µ in requests/second.
	ServiceRate float64
	// ThinkTime is the per-client delay between completing one request and
	// issuing the next, in seconds (network RTT + client processing). It
	// shapes the ramp of Fig. 3b.
	ThinkTime float64
}

// Throughput returns the sustained service rate at concurrency n under the
// interactive (machine-repairman) bound: X(n) = min(n/(Z+S), µ).
func (c StressConfig) Throughput(n int) float64 {
	s := 1 / c.ServiceRate
	x := float64(n) / (c.ThinkTime + s)
	if x > c.ServiceRate {
		return c.ServiceRate
	}
	return x
}

// Sweep runs the stress test across concurrency levels and returns the
// stress points used to estimate α (Fig. 3b).
func (c StressConfig) Sweep(levels []int) []game.StressPoint {
	out := make([]game.StressPoint, 0, len(levels))
	for _, n := range levels {
		out = append(out, game.StressPoint{Concurrent: n, ServiceRate: c.Throughput(n)})
	}
	return out
}

// PaperStress returns the stress configuration matching the paper's Apache
// deployment: µ ≈ 1100 requests/second with the think time chosen so the
// plateau is reached by ~1000 concurrent requests and α converges to 1.1.
func PaperStress() StressConfig {
	return StressConfig{ServiceRate: 1100, ThinkTime: 0.050}
}
