package attacksim

import (
	"math/rand"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Type aliases keep attacker.go readable without repeating long paths.
type puzzleSolution = puzzle.Solution

func puzzleSolve(ch puzzle.Challenge) (puzzle.Solution, puzzle.SolveStats, error) {
	return puzzle.Solve(ch)
}

func puzzleSampleHashes(rnd *rand.Rand, blk tcpopt.ChallengeBlock) uint64 {
	return puzzle.SampleSolveHashes(rnd, blk.Challenge.Params)
}

// puzzleParamsGuess is the difficulty a solution flooder fabricates blocks
// for. A real attacker reads it from an observed challenge; the guess
// matters only for block sizing, and the paper's default is used.
func puzzleParamsGuess() puzzle.Params {
	return puzzle.Params{K: 2, M: 17, L: 32}
}

// fabricateSolution fills a solution with random bytes.
func fabricateSolution(rnd *rand.Rand, p puzzle.Params) puzzle.Solution {
	sol := puzzle.Solution{
		Params:    p,
		Timestamp: uint32(rnd.Int63()),
		Solutions: make([][]byte, p.K),
	}
	for i := range sol.Solutions {
		b := make([]byte, p.SolutionBytes())
		rnd.Read(b)
		sol.Solutions[i] = b
	}
	return sol
}
