package attacksim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"time"

	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/internal/xrand"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// defaultBatchSize is how many sources one scheduled event advances. An
// execution-only knob: batching never changes per-source behaviour, only
// how many engine events carry it.
const defaultBatchSize = 1024

// MacroConfig describes a macro-aggregated source population — the same
// knobs as BotnetConfig, minus the per-bot objects.
type MacroConfig struct {
	// Sources is the population size (up to netsim.MaxSourceSlots).
	Sources int
	// BaseAddr is source 0's address; netsim.SourceAddr derives the rest.
	BaseAddr [4]byte
	// ServerAddr and ServerPort locate the victim.
	ServerAddr [4]byte
	ServerPort uint16
	// Attack, PerSourceRate, Solves, SimulatedCrypto, Devices configure
	// the sources exactly as BotnetConfig configures bots.
	Attack          sweep.Attack
	PerSourceRate   float64
	Solves          bool
	SimulatedCrypto bool
	MaxSolveBacklog time.Duration
	Devices         []cpumodel.Device
	// StartAt and StopAt bound the attack.
	StartAt, StopAt time.Duration
	// Link is the shared per-source access link.
	Link netsim.LinkConfig
	// Seed derives per-source seeds exactly as the botnet does
	// (Seed + i*101), so source i's RNG stream matches bot i's
	// CompactRNG stream.
	Seed int64
	// MetricBucket is the metric bucket width.
	MetricBucket time.Duration
	// BatchSize overrides how many sources one event drives (execution
	// knob only; zero = default).
	BatchSize int
}

// MacroFleet drives a large homogeneous source population with O(batches)
// scheduled events and a few flat arrays of per-source state, instead of
// a Bot object, RNG, and timer per source. Behaviour is the per-bot
// semantics reproduced exactly:
//
//   - tick times: per-bot ticks land at start_i + k·Δ (Δ repeated
//     addition of the same duration ≡ multiplication), so a batch event
//     can process source i's tick k at the virtual time start_i + k·Δ
//     without a per-source timer. Events emitted inside a batch carry
//     their virtual timestamps, which are ≥ the batch event's time, so
//     causality and the sharded engine's conservative windows hold.
//   - randomness: per-source splitmix streams (8 bytes each) swapped
//     through one shared rand.Rand wrapper; stream i is identical to a
//     CompactRNG bot seeded Seed + i*101.
//   - identity: addresses materialise only in the canonical delivery key
//     via the netsim.SourceStore; nothing per-source is heap-allocated.
//
// One shared rand.Rand wrapper means rand.Rand's internal Read buffer is
// not per-source: strategies drawing bytes via Rand().Read (the solution
// flood's fabricated solutions) stay deterministic but interleave that
// buffer across sources, so they are not draw-for-draw identical to
// per-bot runs — the Read-free spoofed floods (synflood, pulseflood) are.
type MacroFleet struct {
	cfg     MacroConfig
	eng     *netsim.Engine
	store   *netsim.SourceStore
	devices []cpumodel.Device

	period time.Duration
	start  []time.Duration // per-source first tick (StartAt + jitter)

	// Lazy-swap RNG: one wrapper, one state word per source.
	rngState []uint64
	rngSrc   *xrand.SplitMix
	rnd      *rand.Rand
	rngSlot  int32

	// Same scheme for the ISN stream (seed_i + 13, as per-bot).
	isnState []uint64
	isnSrc   *xrand.SplitMix
	isns     *tcpkit.ISNSource
	isnSlot  int32

	// shared is the single strategy instance used for every source when
	// the registered strategy is a stateless value; pointer-typed
	// (stateful) strategies get a lazily filled per-source slice instead.
	shared     attack.Strategy
	strategies []attack.Strategy

	// Lazily allocated per-source state, only paid for by strategies
	// that use it.
	nextPort  []uint32
	cpuFreeAt []time.Duration
	cpuBusy   *stats.Series

	// awaiting maps (slot, port) → client ISN for in-flight handshakes;
	// bounded by concurrently awaited SYN-ACKs, not population size.
	awaiting map[uint64]uint32

	// batches keeps the scheduled batch drivers reachable from the fleet:
	// their round counters are mutable simulation state that speculative
	// rollbacks (netsim.Snapshotter) must rewind, and before this field
	// they were referenced only by their engine events' closures.
	batches []*macroBatch

	metrics *Metrics
}

// NewMacroFleet attaches the population to the network and schedules its
// batch events. Like all attaches it must precede the first run.
func NewMacroFleet(network *netsim.Network, cfg MacroConfig) (*MacroFleet, error) {
	if cfg.Sources <= 0 {
		return nil, fmt.Errorf("attacksim: macro fleet size %d", cfg.Sources)
	}
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 80
	}
	if cfg.Attack == "" {
		cfg.Attack = sweep.AttackSYNFlood
	}
	if cfg.MetricBucket == 0 {
		cfg.MetricBucket = time.Second
	}
	if cfg.StopAt == 0 {
		cfg.StopAt = 1<<62 - 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	devices := cfg.Devices
	if len(devices) == 0 {
		devices = cpumodel.ClientCPUs()
	}
	link := cfg.Link
	if link.RateBps == 0 {
		link = netsim.DefaultHostLink()
	}
	f := &MacroFleet{
		cfg:      cfg,
		devices:  devices,
		rngSrc:   xrand.New(0),
		isnSrc:   xrand.New(0),
		rngSlot:  -1,
		isnSlot:  -1,
		awaiting: make(map[uint64]uint32),
		metrics:  attack.NewMetrics(cfg.MetricBucket),
		cpuBusy:  stats.NewSeries(cfg.MetricBucket),
	}
	f.rnd = rand.New(f.rngSrc)
	f.isns = tcpkit.NewISNSourceFrom(f.isnSrc)

	// Resolve the strategy once to validate the name and decide the
	// instance policy: a value instance is stateless and shared by every
	// source; a pointer instance is per-source state and gets a slot slice.
	probe, err := attack.New(cfg.Attack, macroCtx{f: f})
	if err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	if reflect.TypeOf(probe).Kind() == reflect.Ptr {
		f.strategies = make([]attack.Strategy, cfg.Sources)
	} else {
		f.shared = probe
	}

	store, err := network.AttachSources(cfg.Sources, cfg.BaseAddr, link, f.handle)
	if err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	f.store = store
	f.eng = store.Engine()

	// Per-source RNG states and start jitter, drawn exactly as a
	// CompactRNG bot would: the jitter is the stream's first draw.
	f.rngState = make([]uint64, cfg.Sources)
	for i := 0; i < cfg.Sources; i++ {
		f.rngState[i] = uint64(cfg.Seed + int64(i)*101)
	}
	if cfg.PerSourceRate > 0 {
		f.period = time.Duration(float64(time.Second) / cfg.PerSourceRate)
		f.start = make([]time.Duration, cfg.Sources)
		for i := 0; i < cfg.Sources; i++ {
			f.rngSrc.SetState(f.rngState[i])
			jitter := time.Duration(f.rnd.Int63n(int64(time.Second / 4)))
			f.rngState[i] = f.rngSrc.State()
			f.start[i] = cfg.StartAt + jitter
		}
		f.scheduleBatches()
	}
	return f, nil
}

// scheduleBatches sorts sources by first-tick time and schedules one
// recurring event per contiguous batch. Batch composition is a pure
// function of (seed, size), never of shard layout.
func (f *MacroFleet) scheduleBatches() {
	order := make([]int32, f.cfg.Sources)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := f.start[order[a]], f.start[order[b]]
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	for lo := 0; lo < len(order); lo += f.cfg.BatchSize {
		hi := lo + f.cfg.BatchSize
		if hi > len(order) {
			hi = len(order)
		}
		b := &macroBatch{f: f, slots: order[lo:hi]}
		f.batches = append(f.batches, b)
		f.eng.ScheduleAt(f.start[b.slots[0]], b.run)
	}
}

// macroBatch advances one slice of the jitter-sorted population: round k
// ticks every slot at its virtual time start + k·Δ. The event fires at
// the batch's earliest member time; later members tick "in the future"
// of the event, which is safe — emissions carry their virtual timestamps.
type macroBatch struct {
	f     *MacroFleet
	slots []int32
	round int64
}

func (b *macroBatch) run() {
	f := b.f
	offset := time.Duration(b.round) * f.period
	if f.start[b.slots[0]]+offset >= f.cfg.StopAt {
		// The first slot has the batch's earliest start, so the whole
		// round — and every later round — is past StopAt: retire.
		return
	}
	for _, slot := range b.slots {
		t := f.start[slot] + offset
		if t >= f.cfg.StopAt {
			// Sorted by start: the rest of this round is past StopAt,
			// but earlier slots may still tick next round.
			break
		}
		f.tickSlot(slot, t)
	}
	b.round++
	f.eng.ScheduleAt(f.start[b.slots[0]]+time.Duration(b.round)*f.period, b.run)
}

// tickSlot runs one source's strategy tick at virtual time t.
func (f *MacroFleet) tickSlot(slot int32, t time.Duration) {
	ctx := macroCtx{f: f, slot: slot, vt: t}
	f.strategyFor(slot, ctx).Tick(ctx)
}

// strategyFor returns the slot's strategy instance: the shared stateless
// value, or the lazily created per-slot instance for stateful strategies.
func (f *MacroFleet) strategyFor(slot int32, ctx macroCtx) attack.Strategy {
	if f.shared != nil {
		return f.shared
	}
	s := f.strategies[slot]
	if s == nil {
		// The probe validated the name; a second New cannot fail.
		s, _ = attack.New(f.cfg.Attack, ctx)
		f.strategies[slot] = s
	}
	return s
}

// handle is the store's delivery callback: Bot.Handle over flat state.
func (f *MacroFleet) handle(slot int32, seg tcpkit.Segment) {
	if seg.Src != f.cfg.ServerAddr || seg.SrcPort != f.cfg.ServerPort {
		return
	}
	if seg.Flags.Has(tcpkit.FlagRST) {
		f.metrics.RSTsReceived++
		return
	}
	if !seg.Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK) {
		return
	}
	key := awaitKey(slot, seg.DstPort)
	isn, ok := f.awaiting[key]
	if !ok {
		return
	}
	delete(f.awaiting, key)

	opts, err := tcpopt.ParseOptions(seg.Options)
	if err != nil {
		opts = nil
	}
	chOpt, challenged := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	ctx := macroCtx{f: f, slot: slot, vt: f.eng.Now()}
	f.strategyFor(slot, ctx).OnSynAck(ctx, attack.SynAck{
		Port: seg.DstPort, ISN: isn, ServerISN: seg.Seq,
		Challenge: chOpt, Challenged: challenged,
	})
}

func awaitKey(slot int32, port uint16) uint64 {
	return uint64(uint32(slot))<<16 | uint64(port)
}

// Size returns the population size.
func (f *MacroFleet) Size() int { return f.cfg.Sources }

// Metrics exposes the fleet-aggregate attack metrics.
func (f *MacroFleet) Metrics() *Metrics { return f.metrics }

// Store exposes the backing netsim source store.
func (f *MacroFleet) Store() *netsim.SourceStore { return f.store }

// SnapshotState implements netsim.Snapshotter: a deep capture of the
// fleet's mutable driver state — batch round counters, lazy-swap RNG/ISN
// state words, per-source strategies and ports, in-flight handshakes,
// metrics — so speculative shard execution can roll the fleet back to a
// committed window. (The store's flat slot state is snapshotted by the
// network itself.) The fleet is not an attached Node, so flood runners
// must hand it to Network.RegisterAuxState under the store's base address.
func (f *MacroFleet) SnapshotState() any { return netsim.CaptureState(f) }

// RestoreState implements netsim.Snapshotter.
func (f *MacroFleet) RestoreState(state any) { state.(*netsim.StateSnap).Restore() }

// Contains reports whether addr belongs to the population — the server-
// side metrics aggregation predicate.
func (f *MacroFleet) Contains(addr [4]byte) bool { return f.store.Contains(addr) }

// SentRate is the measured aggregate attack packet rate per second —
// integer bucket sums, so it equals the per-bot fleet aggregation
// bit-for-bit.
func (f *MacroFleet) SentRate(until time.Duration) []float64 {
	return f.metrics.Sent.RatePerSecond(until)
}

// TotalSent sums attack packets over [from, to).
func (f *MacroFleet) TotalSent(from, to time.Duration) float64 {
	return f.metrics.Sent.SumRange(from, to)
}

// MeanCPUUtilisation is the population-mean CPU utilisation per bucket.
// Busy time is accumulated fleet-wide, so unlike the per-bot mean an
// individually saturated source is not clamped at 100% before averaging —
// identical when sources stay below saturation.
func (f *MacroFleet) MeanCPUUtilisation(until time.Duration) []float64 {
	vals := f.cpuBusy.Values(until)
	out := make([]float64, len(vals))
	scale := 100 / f.cfg.MetricBucket.Seconds() / float64(f.cfg.Sources)
	for i, v := range vals {
		out[i] = v * scale
	}
	return out
}

// macroCtx is the attack.BotCtx facade over one source slot at a virtual
// instant. It is a value: strategy closures capture the (slot, vt) pair,
// and Now() returns the later of the virtual time and the engine clock,
// so a closure firing after its batch event sees real time exactly as a
// per-bot closure would.
type macroCtx struct {
	f    *MacroFleet
	slot int32
	vt   time.Duration
}

var _ attack.BotCtx = macroCtx{}

// Now implements attack.BotCtx.
func (c macroCtx) Now() time.Duration {
	if now := c.f.eng.Now(); now > c.vt {
		return now
	}
	return c.vt
}

// Rand implements attack.BotCtx: the shared wrapper over this slot's
// splitmix state, swapped in on slot change.
func (c macroCtx) Rand() *rand.Rand {
	f := c.f
	if f.rngSlot != c.slot {
		if f.rngSlot >= 0 {
			f.rngState[f.rngSlot] = f.rngSrc.State()
		}
		f.rngSrc.SetState(f.rngState[c.slot])
		f.rngSlot = c.slot
	}
	return f.rnd
}

// Addr implements attack.BotCtx.
func (c macroCtx) Addr() [4]byte { return c.f.store.Addr(c.slot) }

// ServerAddr implements attack.BotCtx.
func (c macroCtx) ServerAddr() [4]byte { return c.f.cfg.ServerAddr }

// ServerPort implements attack.BotCtx.
func (c macroCtx) ServerPort() uint16 { return c.f.cfg.ServerPort }

// AttackWindow implements attack.BotCtx.
func (c macroCtx) AttackWindow() (start, stop time.Duration) {
	return c.f.cfg.StartAt, c.f.cfg.StopAt
}

// Solves implements attack.BotCtx.
func (c macroCtx) Solves() bool { return c.f.cfg.Solves }

// SimulatedCrypto implements attack.BotCtx.
func (c macroCtx) SimulatedCrypto() bool { return c.f.cfg.SimulatedCrypto }

// MaxSolveBacklog implements attack.BotCtx.
func (c macroCtx) MaxSolveBacklog() time.Duration { return c.f.cfg.MaxSolveBacklog }

// NextISN implements attack.BotCtx: per-slot splitmix ISN stream seeded
// seed_i + 13, exactly as per-bot CompactRNG.
func (c macroCtx) NextISN() uint32 {
	f := c.f
	if f.isnState == nil {
		f.isnState = make([]uint64, f.cfg.Sources)
		for i := range f.isnState {
			f.isnState[i] = uint64(f.cfg.Seed + int64(i)*101 + 13)
		}
	}
	if f.isnSlot != c.slot {
		if f.isnSlot >= 0 {
			f.isnState[f.isnSlot] = f.isnSrc.State()
		}
		f.isnSrc.SetState(f.isnState[c.slot])
		f.isnSlot = c.slot
	}
	return f.isns.Next()
}

// NextPort implements attack.BotCtx.
func (c macroCtx) NextPort() uint16 {
	f := c.f
	if f.nextPort == nil {
		f.nextPort = make([]uint32, f.cfg.Sources)
		for i := range f.nextPort {
			f.nextPort[i] = 20000
		}
	}
	port := uint16(1024 + f.nextPort[c.slot]%60000)
	f.nextPort[c.slot]++
	return port
}

// ExpectSynAck implements attack.BotCtx.
func (c macroCtx) ExpectSynAck(port uint16, isn uint32) {
	c.f.awaiting[awaitKey(c.slot, port)] = isn
}

// EmitAttack implements attack.BotCtx.
func (c macroCtx) EmitAttack(seg tcpkit.Segment) {
	now := c.Now()
	c.f.metrics.Sent.Add(now, 1)
	c.f.store.SendAt(c.slot, now, seg)
}

// EmitSpoofed implements attack.BotCtx: SendAt already transmits through
// the slot's own uplink whatever the forged source claims.
func (c macroCtx) EmitSpoofed(seg tcpkit.Segment) {
	now := c.Now()
	c.f.metrics.Sent.Add(now, 1)
	c.f.store.SendAt(c.slot, now, seg)
}

// SendHandshakeAck implements attack.BotCtx.
func (c macroCtx) SendHandshakeAck(port uint16, isn, serverISN uint32, opts []byte) {
	f := c.f
	now := c.Now()
	f.metrics.AcksSent.Add(now, 1)
	f.metrics.BelievedEstablished++
	f.store.SendAt(c.slot, now, tcpkit.Segment{
		Src: f.store.Addr(c.slot), Dst: f.cfg.ServerAddr,
		SrcPort: port, DstPort: f.cfg.ServerPort,
		Seq: isn + 1, Ack: serverISN + 1,
		Flags:   tcpkit.FlagACK,
		Options: opts,
	})
}

// ChargeCPU implements attack.BotCtx: cpumodel.CPU.Charge over a flat
// per-slot free-at array, with busy time accumulated fleet-wide.
func (c macroCtx) ChargeCPU(hashes float64) time.Duration {
	f := c.f
	if f.cpuFreeAt == nil {
		f.cpuFreeAt = make([]time.Duration, f.cfg.Sources)
	}
	now := c.Now()
	start := now
	if free := f.cpuFreeAt[c.slot]; free > start {
		start = free
	}
	dev := f.devices[int(c.slot)%len(f.devices)]
	dur := dev.TimeFor(hashes)
	done := start + dur
	f.cpuBusy.AddSpan(start, done, dur.Seconds())
	f.cpuFreeAt[c.slot] = done
	return done
}

// CPUBacklog implements attack.BotCtx.
func (c macroCtx) CPUBacklog() time.Duration {
	f := c.f
	if f.cpuFreeAt == nil {
		return 0
	}
	if free := f.cpuFreeAt[c.slot]; free > c.Now() {
		return free - c.Now()
	}
	return 0
}

// ScheduleAt implements attack.BotCtx.
func (c macroCtx) ScheduleAt(at time.Duration, fn func()) { c.f.eng.ScheduleAt(at, fn) }

// Metrics implements attack.BotCtx.
func (c macroCtx) Metrics() *attack.Metrics { return c.f.metrics }
