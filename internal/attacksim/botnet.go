package attacksim

import (
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// BotnetConfig builds a fleet of identical bots.
type BotnetConfig struct {
	// Size is the number of bots.
	Size int
	// BaseAddr is the first bot address; subsequent bots increment the
	// low octets.
	BaseAddr [4]byte
	// ServerAddr and ServerPort locate the victim.
	ServerAddr [4]byte
	ServerPort uint16
	// Attack, PerBotRate, Solves, SimulatedCrypto, Devices configure the
	// bots; Devices are assigned round-robin (defaults to the client CPU
	// mix, matching the paper's "similar or better" provisioning).
	Attack          sweep.Attack
	PerBotRate      float64
	Solves          bool
	SimulatedCrypto bool
	// MaxSolveBacklog selects "smart" bots that discard stale challenges
	// (zero = greedy default; see Config.MaxSolveBacklog).
	MaxSolveBacklog time.Duration
	Devices         []cpumodel.Device
	// StartAt and StopAt bound the attack.
	StartAt, StopAt time.Duration
	// Link is the per-bot access link.
	Link netsim.LinkConfig
	// Seed drives per-bot seeds.
	Seed int64
	// MetricBucket is the metric bucket width.
	MetricBucket time.Duration
	// CompactRNG selects the macro-comparable per-bot RNG (see
	// Config.CompactRNG).
	CompactRNG bool
}

// Botnet is a fleet of bots with aggregate metrics.
type Botnet struct {
	Bots []*Bot
}

// NewBotnet builds and attaches the fleet. Each bot schedules against the
// engine of its own home shard (netsim.Network.EngineFor), so a sharded
// network spreads the fleet across cores; on a single-shard network every
// bot lands on the one engine, as before. Per-bot seeds derive only from
// cfg.Seed and the bot index — never from shard layout — so the fleet's
// behaviour is identical at every shard count.
func NewBotnet(network *netsim.Network, cfg BotnetConfig) (*Botnet, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("attacksim: botnet size %d", cfg.Size)
	}
	devices := cfg.Devices
	if len(devices) == 0 {
		devices = cpumodel.ClientCPUs()
	}
	link := cfg.Link
	if link.RateBps == 0 {
		link = netsim.DefaultHostLink()
	}
	bn := &Botnet{Bots: make([]*Bot, 0, cfg.Size)}
	for i := 0; i < cfg.Size; i++ {
		addr := netsim.SourceAddr(cfg.BaseAddr, i)
		bot, err := New(network.EngineFor(addr), network, link, Config{
			Addr:            addr,
			ServerAddr:      cfg.ServerAddr,
			ServerPort:      cfg.ServerPort,
			Attack:          cfg.Attack,
			Rate:            cfg.PerBotRate,
			StartAt:         cfg.StartAt,
			StopAt:          cfg.StopAt,
			Solves:          cfg.Solves,
			SimulatedCrypto: cfg.SimulatedCrypto,
			MaxSolveBacklog: cfg.MaxSolveBacklog,
			Device:          devices[i%len(devices)],
			Seed:            cfg.Seed + int64(i)*101,
			MetricBucket:    cfg.MetricBucket,
			CompactRNG:      cfg.CompactRNG,
		})
		if err != nil {
			return nil, err
		}
		bn.Bots = append(bn.Bots, bot)
	}
	return bn, nil
}

// Srcs returns the bots' real source addresses (for per-source server
// metrics).
func (bn *Botnet) Srcs() [][4]byte {
	out := make([][4]byte, len(bn.Bots))
	for i, b := range bn.Bots {
		out[i] = b.cfg.Addr
	}
	return out
}

// SentRate aggregates the measured (post-CPU-limiting) attack packet rate
// across the fleet, per second.
func (bn *Botnet) SentRate(until time.Duration) []float64 {
	if len(bn.Bots) == 0 {
		return nil
	}
	agg := stats.NewSeries(bn.Bots[0].cfg.MetricBucket)
	for _, b := range bn.Bots {
		for i, v := range b.metrics.Sent.Values(until) {
			agg.Add(time.Duration(i)*b.cfg.MetricBucket, v)
		}
	}
	return agg.RatePerSecond(until)
}

// TotalSent sums attack packets over [from, to).
func (bn *Botnet) TotalSent(from, to time.Duration) float64 {
	var sum float64
	for _, b := range bn.Bots {
		sum += b.metrics.Sent.SumRange(from, to)
	}
	return sum
}

// MeanCPUUtilisation averages bot CPU utilisation per bucket.
func (bn *Botnet) MeanCPUUtilisation(until time.Duration) []float64 {
	if len(bn.Bots) == 0 {
		return nil
	}
	var out []float64
	for _, b := range bn.Bots {
		u := b.cpu.Utilisation(until)
		if out == nil {
			out = make([]float64, len(u))
		}
		for i, v := range u {
			out[i] += v / float64(len(bn.Bots))
		}
	}
	return out
}
