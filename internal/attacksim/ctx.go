package attacksim

import (
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// botCtx is the bot's implementation of attack.BotCtx: the narrow facade
// an attack strategy sees. Send primitives fold in the attack-rate
// accounting (Sent / AcksSent) so every strategy's packets land in the
// measured-rate figures the same way.
type botCtx struct{ b *Bot }

var _ attack.BotCtx = botCtx{}

// Now implements attack.BotCtx.
func (c botCtx) Now() time.Duration { return c.b.eng.Now() }

// Rand implements attack.BotCtx.
func (c botCtx) Rand() *rand.Rand { return c.b.rnd }

// Addr implements attack.BotCtx.
func (c botCtx) Addr() [4]byte { return c.b.cfg.Addr }

// ServerAddr implements attack.BotCtx.
func (c botCtx) ServerAddr() [4]byte { return c.b.cfg.ServerAddr }

// ServerPort implements attack.BotCtx.
func (c botCtx) ServerPort() uint16 { return c.b.cfg.ServerPort }

// AttackWindow implements attack.BotCtx.
func (c botCtx) AttackWindow() (start, stop time.Duration) {
	return c.b.cfg.StartAt, c.b.cfg.StopAt
}

// Solves implements attack.BotCtx.
func (c botCtx) Solves() bool { return c.b.cfg.Solves }

// SimulatedCrypto implements attack.BotCtx.
func (c botCtx) SimulatedCrypto() bool { return c.b.cfg.SimulatedCrypto }

// MaxSolveBacklog implements attack.BotCtx.
func (c botCtx) MaxSolveBacklog() time.Duration { return c.b.cfg.MaxSolveBacklog }

// NextISN implements attack.BotCtx.
func (c botCtx) NextISN() uint32 { return c.b.isns.Next() }

// NextPort implements attack.BotCtx.
func (c botCtx) NextPort() uint16 {
	port := uint16(1024 + c.b.nextPort%60000)
	c.b.nextPort++
	return port
}

// ExpectSynAck implements attack.BotCtx.
func (c botCtx) ExpectSynAck(port uint16, isn uint32) { c.b.awaiting[port] = isn }

// EmitAttack implements attack.BotCtx.
func (c botCtx) EmitAttack(seg tcpkit.Segment) {
	c.b.metrics.Sent.Add(c.b.eng.Now(), 1)
	c.b.net.Send(seg)
}

// EmitSpoofed implements attack.BotCtx: the packet leaves through the
// bot's own uplink whatever its forged source claims.
func (c botCtx) EmitSpoofed(seg tcpkit.Segment) {
	c.b.metrics.Sent.Add(c.b.eng.Now(), 1)
	c.b.net.SendFrom(c.b.cfg.Addr, seg)
}

// SendHandshakeAck implements attack.BotCtx.
func (c botCtx) SendHandshakeAck(port uint16, isn, serverISN uint32, opts []byte) {
	c.b.metrics.AcksSent.Add(c.b.eng.Now(), 1)
	c.b.metrics.BelievedEstablished++
	c.b.net.Send(tcpkit.Segment{
		Src: c.b.cfg.Addr, Dst: c.b.cfg.ServerAddr,
		SrcPort: port, DstPort: c.b.cfg.ServerPort,
		Seq: isn + 1, Ack: serverISN + 1,
		Flags:   tcpkit.FlagACK,
		Options: opts,
	})
}

// ChargeCPU implements attack.BotCtx.
func (c botCtx) ChargeCPU(hashes float64) time.Duration {
	return c.b.cpu.Charge(c.b.eng.Now(), hashes)
}

// CPUBacklog implements attack.BotCtx.
func (c botCtx) CPUBacklog() time.Duration { return c.b.cpu.Backlog(c.b.eng.Now()) }

// ScheduleAt implements attack.BotCtx.
func (c botCtx) ScheduleAt(at time.Duration, fn func()) { c.b.eng.ScheduleAt(at, fn) }

// Metrics implements attack.BotCtx.
func (c botCtx) Metrics() *attack.Metrics { return c.b.metrics }
