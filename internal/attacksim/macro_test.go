package attacksim

import (
	"reflect"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
)

// synAckServer is a minimal victim: every SYN gets a SYN-ACK, so macro
// handshake bookkeeping (awaiting map, OnSynAck dispatch) is exercised
// without the full server simulator.
type synAckServer struct {
	addr netsim.Addr
	net  *netsim.Network
	syns int
}

func (s *synAckServer) Addr() netsim.Addr { return s.addr }
func (s *synAckServer) Handle(seg tcpkit.Segment) {
	if !seg.Flags.Has(tcpkit.FlagSYN) || seg.Flags.Has(tcpkit.FlagACK) {
		return
	}
	s.syns++
	s.net.Send(tcpkit.Segment{
		Src: s.addr, Dst: seg.Src, SrcPort: seg.DstPort, DstPort: seg.SrcPort,
		Seq: 9000, Ack: seg.Seq + 1, Flags: tcpkit.FlagSYN | tcpkit.FlagACK,
	})
}

func runMacro(t *testing.T, batch int) ([]float64, uint64, int) {
	t.Helper()
	network := netsim.NewSharded(1)
	srv := &synAckServer{addr: netsim.Addr{10, 0, 0, 1}}
	srv.net = network
	if err := network.Attach(srv, netsim.DefaultServerLink()); err != nil {
		t.Fatal(err)
	}
	fleet, err := NewMacroFleet(network, MacroConfig{
		Sources:       25,
		BaseAddr:      [4]byte{10, 2, 0, 1},
		ServerAddr:    srv.addr,
		Attack:        "connflood",
		PerSourceRate: 20,
		StartAt:       time.Second,
		StopAt:        9 * time.Second,
		Seed:          5,
		BatchSize:     batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	network.Run(10 * time.Second)
	up, _ := fleet.Store().Stats()
	return fleet.Metrics().Sent.Values(10 * time.Second), up.SentPackets, srv.syns
}

// Batching is an execution knob, never a modelling one: any batch size
// must reproduce the same per-source ticks, packets, and handshakes.
func TestMacroBatchSizeNeutral(t *testing.T) {
	wantSent, wantPkts, wantSyns := runMacro(t, 1024)
	for _, batch := range []int{1, 3, 7} {
		sent, pkts, syns := runMacro(t, batch)
		if !reflect.DeepEqual(sent, wantSent) {
			t.Errorf("batch=%d: Sent series differs", batch)
		}
		if pkts != wantPkts || syns != wantSyns {
			t.Errorf("batch=%d: pkts=%d syns=%d, want %d/%d", batch, pkts, syns, wantPkts, wantSyns)
		}
	}
	if wantPkts == 0 || wantSyns == 0 {
		t.Fatalf("degenerate run: pkts=%d syns=%d", wantPkts, wantSyns)
	}
}
