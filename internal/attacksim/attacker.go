// Package attacksim models the paper's attackers: SYN flooders with spoofed
// sources (hping3), connection flooders with real addresses (nping) in
// solving and non-solving variants, replay attackers, and solution flooders,
// plus botnet construction helpers.
package attacksim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Kind selects the attack behaviour.
type Kind int

// Attack kinds.
const (
	// SYNFlood sends spoofed SYNs and never completes handshakes (targets
	// the listen queue).
	SYNFlood Kind = iota + 1
	// ConnFlood completes handshakes from the bot's real address and then
	// idles (targets the accept queue / worker pool). Whether challenges
	// are solved depends on Solves.
	ConnFlood
	// SolutionFlood sends ACKs carrying bogus solutions to burn server
	// verification cycles (§7).
	SolutionFlood
	// ReplayFlood solves one challenge legitimately, captures its own
	// solution ACK, and replays the identical packet at the attack rate
	// (§7 "Replay attacks"). Flow binding limits it to one queue slot at a
	// time and the timestamp window eventually expires the solution.
	ReplayFlood
)

// Config describes one bot.
type Config struct {
	// Addr is the bot's real address.
	Addr [4]byte
	// ServerAddr and ServerPort locate the victim.
	ServerAddr [4]byte
	ServerPort uint16

	// Kind selects the attack.
	Kind Kind
	// Rate is the constant attack rate in packets (attempts) per second.
	Rate float64
	// StartAt and StopAt bound the attack interval.
	StartAt, StopAt time.Duration

	// Solves makes a ConnFlood bot run the patched kernel and genuinely
	// solve challenges (rate limited by its CPU).
	Solves bool
	// SimulatedCrypto pairs with the server's simulated engine.
	SimulatedCrypto bool
	// Device models the bot CPU.
	Device cpumodel.Device
	// MaxSolveBacklog, when positive, makes the bot discard challenges
	// once its CPU is committed further than this into the future — a
	// "smart" attacker that keeps its solutions fresh. The default (zero)
	// is the greedy flooding tool: every challenge is queued, the solve
	// backlog quickly exceeds the server's replay window, and most
	// solutions arrive expired — the dynamic that collapses the effective
	// attack rate in §6.2.
	MaxSolveBacklog time.Duration

	// Seed drives deterministic randomness.
	Seed int64
	// MetricBucket is the metric bucket width.
	MetricBucket time.Duration
}

func (c *Config) fillDefaults() {
	if c.ServerPort == 0 {
		c.ServerPort = 80
	}
	if c.Kind == 0 {
		c.Kind = SYNFlood
	}
	if c.Device.HashRate == 0 {
		c.Device = cpumodel.CPU1
	}
	if c.MetricBucket == 0 {
		c.MetricBucket = time.Second
	}
	if c.StopAt == 0 {
		c.StopAt = 1<<62 - 1
	}
}

// Metrics collects bot-side measurements.
type Metrics struct {
	// Sent counts attack packets per bucket — the "measured attack rate"
	// of Figs. 13/14 once CPU limiting is applied.
	Sent *stats.Series
	// AcksSent counts handshake completions attempted.
	AcksSent *stats.Series
	// BelievedEstablished counts connections the bot considers open.
	BelievedEstablished uint64
	// SolvesCompleted counts challenges solved.
	SolvesCompleted uint64
	// ChallengesDiscarded counts challenges dropped due to CPU backlog.
	ChallengesDiscarded uint64
	// RSTsReceived counts deception reveals.
	RSTsReceived uint64
}

// Bot is one attacking machine.
type Bot struct {
	cfg Config
	eng *netsim.Engine
	net *netsim.Network
	rnd *rand.Rand

	isns     *tcpkit.ISNSource
	cpu      *cpumodel.CPU
	nextPort uint32
	awaiting map[uint16]uint32 // port → client ISN for in-flight handshakes

	// captured is the replayable solution ACK of a ReplayFlood bot.
	captured    *tcpkit.Segment
	capturePend bool

	metrics *Metrics
}

// New builds a bot and attaches it to the network.
func New(eng *netsim.Engine, network *netsim.Network, link netsim.LinkConfig, cfg Config) (*Bot, error) {
	cfg.fillDefaults()
	b := &Bot{
		cfg:      cfg,
		eng:      eng,
		net:      network,
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
		isns:     tcpkit.NewISNSource(cfg.Seed + 13),
		cpu:      cpumodel.NewCPU(cfg.Device, cfg.MetricBucket),
		nextPort: 20000,
		awaiting: make(map[uint16]uint32),
		metrics: &Metrics{
			Sent:     stats.NewSeries(cfg.MetricBucket),
			AcksSent: stats.NewSeries(cfg.MetricBucket),
		},
	}
	if err := network.Attach(b, link); err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	if cfg.Rate > 0 {
		// Jitter the start so bots don't tick in lockstep.
		jitter := time.Duration(b.rnd.Int63n(int64(time.Second / 4)))
		eng.ScheduleAt(cfg.StartAt+jitter, b.tick)
	}
	return b, nil
}

// Addr implements netsim.Node.
func (b *Bot) Addr() netsim.Addr { return b.cfg.Addr }

// Metrics exposes the bot measurements.
func (b *Bot) Metrics() *Metrics { return b.metrics }

// CPU exposes the bot CPU model.
func (b *Bot) CPU() *cpumodel.CPU { return b.cpu }

// tick fires one attack packet at the configured constant rate.
func (b *Bot) tick() {
	now := b.eng.Now()
	if now >= b.cfg.StopAt {
		return
	}
	switch b.cfg.Kind {
	case SYNFlood:
		b.spoofedSYN()
	case ConnFlood:
		b.realSYN()
	case SolutionFlood:
		b.bogusSolution()
	case ReplayFlood:
		b.replay()
	}
	b.eng.Schedule(time.Duration(float64(time.Second)/b.cfg.Rate), b.tick)
}

// replay re-sends the captured solution ACK; until one is captured it runs
// a single legitimate solving handshake to obtain it.
func (b *Bot) replay() {
	if b.captured != nil {
		b.metrics.Sent.Add(b.eng.Now(), 1)
		b.net.Send(*b.captured)
		return
	}
	if b.capturePend {
		return // capture handshake already in flight
	}
	b.capturePend = true
	b.realSYN()
}

// spoofedSYN emits a SYN with a random forged source.
func (b *Bot) spoofedSYN() {
	src := [4]byte{100, byte(b.rnd.Intn(256)), byte(b.rnd.Intn(256)), byte(1 + b.rnd.Intn(254))}
	b.metrics.Sent.Add(b.eng.Now(), 1)
	b.net.SendFrom(b.cfg.Addr, tcpkit.Segment{
		Src: src, Dst: b.cfg.ServerAddr,
		SrcPort: uint16(1024 + b.rnd.Intn(60000)), DstPort: b.cfg.ServerPort,
		Seq: b.rnd.Uint32(), Flags: tcpkit.FlagSYN, Window: 65535,
	})
}

// realSYN opens a handshake from the bot's own address.
func (b *Bot) realSYN() {
	port := uint16(1024 + b.nextPort%60000)
	b.nextPort++
	isn := b.isns.Next()
	b.awaiting[port] = isn
	b.metrics.Sent.Add(b.eng.Now(), 1)
	b.net.Send(tcpkit.Segment{
		Src: b.cfg.Addr, Dst: b.cfg.ServerAddr,
		SrcPort: port, DstPort: b.cfg.ServerPort,
		Seq: isn, Flags: tcpkit.FlagSYN, Window: 65535,
	})
}

// bogusSolution fabricates an ACK carrying a structurally valid but
// worthless solution block, maximising server verification work.
func (b *Bot) bogusSolution() {
	params := puzzleParamsGuess()
	sol := fabricateSolution(b.rnd, params)
	opt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		return
	}
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{opt})
	if err != nil {
		return
	}
	b.metrics.Sent.Add(b.eng.Now(), 1)
	b.net.Send(tcpkit.Segment{
		Src: b.cfg.Addr, Dst: b.cfg.ServerAddr,
		SrcPort: uint16(1024 + b.rnd.Intn(60000)), DstPort: b.cfg.ServerPort,
		Seq: b.rnd.Uint32(), Ack: b.rnd.Uint32(),
		Flags:   tcpkit.FlagACK,
		Options: opts,
	})
}

// Handle implements netsim.Node: the connection-flood completion logic.
func (b *Bot) Handle(seg tcpkit.Segment) {
	if seg.Src != b.cfg.ServerAddr || seg.SrcPort != b.cfg.ServerPort {
		return
	}
	if seg.Flags.Has(tcpkit.FlagRST) {
		b.metrics.RSTsReceived++
		return
	}
	if !seg.Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK) {
		return
	}
	isn, ok := b.awaiting[seg.DstPort]
	if !ok {
		return
	}
	delete(b.awaiting, seg.DstPort)
	port := seg.DstPort
	serverISN := seg.Seq

	opts, err := tcpopt.ParseOptions(seg.Options)
	if err != nil {
		opts = nil
	}
	chOpt, challenged := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	if !challenged {
		b.sendAck(port, isn, serverISN, nil)
		return
	}
	if b.cfg.Kind == ReplayFlood {
		// The capture handshake always solves, whatever Solves says.
		blk, err := tcpopt.ParseChallenge(chOpt)
		if err != nil {
			b.capturePend = false
			return
		}
		hashes := puzzleSampleHashes(b.rnd, blk)
		done := b.cpu.Charge(b.eng.Now(), float64(hashes))
		b.eng.ScheduleAt(done, func() {
			b.metrics.SolvesCompleted++
			sol := b.solve(blk)
			opt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
				MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
			})
			if err != nil {
				b.capturePend = false
				return
			}
			raw, err := tcpopt.MarshalOptions([]tcpopt.Option{opt})
			if err != nil {
				b.capturePend = false
				return
			}
			seg := tcpkit.Segment{
				Src: b.cfg.Addr, Dst: b.cfg.ServerAddr,
				SrcPort: port, DstPort: b.cfg.ServerPort,
				Seq: isn + 1, Ack: serverISN + 1,
				Flags:   tcpkit.FlagACK,
				Options: raw,
			}
			b.captured = &seg
			b.metrics.Sent.Add(b.eng.Now(), 1)
			b.net.Send(seg)
		})
		return
	}
	if !b.cfg.Solves {
		// Unpatched bot: plain ACK that the protected server ignores. The
		// bot still believes the connection opened (nping semantics).
		b.sendAck(port, isn, serverISN, nil)
		return
	}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		return
	}
	if b.cfg.MaxSolveBacklog > 0 && b.cpu.Backlog(b.eng.Now()) > b.cfg.MaxSolveBacklog {
		b.metrics.ChallengesDiscarded++
		return
	}
	hashes := puzzleSampleHashes(b.rnd, blk)
	done := b.cpu.Charge(b.eng.Now(), float64(hashes))
	b.eng.ScheduleAt(done, func() {
		b.metrics.SolvesCompleted++
		sol := b.solve(blk)
		opt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
			MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
		})
		if err != nil {
			return
		}
		raw, err := tcpopt.MarshalOptions([]tcpopt.Option{opt})
		if err != nil {
			return
		}
		b.sendAck(port, isn, serverISN, raw)
	})
}

func (b *Bot) solve(blk tcpopt.ChallengeBlock) (sol puzzleSolution) {
	if b.cfg.SimulatedCrypto {
		return pzengine.SimSolution(blk.Challenge)
	}
	s, _, err := puzzleSolve(blk.Challenge)
	if err != nil {
		return puzzleSolution{Params: blk.Challenge.Params, Timestamp: blk.Challenge.Timestamp}
	}
	return s
}

// sendAck completes (or pretends to complete) the handshake.
func (b *Bot) sendAck(port uint16, isn, serverISN uint32, opts []byte) {
	b.metrics.AcksSent.Add(b.eng.Now(), 1)
	b.metrics.BelievedEstablished++
	b.net.Send(tcpkit.Segment{
		Src: b.cfg.Addr, Dst: b.cfg.ServerAddr,
		SrcPort: port, DstPort: b.cfg.ServerPort,
		Seq: isn + 1, Ack: serverISN + 1,
		Flags:   tcpkit.FlagACK,
		Options: opts,
	})
}
