// Package attacksim models the paper's attacking machines. A Bot is the
// simulator core — deterministic RNG, CPU model, access link, handshake
// bookkeeping — while its behaviour is an attack-strategy plugin resolved
// from the attack registry by Config.Attack (spoofed SYN floods,
// connection floods in solving and non-solving variants, solution floods,
// replay floods, and anything else registered; see package attack).
// Botnet builds fleets of identically configured bots.
package attacksim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/attack"
	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/internal/xrand"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Metrics is the bot measurement state (defined in package attack so
// strategies account into it through the BotCtx facade).
type Metrics = attack.Metrics

// Config describes one bot.
type Config struct {
	// Addr is the bot's real address.
	Addr [4]byte
	// ServerAddr and ServerPort locate the victim.
	ServerAddr [4]byte
	ServerPort uint16

	// Attack names the behaviour in the attack registry
	// (sweep.AttackSYNFlood, sweep.AttackConnFlood, ...). Empty selects
	// the spoofed SYN flood.
	Attack sweep.Attack
	// Rate is the constant attack rate in packets (attempts) per second.
	Rate float64
	// StartAt and StopAt bound the attack interval.
	StartAt, StopAt time.Duration

	// Solves makes a connection-flood bot run the patched kernel and
	// genuinely solve challenges (rate limited by its CPU).
	Solves bool
	// SimulatedCrypto pairs with the server's simulated engine.
	SimulatedCrypto bool
	// Device models the bot CPU.
	Device cpumodel.Device
	// MaxSolveBacklog, when positive, makes the bot discard challenges
	// once its CPU is committed further than this into the future — a
	// "smart" attacker that keeps its solutions fresh. The default (zero)
	// is the greedy flooding tool: every challenge is queued, the solve
	// backlog quickly exceeds the server's replay window, and most
	// solutions arrive expired — the dynamic that collapses the effective
	// attack rate in §6.2.
	MaxSolveBacklog time.Duration

	// Seed drives deterministic randomness.
	Seed int64
	// MetricBucket is the metric bucket width.
	MetricBucket time.Duration

	// CompactRNG draws the bot's randomness (jitter, spoofed addresses,
	// ISNs) from the 8-byte splitmix source macro fleets use instead of
	// the ~5 KB default source. Different stream, same determinism; it
	// exists so a per-bot run can be compared draw-for-draw against the
	// macro-aggregated execution of the same scenario.
	CompactRNG bool
}

func (c *Config) fillDefaults() {
	if c.ServerPort == 0 {
		c.ServerPort = 80
	}
	if c.Attack == "" {
		c.Attack = sweep.AttackSYNFlood
	}
	if c.Device.HashRate == 0 {
		c.Device = cpumodel.CPU1
	}
	if c.MetricBucket == 0 {
		c.MetricBucket = time.Second
	}
	if c.StopAt == 0 {
		c.StopAt = 1<<62 - 1
	}
}

// Bot is one attacking machine.
type Bot struct {
	cfg Config
	eng *netsim.Engine
	net *netsim.Network
	rnd *rand.Rand

	strategy attack.Strategy

	isns     *tcpkit.ISNSource
	cpu      *cpumodel.CPU
	nextPort uint32
	awaiting map[uint16]uint32 // port → client ISN for in-flight handshakes

	metrics *Metrics
}

// New builds a bot, resolves its attack strategy from the registry, and
// attaches it to the network.
func New(eng *netsim.Engine, network *netsim.Network, link netsim.LinkConfig, cfg Config) (*Bot, error) {
	cfg.fillDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	isns := tcpkit.NewISNSource(cfg.Seed + 13)
	if cfg.CompactRNG {
		rnd = rand.New(xrand.New(cfg.Seed))
		isns = tcpkit.NewISNSourceFrom(xrand.New(cfg.Seed + 13))
	}
	b := &Bot{
		cfg:      cfg,
		eng:      eng,
		net:      network,
		rnd:      rnd,
		isns:     isns,
		cpu:      cpumodel.NewCPU(cfg.Device, cfg.MetricBucket),
		nextPort: 20000,
		awaiting: make(map[uint16]uint32),
		metrics:  attack.NewMetrics(cfg.MetricBucket),
	}
	strategy, err := attack.New(cfg.Attack, botCtx{b})
	if err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	b.strategy = strategy
	if err := network.Attach(b, link); err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	if cfg.Rate > 0 {
		// Jitter the start so bots don't tick in lockstep.
		jitter := time.Duration(b.rnd.Int63n(int64(time.Second / 4)))
		eng.ScheduleAt(cfg.StartAt+jitter, b.tick)
	}
	return b, nil
}

// Addr implements netsim.Node.
func (b *Bot) Addr() netsim.Addr { return b.cfg.Addr }

// SnapshotState implements netsim.Snapshotter: a deep capture of the bot,
// its strategy instance, RNG, CPU model, and metrics, so speculative
// shard execution can roll the bot back to a committed window.
func (b *Bot) SnapshotState() any { return netsim.CaptureState(b) }

// RestoreState implements netsim.Snapshotter.
func (b *Bot) RestoreState(state any) { state.(*netsim.StateSnap).Restore() }

// Metrics exposes the bot measurements.
func (b *Bot) Metrics() *Metrics { return b.metrics }

// CPU exposes the bot CPU model.
func (b *Bot) CPU() *cpumodel.CPU { return b.cpu }

// Strategy exposes the instantiated attack behaviour.
func (b *Bot) Strategy() attack.Strategy { return b.strategy }

// tick drives the strategy at the configured constant rate.
func (b *Bot) tick() {
	now := b.eng.Now()
	if now >= b.cfg.StopAt {
		return
	}
	b.strategy.Tick(botCtx{b})
	b.eng.Schedule(time.Duration(float64(time.Second)/b.cfg.Rate), b.tick)
}

// Handle implements netsim.Node: filter server traffic, account deception
// reveals, match SYN-ACKs to in-flight handshakes, and hand the result to
// the strategy.
func (b *Bot) Handle(seg tcpkit.Segment) {
	if seg.Src != b.cfg.ServerAddr || seg.SrcPort != b.cfg.ServerPort {
		return
	}
	if seg.Flags.Has(tcpkit.FlagRST) {
		b.metrics.RSTsReceived++
		return
	}
	if !seg.Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK) {
		return
	}
	isn, ok := b.awaiting[seg.DstPort]
	if !ok {
		return
	}
	delete(b.awaiting, seg.DstPort)

	opts, err := tcpopt.ParseOptions(seg.Options)
	if err != nil {
		opts = nil
	}
	chOpt, challenged := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	b.strategy.OnSynAck(botCtx{b}, attack.SynAck{
		Port: seg.DstPort, ISN: isn, ServerISN: seg.Seq,
		Challenge: chOpt, Challenged: challenged,
	})
}
