package attacksim

import (
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

type world struct {
	eng    *netsim.Engine
	net    *netsim.Network
	server *serversim.Server
}

func newWorld(t *testing.T, srvCfg serversim.Config) *world {
	t.Helper()
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)
	srvCfg.Addr = [4]byte{10, 0, 0, 1}
	srv, err := serversim.New(eng, network, netsim.DefaultServerLink(), srvCfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	return &world{eng: eng, net: network, server: srv}
}

func (w *world) bot(t *testing.T, cfg Config) *Bot {
	t.Helper()
	if cfg.Addr == ([4]byte{}) {
		cfg.Addr = [4]byte{10, 0, 2, 1}
	}
	cfg.ServerAddr = w.server.Addr()
	b, err := New(w.eng, w.net, netsim.DefaultHostLink(), cfg)
	if err != nil {
		t.Fatalf("bot: %v", err)
	}
	return b
}

func TestSYNFloodFillsListenQueue(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense: sweep.DefenseNone,
		Backlog: 64,
	})
	w.bot(t, Config{Attack: sweep.AttackSYNFlood, Rate: 500, Seed: 1, StopAt: 10 * time.Second})
	w.eng.Run(5 * time.Second)
	if got := w.server.ListenLen(); got != 64 {
		t.Errorf("ListenLen = %d, want 64 (saturated)", got)
	}
	if w.server.Metrics().SYNsDropped == 0 {
		t.Error("no SYN drops under flood")
	}
	// SYN-ACKs to spoofed sources must be unroutable.
	if w.net.Unroutable() == 0 {
		t.Error("no unroutable replies — spoofing not exercised")
	}
}

func TestSYNFloodHarmlessAgainstCookies(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense: sweep.DefenseCookies,
		Backlog: 64,
	})
	w.bot(t, Config{Attack: sweep.AttackSYNFlood, Rate: 1000, Seed: 2, StopAt: 10 * time.Second})
	w.eng.Run(5 * time.Second)
	// Cookies keep serving statelessly; no accept-queue damage.
	if w.server.AcceptLen() != 0 {
		t.Errorf("AcceptLen = %d, want 0", w.server.AcceptLen())
	}
	if w.server.Metrics().CookieSynAcks.Sum() == 0 {
		t.Error("no cookie SYN-ACKs issued")
	}
}

func TestConnFloodFillsAcceptQueueWithoutPuzzles(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:       sweep.DefenseCookies,
		Backlog:       32,
		AcceptBacklog: 32,
		Workers:       -1,
	})
	w.bot(t, Config{Attack: sweep.AttackConnFlood, Rate: 200, Seed: 3, StopAt: 30 * time.Second})
	w.eng.Run(10 * time.Second)
	if got := w.server.AcceptLen(); got != 32 {
		t.Errorf("AcceptLen = %d, want 32 (saturated)", got)
	}
}

func TestConnFloodNonSolvingBlockedByPuzzles(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         8,
		AcceptBacklog:   32,
		Workers:         -1,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
	})
	bot := w.bot(t, Config{Attack: sweep.AttackConnFlood, Rate: 200, Solves: false,
		SimulatedCrypto: true, Seed: 4, StopAt: 30 * time.Second})
	w.eng.Run(10 * time.Second)
	// The controller engages at its watermark, after which every SYN is
	// challenged and the bot's plain ACKs are ignored: of ~2000 attempts
	// only a handful establish before protection engages.
	if got := w.server.Metrics().Established.Sum(); got > 10 {
		t.Errorf("Established = %v, want a handful (pre-engagement only)", got)
	}
	if w.server.Metrics().AcksWithoutSolution == 0 {
		t.Error("no solutionless ACKs recorded")
	}
	if bot.Metrics().BelievedEstablished == 0 {
		t.Error("bot never believed it connected (deception not exercised)")
	}
}

func TestSolvingBotIsCPURateLimited(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         2,
		AcceptBacklog:   100000,
		Workers:         -1,
		AlwaysChallenge: true,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
	})
	bot := w.bot(t, Config{Attack: sweep.AttackConnFlood, Rate: 500, Solves: true,
		SimulatedCrypto: true, Device: cpumodel.CPU1,
		MaxSolveBacklog: 2 * time.Second, // "smart" variant keeps solutions fresh
		Seed:            5, StopAt: 60 * time.Second})
	w.eng.Run(30 * time.Second)

	// CPU1 at 450 kh/s, ~2·2^17 hashes per solve ⇒ ≈ 1.7 solves/s, so in
	// 30 s the bot completes at most ~60 handshakes of its ~15000 attempts.
	established := w.server.Metrics().EstablishedTotalFor([][4]byte{bot.cfg.Addr}, 0, 30*time.Second)
	if established > 120 {
		t.Errorf("established = %v, want ≪ attack rate (CPU limit)", established)
	}
	if established == 0 {
		t.Error("solving bot never established (should trickle through)")
	}
	if bot.Metrics().ChallengesDiscarded == 0 {
		t.Error("no challenges discarded despite CPU saturation")
	}
}

func TestSolutionFloodBurnsBoundedServerWork(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         4,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
		Workers:         -1,
	})
	w.bot(t, Config{Attack: sweep.AttackSolutionFlood, Rate: 1000, Seed: 6, StopAt: 20 * time.Second})
	w.eng.Run(10 * time.Second)
	m := w.server.Metrics()
	if m.SolutionInvalid == 0 && m.SolutionMalformed == 0 {
		t.Errorf("no bogus solutions processed (invalid=%d malformed=%d)",
			m.SolutionInvalid, m.SolutionMalformed)
	}
	if w.server.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0", w.server.OpenConns())
	}
	// §7: verification is cheap — utilisation stays tiny even at 1000 pps.
	util := w.server.CPU().Utilisation(10 * time.Second)
	for i, u := range util {
		if u > 5 {
			t.Errorf("server CPU %v%% in bucket %d, want < 5%%", u, i)
		}
	}
}

func TestBotnetConstruction(t *testing.T) {
	w := newWorld(t, serversim.Config{Defense: sweep.DefenseNone})
	bn, err := NewBotnet(w.net, BotnetConfig{
		Size:       10,
		BaseAddr:   [4]byte{10, 0, 3, 1},
		ServerAddr: w.server.Addr(),
		Attack:     sweep.AttackSYNFlood,
		PerBotRate: 100,
		StopAt:     10 * time.Second,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("NewBotnet: %v", err)
	}
	if len(bn.Bots) != 10 {
		t.Fatalf("bots = %d", len(bn.Bots))
	}
	if len(bn.Srcs()) != 10 {
		t.Fatalf("srcs = %d", len(bn.Srcs()))
	}
	w.eng.Run(5 * time.Second)
	// Aggregate ≈ 1000 pps.
	total := bn.TotalSent(time.Second, 4*time.Second)
	if total < 2500 || total > 3500 {
		t.Errorf("TotalSent over 3 s = %v, want ≈ 3000", total)
	}
	rates := bn.SentRate(5 * time.Second)
	if len(rates) == 0 {
		t.Fatal("no rate series")
	}
	if err := func() error { _, e := NewBotnet(w.net, BotnetConfig{Size: 0}); return e }(); err == nil {
		t.Error("NewBotnet(0) succeeded")
	}
}

func TestBotnetMeanCPU(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         2,
		AlwaysChallenge: true,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
		Workers:         -1,
	})
	bn, err := NewBotnet(w.net, BotnetConfig{
		Size: 3, BaseAddr: [4]byte{10, 0, 4, 1},
		ServerAddr: w.server.Addr(),
		Attack:     sweep.AttackConnFlood, PerBotRate: 100,
		Solves: true, SimulatedCrypto: true,
		StopAt: 20 * time.Second, Seed: 8,
	})
	if err != nil {
		t.Fatalf("NewBotnet: %v", err)
	}
	w.eng.Run(10 * time.Second)
	util := bn.MeanCPUUtilisation(10 * time.Second)
	var peak float64
	for _, u := range util {
		if u > peak {
			peak = u
		}
	}
	// Solving bots saturate their CPUs (Fig. 9's attacker spike).
	if peak < 50 {
		t.Errorf("peak botnet CPU = %v%%, want high under solving load", peak)
	}
}

func TestReplayFloodBoundedToOneSlot(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         4,
		AcceptBacklog:   64,
		Workers:         -1,
		AlwaysChallenge: true,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		PuzzleMaxAge:    10 * time.Second,
		SimulatedCrypto: true,
	})
	bot := w.bot(t, Config{Attack: sweep.AttackReplayFlood, Rate: 200, Solves: true,
		SimulatedCrypto: true, Seed: 9, StopAt: 60 * time.Second})
	w.eng.Run(30 * time.Second)

	m := w.server.Metrics()
	// One legitimate solve captured and established exactly once; every
	// replay is either absorbed by the live connection or blocked.
	established := m.EstablishedTotalFor([][4]byte{bot.cfg.Addr}, 0, 30*time.Second)
	if established != 1 {
		t.Errorf("established = %v, want 1 (replay must not multiply slots)", established)
	}
	if w.server.AcceptLen() > 1 {
		t.Errorf("AcceptLen = %d, want ≤ 1", w.server.AcceptLen())
	}
	if bot.Metrics().Sent.Sum() < 1000 {
		t.Errorf("bot sent %v packets, want thousands of replays", bot.Metrics().Sent.Sum())
	}
}

func TestReplayExpiresWithWindow(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         4,
		AcceptBacklog:   64,
		AlwaysChallenge: true,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		PuzzleMaxAge:    5 * time.Second,
		SimulatedCrypto: true,
	})
	w.bot(t, Config{Attack: sweep.AttackReplayFlood, Rate: 100, Solves: true,
		SimulatedCrypto: true, Seed: 10, StopAt: 60 * time.Second})
	w.eng.Run(40 * time.Second)
	m := w.server.Metrics()
	// With default workers the original connection is served and closed;
	// late replays carry an expired timestamp and are rejected as invalid.
	if m.SolutionInvalid == 0 {
		t.Error("no expired replays rejected")
	}
	// The replayed flow can be re-accepted only while the window was
	// open: total establishments stay tiny relative to ~3500 replays.
	if got := m.Established.Sum(); got > 10 {
		t.Errorf("Established = %v, want ≤ 10", got)
	}
}
