package clientsim

import (
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/serversim"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

type world struct {
	eng    *netsim.Engine
	net    *netsim.Network
	server *serversim.Server
}

func newWorld(t *testing.T, srvCfg serversim.Config) *world {
	t.Helper()
	eng := netsim.NewEngine()
	network := netsim.NewNetwork(eng)
	srvCfg.Addr = [4]byte{10, 0, 0, 1}
	srv, err := serversim.New(eng, network, netsim.DefaultServerLink(), srvCfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	return &world{eng: eng, net: network, server: srv}
}

func (w *world) client(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.Addr == ([4]byte{}) {
		cfg.Addr = [4]byte{10, 0, 1, 1}
	}
	cfg.ServerAddr = w.server.Addr()
	c, err := New(w.eng, w.net, netsim.DefaultHostLink(), cfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	return c
}

func TestClientCompletesRequestUnprotected(t *testing.T) {
	w := newWorld(t, serversim.Config{Defense: sweep.DefenseNone})
	c := w.client(t, Config{RequestBytes: 20000, Seed: 3})
	c.Connect()
	w.eng.Run(10 * time.Second)
	m := c.Metrics()
	if m.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (failed=%d)", m.Completed, m.Failed)
	}
	if len(m.ConnTimes) != 1 {
		t.Fatalf("ConnTimes count = %d", len(m.ConnTimes))
	}
	// LAN handshake: one RTT ≈ 8 ms on default links.
	if ct := m.ConnTimes[0]; ct <= 0 || ct > 0.1 {
		t.Errorf("connection time = %v s, want ≈ 0.008", ct)
	}
	if got := m.BytesIn.Sum(); got < 20000 {
		t.Errorf("BytesIn = %v, want ≥ 20000", got)
	}
}

func TestClientPoissonGeneratorRate(t *testing.T) {
	w := newWorld(t, serversim.Config{Defense: sweep.DefenseNone})
	c := w.client(t, Config{Rate: 50, RequestBytes: 1000, Seed: 5, StopAt: 20 * time.Second})
	w.eng.Run(30 * time.Second)
	started := float64(c.Metrics().Started)
	// 50 req/s for 20 s ⇒ ≈ 1000 attempts (Poisson, ±10%).
	if started < 850 || started > 1150 {
		t.Errorf("Started = %v, want ≈ 1000", started)
	}
	if c.Metrics().Completed < uint64(0.9*started) {
		t.Errorf("Completed = %d of %v under no attack", c.Metrics().Completed, started)
	}
}

func TestClientSolvesChallengeRealCrypto(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:      sweep.DefensePuzzles,
		Backlog:      1,
		PuzzleParams: puzzle.Params{K: 2, M: 4, L: 32},
	})
	// Fill the single-slot backlog with a half-open connection from a
	// second client that never completes: use a solver client whose SYN
	// occupies the queue via a manual connect with a dead response.
	blocker := w.client(t, Config{Addr: [4]byte{10, 0, 1, 9}, Seed: 7,
		RTOs: []time.Duration{time.Hour}})
	blocker.Connect()
	w.eng.Run(100 * time.Millisecond)
	// The blocker actually completes its handshake (plain SYN-ACK) — so
	// instead saturate with server-side state: occupy with many clients.
	// Simpler: assert on the solving path even if unchallenged.
	c := w.client(t, Config{Solves: true, RequestBytes: 5000, Seed: 8})
	c.Connect()
	w.eng.Run(10 * time.Second)
	if c.Metrics().Completed != 1 {
		t.Fatalf("Completed = %d", c.Metrics().Completed)
	}
}

// End-to-end: with a full listen queue the solving client is challenged,
// solves with real crypto, and gets service; the non-solving client fails.
func TestSolvingVsNonSolvingUnderProtection(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:       sweep.DefensePuzzles,
		Backlog:       1,
		PuzzleParams:  puzzle.Params{K: 2, M: 4, L: 32},
		SynAckTimeout: time.Hour,
	})
	pinBacklog(t, w)

	solver := w.client(t, Config{Addr: [4]byte{10, 0, 1, 2}, Solves: true,
		RequestBytes: 5000, Seed: 11, Device: cpumodel.CPU1})
	nonSolver := w.client(t, Config{Addr: [4]byte{10, 0, 1, 3}, Solves: false,
		RequestBytes: 5000, Seed: 12})
	solver.Connect()
	nonSolver.Connect()
	w.eng.Run(30 * time.Second)

	if solver.Metrics().Completed != 1 {
		t.Errorf("solver Completed = %d, want 1 (solves started %d)",
			solver.Metrics().Completed, solver.Metrics().SolvesStarted)
	}
	if nonSolver.Metrics().Completed != 0 {
		t.Errorf("non-solver Completed = %d, want 0", nonSolver.Metrics().Completed)
	}
	if nonSolver.Metrics().Failed != 1 {
		t.Errorf("non-solver Failed = %d, want 1", nonSolver.Metrics().Failed)
	}
}

func synSegment(src, dst [4]byte, isn uint32) tcpkit.Segment {
	return tcpkit.Segment{
		Src: src, Dst: dst, SrcPort: 4000, DstPort: 80,
		Seq: isn, Flags: tcpkit.FlagSYN,
	}
}

// nullNode is a host that never answers — its SYN pins a half-open slot.
type nullNode struct{ addr [4]byte }

func (n nullNode) Addr() netsim.Addr   { return n.addr }
func (nullNode) Handle(tcpkit.Segment) {}

// pinBacklog occupies one listen-queue slot with a never-completing
// handshake from a silent host.
func pinBacklog(t *testing.T, w *world) {
	t.Helper()
	silent := nullNode{addr: [4]byte{10, 0, 1, 9}}
	if err := w.net.Attach(silent, netsim.DefaultHostLink()); err != nil {
		t.Fatalf("attach silent host: %v", err)
	}
	w.net.Send(synSegment(silent.addr, w.server.Addr(), 1234))
	w.eng.Run(w.eng.Now() + 100*time.Millisecond)
	if w.server.ListenLen() == 0 {
		t.Fatal("backlog not pinned")
	}
}

func TestClientRetransmitsAndFails(t *testing.T) {
	// Server with backlog 0 behaviour: protection none + tiny backlog that
	// is instantly filled by another host so our client's SYNs are dropped.
	w := newWorld(t, serversim.Config{
		Defense:       sweep.DefenseNone,
		Backlog:       1,
		SynAckTimeout: time.Hour,
	})
	pinBacklog(t, w)

	c := w.client(t, Config{Seed: 9, RTOs: []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond,
	}})
	c.Connect()
	w.eng.Run(5 * time.Second)
	m := c.Metrics()
	if m.Failed != 1 {
		t.Errorf("Failed = %d, want 1", m.Failed)
	}
	if m.RetriesSYN != 2 {
		t.Errorf("RetriesSYN = %d, want 2", m.RetriesSYN)
	}
}

func TestClientAbandonsWhenCPUOverloaded(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         1,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
		SynAckTimeout:   time.Hour,
	})
	pinBacklog(t, w)

	// A slow device with a high request rate: the CPU backlog must trip
	// MaxSolveBacklog and abort attempts.
	c := w.client(t, Config{
		Rate: 50, Solves: true, SimulatedCrypto: true,
		Device:          cpumodel.D1, // 49617 h/s, each solve ≈ 5 s
		MaxSolveBacklog: time.Second,
		Seed:            10, StopAt: 10 * time.Second,
	})
	w.eng.Run(20 * time.Second)
	if c.Metrics().SolvesAborted == 0 {
		t.Error("no solves aborted despite overloaded CPU")
	}
}

func TestClientSimCryptoEndToEnd(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         1,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
		SynAckTimeout:   time.Hour,
	})
	pinBacklog(t, w)

	c := w.client(t, Config{Solves: true, SimulatedCrypto: true,
		RequestBytes: 5000, Seed: 13, Device: cpumodel.CPU1})
	c.Connect()
	w.eng.Run(30 * time.Second)
	if c.Metrics().Completed != 1 {
		t.Fatalf("Completed = %d, want 1", c.Metrics().Completed)
	}
	// The solve time must reflect the modelled CPU: k·2^17 hashes at
	// 450k h/s ≈ 0.3–1.2 s.
	ct := c.Metrics().ConnTimes[0]
	if ct < 0.05 || ct > 5 {
		t.Errorf("connection time %v s outside the expected CPU-bound range", ct)
	}
}

func TestClientDefersArrivalsWhileSolving(t *testing.T) {
	w := newWorld(t, serversim.Config{
		Defense:         sweep.DefensePuzzles,
		Backlog:         1,
		PuzzleParams:    puzzle.Params{K: 2, M: 17, L: 32},
		SimulatedCrypto: true,
		SynAckTimeout:   time.Hour,
	})
	pinBacklog(t, w)
	c := w.client(t, Config{
		Rate: 40, Solves: true, SimulatedCrypto: true,
		Device:          cpumodel.D1, // each solve ≈ 5 s
		MaxSolveBacklog: 500 * time.Millisecond,
		Seed:            21, StopAt: 10 * time.Second,
	})
	w.eng.Run(15 * time.Second)
	m := c.Metrics()
	if m.SkippedBusy == 0 {
		t.Error("no arrivals deferred despite a saturated solver")
	}
	// Deferred arrivals are not failures: the generator produced ~400
	// arrivals but only a few attempts launched.
	if m.Started > 50 {
		t.Errorf("Started = %d, want throttled to the solve rate", m.Started)
	}
	if m.SkippedBusy+m.Started < 300 {
		t.Errorf("skipped %d + started %d, want ≈ 400 arrivals", m.SkippedBusy, m.Started)
	}
}
