// Package clientsim models benign clients: Poisson request generators that
// perform TCP handshakes against the simulated server, solve puzzle
// challenges on a modelled CPU (patched kernel) or ignore them (unpatched),
// retransmit SYNs, issue "gettext/size" requests, and measure connection
// times and throughput.
package clientsim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/cpumodel"
	"github.com/tcppuzzles/tcppuzzles/internal/netsim"
	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Config describes one client host.
type Config struct {
	// Addr is the client address.
	Addr [4]byte
	// ServerAddr and ServerPort locate the server.
	ServerAddr [4]byte
	ServerPort uint16

	// Rate is the Poisson request rate in requests/second; zero disables
	// the generator (connections are opened manually with Connect).
	Rate float64
	// StartAt and StopAt bound the arrival process.
	StartAt, StopAt time.Duration

	// RequestBytes is the size argument of the gettext/size request.
	RequestBytes int
	// RequestPayloadLen is the on-wire size of the request itself.
	RequestPayloadLen int

	// Solves selects the patched kernel that solves puzzle challenges.
	Solves bool
	// SimulatedCrypto derives canonical simulated solution bits instead of
	// brute forcing on the host; the hash cost charged to the modelled CPU
	// is identical. Pair with the server's SimulatedCrypto.
	SimulatedCrypto bool
	// Device models the client CPU.
	Device cpumodel.Device
	// MaxSolveBacklog abandons a connection attempt when the CPU is
	// already committed further than this into the future — the point at
	// which a rational client drops out rather than queue more work.
	MaxSolveBacklog time.Duration

	// RTOs is the SYN retransmission schedule; the attempt fails after the
	// last timeout fires.
	RTOs []time.Duration
	// ResponseTimeout fails an established connection with no (complete)
	// response — how deceived clients discover they were never served.
	ResponseTimeout time.Duration

	// SketchConnTimes streams connection times into an O(1) summary
	// sketch (Metrics.ConnSketch) instead of retaining every sample in
	// Metrics.ConnTimes — the bounded-memory mode for figure cells with
	// very long sample streams. The sketch tracks mean and p10/p50/p90.
	SketchConnTimes bool

	// Seed drives the client's deterministic randomness. Every client
	// derives its RNG from its own seed alone (never from engine or shard
	// state), so a client behaves identically whichever event-engine
	// shard it is placed on — the property the sharded netsim runs rely
	// on for byte-identical results at every shard count.
	Seed int64
	// MetricBucket is the metric bucket width.
	MetricBucket time.Duration
}

func (c *Config) fillDefaults() {
	if c.ServerPort == 0 {
		c.ServerPort = 80
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 100_000
	}
	if c.RequestPayloadLen == 0 {
		c.RequestPayloadLen = 200
	}
	if c.Device.HashRate == 0 {
		c.Device = cpumodel.CPU1
	}
	if c.MaxSolveBacklog == 0 {
		c.MaxSolveBacklog = 3 * time.Second
	}
	if len(c.RTOs) == 0 {
		c.RTOs = []time.Duration{time.Second, 3 * time.Second, 7 * time.Second}
	}
	if c.ResponseTimeout == 0 {
		c.ResponseTimeout = 10 * time.Second
	}
	if c.MetricBucket == 0 {
		c.MetricBucket = time.Second
	}
	if c.StopAt == 0 {
		c.StopAt = 1<<62 - 1
	}
}

// connState tracks one connection attempt.
type connState int

const (
	stateSynSent connState = iota + 1
	stateSolving
	stateEstablished
	stateDone
)

type cconn struct {
	port      uint16
	isn       uint32
	state     connState
	startedAt time.Duration
	rtoEv     netsim.Timer
	respEv    netsim.Timer
	rtoIdx    int
	gotBytes  int
	wantBytes int
	solved    bool
}

// Metrics collects client-side measurements.
type Metrics struct {
	// BytesIn feeds the client throughput plots.
	BytesIn *stats.Series
	// ConnTimes are handshake completion times in seconds (Fig. 6), with
	// the simulation times at which they completed for windowing. Nil
	// when Config.SketchConnTimes routes the stream into ConnSketch.
	ConnTimes   []float64
	ConnTimesAt []time.Duration
	// ConnSketch summarises connection times in O(1) memory when
	// Config.SketchConnTimes is set; nil otherwise.
	ConnSketch *stats.SummarySketch
	// Attempts/Successes/Failures per bucket drive the Fig. 15
	// %-established series.
	Attempts  *stats.Series
	Successes *stats.Series
	Failures  *stats.Series

	Started       uint64
	Established   uint64
	Completed     uint64
	Failed        uint64
	SolvesStarted uint64
	SolvesAborted uint64
	// SkippedBusy counts arrivals deferred because the kernel was still
	// solving earlier challenges (blocking connect).
	SkippedBusy  uint64
	RSTsReceived uint64
	RetriesSYN   uint64
}

// Client is a simulated benign host.
type Client struct {
	cfg Config
	eng *netsim.Engine
	net *netsim.Network
	rnd *rand.Rand

	isns     *tcpkit.ISNSource
	cpu      *cpumodel.CPU
	nextPort uint32
	conns    map[uint16]*cconn

	metrics *Metrics
}

// New builds a client and attaches it to the network.
func New(eng *netsim.Engine, network *netsim.Network, link netsim.LinkConfig, cfg Config) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		cfg:      cfg,
		eng:      eng,
		net:      network,
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
		isns:     tcpkit.NewISNSource(cfg.Seed + 7),
		cpu:      cpumodel.NewCPU(cfg.Device, cfg.MetricBucket),
		nextPort: 10000,
		conns:    make(map[uint16]*cconn),
		metrics: &Metrics{
			BytesIn:   stats.NewSeries(cfg.MetricBucket),
			Attempts:  stats.NewSeries(cfg.MetricBucket),
			Successes: stats.NewSeries(cfg.MetricBucket),
			Failures:  stats.NewSeries(cfg.MetricBucket),
		},
	}
	if cfg.SketchConnTimes {
		c.metrics.ConnSketch = stats.NewSummarySketch(0.10, 0.50, 0.90)
	}
	if err := network.Attach(c, link); err != nil {
		return nil, fmt.Errorf("clientsim: %w", err)
	}
	if cfg.Rate > 0 {
		c.eng.ScheduleAt(cfg.StartAt, c.arrival)
	}
	return c, nil
}

// Addr implements netsim.Node.
func (c *Client) Addr() netsim.Addr { return c.cfg.Addr }

// SnapshotState implements netsim.Snapshotter: a deep capture of the
// client, its connections, CPU model, and metrics, so speculative shard
// execution can roll the client back to a committed window.
func (c *Client) SnapshotState() any { return netsim.CaptureState(c) }

// RestoreState implements netsim.Snapshotter.
func (c *Client) RestoreState(state any) { state.(*netsim.StateSnap).Restore() }

// Metrics exposes the measurement state.
func (c *Client) Metrics() *Metrics { return c.metrics }

// CPU exposes the CPU model (Fig. 9 utilisation).
func (c *Client) CPU() *cpumodel.CPU { return c.cpu }

// arrival fires one Poisson arrival and schedules the next. While the
// patched kernel is busy solving, new requests wait rather than launch —
// the blocking-connect semantics of the kernel implementation (the app's
// connect() calls self-throttle to the solve rate).
func (c *Client) arrival() {
	if c.eng.Now() >= c.cfg.StopAt {
		return
	}
	if c.cfg.Solves && c.cpu.Backlog(c.eng.Now()) > c.cfg.MaxSolveBacklog {
		c.metrics.SkippedBusy++
	} else {
		c.Connect()
	}
	delay := time.Duration(c.rnd.ExpFloat64() / c.cfg.Rate * float64(time.Second))
	c.eng.Schedule(delay, c.arrival)
}

// Connect opens one connection attempt.
func (c *Client) Connect() {
	port := uint16(1024 + c.nextPort%60000)
	c.nextPort++
	if _, busy := c.conns[port]; busy {
		// Extremely long-lived attempt still holds the port; skip.
		c.metrics.Failed++
		return
	}
	cc := &cconn{
		port:      port,
		isn:       c.isns.Next(),
		state:     stateSynSent,
		startedAt: c.eng.Now(),
		wantBytes: c.cfg.RequestBytes,
	}
	c.conns[port] = cc
	c.metrics.Started++
	c.metrics.Attempts.Add(c.eng.Now(), 1)
	c.sendSYN(cc)
	c.armRTO(cc)
}

func (c *Client) sendSYN(cc *cconn) {
	opts, err := tcpopt.MarshalOptions([]tcpopt.Option{
		tcpopt.MSSOption(1460),
		tcpopt.WScaleOption(7),
	})
	if err != nil {
		opts = nil
	}
	c.net.Send(tcpkit.Segment{
		Src: c.cfg.Addr, Dst: c.cfg.ServerAddr,
		SrcPort: cc.port, DstPort: c.cfg.ServerPort,
		Seq: cc.isn, Flags: tcpkit.FlagSYN, Window: 65535,
		Options: opts,
	})
}

func (c *Client) armRTO(cc *cconn) {
	if cc.rtoIdx >= len(c.cfg.RTOs) {
		c.fail(cc)
		return
	}
	timeout := c.cfg.RTOs[cc.rtoIdx]
	cc.rtoEv = c.eng.Schedule(timeout, func() {
		if cc.state != stateSynSent {
			return
		}
		cc.rtoIdx++
		if cc.rtoIdx >= len(c.cfg.RTOs) {
			c.fail(cc)
			return
		}
		c.metrics.RetriesSYN++
		c.sendSYN(cc)
		c.armRTO(cc)
	})
}

// Handle implements netsim.Node.
func (c *Client) Handle(seg tcpkit.Segment) {
	if seg.Src != c.cfg.ServerAddr || seg.SrcPort != c.cfg.ServerPort {
		return
	}
	cc, ok := c.conns[seg.DstPort]
	if !ok {
		return
	}
	switch {
	case seg.Flags.Has(tcpkit.FlagSYN | tcpkit.FlagACK):
		c.onSynAck(cc, seg)
	case seg.Flags.Has(tcpkit.FlagRST):
		c.metrics.RSTsReceived++
		c.fail(cc)
	case seg.Flags.Has(tcpkit.FlagACK) && seg.PayloadLen > 0:
		c.onData(cc, seg)
	}
}

func (c *Client) onSynAck(cc *cconn, seg tcpkit.Segment) {
	if cc.state != stateSynSent {
		return // duplicate
	}
	cc.rtoEv.Cancel()
	cc.rtoEv = netsim.Timer{}
	serverISN := seg.Seq
	opts, err := tcpopt.ParseOptions(seg.Options)
	if err != nil {
		opts = nil
	}
	chOpt, challenged := tcpopt.FindOption(opts, tcpopt.KindChallenge)
	if challenged && c.cfg.Solves {
		blk, err := tcpopt.ParseChallenge(chOpt)
		if err != nil {
			c.fail(cc)
			return
		}
		if c.cpu.Backlog(c.eng.Now()) > c.cfg.MaxSolveBacklog {
			c.metrics.SolvesAborted++
			c.fail(cc)
			return
		}
		cc.state = stateSolving
		c.metrics.SolvesStarted++
		hashes := puzzle.SampleSolveHashes(c.rnd, blk.Challenge.Params)
		done := c.cpu.Charge(c.eng.Now(), float64(hashes))
		c.eng.ScheduleAt(done, func() {
			if cc.state != stateSolving {
				return
			}
			cc.solved = true
			c.finishHandshake(cc, serverISN, &blk.Challenge)
		})
		return
	}
	// Plain SYN-ACK, or a challenge the unpatched client cannot read: ACK
	// immediately. (Unpatched stacks ignore unknown options.)
	c.finishHandshake(cc, serverISN, nil)
}

// finishHandshake sends the final ACK (with a solution block when ch is
// non-nil), marks the connection established from the client's view, and
// issues the application request.
func (c *Client) finishHandshake(cc *cconn, serverISN uint32, ch *puzzle.Challenge) {
	var opts []byte
	if ch != nil {
		sol := c.solutionFor(*ch)
		blk := tcpopt.SolutionBlock{MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol}
		if opt, err := tcpopt.EncodeSolution(blk); err == nil {
			if marshalled, err := tcpopt.MarshalOptions([]tcpopt.Option{opt}); err == nil {
				opts = marshalled
			}
		}
	}
	now := c.eng.Now()
	c.net.Send(tcpkit.Segment{
		Src: c.cfg.Addr, Dst: c.cfg.ServerAddr,
		SrcPort: cc.port, DstPort: c.cfg.ServerPort,
		Seq: cc.isn + 1, Ack: serverISN + 1,
		Flags: tcpkit.FlagACK, Window: 65535,
		Options: opts,
	})
	cc.state = stateEstablished
	c.metrics.Established++
	if c.metrics.ConnSketch != nil {
		c.metrics.ConnSketch.Observe((now - cc.startedAt).Seconds())
	} else {
		c.metrics.ConnTimes = append(c.metrics.ConnTimes, (now - cc.startedAt).Seconds())
		c.metrics.ConnTimesAt = append(c.metrics.ConnTimesAt, now)
	}
	// Issue the gettext/size request.
	c.net.Send(tcpkit.Segment{
		Src: c.cfg.Addr, Dst: c.cfg.ServerAddr,
		SrcPort: cc.port, DstPort: c.cfg.ServerPort,
		Seq: cc.isn + 1, Ack: serverISN + 1,
		Flags:      tcpkit.FlagACK | tcpkit.FlagPSH,
		PayloadLen: c.cfg.RequestPayloadLen,
		Meta:       cc.wantBytes,
	})
	cc.respEv = c.eng.Schedule(c.cfg.ResponseTimeout, func() {
		if cc.state == stateEstablished {
			c.fail(cc)
		}
	})
}

// solutionFor produces the wire solution for a challenge. The hash *count*
// was already charged to the CPU model; under SimulatedCrypto the bits are
// derived canonically from the preimage (see internal/pzengine) instead of
// brute forced, and the paired server engine accepts them. With real crypto
// the genuine search runs on the host — use small difficulties.
func (c *Client) solutionFor(ch puzzle.Challenge) puzzle.Solution {
	if c.cfg.SimulatedCrypto {
		return pzengine.SimSolution(ch)
	}
	sol, _, err := puzzle.Solve(ch)
	if err != nil {
		// Unsolvable parameters; return an empty (invalid) solution so the
		// server rejects it rather than wedging the client.
		return puzzle.Solution{Params: ch.Params, Timestamp: ch.Timestamp}
	}
	return sol
}

func (c *Client) onData(cc *cconn, seg tcpkit.Segment) {
	if cc.state != stateEstablished {
		return
	}
	cc.gotBytes += seg.PayloadLen
	c.metrics.BytesIn.Add(c.eng.Now(), float64(seg.WireSize()))
	if cc.gotBytes >= cc.wantBytes {
		cc.state = stateDone
		cc.respEv.Cancel()
		c.metrics.Completed++
		c.metrics.Successes.Add(c.eng.Now(), 1)
		delete(c.conns, cc.port)
	}
}

func (c *Client) fail(cc *cconn) {
	if cc.state == stateDone {
		return
	}
	cc.state = stateDone
	cc.rtoEv.Cancel()
	cc.respEv.Cancel()
	c.metrics.Failed++
	c.metrics.Failures.Add(c.eng.Now(), 1)
	delete(c.conns, cc.port)
}
