package lint_test

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
	"github.com/tcppuzzles/tcppuzzles/internal/lint/linttest"
)

// The allowcheck fixture runs with nodeterm active so it can show both
// halves of the contract: a malformed annotation still suppresses its
// target (leaving only the allowcheck diagnostic), while an annotation
// naming an unknown analyzer suppresses nothing.
func TestAllowcheck(t *testing.T) {
	linttest.Run(t, "testdata/src/allowcheck/allow", module+"/internal/netsim",
		lint.Nodeterm, lint.Allowcheck)
}
