// Fixture: sim/runner is the one deterministic package allowed to start
// goroutines — but the rest of the contract (wall clock, global rand,
// environment) still binds.
package runner

import "time"

func workers(n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }() // goroutines allowed here
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func stillNoWallClock() time.Time {
	return time.Now() // want `time\.Now is nondeterministic`
}
