// Fixture: nodeterm inside a deterministic package (type-checked as
// internal/netsim). Positive cases carry want comments; suppressed cases
// carry a //tcpz:allow with a reason and must stay silent.
package netsim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() {
	_ = time.Now()                // want `time\.Now is nondeterministic`
	_ = time.Since(time.Time{})   // want `time\.Since is nondeterministic`
	ch := time.After(time.Second) // want `time\.After is nondeterministic`
	_ = ch
	time.Sleep(time.Millisecond) // want `time\.Sleep is nondeterministic`
	t := time.NewTimer(1)        // want `time\.NewTimer is nondeterministic`
	_ = t
	f := time.Now // want `time\.Now is nondeterministic`
	_ = f
}

func globalRand() {
	_ = rand.Intn(4)     // want `math/rand\.Intn draws from the process-global source`
	_ = rand.Float64()   // want `math/rand\.Float64 draws from the process-global source`
	rand.Shuffle(1, nil) // want `math/rand\.Shuffle draws from the process-global source`
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `crypto/rand\.Read is nondeterministic`
}

func environment() {
	_ = os.Getenv("HOME")       // want `os\.Getenv is nondeterministic`
	_, _ = os.LookupEnv("HOME") // want `os\.LookupEnv is nondeterministic`
}

func goroutines() {
	go wallClock() // want `go statement outside`
}

// Seeded randomness and engine-style time arithmetic are the blessed
// seams: none of these may be reported.
func blessed(seed int64) {
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(4)
	_ = r.Float64()
	var virtual time.Duration
	virtual += 3 * time.Millisecond
	_ = time.Unix(0, 0).Add(virtual)
}

func suppressed() {
	_ = time.Now() //tcpz:allow nodeterm — wall clock feeds observability stats only, never simulation state
	//tcpz:allow nodeterm — debug-only jitter measurement, results-neutral by construction
	_ = rand.Int()
	//tcpz:allow nodeterm — shard workers are ordered by the window barrier
	go environment()
}
