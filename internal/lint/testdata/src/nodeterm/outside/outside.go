// Fixture: the same ambient-nondeterminism sins as the determ fixture,
// type-checked as puzzlenet — a real-network package outside the
// deterministic set. nodeterm must stay completely silent here.
package puzzlenet

import (
	"math/rand"
	"os"
	"time"
)

func wallClockIsFine() time.Time { return time.Now() }

func globalRandIsFine() int { return rand.Intn(4) }

func envIsFine() string { return os.Getenv("HOME") }

func goroutinesAreFine() { go wallClockIsFine() }
