// Fixture: snapfields walks the static type graph of every argument to
// netsim.CaptureState (stubbed here; the fixture is type-checked as
// netsim) and flags chan, func, and sync fields the reflective copier
// cannot restore on rollback.
package netsim

import (
	"sync"
	"time"
)

func CaptureState(roots ...any) any { return nil }

// Engine is one of the copier's skip types: the shard runner snapshots it
// itself, so nothing inside it is walked.
type Engine struct {
	mu   sync.Mutex
	wake chan int
}

type Metrics struct {
	counts map[string]int
	hist   []float64
}

type BadServer struct {
	mu     sync.Mutex // want `sync field sync\.Mutex BadServer\.mu is captured by netsim\.CaptureState`
	wake   chan int   // want `chan field BadServer\.wake is captured`
	onLen  func() int // want `func field BadServer\.onLen is captured`
	nested inner
	eng    *Engine // skip type: silent
	stats  Metrics
}

// Nested structs are walked field by field.
type inner struct {
	notify func() // want `func field BadServer\.nested\.notify is captured`
	depth  int
}

// Plain data all the way down: never reported.
type GoodServer struct {
	eng    *Engine
	stats  Metrics
	loc    *time.Location // immutable, copier-skipped
	matrix [][]float64
	peers  map[int]*GoodServer
}

// Interfaces stop the static walk; the dynamic type is captured at
// runtime through whatever concrete root holds it.
type Holder struct {
	anything any
}

type Annotated struct {
	//tcpz:allow snapfields — drained before every capture window; empty on restore by construction
	signal chan struct{}
}

func capture(b *BadServer, g *GoodServer, h *Holder, a *Annotated) {
	CaptureState(b, g, h, a)
}

// Fields declared in another package cannot carry an annotation, so the
// diagnostic falls back to the call site.
func captureForeign(tm *time.Timer) {
	CaptureState(tm) // want `captured state reaches Timer\.C \(chan field\)`
}

// Untouched types are never walked, no matter how hostile.
type neverCaptured struct {
	ch chan int
	fn func()
	mu sync.Mutex
}
