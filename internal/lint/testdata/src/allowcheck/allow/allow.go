// Fixture: allowcheck validates the suppression annotations themselves.
// Run together with nodeterm: a malformed annotation still suppresses its
// target (so exactly one actionable diagnostic survives), but an
// annotation naming an unknown analyzer suppresses nothing.
package netsim

import "time"

// Well-formed: suppresses nodeterm, silent under allowcheck.
func wellFormed() {
	_ = time.Now() //tcpz:allow nodeterm — feeds observability counters only, never simulation state
}

// The reason must be introduced by an em dash (or --).
func missingDash() {
	_ = time.Now() //tcpz:allow nodeterm the dash before this reason is missing // want `malformed //tcpz:allow: reason must be introduced by`
}

// The named analyzer must exist — and a typo suppresses nothing, so the
// line it meant to cover is still reported.
func unknownName() {
	//tcpz:allow nodterm — typo'd analyzer name // want `//tcpz:allow names unknown analyzer "nodterm"`
	_ = time.Now() // want `time\.Now is nondeterministic`
}
