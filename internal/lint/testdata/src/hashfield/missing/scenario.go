// Fixture: a sweep package that declares a Scenario but no
// scenarioHashExclusions map at all — the analyzer anchors one diagnostic
// on the type.
package sweep

type Scenario struct { // want `no scenarioHashExclusions map pinning the cache-hash exclusions`
	Seed   int64 `json:"seed"`
	Shards int   `json:"-"`
}
