// Fixture: a clean hashfield package. Every json:"-" field is pinned with
// a reason (or carries a reviewed //tcpz:allow), every pinned entry names
// a real excluded field, and the analyzer stays silent.
package sweep

type Scenario struct {
	Seed   int64  `json:"seed"`
	Attack string `json:"attack"`
	Shards int    `json:"-"`
	//tcpz:allow hashfield — scratch knob under review; pin or remove before release
	Scratch int `json:"-"`
}

var scenarioHashExclusions = map[string]string{
	"Shards": "execution topology only; the determinism matrix pins result " +
		"equality across shard counts",
}
