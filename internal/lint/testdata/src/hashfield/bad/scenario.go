// Fixture: hashfield violations. The Scenario here disagrees with its
// scenarioHashExclusions map in every way the analyzer distinguishes:
// excluded-but-unpinned, pinned-but-participating, pinned-with-no-reason,
// and a stale entry naming no field.
package sweep

type Scenario struct {
	Seed     int64  `json:"seed"`
	Attack   string `json:"attack"`
	Shards   int    `json:"-"`       // want `field Shards is excluded from the cache hash \(json:"-"\) but not pinned`
	Workers  int    `json:"workers"` // want `field Workers participates in the cache hash but is pinned`
	NoReason bool   `json:"-"`
}

var scenarioHashExclusions = map[string]string{
	"Workers":  "left behind after the field was re-tagged to participate",
	"NoReason": "",                                  // want `exclusion entry for NoReason has an empty reason`
	"Ghost":    "the field this pinned was deleted", // want `exclusion entry "Ghost" names no Scenario field`
}
