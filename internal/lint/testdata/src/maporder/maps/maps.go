// Fixture: maporder in a deterministic package (type-checked as
// internal/netsim). Map ranges whose bodies have order-sensitive side
// effects are reported unless the keys pass through a sort; pure
// accumulation and the collect-sort-range idiom stay silent.
package netsim

import "sort"

type engine struct{}

func (e *engine) Schedule(d int, f func())  {}
func (e *engine) SendFrom(src int, pkt any) {}

type sink struct{}

func (s *sink) Write(p []byte) (int, error) { return len(p), nil }

func channelSend(m map[int]int, ch chan int) {
	for k := range m { // want `order-sensitive side effect \(channel send\)`
		ch <- k
	}
}

func scheduleInBody(m map[int]*engine, e *engine) {
	for k := range m { // want `order-sensitive side effect \(call to Schedule\)`
		e.Schedule(k, nil)
	}
}

func sendFromInBody(m map[int]int, e *engine) {
	for k, v := range m { // want `order-sensitive side effect \(call to SendFrom\)`
		e.SendFrom(k, v)
	}
}

func writeInBody(m map[string][]byte, s *sink) {
	for _, v := range m { // want `order-sensitive side effect \(call to Write\)`
		_, _ = s.Write(v)
	}
}

func escapingAppendUnsorted(m map[int]int) []int {
	var out []int
	for k := range m { // want `appends to "out", which escapes the loop in map order`
		out = append(out, k)
	}
	return out
}

// The canonical idiom: collect the keys, sort, then range the slice.
func sortedKeys(m map[int]int, e *engine) {
	keys := make([]int, 0, len(m))
	for k := range m { // sorted below: not reported
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		e.Schedule(k, nil)
	}
}

// sort.Slice with a comparator also clears the escape.
func sortedStructs(m map[int]string) []string {
	var vals []string
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Commutative accumulation is order-insensitive and never reported.
func accumulate(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Building another map commutes too.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A slice declared inside the loop body never escapes in map order.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		n += len(doubled)
	}
	return n
}

func suppressed(m map[int]int, ch chan int) {
	//tcpz:allow maporder — the map holds at most one entry by construction
	for k := range m {
		ch <- k
	}
}

// Ranging a slice is always fine, side effects or not.
func sliceRange(xs []int, ch chan int) {
	for _, x := range xs {
		ch <- x
	}
}
