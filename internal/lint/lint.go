// Package lint is the static half of the repo's determinism contract: a
// suite of vet-style analyzers that prove, at compile time, the properties
// the runtime differential harnesses (determinism matrices, speculative
// oracles, cache round-trips) can only spot-check after the fact. The
// suite is built directly on go/ast and go/types — deliberately no
// golang.org/x/tools dependency — and is driven two ways: as a `go vet
// -vettool` unit checker (cmd/tcpz-vet) and in-process by the repo
// self-test TestRepoIsLintClean.
//
// A diagnostic is suppressed by an annotation on the offending line or the
// line directly above it:
//
//	//tcpz:allow <analyzer> — <reason>
//
// The reason is mandatory: the allowcheck analyzer reports any annotation
// with a missing reason or an unknown analyzer name, so every exemption in
// the tree is a reviewed, explained decision. See docs/DETERMINISM.md for
// the full contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis so the suite could migrate onto the real
// framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //tcpz:allow
	// annotations.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run reports violations via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked package ready for analysis: the unit of work
// shared by the vettool (sources from a vet .cfg, imports from compiler
// export data) and the self-test loader (sources from `go list`).
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// ImportPath is the package's import path. Distinct from
	// Pkg.Path() only in exotic vet configurations (test variants).
	ImportPath string

	allows map[string][]allowDirective // filename → directives, line-sorted
	out    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //tcpz:allow annotation for
// this analyzer covers the line (or the line above), or the position is in
// a _test.go file. Test files participate in type checking — a test
// variant must still compile — but the determinism contract binds
// production code; tests exercise nondeterminism on purpose (timeouts,
// t.TempDir, stress jitter).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppressed(position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	for _, d := range p.allows[pos.Filename] {
		if d.analyzer != p.Analyzer.Name {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// allowDirective is one parsed //tcpz:allow comment.
type allowDirective struct {
	pos      token.Position
	line     int
	analyzer string
	reason   string
	// malformed records a syntax problem for allowcheck to report; empty
	// means the directive parsed cleanly.
	malformed string
}

// allowRe matches "//tcpz:allow <analyzer> — <reason>". Like all Go
// directives the comment must start exactly with the marker (no space
// after //), which keeps prose that merely quotes the syntax inert.
var allowRe = regexp.MustCompile(`^//tcpz:allow\s+(\S+)\s*(.*)$`)

const allowPrefix = "//tcpz:allow"

func parseAllow(text string, pos token.Position) (allowDirective, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return allowDirective{}, false
	}
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		// "//tcpz:allow" with no analyzer at all.
		return allowDirective{
			pos: pos, line: pos.Line,
			malformed: "annotation names no analyzer; want //tcpz:allow <analyzer> — <reason>",
		}, true
	}
	d := allowDirective{pos: pos, line: pos.Line, analyzer: m[1]}
	rest := strings.TrimSpace(m[2])
	switch {
	case strings.HasPrefix(rest, "—"):
		d.reason = strings.TrimSpace(strings.TrimPrefix(rest, "—"))
	case strings.HasPrefix(rest, "--"):
		d.reason = strings.TrimSpace(strings.TrimPrefix(rest, "--"))
	case rest != "":
		d.malformed = "reason must be introduced by — (or --): //tcpz:allow <analyzer> — <reason>"
		return d, true
	}
	if d.reason == "" && d.malformed == "" {
		d.malformed = "annotation has no reason; every exemption must say why it is sound"
	}
	return d, true
}

// scanAllows extracts every //tcpz:allow directive, keyed by filename.
func scanAllows(fset *token.FileSet, files []*ast.File) map[string][]allowDirective {
	allows := make(map[string][]allowDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comments cannot carry directives
				}
				pos := fset.Position(c.Pos())
				if d, ok := parseAllow(c.Text, pos); ok {
					allows[pos.Filename] = append(allows[pos.Filename], d)
				}
			}
		}
	}
	return allows
}

// Check runs the analyzers over one package and returns the surviving
// diagnostics in deterministic (position, analyzer) order.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := scanAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			allows:     allows,
			out:        &out,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full suite in canonical order. allowcheck runs last so
// the annotations the other analyzers honour are themselves validated.
func All() []*Analyzer {
	return []*Analyzer{Nodeterm, Maporder, Hashfield, Snapfields, Allowcheck}
}

// modulePath is the import-path root of this repository.
const modulePath = "github.com/tcppuzzles/tcppuzzles"

// deterministicPkgs are the import-path roots (each covers its subtree)
// whose code runs inside — or configures — the simulation and therefore
// must be bit-for-bit replayable: no wall clock, no process environment,
// no unseeded randomness, no unordered concurrency. puzzle is included
// because the simulated protocol path runs through it; its injectable
// clock/RNG seams carry reviewed annotations.
var deterministicPkgs = []string{
	modulePath + "/internal/netsim",
	modulePath + "/internal/attacksim",
	modulePath + "/internal/clientsim",
	modulePath + "/internal/serversim",
	modulePath + "/internal/experiments",
	modulePath + "/sweep",
	modulePath + "/defense",
	modulePath + "/attack",
	modulePath + "/game",
	modulePath + "/sim",
	modulePath + "/puzzle",
}

// runnerPkg is the one deterministic package allowed to start goroutines:
// the work-stealing scenario runner (and the sharded engine via reviewed
// annotations) own all concurrency.
const runnerPkg = modulePath + "/sim/runner"

// IsDeterministicPkg reports whether the import path falls under the
// determinism contract.
func IsDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
