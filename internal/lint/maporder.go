package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` over a map whose body performs an
// iteration-order-sensitive side effect — a channel send, an append to a
// slice that outlives the loop, or a call into the event/packet layer
// (Schedule, SendFrom, sink writes). Go randomises map iteration order per
// run, so any such loop produces a different event or output order on
// every execution: exactly the bug class the engine's canonical delivery
// ordering exists to mask, and the one a determinism matrix only catches
// probabilistically after the fact.
//
// The blessed idiom — collect the keys, sort them, range the slice — is
// recognised: an append-accumulated key slice that is passed to a
// sort/slices call later in the same function is not reported. Pure
// accumulation (summing values, building another map) commutes and is
// always fine.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body has an order-sensitive side effect " +
		"without sorting the keys first",
	Run: runMaporder,
}

// orderSensitiveCalls name the callees whose invocation order is
// observable: event scheduling, packet emission, and stream output.
var orderSensitiveCalls = map[string]bool{
	"Schedule": true, "ScheduleAt": true,
	"SendFrom": true, "SendAt": true, "Send": true, "Deliver": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
}

// sortCalls name the functions that establish a canonical order over a
// collected key slice (package sort and package slices entry points).
var sortCalls = map[string]bool{
	"Sort": true, "Stable": true, "Strings": true, "Ints": true,
	"Float64s": true, "Slice": true, "SliceStable": true,
	"SortFunc": true, "SortStableFunc": true, "Sorted": true,
}

func runMaporder(pass *Pass) error {
	if !IsDeterministicPkg(pass.ImportPath) {
		return nil
	}
	for _, f := range pass.Files {
		// Examine each function body independently so the sorted-keys
		// recognition can look downstream of the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkFuncBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFuncBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested function literals get their own checkFuncBody visit
			// from runMaporder's walk; don't double-report their loops.
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if effect, escapes := rangeSideEffects(pass, rs); effect != "" {
			pass.Reportf(rs.For, "iteration over map %s with order-sensitive side effect (%s); collect and sort the keys first, or annotate why the order cannot be observed", exprString(rs.X), effect)
		} else if len(escapes) > 0 {
			// Appends into outer slices: fine iff every such slice is
			// sorted after the loop (the canonical sorted-keys idiom).
			for _, obj := range escapes {
				if !sortedAfter(pass, body, obj, rs.End()) {
					pass.Reportf(rs.For, "iteration over map %s appends to %q, which escapes the loop in map order; sort %q afterwards (or collect and sort the keys first)", exprString(rs.X), obj.Name(), obj.Name())
					break
				}
			}
		}
		return true
	})
}

// rangeSideEffects scans a range body. It returns a description of the
// first hard side effect (send / order-sensitive call), and the set of
// outer-scope slice variables the body appends to — reported separately so
// the sort-after-loop idiom can clear them.
func rangeSideEffects(pass *Pass, rs *ast.RangeStmt) (effect string, escapes []types.Object) {
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "channel send"
			return false
		case *ast.CallExpr:
			if name := calleeName(n); orderSensitiveCalls[name] {
				effect = "call to " + name
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || seen[obj] {
					continue
				}
				// Declared outside the loop → the element order is
				// observable after the loop ends.
				if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
					seen[obj] = true
					escapes = append(escapes, obj)
				}
			}
		}
		return true
	})
	return effect, escapes
}

// sortedAfter reports whether obj is passed to a sort call (or a Sort
// method) somewhere in body after pos.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !sortCalls[calleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		// Method form: keys.Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentionsObject(pass, sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeName returns the bare name of a call's callee (method or function),
// or "" when it has no identifier form.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
