package lint

import (
	"go/ast"
	"go/types"
)

// Nodeterm forbids the ambient-nondeterminism entry points inside the
// deterministic package set: the wall clock, the process environment,
// unseeded global randomness, and bare goroutines outside the runner.
// Every one of these has a deterministic seam the simulator already
// provides — the engine clock (Engine.Now), Scenario.Seed-derived RNGs,
// explicit configuration, and the runner/shard-barrier concurrency — so a
// use of the ambient version is either a bug or a reviewed, annotated
// exemption.
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock time, environment reads, unseeded randomness, " +
		"and bare go statements in deterministic packages",
	Run: runNodeterm,
}

// forbiddenFuncs maps package path → function name → the deterministic
// replacement named in the diagnostic.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "the engine clock (Engine.Now / injected clock)",
		"Since":     "differences of engine timestamps",
		"Until":     "differences of engine timestamps",
		"After":     "Engine.Schedule",
		"AfterFunc": "Engine.Schedule",
		"Tick":      "Engine.Schedule",
		"NewTimer":  "Engine.Schedule",
		"NewTicker": "Engine.Schedule",
		"Sleep":     "an event scheduled at a virtual time",
	},
	"os": {
		"Getenv":    "explicit configuration (Scenario fields, flags)",
		"LookupEnv": "explicit configuration (Scenario fields, flags)",
		"Environ":   "explicit configuration (Scenario fields, flags)",
	},
	"crypto/rand": {
		"Read":  "a Scenario.Seed-derived source",
		"Int":   "a Scenario.Seed-derived source",
		"Prime": "a Scenario.Seed-derived source",
		"Text":  "a Scenario.Seed-derived source",
	},
}

// seededRandCtors are the math/rand package-level functions that merely
// construct seedable values; everything else at package level draws from
// the process-global source and is forbidden.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // constructor: takes the caller's *Rand
	"NewPCG":     true, // math/rand/v2 seeded generators
	"NewChaCha8": true,
}

func runNodeterm(pass *Pass) error {
	if !IsDeterministicPkg(pass.ImportPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.ImportPath != runnerPkg {
					pass.Reportf(n.Pos(), "go statement outside %s: deterministic packages must not start goroutines (the runner and the shard barriers own all concurrency)", runnerPkg)
				}
			case *ast.Ident:
				fn, ok := pass.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are seeded
				}
				pkgPath, name := fn.Pkg().Path(), fn.Name()
				if alt, bad := forbiddenFuncs[pkgPath][name]; bad {
					pass.Reportf(n.Pos(), "%s.%s is nondeterministic; use %s", pkgPath, name, alt)
					return true
				}
				if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandCtors[name] {
					pass.Reportf(n.Pos(), "%s.%s draws from the process-global source; use a Scenario.Seed-derived *rand.Rand (rand.New(rand.NewSource(seed)))", pkgPath, name)
				}
			}
			return true
		})
	}
	return nil
}
