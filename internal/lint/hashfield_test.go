package lint_test

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
	"github.com/tcppuzzles/tcppuzzles/internal/lint/linttest"
)

func TestHashfieldViolations(t *testing.T) {
	linttest.Run(t, "testdata/src/hashfield/bad", module+"/sweep", lint.Hashfield)
}

func TestHashfieldClean(t *testing.T) {
	linttest.Run(t, "testdata/src/hashfield/good", module+"/sweep", lint.Hashfield)
}

func TestHashfieldMissingExclusionsMap(t *testing.T) {
	linttest.Run(t, "testdata/src/hashfield/missing", module+"/sweep", lint.Hashfield)
}
