package lint_test

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
	"github.com/tcppuzzles/tcppuzzles/internal/lint/linttest"
)

func TestSnapfields(t *testing.T) {
	linttest.Run(t, "testdata/src/snapfields/snap", module+"/internal/netsim", lint.Snapfields)
}
