package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Allowcheck validates the suppression annotations themselves: a
// //tcpz:allow comment must name a real analyzer and carry a non-empty
// reason after an em dash (or --). A malformed annotation still
// suppresses its target — so the build surfaces exactly one actionable
// diagnostic, this one — but it cannot land: the self-test and `make
// lint` pin zero diagnostics of any kind. Allowcheck diagnostics are not
// themselves suppressible.
var Allowcheck = &Analyzer{
	Name: "allowcheck",
	Doc: "require //tcpz:allow annotations to name a known analyzer and " +
		"give a reason",
	Run: runAllowcheck,
}

func runAllowcheck(pass *Pass) error {
	known := map[string]bool{
		Nodeterm.Name: true, Maporder.Name: true,
		Hashfield.Name: true, Snapfields.Name: true,
	}
	files := make([]string, 0, len(pass.allows))
	for name := range pass.allows {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		for _, d := range pass.allows[name] {
			switch {
			case d.malformed != "":
				pass.reportUnsuppressable(d, "malformed //tcpz:allow: %s", d.malformed)
			case !known[d.analyzer]:
				pass.reportUnsuppressable(d, "//tcpz:allow names unknown analyzer %q (known: nodeterm, maporder, hashfield, snapfields)", d.analyzer)
			}
		}
	}
	return nil
}

// reportUnsuppressable records a diagnostic at a directive's own position,
// bypassing the suppression check: an annotation cannot excuse itself.
func (p *Pass) reportUnsuppressable(d allowDirective, format string, args ...any) {
	if strings.HasSuffix(d.pos.Filename, "_test.go") {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      d.pos,
		Message:  fmt.Sprintf(format, args...),
	})
}
