// Package linttest is an analysistest-style fixture harness for the
// internal/lint analyzers, built on the standard library's source
// importer. A fixture is a directory of Go files type-checked as a single
// package under a caller-chosen import path (so package-scoped analyzers
// see realistic paths); expectations are `// want "regexp"` comments: each
// diagnostic an analyzer reports must be matched by a want on its line,
// and every want must be matched by a diagnostic.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
)

// Run type-checks the fixture directory as importPath and checks the
// analyzers' diagnostics against the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg := load(t, dir, importPath)
	diags, err := lint.Check(pkg, analyzers)
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// load parses and type-checks one fixture package. Fixture imports must be
// resolvable from source (standard library packages); module-internal
// imports would need the full loader and are deliberately unsupported —
// fixtures stay small and self-contained.
func load(t *testing.T, dir, importPath string) *lint.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture dir %s holds no Go files", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return &lint.Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe extracts the expectation strings from a `// want` comment:
// double-quoted (with escapes) or backquoted regexps, one per expected
// diagnostic on that line.
var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRe.FindAllString(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", pos)
				}
				for _, arg := range args {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want pattern does not compile: %v", pos, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
