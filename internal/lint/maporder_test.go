package lint_test

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
	"github.com/tcppuzzles/tcppuzzles/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata/src/maporder/maps", module+"/internal/netsim", lint.Maporder)
}
