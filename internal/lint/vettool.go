package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol with
// the standard library only (golang.org/x/tools is unavailable in the
// build environment, so the usual unitchecker package cannot be used).
// The protocol, as driven by cmd/go:
//
//   - `tool -V=full` prints a single line identifying the tool and a
//     content hash of its executable; cmd/go folds it into the vet action
//     cache key so rebuilding the tool invalidates cached vet results.
//   - `tool -flags` prints a JSON description of the tool's flags.
//   - `tool <file>.cfg` analyzes one package: the cfg names the Go
//     sources, the import map, and the compiler export data of every
//     dependency. Diagnostics go to stderr; exit status 2 means findings.
//     The tool must write cfg.VetxOutput (facts for downstream packages —
//     empty here, the suite uses none) even when it reports nothing.
//
// cmd/go invokes the tool once per dependency with VetxOnly=true purely to
// materialise facts; those invocations skip analysis entirely.

// vetConfig mirrors the JSON written by cmd/go for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by cmd/tcpz-vet: it dispatches between
// the unit-checker protocol (driven by `go vet -vettool`) and standalone
// package patterns (`tcpz-vet ./...`). It returns the process exit code.
func Main(args []string) int {
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		return printVersion()
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		return 0
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		return runUnit(args[0])
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "tcpz-vet: unknown flag %s\nusage: tcpz-vet [packages] | go vet -vettool=$(which tcpz-vet) [packages]\n", p)
			return 1
		}
	}
	return runStandalone(patterns)
}

// printVersion implements -V=full: name, version, and a hash of the
// executable so cmd/go's vet cache invalidates when the tool changes.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s version tcpz-vet-1 buildID=%x\n", filepath.Base(exe), h.Sum(nil))
	return 0
}

// runUnit analyzes one vet unit described by a cfg file.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tcpz-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite computes no cross-package facts, but cmd/go requires the
	// vetx output to exist before it will trust the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("tcpz-vet: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	pkg, err := checkFiles(fset, importer.ForCompiler(fset, compiler, lookup), cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := Check(pkg, All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads packages through the go toolchain and analyzes the
// module's own packages — the same work `go vet -vettool` drives, without
// needing the vet harness (used directly and by TestRepoIsLintClean).
func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := LoadPackages(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Check(pkg, All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "tcpz-vet: %d diagnostic(s)\n", total)
		return 2
	}
	return 0
}
