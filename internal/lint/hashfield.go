package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Hashfield proves that no sweep.Scenario field can drift into — or out
// of — the result-cache hash unreviewed. sweep.Hash serialises the
// canonical Scenario as JSON, so a field participates in the cache key
// exactly when its json tag is not "-". The analyzer requires the two
// sources of truth to agree: every `json:"-"` field must be pinned (with a
// reason) in the package's scenarioHashExclusions map, every pinned entry
// must name a real, actually-excluded field, and every other field simply
// participates. Adding a knob therefore either feeds the hash (new cache
// identities, old entries miss — safe) or forces an explicit, reviewed
// exclusion entry; it can never silently poison warm sweep caches.
var Hashfield = &Analyzer{
	Name: "hashfield",
	Doc: "require every sweep.Scenario field to feed the canonical cache " +
		"hash or be pinned in scenarioHashExclusions with a reason",
	Run: runHashfield,
}

const (
	scenarioTypeName  = "Scenario"
	exclusionsVarName = "scenarioHashExclusions"
)

func runHashfield(pass *Pass) error {
	if pass.Pkg.Name() != "sweep" {
		return nil
	}
	scenario := findStructType(pass, scenarioTypeName)
	if scenario == nil {
		return nil // a sweep package without a Scenario is out of scope
	}
	exclusions, entryPos := findExclusions(pass)
	if exclusions == nil {
		pass.Reportf(scenario.Pos(), "package declares %s but no %s map pinning the cache-hash exclusions (see docs/DETERMINISM.md)", scenarioTypeName, exclusionsVarName)
		return nil
	}

	fields := map[string]bool{}
	for _, field := range scenario.Fields.List {
		tag := ""
		if field.Tag != nil {
			unquoted, err := strconv.Unquote(field.Tag.Value)
			if err == nil {
				tag = reflect.StructTag(unquoted).Get("json")
			}
		}
		jsonName, _, _ := strings.Cut(tag, ",")
		excluded := jsonName == "-"
		for _, name := range fieldNames(field) {
			fields[name] = true
			_, pinned := exclusions[name]
			switch {
			case excluded && !pinned:
				pass.Reportf(field.Pos(), "field %s is excluded from the cache hash (json:\"-\") but not pinned in %s; add an entry explaining why results are identical without it", name, exclusionsVarName)
			case !excluded && pinned:
				pass.Reportf(field.Pos(), "field %s participates in the cache hash but is pinned in %s; remove the stale entry or tag the field json:\"-\"", name, exclusionsVarName)
			case excluded && pinned && exclusions[name] == "":
				pass.Reportf(entryPos[name], "exclusion entry for %s has an empty reason; say why results are identical without the field", name)
			}
		}
	}
	stale := make([]string, 0, len(exclusions))
	for name := range exclusions {
		if !fields[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		pass.Reportf(entryPos[name], "exclusion entry %q names no %s field; remove the stale entry", name, scenarioTypeName)
	}
	return nil
}

// findStructType locates a package-level struct type declaration by name.
func findStructType(pass *Pass, name string) *ast.StructType {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// findExclusions parses the scenarioHashExclusions composite literal:
// field name → reason, plus the source position of each entry.
func findExclusions(pass *Pass) (map[string]string, map[string]token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != exclusionsVarName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					excl := map[string]string{}
					pos := map[string]token.Pos{}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := stringConst(pass, kv.Key)
						if !ok {
							continue
						}
						val, _ := stringConst(pass, kv.Value)
						excl[key] = val
						pos[key] = kv.Pos()
					}
					return excl, pos
				}
			}
		}
	}
	return nil, nil
}

// stringConst evaluates a constant string expression (literal, named
// constant, or concatenation) via the type checker's constant folding.
func stringConst(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		// Embedded field: named by its type.
		switch t := field.Type.(type) {
		case *ast.Ident:
			return []string{t.Name}
		case *ast.SelectorExpr:
			return []string{t.Sel.Name}
		}
		return nil
	}
	names := make([]string, 0, len(field.Names))
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	return names
}
