package lint_test

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
	"github.com/tcppuzzles/tcppuzzles/internal/lint/linttest"
)

const module = "github.com/tcppuzzles/tcppuzzles"

func TestNodetermInDeterministicPackage(t *testing.T) {
	linttest.Run(t, "testdata/src/nodeterm/determ", module+"/internal/netsim", lint.Nodeterm)
}

func TestNodetermSilentOutsideContract(t *testing.T) {
	linttest.Run(t, "testdata/src/nodeterm/outside", module+"/puzzlenet", lint.Nodeterm)
}

func TestNodetermRunnerMayStartGoroutines(t *testing.T) {
	linttest.Run(t, "testdata/src/nodeterm/runner", module+"/sim/runner", lint.Nodeterm)
}
