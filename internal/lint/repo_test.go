package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer suite over every package in
// the module and requires zero diagnostics — the same bar `make lint`
// enforces via go vet. Every ambient-nondeterminism seam in the tree must
// therefore be either fixed or carry a reviewed //tcpz:allow annotation,
// and the annotations themselves must be well-formed.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(string(out))

	pkgs, err := lint.LoadPackages(root, []string{"./..."})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, lint.All())
		if err != nil {
			t.Fatalf("Check %s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
