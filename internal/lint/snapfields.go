package lint

import (
	"go/ast"
	"go/types"
)

// Snapfields guards the speculative engine's reflective state copier. Any
// object handed to netsim.CaptureState is deep-snapshotted and restored in
// place on rollback — but the walker cannot restore what it deliberately
// does not follow: channel contents, a closure's captured variables, and
// sync primitives (restoring a copied mutex over a held one corrupts it).
// A chan, func, or sync/sync.atomic field reachable from a captured root
// is therefore a silent wrong-restore at runtime. The analyzer walks the
// static type graph of every CaptureState argument and reports each such
// field, so wiring a new type into the Snapshotter machinery forces either
// a restructure or a reviewed //tcpz:allow explaining why the field is
// rollback-safe (e.g. the closure's captured state is reachable from the
// roots some other way).
var Snapfields = &Analyzer{
	Name: "snapfields",
	Doc: "forbid chan, func, and sync fields reachable from types handed " +
		"to the netsim.CaptureState reflective copier",
	Run: runSnapfields,
}

// snapSkipTypes are the netsim plumbing types the copier's walk
// deliberately stops at (the shard runner snapshots engine, network and
// source-store state itself; Timer handles are restored by the engine
// snapshot; a time.Location is immutable).
var snapSkipTypes = map[string]bool{
	"Engine": true, "Network": true, "SourceStore": true, "Timer": true,
}

func runSnapfields(pass *Pass) error {
	reported := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Name() != "CaptureState" || fn.Pkg() == nil || fn.Pkg().Name() != "netsim" {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok {
					continue
				}
				w := &snapWalker{pass: pass, call: call, reported: reported, seen: map[types.Type]bool{}}
				w.walk(tv.Type, typeLabel(tv.Type))
			}
			return true
		})
	}
	return nil
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

type snapWalker struct {
	pass     *Pass
	call     *ast.CallExpr
	reported map[types.Object]bool
	seen     map[types.Type]bool
}

// walk recurses through the statically reachable type graph exactly the
// way the copier does: pointers, named types, structs, slices, arrays and
// map key/element types. Interfaces stop the walk (the dynamic type is
// captured at runtime through the concrete root that holds it), as do the
// netsim plumbing types the copier skips.
func (w *snapWalker) walk(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		w.walk(t.Elem(), path)
	case *types.Named:
		if skipSnapType(t) {
			return
		}
		w.walk(t.Underlying(), path)
	case *types.Slice:
		w.walk(t.Elem(), path)
	case *types.Array:
		w.walk(t.Elem(), path)
	case *types.Map:
		w.walk(t.Key(), path)
		w.walk(t.Elem(), path)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			field := t.Field(i)
			fieldPath := path + "." + field.Name()
			if bad := uncopyableKind(field.Type()); bad != "" {
				w.report(field, fieldPath, bad)
				continue
			}
			w.walk(field.Type(), fieldPath)
		}
	}
}

// uncopyableKind classifies a field type the copier cannot restore, or ""
// if the type is fine to recurse into.
func uncopyableKind(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return "sync field " + obj.Pkg().Path() + "." + obj.Name()
			}
		}
	}
	switch t.Underlying().(type) {
	case *types.Chan:
		return "chan field"
	case *types.Signature:
		return "func field"
	}
	return ""
}

func skipSnapType(t *types.Named) bool {
	obj := t.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Name() == "netsim" && snapSkipTypes[obj.Name()] {
		return true
	}
	if obj.Pkg().Path() == "time" && obj.Name() == "Location" {
		return true
	}
	return false
}

// report anchors the diagnostic on the field declaration when it lives in
// the package under analysis (so a //tcpz:allow can sit on the field), and
// falls back to the CaptureState call site for fields imported from other
// packages.
func (w *snapWalker) report(field *types.Var, path, kind string) {
	if w.reported[field] {
		return
	}
	w.reported[field] = true
	if field.Pkg() == w.pass.Pkg && field.Pos().IsValid() {
		w.pass.Reportf(field.Pos(), "%s %s is captured by netsim.CaptureState but cannot be restored on rollback; restructure it or annotate why it is rollback-safe", kind, path)
		return
	}
	w.pass.Reportf(w.call.Pos(), "captured state reaches %s (%s), which the reflective copier cannot restore on rollback", path, kind)
}

func typeLabel(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return t.String()
}
