package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		directive bool
		analyzer  string
		reason    string
		malformed string
	}{
		{text: "// plain comment"},
		{text: "// prose that merely mentions tcpz:allow is inert"},
		{
			text:      "//tcpz:allow nodeterm — wall clock feeds stats only",
			directive: true, analyzer: "nodeterm",
			reason: "wall clock feeds stats only",
		},
		{
			text:      "//tcpz:allow maporder -- ascii double dash works too",
			directive: true, analyzer: "maporder",
			reason: "ascii double dash works too",
		},
		{
			text:      "//tcpz:allow",
			directive: true,
			malformed: "annotation names no analyzer; want //tcpz:allow <analyzer> — <reason>",
		},
		{
			text:      "//tcpz:allow nodeterm",
			directive: true, analyzer: "nodeterm",
			malformed: "annotation has no reason; every exemption must say why it is sound",
		},
		{
			text:      "//tcpz:allow nodeterm —",
			directive: true, analyzer: "nodeterm",
			malformed: "annotation has no reason; every exemption must say why it is sound",
		},
		{
			text:      "//tcpz:allow nodeterm forgot the dash",
			directive: true, analyzer: "nodeterm",
			malformed: "reason must be introduced by — (or --): //tcpz:allow <analyzer> — <reason>",
		},
	}
	for _, tc := range cases {
		d, ok := parseAllow(tc.text, token.Position{Filename: "x.go", Line: 1})
		if ok != tc.directive {
			t.Errorf("parseAllow(%q) recognized=%v, want %v", tc.text, ok, tc.directive)
			continue
		}
		if !ok {
			continue
		}
		if d.analyzer != tc.analyzer || d.reason != tc.reason || d.malformed != tc.malformed {
			t.Errorf("parseAllow(%q) = {analyzer:%q reason:%q malformed:%q}, want {analyzer:%q reason:%q malformed:%q}",
				tc.text, d.analyzer, d.reason, d.malformed, tc.analyzer, tc.reason, tc.malformed)
		}
	}
}

// A reasonless //tcpz:allow must itself surface as a diagnostic — and one
// that no annotation can suppress: "allowcheck" is deliberately absent
// from the known-analyzer set, so even a well-formed attempt to allow it
// is reported as unknown.
func TestReasonlessAllowIsReported(t *testing.T) {
	const src = `package netsim

func f() int {
	//tcpz:allow nodeterm
	//tcpz:allow allowcheck — an annotation cannot excuse itself
	return 0
}
`
	pkg := checkSource(t, "reasonless.go", src)
	diags, err := Check(pkg, []*Analyzer{Allowcheck})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if d := diags[0]; d.Pos.Line != 4 || !strings.Contains(d.Message, "no reason") {
		t.Errorf("unexpected first diagnostic: %v", d)
	}
	if d := diags[1]; d.Pos.Line != 5 || !strings.Contains(d.Message, `unknown analyzer "allowcheck"`) {
		t.Errorf("unexpected second diagnostic: %v", d)
	}
}

// checkSource type-checks a single import-free source string.
func checkSource(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	importPath := modulePath + "/internal/netsim"
	tpkg, err := (&types.Config{}).Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}
}
