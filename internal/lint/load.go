package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPkg is the slice of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	Module     *struct{ Path string }
}

// LoadPackages type-checks every package matching the patterns (run from
// dir), resolving imports through the toolchain's compiled export data via
// `go list -export`. Only packages of this module are parsed from source
// and returned; dependencies are consumed as export data, exactly as the
// `go vet -vettool` driver does, so the two entry points analyze identical
// code.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	fields := "-json=ImportPath,Name,Dir,Export,GoFiles,ImportMap,Standard,Module"
	args := append([]string{"list", "-e", "-export", "-deps", fields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}   // import path → export data file
	importMap := map[string]string{} // source import → resolved path
	var targets []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.Standard && p.Module != nil && strings.HasPrefix(p.ImportPath, modulePath) {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect everything; first error returned below
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
