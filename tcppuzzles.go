// Package tcppuzzles reproduces "Revisiting Client Puzzles for State
// Exhaustion Attacks Resilience — Can Proof-of-Work Actually Work?"
// (Noureddine, Fawaz, Başar, Sanders; DSN 2019) as a Go library.
//
// The library is organised as:
//
//   - puzzle: the Juels–Brainard client-puzzle scheme — stateless issue,
//     brute-force solve, verification, difficulty parameters (k, m, l),
//     replay windows.
//   - tcpopt: the TCP option wire formats of the kernel extension
//     (challenge opcode 0xfc, solution opcode 0xfd) plus standard options.
//   - game: the Stackelberg difficulty-selection model — Theorem 1's
//     closed-form Nash difficulty ℓ* = w_av/(α+1), a finite-N numeric
//     solver, and the w_av/α profiling procedures.
//   - syncookie: the stateless SYN-cookie baseline.
//   - puzzlenet: the protocol over real TCP sockets (listener, dialer, and
//     a §7-style front-end verification proxy).
//   - sim: the simulated testbed — servers with the opportunistic
//     challenge controller, clients, botnets, and every experiment from
//     the paper's evaluation (sim.RunExperiment).
//
// Quickstart:
//
//	params, _ := tcppuzzles.NashParams(140630, 1.1) // (k=2, m=17), §4.4
//	issuer, _ := puzzle.NewIssuer(puzzle.WithParams(params))
//	ch := issuer.Issue(flow)
//	sol, _, _ := puzzle.Solve(ch)
//	err := issuer.Verify(flow, sol)
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package tcppuzzles

import (
	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// Version identifies the library release.
const Version = "1.0.0"

// NashParams computes the paper's Nash-equilibrium puzzle difficulty from
// the two measured model parameters: w_av, the average number of hashes a
// client can spend within the 400 ms handshake budget, and α, the server's
// asymptotic per-user service parameter (§4.3–§4.4).
func NashParams(wav, alpha float64) (puzzle.Params, error) {
	return game.SelectParams(wav, alpha, game.SelectionConfig{})
}
