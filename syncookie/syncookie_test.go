package syncookie

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

func testFlow() puzzle.FlowID {
	return puzzle.FlowID{
		SrcIP:   [4]byte{192, 168, 1, 10},
		DstIP:   [4]byte{10, 0, 0, 1},
		SrcPort: 50000,
		DstPort: 443,
		ISN:     123456,
	}
}

func fixedJar(t0 time.Time) (*Jar, *time.Time) {
	now := t0
	j := New([]byte("seed"), WithClock(func() time.Time { return now }))
	return j, &now
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	j, _ := fixedJar(time.Unix(1_700_000_000, 0))
	flow := testFlow()
	cookie := j.Encode(flow, 1460)
	mss, err := j.Decode(flow, cookie)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if mss != 1460 {
		t.Errorf("mss = %d, want 1460", mss)
	}
}

func TestMSSQuantisation(t *testing.T) {
	tests := []struct {
		in, want uint16
	}{
		{1460, 1460},
		{1500, 1460},
		{1459, 1440},
		{1300, 1300},
		{100, 216}, // below table minimum clamps to smallest entry
		{536, 536},
		{9000, 1460},
	}
	for _, tt := range tests {
		if got := QuantisedMSS(tt.in); got != tt.want {
			t.Errorf("QuantisedMSS(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestDecodeRejectsWrongFlow(t *testing.T) {
	j, _ := fixedJar(time.Unix(1_700_000_000, 0))
	flow := testFlow()
	cookie := j.Encode(flow, 1460)
	other := flow
	other.SrcPort++
	if _, err := j.Decode(other, cookie); !errors.Is(err, ErrBadCookie) {
		t.Errorf("Decode(wrong flow) error = %v, want ErrBadCookie", err)
	}
}

func TestDecodeRejectsTamperedCookie(t *testing.T) {
	j, _ := fixedJar(time.Unix(1_700_000_000, 0))
	flow := testFlow()
	cookie := j.Encode(flow, 1460)
	if _, err := j.Decode(flow, cookie^1); err == nil {
		t.Error("Decode accepted a bit-flipped cookie")
	}
}

func TestDecodeWithinWindow(t *testing.T) {
	j, now := fixedJar(time.Unix(1_700_000_000, 0))
	flow := testFlow()
	cookie := j.Encode(flow, 1300)

	*now = now.Add(90 * time.Second) // one tick later, within the 2-tick window
	if _, err := j.Decode(flow, cookie); err != nil {
		t.Fatalf("Decode one tick later: %v", err)
	}

	*now = now.Add(10 * time.Minute)
	if _, err := j.Decode(flow, cookie); !errors.Is(err, ErrStale) {
		t.Errorf("Decode stale cookie error = %v, want ErrStale", err)
	}
}

func TestDistinctSecretsReject(t *testing.T) {
	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	a := New([]byte("a"), WithClock(clock))
	b := New([]byte("b"), WithClock(clock))
	flow := testFlow()
	if _, err := b.Decode(flow, a.Encode(flow, 1460)); err == nil {
		t.Error("jar B accepted jar A's cookie")
	}
}

func TestCounterWrapAround(t *testing.T) {
	// Choose a time where counter mod 32 is 0 so the previous tick wraps.
	base := time.Unix(0, 0).Add(CounterGranularity * 32 * 1000)
	j, now := fixedJar(base.Add(-30 * time.Second)) // just before a tick boundary
	flow := testFlow()
	cookie := j.Encode(flow, 1460)
	*now = now.Add(60 * time.Second) // crosses the boundary
	if _, err := j.Decode(flow, cookie); err != nil {
		t.Fatalf("Decode across counter boundary: %v", err)
	}
}

// Property: encode→decode round-trips for arbitrary flows and MSS values
// and always returns a table MSS ≤ the announced MSS (or the minimum).
func TestRoundTripProperty(t *testing.T) {
	j, _ := fixedJar(time.Unix(1_700_000_000, 0))
	f := func(src, dst [4]byte, sp, dp uint16, isn uint32, mss uint16) bool {
		flow := puzzle.FlowID{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, ISN: isn}
		got, err := j.Decode(flow, j.Encode(flow, mss))
		if err != nil {
			return false
		}
		return got == QuantisedMSS(mss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: a forged random cookie validates with probability ≈ 2^-24; in
// 2000 attempts we should essentially never see more than a couple.
func TestForgeryResistance(t *testing.T) {
	j, _ := fixedJar(time.Unix(1_700_000_000, 0))
	flow := testFlow()
	accepted := 0
	for i := uint32(0); i < 2000; i++ {
		// Constrain the forgery to the current counter so only the hash
		// bits matter.
		forged := assemble(j.counter(), 7, i*2654435761)
		if _, err := j.Decode(flow, forged); err == nil {
			accepted++
		}
	}
	if accepted > 2 {
		t.Errorf("%d of 2000 forged cookies accepted", accepted)
	}
}
