package syncookie

import (
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// FuzzCookieRoundTrip fuzzes the cookie codec over arbitrary flows, seeds
// and announced MSS values: Encode → Decode must always validate and
// return the quantised MSS, and a corrupted cookie must never panic — it
// either fails validation or (for the rare 24-bit hash collision) still
// yields an MSS from the quantisation table, never garbage.
func FuzzCookieRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), []byte{10, 0, 0, 1, 10, 0, 0, 2}, uint16(1000), uint16(80), uint32(12345), uint16(1460), uint32(0))
	f.Add([]byte{}, []byte{1, 2, 3, 4}, uint16(0), uint16(0), uint32(0), uint16(0), uint32(1))
	f.Add([]byte{0xff}, []byte{255, 255, 255, 255, 255, 255, 255, 255}, uint16(65535), uint16(65535), uint32(0xffffffff), uint16(536), uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, seed, addrs []byte, sport, dport uint16, isn uint32, mss uint16, corrupt uint32) {
		var flow puzzle.FlowID
		copy(flow.SrcIP[:], addrs)
		if len(addrs) > 4 {
			copy(flow.DstIP[:], addrs[4:])
		}
		flow.SrcPort, flow.DstPort, flow.ISN = sport, dport, isn

		fixed := time.Unix(1_700_000_000, 0)
		jar := New(seed, WithClock(func() time.Time { return fixed }))
		cookie := jar.Encode(flow, mss)
		got, err := jar.Decode(flow, cookie)
		if err != nil {
			t.Fatalf("fresh cookie rejected: %v", err)
		}
		if want := QuantisedMSS(mss); got != want {
			t.Fatalf("decoded MSS %d, want quantised %d (announced %d)", got, want, mss)
		}

		// A corrupted cookie must fail closed (or collide into a valid
		// quantised MSS — never an out-of-table value).
		if corrupt != 0 {
			if m, err := jar.Decode(flow, cookie^corrupt); err == nil {
				if m != QuantisedMSS(m) {
					t.Fatalf("corrupt cookie decoded to unquantised MSS %d", m)
				}
			}
		}

		// A different flow must not validate the same cookie.
		other := flow
		other.ISN++
		if _, err := jar.Decode(other, cookie); err == nil {
			t.Fatal("cookie validated for a different flow")
		}
	})
}
