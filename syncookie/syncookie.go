// Package syncookie implements stateless TCP SYN cookies (Bernstein 1997),
// the baseline defense the paper compares client puzzles against.
//
// A cookie packs three fields into the server's 32-bit initial sequence
// number:
//
//	bits 31..27  time counter t mod 32 (64-second granularity)
//	bits 26..24  index into a fixed 8-entry MSS table (3 bits — the paper
//	             §5 contrasts this with the 16-bit MSS carried by the
//	             puzzle solution option)
//	bits 23..0   truncated keyed hash of (flow, t, mss index)
//
// The server keeps no per-connection state: when the final ACK arrives it
// re-derives the hash for the recent time counters and accepts the
// connection if one matches. As the paper notes, cookies cannot carry the
// window-scale option and quantise the MSS, degrading connection
// performance, and they offer no protection against connection floods
// because a bot with a real address simply completes the handshake.
package syncookie

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// CounterGranularity is the wall-clock width of one cookie time counter
// tick.
const CounterGranularity = 64 * time.Second

// mssTable quantises the client's announced MSS into 3 bits. Entries are
// ascending; the encoder picks the largest entry not exceeding the
// announced value.
var mssTable = [8]uint16{216, 460, 536, 940, 1220, 1300, 1440, 1460}

var (
	// ErrBadCookie reports a cookie whose hash does not validate for any
	// acceptable time counter.
	ErrBadCookie = errors.New("syncookie: invalid cookie")
	// ErrStale reports a cookie older than the acceptance window.
	ErrStale = errors.New("syncookie: cookie expired")
)

// SecretLen is the length of the cookie secret in bytes.
const SecretLen = 32

// Jar issues and validates SYN cookies. The zero value is unusable; create
// one with New. A Jar is safe for concurrent use (it is immutable after
// construction except for the injected clock).
type Jar struct {
	secret [SecretLen]byte
	now    func() time.Time
	// maxAge is the validation window in counter ticks (inclusive).
	maxTicks uint32
}

// Option customises a Jar.
type Option func(*Jar)

// WithClock overrides the time source.
func WithClock(now func() time.Time) Option {
	return func(j *Jar) { j.now = now }
}

// WithMaxAge sets the validation window. It is rounded up to whole counter
// ticks; the default is two ticks (128 s), matching common implementations.
func WithMaxAge(d time.Duration) Option {
	return func(j *Jar) {
		ticks := uint32((d + CounterGranularity - 1) / CounterGranularity)
		if ticks == 0 {
			ticks = 1
		}
		j.maxTicks = ticks
	}
}

// WithSecret sets the cookie secret (copied; must be SecretLen bytes).
func WithSecret(secret []byte) Option {
	return func(j *Jar) { copy(j.secret[:], secret) }
}

// New returns a Jar with a secret derived from the provided seed bytes, or
// random when seed is nil.
func New(seed []byte, opts ...Option) *Jar {
	j := &Jar{now: time.Now, maxTicks: 2}
	if seed == nil {
		seed = binary.BigEndian.AppendUint64(nil, uint64(time.Now().UnixNano()))
	}
	sum := sha256.Sum256(seed)
	copy(j.secret[:], sum[:])
	for _, opt := range opts {
		opt(j)
	}
	return j
}

// Encode produces a cookie ISN for the given flow and the client's
// announced MSS.
func (j *Jar) Encode(flow puzzle.FlowID, mss uint16) uint32 {
	t := j.counter()
	idx := encodeMSS(mss)
	return assemble(t, idx, j.hash(flow, t, idx))
}

// Decode validates a cookie echoed in an ACK (the ACK field minus one) and
// returns the quantised MSS that was encoded.
func (j *Jar) Decode(flow puzzle.FlowID, cookie uint32) (mss uint16, err error) {
	now := j.counter()
	tBits := cookie >> 27
	idx := uint8((cookie >> 24) & 0x7)
	hash := cookie & 0xffffff

	// Reconstruct the full counter: the most recent t ≤ now whose low five
	// bits match.
	var t uint32
	switch {
	case now&0x1f >= tBits:
		t = now - (now & 0x1f) + tBits
	default:
		t = now - (now & 0x1f) - 32 + tBits
	}
	if now-t > j.maxTicks {
		return 0, fmt.Errorf("syncookie: cookie %d ticks old: %w", now-t, ErrStale)
	}
	if j.hash(flow, t, idx) != hash {
		return 0, ErrBadCookie
	}
	return mssTable[idx], nil
}

// counter returns the current time counter.
func (j *Jar) counter() uint32 {
	return uint32(j.now().Unix() / int64(CounterGranularity/time.Second))
}

// hash computes the 24-bit keyed hash bound to flow, counter and MSS index.
func (j *Jar) hash(flow puzzle.FlowID, t uint32, idx uint8) uint32 {
	buf := make([]byte, 0, SecretLen+24)
	buf = append(buf, j.secret[:]...)
	buf = append(buf, flow.SrcIP[:]...)
	buf = append(buf, flow.DstIP[:]...)
	buf = binary.BigEndian.AppendUint16(buf, flow.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, flow.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, flow.ISN)
	buf = binary.BigEndian.AppendUint32(buf, t)
	buf = append(buf, idx)
	sum := sha256.Sum256(buf)
	return binary.BigEndian.Uint32(sum[:4]) & 0xffffff
}

func assemble(t uint32, idx uint8, hash uint32) uint32 {
	return (t&0x1f)<<27 | uint32(idx&0x7)<<24 | hash&0xffffff
}

// encodeMSS returns the index of the largest table entry not exceeding mss
// (index 0 when mss is smaller than every entry).
func encodeMSS(mss uint16) uint8 {
	best := 0
	for i, v := range mssTable {
		if v <= mss {
			best = i
		}
	}
	return uint8(best)
}

// QuantisedMSS returns the MSS a cookie would preserve for an announced
// value — used to measure cookie-induced MSS degradation.
func QuantisedMSS(mss uint16) uint16 { return mssTable[encodeMSS(mss)] }
