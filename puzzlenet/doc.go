// Package puzzlenet carries the TCP client-puzzles protocol over real TCP
// sockets in userspace — the deployable variant of the paper's kernel patch
// for environments where patching the kernel is not an option.
//
// Because userspace cannot add options to the kernel's SYN-ACK, the
// challenge/solution exchange runs as a one-round-trip preamble immediately
// after the TCP handshake, using the same wire blocks as the kernel
// extension (package tcpopt) inside a minimal length-prefixed framing:
//
//	server → client:  WELCOME                     (no protection active)
//	server → client:  CHALLENGE <0xfc block>      (protection active)
//	client → server:  SOLUTION  <0xfd block>
//	server → client:  ACCEPT | REJECT
//
// The challenge is bound to the connection 4-tuple and a per-connection
// nonce (standing in for the SYN's initial sequence number), carries the
// issue timestamp, and expires after the issuer's replay window — the same
// statelessness-derived properties as the kernel protocol, though the TCP
// connection itself is necessarily stateful here.
//
// REJECT carries an optional one-byte reason code (RejectReason): bad
// solution, expired challenge, busy (pending-verification limit), or
// throttled (per-source admission). A legacy empty payload and unknown
// codes fold to RejectGeneric, so old and new endpoints interoperate.
// Dialers surface the code as *RejectError (which unwraps to ErrRejected)
// and automatically redial once on an expired-challenge REJECT.
//
// Listener gates accepted connections behind puzzles according to a
// ChallengePolicy (challenge always, never, or — mirroring the kernel's
// opportunistic controller — once the number of connections awaiting
// verification exceeds a threshold). Dialer solves challenges
// transparently. Proxy implements the front-end deployment of §7: a
// puzzle-verifying tier that forwards only verified connections to a
// backend.
//
// The tier is hardened for real networks: bounded pending-verification
// and splice concurrency with fast REJECT shedding, per-source
// token-bucket admission, deadlines on every frame, a circuit breaker
// with capped-jittered backoff in front of the backend, and graceful
// drain via Listener.Shutdown / Proxy.Shutdown. Subpackage netfault
// injects faults under real conns for the chaos suite, and
// internal/loadgen + cmd/tcpz-load measure the tier under load. See
// docs/ROBUSTNESS.md for the model.
package puzzlenet
