package puzzlenet

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's observable state.
type BreakerState int

const (
	// BreakerClosed: the backend is healthy, dials flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures reached the threshold; dials are
	// refused (DegradeShed) or attempted anyway (DegradePassThrough) until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; one probe dial is in flight.
	// Success closes the breaker, failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a consecutive-failure circuit breaker guarding backend dials.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before a half-open probe
	failures  int
	state     BreakerState
	openedAt  time.Time
	probing   bool   // a half-open probe is in flight
	opens     uint64 // transitions into BreakerOpen
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a dial may proceed at now. In the open state it
// returns false until the cooldown elapses, then admits exactly one probe
// (half-open) at a time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a successful dial, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a failed dial: a half-open probe failure reopens the
// breaker immediately; in the closed state the threshold applies.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.failures++
		if b.threshold > 0 && b.failures >= b.threshold {
			b.open(now)
		}
	case BreakerOpen:
		// Pass-through dials can fail while open; refresh the window so
		// the cooldown measures from the latest observed failure.
		b.openedAt = now
	}
}

func (b *breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.probing = false
	b.failures = 0
	b.opens++
}

// snapshot returns the current state and the open-transition count.
func (b *breaker) snapshot() (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
