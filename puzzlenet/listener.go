package puzzlenet

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// ChallengePolicy decides per connection whether to issue a challenge.
type ChallengePolicy interface {
	// Challenge reports whether the next connection must solve a puzzle,
	// given the number of connections currently awaiting verification.
	Challenge(pending int) bool
}

// PolicyAlways challenges every connection.
type PolicyAlways struct{}

// Challenge implements ChallengePolicy.
func (PolicyAlways) Challenge(int) bool { return true }

// PolicyNever disables challenges (plain pass-through).
type PolicyNever struct{}

// Challenge implements ChallengePolicy.
func (PolicyNever) Challenge(int) bool { return false }

// PolicyPending mirrors the kernel's opportunistic controller: challenge
// once the number of connections awaiting verification reaches Threshold.
type PolicyPending struct {
	Threshold int
}

// Challenge implements ChallengePolicy.
func (p PolicyPending) Challenge(pending int) bool { return pending >= p.Threshold }

// ListenerStats exposes counters for monitoring.
type ListenerStats struct {
	// Accepted counts raw TCP accepts, before admission control.
	Accepted uint64
	// Challenged counts connections that were issued a puzzle.
	Challenged uint64
	// Verified counts connections whose solution verified.
	Verified uint64
	// Rejected counts bad or expired solutions and protocol violations.
	Rejected uint64
	// Shed counts connections refused with REJECT(busy) because the
	// pending-verification limit was reached.
	Shed uint64
	// Throttled counts connections refused with REJECT(throttled) by
	// per-source admission control.
	Throttled uint64
	// Errors counts I/O and internal failures on the preamble path.
	Errors uint64
	// Inflight is the number of preambles currently in progress.
	Inflight int64
}

// Listener gates accepted connections behind client puzzles.
type Listener struct {
	inner      net.Listener
	issuer     *puzzle.Issuer
	policy     ChallengePolicy
	timeout    time.Duration
	maxPending int        // 0 = unlimited
	admission  *admission // nil = no per-source limit

	ready  chan net.Conn
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	pending  atomic.Int64 // challenged connections awaiting verification
	inflight atomic.Int64 // all preambles in progress

	conns struct {
		mu sync.Mutex
		m  map[net.Conn]struct{}
	}

	accepted, challenged, verified, rejected, shed, throttled, errs atomic.Uint64
}

// ListenerOption customises a Listener.
type ListenerOption func(*Listener)

// WithPolicy sets the challenge policy (default PolicyAlways).
func WithPolicy(p ChallengePolicy) ListenerOption {
	return func(l *Listener) { l.policy = p }
}

// WithHandshakeTimeout bounds the challenge/solution exchange (default 30s,
// the challenge replay window). Every preamble read and write runs under
// this deadline, so no unauthenticated peer can pin a goroutine longer.
func WithHandshakeTimeout(d time.Duration) ListenerOption {
	return func(l *Listener) { l.timeout = d }
}

// WithMaxPending bounds the number of concurrently in-flight preambles.
// Connections arriving over the limit are refused immediately with
// REJECT(busy) — a fast, bounded-cost shed instead of an unbounded
// goroutine per attacker. Zero (the default) means unlimited.
func WithMaxPending(n int) ListenerOption {
	return func(l *Listener) { l.maxPending = n }
}

// WithSourceRate enables per-source token-bucket admission: each remote
// host may open at most rate connections per second with the given burst.
// Over-rate connections are refused with REJECT(throttled). rate <= 0
// disables the limiter (the default).
func WithSourceRate(rate float64, burst int) ListenerOption {
	return func(l *Listener) {
		if rate > 0 {
			l.admission = newAdmission(rate, burst)
		}
	}
}

// NewListener wraps an accepted-connection source with puzzle gating. The
// issuer supplies difficulty and verification; retune it at runtime via
// puzzle.Issuer.SetParams.
func NewListener(inner net.Listener, issuer *puzzle.Issuer, opts ...ListenerOption) *Listener {
	l := &Listener{
		inner:   inner,
		issuer:  issuer,
		policy:  PolicyAlways{},
		timeout: 30 * time.Second,
		ready:   make(chan net.Conn),
		closed:  make(chan struct{}),
	}
	l.conns.m = make(map[net.Conn]struct{})
	for _, opt := range opts {
		opt(l)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l
}

// Listen is a convenience that listens on a TCP address and wraps it.
func Listen(addr string, issuer *puzzle.Issuer, opts ...ListenerOption) (*Listener, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("puzzlenet: %w", err)
	}
	return NewListener(inner, issuer, opts...), nil
}

// Accept returns the next verified connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ready:
		return conn, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close stops accepting and waits for in-flight handshakes to finish, for
// as long as they take (each is individually bounded by the handshake
// timeout). Use Shutdown to bound the total drain.
func (l *Listener) Close() error {
	err := l.stop()
	l.wg.Wait()
	return err
}

// Shutdown stops accepting new connections, drains in-flight preambles,
// and returns once all listener goroutines have exited. If ctx expires
// first, remaining preamble connections are force-closed (their goroutines
// then exit promptly) and ctx.Err() is returned. Either way, no listener
// goroutine survives the call.
func (l *Listener) Shutdown(ctx context.Context) error {
	err := l.stop()
	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		l.forceCloseConns()
		<-done
		return ctx.Err()
	}
}

// stop closes the inner listener and signals shutdown exactly once.
func (l *Listener) stop() error {
	var err error
	l.once.Do(func() {
		err = l.inner.Close()
		close(l.closed)
	})
	return err
}

// forceCloseConns closes every connection still in the preamble.
func (l *Listener) forceCloseConns() {
	l.conns.mu.Lock()
	defer l.conns.mu.Unlock()
	for conn := range l.conns.m {
		_ = conn.Close()
	}
}

func (l *Listener) track(conn net.Conn) {
	l.conns.mu.Lock()
	l.conns.m[conn] = struct{}{}
	l.conns.mu.Unlock()
}

func (l *Listener) untrack(conn net.Conn) {
	l.conns.mu.Lock()
	delete(l.conns.m, conn)
	l.conns.mu.Unlock()
}

// Addr returns the underlying listener address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Stats returns a snapshot of the listener counters.
func (l *Listener) Stats() ListenerStats {
	return ListenerStats{
		Accepted:   l.accepted.Load(),
		Challenged: l.challenged.Load(),
		Verified:   l.verified.Load(),
		Rejected:   l.rejected.Load(),
		Shed:       l.shed.Load(),
		Throttled:  l.throttled.Load(),
		Errors:     l.errs.Load(),
		Inflight:   l.inflight.Load(),
	}
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			select {
			case <-l.closed:
			default:
				l.errs.Add(1)
				// Transient accept errors: retry until Close.
				select {
				case <-l.closed:
					return
				case <-time.After(10 * time.Millisecond):
					continue
				}
			}
			return
		}
		l.accepted.Add(1)
		if l.admission != nil && !l.admission.allow(conn.RemoteAddr(), time.Now()) {
			l.throttled.Add(1)
			l.wg.Add(1)
			go l.refuse(conn, RejectThrottled)
			continue
		}
		if l.maxPending > 0 && l.inflight.Load() >= int64(l.maxPending) {
			l.shed.Add(1)
			l.wg.Add(1)
			go l.refuse(conn, RejectBusy)
			continue
		}
		l.inflight.Add(1)
		l.wg.Add(1)
		go l.handshake(conn)
	}
}

// refuse sheds a connection with a fast REJECT. The write runs under a
// short deadline off the accept loop so a peer that refuses to read cannot
// stall accepts or pin the goroutine.
func (l *Listener) refuse(conn net.Conn, reason RejectReason) {
	defer l.wg.Done()
	l.track(conn)
	defer l.untrack(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = writeReject(conn, reason)
	_ = conn.Close()
}

// handshake runs the preamble on one connection and delivers it to Accept
// on success.
func (l *Listener) handshake(conn net.Conn) {
	defer l.wg.Done()
	defer l.inflight.Add(-1)
	l.track(conn)
	deliver, err := l.gate(conn)
	if err != nil || !deliver {
		l.untrack(conn)
		_ = conn.Close()
		return
	}
	select {
	case l.ready <- conn:
		l.untrack(conn)
	case <-l.closed:
		l.untrack(conn)
		_ = conn.Close()
	}
}

// gate performs the WELCOME/CHALLENGE exchange under the handshake
// deadline. It reports whether the connection should be delivered to the
// application.
func (l *Listener) gate(conn net.Conn) (bool, error) {
	if err := conn.SetDeadline(time.Now().Add(l.timeout)); err != nil {
		l.errs.Add(1)
		return false, err
	}
	if !l.policy.Challenge(int(l.pending.Load())) {
		if err := writeFrame(conn, frameWelcome, nil); err != nil {
			l.errs.Add(1)
			return false, err
		}
		if err := conn.SetDeadline(time.Time{}); err != nil {
			l.errs.Add(1)
			return false, err
		}
		return true, nil
	}
	l.pending.Add(1)
	defer l.pending.Add(-1)
	l.challenged.Add(1)

	nonce, err := l.nextNonce()
	if err != nil {
		l.errs.Add(1)
		return false, err
	}
	flow := flowFor(conn, nonce)
	ch := l.issuer.Issue(flow)
	chOpt, err := tcpopt.EncodeChallenge(ch, true)
	if err != nil {
		l.errs.Add(1)
		return false, err
	}
	// The nonce travels with the challenge so the client can echo the
	// binding; frame payload = nonce(4) || option bytes.
	payload := make([]byte, 0, 4+2+len(chOpt.Data))
	payload = append(payload,
		byte(nonce>>24), byte(nonce>>16), byte(nonce>>8), byte(nonce))
	payload = append(payload, chOpt.Kind, byte(2+len(chOpt.Data)))
	payload = append(payload, chOpt.Data...)
	if err := writeFrame(conn, frameChallenge, payload); err != nil {
		l.errs.Add(1)
		return false, err
	}

	frameType, body, err := readFrame(conn)
	if err != nil {
		l.errs.Add(1)
		return false, err
	}
	if frameType != frameSolution || len(body) < 2 {
		l.rejected.Add(1)
		_ = writeReject(conn, RejectGeneric)
		return false, ErrProtocol
	}
	solOpt := tcpopt.Option{Kind: body[0], Data: body[2:]}
	blk, err := tcpopt.ParseSolution(solOpt, l.issuer.Params())
	if err != nil {
		l.rejected.Add(1)
		_ = writeReject(conn, RejectBadSolution)
		return false, err
	}
	if err := l.issuer.Verify(flow, blk.Solution); err != nil {
		l.rejected.Add(1)
		reason := RejectBadSolution
		if errors.Is(err, puzzle.ErrExpired) {
			reason = RejectExpired
		}
		_ = writeReject(conn, reason)
		return false, err
	}
	l.verified.Add(1)
	if err := writeFrame(conn, frameAccept, nil); err != nil {
		l.errs.Add(1)
		return false, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		l.errs.Add(1)
		return false, err
	}
	return true, nil
}

// nextNonce draws the per-connection nonce from crypto/rand: it stands in
// for the SYN's initial sequence number in the flow binding, so a
// predictable stream would weaken challenge binding and replay resistance.
func (l *Listener) nextNonce() (uint32, error) {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("puzzlenet: nonce: %w", err)
	}
	return binary.BigEndian.Uint32(b[:]), nil
}
