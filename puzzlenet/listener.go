package puzzlenet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// ChallengePolicy decides per connection whether to issue a challenge.
type ChallengePolicy interface {
	// Challenge reports whether the next connection must solve a puzzle,
	// given the number of connections currently awaiting verification.
	Challenge(pending int) bool
}

// PolicyAlways challenges every connection.
type PolicyAlways struct{}

// Challenge implements ChallengePolicy.
func (PolicyAlways) Challenge(int) bool { return true }

// PolicyNever disables challenges (plain pass-through).
type PolicyNever struct{}

// Challenge implements ChallengePolicy.
func (PolicyNever) Challenge(int) bool { return false }

// PolicyPending mirrors the kernel's opportunistic controller: challenge
// once the number of connections awaiting verification reaches Threshold.
type PolicyPending struct {
	Threshold int
}

// Challenge implements ChallengePolicy.
func (p PolicyPending) Challenge(pending int) bool { return pending >= p.Threshold }

// ListenerStats exposes counters for monitoring.
type ListenerStats struct {
	Accepted   uint64
	Challenged uint64
	Verified   uint64
	Rejected   uint64
	Errors     uint64
}

// Listener gates accepted connections behind client puzzles.
type Listener struct {
	inner   net.Listener
	issuer  *puzzle.Issuer
	policy  ChallengePolicy
	timeout time.Duration

	ready   chan net.Conn
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	pending atomic.Int64
	nonces  struct {
		mu  sync.Mutex
		rnd *rand.Rand
	}

	accepted, challenged, verified, rejected, errs atomic.Uint64
}

// ListenerOption customises a Listener.
type ListenerOption func(*Listener)

// WithPolicy sets the challenge policy (default PolicyAlways).
func WithPolicy(p ChallengePolicy) ListenerOption {
	return func(l *Listener) { l.policy = p }
}

// WithHandshakeTimeout bounds the challenge/solution exchange (default 30s,
// the challenge replay window).
func WithHandshakeTimeout(d time.Duration) ListenerOption {
	return func(l *Listener) { l.timeout = d }
}

// NewListener wraps an accepted-connection source with puzzle gating. The
// issuer supplies difficulty and verification; retune it at runtime via
// puzzle.Issuer.SetParams.
func NewListener(inner net.Listener, issuer *puzzle.Issuer, opts ...ListenerOption) *Listener {
	l := &Listener{
		inner:   inner,
		issuer:  issuer,
		policy:  PolicyAlways{},
		timeout: 30 * time.Second,
		ready:   make(chan net.Conn),
		closed:  make(chan struct{}),
	}
	l.nonces.rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	for _, opt := range opts {
		opt(l)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l
}

// Listen is a convenience that listens on a TCP address and wraps it.
func Listen(addr string, issuer *puzzle.Issuer, opts ...ListenerOption) (*Listener, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("puzzlenet: %w", err)
	}
	return NewListener(inner, issuer, opts...), nil
}

// Accept returns the next verified connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ready:
		return conn, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close stops accepting and waits for in-flight handshakes to finish.
func (l *Listener) Close() error {
	var err error
	l.once.Do(func() {
		err = l.inner.Close()
		close(l.closed)
	})
	l.wg.Wait()
	return err
}

// Addr returns the underlying listener address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Stats returns a snapshot of the listener counters.
func (l *Listener) Stats() ListenerStats {
	return ListenerStats{
		Accepted:   l.accepted.Load(),
		Challenged: l.challenged.Load(),
		Verified:   l.verified.Load(),
		Rejected:   l.rejected.Load(),
		Errors:     l.errs.Load(),
	}
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			select {
			case <-l.closed:
			default:
				l.errs.Add(1)
				// Transient accept errors: retry until Close.
				select {
				case <-l.closed:
					return
				case <-time.After(10 * time.Millisecond):
					continue
				}
			}
			return
		}
		l.accepted.Add(1)
		l.wg.Add(1)
		go l.handshake(conn)
	}
}

// handshake runs the preamble on one connection and delivers it to Accept
// on success.
func (l *Listener) handshake(conn net.Conn) {
	defer l.wg.Done()
	deliver, err := l.gate(conn)
	if err != nil || !deliver {
		_ = conn.Close()
		return
	}
	select {
	case l.ready <- conn:
	case <-l.closed:
		_ = conn.Close()
	}
}

// gate performs the WELCOME/CHALLENGE exchange. It reports whether the
// connection should be delivered to the application.
func (l *Listener) gate(conn net.Conn) (bool, error) {
	if !l.policy.Challenge(int(l.pending.Load())) {
		if err := writeFrame(conn, frameWelcome, nil); err != nil {
			l.errs.Add(1)
			return false, err
		}
		return true, nil
	}
	l.pending.Add(1)
	defer l.pending.Add(-1)
	l.challenged.Add(1)

	if err := conn.SetDeadline(time.Now().Add(l.timeout)); err != nil {
		l.errs.Add(1)
		return false, err
	}
	nonce := l.nextNonce()
	flow := flowFor(conn, nonce)
	ch := l.issuer.Issue(flow)
	chOpt, err := tcpopt.EncodeChallenge(ch, true)
	if err != nil {
		l.errs.Add(1)
		return false, err
	}
	// The nonce travels with the challenge so the client can echo the
	// binding; frame payload = nonce(4) || option bytes.
	payload := make([]byte, 0, 4+2+len(chOpt.Data))
	payload = append(payload,
		byte(nonce>>24), byte(nonce>>16), byte(nonce>>8), byte(nonce))
	payload = append(payload, chOpt.Kind, byte(2+len(chOpt.Data)))
	payload = append(payload, chOpt.Data...)
	if err := writeFrame(conn, frameChallenge, payload); err != nil {
		l.errs.Add(1)
		return false, err
	}

	frameType, body, err := readFrame(conn)
	if err != nil {
		l.errs.Add(1)
		return false, err
	}
	if frameType != frameSolution || len(body) < 2 {
		l.rejected.Add(1)
		_ = writeFrame(conn, frameReject, nil)
		return false, ErrProtocol
	}
	solOpt := tcpopt.Option{Kind: body[0], Data: body[2:]}
	blk, err := tcpopt.ParseSolution(solOpt, l.issuer.Params())
	if err != nil {
		l.rejected.Add(1)
		_ = writeFrame(conn, frameReject, nil)
		return false, err
	}
	if err := l.issuer.Verify(flow, blk.Solution); err != nil {
		l.rejected.Add(1)
		_ = writeFrame(conn, frameReject, nil)
		return false, err
	}
	l.verified.Add(1)
	if err := writeFrame(conn, frameAccept, nil); err != nil {
		l.errs.Add(1)
		return false, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		l.errs.Add(1)
		return false, err
	}
	return true, nil
}

func (l *Listener) nextNonce() uint32 {
	l.nonces.mu.Lock()
	defer l.nonces.mu.Unlock()
	return l.nonces.rnd.Uint32()
}
