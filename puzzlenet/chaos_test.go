package puzzlenet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/puzzlenet/netfault"
)

// chaosConns is the adversarial connection count the chaos suite drives
// against one listener — the acceptance bar is "hundreds".
const chaosConns = 240

// runAdversary opens one adversarial connection of the given kind against
// addr and misbehaves until the server hangs up or the budget elapses.
// Kinds cycle through the failure modes the simulator models: stalls,
// garbage, truncated frames, mid-preamble resets, and slow-loris trickle.
func runAdversary(kind int, addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
	switch kind % 5 {
	case 0:
		// Stall: read the challenge, answer nothing.
		_, _, _ = readFrame(conn)
		buf := make([]byte, 64)
		_, _ = conn.Read(buf) // blocks until the handshake deadline kills us
	case 1:
		// Garbage: raw application bytes instead of a SOLUTION frame.
		_, _ = conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		_, _, _ = readFrame(conn)
	case 2:
		// Truncated frame: a SOLUTION header promising more than we send.
		fc := netfault.New(conn, netfault.Fault{TruncateWritesAfter: 5})
		_, _ = fc.Write([]byte{frameSolution, 0x00, 0x40, 0xde, 0xad, 0xbe, 0xef})
	case 3:
		// Mid-preamble reset: RST right after the challenge arrives.
		_, _, _ = readFrame(conn)
		if tcp, ok := conn.(*net.TCPConn); ok {
			_ = tcp.SetLinger(0)
		}
	case 4:
		// Slow loris: trickle a byte of garbage at a time.
		fc := netfault.New(conn, netfault.Fault{ChunkBytes: 1, WriteDelay: 20 * time.Millisecond})
		_, _ = fc.Write([]byte{frameSolution, 0x01, 0xff, 0x00, 0x00, 0x00, 0x00})
		_, _, _ = readFrame(conn)
	}
}

// TestChaosAdversarialFlood drives hundreds of misbehaving connections at
// a limited listener while honest solving dialers keep arriving: the tier
// must keep serving the honest clients, shed over-limit load with fast
// REJECTs, and drain to zero goroutines inside the Shutdown deadline.
func TestChaosAdversarialFlood(t *testing.T) {
	leakCheck(t)
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	l, err := Listen("127.0.0.1:0", issuer,
		WithHandshakeTimeout(500*time.Millisecond),
		WithMaxPending(64),
	)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	echoAccepted(t, l)
	addr := l.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < chaosConns; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			runAdversary(kind, addr)
		}(i)
	}

	// Honest clients, retrying when the flood sheds them.
	const good = 16
	goodErrs := make(chan error, good)
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &Dialer{HandshakeTimeout: 2 * time.Second}
			var lastErr error
			for attempt := 0; attempt < 40; attempt++ {
				conn, err := d.Dial("tcp", addr)
				if err != nil {
					lastErr = err
					time.Sleep(50 * time.Millisecond)
					continue
				}
				_, werr := conn.Write([]byte("x"))
				_, rerr := io.ReadFull(conn, make([]byte, 1))
				_ = conn.Close()
				if werr == nil && rerr == nil {
					goodErrs <- nil
					return
				}
				lastErr = errors.Join(werr, rerr)
				time.Sleep(50 * time.Millisecond)
			}
			goodErrs <- fmt.Errorf("good client starved: %w", lastErr)
		}()
	}
	wg.Wait()
	close(goodErrs)
	for err := range goodErrs {
		if err != nil {
			t.Error(err)
		}
	}

	stats := l.Stats()
	if stats.Verified < good {
		t.Errorf("Verified = %d, want >= %d honest clients", stats.Verified, good)
	}
	if stats.Rejected+stats.Errors == 0 {
		t.Error("no adversarial connection was rejected or errored")
	}
	t.Logf("chaos stats: %+v", stats)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := l.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("Shutdown took %v, want within the 3s deadline", elapsed)
	}
}

// TestChaosProxyFloodWithFaultyNetwork runs the full proxy tier under an
// adversarial flood while the network under the listener injects
// byte-level delays and truncations, and asserts honest clients still get
// end-to-end echo service through the backend.
func TestChaosProxyFloodWithFaultyNetwork(t *testing.T) {
	leakCheck(t)
	backendAddr := newEchoBackend(t)
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	// Every 7th accepted conn gets a jittery read path; every 11th is
	// hard-reset mid-preamble — faults injected below the puzzle layer.
	faulty := &netfault.Listener{Listener: inner, Plan: func(i int, _ net.Conn) netfault.Fault {
		switch {
		case i%11 == 3:
			return netfault.Fault{CloseAfter: 10 * time.Millisecond}
		case i%7 == 2:
			return netfault.Fault{ReadDelay: 5 * time.Millisecond, WriteDelay: 5 * time.Millisecond}
		default:
			return netfault.Fault{}
		}
	}}
	l := NewListener(faulty, issuer,
		WithHandshakeTimeout(500*time.Millisecond),
		WithMaxPending(64),
	)
	p := NewProxy(l, backendAddr, WithIdleTimeout(2*time.Second))
	go func() { _ = p.Serve() }()
	addr := inner.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			runAdversary(kind, addr)
		}(i)
	}
	const good = 12
	var succeeded int
	var mu sync.Mutex
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &Dialer{HandshakeTimeout: 2 * time.Second}
			for attempt := 0; attempt < 40; attempt++ {
				conn, err := d.Dial("tcp", addr)
				if err != nil {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				_, werr := conn.Write([]byte("y"))
				_, rerr := io.ReadFull(conn, make([]byte, 1))
				_ = conn.Close()
				if werr == nil && rerr == nil {
					mu.Lock()
					succeeded++
					mu.Unlock()
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	// The faulty network can reset any individual attempt, but the tier
	// must keep serving: require a clear majority of honest clients
	// through, not a lucky few.
	if succeeded < good*3/4 {
		t.Errorf("only %d/%d honest clients served through the faulty network", succeeded, good)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestChaosDeadBackend floods a proxy whose backend refuses every
// connection: the breaker must open, DegradeShed must stop burning dials,
// and the drain must stay leak-free.
func TestChaosDeadBackend(t *testing.T) {
	leakCheck(t)
	l, _ := newTestListener(t, WithHandshakeTimeout(time.Second))
	p := NewProxy(l, "127.0.0.1:1",
		WithBackendDialContext(netfault.Refuse()),
		WithBackendRetry(1, 5*time.Millisecond, 20*time.Millisecond),
		WithBreaker(4, 500*time.Millisecond),
		WithDegradedMode(DegradeShed),
	)
	go func() { _ = p.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &Dialer{HandshakeTimeout: 2 * time.Second}
			conn, err := d.Dial("tcp", l.Addr().String())
			if err != nil {
				return
			}
			// Preamble verified; the splice then fails on the dead
			// backend and the proxy closes us.
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			_, _ = conn.Read(make([]byte, 1))
			_ = conn.Close()
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.BackendFailures == 0 {
		t.Error("no backend failures recorded against a dead backend")
	}
	if st.BreakerOpens == 0 {
		t.Error("breaker never opened against a dead backend")
	}
	if st.BackendShed == 0 {
		t.Error("DegradeShed never shed while the breaker was open")
	}
	t.Logf("dead-backend stats: %+v", st)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestChaosBlackholeBackend points the proxy at a backend that swallows
// dials without answering: the dial timeout must bound every splice and
// shutdown must not wait on the void.
func TestChaosBlackholeBackend(t *testing.T) {
	leakCheck(t)
	l, _ := newTestListener(t, WithHandshakeTimeout(time.Second))
	p := NewProxy(l, "10.255.255.1:9", // never dialed: the blackhole dialer ignores it
		WithBackendDialContext(netfault.Blackhole()),
		WithDialTimeout(100*time.Millisecond),
		WithBackendRetry(0, 5*time.Millisecond, 20*time.Millisecond),
		WithBreaker(2, time.Second),
	)
	go func() { _ = p.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &Dialer{HandshakeTimeout: 2 * time.Second}
			conn, err := d.Dial("tcp", l.Addr().String())
			if err != nil {
				return
			}
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			_, _ = conn.Read(make([]byte, 1))
			_ = conn.Close()
		}()
	}
	wg.Wait()

	if st := p.Stats(); st.BackendFailures == 0 {
		t.Error("black-holed dials never timed out")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if err := p.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Shutdown took %v against a black-holed backend", elapsed)
	}
}
