package puzzlenet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is the front-end deployment of §7: it terminates puzzle handshakes
// and forwards only verified connections to a backend, so the backend never
// spends cycles on puzzle generation or verification.
type Proxy struct {
	listener *Listener
	backend  string
	dial     func(string) (net.Conn, error)

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
}

// ProxyOption customises a Proxy.
type ProxyOption func(*Proxy)

// WithBackendDialer overrides how backend connections are opened.
func WithBackendDialer(dial func(addr string) (net.Conn, error)) ProxyOption {
	return func(p *Proxy) { p.dial = dial }
}

// NewProxy builds a proxy in front of backend using a puzzle-gated
// listener.
func NewProxy(listener *Listener, backend string, opts ...ProxyOption) *Proxy {
	p := &Proxy{
		listener: listener,
		backend:  backend,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		},
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Serve accepts verified connections and splices them to the backend until
// the listener closes.
func (p *Proxy) Serve() error {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			if err == net.ErrClosed {
				return nil
			}
			return fmt.Errorf("puzzlenet: proxy accept: %w", err)
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.splice(conn)
	}
}

// Close shuts the listener and waits for in-flight splices.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.listener.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) splice(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()
	backend, err := p.dial(p.backend)
	if err != nil {
		return
	}
	defer backend.Close()

	done := make(chan struct{}, 2)
	copyHalf := func(dst, src net.Conn) {
		_, _ = io.Copy(dst, src)
		// Half-close semantics: propagate EOF where supported.
		if tcp, ok := dst.(*net.TCPConn); ok {
			_ = tcp.CloseWrite()
		}
		done <- struct{}{}
	}
	go copyHalf(backend, client)
	go copyHalf(client, backend)
	<-done
	<-done
}
