package puzzlenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DegradedMode selects the proxy's behaviour while the backend circuit
// breaker is open.
type DegradedMode int

const (
	// DegradeShed fails verified connections fast while the breaker is
	// open: no dial is attempted, the client connection closes immediately.
	// The breaker's own half-open probes are the only backend traffic.
	DegradeShed DegradedMode = iota
	// DegradePassThrough keeps attempting backend dials while the breaker
	// is open — every connection doubles as a probe, trading client-side
	// latency for the fastest possible recovery detection.
	DegradePassThrough
)

// ProxyStats exposes counters for monitoring.
type ProxyStats struct {
	// Spliced counts connections spliced to the backend.
	Spliced uint64
	// ActiveSplices is the number of splices currently running.
	ActiveSplices int64
	// SpliceShed counts verified connections closed because the
	// splice-concurrency limit was reached.
	SpliceShed uint64
	// BackendDials counts dial attempts (including retries and probes).
	BackendDials uint64
	// BackendRetries counts dial attempts beyond the first for one splice.
	BackendRetries uint64
	// BackendFailures counts failed dial attempts.
	BackendFailures uint64
	// BackendShed counts connections dropped without a dial because the
	// breaker was open in DegradeShed mode.
	BackendShed uint64
	// BreakerState is the circuit breaker's current state.
	BreakerState BreakerState
	// BreakerOpens counts transitions into the open state.
	BreakerOpens uint64
}

// Proxy is the front-end deployment of §7: it terminates puzzle handshakes
// and forwards only verified connections to a backend, so the backend never
// spends cycles on puzzle generation or verification.
type Proxy struct {
	listener *Listener
	backend  string
	dialCtx  func(ctx context.Context, addr string) (net.Conn, error)

	dialTimeout time.Duration
	retries     int
	backoffBase time.Duration
	backoffCap  time.Duration
	breaker     *breaker
	degraded    DegradedMode
	maxSplices  int
	idleTimeout time.Duration

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	done   chan struct{}
	active map[net.Conn]net.Conn // client -> backend, for forced drain

	splices                                           atomic.Int64
	spliced, spliceShed, dials, retried, failed, shed atomic.Uint64
}

// ProxyOption customises a Proxy.
type ProxyOption func(*Proxy)

// WithBackendDialer overrides how backend connections are opened. The
// function should return promptly; the proxy additionally bounds each
// attempt with the dial timeout via WithBackendDialContext's context when
// that variant is used. Prefer WithBackendDialContext for cancellable
// dialers.
func WithBackendDialer(dial func(addr string) (net.Conn, error)) ProxyOption {
	return func(p *Proxy) {
		p.dialCtx = func(_ context.Context, addr string) (net.Conn, error) {
			return dial(addr)
		}
	}
}

// WithBackendDialContext overrides how backend connections are opened with
// a context-aware dialer. The context carries the per-attempt dial timeout
// and is cancelled on proxy shutdown, so a black-holed backend cannot pin
// goroutines.
func WithBackendDialContext(dial func(ctx context.Context, addr string) (net.Conn, error)) ProxyOption {
	return func(p *Proxy) { p.dialCtx = dial }
}

// WithDialTimeout bounds each backend dial attempt (default 10s).
func WithDialTimeout(d time.Duration) ProxyOption {
	return func(p *Proxy) { p.dialTimeout = d }
}

// WithBackendRetry configures dial retries per splice: up to retries
// additional attempts after the first, spaced by capped exponential
// backoff with jitter starting at base (default 2 retries, 50ms base,
// 1s cap).
func WithBackendRetry(retries int, base, cap time.Duration) ProxyOption {
	return func(p *Proxy) {
		p.retries = retries
		if base > 0 {
			p.backoffBase = base
		}
		if cap > 0 {
			p.backoffCap = cap
		}
	}
}

// WithBreaker configures the backend circuit breaker: threshold
// consecutive dial failures open it for cooldown before a half-open probe
// (default threshold 5, cooldown 2s). threshold <= 0 disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) ProxyOption {
	return func(p *Proxy) { p.breaker = newBreaker(threshold, cooldown) }
}

// WithDegradedMode selects shed (default) or pass-through behaviour while
// the breaker is open.
func WithDegradedMode(m DegradedMode) ProxyOption {
	return func(p *Proxy) { p.degraded = m }
}

// WithMaxSplices bounds concurrent client↔backend splices; verified
// connections over the limit are closed immediately and counted as
// SpliceShed. Zero (the default) means unlimited.
func WithMaxSplices(n int) ProxyOption {
	return func(p *Proxy) { p.maxSplices = n }
}

// WithIdleTimeout bounds how long a splice direction may sit with no data
// before the splice is torn down (default 5m). Zero disables the idle
// limit; every read and write then blocks without bound, as a raw io.Copy
// would.
func WithIdleTimeout(d time.Duration) ProxyOption {
	return func(p *Proxy) { p.idleTimeout = d }
}

// NewProxy builds a proxy in front of backend using a puzzle-gated
// listener.
func NewProxy(listener *Listener, backend string, opts ...ProxyOption) *Proxy {
	p := &Proxy{
		listener:    listener,
		backend:     backend,
		dialTimeout: 10 * time.Second,
		retries:     2,
		backoffBase: 50 * time.Millisecond,
		backoffCap:  time.Second,
		breaker:     newBreaker(5, 2*time.Second),
		idleTimeout: 5 * time.Minute,
		done:        make(chan struct{}),
		active:      make(map[net.Conn]net.Conn),
	}
	p.dialCtx = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Serve accepts verified connections and splices them to the backend until
// the listener closes.
func (p *Proxy) Serve() error {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("puzzlenet: proxy accept: %w", err)
		}
		if p.maxSplices > 0 && p.splices.Load() >= int64(p.maxSplices) {
			p.spliceShed.Add(1)
			_ = conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		p.wg.Add(1)
		p.splices.Add(1)
		p.mu.Unlock()
		go p.splice(conn)
	}
}

// Close shuts the listener and waits for in-flight preambles and splices,
// for as long as they take. Use Shutdown to bound the drain.
func (p *Proxy) Close() error {
	err := p.beginClose()
	_ = p.listener.Close()
	p.wg.Wait()
	return err
}

// Shutdown stops accepting, drains the listener's preambles and the
// in-flight splices, and returns once every proxy goroutine has exited.
// If ctx expires first, remaining connections (both halves of every
// splice) are force-closed and ctx.Err() is returned. Either way, no
// proxy goroutine survives the call.
func (p *Proxy) Shutdown(ctx context.Context) error {
	closeErr := p.beginClose()
	lerr := p.listener.Shutdown(ctx)
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if lerr != nil {
			return lerr
		}
		return closeErr
	case <-ctx.Done():
		p.forceCloseSplices()
		<-done
		return ctx.Err()
	}
}

// beginClose marks the proxy closed, interrupts backoff sleeps and pending
// dials, and closes the listener. Idempotent.
func (p *Proxy) beginClose() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	return p.listener.stop()
}

func (p *Proxy) forceCloseSplices() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for client, backend := range p.active {
		_ = client.Close()
		if backend != nil {
			_ = backend.Close()
		}
	}
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() ProxyStats {
	state, opens := p.breaker.snapshot()
	return ProxyStats{
		Spliced:         p.spliced.Load(),
		ActiveSplices:   p.splices.Load(),
		SpliceShed:      p.spliceShed.Load(),
		BackendDials:    p.dials.Load(),
		BackendRetries:  p.retried.Load(),
		BackendFailures: p.failed.Load(),
		BackendShed:     p.shed.Load(),
		BreakerState:    state,
		BreakerOpens:    opens,
	}
}

func (p *Proxy) splice(client net.Conn) {
	defer p.wg.Done()
	defer p.splices.Add(-1)
	defer client.Close()

	p.trackSplice(client, nil)
	defer p.untrackSplice(client)

	backend, err := p.dialBackend()
	if err != nil {
		return
	}
	p.trackSplice(client, backend)
	defer backend.Close()
	p.spliced.Add(1)

	done := make(chan struct{}, 2)
	go func() {
		p.spliceCopy(backend, client)
		done <- struct{}{}
	}()
	go func() {
		p.spliceCopy(client, backend)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// spliceBufs pools splice copy buffers; the frame path and every splice
// direction reuse them instead of allocating 32 KiB per goroutine.
var spliceBufs = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// spliceCopy copies src to dst under the idle deadline, then propagates
// EOF via half-close where supported.
func (p *Proxy) spliceCopy(dst, src net.Conn) {
	bufp := spliceBufs.Get().(*[]byte)
	buf := *bufp
	defer spliceBufs.Put(bufp)
	for {
		if p.idleTimeout > 0 {
			_ = src.SetReadDeadline(time.Now().Add(p.idleTimeout))
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			if p.idleTimeout > 0 {
				_ = dst.SetWriteDeadline(time.Now().Add(p.idleTimeout))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if rerr != nil {
			break
		}
	}
	// Half-close semantics: propagate EOF where supported.
	if tcp, ok := dst.(*net.TCPConn); ok {
		_ = tcp.CloseWrite()
	}
}

// dialBackend opens a backend connection behind the circuit breaker with
// capped exponential backoff + jitter between attempts.
func (p *Proxy) dialBackend() (net.Conn, error) {
	backoff := p.backoffBase
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !p.breaker.allow(time.Now()) && p.degraded == DegradeShed {
			p.shed.Add(1)
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last dial: %v)", ErrBackendDown, lastErr)
			}
			return nil, ErrBackendDown
		}
		if attempt > 0 {
			p.retried.Add(1)
		}
		p.dials.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), p.dialTimeout)
		go func() {
			// Shutdown interrupts a pending dial; otherwise this exits as
			// soon as the dial's own cancel runs.
			select {
			case <-p.done:
				cancel()
			case <-ctx.Done():
			}
		}()
		conn, err := p.dialCtx(ctx, p.backend)
		cancel()
		if err == nil {
			p.breaker.success()
			return conn, nil
		}
		lastErr = err
		p.failed.Add(1)
		p.breaker.failure(time.Now())
		if attempt >= p.retries {
			return nil, err
		}
		// Full jitter on the current backoff step, capped.
		sleep := time.Duration(rand.Int64N(int64(backoff) + 1))
		select {
		case <-time.After(sleep):
		case <-p.done:
			return nil, net.ErrClosed
		}
		if backoff < p.backoffCap {
			backoff *= 2
			if backoff > p.backoffCap {
				backoff = p.backoffCap
			}
		}
	}
}

func (p *Proxy) trackSplice(client, backend net.Conn) {
	p.mu.Lock()
	p.active[client] = backend
	p.mu.Unlock()
}

func (p *Proxy) untrackSplice(client net.Conn) {
	p.mu.Lock()
	delete(p.active, client)
	p.mu.Unlock()
}
